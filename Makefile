GO ?= go

.PHONY: all build vet test test-differential bench-smoke bench bench-json check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The fast/slow differential and tick-equivalence suites are the
# correctness contract of the hot-path optimizations; this target fails
# if any of them is skipped or matches nothing.
test-differential:
	@out=$$($(GO) test -v -run 'TestDispatchDifferential|TestFastSlow|TestTickEquivalence|TestTimerTickClosedForm' \
		./internal/mem ./internal/core ./internal/periph) || { echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q -- '--- PASS' || { echo 'no differential tests ran'; exit 1; }; \
	if echo "$$out" | grep -q -- '--- SKIP'; then echo "$$out" | grep -- '--- SKIP'; echo 'differential tests were skipped'; exit 1; fi; \
	echo "differential suites: $$(echo "$$out" | grep -c -- '--- PASS') passes, no skips"

# One-iteration benchmark pass so throughput regressions surface in PRs
# without burning CI minutes.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkSimulator_Throughput$$ -benchtime=1x .

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# bench-json records the performance trajectory in-repo: the simulator
# throughput benchmarks (timed) plus the Table IV sweep (one iteration),
# parsed into BENCH_1.json. The bench output goes through a temp file so
# a failing/panicking benchmark fails the target instead of silently
# writing a partial BENCH_1.json.
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkSimulator_Throughput' -benchtime=2s . > BENCH_1.txt.tmp
	$(GO) test -run='^$$' -bench='BenchmarkSimulator_FleetMatrix$$|BenchmarkTable4$$' -benchtime=1x . >> BENCH_1.txt.tmp
	$(GO) run ./cmd/eilid-benchjson -o BENCH_1.json < BENCH_1.txt.tmp
	@rm -f BENCH_1.txt.tmp
	@echo wrote BENCH_1.json

check: build vet test test-differential bench-smoke
