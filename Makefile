GO ?= go

.PHONY: all build vet test bench-smoke bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One-iteration benchmark pass so throughput regressions surface in PRs
# without burning CI minutes.
bench-smoke:
	$(GO) test -run='^$$' -bench=BenchmarkSimulator -benchtime=1x .

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

check: build vet test bench-smoke
