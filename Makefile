GO ?= go

.PHONY: all build vet test test-differential fuzz-smoke bench-smoke bench bench-json check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The fast/slow, block-execution, tick-equivalence,
# recycled-vs-fresh, crash/resume and service-mode differential suites
# are the correctness contract of the hot-path optimizations, the
# machine-recycling subsystem, the fleet's crash-safety (journaled
# checkpointing, fault containment, resume convergence) and the fleetd
# journal byte-identity; this target fails if any of them is skipped or
# matches nothing.
test-differential:
	@out=$$($(GO) test -v -run 'TestDispatchDifferential|TestFastSlow|TestBlock|TestTickEquivalence|TestTimerTickClosedForm|TestRecycle|TestGenerated|TestCrashResume|TestFault|TestJournal|TestStreamPanic|TestStreamCancel|TestFleetCrashResumeCLI|TestFleetFaultInjectionCLI|TestCoord|TestFleetWorker|TestFleetCoordinator|TestServe|TestFleetdSmoke' \
		./internal/mem ./internal/core ./internal/periph ./internal/fleet ./internal/fleet/pool ./internal/fleet/coord ./internal/fleet/serve ./cmd/eilid-fleet ./cmd/eilid-fleetd) || { echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q -- '--- PASS' || { echo 'no differential tests ran'; exit 1; }; \
	if echo "$$out" | grep -q -- '--- SKIP'; then echo "$$out" | grep -- '--- SKIP'; echo 'differential tests were skipped'; exit 1; fi; \
	echo "differential suites: $$(echo "$$out" | grep -c -- '--- PASS') passes, no skips"

# A few seconds of coverage-guided fuzzing per native target: the
# assembler must never panic on arbitrary source, and no UART input may
# compromise the protected overflow victim. The committed seed corpora
# under */testdata/fuzz/ anchor the search; real finds land there as
# regression inputs.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzAssemble$$' -fuzztime=5s ./internal/asm
	$(GO) test -run='^$$' -fuzz='^FuzzUARTPayload$$' -fuzztime=5s ./internal/attacks

# One-iteration benchmark pass so throughput regressions surface in PRs
# without burning CI minutes. NoBlocks rides along so the block layer's
# contribution stays individually measurable; MachineChurn guards the
# recycled machine-lifecycle overhead, and Coordinator_ShardScaling the
# multi-process spawn/supervise/merge overhead.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkSimulator_Throughput$$|BenchmarkSimulator_ThroughputNoBlocks$$|BenchmarkFleet_MachineChurn' -benchtime=1x .
	$(GO) test -run='^$$' -bench='BenchmarkCoordinator_ShardScaling' -benchtime=1x ./cmd/eilid-fleet
	$(GO) test -run='^$$' -bench='BenchmarkFleetd_WarmResubmit' -benchtime=1x ./cmd/eilid-fleetd

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# bench-json records the performance trajectory in-repo: the simulator
# throughput benchmarks (timed) plus the Table IV sweep (one iteration),
# parsed into the first free BENCH_<n>.json so each PR appends a point
# to the trajectory instead of overwriting the previous one. The bench
# output goes through a temp file so a failing/panicking benchmark fails
# the target instead of silently writing a partial record.
bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkSimulator_Throughput|BenchmarkFleet_MachineChurn' -benchtime=2s . > BENCH.txt.tmp
	$(GO) test -run='^$$' -bench='BenchmarkSimulator_FleetMatrix$$|BenchmarkTable4$$' -benchtime=1x . >> BENCH.txt.tmp
	$(GO) test -run='^$$' -bench='BenchmarkCoordinator_ShardScaling' -benchtime=1x ./cmd/eilid-fleet >> BENCH.txt.tmp
	$(GO) test -run='^$$' -bench='BenchmarkFleetd_WarmResubmit' -benchtime=10x ./cmd/eilid-fleetd >> BENCH.txt.tmp
	@f=$$($(GO) run ./cmd/eilid-benchjson -next < BENCH.txt.tmp) || { rm -f BENCH.txt.tmp; exit 1; }; \
	rm -f BENCH.txt.tmp; echo "wrote $$f"

check: build vet test test-differential bench-smoke
