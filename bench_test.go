// Package eilid_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation:
//
//	BenchmarkTable4_*           — per-application software overhead
//	                              (compile time, binary size, run time)
//	BenchmarkFigure10_*         — hardware cost estimation
//	BenchmarkMicro_StoreCheck   — §VI store/check path costs
//	BenchmarkTable1_Catalog     — the static comparison tables
//	BenchmarkPipeline_*         — the Figure 2 build itself
//	BenchmarkSimulator_*        — substrate throughput
//
// Custom metrics carry the paper-comparable numbers: cycles/run,
// overhead %, LUTs, registers. Run with:
//
//	go test -bench=. -benchmem
package eilid_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"eilid/internal/apps"
	"eilid/internal/core"
	"eilid/internal/eval"
	"eilid/internal/fleet"
	"eilid/internal/hwcost"
	"eilid/internal/isa"
)

func newPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// runOnce executes one build variant of an app (optionally with a
// shared predecoded instruction cache) and returns the cycle count.
func runOnce(b *testing.B, p *core.Pipeline, app apps.App, build *core.BuildResult, protected bool, pre *isa.Predecoded) uint64 {
	b.Helper()
	opts := core.MachineOptions{Config: p.Config()}
	img := build.Original.Image
	if protected {
		opts.ROM = p.ROM()
		opts.Defense = core.DefenseEILID
		img = build.Instrumented.Image
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadFirmware(img); err != nil {
		b.Fatal(err)
	}
	if pre != nil {
		m.UsePredecoded(pre)
	}
	if app.UARTInput != "" {
		m.UART.Feed([]byte(app.UARTInput))
	}
	m.Boot()
	res, err := m.Run(app.MaxCycles)
	if err != nil {
		b.Fatal(err)
	}
	if protected && m.ResetCount != 0 {
		b.Fatalf("benign run reset: %v", m.ResetReasons)
	}
	return res.Cycles
}

// BenchmarkTable4 regenerates the run-time dimension of Table IV
// through the fleet runner: the application is assembled and predecoded
// once (NewRunner, untimed), then every iteration replays both device
// variants as fleet jobs and reports simulated cycles plus the overhead
// percentage.
func BenchmarkTable4(b *testing.B) {
	p := newPipeline(b)
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			r, err := fleet.NewRunner(p, fleet.BatchSpec{
				Matrix: fleet.MatrixSpec{Apps: []string{app.Name}, NoScenarios: true},
				Exec:   fleet.ExecSpec{Workers: 2},
			})
			if err != nil {
				b.Fatal(err)
			}
			build := r.BuildFor("app", app.Name)
			if build == nil {
				b.Fatal("runner did not prepare the app build")
			}
			layout := p.Config().Layout
			sizeEILID := build.Instrumented.Image.SizeInRange(layout.PMEMStart, layout.PMEMEnd)
			var rep *fleet.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep, err = r.Run(); err != nil {
					b.Fatal(err)
				}
			}
			if rep.Failures != 0 {
				b.Fatalf("fleet job failed: %+v", rep.Results)
			}
			orig, inst := rep.Results[0].Cycles, rep.Results[1].Cycles
			b.ReportMetric(float64(orig), "cycles-orig")
			b.ReportMetric(float64(inst), "cycles-eilid")
			b.ReportMetric(100*float64(inst-orig)/float64(orig), "overhead-%")
			b.ReportMetric(float64(sizeEILID), "bytes-eilid")
		})
	}
}

// BenchmarkTable4_CompileTime measures the compile-time dimension: the
// single-assembly original build versus the three-iteration EILID build.
func BenchmarkTable4_CompileTime(b *testing.B) {
	p := newPipeline(b)
	for _, app := range apps.All() {
		app := app
		b.Run(app.Name+"/original", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.BuildOriginal(app.Name+".s", app.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(app.Name+"/eilid", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Build(app.Name+".s", app.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure10_HardwareCost reports the monitor resource estimate
// next to the paper's published EILID numbers.
func BenchmarkFigure10_HardwareCost(b *testing.B) {
	var n *hwcost.Netlist
	for i := 0; i < b.N; i++ {
		n = hwcost.Estimate()
	}
	b.ReportMetric(float64(n.LUTs), "LUTs")
	b.ReportMetric(float64(n.Registers), "registers")
	b.ReportMetric(99, "paper-LUTs")
	b.ReportMetric(34, "paper-registers")
}

// BenchmarkMicro_StoreCheck reports the §VI store/check path costs.
func BenchmarkMicro_StoreCheck(b *testing.B) {
	p := newPipeline(b)
	var m eval.MicroOverhead
	var err error
	for i := 0; i < b.N; i++ {
		if m, err = eval.MeasureMicro(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.StoreInsns), "store-insns")
	b.ReportMetric(float64(m.CheckInsns), "check-insns")
	b.ReportMetric(float64(m.StoreCycles), "store-cycles")
	b.ReportMetric(float64(m.CheckCycles), "check-cycles")
}

// BenchmarkTable1_Catalog renders the static tables (I, II, III).
func BenchmarkTable1_Catalog(b *testing.B) {
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		eval.RenderTableI(io.Discard)
		eval.RenderTableII(io.Discard)
		eval.RenderTableIII(io.Discard, cfg)
	}
}

// BenchmarkPipeline_Build measures the Figure 2 pipeline end to end on
// the largest application.
func BenchmarkPipeline_Build(b *testing.B) {
	p := newPipeline(b)
	app, _ := apps.ByName("LcdSensor")
	for i := 0; i < b.N; i++ {
		if _, err := p.Build("lcd.s", app.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// busySrc is the compute-bound loop the throughput benchmarks run.
const busySrc = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #10000, r10
busy:
    add #3, r11
    xor r11, r12
    dec r10
    jnz busy
    mov #0, &0x00FC
spin:
    jmp spin
.org 0xFFFE
.word reset
`

// benchmarkThroughput measures raw simulated cycles per second of host
// time, with or without the predecoded instruction cache, optionally
// with basic-block execution disabled or with every hot-path
// optimization reverted to its reference implementation. The cache is
// built once (the per-ROM artifact) and shared by every iteration's
// machine, which is exactly how the fleet runner deploys it.
func benchmarkThroughput(b *testing.B, predecode, noBlocks, slowPaths bool) {
	p := newPipeline(b)
	prog, err := p.BuildOriginal("busy.s", busySrc)
	if err != nil {
		b.Fatal(err)
	}
	var pre *isa.Predecoded
	if predecode {
		ref, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
		if err != nil {
			b.Fatal(err)
		}
		if err := ref.LoadFirmware(prog.Image); err != nil {
			b.Fatal(err)
		}
		pre = ref.EnablePredecode()
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadFirmware(prog.Image); err != nil {
			b.Fatal(err)
		}
		if pre != nil {
			m.UsePredecoded(pre)
		}
		if noBlocks {
			m.SetBlockExec(false)
		}
		if slowPaths {
			m.ForceSlowPaths()
		}
		m.Boot()
		res, err := m.Run(10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "simMcycles/s")
}

// BenchmarkSimulator_Throughput is the hot path as the fleet runs it:
// decode cache on, basic-block execution, threaded-code executors,
// page-table bus dispatch, deadline-batched peripheral ticking.
func BenchmarkSimulator_Throughput(b *testing.B) { benchmarkThroughput(b, true, false, false) }

// BenchmarkSimulator_ThroughputNoBlocks disables only the basic-block
// layer (per-instruction dispatch over the same predecoded entries) —
// the PR 2 configuration, kept so the block layer's contribution stays
// individually measurable.
func BenchmarkSimulator_ThroughputNoBlocks(b *testing.B) { benchmarkThroughput(b, true, true, false) }

// BenchmarkSimulator_ThroughputNoPredecode is the pre-cache baseline,
// kept for before/after comparison of the decode cache.
func BenchmarkSimulator_ThroughputNoPredecode(b *testing.B) {
	benchmarkThroughput(b, false, false, false)
}

// BenchmarkSimulator_ThroughputSlowPaths runs the decode cache with
// every other fast path reverted (linear bus dispatch, generic
// interpreter, per-instruction ticking, no block fusion) — the PR 1
// configuration, kept so the optimization layers' contribution stays
// measurable.
func BenchmarkSimulator_ThroughputSlowPaths(b *testing.B) { benchmarkThroughput(b, true, false, true) }

// BenchmarkSimulator_FleetMatrix executes the full application ×
// variant × scenario matrix through the fleet runner on all CPUs —
// the batch workload the fleet subsystem exists for. Artifacts (builds
// and decode caches) are prepared once, untimed.
func BenchmarkSimulator_FleetMatrix(b *testing.B) {
	p := newPipeline(b)
	r, err := fleet.NewRunner(p, fleet.BatchSpec{Exec: fleet.ExecSpec{Workers: runtime.GOMAXPROCS(0)}})
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	var jobs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failures != 0 {
			b.Fatalf("%d fleet jobs failed", rep.Failures)
		}
		cycles += rep.TotalCycles
		jobs += rep.Jobs
	}
	sec := b.Elapsed().Seconds()
	b.ReportMetric(float64(cycles)/sec/1e6, "simMcycles/s")
	b.ReportMetric(float64(jobs)/sec, "jobs/s")
}

// BenchmarkFleet_MachineChurn isolates the per-job machine-lifecycle
// overhead the fleet pays before the first simulated instruction runs.
// construct-per-job is the pre-recycling lifecycle: NewMachine + secure
// ROM + firmware load + shared-cache install + boot, every job.
// recycled is the pooled lifecycle: Recycle (snapshot restore + power-on
// resets) + boot. The recycling subsystem's acceptance bar is recycled
// per-job overhead at least 2× below construct-per-job.
func BenchmarkFleet_MachineChurn(b *testing.B) {
	p := newPipeline(b)
	app, ok := apps.ByName("TempSensor")
	if !ok {
		b.Fatal("TempSensor application missing")
	}
	build, err := p.Build(app.Name+".s", app.Source)
	if err != nil {
		b.Fatal(err)
	}
	newMachine := func(b *testing.B) *core.Machine {
		b.Helper()
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadFirmware(build.Instrumented.Image); err != nil {
			b.Fatal(err)
		}
		return m
	}
	// The shared per-ROM decode cache + block table, as the fleet
	// prepares them once, untimed.
	pre := newMachine(b).EnablePredecode()
	pre.Blocks()

	b.Run("construct-per-job", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := newMachine(b)
			m.UsePredecoded(pre)
			m.Boot()
		}
	})
	b.Run("recycled", func(b *testing.B) {
		m := newMachine(b)
		m.UsePredecoded(pre)
		m.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Recycle(); err != nil {
				b.Fatal(err)
			}
			m.Boot()
		}
	})
}

// BenchmarkEILIDsw_RoundTrip measures one full gateway round trip
// (store_ra) on the protected machine.
func BenchmarkEILIDsw_RoundTrip(b *testing.B) {
	p := newPipeline(b)
	ins := core.NewInstrumenter(p.Config(), p.ROM())
	src := `
.org 0xE000
reset:
    mov #0x0A00, sp
    call #NS_EILID_init
loop:
    mov #0xE100, r6
    call #NS_EILID_store_ra
    mov #0xE100, r6
    call #NS_EILID_check_ra
    jmp loop
` + ins.GatewaySource() + `
.org 0xFFFE
.word reset
`
	prog, err := p.BuildOriginal("rt.s", src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadFirmware(prog.Image); err != nil {
		b.Fatal(err)
	}
	m.Boot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	if m.ResetCount != 0 {
		b.Fatalf("unexpected reset: %v", m.ResetReasons)
	}
}

// ---- Ablations -------------------------------------------------------------

// BenchmarkAblation_MonitorPassive quantifies a design property the paper
// claims implicitly: the CASU/EILID hardware monitor adds ZERO run-time
// cycles to code that does not violate it (it only watches). The same
// uninstrumented firmware is run on the unprotected and the protected
// device; the cycle counts must match exactly.
func BenchmarkAblation_MonitorPassive(b *testing.B) {
	p := newPipeline(b)
	app, _ := apps.ByName("TempSensor")
	build, err := p.Build(app.Name+".s", app.Source)
	if err != nil {
		b.Fatal(err)
	}
	var unprot, prot uint64
	for i := 0; i < b.N; i++ {
		unprot = runOnce(b, p, app, build, false, nil)
		// Original image on the protected machine: hardware watches, no
		// software instrumentation runs.
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadFirmware(build.Original.Image); err != nil {
			b.Fatal(err)
		}
		m.Boot()
		res, err := m.Run(app.MaxCycles)
		if err != nil {
			b.Fatal(err)
		}
		if m.ResetCount != 0 {
			b.Fatalf("uninstrumented original tripped the monitor: %v", m.ResetReasons)
		}
		prot = res.Cycles
	}
	if unprot != prot {
		b.Fatalf("monitor not passive: %d vs %d cycles", unprot, prot)
	}
	b.ReportMetric(float64(prot), "cycles")
	b.ReportMetric(0, "hw-monitor-overhead-cycles")
}

// BenchmarkAblation_DispatchDepth measures the cost of the EILIDsw entry
// dispatch per selector: the compare chain makes late selectors (store_ind,
// check_ind) slightly more expensive than early ones (store_ra) — the
// design rationale for ordering the hot P1 operations first.
func BenchmarkAblation_DispatchDepth(b *testing.B) {
	p := newPipeline(b)
	ins := core.NewInstrumenter(p.Config(), p.ROM())
	ops := []struct {
		name    string
		gateway string
		prep    string
	}{
		{"store_ra-sel1", "NS_EILID_store_ra", "mov #0xE100, r6"},
		{"check_ra-sel2", "NS_EILID_check_ra", "mov #0xE100, r6"},
		{"store_ind-sel5", "NS_EILID_store_ind", "mov #0xE100, r6"},
		{"check_ind-sel6", "NS_EILID_check_ind", "mov #0xE100, r6"},
	}
	for _, op := range ops {
		op := op
		b.Run(op.name, func(b *testing.B) {
			// Prepare a machine with one store_ra/store_ind already done
			// so the check variants have something to verify.
			src := `
.org 0xE000
reset:
    mov #0x0A00, sp
    call #NS_EILID_init
    mov #0xE100, r6
    call #NS_EILID_store_ra
    mov #0xE100, r6
    call #NS_EILID_store_ind
m_begin:
    ` + op.prep + `
    call #` + op.gateway + `
m_end:
    mov #0, &0x00FC
spin:
    jmp spin
` + ins.GatewaySource() + `
.org 0xFFFE
.word reset
`
			prog, err := p.BuildOriginal("abl.s", src)
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.LoadFirmware(prog.Image); err != nil {
					b.Fatal(err)
				}
				m.Boot()
				begin, end := prog.Symbols["m_begin"], prog.Symbols["m_end"]
				for m.CPU.PC() != begin {
					if _, err := m.Step(); err != nil {
						b.Fatal(err)
					}
				}
				c0 := m.CPU.Cycles
				for m.CPU.PC() != end {
					if _, err := m.Step(); err != nil {
						b.Fatal(err)
					}
					if m.ResetCount != 0 {
						b.Fatalf("ablation driver reset: %v", m.ResetReasons)
					}
				}
				cycles = m.CPU.Cycles - c0
			}
			b.ReportMetric(float64(cycles), "cycles/op")
		})
	}
}

// BenchmarkAblation_SpillCost compares the per-site cost when the
// application claims the reserved argument registers (forcing push/pop
// spills around every instrumentation block) against a register-clean
// app of identical structure.
func BenchmarkAblation_SpillCost(b *testing.B) {
	p := newPipeline(b)
	template := func(regA, regB string) string {
		return `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #100, r10
    mov #1, ` + regA + `
    mov #2, ` + regB + `
loop:
    call #work
    dec r10
    jnz loop
    mov #0, &0x00FC
spin:
    jmp spin
work:
    add ` + regA + `, r11
    add ` + regB + `, r11
    ret
.org 0xFFFE
.word reset
`
	}
	variants := []struct {
		name       string
		regA, regB string
	}{
		{"clean-r8-r9", "r8", "r9"},
		{"spilled-r6-r7", "r6", "r7"},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			build, err := p.Build("spill-abl.s", template(v.regA, v.regB))
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.LoadFirmware(build.Instrumented.Image); err != nil {
					b.Fatal(err)
				}
				m.Boot()
				res, err := m.Run(1_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if m.ResetCount != 0 {
					b.Fatalf("spill ablation reset: %v", m.ResetReasons)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(float64(len(build.Stats.SpilledRegs)), "spilled-regs")
		})
	}
}

// BenchmarkAblation_ShadowStackSize varies the shadow-stack capacity, a
// configurable the paper calls out ("the shadow stack size is
// configurable based on memory constraints"), and confirms capacity does
// not change the per-operation cost (the index arithmetic is O(1)).
func BenchmarkAblation_ShadowStackSize(b *testing.B) {
	for _, entries := range []int{16, 64, 96} {
		entries := entries
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.MaxShadowEntries = entries
			p, err := core.NewPipeline(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var m eval.MicroOverhead
			for i := 0; i < b.N; i++ {
				if m, err = eval.MeasureMicro(p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.StoreCycles), "store-cycles")
		})
	}
}
