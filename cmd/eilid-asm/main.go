// Command eilid-asm assembles an MSP430 source file and writes the
// listing (and optionally a hex dump of the image), playing the role of
// the toolchain's assembler in the EILID build flow.
//
// Usage:
//
//	eilid-asm [-hex] [-symbols] file.s
package main

import (
	"flag"
	"fmt"
	"os"

	"eilid/internal/asm"
)

func main() {
	hexDump := flag.Bool("hex", false, "print a hex dump of the image")
	symbols := flag.Bool("symbols", false, "print the symbol table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eilid-asm [-hex] [-symbols] file.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(prog.Listing.String())
	fmt.Printf("; %d bytes emitted\n", prog.Image.Size())
	if *symbols {
		for _, name := range prog.SortedSymbols() {
			fmt.Printf("%-24s = 0x%04x\n", name, prog.Symbols[name])
		}
	}
	if *hexDump {
		for _, c := range prog.Image.Chunks() {
			for i := 0; i < len(c.Data); i += 16 {
				end := i + 16
				if end > len(c.Data) {
					end = len(c.Data)
				}
				fmt.Printf("%04x: % x\n", int(c.Addr)+i, c.Data[i:end])
			}
		}
	}
}
