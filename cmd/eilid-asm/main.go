// Command eilid-asm assembles an MSP430 source file and writes the
// listing (and optionally a hex dump of the image), playing the role of
// the toolchain's assembler in the EILID build flow.
//
// Usage:
//
//	eilid-asm [-hex] [-symbols] file.s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eilid/internal/asm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eilid-asm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hexDump := fs.Bool("hex", false, "print a hex dump of the image")
	symbols := fs.Bool("symbols", false, "print the symbol table")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: eilid-asm [-hex] [-symbols] file.s")
		return 2
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	prog, err := asm.Assemble(path, string(src))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprint(stdout, prog.Listing.String())
	fmt.Fprintf(stdout, "; %d bytes emitted\n", prog.Image.Size())
	if *symbols {
		for _, name := range prog.SortedSymbols() {
			fmt.Fprintf(stdout, "%-24s = 0x%04x\n", name, prog.Symbols[name])
		}
	}
	if *hexDump {
		for _, c := range prog.Image.Chunks() {
			for i := 0; i < len(c.Data); i += 16 {
				end := i + 16
				if end > len(c.Data) {
					end = len(c.Data)
				}
				fmt.Fprintf(stdout, "%04x: % x\n", int(c.Addr)+i, c.Data[i:end])
			}
		}
	}
	return 0
}
