package main

import (
	"os"
	"strings"
	"testing"
)

const asmSrc = `
.org 0xE000
reset:
    mov #0x0A00, sp
    mov #0, &0x00FC
stop:
    jmp stop
.org 0xFFFE
.word reset
`

func TestAssembleHappyPath(t *testing.T) {
	path := t.TempDir() + "/prog.s"
	if err := os.WriteFile(path, []byte(asmSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-hex", "-symbols", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"bytes emitted", "reset", "e000:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("missing arg: exit %d, want 2", code)
	}
	if code := run([]string{"/no/such/file.s"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	bad := t.TempDir() + "/bad.s"
	if err := os.WriteFile(bad, []byte("    mov not-an-operand\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("bad source: exit %d, want 1", code)
	}
}
