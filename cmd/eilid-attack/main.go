// Command eilid-attack runs the control-flow attack suite against both
// the unprotected baseline and the EILID-protected device and prints the
// defence matrix: every attack must compromise the former and merely
// reset the latter.
package main

import (
	"flag"
	"fmt"
	"os"

	"eilid/internal/attacks"
	"eilid/internal/core"
)

func main() {
	verbose := flag.Bool("v", false, "print scenario descriptions")
	flag.Parse()

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	results, err := attacks.RunAll(pipeline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%-22s %-10s %-22s %-30s %s\n", "scenario", "property", "baseline", "EILID device", "defended")
	allDefended := true
	for _, r := range results {
		baseline := "survived"
		if r.Baseline.Compromised {
			baseline = "COMPROMISED"
		}
		prot := "no reaction"
		if r.Protected.Resets > 0 {
			prot = fmt.Sprintf("reset (%s)", r.Protected.Reason)
		}
		if r.Protected.Compromised {
			prot = "COMPROMISED"
		}
		status := "yes"
		if !r.Defended() {
			status = "NO"
			allDefended = false
		}
		fmt.Printf("%-22s %-10s %-22s %-30s %s\n", r.Scenario.Name, r.Scenario.Property, baseline, prot, status)
		if *verbose {
			fmt.Printf("    %s\n", r.Scenario.Description)
		}
	}
	if !allDefended {
		os.Exit(1)
	}
}
