// Command eilid-attack runs the control-flow attack suite against both
// the unprotected baseline and the EILID-protected device and prints the
// defence matrix: every attack must compromise the former and merely
// reset the latter.
//
// Usage:
//
//	eilid-attack [-v] [-scenario NAME] [-workers N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"eilid/internal/attacks"
	"eilid/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eilid-attack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "print scenario descriptions")
	scenario := fs.String("scenario", "", "run a single scenario by name")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent scenario sweeps")
	list := fs.Bool("list", false, "list scenario names")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		for _, sc := range attacks.Scenarios() {
			fmt.Fprintf(stdout, "%-22s %s\n", sc.Name, sc.Property)
		}
		return 0
	}

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	var results []attacks.Result
	if *scenario != "" {
		found := false
		for _, sc := range attacks.Scenarios() {
			if sc.Name == *scenario {
				r, err := attacks.Run(pipeline, sc)
				if err != nil {
					fmt.Fprintln(stderr, err)
					return 1
				}
				results, found = []attacks.Result{r}, true
				break
			}
		}
		if !found {
			fmt.Fprintf(stderr, "unknown scenario %q (try -list)\n", *scenario)
			return 2
		}
	} else {
		results, err = attacks.RunAllWorkers(pipeline, *workers)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	fmt.Fprintf(stdout, "%-22s %-10s %-22s %-30s %s\n", "scenario", "property", "baseline", "EILID device", "defended")
	allDefended := true
	for _, r := range results {
		baseline := "survived"
		if r.Baseline.Compromised {
			baseline = "COMPROMISED"
		}
		prot := "no reaction"
		if r.Protected.Resets > 0 {
			prot = fmt.Sprintf("reset (%s)", r.Protected.Reason)
		}
		if r.Protected.Compromised {
			prot = "COMPROMISED"
		}
		status := "yes"
		if !r.Defended() {
			status = "NO"
			allDefended = false
		}
		fmt.Fprintf(stdout, "%-22s %-10s %-22s %-30s %s\n", r.Scenario.Name, r.Scenario.Property, baseline, prot, status)
		if *verbose {
			fmt.Fprintf(stdout, "    %s\n", r.Scenario.Description)
		}
	}
	if !allDefended {
		return 1
	}
	return 0
}
