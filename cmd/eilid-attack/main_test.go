package main

import (
	"strings"
	"testing"
)

func TestAttackSingleScenario(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scenario", "stack-smash", "-v"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"stack-smash", "COMPROMISED", "cfi-check-failed", "yes"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAttackList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"stack-smash", "rop-chain", "code-injection"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list missing %q:\n%s", want, out.String())
		}
	}
}

func TestAttackFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scenario", "no-such"}, &out, &errb); code != 2 {
		t.Errorf("unknown scenario: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestAttackFullSweep runs the whole suite concurrently — the command's
// happy path and a second end-to-end determinism exercise of RunAll.
func TestAttackFullSweep(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-workers", "4"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	if n := strings.Count(out.String(), "yes"); n != 6 {
		t.Errorf("defence matrix shows %d defended scenarios, want 6:\n%s", n, out.String())
	}
}
