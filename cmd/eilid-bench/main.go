// Command eilid-bench regenerates the paper's evaluation artifacts:
//
//	eilid-bench -table 4          # Table IV (software overhead)
//	eilid-bench -table 1|2|3      # the static comparison tables
//	eilid-bench -figure 10        # Figure 10 (hardware cost)
//	eilid-bench -micro            # §VI store/check micro-overhead
//	eilid-bench -all              # everything
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eilid/internal/core"
	"eilid/internal/eval"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eilid-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "regenerate a table (1-4)")
	figure := fs.Int("figure", 0, "regenerate a figure (10)")
	micro := fs.Bool("micro", false, "regenerate the micro-overhead numbers")
	all := fs.Bool("all", false, "regenerate everything")
	iters := fs.Int("iters", 50, "compile iterations for Table IV averaging")
	workers := fs.Int("workers", 1, "apps measured concurrently for Table IV (1 keeps compile timings contention-free)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	did := false
	if *all || *table == 1 {
		eval.RenderTableI(stdout)
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *table == 2 {
		eval.RenderTableII(stdout)
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *table == 3 {
		eval.RenderTableIII(stdout, pipeline.Config())
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *table == 4 {
		t, err := eval.MeasureTableIV(pipeline, eval.MeasureOptions{CompileIterations: *iters, Workers: *workers})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		t.Render(stdout)
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *figure == 10 {
		eval.RenderFigure10(stdout)
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *micro {
		m, err := eval.MeasureMicro(pipeline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		m.Render(stdout)
		did = true
	}
	if !did {
		fs.Usage()
		return 2
	}
	return 0
}
