// Command eilid-bench regenerates the paper's evaluation artifacts:
//
//	eilid-bench -table 4          # Table IV (software overhead)
//	eilid-bench -table 1|2|3      # the static comparison tables
//	eilid-bench -figure 10        # Figure 10 (hardware cost)
//	eilid-bench -micro            # §VI store/check micro-overhead
//	eilid-bench -all              # everything
//
// -cpuprofile and -memprofile write pprof profiles of the run, so
// performance work on the simulator hot loop can profile the real
// evaluation workload without ad-hoc patches:
//
//	eilid-bench -table 4 -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"eilid/internal/core"
	"eilid/internal/eval"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("eilid-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "regenerate a table (1-4)")
	figure := fs.Int("figure", 0, "regenerate a figure (10)")
	micro := fs.Bool("micro", false, "regenerate the micro-overhead numbers")
	all := fs.Bool("all", false, "regenerate everything")
	iters := fs.Int("iters", 50, "compile iterations for Table IV averaging")
	workers := fs.Int("workers", 1, "apps measured concurrently for Table IV (1 keeps compile timings contention-free)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Created upfront so a bad path fails before the run, not
		// after; written at exit. A failed write must fail the run
		// (via the named return), or profiling scripts checking the
		// exit code would proceed as if the profile had been captured.
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			runtime.GC() // settle allocations so the heap profile is stable
			err := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(stderr, err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	did := false
	if *all || *table == 1 {
		eval.RenderTableI(stdout)
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *table == 2 {
		eval.RenderTableII(stdout)
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *table == 3 {
		eval.RenderTableIII(stdout, pipeline.Config())
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *table == 4 {
		t, err := eval.MeasureTableIV(pipeline, eval.MeasureOptions{CompileIterations: *iters, Workers: *workers})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		t.Render(stdout)
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *figure == 10 {
		eval.RenderFigure10(stdout)
		fmt.Fprintln(stdout)
		did = true
	}
	if *all || *micro {
		m, err := eval.MeasureMicro(pipeline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		m.Render(stdout)
		did = true
	}
	if !did {
		fs.Usage()
		return 2
	}
	return 0
}
