// Command eilid-bench regenerates the paper's evaluation artifacts:
//
//	eilid-bench -table 4          # Table IV (software overhead)
//	eilid-bench -table 1|2|3      # the static comparison tables
//	eilid-bench -figure 10        # Figure 10 (hardware cost)
//	eilid-bench -micro            # §VI store/check micro-overhead
//	eilid-bench -all              # everything
package main

import (
	"flag"
	"fmt"
	"os"

	"eilid/internal/core"
	"eilid/internal/eval"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (1-4)")
	figure := flag.Int("figure", 0, "regenerate a figure (10)")
	micro := flag.Bool("micro", false, "regenerate the micro-overhead numbers")
	all := flag.Bool("all", false, "regenerate everything")
	iters := flag.Int("iters", 50, "compile iterations for Table IV averaging")
	flag.Parse()

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	did := false
	if *all || *table == 1 {
		eval.RenderTableI(os.Stdout)
		fmt.Println()
		did = true
	}
	if *all || *table == 2 {
		eval.RenderTableII(os.Stdout)
		fmt.Println()
		did = true
	}
	if *all || *table == 3 {
		eval.RenderTableIII(os.Stdout, pipeline.Config())
		fmt.Println()
		did = true
	}
	if *all || *table == 4 {
		t, err := eval.MeasureTableIV(pipeline, eval.MeasureOptions{CompileIterations: *iters})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		fmt.Println()
		did = true
	}
	if *all || *figure == 10 {
		eval.RenderFigure10(os.Stdout)
		fmt.Println()
		did = true
	}
	if *all || *micro {
		m, err := eval.MeasureMicro(pipeline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m.Render(os.Stdout)
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
