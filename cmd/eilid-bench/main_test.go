package main

import (
	"os"
	"strings"
	"testing"
)

func TestBenchStaticTables(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-table", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("table 1 produced no output")
	}
}

func TestBenchFigure10(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-figure", "10"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("figure 10 produced no output")
	}
}

func TestBenchTable4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table 4 measurement in -short mode")
	}
	var out, errb strings.Builder
	if code := run([]string{"-table", "4", "-iters", "1", "-workers", "4"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Table IV", "LightSensor", "Average"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBenchProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.prof", dir+"/mem.prof"
	var out, errb strings.Builder
	code := run([]string{"-table", "1", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestBenchMemProfileFailureFailsRun(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-table", "1", "-memprofile", t.TempDir() + "/no/such/dir/mem.prof"}, &out, &errb)
	if code != 1 {
		t.Fatalf("unwritable -memprofile: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}

func TestBenchNoSelection(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no selection: exit %d, want 2", code)
	}
}
