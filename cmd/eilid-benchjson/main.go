// Command eilid-benchjson converts `go test -bench` output read from
// stdin into a JSON benchmark record, so the repository can track its
// performance trajectory in-repo (see `make bench-json`).
//
// With -next the output file is auto-selected: the first free
// BENCH_<n>.json index (n >= 1) in the directory named by -o (default
// "."), so each PR appends a new point to the trajectory instead of
// overwriting the previous one. The chosen path is printed to stdout.
//
// Every benchmark result line of the form
//
//	BenchmarkName-8   123   4567 ns/op   89.0 simMcycles/s   12 cycles-orig
//
// becomes one entry carrying the iteration count, ns/op, and every
// custom metric keyed by its unit. Non-benchmark lines (headers, PASS,
// ok) are ignored, so the output of several go test invocations can be
// concatenated on stdin.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Host records the machine that produced the numbers. Benchmark
// trajectories only mean something when points from different hosts
// can be told apart, so every BENCH_<n>.json is stamped with the
// toolchain and CPU it ran on.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel comes from /proc/cpuinfo and is empty on platforms
	// without it; the parsed `cpu:` header from the bench output is
	// kept alongside as a fallback identifier.
	CPUModel string `json:"cpu_model,omitempty"`
}

// hostInfo stamps the running machine.
func hostInfo() Host {
	return Host{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel extracts the first "model name" entry from /proc/cpuinfo
// (best-effort; empty where the file or field is missing).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// Output is the file schema.
type Output struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Host       Host     `json:"host"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eilid-benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "-", "output file (- for stdout); with -next, the directory to scan")
	next := fs.Bool("next", false, "write to the first free BENCH_<n>.json in the -o directory")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	out, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	out.Host = hostInfo()
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "eilid-benchjson: no benchmark lines on stdin")
		return 1
	}

	w := stdout
	if *next {
		dir := *outPath
		if dir == "-" {
			dir = "."
		}
		path, err := nextBenchPath(dir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
		fmt.Fprintln(stdout, path)
	} else if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n >= 1
// with no existing file, so successive runs extend the trajectory
// (BENCH_1.json, BENCH_2.json, ...) without overwriting history.
func nextBenchPath(dir string) (string, error) {
	for n := 1; n < 10000; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			return path, nil
		} else if err != nil {
			return "", fmt.Errorf("eilid-benchjson: stat %s: %w", path, err)
		}
	}
	return "", fmt.Errorf("eilid-benchjson: no free BENCH_<n>.json index in %s", dir)
}

func parse(r io.Reader) (*Output, error) {
	out := &Output{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a benchmark name line without results
		}
		res := Result{
			// Strip the -GOMAXPROCS suffix so entries compare across hosts.
			Name:       trimProcs(fields[0]),
			Iterations: iters,
		}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("eilid-benchjson: bad value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = v
				continue
			}
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// trimProcs removes the trailing -N parallelism suffix go test appends
// to benchmark names.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
