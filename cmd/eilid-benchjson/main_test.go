package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: eilid
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulator_Throughput 	    4788	    538771 ns/op	       111.4 simMcycles/s
BenchmarkTable4/TempSensor-8         	       1	  12345678 ns/op	    853492 cycles-eilid	    812345 cycles-orig	         5.066 overhead-%	      2048 bytes-eilid
PASS
ok  	eilid	4.480s
goos: linux
BenchmarkSimulator_FleetMatrix-8 	      44	  56523807 ns/op	       460.0 jobs/s	        71.60 simMcycles/s
`

func TestParseBenchOutput(t *testing.T) {
	out, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if out.Goos != "linux" || out.Goarch != "amd64" || !strings.Contains(out.CPU, "Xeon") {
		t.Errorf("environment header not parsed: %+v", out)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(out.Benchmarks))
	}
	tp := out.Benchmarks[0]
	if tp.Name != "BenchmarkSimulator_Throughput" || tp.Iterations != 4788 || tp.NsPerOp != 538771 {
		t.Errorf("throughput entry wrong: %+v", tp)
	}
	if tp.Metrics["simMcycles/s"] != 111.4 {
		t.Errorf("throughput metric wrong: %+v", tp.Metrics)
	}
	t4 := out.Benchmarks[1]
	if t4.Name != "BenchmarkTable4/TempSensor" {
		t.Errorf("procs suffix not trimmed: %q", t4.Name)
	}
	if t4.Metrics["overhead-%"] != 5.066 || t4.Metrics["cycles-eilid"] != 853492 {
		t.Errorf("table4 metrics wrong: %+v", t4.Metrics)
	}
	fm := out.Benchmarks[2]
	if fm.Metrics["jobs/s"] != 460.0 {
		t.Errorf("fleet metrics wrong: %+v", fm.Metrics)
	}
}

func TestRunWritesFile(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	var out, errb strings.Builder
	code := run([]string{"-o", path}, strings.NewReader(sample), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed Output
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(parsed.Benchmarks) != 3 {
		t.Fatalf("file has %d benchmarks, want 3", len(parsed.Benchmarks))
	}
	if parsed.Host.GoVersion == "" || parsed.Host.GOMAXPROCS < 1 || parsed.Host.NumCPU < 1 {
		t.Fatalf("host metadata not stamped: %+v", parsed.Host)
	}
}

// TestHostInfo: the stamp reflects the running toolchain, so a record
// produced on another machine is distinguishable from this one.
func TestHostInfo(t *testing.T) {
	h := hostInfo()
	if !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a go version string", h.GoVersion)
	}
	if h.GOMAXPROCS < 1 || h.NumCPU < 1 {
		t.Errorf("CPU counts not stamped: %+v", h)
	}
	// CPUModel is best-effort, but on Linux CI /proc/cpuinfo exists.
	if _, err := os.Stat("/proc/cpuinfo"); err == nil && h.CPUModel == "" {
		t.Error("CPUModel empty despite a readable /proc/cpuinfo")
	}
}

func TestRunNextSelectsFreeIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/BENCH_1.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run([]string{"-next", "-o", dir}, strings.NewReader(sample), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want := dir + "/BENCH_2.json"
	if got := strings.TrimSpace(out.String()); got != want {
		t.Fatalf("reported path %q, want %q", got, want)
	}
	raw, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	var parsed Output
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("BENCH_2.json is not valid JSON: %v", err)
	}
	if len(parsed.Benchmarks) != 3 {
		t.Fatalf("file has %d benchmarks, want 3", len(parsed.Benchmarks))
	}
	// The existing record must be untouched.
	if raw, _ := os.ReadFile(dir + "/BENCH_1.json"); string(raw) != "{}" {
		t.Fatal("-next overwrote BENCH_1.json")
	}
	// A second run with defaults scans the current directory; here just
	// confirm the next run in the same dir picks index 3.
	out.Reset()
	if code := run([]string{"-next", "-o", dir}, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("second -next run failed: %s", errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != dir+"/BENCH_3.json" {
		t.Fatalf("second run chose %q, want BENCH_3.json", got)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, strings.NewReader("PASS\n"), &out, &errb); code != 1 {
		t.Fatalf("exit %d on empty input, want 1", code)
	}
}
