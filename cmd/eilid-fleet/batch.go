package main

// Single-process batch execution: the default mode's aggregate/stream/
// verify paths over one fleet.Runner, plus the -resume path that
// completes an interrupted journal. Both write the same canonical
// NDJSON journal the coordinator's merge produces — byte-identical
// whatever path computed it.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet"
)

// journalWriter is the NDJSON sink with every write, flush and close
// error surfaced: a journal that looks complete but lost its tail to a
// full disk is worse than a loud failure.
type journalWriter struct {
	f *os.File // nil when the journal goes to stdout
	w *bufio.Writer
}

func (jw *journalWriter) result(jr fleet.JobResult) error {
	if err := fleet.WriteNDJSONLine(jw.w, jr); err != nil {
		return err
	}
	// Flush per job: a consumer tailing the file sees every result the
	// moment its job (and its predecessors) finish, and a crash loses at
	// most the OS buffer, never silently drops the middle of the file.
	return jw.w.Flush()
}

// close flushes and closes the sink, reporting the first error; the
// stdout variant only flushes.
func (jw *journalWriter) close() error {
	err := jw.w.Flush()
	if jw.f != nil {
		if cerr := jw.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// batchOpts carries the single-process batch-mode flag values.
type batchOpts struct {
	jsonOut        string // -json: journal destination ("-" = stdout)
	verify         bool
	quiet          bool
	interruptAfter int
}

// runBatch executes the runner's matrix in-process: streaming (the
// default), or aggregate with a sequential replay under -verify.
func runBatch(runner *fleet.Runner, o batchOpts, cancel <-chan struct{}, interrupt func(), stdout, stderr io.Writer) int {
	// The NDJSON journal sink: a flushed writer when -json is set.
	var jw *journalWriter
	if o.jsonOut != "" {
		jw = &journalWriter{}
		if o.jsonOut == "-" {
			// stdout is the NDJSON stream: interleaving the human table
			// would corrupt it for line-oriented consumers.
			o.quiet = true
			jw.w = bufio.NewWriter(stdout)
		} else {
			f, err := os.Create(o.jsonOut)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			jw.f = f
			jw.w = bufio.NewWriter(f)
		}
		err := fleet.WriteJournalHeader(jw.w, runner.JournalHeader())
		if err == nil {
			err = jw.w.Flush()
		}
		if err != nil {
			fmt.Fprintln(stderr, "eilid-fleet: writing journal header:", err)
			jw.close()
			return 1
		}
	}

	emitted := 0
	if o.interruptAfter == 0 {
		interrupt()
	}
	emit := func(jr fleet.JobResult) error {
		if !o.quiet {
			jr.RenderRow(stdout)
		}
		if jw != nil {
			if err := jw.result(jr); err != nil {
				return err
			}
		}
		emitted++
		if o.interruptAfter > 0 && emitted == o.interruptAfter {
			interrupt()
		}
		return nil
	}

	var report *fleet.Report
	interrupted := false
	if o.verify {
		// Verification compares the full concurrent result set against a
		// sequential replay, so this path aggregates in memory.
		rep, err := runner.Run()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		seq, err := runner.RunSequential()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		a, errA := rep.ResultsJSON()
		b, errB := seq.ResultsJSON()
		if errA != nil || errB != nil {
			fmt.Fprintln(stderr, "verify: marshalling failed:", errA, errB)
			return 1
		}
		if !bytes.Equal(a, b) {
			fmt.Fprintln(stderr, "verify: FAILED — concurrent results differ from the sequential replay")
			return 1
		}
		fmt.Fprintf(stdout, "verify: %d-worker run byte-identical to sequential replay (%d jobs)\n",
			rep.Workers, rep.Jobs)
		if !o.quiet {
			fleet.RenderTableHeader(stdout)
		}
		for _, jr := range rep.Results {
			if err := emit(jr); err != nil {
				fmt.Fprintln(stderr, err)
				if jw != nil {
					jw.close()
				}
				return 1
			}
		}
		report = rep
	} else {
		if !o.quiet {
			fleet.RenderTableHeader(stdout)
		}
		var emitErr error
		rep, intr, err := runner.RunStreamCancel(cancel, func(jr fleet.JobResult) {
			if emitErr == nil {
				emitErr = emit(jr)
			}
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if emitErr != nil {
			fmt.Fprintln(stderr, emitErr)
			if jw != nil {
				jw.close()
			}
			return 1
		}
		report = rep
		interrupted = intr
	}

	if interrupted {
		if jw != nil {
			err := fleet.WriteJournalInterrupted(jw.w, emitted, len(runner.Jobs()))
			if cerr := jw.close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(stderr, "eilid-fleet: writing interrupted journal:", err)
				return 1
			}
			fmt.Fprintf(stderr, "eilid-fleet: interrupted after %d/%d jobs; complete with: eilid-fleet -resume %s\n",
				emitted, len(runner.Jobs()), o.jsonOut)
		} else {
			fmt.Fprintf(stderr, "eilid-fleet: interrupted after %d/%d jobs (no -json journal to resume from)\n",
				emitted, len(runner.Jobs()))
		}
		return 3
	}

	if !o.quiet {
		report.RenderSummary(stdout)
	}
	if jw != nil {
		err := fleet.WriteJournalSummary(jw.w, report)
		if cerr := jw.close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, "eilid-fleet: writing journal summary:", err)
			return 1
		}
	}
	if report.Failures > 0 || report.ChecksFailed > 0 {
		return 1
	}
	return 0
}

// runResume completes an interrupted (or fault-failed) journal: rebuild
// the matrix from the header, validate it, run the remaining jobs while
// appending their results crash-safely, then compact the file into
// canonical job order — byte-identical to an uninterrupted run. exec
// carries the run-site execution knobs; the matrix is the journal's.
func runResume(pipeline *core.Pipeline, path string, exec fleet.ExecSpec, cancel <-chan struct{}, quiet bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: resume:", err)
		return 1
	}
	j, err := fleet.ParseJournal(data)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: resume:", err)
		return 2
	}
	if j.Truncated {
		fmt.Fprintln(stderr, "eilid-fleet: resume: journal ends in a torn write (crash mid-job?); the partial line is ignored")
	}
	spec := j.Header.Spec.Batch()
	spec.Exec = exec
	runner, err := fleet.NewRunner(pipeline, spec)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: resume: rebuilding matrix:", err)
		return 2
	}
	if err := j.Validate(runner); err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: resume:", err)
		return 2
	}
	remaining := j.Remaining()
	if len(remaining) == 0 && j.Complete && !j.Truncated {
		fmt.Fprintf(stdout, "resume: %s is already complete (%d jobs)\n", path, j.Header.Jobs)
		return 0
	}

	start := time.Now()
	if len(remaining) > 0 {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			fmt.Fprintln(stderr, "eilid-fleet: resume:", err)
			return 1
		}
		jw := &journalWriter{f: f, w: bufio.NewWriter(f)}
		if !quiet {
			fmt.Fprintf(stdout, "resume: %d/%d jobs already journalled, running %d\n",
				j.Header.Jobs-len(remaining), j.Header.Jobs, len(remaining))
			fleet.RenderTableHeader(stdout)
		}
		var emitErr error
		ran := 0
		interrupted, err := runner.RunIndices(remaining, cancel, func(jr fleet.JobResult) {
			if emitErr != nil {
				return
			}
			if !quiet {
				jr.RenderRow(stdout)
			}
			// Append before recording: if the write fails the job is
			// still "remaining" on the next resume.
			if emitErr = jw.result(jr); emitErr == nil {
				j.Results[jr.Index] = jr
				ran++
			}
		})
		if err == nil {
			err = emitErr
		}
		if err != nil {
			fmt.Fprintln(stderr, "eilid-fleet: resume:", err)
			jw.close()
			return 1
		}
		if interrupted {
			werr := fleet.WriteJournalInterrupted(jw.w, j.Header.Jobs-len(remaining)+ran, j.Header.Jobs)
			if cerr := jw.close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(stderr, "eilid-fleet: resume: writing interrupted journal:", werr)
				return 1
			}
			fmt.Fprintf(stderr, "eilid-fleet: resume interrupted with %d jobs still to run; resume again\n",
				len(remaining)-ran)
			return 3
		}
		if err := jw.close(); err != nil {
			fmt.Fprintln(stderr, "eilid-fleet: resume:", err)
			return 1
		}
	}

	merged, err := j.Merged()
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: resume:", err)
		return 1
	}
	report := fleet.Aggregate(merged, runner.Workers(), time.Since(start))
	// Compact the journal into canonical order — header, all job lines
	// by index, deterministic summary. WriteJournalFile fsyncs the temp
	// file before the rename and the directory after it, so neither a
	// crash nor a power loss can leave a torn or empty file where the
	// complete append-order journal used to be.
	if err := fleet.WriteJournalFile(path, runner.JournalHeader(), merged, report); err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: resume: compacting journal:", err)
		return 1
	}
	if !quiet {
		report.RenderSummary(stdout)
	}
	fmt.Fprintf(stdout, "resume: %s complete (%d jobs, compacted to canonical order)\n", path, j.Header.Jobs)
	if report.Failures > 0 || report.ChecksFailed > 0 {
		return 1
	}
	return 0
}
