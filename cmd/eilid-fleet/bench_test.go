package main

// BenchmarkCoordinator_ShardScaling measures the multi-process
// coordinator end to end — spawn, supervise, merge, fsync — over a
// fixed 300-item generated batch (600 jobs) at 1, 2 and 4 worker
// processes. Each worker pays the full cold start (process spawn,
// pipeline, artifact builds), so this is the honest distributed-mode
// cost, not just the sharded inner loop; jobs/s is the comparable
// metric across process counts.

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func BenchmarkCoordinator_ShardScaling(b *testing.B) {
	const genCount = 300 // × 2 defenses = 600 jobs
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			dir := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				path := filepath.Join(dir, fmt.Sprintf("out-%d-%d.ndjson", procs, i))
				args := append(genArgs(genCount), "-json", path, "-coordinator", fmt.Sprint(procs))
				var out, errb strings.Builder
				if code := run(args, &out, &errb); code != 0 {
					b.Fatalf("coordinator exit %d: %s", code, errb.String())
				}
			}
			b.StopTimer()
			jobs := float64(2*genCount) * float64(b.N)
			b.ReportMetric(jobs/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
