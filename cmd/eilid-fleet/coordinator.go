package main

// Coordinator mode: `eilid-fleet -coordinator N -json out.ndjson`
// shards the matrix across N supervised eilid-fleet worker processes
// (see internal/fleet/coord) and merges their journals into out.ndjson
// — byte-identical to the journal an uninterrupted single-process run
// writes, whatever the workers did along the way.
//
// Workers receive the batch as a serialized fleet.BatchSpec on stdin
// (`-spec -`) — the coordinator's own resolved spec with the pool size
// swapped for the per-worker thread count — so coordinator and worker
// cannot diverge on what the batch is: the worker re-resolves the spec
// to the identical matrix and fingerprint, and shard-journal
// validation rejects anything else.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"eilid/internal/fleet"
	"eilid/internal/fleet/coord"
)

// coordOpts carries the coordinator-mode flag values.
type coordOpts struct {
	procs         int // -coordinator: concurrent worker processes
	shards        int // -shards: shard count (0 = procs)
	workerThreads int // -worker-threads: in-process pool size per worker (0 = auto)
	heartbeat     time.Duration
	liveness      time.Duration
	restarts      int
	backoff       time.Duration
	shardDir      string
	via           string // -worker-via: command prefix transport ("" = direct exec)
	faultKill     string
	faultWedge    string
	out           string // -json: merged journal destination
}

// workerSpec serializes the spec each worker rebuilds its matrix from:
// the coordinator's resolved spec with the worker's in-process pool
// size, and no job-level faults (those are the single-process test
// harness; coordinated runs inject process-level faults instead).
func workerSpec(runner *fleet.Runner, o coordOpts) ([]byte, error) {
	threads := o.workerThreads
	if threads < 1 {
		threads = max(1, runtime.GOMAXPROCS(0)/o.procs)
	}
	spec := runner.Spec()
	spec.Exec.Workers = threads
	spec.Fault = fleet.FaultSpec{}
	return json.Marshal(spec)
}

// transportFor picks the worker transport: direct exec, or the
// -worker-via command prefix (the remote-shell seam).
func transportFor(via string, stderr io.Writer) (coord.Transport, error) {
	if via == "" {
		return coord.ExecSelf(stderr), nil
	}
	prefix, err := splitCommand(via)
	if err != nil {
		return nil, fmt.Errorf("-worker-via: %v", err)
	}
	return coord.CommandTransport(prefix, stderr)
}

// runCoordinator plans, supervises and merges one coordinated batch.
func runCoordinator(runner *fleet.Runner, o coordOpts, cancel <-chan struct{}, quiet bool, stdout, stderr io.Writer) int {
	fault, err := coord.ParseFaults(o.faultKill, o.faultWedge)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet:", err)
		return 2
	}
	spec, err := workerSpec(runner, o)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet:", err)
		return 1
	}
	transport, err := transportFor(o.via, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet:", err)
		return 2
	}

	shardDir := o.shardDir
	cleanup := false
	if shardDir == "" {
		shardDir, err = os.MkdirTemp("", "eilid-fleet-shards-")
		if err != nil {
			fmt.Fprintln(stderr, "eilid-fleet:", err)
			return 1
		}
		cleanup = true
	}
	// On any exit that may leave shard journals behind, tell the user
	// where they are: they are the crash forensics, and a silently
	// retained temp dir is a leak, not a feature.
	retained := func() {
		if cleanup {
			fmt.Fprintf(stderr, "eilid-fleet: shard journals retained for forensics in %s\n", shardDir)
		}
	}

	c, err := coord.New(coord.Config{
		Runner:      runner,
		Workers:     o.procs,
		Shards:      o.shards,
		Spec:        spec,
		Heartbeat:   o.heartbeat,
		Liveness:    o.liveness,
		MaxRestarts: o.restarts,
		Backoff:     o.backoff,
		Dir:         shardDir,
		Fault:       fault,
		Transport:   transport,
		Log:         stderr,
		Cancel:      cancel,
	})
	if err != nil {
		// Nothing ran yet, so the temp dir holds nothing worth keeping.
		if cleanup {
			os.RemoveAll(shardDir)
		}
		fmt.Fprintln(stderr, "eilid-fleet:", err)
		return 2
	}

	rep, sum, interrupted, err := c.Run(o.out)
	sum.Render(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: coordinator:", err)
		retained()
		return 1
	}
	if interrupted {
		fmt.Fprintf(stderr, "eilid-fleet: interrupted after %d/%d jobs; complete with: eilid-fleet -resume %s\n",
			rep.Jobs, len(runner.Jobs()), o.out)
		retained()
		return 3
	}
	// Shard journals are crash forensics; a clean complete run does not
	// need them. An explicit -shard-dir is the user's to keep.
	if cleanup {
		os.RemoveAll(shardDir)
	}
	if !quiet {
		rep.RenderSummary(stdout)
	}
	if rep.Failures > 0 || rep.ChecksFailed > 0 {
		return 1
	}
	return 0
}
