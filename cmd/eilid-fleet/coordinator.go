package main

// Coordinator mode: `eilid-fleet -coordinator N -json out.ndjson`
// shards the matrix across N supervised eilid-fleet worker processes
// (see internal/fleet/coord) and merges their journals into out.ndjson
// — byte-identical to the journal an uninterrupted single-process run
// writes, whatever the workers did along the way.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"eilid/internal/fleet"
	"eilid/internal/fleet/coord"
)

// coordOpts carries the coordinator-mode flag values.
type coordOpts struct {
	procs         int // -coordinator: concurrent worker processes
	shards        int // -shards: shard count (0 = procs)
	workerThreads int // -worker-threads: in-process pool size per worker (0 = auto)
	heartbeat     time.Duration
	liveness      time.Duration
	restarts      int
	backoff       time.Duration
	shardDir      string
	faultKill     string
	faultWedge    string
	out           string // -json: merged journal destination
}

// workerArgs rebuilds the eilid-fleet invocation that reproduces this
// runner's matrix in a worker process, from the canonical resolved
// spec in the journal header — explicit name lists, never "default to
// all", so a registry drift between coordinator and worker shows up as
// a fingerprint mismatch instead of silent wrong results.
func workerArgs(runner *fleet.Runner, spec fleet.Spec, o coordOpts) []string {
	js := runner.JournalHeader().Spec
	threads := o.workerThreads
	if threads < 1 {
		threads = max(1, runtime.GOMAXPROCS(0)/o.procs)
	}
	args := []string{
		"-q",
		"-workers", strconv.Itoa(threads),
		"-heartbeat", o.heartbeat.String(),
	}
	if len(js.Apps) > 0 {
		args = append(args, "-apps", strings.Join(js.Apps, ","))
	} else {
		args = append(args, "-no-apps")
	}
	if len(js.Scenarios) > 0 {
		args = append(args, "-scenarios", strings.Join(js.Scenarios, ","))
	} else {
		args = append(args, "-no-scenarios")
	}
	args = append(args, "-defenses", strings.Join(js.Defenses, ","))
	args = append(args, "-repeat", strconv.Itoa(js.Repeat))
	if js.GenCount > 0 {
		args = append(args, "-gen", strconv.Itoa(js.GenCount), "-seed", strconv.FormatUint(js.GenSeed, 10))
	}
	if spec.NoRecycle {
		args = append(args, "-recycle=false")
	}
	args = append(args, "-job-timeout", spec.JobTimeout.String())
	args = append(args, "-retries", strconv.Itoa(spec.MaxRetries))
	return args
}

// runCoordinator plans, supervises and merges one coordinated batch.
func runCoordinator(runner *fleet.Runner, spec fleet.Spec, o coordOpts, cancel <-chan struct{}, quiet bool, stdout, stderr io.Writer) int {
	fault, err := coord.ParseFaults(o.faultKill, o.faultWedge)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet:", err)
		return 2
	}

	shardDir := o.shardDir
	cleanup := false
	if shardDir == "" {
		shardDir, err = os.MkdirTemp("", "eilid-fleet-shards-")
		if err != nil {
			fmt.Fprintln(stderr, "eilid-fleet:", err)
			return 1
		}
		cleanup = true
	}

	c, err := coord.New(coord.Config{
		Runner:      runner,
		Workers:     o.procs,
		Shards:      o.shards,
		WorkerArgs:  workerArgs(runner, spec, o),
		Heartbeat:   o.heartbeat,
		Liveness:    o.liveness,
		MaxRestarts: o.restarts,
		Backoff:     o.backoff,
		Dir:         shardDir,
		Fault:       fault,
		Spawn:       coord.ExecSelf(stderr),
		Log:         stderr,
		Cancel:      cancel,
	})
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet:", err)
		return 2
	}

	rep, sum, interrupted, err := c.Run(o.out)
	sum.Render(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: coordinator:", err)
		return 1
	}
	if interrupted {
		fmt.Fprintf(stderr, "eilid-fleet: interrupted after %d/%d jobs; complete with: eilid-fleet -resume %s\n",
			rep.Jobs, len(runner.Jobs()), o.out)
		return 3
	}
	// Shard journals are crash forensics; a clean complete run does not
	// need them. An explicit -shard-dir is the user's to keep.
	if cleanup {
		os.RemoveAll(shardDir)
	}
	if !quiet {
		rep.RenderSummary(stdout)
	}
	if rep.Failures > 0 || rep.ChecksFailed > 0 {
		return 1
	}
	return 0
}
