package main

// Multi-process coordinator suite. TestMain doubles the test binary as
// the eilid-fleet worker: the coordinator's ExecSelf spawner re-executes
// the current binary with coord.WorkerEnv set, and TestMain routes that
// straight into run() — so these tests exercise genuine subprocesses,
// genuine SIGKILLs and genuine torn journals, not fakes.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eilid/internal/fleet"
	"eilid/internal/fleet/coord"
)

func TestMain(m *testing.M) {
	if os.Getenv(coord.WorkerEnv) == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// genArgs is the matrix every coordinator test runs: count generated
// variants across two defenses (2×count jobs), no apps, no handcrafted
// scenarios.
func genArgs(count int) []string {
	return []string{
		"-gen", fmt.Sprint(count), "-seed", "1", "-no-apps", "-no-scenarios",
		"-defenses", "baseline,eilid", "-q",
	}
}

// singleJournal runs the batch single-process into a journal file and
// returns its bytes — the byte-identity reference.
func singleJournal(t *testing.T, count int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "single.ndjson")
	var out, errb strings.Builder
	code := run(append(genArgs(count), "-json", path), &out, &errb)
	if code != 0 {
		t.Fatalf("single-process run exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// coordJournal runs the batch under a coordinator with the given extra
// flags and returns the merged journal bytes and captured stderr.
func coordJournal(t *testing.T, count int, extra ...string) ([]byte, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "coord.ndjson")
	var out, errb strings.Builder
	args := append(genArgs(count), "-json", path)
	args = append(args, extra...)
	code := run(args, &out, &errb)
	if code != 0 {
		t.Fatalf("coordinator run exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, errb.String()
}

// summaryCounts extracts the kill counters from the coordinator's
// stderr summary line. Fault kills are deterministic (the worker
// announces its stall and freezes until the SIGKILL lands); liveness
// kills have a deterministic floor but can exceed it when a starved
// machine makes a healthy worker miss its deadline — the merge is
// byte-identical either way, so tests assert ">= floor" on those.
func summaryCounts(t *testing.T, errb string) (faultKills, livenessKills int) {
	t.Helper()
	for _, line := range strings.Split(errb, "\n") {
		if strings.HasPrefix(line, "coordinator: ") {
			var shards, spawns, restarts, reassigned int
			if _, err := fmt.Sscanf(line, "coordinator: %d shards, %d spawns (%d restarts), %d fault kills, %d liveness kills, %d jobs reassigned",
				&shards, &spawns, &restarts, &faultKills, &livenessKills, &reassigned); err != nil {
				t.Fatalf("unparseable summary line %q: %v", line, err)
			}
			return faultKills, livenessKills
		}
	}
	t.Fatalf("no coordinator summary line in stderr:\n%s", errb)
	return 0, 0
}

func TestFleetWorkerShardCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.ndjson")
	var out, errb strings.Builder
	code := run(append(genArgs(6), "-shard", "2:7", "-journal", path, "-heartbeat", "10ms"), &out, &errb)
	if code != 0 {
		t.Fatalf("worker exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	j, err := fleet.ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if j.Shard == nil || j.Shard.Lo != 2 || j.Shard.Hi != 7 {
		t.Fatalf("shard marker = %+v, want [2, 7)", j.Shard)
	}
	if !j.ShardDone {
		t.Fatal("completed shard journal missing shard-done marker")
	}
	if len(j.Results) != 5 {
		t.Fatalf("shard journal has %d results, want 5", len(j.Results))
	}
	for i := 2; i < 7; i++ {
		if _, ok := j.Results[i]; !ok {
			t.Errorf("shard journal missing job %d", i)
		}
	}
}

// transports parametrizes the differential tests over the worker
// transport: direct exec, and the -worker-via command-prefix seam
// through a real shell. The `exec "$0" "$@"` wrapper replaces the
// shell with the worker (same PID), so the coordinator's SIGKILLs land
// on the worker itself — the byte-identity bar must hold unchanged.
var transports = []struct {
	name string
	via  []string
}{
	{"exec", nil},
	{"via-sh", []string{"-worker-via", `sh -c 'exec "$0" "$@"'`}},
}

func TestFleetCoordinatorByteIdentical(t *testing.T) {
	want := singleJournal(t, 40)
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, procs := range []int{2, 4} {
				got, _ := coordJournal(t, 40, append([]string{"-coordinator", fmt.Sprint(procs)}, tr.via...)...)
				if !bytes.Equal(got, want) {
					t.Fatalf("%d-process merged journal differs from single-process journal", procs)
				}
			}
		})
	}
}

// TestFleetCoordinatorSIGKILL kills -9 a real worker subprocess right
// after it journals job K, for K at the first, middle and last index
// of its shard, and requires the reassigned, restarted batch to merge
// byte-identically. 60 jobs over 3 shards of 20: kills at 0 (first of
// shard 0), 30 (middle of shard 1) and 59 (last of shard 2).
func TestFleetCoordinatorSIGKILL(t *testing.T) {
	want := singleJournal(t, 30)
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			got, errb := coordJournal(t, 30, append([]string{
				"-coordinator", "3",
				"-heartbeat", "25ms", "-liveness", "5s",
				"-fault-kill-worker", "0@0,1@30,2@59"}, tr.via...)...)
			if !bytes.Equal(got, want) {
				t.Fatalf("merged journal differs after SIGKILLs at shard edges\nstderr: %s", errb)
			}
			if faultKills, _ := summaryCounts(t, errb); faultKills != 3 {
				t.Errorf("summary reports %d fault kills, want 3:\n%s", faultKills, errb)
			}
		})
	}
}

func TestFleetCoordinatorWedge(t *testing.T) {
	want := singleJournal(t, 20)
	// Shard 1 of [20, 40) wedges silently after job 25; only the
	// liveness deadline can unstick the batch.
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			got, errb := coordJournal(t, 20, append([]string{
				"-coordinator", "2",
				"-heartbeat", "20ms", "-liveness", "2s",
				"-fault-wedge-worker", "1@25"}, tr.via...)...)
			if !bytes.Equal(got, want) {
				t.Fatalf("merged journal differs after a wedged worker\nstderr: %s", errb)
			}
			if _, livenessKills := summaryCounts(t, errb); livenessKills < 1 {
				t.Errorf("summary does not report the liveness kill:\n%s", errb)
			}
		})
	}
}

func TestFleetCoordinatorDegraded(t *testing.T) {
	want := singleJournal(t, 20)
	// Zero restart budget: the killed shard's remainder must finish
	// in-process and the batch must still succeed, byte-identically.
	got, errb := coordJournal(t, 20,
		"-coordinator", "2", "-worker-restarts", "0",
		"-fault-kill-worker", "0@5")
	if !bytes.Equal(got, want) {
		t.Fatalf("merged journal differs after degraded completion\nstderr: %s", errb)
	}
	if !strings.Contains(errb, "degraded mode: ") {
		t.Errorf("stderr does not report degraded mode:\n%s", errb)
	}
}

// TestFleetCoordinatorFaultMatrix is the acceptance batch: a 1000-item
// generated matrix (2000 jobs), merged from 2 and from 4 worker
// processes with a seeded worker kill and a silent wedge in flight,
// byte-identical to the single-process journal both times.
func TestFleetCoordinatorFaultMatrix(t *testing.T) {
	want := singleJournal(t, 1000)
	cases := []struct {
		procs int
		kill  string
		wedge string
	}{
		// 2 shards of 1000: kill mid shard 0, wedge late in shard 1.
		{2, "0@400", "1@1700"},
		// 4 shards of 500: kill early in shard 1, wedge mid shard 3.
		{4, "1@510", "3@1777"},
	}
	for _, tc := range cases {
		got, errb := coordJournal(t, 1000,
			"-coordinator", fmt.Sprint(tc.procs),
			"-heartbeat", "25ms", "-liveness", "3s",
			"-fault-kill-worker", tc.kill,
			"-fault-wedge-worker", tc.wedge)
		if !bytes.Equal(got, want) {
			t.Fatalf("%d-process faulted merge differs from single-process journal\nstderr: %s", tc.procs, errb)
		}
		faultKills, livenessKills := summaryCounts(t, errb)
		if faultKills != 1 || livenessKills < 1 {
			t.Errorf("%d-process summary reports %d fault kills (want 1), %d liveness kills (want >= 1):\n%s",
				tc.procs, faultKills, livenessKills, errb)
		}
	}
}

func TestFleetCoordinatorFlagValidation(t *testing.T) {
	cases := [][]string{
		// Nonsense execution knobs are exit-2 usage errors at parse time.
		{"-workers", "0"},
		{"-workers", "-3"},
		{"-job-timeout", "-1s"},
		{"-repeat", "0"},
		{"-gen", "-1"},
		// Coordinator mode needs a file journal and owns fault injection.
		{"-coordinator", "2"},
		{"-coordinator", "2", "-json", "-"},
		{"-coordinator", "-1", "-json", "x.ndjson"},
		{"-coordinator", "2", "-json", "x.ndjson", "-verify"},
		{"-coordinator", "2", "-json", "x.ndjson", "-fault-panic", "1"},
		{"-coordinator", "2", "-json", "x.ndjson", "-fault-kill-worker", "0"},
		{"-coordinator", "2", "-json", "x.ndjson", "-fault-kill-worker", "0@1", "-fault-wedge-worker", "0@2"},
		// Worker mode needs both halves and excludes the other modes.
		{"-shard", "0:4"},
		{"-journal", "x.ndjson"},
		{"-shard", "0:4", "-journal", "x.ndjson", "-coordinator", "2"},
		{"-shard", "0:4", "-journal", "x.ndjson", "-json", "y.ndjson"},
		{"-gen", "4", "-no-apps", "-no-scenarios", "-shard", "9:8", "-journal", "x.ndjson"},
		{"-gen", "4", "-no-apps", "-no-scenarios", "-shard", "0:4", "-journal", "x.ndjson", "-stall-after", "2", "-stall-mode", "maim"},
		// Resume takes the matrix from the journal, not coordinator flags.
		{"-resume", "x.ndjson", "-coordinator", "2"},
		{"-resume", "x.ndjson", "-shard", "0:4"},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit %d, want 2\nstderr: %s", args, code, errb.String())
		}
	}
}
