// Command eilid-fleet runs the full application × defense ×
// attack-scenario matrix through the fleet runner: every firmware is
// assembled and predecoded once, then the jobs execute concurrently on
// independent simulated machines, and the deterministic per-job results
// are aggregated into a report ending in a defense × attack detection
// matrix.
//
// Usage:
//
//	eilid-fleet [-workers N] [-repeat N] [-apps a,b] [-scenarios x,y]
//	            [-defenses baseline,eilid,shadow,critvar]
//	            [-gen N] [-seed S] [-json out.ndjson] [-verify] [-q]
//	            [-job-timeout 2m] [-retries N]
//	            [-fault-panic i,j] [-fault-transient i,j] [-fault-hang i]
//	            [-fault-seed S -fault-panics N -fault-transients N]
//	            [-interrupt-after K]
//	eilid-fleet -spec batch.json [execution flags] | -dump-spec [matrix flags]
//	eilid-fleet -resume out.ndjson [-workers N] [-recycle=β] [-q]
//	eilid-fleet -coordinator N [-shards M] [-worker-threads T]
//	            [-heartbeat D] [-liveness D] [-worker-restarts R]
//	            [-backoff D] [-shard-dir DIR] [-worker-via 'CMD …']
//	            [-fault-kill-worker K@J,…] [-fault-wedge-worker K@J,…]
//	            -json out.ndjson [matrix flags as above]
//	eilid-fleet -spec - -shard lo:hi -journal shard.ndjson
//	            [-heartbeat D] [-stall-after J -stall-mode kill|wedge]
//
// Every mode is a view over one canonical fleet.BatchSpec: the matrix
// and fault flags parse into it, `-spec batch.json` loads it from JSON
// instead (`-` reads stdin; explicitly-set execution flags still
// override), and `-dump-spec` prints the resolved canonical spec and
// exits — so a batch can be captured, versioned and replayed exactly.
// The journal header fingerprint is derived from the same spec, and a
// spec-driven run is byte-identical to the equivalent flag-driven run.
//
// -defenses selects the defense columns from the registry
// (core.Defenses); the default runs every registered defense.
//
// -gen N adds a third matrix dimension of N seed-derived attack
// variants (internal/scenario) generated from -seed, each run against
// every selected defense. Generation depends only on (seed, index), so
// the per-job NDJSON lines are byte-identical across runs and worker
// counts, and any record is reproducible from its seed and index.
//
// -json streams a resumable NDJSON journal: a header line
// fingerprinting the matrix, one JSON line per job written and flushed
// as the job completes (in job order), and one deterministic summary
// line. The matrix is never materialized in memory, so arbitrarily
// large scenario spaces stream in bounded space. `-json -` sends the
// stream to stdout and implies -q, keeping the stream pure NDJSON.
//
// On SIGINT/SIGTERM the fleet stops dispatch, drains the in-flight
// jobs, journals an interrupted marker and exits with code 3; a second
// signal force-quits. `-resume out.ndjson` rebuilds the matrix from the
// journal header (validating its fingerprint), runs only the jobs not
// yet completed — including any recorded as failed, so fault-injected
// panics re-run clean — appends their results crash-safely, and then
// compacts the file into canonical job order. The compacted file is
// byte-identical to one from an uninterrupted run.
//
// Every job runs inside the runner's fault boundary: a panicking job
// becomes a deterministic failure record instead of killing the batch,
// transient failures retry up to -retries times, and -job-timeout arms
// a per-job wall-clock watchdog that fails (rather than hangs on)
// runaway jobs. The -fault-* flags inject deterministic faults by job
// index (or derived from -fault-seed) for crash-safety testing, and
// -interrupt-after K simulates a kill after the K-th result for
// deterministic resume tests.
//
// -coordinator N shards the resolved job-index space across N
// supervised eilid-fleet worker subprocesses (see internal/fleet/coord
// and README "Architecture") and merges their shard journals into
// -json, byte-identical to an uninterrupted single-process run. Each
// worker receives the serialized BatchSpec on stdin (`-spec -`) and
// rebuilds the identical matrix from it — nothing about the batch is
// replayed through flags. Workers that wedge or die — including
// kill -9 — are restarted with exponential backoff and their
// unfinished indices reassigned, resuming from the dead worker's torn
// journal; when a shard's restart budget (-worker-restarts) is
// exhausted its remainder runs in-process and the batch completes in
// degraded mode rather than failing. -worker-via launches every worker
// through a command prefix (e.g. -worker-via 'sh -c "exec \"$0\"
// \"$@\""', or an ssh command) instead of direct exec — the remote-
// transport seam, with the same byte-identical merge contract.
// -fault-kill-worker and -fault-wedge-worker inject deterministic
// process-level faults for testing. -shard/-journal is the worker side
// of the protocol; it is spawned by the coordinator but can be invoked
// by hand to run one index range into a shard journal.
//
// -verify additionally replays the matrix sequentially and fails unless
// the concurrent results are byte-identical — the fleet's determinism
// contract, checkable from the command line. (Verification needs both
// result sets in memory, so -verify runs aggregate rather than
// streaming; the NDJSON output is line-identical either way.)
//
// Exit codes: 0 success; 1 job failures, failed checks or I/O errors;
// 2 usage or spec errors; 3 interrupted (journal flushed, resumable).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad job index %q: %v", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eilid-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size (1 = sequential)")
	repeat := fs.Int("repeat", 1, "repetitions of every job")
	appsFlag := fs.String("apps", "", "comma-separated application subset (default: all)")
	scenariosFlag := fs.String("scenarios", "", "comma-separated scenario subset (default: all)")
	noApps := fs.Bool("no-apps", false, "skip the application dimension")
	noScenarios := fs.Bool("no-scenarios", false, "skip the attack dimension")
	defensesFlag := fs.String("defenses", "", "comma-separated defense columns (default: all registered)")
	gen := fs.Int("gen", 0, "number of generated attack variants to add (0 = none)")
	seed := fs.Uint64("seed", 1, "seed for the generated dimension")
	specFile := fs.String("spec", "", "load the batch spec from this JSON file (- for stdin) instead of the matrix/fault flags")
	dumpSpec := fs.Bool("dump-spec", false, "print the resolved canonical batch spec as JSON and exit")
	jsonOut := fs.String("json", "", "stream the results as a resumable NDJSON journal to this file (- for stdout)")
	resume := fs.String("resume", "", "resume an interrupted journal: run the remaining jobs and compact the file")
	verify := fs.Bool("verify", false, "replay sequentially and require byte-identical results")
	recycle := fs.Bool("recycle", true, "recycle pooled machines between jobs (false = construct per job)")
	jobTimeout := fs.Duration("job-timeout", 2*time.Minute, "per-job wall-clock watchdog; runaway jobs fail instead of hanging the batch (0 = off)")
	retries := fs.Int("retries", fleet.DefaultMaxRetries, "extra attempts for jobs reporting transient failures (negative = never retry)")
	faultPanic := fs.String("fault-panic", "", "inject a panic at these job indices (crash-safety testing)")
	faultTransient := fs.String("fault-transient", "", "inject a once-transient failure at these job indices")
	faultHang := fs.String("fault-hang", "", "inject a hang at these job indices (requires -job-timeout)")
	faultSeed := fs.Uint64("fault-seed", 0, "derive fault indices from this seed (0 = off)")
	faultPanics := fs.Int("fault-panics", 1, "panics to derive from -fault-seed")
	faultTransients := fs.Int("fault-transients", 1, "transient failures to derive from -fault-seed")
	interruptAfter := fs.Int("interrupt-after", -1, "act as if interrupted after K results (deterministic resume testing; -1 = off)")
	coordinator := fs.Int("coordinator", 0, "shard the batch across N supervised worker processes and merge their journals into -json (0 = off)")
	shardsFlag := fs.Int("shards", 0, "shard count for -coordinator (0 = one per worker process)")
	workerThreads := fs.Int("worker-threads", 0, "in-process pool size of each spawned worker (0 = GOMAXPROCS/N)")
	heartbeat := fs.Duration("heartbeat", 500*time.Millisecond, "worker heartbeat interval on the shard journal")
	liveness := fs.Duration("liveness", 5*time.Second, "SIGKILL a worker whose shard journal stops growing for this long")
	workerRestarts := fs.Int("worker-restarts", 2, "restarts per shard before its remainder runs in-process (degraded mode)")
	backoff := fs.Duration("backoff", 200*time.Millisecond, "initial worker-restart backoff, doubling per restart")
	shardDir := fs.String("shard-dir", "", "directory for shard journals (default: a temp dir, removed on success)")
	workerVia := fs.String("worker-via", "", "coordinator: launch workers through this command prefix (e.g. 'sh -c' wrapper or an ssh command) instead of direct exec")
	faultKillWorker := fs.String("fault-kill-worker", "", "coordinator fault injection: SIGKILL shard K's worker right after it journals job J (comma-separated K@J)")
	faultWedgeWorker := fs.String("fault-wedge-worker", "", "coordinator fault injection: silently wedge shard K's worker after job J (comma-separated K@J)")
	shardFlag := fs.String("shard", "", "worker mode: run only job indices lo:hi and journal them to -journal")
	journalFlag := fs.String("journal", "", "worker mode: shard journal destination")
	stallAfter := fs.Int("stall-after", -1, "worker mode: freeze after journalling this job index (fault injection; -1 = off)")
	stallMode := fs.String("stall-mode", "kill", "worker mode: stall variant — kill (announced on the journal) or wedge (silent)")
	quiet := fs.Bool("q", false, "suppress the per-job table")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	// set records which flags were given explicitly — the difference
	// between "the user asked for this value" and "the flag default",
	// which drives both conflict detection and spec-file overrides.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	// Nonsense execution knobs are usage errors (exit 2), caught before
	// any work: a zero-worker pool would deadlock and a negative
	// watchdog would arm instantly-expired timers.
	switch {
	case *workers < 1:
		fmt.Fprintf(stderr, "eilid-fleet: -workers must be >= 1 (got %d)\n", *workers)
		return 2
	case *jobTimeout < 0:
		fmt.Fprintf(stderr, "eilid-fleet: -job-timeout must be >= 0 (got %v)\n", *jobTimeout)
		return 2
	case *repeat < 1:
		fmt.Fprintf(stderr, "eilid-fleet: -repeat must be >= 1 (got %d)\n", *repeat)
		return 2
	case *gen < 0:
		fmt.Fprintf(stderr, "eilid-fleet: -gen must be >= 0 (got %d)\n", *gen)
		return 2
	case *coordinator < 0:
		fmt.Fprintf(stderr, "eilid-fleet: -coordinator must be >= 0 (got %d)\n", *coordinator)
		return 2
	}

	workerMode := *shardFlag != "" || *journalFlag != ""
	if workerMode && (*shardFlag == "" || *journalFlag == "") {
		fmt.Fprintln(stderr, "eilid-fleet: worker mode needs both -shard and -journal")
		return 2
	}
	if workerMode && (*coordinator != 0 || *resume != "" || *verify || *jsonOut != "" || *interruptAfter >= 0 || *dumpSpec) {
		fmt.Fprintln(stderr, "eilid-fleet: -shard/-journal (worker mode) cannot combine with -coordinator, -resume, -verify, -json, -interrupt-after or -dump-spec")
		return 2
	}
	if *workerVia != "" && *coordinator == 0 {
		fmt.Fprintln(stderr, "eilid-fleet: -worker-via only applies to -coordinator mode")
		return 2
	}

	var resumeConflicts []string
	if *resume != "" {
		// -resume rebuilds the matrix from the journal header; flags
		// that would select a different matrix (or re-inject faults)
		// contradict that and are rejected rather than ignored.
		incompatible := map[string]bool{
			"apps": true, "scenarios": true, "no-apps": true, "no-scenarios": true,
			"defenses": true, "repeat": true, "gen": true, "seed": true,
			"json": true, "verify": true, "fault-panic": true, "fault-transient": true,
			"fault-hang": true, "fault-seed": true, "fault-panics": true,
			"fault-transients": true, "interrupt-after": true,
			"coordinator": true, "shards": true, "shard": true, "journal": true,
			"stall-after": true, "stall-mode": true,
			"fault-kill-worker": true, "fault-wedge-worker": true,
			"spec": true, "dump-spec": true, "worker-via": true,
		}
		fs.Visit(func(f *flag.Flag) {
			if incompatible[f.Name] {
				resumeConflicts = append(resumeConflicts, "-"+f.Name)
			}
		})
		if len(resumeConflicts) > 0 {
			fmt.Fprintf(stderr, "eilid-fleet: -resume takes the matrix from the journal; drop %s\n", strings.Join(resumeConflicts, ", "))
			return 2
		}
	}

	// Everything below the resume path runs over one canonical
	// fleet.BatchSpec, assembled from the flags or loaded via -spec.
	var spec fleet.BatchSpec
	if *resume == "" {
		var code int
		spec, code = assembleSpec(specFlags{
			specFile:       *specFile,
			apps:           *appsFlag,
			scenarios:      *scenariosFlag,
			noApps:         *noApps,
			noScenarios:    *noScenarios,
			defenses:       *defensesFlag,
			repeat:         *repeat,
			gen:            *gen,
			seed:           *seed,
			workers:        *workers,
			recycle:        *recycle,
			jobTimeout:     *jobTimeout,
			retries:        *retries,
			faultPanic:     *faultPanic,
			faultTransient: *faultTransient,
			faultHang:      *faultHang,
			set:            set,
		}, stderr)
		if code != 0 {
			return code
		}
	}

	if *dumpSpec {
		return runDumpSpec(spec, stdout, stderr)
	}

	if *coordinator > 0 {
		if *verify || *interruptAfter >= 0 {
			fmt.Fprintln(stderr, "eilid-fleet: -coordinator cannot combine with -resume, -verify or -interrupt-after")
			return 2
		}
		if *jsonOut == "" || *jsonOut == "-" {
			fmt.Fprintln(stderr, "eilid-fleet: -coordinator needs -json FILE for the merged journal")
			return 2
		}
		if spec.Fault.Enabled() || *faultSeed != 0 {
			fmt.Fprintln(stderr, "eilid-fleet: -coordinator injects process-level faults (-fault-kill-worker, -fault-wedge-worker); drop the job-level -fault-* flags")
			return 2
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops dispatch and
	// drains the in-flight jobs so the journal ends on a clean record
	// boundary; a second one force-quits.
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	interrupt := func() { cancelOnce.Do(func() { close(cancel) }) }
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(stderr, "eilid-fleet: %v: stopping dispatch, draining in-flight jobs (signal again to force quit)\n", s)
		interrupt()
		if _, ok := <-sigc; ok {
			// Hard quit skips deferred cleanup, so a WriteFileAtomic in
			// flight (resume compaction, coordinator merge) can orphan
			// its temp file mid-rename. Temp names are unique and the
			// next atomic write to the same journal reaps `path.tmp*`
			// leftovers, so the orphan can neither be mistaken for a
			// journal nor accrete across crashes.
			os.Exit(130)
		}
	}()

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if *resume != "" {
		return runResume(pipeline, *resume, fleet.ExecSpec{
			Workers:    *workers,
			NoRecycle:  !*recycle,
			JobTimeout: fleet.Duration(*jobTimeout),
			MaxRetries: *retries,
		}, cancel, *quiet, stdout, stderr)
	}

	runner, err := fleet.NewRunner(pipeline, spec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *faultSeed != 0 {
		// Seed-derived faults need the enumerated job count, so build
		// once to learn it, then rebuild with the derived faults merged
		// in (artifacts rebuild too — acceptable for a testing flag).
		derived := fleet.FaultFromSeed(*faultSeed, len(runner.Jobs()), *faultPanics, *faultTransients)
		spec.Fault.PanicAt = append(spec.Fault.PanicAt, derived.PanicAt...)
		spec.Fault.TransientAt = append(spec.Fault.TransientAt, derived.TransientAt...)
		if runner, err = fleet.NewRunner(pipeline, spec); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if workerMode {
		return runWorker(runner, *shardFlag, *journalFlag, *heartbeat, *stallAfter, *stallMode, cancel, stderr)
	}
	if *coordinator > 0 {
		return runCoordinator(runner, coordOpts{
			procs:         *coordinator,
			shards:        *shardsFlag,
			workerThreads: *workerThreads,
			heartbeat:     *heartbeat,
			liveness:      *liveness,
			restarts:      *workerRestarts,
			backoff:       *backoff,
			shardDir:      *shardDir,
			via:           *workerVia,
			faultKill:     *faultKillWorker,
			faultWedge:    *faultWedgeWorker,
			out:           *jsonOut,
		}, cancel, *quiet, stdout, stderr)
	}

	return runBatch(runner, batchOpts{
		jsonOut:        *jsonOut,
		verify:         *verify,
		quiet:          *quiet,
		interruptAfter: *interruptAfter,
	}, cancel, interrupt, stdout, stderr)
}
