// Command eilid-fleet runs the full application × defense ×
// attack-scenario matrix through the fleet runner: every firmware is
// assembled and predecoded once, then the jobs execute concurrently on
// independent simulated machines, and the deterministic per-job results
// are aggregated into a report ending in a defense × attack detection
// matrix.
//
// Usage:
//
//	eilid-fleet [-workers N] [-repeat N] [-apps a,b] [-scenarios x,y]
//	            [-defenses baseline,eilid,shadow,critvar]
//	            [-gen N] [-seed S] [-json out.ndjson] [-verify] [-q]
//
// -defenses selects the defense columns from the registry
// (core.Defenses); the default runs every registered defense.
//
// -gen N adds a third matrix dimension of N seed-derived attack
// variants (internal/scenario) generated from -seed, each run against
// every selected defense. Generation depends only on (seed, index), so
// the per-job NDJSON lines are byte-identical across runs and worker
// counts, and any record is reproducible from its seed and index.
//
// -json streams NDJSON: one JSON line per job, written and flushed as
// the job completes (in job order), followed by one summary line with
// the aggregate counters. The matrix is never materialized in memory,
// so arbitrarily large scenario spaces stream in bounded space.
// `-json -` sends the stream to stdout and implies -q, keeping the
// stream pure NDJSON.
//
// -verify additionally replays the matrix sequentially and fails unless
// the concurrent results are byte-identical — the fleet's determinism
// contract, checkable from the command line. (Verification needs both
// result sets in memory, so -verify runs aggregate rather than
// streaming; the NDJSON output is line-identical either way.)
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"eilid/internal/core"
	"eilid/internal/fleet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eilid-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size (1 = sequential)")
	repeat := fs.Int("repeat", 1, "repetitions of every job")
	appsFlag := fs.String("apps", "", "comma-separated application subset (default: all)")
	scenariosFlag := fs.String("scenarios", "", "comma-separated scenario subset (default: all)")
	noApps := fs.Bool("no-apps", false, "skip the application dimension")
	noScenarios := fs.Bool("no-scenarios", false, "skip the attack dimension")
	defensesFlag := fs.String("defenses", "", "comma-separated defense columns (default: all registered)")
	gen := fs.Int("gen", 0, "number of generated attack variants to add (0 = none)")
	seed := fs.Uint64("seed", 1, "seed for the generated dimension")
	jsonOut := fs.String("json", "", "stream the results as NDJSON (one line per job + a summary line) to this file (- for stdout)")
	verify := fs.Bool("verify", false, "replay sequentially and require byte-identical results")
	recycle := fs.Bool("recycle", true, "recycle pooled machines between jobs (false = construct per job)")
	quiet := fs.Bool("q", false, "suppress the per-job table")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	runner, err := fleet.NewRunner(pipeline, fleet.Spec{
		Apps:        splitList(*appsFlag),
		Scenarios:   splitList(*scenariosFlag),
		NoApps:      *noApps,
		NoScenarios: *noScenarios,
		Defenses:    splitList(*defensesFlag),
		Repeat:      *repeat,
		Workers:     *workers,
		NoRecycle:   !*recycle,
		Generated:   fleet.GeneratedSpec{Seed: *seed, Count: *gen},
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	// The NDJSON sink: a flushed writer when -json is set, else nil.
	var jsonW *bufio.Writer
	if *jsonOut != "" {
		w := stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			defer f.Close()
			w = f
		} else {
			// stdout is the NDJSON stream: interleaving the human table
			// would corrupt it for line-oriented consumers.
			*quiet = true
		}
		jsonW = bufio.NewWriter(w)
	}

	emit := func(jr fleet.JobResult) error {
		if !*quiet {
			jr.RenderRow(stdout)
		}
		if jsonW != nil {
			if err := fleet.WriteNDJSONLine(jsonW, jr); err != nil {
				return err
			}
			// Flush per job: a consumer tailing the file sees every
			// result the moment its job (and its predecessors) finish.
			return jsonW.Flush()
		}
		return nil
	}

	var report *fleet.Report
	if *verify {
		// Verification compares the full concurrent result set against a
		// sequential replay, so this path aggregates in memory.
		rep, err := runner.Run()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		seq, err := runner.RunSequential()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		a, errA := rep.ResultsJSON()
		b, errB := seq.ResultsJSON()
		if errA != nil || errB != nil {
			fmt.Fprintln(stderr, "verify: marshalling failed:", errA, errB)
			return 1
		}
		if !bytes.Equal(a, b) {
			fmt.Fprintln(stderr, "verify: FAILED — concurrent results differ from the sequential replay")
			return 1
		}
		fmt.Fprintf(stdout, "verify: %d-worker run byte-identical to sequential replay (%d jobs)\n",
			rep.Workers, rep.Jobs)
		if !*quiet {
			fleet.RenderTableHeader(stdout)
		}
		for _, jr := range rep.Results {
			if err := emit(jr); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		report = rep
	} else {
		if !*quiet {
			fleet.RenderTableHeader(stdout)
		}
		var emitErr error
		rep, err := runner.RunStream(func(jr fleet.JobResult) {
			if emitErr == nil {
				emitErr = emit(jr)
			}
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if emitErr != nil {
			fmt.Fprintln(stderr, emitErr)
			return 1
		}
		report = rep
	}

	if !*quiet {
		report.RenderSummary(stdout)
	}
	if jsonW != nil {
		if err := report.WriteSummaryNDJSONLine(jsonW); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := jsonW.Flush(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if report.Failures > 0 || report.ChecksFailed > 0 {
		return 1
	}
	return 0
}
