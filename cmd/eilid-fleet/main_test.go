package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestFleetSmallMatrix(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-apps", "LightSensor", "-scenarios", "stack-smash", "-workers", "4",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	for _, want := range []string{"4 jobs", "LightSensor", "stack-smash"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFleetVerifyAndJSON(t *testing.T) {
	path := t.TempDir() + "/report.json"
	var out, errb strings.Builder
	code := run([]string{
		"-apps", "TempSensor", "-no-scenarios", "-workers", "8", "-repeat", "2",
		"-verify", "-q", "-json", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "byte-identical") {
		t.Errorf("verify line missing:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Workers int `json:"workers"`
		Jobs    int `json:"jobs"`
		Results []struct {
			Name   string `json:"name"`
			Cycles uint64 `json:"cycles"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Workers != 8 || rep.Jobs != 4 || len(rep.Results) != 4 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	if rep.Results[0].Name != "TempSensor" || rep.Results[0].Cycles == 0 {
		t.Fatalf("unexpected first result: %+v", rep.Results[0])
	}
}

func TestFleetFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-apps", "NoSuchApp"}, &out, &errb); code != 2 {
		t.Errorf("unknown app: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-workers") {
		t.Errorf("-h did not print usage:\n%s", errb.String())
	}
}
