package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestFleetSmallMatrix(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-apps", "LightSensor", "-scenarios", "stack-smash", "-workers", "4",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	// 1 app + 1 scenario, each across the 4 registered defenses.
	for _, want := range []string{"8 jobs", "LightSensor", "stack-smash", "detection matrix", "shadow", "critvar"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// parseNDJSON splits a journal stream into its header, per-job lines
// and summary line, validating every line is standalone JSON and that
// the journal framing is present.
func parseNDJSON(t *testing.T, raw []byte) (jobs []map[string]any, summary map[string]any) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON stream has %d lines, want >= 2 (header + summary):\n%s", len(lines), raw)
	}
	var header map[string]any
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		switch v["journal"] {
		case "eilid-fleet":
			if i != 0 {
				t.Fatalf("header on line %d, want 0", i)
			}
			header = v
		case "summary":
			summary = v
		case nil:
			jobs = append(jobs, v)
		default:
			t.Fatalf("unexpected journal marker on line %d: %v", i, v["journal"])
		}
	}
	if header == nil {
		t.Fatalf("journal missing header line:\n%s", raw)
	}
	if header["fingerprint"] == "" || header["jobs"].(float64) != float64(len(jobs)) {
		t.Fatalf("bad header (have %d job lines): %+v", len(jobs), header)
	}
	return jobs, summary
}

func TestFleetVerifyAndJSON(t *testing.T) {
	path := t.TempDir() + "/report.ndjson"
	var out, errb strings.Builder
	code := run([]string{
		"-apps", "TempSensor", "-no-scenarios", "-workers", "8", "-repeat", "2",
		"-defenses", "baseline,eilid", "-verify", "-q", "-json", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "byte-identical") {
		t.Errorf("verify line missing:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, summary := parseNDJSON(t, raw)
	if len(jobs) != 4 {
		t.Fatalf("got %d job lines, want 4", len(jobs))
	}
	if jobs[0]["name"] != "TempSensor" || jobs[0]["cycles"].(float64) == 0 {
		t.Fatalf("unexpected first result: %+v", jobs[0])
	}
	if summary["jobs"].(float64) != 4 || summary["failures"].(float64) != 0 {
		t.Fatalf("unexpected summary: %+v", summary)
	}
	for _, nondeterministic := range []string{"results", "workers", "wall_ms"} {
		if _, ok := summary[nondeterministic]; ok {
			t.Fatalf("summary line must not embed %q: %+v", nondeterministic, summary)
		}
	}
}

// TestFleetJSONStreamsDeterministically: the streamed (non-verify)
// journal must be byte-identical to the verify path's, which in turn is
// pinned to the sequential replay — so streaming loses no determinism.
func TestFleetJSONStreamsDeterministically(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(name string, extra ...string) []byte {
		t.Helper()
		path := dir + "/" + name
		var out, errb strings.Builder
		args := append([]string{
			"-apps", "LightSensor", "-scenarios", "rop-chain", "-workers", "6",
			"-q", "-json", path,
		}, extra...)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	streamed := runOnce("streamed.ndjson")
	verified := runOnce("verified.ndjson", "-verify")

	sJobs, sSum := parseNDJSON(t, streamed)
	vJobs, vSum := parseNDJSON(t, verified)
	if len(sJobs) != len(vJobs) {
		t.Fatalf("job line counts differ: %d vs %d", len(sJobs), len(vJobs))
	}
	for i := range sJobs {
		a, _ := json.Marshal(sJobs[i])
		b, _ := json.Marshal(vJobs[i])
		if string(a) != string(b) {
			t.Errorf("job line %d differs:\n%s\n%s", i, a, b)
		}
	}
	a, _ := json.Marshal(sSum)
	b, _ := json.Marshal(vSum)
	if string(a) != string(b) {
		t.Errorf("summaries differ:\n%s\n%s", a, b)
	}
}

// TestFleetGeneratedDimension drives the CLI's -gen/-seed path: a
// fixed-seed generated-only batch exits clean, reports the dimension's
// diagnostics, and streams a journal that is byte-identical across
// worker counts.
func TestFleetGeneratedDimension(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(name, workers string) ([]map[string]any, map[string]any, string) {
		t.Helper()
		path := dir + "/" + name
		var out, errb strings.Builder
		code := run([]string{
			"-no-apps", "-no-scenarios", "-gen", "24", "-seed", "9",
			"-workers", workers, "-q", "-json", path,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		jobs, summary := parseNDJSON(t, raw)
		return jobs, summary, string(raw)
	}

	jobs1, sum1, raw1 := runOnce("w1.ndjson", "1")
	_, _, raw6 := runOnce("w6.ndjson", "6")
	// The whole journal — header, job lines and summary — is pinned
	// byte-identical across worker counts; nothing is sliced off.
	if raw1 != raw6 {
		t.Error("journal differs between -workers 1 and -workers 6")
	}
	if len(jobs1) != 96 {
		t.Fatalf("got %d job lines, want 96 (24 scenarios x 4 defenses)", len(jobs1))
	}
	// The summary line carries the defense × family matrix; tally the
	// per-defense totals out of it.
	matrix, ok := sum1["matrix"].(map[string]any)
	if !ok || len(matrix) == 0 {
		t.Fatalf("summary missing matrix: %+v", sum1)
	}
	jobsOf := func(defense, field string) float64 {
		var n float64
		for _, col := range matrix {
			if cell, ok := col.(map[string]any)[defense].(map[string]any); ok {
				n += cell[field].(float64)
			}
		}
		return n
	}
	if jobsOf("eilid", "jobs") != 24 || jobsOf("baseline", "jobs") != 24 {
		t.Fatalf("lopsided matrix columns: %+v", matrix)
	}
	if n := jobsOf("eilid", "compromised"); n != 0 {
		t.Fatalf("%v EILID compromises in matrix: %+v", n, matrix)
	}
	for _, j := range jobs1 {
		if j["kind"] != "gen" {
			t.Fatalf("non-generated job in generated-only matrix: %+v", j)
		}
		if f, ok := j["family"].(string); !ok || f == "" {
			t.Fatalf("generated job missing family: %+v", j)
		}
		if v, ok := j["victim"].(string); !ok || v == "" {
			t.Fatalf("generated job missing victim: %+v", j)
		}
	}
}

// TestFleetCrashResumeCLI drives the full crash-safety loop through
// the CLI: a batch interrupted after one result exits 3 and journals an
// interrupted marker; -resume completes it and compacts the file to
// byte-identical with an uninterrupted run; a second resume is a no-op.
func TestFleetCrashResumeCLI(t *testing.T) {
	dir := t.TempDir()
	matrix := []string{"-apps", "LightSensor", "-scenarios", "stack-smash"}

	clean := dir + "/clean.ndjson"
	var out, errb strings.Builder
	if code := run(append(matrix, "-workers", "4", "-q", "-json", clean), &out, &errb); code != 0 {
		t.Fatalf("clean run: exit %d, stderr: %s", code, errb.String())
	}

	killed := dir + "/killed.ndjson"
	out.Reset()
	errb.Reset()
	code := run(append(matrix, "-workers", "1", "-interrupt-after", "1", "-q", "-json", killed), &out, &errb)
	if code != 3 {
		t.Fatalf("interrupted run: exit %d, want 3; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-resume") {
		t.Errorf("interrupted run did not point at -resume:\n%s", errb.String())
	}
	raw, err := os.ReadFile(killed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"journal":"interrupted"`) {
		t.Fatalf("interrupted journal missing marker:\n%s", raw)
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-resume", killed, "-workers", "8", "-q"}, &out, &errb); code != 0 {
		t.Fatalf("resume: exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	want, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(killed)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("resumed journal differs from uninterrupted run:\nwant:\n%s\ngot:\n%s", want, got)
	}

	out.Reset()
	if code := run([]string{"-resume", killed, "-q"}, &out, &errb); code != 0 {
		t.Fatalf("second resume: exit %d", code)
	}
	if !strings.Contains(out.String(), "already complete") {
		t.Errorf("second resume did not report completion:\n%s", out.String())
	}
}

// TestFleetFaultInjectionCLI: injected panics fail the batch (exit 1)
// but every job still gets a journal record, and -resume re-runs the
// failed jobs clean — converging to the unfaulted journal.
func TestFleetFaultInjectionCLI(t *testing.T) {
	dir := t.TempDir()
	matrix := []string{"-apps", "LightSensor", "-scenarios", "stack-smash"}

	clean := dir + "/clean.ndjson"
	var out, errb strings.Builder
	if code := run(append(matrix, "-workers", "4", "-q", "-json", clean), &out, &errb); code != 0 {
		t.Fatalf("clean run: exit %d, stderr: %s", code, errb.String())
	}

	faulted := dir + "/faulted.ndjson"
	errb.Reset()
	code := run(append(matrix, "-workers", "4", "-q", "-json", faulted, "-fault-panic", "0,2"), &out, &errb)
	if code != 1 {
		t.Fatalf("faulted run: exit %d, want 1; stderr: %s", code, errb.String())
	}
	raw, err := os.ReadFile(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "injected panic at job 0") {
		t.Fatalf("faulted journal missing panic record:\n%s", raw)
	}

	errb.Reset()
	if code := run([]string{"-resume", faulted, "-q"}, &out, &errb); code != 0 {
		t.Fatalf("resume: exit %d, stderr: %s", code, errb.String())
	}
	want, _ := os.ReadFile(clean)
	got, _ := os.ReadFile(faulted)
	if string(want) != string(got) {
		t.Fatalf("resumed faulted journal differs from clean run:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func TestFleetResumeFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-resume", "x.ndjson", "-gen", "5"}, &out, &errb); code != 2 {
		t.Errorf("-resume with matrix flags: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-gen") {
		t.Errorf("conflict message does not name the flag:\n%s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-resume", "/nonexistent/x.ndjson"}, &out, &errb); code != 1 {
		t.Errorf("-resume of missing file: exit %d, want 1", code)
	}
	errb.Reset()
	if code := run([]string{"-apps", "LightSensor", "-no-scenarios", "-fault-hang", "0", "-job-timeout", "0"}, &out, &errb); code != 2 {
		t.Errorf("-fault-hang without watchdog: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-apps", "LightSensor", "-no-scenarios", "-fault-panic", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unparseable fault index: exit %d, want 2", code)
	}
}

func TestFleetFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-apps", "NoSuchApp"}, &out, &errb); code != 2 {
		t.Errorf("unknown app: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-workers") {
		t.Errorf("-h did not print usage:\n%s", errb.String())
	}
}

// TestFleetResumeReapsOrphanTemp: a force quit (second signal) exits
// mid-WriteFileAtomic without deferred cleanup and can strand
// `journal.tmp*` files next to the journal. A later resume — which
// rewrites the journal through the same atomic path — must reap them
// and still converge to the clean journal.
func TestFleetResumeReapsOrphanTemp(t *testing.T) {
	dir := t.TempDir()
	matrix := []string{"-apps", "LightSensor", "-scenarios", "stack-smash"}

	clean := dir + "/clean.ndjson"
	var out, errb strings.Builder
	if code := run(append(matrix, "-workers", "4", "-q", "-json", clean), &out, &errb); code != 0 {
		t.Fatalf("clean run: exit %d, stderr: %s", code, errb.String())
	}

	killed := dir + "/killed.ndjson"
	errb.Reset()
	if code := run(append(matrix, "-workers", "1", "-interrupt-after", "1", "-q", "-json", killed), &out, &errb); code != 3 {
		t.Fatalf("interrupted run: exit %d, want 3; stderr: %s", code, errb.String())
	}
	orphans := []string{killed + ".tmp", killed + ".tmp-867530"}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("torn rename leftovers"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	errb.Reset()
	if code := run([]string{"-resume", killed, "-workers", "4", "-q"}, &out, &errb); code != 0 {
		t.Fatalf("resume: exit %d, stderr: %s", code, errb.String())
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("resume left orphan temp %s in place", p)
		}
	}
	want, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(killed)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatal("resumed journal differs from the uninterrupted run")
	}
}
