package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestFleetSmallMatrix(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-apps", "LightSensor", "-scenarios", "stack-smash", "-workers", "4",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	// 1 app + 1 scenario, each across the 4 registered defenses.
	for _, want := range []string{"8 jobs", "LightSensor", "stack-smash", "detection matrix", "shadow", "critvar"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// parseNDJSON splits an NDJSON stream into per-job lines and the final
// summary line, validating every line is standalone JSON.
func parseNDJSON(t *testing.T, raw []byte) (jobs []map[string]any, summary map[string]any) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON stream has %d lines, want >= 2 (jobs + summary):\n%s", len(lines), raw)
	}
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if i == len(lines)-1 {
			summary = v
		} else {
			jobs = append(jobs, v)
		}
	}
	return jobs, summary
}

func TestFleetVerifyAndJSON(t *testing.T) {
	path := t.TempDir() + "/report.ndjson"
	var out, errb strings.Builder
	code := run([]string{
		"-apps", "TempSensor", "-no-scenarios", "-workers", "8", "-repeat", "2",
		"-defenses", "baseline,eilid", "-verify", "-q", "-json", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "byte-identical") {
		t.Errorf("verify line missing:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs, summary := parseNDJSON(t, raw)
	if len(jobs) != 4 {
		t.Fatalf("got %d job lines, want 4", len(jobs))
	}
	if jobs[0]["name"] != "TempSensor" || jobs[0]["cycles"].(float64) == 0 {
		t.Fatalf("unexpected first result: %+v", jobs[0])
	}
	if summary["workers"].(float64) != 8 || summary["jobs"].(float64) != 4 {
		t.Fatalf("unexpected summary: %+v", summary)
	}
	if _, ok := summary["results"]; ok {
		t.Fatalf("summary line must not embed the results array: %+v", summary)
	}
}

// TestFleetJSONStreamsDeterministically: the streamed (non-verify)
// NDJSON output must be byte-identical to the verify path's, which in
// turn is pinned to the sequential replay — so streaming loses no
// determinism. The summary line is compared without its wall-clock
// fields.
func TestFleetJSONStreamsDeterministically(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(name string, extra ...string) []byte {
		t.Helper()
		path := dir + "/" + name
		var out, errb strings.Builder
		args := append([]string{
			"-apps", "LightSensor", "-scenarios", "rop-chain", "-workers", "6",
			"-q", "-json", path,
		}, extra...)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	streamed := runOnce("streamed.ndjson")
	verified := runOnce("verified.ndjson", "-verify")

	sJobs, sSum := parseNDJSON(t, streamed)
	vJobs, vSum := parseNDJSON(t, verified)
	if len(sJobs) != len(vJobs) {
		t.Fatalf("job line counts differ: %d vs %d", len(sJobs), len(vJobs))
	}
	for i := range sJobs {
		a, _ := json.Marshal(sJobs[i])
		b, _ := json.Marshal(vJobs[i])
		if string(a) != string(b) {
			t.Errorf("job line %d differs:\n%s\n%s", i, a, b)
		}
	}
	for _, wall := range []string{"wall_ms", "sim_mcycles_per_sec"} {
		delete(sSum, wall)
		delete(vSum, wall)
	}
	a, _ := json.Marshal(sSum)
	b, _ := json.Marshal(vSum)
	if string(a) != string(b) {
		t.Errorf("summaries differ:\n%s\n%s", a, b)
	}
}

// TestFleetGeneratedDimension drives the CLI's -gen/-seed path: a
// fixed-seed generated-only batch exits clean, reports the dimension's
// diagnostics, and streams per-job NDJSON lines that are byte-identical
// across worker counts (the summary line differs only by its workers
// and wall-clock fields, so the comparison stops before it).
func TestFleetGeneratedDimension(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(name, workers string) ([]map[string]any, map[string]any, string) {
		t.Helper()
		path := dir + "/" + name
		var out, errb strings.Builder
		code := run([]string{
			"-no-apps", "-no-scenarios", "-gen", "24", "-seed", "9",
			"-workers", workers, "-q", "-json", path,
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s\n%s", code, errb.String(), out.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		jobs, summary := parseNDJSON(t, raw)
		lines := strings.SplitAfter(string(raw), "\n")
		return jobs, summary, strings.Join(lines[:len(jobs)], "")
	}

	jobs1, sum1, raw1 := runOnce("w1.ndjson", "1")
	_, _, raw6 := runOnce("w6.ndjson", "6")
	if raw1 != raw6 {
		t.Error("generated job lines differ between -workers 1 and -workers 6")
	}
	if len(jobs1) != 96 {
		t.Fatalf("got %d job lines, want 96 (24 scenarios x 4 defenses)", len(jobs1))
	}
	// The summary line carries the defense × family matrix; tally the
	// per-defense totals out of it.
	matrix, ok := sum1["matrix"].(map[string]any)
	if !ok || len(matrix) == 0 {
		t.Fatalf("summary missing matrix: %+v", sum1)
	}
	jobsOf := func(defense, field string) float64 {
		var n float64
		for _, col := range matrix {
			if cell, ok := col.(map[string]any)[defense].(map[string]any); ok {
				n += cell[field].(float64)
			}
		}
		return n
	}
	if jobsOf("eilid", "jobs") != 24 || jobsOf("baseline", "jobs") != 24 {
		t.Fatalf("lopsided matrix columns: %+v", matrix)
	}
	if n := jobsOf("eilid", "compromised"); n != 0 {
		t.Fatalf("%v EILID compromises in matrix: %+v", n, matrix)
	}
	for _, j := range jobs1 {
		if j["kind"] != "gen" {
			t.Fatalf("non-generated job in generated-only matrix: %+v", j)
		}
		if f, ok := j["family"].(string); !ok || f == "" {
			t.Fatalf("generated job missing family: %+v", j)
		}
		if v, ok := j["victim"].(string); !ok || v == "" {
			t.Fatalf("generated job missing victim: %+v", j)
		}
	}
}

func TestFleetFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-apps", "NoSuchApp"}, &out, &errb); code != 2 {
		t.Errorf("unknown app: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-workers") {
		t.Errorf("-h did not print usage:\n%s", errb.String())
	}
}
