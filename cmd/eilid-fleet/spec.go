package main

// Spec assembly: every non-resume mode runs over one canonical
// fleet.BatchSpec, built here — from the matrix/execution/fault flags,
// or loaded from JSON via -spec (the same serialized form -dump-spec
// prints and the coordinator ships to its workers over stdin).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"eilid/internal/fleet"
)

// specFlags carries the parsed flag values the spec assembly consumes,
// plus the set of flags the user gave explicitly.
type specFlags struct {
	specFile    string
	apps        string
	scenarios   string
	noApps      bool
	noScenarios bool
	defenses    string
	repeat      int
	gen         int
	seed        uint64
	workers     int
	recycle     bool
	jobTimeout  time.Duration
	retries     int

	faultPanic     string
	faultTransient string
	faultHang      string

	set map[string]bool // flag name → explicitly given
}

// specCarriedFlags are the flags a -spec file makes redundant: they
// select the matrix or inject job-level faults, which is exactly what
// the file carries. Combining them is a contradiction, rejected rather
// than silently merged.
var specCarriedFlags = []string{
	"apps", "scenarios", "no-apps", "no-scenarios", "defenses",
	"repeat", "gen", "seed",
	"fault-panic", "fault-transient", "fault-hang",
	"fault-seed", "fault-panics", "fault-transients",
}

// assembleSpec builds the run's BatchSpec. With -spec it loads the
// file (explicitly-set execution flags still override — they are
// run-site knobs, not batch identity); otherwise it assembles the spec
// from the flag values. Returns a non-zero exit code on conflict or
// decode errors.
func assembleSpec(fv specFlags, stderr io.Writer) (fleet.BatchSpec, int) {
	if fv.specFile != "" {
		for _, name := range specCarriedFlags {
			if fv.set[name] {
				fmt.Fprintf(stderr, "eilid-fleet: -spec carries the matrix and fault selection; drop -%s\n", name)
				return fleet.BatchSpec{}, 2
			}
		}
		spec, err := loadSpec(fv.specFile)
		if err != nil {
			fmt.Fprintln(stderr, "eilid-fleet:", err)
			return fleet.BatchSpec{}, 2
		}
		if fv.set["workers"] {
			spec.Exec.Workers = fv.workers
		}
		if fv.set["recycle"] {
			spec.Exec.NoRecycle = !fv.recycle
		}
		if fv.set["job-timeout"] {
			spec.Exec.JobTimeout = fleet.Duration(fv.jobTimeout)
		}
		if fv.set["retries"] {
			spec.Exec.MaxRetries = fv.retries
		}
		return spec, 0
	}

	panicAt, err1 := splitInts(fv.faultPanic)
	transientAt, err2 := splitInts(fv.faultTransient)
	hangAt, err3 := splitInts(fv.faultHang)
	for _, e := range []error{err1, err2, err3} {
		if e != nil {
			fmt.Fprintln(stderr, "eilid-fleet:", e)
			return fleet.BatchSpec{}, 2
		}
	}
	spec := fleet.BatchSpec{
		Matrix: fleet.MatrixSpec{
			Apps:        splitList(fv.apps),
			Scenarios:   splitList(fv.scenarios),
			NoApps:      fv.noApps,
			NoScenarios: fv.noScenarios,
			Defenses:    splitList(fv.defenses),
			Repeat:      fv.repeat,
			Generated:   fleet.GeneratedSpec{Seed: fv.seed, Count: fv.gen},
		},
		Exec: fleet.ExecSpec{
			NoRecycle:  !fv.recycle,
			JobTimeout: fleet.Duration(fv.jobTimeout),
			MaxRetries: fv.retries,
		},
		Fault: fleet.FaultSpec{PanicAt: panicAt, TransientAt: transientAt, HangAt: hangAt},
	}
	if fv.set["workers"] {
		// Only an explicit -workers is baked into the spec; the default
		// stays the serialization-stable "0 = GOMAXPROCS at run time",
		// so a dumped spec does not pin this machine's core count.
		spec.Exec.Workers = fv.workers
	}
	return spec, 0
}

// loadSpec reads a serialized BatchSpec from a JSON file, or from
// stdin when path is "-" — the form coordinator-spawned workers
// receive. Unknown fields are errors: a typo'd knob in a spec file
// must not silently select a different batch.
func loadSpec(path string) (fleet.BatchSpec, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return fleet.BatchSpec{}, fmt.Errorf("spec: %w", err)
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec fleet.BatchSpec
	if err := dec.Decode(&spec); err != nil {
		return fleet.BatchSpec{}, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}

// runDumpSpec resolves the assembled spec and prints its canonical
// JSON — the exact document -spec accepts, with the matrix normalized
// to the explicit name lists the journal fingerprint covers.
func runDumpSpec(spec fleet.BatchSpec, stdout, stderr io.Writer) int {
	resolved, err := fleet.ResolveSpec(spec)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet:", err)
		return 2
	}
	b, err := json.MarshalIndent(resolved, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s\n", b)
	return 0
}

// splitCommand splits a -worker-via command string into an argument
// vector, honoring single and double quotes (no escape processing —
// quote styles nest the other kind verbatim, shell-style).
func splitCommand(s string) ([]string, error) {
	var out []string
	var cur []rune
	inWord := false
	quote := rune(0)
	for _, r := range s {
		switch {
		case quote != 0:
			if r == quote {
				quote = 0
			} else {
				cur = append(cur, r)
			}
		case r == '\'' || r == '"':
			quote = r
			inWord = true
		case r == ' ' || r == '\t':
			if inWord {
				out = append(out, string(cur))
				cur, inWord = cur[:0], false
			}
		default:
			cur = append(cur, r)
			inWord = true
		}
	}
	if quote != 0 {
		return nil, fmt.Errorf("unbalanced %c quote in command %q", quote, s)
	}
	if inWord {
		out = append(out, string(cur))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty command")
	}
	return out, nil
}
