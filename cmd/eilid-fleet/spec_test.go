package main

// Spec-file suite: -dump-spec emits the canonical JSON form of every
// flag combination, -spec replays it byte-identically, and the
// conflict/decode error surface stays loud. These are the CLI halves
// of the round-trip contract internal/fleet/spec_test.go pins at the
// type level.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eilid/internal/fleet"
)

// suiteCombos are the matrix flag combinations the rest of the CLI
// suite runs — every one must round-trip flags → spec → JSON → spec
// without changing the batch it selects.
var suiteCombos = [][]string{
	{"-apps", "LightSensor", "-scenarios", "stack-smash", "-workers", "4"},
	{"-apps", "TempSensor", "-no-scenarios", "-workers", "8", "-repeat", "2", "-defenses", "baseline,eilid"},
	{"-apps", "LightSensor", "-scenarios", "rop-chain", "-workers", "6"},
	{"-no-apps", "-no-scenarios", "-gen", "24", "-seed", "9"},
	{"-fault-panic", "0,2", "-apps", "LightSensor", "-no-scenarios", "-retries", "-1"},
}

// dumpSpec runs `-dump-spec` for a flag combo and returns the decoded
// spec plus the raw JSON it printed.
func dumpSpec(t *testing.T, combo []string) (fleet.BatchSpec, []byte) {
	t.Helper()
	var out, errb strings.Builder
	if code := run(append(append([]string{}, combo...), "-dump-spec"), &out, &errb); code != 0 {
		t.Fatalf("dump-spec exit %d, stderr: %s", code, errb.String())
	}
	var spec fleet.BatchSpec
	dec := json.NewDecoder(strings.NewReader(out.String()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		t.Fatalf("dump-spec output does not decode: %v\n%s", err, out.String())
	}
	return spec, []byte(out.String())
}

// TestDumpSpecRoundTrip: for every suite flag combo, the dumped spec
// re-resolves to itself (idempotence through the CLI), re-marshals to
// the same document, and fingerprints identically to the flag-driven
// journal header.
func TestDumpSpecRoundTrip(t *testing.T) {
	for _, combo := range suiteCombos {
		t.Run(strings.Join(combo, " "), func(t *testing.T) {
			spec, raw := dumpSpec(t, combo)
			resolved, err := fleet.ResolveSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			again, err := json.MarshalIndent(resolved, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if string(again)+"\n" != string(raw) {
				t.Errorf("dumped spec is not a fixed point of resolve+marshal:\nfirst:\n%s\nsecond:\n%s", raw, again)
			}
			// A spec-file run must select the identical batch: same
			// fingerprint, hence same journal header, hence same jobs.
			fp, err := spec.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			fp2, err := resolved.Fingerprint()
			if err != nil || fp != fp2 {
				t.Fatalf("fingerprint drifted across resolution: %s vs %s (%v)", fp, fp2, err)
			}
		})
	}
}

// TestSpecFileByteIdenticalJournal is the CLI acceptance bar: a run
// driven by `-spec file.json` writes a journal byte-identical to the
// flag-driven run that produced the file. (The first suite combo keeps
// this fast; CI repeats the comparison from a cold process.)
func TestSpecFileByteIdenticalJournal(t *testing.T) {
	dir := t.TempDir()
	combo := suiteCombos[0]

	flagJournal := filepath.Join(dir, "flags.ndjson")
	var out, errb strings.Builder
	if code := run(append(append([]string{}, combo...), "-q", "-json", flagJournal), &out, &errb); code != 0 {
		t.Fatalf("flag-driven run exit %d, stderr: %s", code, errb.String())
	}

	_, raw := dumpSpec(t, combo)
	specFile := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(specFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	specJournal := filepath.Join(dir, "spec.ndjson")
	out.Reset()
	errb.Reset()
	if code := run([]string{"-spec", specFile, "-q", "-json", specJournal}, &out, &errb); code != 0 {
		t.Fatalf("spec-driven run exit %d, stderr: %s", code, errb.String())
	}

	want, err := os.ReadFile(flagJournal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(specJournal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("spec-driven journal differs from flag-driven journal:\nflags:\n%s\nspec:\n%s", want, got)
	}
}

// TestSpecFlagErrors: a -spec file owns the matrix and fault selection
// — combining it with the flags it replaces, feeding it garbage, or
// pointing it nowhere are all loud exit-2 errors.
func TestSpecFlagErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	_, raw := dumpSpec(t, []string{"-apps", "LightSensor", "-no-scenarios"})
	if err := os.WriteFile(good, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"matrix":{},"exec":{},"fault":{},"bogus":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		args []string
		want string // substring required in stderr
	}{
		{[]string{"-spec", good, "-apps", "LightSensor"}, "drop -apps"},
		{[]string{"-spec", good, "-fault-panic", "1"}, "drop -fault-panic"},
		{[]string{"-spec", good, "-gen", "5"}, "drop -gen"},
		{[]string{"-spec", unknown}, "bogus"},
		{[]string{"-spec", garbage}, "spec"},
		{[]string{"-spec", filepath.Join(dir, "missing.json")}, "spec"},
		{[]string{"-worker-via", "sh -c", "-apps", "LightSensor"}, "-worker-via"},
		{[]string{"-coordinator", "2", "-json", filepath.Join(dir, "x.ndjson"), "-worker-via", "'unbalanced"}, "quote"},
	}
	for _, tc := range cases {
		var out, errb strings.Builder
		if code := run(tc.args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit %d, want 2\nstderr: %s", tc.args, code, errb.String())
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("run(%v) stderr missing %q:\n%s", tc.args, tc.want, errb.String())
		}
	}

	// Execution flags are run-site knobs, not batch identity: they are
	// allowed next to -spec and override the file's values.
	spec, code := assembleSpec(specFlags{
		specFile: good, workers: 3,
		set: map[string]bool{"workers": true},
	}, os.Stderr)
	if code != 0 {
		t.Fatalf("explicit -workers next to -spec rejected (exit %d)", code)
	}
	if spec.Exec.Workers != 3 {
		t.Errorf("explicit -workers did not override the spec file: %+v", spec.Exec)
	}
}

func TestSplitCommand(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"sh -c", []string{"sh", "-c"}},
		{`sh -c 'exec "$0" "$@"'`, []string{"sh", "-c", `exec "$0" "$@"`}},
		{`ssh -o "StrictHostKeyChecking no" host`, []string{"ssh", "-o", "StrictHostKeyChecking no", "host"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{`a 'b "c" d'`, []string{"a", `b "c" d`}},
		{`''`, []string{""}},
	}
	for _, tc := range cases {
		got, err := splitCommand(tc.in)
		if err != nil {
			t.Errorf("splitCommand(%q): %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("splitCommand(%q) = %q, want %q", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitCommand(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
	for _, bad := range []string{"", "   ", "a 'unbalanced", `a "unbalanced`} {
		if got, err := splitCommand(bad); err == nil {
			t.Errorf("splitCommand(%q) = %q, want error", bad, got)
		}
	}
}
