package main

// Worker mode: `eilid-fleet -shard lo:hi -journal shard-K.ndjson` runs
// one contiguous slice of the matrix for a supervising coordinator.
// The worker rebuilds the full matrix from the same flags the
// single-process mode takes (so job identity and the journal
// fingerprint are identical), then executes only [lo, hi) via
// Runner.RunIndices, journalling each result in index order.
//
// The shard journal is the worker's only interface to the coordinator:
// a header line, a shard marker naming the assigned range, one flushed
// line per job, heartbeat lines at -heartbeat intervals, and a
// shard-done marker on completion. The coordinator judges liveness by
// file growth, so everything is flushed the moment it is written.
//
// -stall-after J -stall-mode kill|wedge inject a deterministic
// process-level fault: after journalling job J the worker freezes —
// job lines and heartbeats both stop, as if it wedged mid-write. In
// kill mode it first announces the stall with a fault marker, which
// the coordinator answers with an immediate SIGKILL; in wedge mode it
// freezes silently and only the coordinator's liveness deadline can
// catch it.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"eilid/internal/fleet"
)

// shardSink serializes job lines and heartbeat lines onto one flushed
// journal stream. The mutex is the stall mechanism too: the injected
// stall parks the emitting goroutine while holding it, so heartbeats
// freeze along with the job stream — exactly what a wedged process
// looks like from outside.
type shardSink struct {
	mu         sync.Mutex
	w          *bufio.Writer
	done       int
	stallAfter int
	stallMode  string
	err        error         // first write/flush error, sticky
	failed     chan struct{} // closed when err is first recorded
}

func newShardSink(w *bufio.Writer, stallAfter int, stallMode string) *shardSink {
	if stallAfter < 0 {
		stallAfter = -1
	}
	return &shardSink{w: w, stallAfter: stallAfter, stallMode: stallMode, failed: make(chan struct{})}
}

// failLocked records the sink's first write error and signals the run
// loop (which merges failed into its cancel channel) to stop
// dispatching jobs whose lines could never be journalled. Callers hold
// s.mu.
func (s *shardSink) failLocked(err error) {
	if s.err == nil {
		s.err = err
		close(s.failed)
	}
}

// sinkErr returns the first write error the sink hit, if any — job
// line, flush or heartbeat alike.
func (s *shardSink) sinkErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *shardSink) emit(jr fleet.JobResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		// The journal is already broken; journalling more lines after
		// the break could only corrupt the growth signal the
		// coordinator watches.
		return s.err
	}
	err := fleet.WriteNDJSONLine(s.w, jr)
	if err == nil {
		err = s.w.Flush()
	}
	if err == nil {
		s.done++
		if jr.Index == s.stallAfter {
			if s.stallMode == "kill" {
				fleet.WriteJournalFault(s.w, "stall", jr.Index)
				s.w.Flush()
			}
			// Freeze forever, mutex held. A sleep loop rather than a
			// bare select{}: with every other goroutine also parked,
			// an unwakeable select would trip Go's deadlock detector
			// and exit the process — but the point is to *hang* until
			// the coordinator SIGKILLs us.
			for {
				time.Sleep(time.Hour)
			}
		}
	} else {
		s.failLocked(err)
	}
	return err
}

func (s *shardSink) heartbeatLoop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.mu.Lock()
			err := s.err
			if err == nil {
				err = fleet.WriteJournalHeartbeat(s.w, s.done)
				if err == nil {
					err = s.w.Flush()
				}
				if err != nil {
					// A heartbeat that cannot reach the journal means the
					// coordinator will see a dead worker no matter what we
					// do; surface the error instead of ticking silently
					// against a broken stream.
					s.failLocked(err)
				}
			}
			s.mu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// journalCreate opens the worker's shard journal — a package variable
// so tests can substitute a writer that fails mid-stream and exercise
// the sink's error surfacing.
var journalCreate = func(path string) (io.WriteCloser, error) { return os.Create(path) }

// parseShard parses "lo:hi" against the job count.
func parseShard(s string, n int) (lo, hi int, err error) {
	a, b, ok := strings.Cut(s, ":")
	if ok {
		var e1, e2 error
		lo, e1 = strconv.Atoi(a)
		hi, e2 = strconv.Atoi(b)
		ok = e1 == nil && e2 == nil
	}
	if !ok {
		return 0, 0, fmt.Errorf("-shard %q is not lo:hi", s)
	}
	if lo < 0 || hi <= lo || hi > n {
		return 0, 0, fmt.Errorf("-shard [%d, %d) out of range [0, %d)", lo, hi, n)
	}
	return lo, hi, nil
}

// runWorker executes one shard and writes its journal. Exit codes
// match the single-process mode: 0 complete, 1 I/O failure, 2 bad
// arguments, 3 interrupted by signal (no shard-done marker — the
// coordinator treats it like any other dead worker).
func runWorker(runner *fleet.Runner, shardArg, journalPath string, heartbeat time.Duration, stallAfter int, stallMode string, cancel <-chan struct{}, stderr io.Writer) int {
	lo, hi, err := parseShard(shardArg, len(runner.Jobs()))
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: worker:", err)
		return 2
	}
	if stallMode != "kill" && stallMode != "wedge" {
		fmt.Fprintf(stderr, "eilid-fleet: worker: -stall-mode %q is not kill or wedge\n", stallMode)
		return 2
	}
	if stallAfter >= 0 && (stallAfter < lo || stallAfter >= hi) {
		fmt.Fprintf(stderr, "eilid-fleet: worker: -stall-after %d outside the shard [%d, %d)\n", stallAfter, lo, hi)
		return 2
	}

	f, err := journalCreate(journalPath)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: worker:", err)
		return 1
	}
	s := newShardSink(bufio.NewWriter(f), stallAfter, stallMode)
	werr := fleet.WriteJournalHeader(s.w, runner.JournalHeader())
	if werr == nil {
		werr = fleet.WriteJournalShard(s.w, lo, hi)
	}
	if werr == nil {
		werr = s.w.Flush()
	}
	if werr != nil {
		fmt.Fprintln(stderr, "eilid-fleet: worker:", werr)
		f.Close()
		return 1
	}

	stop := make(chan struct{})
	if heartbeat > 0 {
		go s.heartbeatLoop(heartbeat, stop)
	}

	// A sink failure — job line or heartbeat — must stop dispatch just
	// like a signal would, so merge s.failed into the cancel channel the
	// runner watches. stopMerge reaps the merge goroutine on the normal
	// exit path.
	merged := make(chan struct{})
	stopMerge := make(chan struct{})
	defer close(stopMerge)
	go func() {
		select {
		case <-cancel:
		case <-s.failed:
		case <-stopMerge:
			return
		}
		close(merged)
	}()

	indices := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		indices = append(indices, i)
	}
	interrupted, err := runner.RunIndices(indices, merged, func(jr fleet.JobResult) {
		s.emit(jr)
	})
	close(stop)
	// A sink error outranks "interrupted": the failure path closes
	// merged to halt dispatch, so interrupted=true with a broken journal
	// is an I/O failure (exit 1), not a graceful interruption (exit 3).
	if err == nil {
		err = s.sinkErr()
	}
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleet: worker:", err)
		f.Close()
		return 1
	}

	// The heartbeat goroutine is told to stop but may be mid-write;
	// take the mutex so the trailing marker never interleaves.
	s.mu.Lock()
	defer s.mu.Unlock()
	if !interrupted {
		werr = fleet.WriteJournalShardDone(s.w, s.done)
	}
	if werr == nil {
		werr = s.w.Flush()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(stderr, "eilid-fleet: worker:", werr)
		return 1
	}
	if interrupted {
		fmt.Fprintf(stderr, "eilid-fleet: worker interrupted after %d/%d shard jobs\n", s.done, hi-lo)
		return 3
	}
	return 0
}
