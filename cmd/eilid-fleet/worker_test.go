package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet"
)

// blockedWriter fails every write once tripped (and from the start by
// default) — the unit-level stand-in for a full disk under the shard
// journal.
type blockedWriter struct {
	mu     sync.Mutex
	writes int
	err    error
}

func (w *blockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writes++
	return 0, w.err
}

func (w *blockedWriter) attempts() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes
}

// TestShardSinkHeartbeatError: a heartbeat that cannot reach the
// journal must surface its write error — record it, signal failure and
// stop the loop — not tick on silently against a broken stream.
func TestShardSinkHeartbeatError(t *testing.T) {
	w := &blockedWriter{err: fmt.Errorf("disk full")}
	s := newShardSink(bufio.NewWriter(w), -1, "kill")

	stop := make(chan struct{})
	loopDone := make(chan struct{})
	go func() {
		s.heartbeatLoop(time.Millisecond, stop)
		close(loopDone)
	}()
	select {
	case <-s.failed:
	case <-time.After(10 * time.Second):
		t.Fatal("heartbeat write error never signalled")
	}
	// The loop exits on its own after the failure; stop stays open to
	// prove it is the error, not the stop channel, that ends it.
	select {
	case <-loopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("heartbeat loop kept running after a write error")
	}
	close(stop)
	if err := s.sinkErr(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("sinkErr = %v, want the heartbeat's write error", err)
	}
	// The sink is sticky-broken: emit must return the recorded error
	// without attempting another write.
	before := w.attempts()
	if err := s.emit(fleet.JobResult{}); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("emit after heartbeat failure = %v, want sticky error", err)
	}
	if w.attempts() != before {
		t.Fatal("emit wrote to a sink already known to be broken")
	}
}

// TestShardSinkEmitError: a failed job-line write is recorded once and
// signalled on the failure channel.
func TestShardSinkEmitError(t *testing.T) {
	w := &blockedWriter{err: fmt.Errorf("journal torn")}
	s := newShardSink(bufio.NewWriter(w), -1, "kill")
	if err := s.emit(fleet.JobResult{}); err == nil {
		t.Fatal("emit on a failing writer returned nil")
	}
	select {
	case <-s.failed:
	default:
		t.Fatal("emit error did not signal the failure channel")
	}
	if s.done != 0 {
		t.Fatalf("failed emit counted as done: %d", s.done)
	}
}

// failingJournal replaces the worker's journal file in tests: writes
// succeed until the payload matches trip (or until failAfter writes),
// then every write fails. A non-zero delay parks the writing goroutine
// inside each successful write, which on a single-CPU machine is what
// reliably lets the heartbeat goroutine wake up and contend for the
// sink during an otherwise CPU-bound run.
type failingJournal struct {
	mu        sync.Mutex
	trip      string
	failAfter int
	delay     time.Duration
	writes    int
	buf       bytes.Buffer
	broken    bool
}

func (f *failingJournal) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.broken || (f.trip != "" && bytes.Contains(p, []byte(f.trip))) || (f.failAfter > 0 && f.writes > f.failAfter) {
		f.broken = true
		return 0, fmt.Errorf("injected journal write failure")
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.buf.Write(p)
}

func (f *failingJournal) Close() error { return nil }

func workerRunner(t *testing.T) *fleet.Runner {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := fleet.NewRunner(p, fleet.BatchSpec{
		Matrix: fleet.MatrixSpec{Apps: []string{"LightSensor"}, NoScenarios: true},
		Exec:   fleet.ExecSpec{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestWorkerHeartbeatFailureExitsNonzero: end to end through
// runWorker — when heartbeat lines stop reaching the journal the
// worker exits 1 (I/O failure), not 0 and not 3 (interrupted), even
// though the failure path stops dispatch the way a signal would.
func TestWorkerHeartbeatFailureExitsNonzero(t *testing.T) {
	fj := &failingJournal{trip: `"journal":"heartbeat"`, delay: 2 * time.Millisecond}
	orig := journalCreate
	journalCreate = func(string) (io.WriteCloser, error) { return fj, nil }
	defer func() { journalCreate = orig }()

	var stderr strings.Builder
	code := runWorker(workerRunner(t), "0:4", "ignored", 200*time.Microsecond, -1, "kill", nil, &stderr)
	if code != 1 {
		t.Fatalf("worker exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "injected journal write failure") {
		t.Fatalf("worker stderr does not surface the write error: %s", stderr.String())
	}
}

// TestWorkerEmitFailureExitsNonzero: a job line that cannot be
// journalled fails the worker with exit 1 and the error on stderr.
func TestWorkerEmitFailureExitsNonzero(t *testing.T) {
	fj := &failingJournal{failAfter: 2} // header + shard marker succeed
	orig := journalCreate
	journalCreate = func(string) (io.WriteCloser, error) { return fj, nil }
	defer func() { journalCreate = orig }()

	var stderr strings.Builder
	code := runWorker(workerRunner(t), "0:4", "ignored", 0, -1, "kill", nil, &stderr)
	if code != 1 {
		t.Fatalf("worker exit %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "injected journal write failure") {
		t.Fatalf("worker stderr does not surface the write error: %s", stderr.String())
	}
}
