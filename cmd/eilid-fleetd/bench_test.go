package main

// BenchmarkFleetd_WarmResubmit measures the service mode's reason to
// exist: the submission-to-first-job-line latency the daemon records
// per batch (BatchStatus.FirstJobMS). "cold" submits to a fresh daemon
// whose caches are empty — the batch pays victim builds and machine
// construction before its first job line, which is what every
// `eilid-fleet` CLI invocation pays too. "warm" resubmits the same
// spec to one long-lived daemon primed by an earlier batch, so
// preparation collapses to cache lookups and machine recycles. The
// latency is stamped inside the serve path the moment the first job
// line is journalled, so the measurement is immune to benchmark-
// goroutine scheduling noise on small CI machines. ms-to-first-job is
// the comparable metric; the acceptance bar is warm ≥5× lower.

import (
	"testing"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet"
	"eilid/internal/fleet/serve"
)

// benchSpec is a generated-only matrix: its cold cost is almost
// entirely preparation (24 victim builds plus per-cell machine
// construction) while the jobs themselves are sub-millisecond, so
// time-to-first-job isolates exactly what the warm cache removes.
// Workers is pinned to 1 because journal lines are emitted in job
// order: extra workers cannot emit job 0 any sooner.
func benchSpec() fleet.BatchSpec {
	return fleet.BatchSpec{
		Matrix: fleet.MatrixSpec{
			NoApps:      true,
			NoScenarios: true,
			Generated:   fleet.GeneratedSpec{Seed: 5, Count: 24},
		},
		Exec: fleet.ExecSpec{Workers: 1},
	}
}

// submitAndWait runs one batch to completion and returns the daemon's
// recorded submission-to-first-job-line latency in milliseconds.
func submitAndWait(b *testing.B, s *serve.Server, spec fleet.BatchSpec) float64 {
	b.Helper()
	batch, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	for {
		if _, terminal := batch.Journal(); terminal {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	st := batch.Status()
	if st.State != serve.StateDone {
		b.Fatalf("batch finished in state %q: %s", st.State, st.Error)
	}
	if st.FirstJobMS == 0 {
		b.Fatal("batch recorded no first-job latency")
	}
	return st.FirstJobMS
}

func BenchmarkFleetd_WarmResubmit(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		var total float64
		for i := 0; i < b.N; i++ {
			p, err := core.NewPipeline(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			s := serve.New(p, serve.Options{})
			total += submitAndWait(b, s, benchSpec())
			b.StopTimer()
			s.Stop()
			b.StartTimer()
		}
		b.ReportMetric(total/float64(b.N), "ms-to-first-job")
	})
	b.Run("warm", func(b *testing.B) {
		p, err := core.NewPipeline(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		s := serve.New(p, serve.Options{})
		defer s.Stop()
		submitAndWait(b, s, benchSpec()) // prime the caches
		b.ResetTimer()
		var total float64
		for i := 0; i < b.N; i++ {
			total += submitAndWait(b, s, benchSpec())
		}
		b.ReportMetric(total/float64(b.N), "ms-to-first-job")
	})
}
