// Command eilid-fleetd is the fleet's long-running service mode: a
// persistent HTTP daemon that accepts batch submissions and runs them
// through the ordinary fleet runner while keeping build artifacts,
// decode caches, block tables and recycled machine pools warm across
// batches (internal/fleet/serve). Where every `eilid-fleet` invocation
// pays the full cold start — pipeline construction, a dozen victim
// builds for a generated batch, machine construction per matrix cell —
// a warm daemon runs a resubmitted spec straight on recycled machines.
//
// Usage:
//
//	eilid-fleetd [-addr 127.0.0.1:7199] [-max-queue N] [-q]
//
// Endpoints (see internal/fleet/serve):
//
//	POST /batches              submit a fleet.BatchSpec as JSON — the
//	                           exact document `eilid-fleet -dump-spec`
//	                           prints, with unknown fields rejected
//	GET  /batches              all batch statuses, in submission order
//	GET  /batches/{id}         one batch status
//	GET  /batches/{id}/journal the journal as chunked NDJSON, streamed
//	                           live while the batch runs
//	GET  /healthz              liveness + warm-cache statistics
//
// The streamed journal for a spec is byte-identical to the file
// `eilid-fleet -spec batch.json -json out.ndjson` writes for the same
// spec — the service trades cold starts away without touching the
// determinism contract.
//
// Shutdown: the first SIGINT/SIGTERM drains — intake stops (POST
// returns 503), the in-flight batch finishes, queued batches are
// journalled interrupted, open journal streams complete — and the
// daemon exits 0. A second signal cancels the in-flight batch's
// dispatch (its running jobs drain and it is journalled interrupted)
// and the daemon exits 3.
//
// Exit codes: 0 clean shutdown; 1 startup or serve errors; 2 usage
// errors; 3 shut down with the in-flight batch cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet/serve"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is the testable daemon body: it owns the listener and the serve
// lifecycle, and treats sig as the shutdown control channel (main
// wires real signals to it; tests send values directly).
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("eilid-fleetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7199", "listen address (host:port; port 0 picks a free port)")
	maxQueue := fs.Int("max-queue", 0, "queued batches beyond the running one before POST returns 503 (0 = default)")
	quiet := fs.Bool("q", false, "suppress per-batch lifecycle log lines")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "eilid-fleetd: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *maxQueue < 0 {
		fmt.Fprintf(stderr, "eilid-fleetd: -max-queue must be >= 0 (got %d)\n", *maxQueue)
		return 2
	}

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleetd:", err)
		return 1
	}
	logw := io.Writer(stderr)
	if *quiet {
		logw = io.Discard
	}
	srv := serve.New(pipeline, serve.Options{MaxQueue: *maxQueue, Log: logw})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "eilid-fleetd:", err)
		srv.Drain()
		return 1
	}
	// The resolved address line is the daemon's readiness signal: with
	// -addr …:0 it is the only way to learn the bound port.
	fmt.Fprintf(stdout, "eilid-fleetd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "eilid-fleetd:", err)
		srv.Stop()
		return 1
	case s := <-sig:
		fmt.Fprintf(stderr, "eilid-fleetd: %v: draining — finishing the in-flight batch, rejecting new submissions (signal again to cancel in-flight)\n", s)
	}

	// Drain in the background so a second signal can still escalate to
	// cancelling the in-flight batch.
	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	forced := false
	for waiting := true; waiting; {
		select {
		case <-drained:
			waiting = false
		case s, ok := <-sig:
			if ok && !forced {
				forced = true
				fmt.Fprintf(stderr, "eilid-fleetd: %v: cancelling the in-flight batch\n", s)
				srv.Cancel()
			}
		}
	}

	// The executor is idle; let open journal streams finish flushing
	// their terminal lines before the listener closes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "eilid-fleetd: shutdown:", err)
	}
	if forced {
		return 3
	}
	return 0
}
