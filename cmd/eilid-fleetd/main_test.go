package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet"
)

// syncBuf is a goroutine-safe buffer: run() writes from the daemon
// goroutine while the test polls for the readiness line.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, the signal channel that shuts it down, and the exit-code channel.
func startDaemon(t *testing.T, extra ...string) (url string, sig chan os.Signal, exit chan int) {
	t.Helper()
	var stdout syncBuf
	sig = make(chan os.Signal, 2)
	exit = make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-q"}, extra...)
	go func() { exit <- run(args, &stdout, io.Discard, sig) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		out := stdout.String()
		if i := strings.Index(out, "listening on "); i >= 0 {
			if j := strings.IndexByte(out[i:], '\n'); j >= 0 {
				return "http://" + strings.TrimSpace(out[i+len("listening on "):i+j]), sig, exit
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed its readiness line; stdout: %q", out)
		}
		time.Sleep(time.Millisecond)
	}
}

func daemonSpec() fleet.BatchSpec {
	return fleet.BatchSpec{
		Matrix: fleet.MatrixSpec{
			Apps:      []string{"LightSensor"},
			Scenarios: []string{"stack-smash"},
			Generated: fleet.GeneratedSpec{Seed: 7, Count: 4},
		},
		Exec: fleet.ExecSpec{Workers: 4},
	}
}

// cliJournal is the journal `eilid-fleet -spec … -json out` would
// write for the spec, built through the same fleet API the CLI uses.
func cliJournal(t *testing.T, spec fleet.BatchSpec) []byte {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := fleet.NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fleet.WriteJournalHeader(&buf, r.JournalHeader()); err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunStream(func(jr fleet.JobResult) {
		if err := fleet.WriteNDJSONLine(&buf, jr); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.WriteJournalSummary(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetdSmoke: boot the daemon on an ephemeral port, POST a spec,
// stream its journal, pin it byte-identical to the CLI journal, then
// shut down with one signal and expect a clean exit.
func TestFleetdSmoke(t *testing.T) {
	url, sig, exit := startDaemon(t)

	body, err := json.Marshal(daemonSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /batches: %s: %s", resp.Status, raw)
	}
	var st struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(url + "/batches/" + st.ID + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := cliJournal(t, daemonSpec()); !bytes.Equal(want, got) {
		t.Fatalf("daemon journal differs from CLI journal (%d vs %d bytes)", len(got), len(want))
	}

	sig <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit code %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
}

// TestFleetdDrainExit: a signal with an empty queue drains immediately
// and exits 0; healthz answers before the signal.
func TestFleetdDrainExit(t *testing.T) {
	url, sig, exit := startDaemon(t, "-max-queue", "4")
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %s", resp.Status)
	}
	sig <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGINT")
	}
}

// TestFleetdUsageErrors: bad flags and stray positionals exit 2 without
// binding a socket.
func TestFleetdUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nonsense"},
		{"stray-positional"},
		{"-max-queue", "-3"},
	} {
		var stderr bytes.Buffer
		if code := run(args, io.Discard, &stderr, make(chan os.Signal)); code != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr: %s", args, code, stderr.String())
		}
	}
}
