// Command eilid-instr runs the EILID three-iteration instrumented build
// (paper Figure 2) over an application source and emits the final
// CFI-aware assembly, its listing and the instrumentation statistics.
//
// Usage:
//
//	eilid-instr [-lst] [-stats] file.s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eilid/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eilid-instr", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lst := fs.Bool("lst", false, "print the final listing instead of the source")
	stats := fs.Bool("stats", false, "print instrumentation statistics to stderr")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: eilid-instr [-lst] [-stats] file.s")
		return 2
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	build, err := pipeline.Build(path, string(src))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *lst {
		fmt.Fprint(stdout, build.Instrumented.Listing.String())
	} else {
		fmt.Fprint(stdout, build.InstrumentedSource)
	}
	if *stats {
		s := build.Stats
		fmt.Fprintf(stderr,
			"sites: %d direct calls, %d returns, %d ISR prologues, %d ISR epilogues, %d indirect calls\n",
			s.DirectCalls, s.Returns, s.ISRPrologues, s.ISREpilogues, s.IndirectCalls)
		fmt.Fprintf(stderr, "function table entries: %d; spilled registers: %v; inserted lines: %d\n",
			s.TableEntries, s.SpilledRegs, s.InsertedLines)
		fmt.Fprintf(stderr, "binary: %d -> %d bytes\n",
			build.Original.Image.Size(), build.Instrumented.Image.Size())
	}
	return 0
}
