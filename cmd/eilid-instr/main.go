// Command eilid-instr runs the EILID three-iteration instrumented build
// (paper Figure 2) over an application source and emits the final
// CFI-aware assembly, its listing and the instrumentation statistics.
//
// Usage:
//
//	eilid-instr [-lst] [-stats] file.s
package main

import (
	"flag"
	"fmt"
	"os"

	"eilid/internal/core"
)

func main() {
	lst := flag.Bool("lst", false, "print the final listing instead of the source")
	stats := flag.Bool("stats", false, "print instrumentation statistics to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: eilid-instr [-lst] [-stats] file.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build, err := pipeline.Build(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *lst {
		fmt.Print(build.Instrumented.Listing.String())
	} else {
		fmt.Print(build.InstrumentedSource)
	}
	if *stats {
		s := build.Stats
		fmt.Fprintf(os.Stderr,
			"sites: %d direct calls, %d returns, %d ISR prologues, %d ISR epilogues, %d indirect calls\n",
			s.DirectCalls, s.Returns, s.ISRPrologues, s.ISREpilogues, s.IndirectCalls)
		fmt.Fprintf(os.Stderr, "function table entries: %d; spilled registers: %v; inserted lines: %d\n",
			s.TableEntries, s.SpilledRegs, s.InsertedLines)
		fmt.Fprintf(os.Stderr, "binary: %d -> %d bytes\n",
			build.Original.Image.Size(), build.Instrumented.Image.Size())
	}
}
