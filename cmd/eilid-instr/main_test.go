package main

import (
	"os"
	"strings"
	"testing"
)

const victimSrc = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    call #work
    mov #0, &0x00FC
stop:
    jmp stop
work:
    add #1, r10
    ret
.org 0xFFFE
.word reset
`

func TestInstrumentHappyPath(t *testing.T) {
	path := t.TempDir() + "/victim.s"
	if err := os.WriteFile(path, []byte(victimSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-stats", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"NS_EILID_store_ra", "NS_EILID_check_ra"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("instrumented source missing %q", want)
		}
	}
	if !strings.Contains(errb.String(), "sites: 1 direct calls, 1 returns") {
		t.Errorf("stats missing:\n%s", errb.String())
	}
}

func TestInstrumentListing(t *testing.T) {
	path := t.TempDir() + "/victim.s"
	if err := os.WriteFile(path, []byte(victimSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-lst", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "e000") {
		t.Errorf("listing output missing addresses:\n%s", out.String())
	}
}

func TestInstrumentErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("missing arg: exit %d, want 2", code)
	}
	if code := run([]string{"/no/such.s"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
