// Command eilid-sim runs firmware on the simulated openMSP430 device,
// optionally under EILID protection, and reports the observable outcome
// (cycles, UART transcript, GPIO activity, LCD contents, resets).
//
// Usage:
//
//	eilid-sim -app LightSensor [-unprotected]
//	eilid-sim -file firmware.s [-uart "input"] [-max 10000000]
package main

import (
	"flag"
	"fmt"
	"os"

	"eilid/internal/apps"
	"eilid/internal/core"
)

func main() {
	appName := flag.String("app", "", "run a built-in Table IV application")
	file := flag.String("file", "", "run an assembly file")
	uart := flag.String("uart", "", "bytes to feed the UART receiver")
	maxCycles := flag.Uint64("max", 20_000_000, "cycle budget")
	unprotected := flag.Bool("unprotected", false, "run without the EILID/CASU monitor")
	list := flag.Bool("list", false, "list built-in applications")
	flag.Parse()

	if *list {
		for _, a := range apps.All() {
			fmt.Println(a.Name)
		}
		return
	}

	var source, input string
	var budget uint64 = *maxCycles
	switch {
	case *appName != "":
		app, ok := apps.ByName(*appName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown application %q (try -list)\n", *appName)
			os.Exit(2)
		}
		source, input, budget = app.Source, app.UARTInput, app.MaxCycles
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		source = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: eilid-sim -app NAME | -file firmware.s")
		os.Exit(2)
	}
	if *uart != "" {
		input = *uart
	}

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	build, err := pipeline.Build("firmware.s", source)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opts := core.MachineOptions{Config: pipeline.Config()}
	img := build.Original.Image
	if !*unprotected {
		opts.ROM = pipeline.ROM()
		opts.Protected = true
		img = build.Instrumented.Image
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := m.LoadFirmware(img); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if input != "" {
		m.UART.Feed([]byte(input))
	}
	m.Boot()
	res, err := m.Run(budget)
	if err != nil && err != core.ErrCycleBudget {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mode := "EILID-protected"
	if *unprotected {
		mode = "unprotected baseline"
	}
	fmt.Printf("device:   %s\n", mode)
	fmt.Printf("halted:   %v (exit code %d)\n", res.Halted, res.ExitCode)
	fmt.Printf("cycles:   %d (%.1f us at 100 MHz)\n", res.Cycles, float64(res.Cycles)/100)
	fmt.Printf("insns:    %d\n", res.Insns)
	fmt.Printf("resets:   %d\n", m.ResetCount)
	for _, v := range m.ResetReasons {
		fmt.Printf("  reason: %v\n", v)
	}
	if tx := m.UART.Transcript(); tx != "" {
		fmt.Printf("uart-tx:  %q\n", tx)
	}
	if len(m.Port1.Events) > 0 {
		fmt.Printf("p1-events: %d transitions\n", len(m.Port1.Events))
	}
	if len(m.Port2.Events) > 0 {
		fmt.Printf("p2-events: %d transitions\n", len(m.Port2.Events))
	}
	if r0, r1 := m.LCD.Row(0), m.LCD.Row(1); r0 != "                " || r1 != "                " {
		fmt.Printf("lcd:      [%s]\n          [%s]\n", r0, r1)
	}
}
