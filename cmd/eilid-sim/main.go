// Command eilid-sim runs firmware on the simulated openMSP430 device,
// optionally under EILID protection, and reports the observable outcome
// (cycles, UART transcript, GPIO activity, LCD contents, resets).
//
// Usage:
//
//	eilid-sim -app LightSensor [-unprotected]
//	eilid-sim -file firmware.s [-uart "input"] [-max 10000000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eilid/internal/apps"
	"eilid/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eilid-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "", "run a built-in Table IV application")
	file := fs.String("file", "", "run an assembly file")
	uart := fs.String("uart", "", "bytes to feed the UART receiver")
	maxCycles := fs.Uint64("max", 20_000_000, "cycle budget")
	unprotected := fs.Bool("unprotected", false, "run without the EILID/CASU monitor")
	list := fs.Bool("list", false, "list built-in applications")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		for _, a := range apps.All() {
			fmt.Fprintln(stdout, a.Name)
		}
		return 0
	}

	var source, input string
	var budget uint64 = *maxCycles
	switch {
	case *appName != "":
		app, ok := apps.ByName(*appName)
		if !ok {
			fmt.Fprintf(stderr, "unknown application %q (try -list)\n", *appName)
			return 2
		}
		source, input, budget = app.Source, app.UARTInput, app.MaxCycles
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		source = string(b)
	default:
		fmt.Fprintln(stderr, "usage: eilid-sim -app NAME | -file firmware.s")
		return 2
	}
	if *uart != "" {
		input = *uart
	}

	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	build, err := pipeline.Build("firmware.s", source)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	opts := core.MachineOptions{Config: pipeline.Config()}
	img := build.Original.Image
	if !*unprotected {
		opts.ROM = pipeline.ROM()
		opts.Defense = core.DefenseEILID
		img = build.Instrumented.Image
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := m.LoadFirmware(img); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	m.EnablePredecode()
	if input != "" {
		m.UART.Feed([]byte(input))
	}
	m.Boot()
	res, err := m.Run(budget)
	if err != nil && err != core.ErrCycleBudget {
		fmt.Fprintln(stderr, err)
		return 1
	}

	mode := "EILID-protected"
	if *unprotected {
		mode = "unprotected baseline"
	}
	fmt.Fprintf(stdout, "device:   %s\n", mode)
	fmt.Fprintf(stdout, "halted:   %v (exit code %d)\n", res.Halted, res.ExitCode)
	fmt.Fprintf(stdout, "cycles:   %d (%.1f us at 100 MHz)\n", res.Cycles, float64(res.Cycles)/100)
	fmt.Fprintf(stdout, "insns:    %d\n", res.Insns)
	fmt.Fprintf(stdout, "resets:   %d\n", m.ResetCount)
	for _, v := range m.ResetReasons {
		fmt.Fprintf(stdout, "  reason: %v\n", v)
	}
	if tx := m.UART.Transcript(); tx != "" {
		fmt.Fprintf(stdout, "uart-tx:  %q\n", tx)
	}
	if len(m.Port1.Events) > 0 {
		fmt.Fprintf(stdout, "p1-events: %d transitions\n", len(m.Port1.Events))
	}
	if len(m.Port2.Events) > 0 {
		fmt.Fprintf(stdout, "p2-events: %d transitions\n", len(m.Port2.Events))
	}
	if r0, r1 := m.LCD.Row(0), m.LCD.Row(1); r0 != "                " || r1 != "                " {
		fmt.Fprintf(stdout, "lcd:      [%s]\n          [%s]\n", r0, r1)
	}
	return 0
}
