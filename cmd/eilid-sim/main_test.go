package main

import (
	"os"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// quickstart firmware: the examples/quickstart program shape — compute,
// print over UART, halt.
const quickstartSrc = `
.equ SIMCTL, 0x00FC
.equ UTX,    0x0070

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #0x21, r12     ; '!'
    call #put_char
    mov #0, &SIMCTL
stop:
    jmp stop

put_char:
    mov.b r12, &UTX
    ret

.org 0xFFFE
.word reset
`

func TestRunBuiltinApp(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-app", "LightSensor"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"EILID-protected", "halted:   true", "resets:   0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunQuickstartFile(t *testing.T) {
	path := t.TempDir() + "/quickstart.s"
	if err := writeFile(path, quickstartSrc); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-file", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `uart-tx:  "!"`) {
		t.Errorf("quickstart transcript missing:\n%s", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-app", "NoSuchApp"}, &out, &errb); code != 2 {
		t.Errorf("unknown app: exit %d, want 2", code)
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no input: exit %d, want 2", code)
	}
	if code := run([]string{"-nonsense"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "SyringePump") {
		t.Errorf("-list missing SyringePump:\n%s", out.String())
	}
}
