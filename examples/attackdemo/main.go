// Attackdemo: a guided walk through the paper's headline scenario — a
// stack-buffer overflow that hijacks a return address. The unprotected
// baseline is fully compromised; the EILID device resets the moment the
// corrupted return address fails the shadow-stack check.
package main

import (
	"fmt"
	"log"

	"eilid/internal/attacks"
	"eilid/internal/core"
)

func main() {
	pipeline, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	for _, sc := range attacks.Scenarios() {
		if sc.Name != "stack-smash" && sc.Name != "rop-chain" {
			continue
		}
		fmt.Printf("== %s (%s) ==\n%s\n\n", sc.Name, sc.Property, sc.Description)
		r, err := attacks.Run(pipeline, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline device:   compromised=%v exit=0x%02x\n",
			r.Baseline.Compromised, r.Baseline.ExitCode)
		fmt.Printf("EILID device:      compromised=%v resets=%d reason=%s\n",
			r.Protected.Compromised, r.Protected.Resets, r.Protected.Reason)
		if r.Defended() {
			fmt.Println("verdict:           attack demonstrated on the baseline, STOPPED by EILID")
		} else {
			fmt.Println("verdict:           NOT DEFENDED")
		}
		fmt.Println()
	}
}
