// Quickstart: the complete EILID flow on one application — build the
// trusted ROM, run the three-iteration instrumented compile, execute the
// original firmware on an unprotected device and the instrumented
// firmware on an EILID device, and compare cost and behaviour.
package main

import (
	"fmt"
	"log"

	"eilid/internal/apps"
	"eilid/internal/core"
)

func main() {
	// 1. Configure the device and build EILIDsw into the secure ROM.
	cfg := core.DefaultConfig()
	pipeline, err := core.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EILIDsw: %d bytes of trusted code, entry 0x%04x, exit 0x%04x\n",
		pipeline.ROM().Program.Image.Size(), pipeline.ROM().Entry, pipeline.ROM().Exit)

	// 2. Instrument the LightSensor firmware (paper Figure 2 pipeline).
	app, _ := apps.ByName("LightSensor")
	build, err := pipeline.Build("lightsensor.s", app.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented %d sites (%d direct calls, %d returns, %d indirect, %d ISR)\n",
		build.Stats.Sites(), build.Stats.DirectCalls, build.Stats.Returns,
		build.Stats.IndirectCalls, build.Stats.ISRPrologues+build.Stats.ISREpilogues)
	fmt.Printf("binary size: %d -> %d bytes\n",
		build.Original.Image.Size(), build.Instrumented.Image.Size())

	// 3. Run both variants.
	run := func(protected bool) *apps.Inspection {
		opts := core.MachineOptions{Config: cfg}
		img := build.Original.Image
		if protected {
			opts.ROM = pipeline.ROM()
			opts.Defense = core.DefenseEILID
			img = build.Instrumented.Image
		}
		m, err := core.NewMachine(opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.LoadFirmware(img); err != nil {
			log.Fatal(err)
		}
		m.Boot()
		res, err := m.Run(app.MaxCycles)
		if err != nil {
			log.Fatal(err)
		}
		return apps.Inspect(m, res)
	}
	orig := run(false)
	inst := run(true)

	// 4. Same behaviour, bounded overhead, zero resets.
	if err := apps.Equivalent(orig, inst); err != nil {
		log.Fatalf("behaviour diverged: %v", err)
	}
	over := 100 * float64(inst.Cycles-orig.Cycles) / float64(orig.Cycles)
	fmt.Printf("run time: %d -> %d cycles (+%.2f%%), LED transitions: %d, resets: %d\n",
		orig.Cycles, inst.Cycles, over, len(inst.P1Events), inst.Resets)
	fmt.Println("original and instrumented firmware behave identically — EILID is transparent to benign code")
}
