// Secureupdate: the CASU lifecycle EILID inherits — the only way program
// memory changes is an authenticated, rollback-protected update. The
// demo installs firmware v1, updates to v2 with a properly signed
// package, and shows tampered / replayed / rogue-keyed packages being
// rejected, while run-time writes to flash reset the device.
package main

import (
	"fmt"
	"log"

	"eilid/internal/apps"
	"eilid/internal/casu"
	"eilid/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	pipeline, err := core.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	key := []byte("per-device-update-key-0123456789")
	authority := casu.NewAuthority(key)
	updater := casu.NewUpdater(key, cfg.Layout)

	m, err := core.NewMachine(core.MachineOptions{Config: cfg, ROM: pipeline.ROM(), Defense: core.DefenseEILID})
	if err != nil {
		log.Fatal(err)
	}

	// v1: the temperature logger.
	temp, _ := apps.ByName("TempSensor")
	v1, err := pipeline.Build("temp.s", temp.Source)
	if err != nil {
		log.Fatal(err)
	}
	// Interrupt vectors are provisioned at manufacture (they are not part
	// of the updatable region); the signed package covers user PMEM only.
	provisionVectors(m, v1)
	img, base := v1.Instrumented.Image.BytesInRange(cfg.Layout.PMEMStart, cfg.Layout.PMEMEnd)
	pkg1 := authority.Sign(base, 1, img)
	if err := updater.Apply(m.Space, pkg1); err != nil {
		log.Fatal(err)
	}
	m.Boot()
	if _, err := m.Run(temp.MaxCycles); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v1 installed and ran: UART %q...\n", m.UART.Transcript()[:12])

	// v2: the light sensor, signed with a higher version.
	light, _ := apps.ByName("LightSensor")
	v2, err := pipeline.Build("light.s", light.Source)
	if err != nil {
		log.Fatal(err)
	}
	img2, base2 := v2.Instrumented.Image.BytesInRange(cfg.Layout.PMEMStart, cfg.Layout.PMEMEnd)
	pkg2 := authority.Sign(base2, 2, img2)

	// Attacks on the update channel first:
	tampered := pkg2
	tampered.Data = append([]byte(nil), pkg2.Data...)
	tampered.Data[0] ^= 0xFF
	fmt.Printf("tampered image:  %v\n", updater.Apply(m.Space, tampered))

	rogue := casu.NewAuthority([]byte("attacker-key-....................")).Sign(base2, 3, img2)
	fmt.Printf("rogue authority: %v\n", updater.Apply(m.Space, rogue))

	fmt.Printf("replayed v1:     %v\n", updater.Apply(m.Space, pkg1))

	// The genuine update goes through (vectors re-provisioned for the new
	// firmware's ISR layout).
	if err := updater.Apply(m.Space, pkg2); err != nil {
		log.Fatal(err)
	}
	provisionVectors(m, v2)
	m.Boot()
	if _, err := m.Run(light.MaxCycles); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v2 installed and ran: %d LED transitions, firmware version %d\n",
		len(m.Port1.Events), updater.Version())

	// And at run time, flash stays immutable: self-modifying code resets.
	selfmod := `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #0xBEEF, &0xE800
spin:
    jmp spin
.org 0xFFFE
.word reset
`
	sm, err := pipeline.Build("selfmod.s", selfmod)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := core.NewMachine(core.MachineOptions{Config: cfg, ROM: pipeline.ROM(), Defense: core.DefenseEILID})
	if err != nil {
		log.Fatal(err)
	}
	if err := m2.LoadFirmware(sm.Instrumented.Image); err != nil {
		log.Fatal(err)
	}
	m2.Boot()
	res, err := m2.RunUntilReset(100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run-time flash write: resets=%d reason=%v\n", res.Resets, res.LastReason)
}

// provisionVectors writes the interrupt vector table directly (the
// factory step; the IVT is outside the updatable region by design).
func provisionVectors(m *core.Machine, build *core.BuildResult) {
	for _, c := range build.Instrumented.Image.Chunks() {
		if c.Addr >= m.Space.Layout.IVTStart {
			if err := m.Space.LoadImage(c.Addr, c.Data); err != nil {
				log.Fatal(err)
			}
		}
	}
}
