// Syringepump: drive the paper's indirect-dispatch workload with a custom
// command script, then show forward-edge CFI catching a corrupted
// dispatch-table pointer.
package main

import (
	"fmt"
	"log"
	"strings"

	"eilid/internal/apps"
	"eilid/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	pipeline, err := core.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, _ := apps.ByName("SyringePump")
	build, err := pipeline.Build("syringepump.s", app.Source)
	if err != nil {
		log.Fatal(err)
	}

	newMachine := func() *core.Machine {
		m, err := core.NewMachine(core.MachineOptions{Config: cfg, ROM: pipeline.ROM(), Defense: core.DefenseEILID})
		if err != nil {
			log.Fatal(err)
		}
		if err := m.LoadFirmware(build.Instrumented.Image); err != nil {
			log.Fatal(err)
		}
		return m
	}

	// A custom prescription: dispense 12, withdraw 3, dispense 7.
	script := "D012\nW003\nD007\nQ"
	m := newMachine()
	m.UART.Feed([]byte(script))
	m.Boot()
	res, err := m.Run(app.MaxCycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("script %q -> %d stepper transitions, UART reply %q, %d cycles\n",
		script, len(m.Port2.Events), m.UART.Transcript(), res.Cycles)
	fmt.Printf("function table registered at boot: %04x\n", m.FunctionTable(cfg))

	// Now the attack: mid-run, a memory bug flips the dispense handler
	// pointer inside the command table region... the table itself is in
	// flash, so the attacker corrupts the function pointer register path
	// instead: overwrite r11 (the loaded handler) right before the call.
	m = newMachine()
	m.UART.Feed([]byte("D002\nQ"))
	m.Boot()
	// Step to the forward-edge guard (the instrumented load of the
	// dispatch target) and corrupt the handler register there, modelling
	// a function pointer that was trampled in memory before the load.
	guard := findIndirectGuard(build)
	for m.CPU.PC() != guard {
		if _, err := m.Step(); err != nil {
			log.Fatal(err)
		}
	}
	m.CPU.R[11] = 0xE000 // divert the dispatch to an arbitrary address
	resAtk, err := m.RunUntilReset(app.MaxCycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hijacked dispatch: resets=%d reason=%v\n", resAtk.Resets, resAtk.LastReason)
	if resAtk.Resets > 0 {
		fmt.Println("forward-edge CFI rejected the unregistered call target — device safely reset")
	}
}

// findIndirectGuard locates the instrumented "mov r11, r6" that feeds
// NS_EILID_check_ind before the pump's indirect dispatch.
func findIndirectGuard(build *core.BuildResult) uint16 {
	for _, e := range build.Instrumented.Listing.Entries {
		if e.IsInstr && strings.Contains(e.Source, "EILID: indirect target") {
			return e.Addr
		}
	}
	log.Fatal("indirect guard not found")
	return 0
}
