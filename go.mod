module eilid

go 1.22
