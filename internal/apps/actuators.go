package apps

import (
	"fmt"

	"eilid/internal/periph"
)

// ---- UltrasonicRanger -------------------------------------------------------

const rangerPings = 114 // three periods of the distance model

const rangerSrc = header + `
; HC-SR04 ultrasonic ranger: ping repeatedly, convert echo width to
; centimetres (software division by 58 us/cm), track the minimum
; distance, and light the proximity LED under 10 cm.
.equ NPINGS, 114

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov.b #1, &P1DIR
    clr r9              ; LED state
    mov #0xFFFF, r8     ; minimum distance
    mov #NPINGS, r10
uloop:
    mov #1, &USTRIG
uwait:
    bit #1, &USST
    jz uwait
    mov &USWID, r12
    mov #58, r13
    call #udiv16        ; r12 = centimetres
    cmp r12, r8
    jlo u_nomin         ; current minimum is smaller
    mov r12, r8
u_nomin:
    call #led_update
    dec r10
    jnz uloop
    mov #'m', &UTX
    mov #'=', &UTX
    mov r8, r12
    call #uart_dec
    mov #10, &UTX
    mov #0, &SIMCTL
uhalt:
    jmp uhalt

; r12 = distance in cm; LED on when closer than 10
led_update:
    cmp #10, r12
    jlo lu_near
    tst r9
    jz lu_ret
    clr r9
    mov.b #0, &P1OUT
lu_ret:
    ret
lu_near:
    tst r9
    jnz lu_ret
    mov #1, r9
    mov.b #1, &P1OUT
    ret
` + udiv16 + uartDec + `
.org 0xFFFE
.word reset
`

func rangerExpected() (uart string, p1 []uint8) {
	state := 0
	min := uint16(0xFFFF)
	for n := 0; n < rangerPings; n++ {
		d := periph.RangerDistanceModel(n)
		if d < min {
			min = d
		}
		if d < 10 && state == 0 {
			state = 1
			p1 = append(p1, 1)
		} else if d >= 10 && state == 1 {
			state = 0
			p1 = append(p1, 0)
		}
	}
	return fmt.Sprintf("m=%d\n", min), p1
}

// UltrasonicRanger is the paper's Ultrasonic Ranger benchmark.
func UltrasonicRanger() App {
	return App{
		Name:      "UltrasonicRanger",
		Source:    rangerSrc,
		MaxCycles: 5_000_000,
		Check: func(insp *Inspection) error {
			if !insp.Halted {
				return fmt.Errorf("did not halt")
			}
			uart, p1 := rangerExpected()
			if insp.UART != uart {
				return fmt.Errorf("uart = %q, want %q", insp.UART, uart)
			}
			if err := eqEvents("p1", insp.P1Events, p1); err != nil {
				return fmt.Errorf("proximity LED: %w", err)
			}
			return nil
		},
	}
}

// ---- SyringePump ------------------------------------------------------------

const syringeInput = "D020\nW010\nD005\nQ"

const syringeSrc = header + `
; OpenSyringePump-style controller: reads commands from the UART
; ("D<nnn>" dispense, "W<nnn>" withdraw, "Q" quit) and drives a stepper
; driver on P2 (bit0 step, bit1 direction) through an indirect-dispatch
; command table — the workload that exercises EILID's forward-edge CFI.
.equ STEPMASK, 1
.equ DIRMASK,  2

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov.b #3, &P2DIR
pump_loop:
    call #read_char
    cmp #'Q', r12
    jeq pump_done
    cmp #10, r12
    jeq pump_loop       ; skip newlines
    mov r12, r9         ; command byte
    call #read_num      ; r12 = 3-digit argument
    mov r12, r10
    mov #cmdtab, r14
pfind:
    mov @r14+, r15
    tst r15
    jz pump_bad
    mov @r14+, r11
    cmp r9, r15
    jne pfind
    mov r10, r12
    call r11            ; indirect dispatch to the handler
    jmp pump_loop
pump_bad:
    mov #'?', &UTX
    jmp pump_loop
pump_done:
    mov #'O', &UTX
    mov #'K', &UTX
    mov #10, &UTX
    mov #0, &SIMCTL
phalt:
    jmp phalt

; blocking UART read -> r12
read_char:
rc_wait:
    bit #1, &USTAT
    jz rc_wait
    mov &URX, r12
    ret

; read three ASCII digits -> r12
read_num:
    push r9
    push r10
    clr r9
    mov #3, r10
rn_loop:
    call #read_char
    sub #'0', r12
    rla r9              ; acc*2
    mov r9, r13
    rla r9
    rla r9              ; acc*8
    add r13, r9         ; acc*10
    add r12, r9
    dec r10
    jnz rn_loop
    mov r9, r12
    pop r10
    pop r9
    ret

; r12 = steps
dispense:
    bic.b #DIRMASK, &P2OUT
    jmp do_steps
withdraw:
    bis.b #DIRMASK, &P2OUT
do_steps:
    tst r12
    jz ds_ret
ds_loop:
    bis.b #STEPMASK, &P2OUT
    call #step_delay
    bic.b #STEPMASK, &P2OUT
    call #step_delay
    dec r12
    jnz ds_loop
ds_ret:
    ret

; stepper pulse width (~15 us high / low at 100 MHz)
step_delay:
    mov #500, r13
sd_loop:
    dec r13
    jnz sd_loop
    ret

cmdtab:
.word 'D', dispense
.word 'W', withdraw
.word 0, 0

.org 0xFFFE
.word reset
`

// syringeExpected simulates the command stream against the stepper-pin
// protocol to predict the exact P2OUT transition sequence.
func syringeExpected() (uart string, p2 []uint8) {
	out := uint8(0)
	emit := func(v uint8) {
		if v != out {
			out = v
			p2 = append(p2, v)
		}
	}
	commands := []struct {
		dir   uint8
		steps int
	}{{0, 20}, {2, 10}, {0, 5}}
	for _, c := range commands {
		emit(out&^2 | c.dir)
		for i := 0; i < c.steps; i++ {
			emit(out | 1)
			emit(out &^ 1)
		}
	}
	return "OK\n", p2
}

// SyringePump is the paper's Syringe Pump benchmark.
func SyringePump() App {
	return App{
		Name:      "SyringePump",
		Source:    syringeSrc,
		UARTInput: syringeInput,
		MaxCycles: 5_000_000,
		Check: func(insp *Inspection) error {
			if !insp.Halted {
				return fmt.Errorf("did not halt")
			}
			uart, p2 := syringeExpected()
			if insp.UART != uart {
				return fmt.Errorf("uart = %q, want %q", insp.UART, uart)
			}
			if err := eqEvents("p2", insp.P2Events, p2); err != nil {
				return fmt.Errorf("stepper trace: %w", err)
			}
			return nil
		},
	}
}
