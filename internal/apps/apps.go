// Package apps contains the seven benchmark applications of the paper's
// Table IV — LightSensor, UltrasonicRanger, FireSensor, SyringePump,
// TempSensor, Charlieplexing and LcdSensor — rewritten in MSP430 assembly
// against the simulated peripherals of internal/periph. The originals are
// Seeed Grove/LaunchPad demos, OpenSyringePump and ticepd msp430-examples
// ported to openMSP430; these versions keep the structural properties
// that drive EILID's overhead: function-call density, ISR usage, indirect
// dispatch (SyringePump), polling loops and formatted output.
//
// Every application is deterministic: the sensor models are pure
// functions of the sample index, so the observable behaviour (GPIO
// transition sequence, UART transcript, LCD contents) must be bit-for-bit
// identical between the original and the EILID-instrumented build — the
// equivalence the integration tests assert.
package apps

import (
	"fmt"

	"eilid/internal/core"
)

// App is one benchmark application.
type App struct {
	// Name as reported in the paper's Table IV.
	Name string
	// Source is the MSP430 assembly.
	Source string
	// UARTInput is fed to the receive queue before boot.
	UARTInput string
	// MaxCycles bounds a run (well above the expected runtime).
	MaxCycles uint64
	// Check validates the observable behaviour of a halted run.
	Check func(insp *Inspection) error
}

// Inspection is the observable state of a finished run — everything an
// outside observer (or the paper's testbench) could see.
type Inspection struct {
	Halted   bool
	ExitCode uint16
	Cycles   uint64
	Insns    uint64
	Resets   int
	// ReasonsRecorded counts the retained per-reset violation records;
	// Resets keeps the true total when a reset storm saturates the
	// machine's bounded reason log.
	ReasonsRecorded int
	UART            string
	LCD             [2]string
	P1Events        []uint8 // P1OUT transition values, in order
	P2Events        []uint8
}

// Inspect captures a machine's observable state. res is the result of the
// Run that finished.
func Inspect(m *core.Machine, res core.RunResult) *Inspection {
	insp := &Inspection{
		Halted:          res.Halted,
		ExitCode:        res.ExitCode,
		Cycles:          res.Cycles,
		Insns:           res.Insns,
		Resets:          m.ResetCount,
		ReasonsRecorded: len(m.ResetReasons),
		UART:            m.UART.Transcript(),
		LCD:             [2]string{m.LCD.Row(0), m.LCD.Row(1)},
	}
	for _, e := range m.Port1.Events {
		insp.P1Events = append(insp.P1Events, e.Value)
	}
	for _, e := range m.Port2.Events {
		insp.P2Events = append(insp.P2Events, e.Value)
	}
	return insp
}

// Equivalent reports the first observable difference between two runs
// (ignoring timing), or nil. This is the original-vs-instrumented
// functional-preservation check.
func Equivalent(a, b *Inspection) error {
	if a.Halted != b.Halted {
		return fmt.Errorf("halted: %v vs %v", a.Halted, b.Halted)
	}
	if a.ExitCode != b.ExitCode {
		return fmt.Errorf("exit code: %d vs %d", a.ExitCode, b.ExitCode)
	}
	if a.UART != b.UART {
		return fmt.Errorf("uart transcripts differ:\n%q\n%q", a.UART, b.UART)
	}
	if a.LCD != b.LCD {
		return fmt.Errorf("lcd contents differ: %q vs %q", a.LCD, b.LCD)
	}
	if err := eqEvents("p1", a.P1Events, b.P1Events); err != nil {
		return err
	}
	return eqEvents("p2", a.P2Events, b.P2Events)
}

func eqEvents(port string, a, b []uint8) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s event counts differ: %d vs %d", port, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%s event %d differs: 0x%02x vs 0x%02x", port, i, a[i], b[i])
		}
	}
	return nil
}

// All returns the seven Table IV applications in the paper's order.
func All() []App {
	return []App{
		LightSensor(),
		UltrasonicRanger(),
		FireSensor(),
		SyringePump(),
		TempSensor(),
		Charlieplexing(),
		LcdSensor(),
	}
}

// ByName finds an application.
func ByName(name string) (App, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Common register-definition header shared by the application sources.
const header = `
.equ P1IN,   0x0020
.equ P1OUT,  0x0021
.equ P1DIR,  0x0022
.equ P2OUT,  0x0029
.equ P2DIR,  0x002A
.equ UTX,    0x0070
.equ URX,    0x0072
.equ USTAT,  0x0074
.equ ADCCTL, 0x0080
.equ ADCMEM, 0x0082
.equ ADCST,  0x0084
.equ LCDCMD, 0x0090
.equ LCDDAT, 0x0092
.equ USTRIG, 0x00A0
.equ USWID,  0x00A2
.equ USST,   0x00A4
.equ SIMCTL, 0x00FC
.equ TACTL,  0x0160
.equ TAR,    0x0170
.equ TACCR0, 0x0172
`

// udiv16 is the software division routine shared by several apps:
// r12 / r13 -> quotient r12, remainder r14; clobbers r15.
const udiv16 = `
; unsigned 16-bit divide: r12/r13 -> r12 (quot), r14 (rem); clobbers r15
udiv16:
    clr r14
    mov #16, r15
udiv_loop:
    rla r12
    rlc r14
    cmp r13, r14
    jlo udiv_skip
    sub r13, r14
    bis #1, r12
udiv_skip:
    dec r15
    jnz udiv_loop
    ret
`

// uartDec prints r12 as unsigned decimal on the UART; clobbers r12-r15,
// preserves r10.
const uartDec = `
; print r12 in decimal on the UART
uart_dec:
    push r10
    clr r10
udec_split:
    mov #10, r13
    call #udiv16
    add #'0', r14
    push r14
    inc r10
    tst r12
    jnz udec_split
udec_out:
    pop r13
    mov r13, &UTX
    dec r10
    jnz udec_out
    pop r10
    ret
`
