package apps

import (
	"strings"
	"testing"

	"eilid/internal/core"
)

func pipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runMachine boots a machine with the app's UART input and runs it.
func runMachine(t *testing.T, m *core.Machine, app App) *Inspection {
	t.Helper()
	if app.UARTInput != "" {
		m.UART.Feed([]byte(app.UARTInput))
	}
	m.Boot()
	res, err := m.Run(app.MaxCycles)
	if err != nil {
		t.Fatalf("%s: %v (pc=0x%04x)", app.Name, err, m.CPU.PC())
	}
	return Inspect(m, res)
}

func TestAppsOriginalBehaviour(t *testing.T) {
	p := pipeline(t)
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			prog, err := p.BuildOriginal(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}
			m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadFirmware(prog.Image); err != nil {
				t.Fatal(err)
			}
			insp := runMachine(t, m, app)
			if err := app.Check(insp); err != nil {
				t.Fatalf("behaviour check: %v", err)
			}
			t.Logf("%s: %d cycles, %d instructions, %d bytes",
				app.Name, insp.Cycles, insp.Insns, prog.Image.SizeInRange(0xE000, 0xF7FF))
		})
	}
}

func TestAppsInstrumentedEquivalence(t *testing.T) {
	p := pipeline(t)
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r, err := p.Build(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}

			// Original on the unprotected baseline.
			mb, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
			if err != nil {
				t.Fatal(err)
			}
			if err := mb.LoadFirmware(r.Original.Image); err != nil {
				t.Fatal(err)
			}
			orig := runMachine(t, mb, app)

			// Instrumented on the EILID-protected device.
			mp, err := core.NewMachine(core.MachineOptions{
				Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := mp.LoadFirmware(r.Instrumented.Image); err != nil {
				t.Fatal(err)
			}
			inst := runMachine(t, mp, app)

			if inst.Resets != 0 {
				t.Fatalf("benign run reset %d times: %v", inst.Resets, mp.ResetReasons)
			}
			if err := Equivalent(orig, inst); err != nil {
				t.Fatalf("observable behaviour diverged: %v", err)
			}
			if err := app.Check(orig); err != nil {
				t.Errorf("original behaviour: %v", err)
			}
			if err := app.Check(inst); err != nil {
				t.Errorf("instrumented behaviour: %v", err)
			}
			// Shadow stack must be balanced when the app halts.
			if mp.CPU.R[core.RegIndex] != 0 {
				t.Errorf("shadow index %d at halt", mp.CPU.R[core.RegIndex])
			}

			over := 100 * float64(inst.Cycles-orig.Cycles) / float64(orig.Cycles)
			t.Logf("%s: %d -> %d cycles (+%.2f%%), binary %d -> %d bytes, sites=%d",
				app.Name, orig.Cycles, inst.Cycles, over,
				r.Original.Image.SizeInRange(0xE000, 0xF7FF),
				r.Instrumented.Image.SizeInRange(0xE000, 0xF7FF),
				r.Stats.Sites())
			if inst.Cycles <= orig.Cycles {
				t.Error("instrumented run should cost extra cycles")
			}
			if over > 100 {
				t.Errorf("run-time overhead %.1f%% implausibly high for a real app", over)
			}
		})
	}
}

func TestAppInstrumentationShape(t *testing.T) {
	p := pipeline(t)
	type want struct {
		indirect bool
		isr      bool
	}
	wants := map[string]want{
		"LightSensor":      {},
		"UltrasonicRanger": {},
		"FireSensor":       {isr: true},
		"SyringePump":      {indirect: true},
		"TempSensor":       {},
		"Charlieplexing":   {},
		"LcdSensor":        {},
	}
	for _, app := range All() {
		r, err := p.Build(app.Name+".s", app.Source)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		w := wants[app.Name]
		if r.Stats.DirectCalls == 0 || r.Stats.Returns == 0 {
			t.Errorf("%s: no backward-edge instrumentation (%+v)", app.Name, r.Stats)
		}
		if (r.Stats.IndirectCalls > 0) != w.indirect {
			t.Errorf("%s: indirect sites = %d, want indirect=%v", app.Name, r.Stats.IndirectCalls, w.indirect)
		}
		if (r.Stats.ISRPrologues > 0) != w.isr {
			t.Errorf("%s: ISR sites = %d, want isr=%v", app.Name, r.Stats.ISRPrologues, w.isr)
		}
		if w.isr && r.Stats.ISRPrologues != r.Stats.ISREpilogues {
			t.Errorf("%s: unbalanced ISR instrumentation %+v", app.Name, r.Stats)
		}
	}
}

func TestAllAndByName(t *testing.T) {
	apps := All()
	if len(apps) != 7 {
		t.Fatalf("All() = %d apps, want the paper's 7", len(apps))
	}
	names := map[string]bool{}
	for _, a := range apps {
		if names[a.Name] {
			t.Errorf("duplicate app %q", a.Name)
		}
		names[a.Name] = true
		got, ok := ByName(a.Name)
		if !ok || got.Name != a.Name {
			t.Errorf("ByName(%q) failed", a.Name)
		}
		if strings.TrimSpace(a.Source) == "" {
			t.Errorf("%s has no source", a.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown app")
	}
}

func TestExpectationMirrors(t *testing.T) {
	if ev := lightExpectedEvents(); len(ev) < 4 {
		t.Errorf("light model produces %d LED events; expected several day/night flips", len(ev))
	}
	uart, p1 := fireExpected()
	if strings.Count(uart, "FIRE!\n") != 2 || len(p1) != 4 {
		t.Errorf("fire expectations: %q %v", uart, p1)
	}
	ruart, rp1 := rangerExpected()
	if ruart != "m=5\n" || len(rp1) < 2 {
		t.Errorf("ranger expectations: %q %v", ruart, rp1)
	}
	_, p2 := syringeExpected()
	if len(p2) != 72 {
		t.Errorf("syringe expects %d stepper events, want 72", len(p2))
	}
	if ev := charlieExpectedEvents(); len(ev) == 0 {
		t.Error("charlie expects no LED events")
	}
	rows := lcdExpectedRows()
	if !strings.HasPrefix(rows[0], "T=") || !strings.HasPrefix(rows[1], "n=12") {
		t.Errorf("lcd rows: %q", rows)
	}
}
