package apps

import (
	"fmt"

	"eilid/internal/periph"
)

// ---- Charlieplexing ---------------------------------------------------------

const charlieFrames = 96

const charlieSrc = header + `
; Charlieplexed LED chaser: six LEDs on three pins (P1.0-P1.2). The main
; loop advances one LED per frame using per-LED direction/output tables
; and a software frame delay, as the original Arduino-style sketch does.
.equ NFRAMES, 96

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    clr r9              ; frame index
cploop:
    inc r9
    cmp #NFRAMES, r9
    jeq cpdone
    mov r9, r12
    call #show_led
    call #frame_delay
    jmp cploop
cpdone:
    mov #0, &SIMCTL
cphalt:
    jmp cphalt

; animation frame time
frame_delay:
    mov #1700, r13
fd_loop:
    dec r13
    jnz fd_loop
    ret

; r12 = frame; light LED (frame mod 6)
show_led:
    mov #6, r13
    call #udiv16        ; r14 = frame mod 6
    mov.b dirtab(r14), r13
    mov.b r13, &P1DIR
    mov.b outtab(r14), r13
    mov.b r13, &P1OUT
    ret
` + udiv16 + `
; charlieplexing tables: LED k drives (high,low) pin pairs
; (A,B)(B,A)(B,C)(C,B)(A,C)(C,A) with A=bit0 B=bit1 C=bit2
dirtab:
.byte 3, 3, 6, 6, 5, 5
outtab:
.byte 1, 2, 2, 4, 1, 4

.org 0xFFFE
.word reset
`

func charlieExpectedEvents() []uint8 {
	outtab := []uint8{1, 2, 2, 4, 1, 4}
	var events []uint8
	out := uint8(0)
	for f := 1; f < charlieFrames; f++ {
		v := outtab[f%6]
		if v != out {
			out = v
			events = append(events, v)
		}
	}
	return events
}

// Charlieplexing is the paper's Charlieplexing benchmark.
func Charlieplexing() App {
	return App{
		Name:      "Charlieplexing",
		Source:    charlieSrc,
		MaxCycles: 10_000_000,
		Check: func(insp *Inspection) error {
			if !insp.Halted {
				return fmt.Errorf("did not halt")
			}
			if err := eqEvents("p1", insp.P1Events, charlieExpectedEvents()); err != nil {
				return fmt.Errorf("LED matrix trace: %w", err)
			}
			return nil
		},
	}
}

// ---- LcdSensor --------------------------------------------------------------

const lcdUpdates = 12

const lcdSrc = header + `
; LCD thermometer: sample the temperature channel and render
; "T=<int>.<frac>" on row 0 and the update count on row 1 of a 16x2
; HD44780-style display.
.equ NUPD, 12

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #NUPD, r10
    clr r9              ; update counter
lloop:
    mov #0x0101, &ADCCTL
lwait:
    bit #1, &ADCST
    jz lwait
    mov &ADCMEM, r12
    call #convert
    push r12
    mov #0x80, &LCDCMD  ; row 0, column 0
    call #lcd_prefix
    pop r12
    mov #10, r13
    call #udiv16
    push r14
    call #lcd_dec
    mov #'.', &LCDDAT
    pop r14
    add #'0', r14
    mov r14, &LCDDAT
    inc r9
    mov #0xC0, &LCDCMD  ; row 1, column 0
    mov #'n', &LCDDAT
    mov #'=', &LCDDAT
    mov r9, r12
    call #lcd_dec
    call #lpace
    dec r10
    jnz lloop
    mov #0, &SIMCTL
lhalt:
    jmp lhalt

; display refresh interval
lpace:
    mov #9000, r13
lp_loop:
    dec r13
    jnz lp_loop
    ret

lcd_prefix:
    mov #'T', &LCDDAT
    mov #'=', &LCDDAT
    ret

; raw (r12) -> tenths of Celsius (r12), as in the TempSensor app
convert:
    mov r12, r13
    rra r13
    mov r13, r14
    rra r13
    add r13, r14
    rra r13
    rra r13
    add r13, r14
    rra r13
    rra r13
    rra r13
    sub r13, r14
    mov r14, r12
    ret

; print r12 in decimal on the LCD
lcd_dec:
    push r10
    clr r10
ld_split:
    mov #10, r13
    call #udiv16
    add #'0', r14
    push r14
    inc r10
    tst r12
    jnz ld_split
ld_out:
    pop r13
    mov r13, &LCDDAT
    dec r10
    jnz ld_out
    pop r10
    ret
` + udiv16 + `
.org 0xFFFE
.word reset
`

// lcdExpectedRows simulates the display writes to predict the final rows.
func lcdExpectedRows() [2]string {
	row := [2][]byte{
		[]byte("                "),
		[]byte("                "),
	}
	write := func(r int, col *int, s string) {
		for i := 0; i < len(s); i++ {
			if *col < 16 {
				row[r][*col] = s[i]
			}
			*col++
		}
	}
	for n := 0; n < lcdUpdates; n++ {
		t := tempConvert(periph.TempSensorModel(n))
		col := 0
		write(0, &col, fmt.Sprintf("T=%d.%d", t/10, t%10))
		col = 0
		write(1, &col, fmt.Sprintf("n=%d", n+1))
	}
	return [2]string{string(row[0]), string(row[1])}
}

// LcdSensor is the paper's Lcd Sensor benchmark.
func LcdSensor() App {
	return App{
		Name:      "LcdSensor",
		Source:    lcdSrc,
		MaxCycles: 5_000_000,
		Check: func(insp *Inspection) error {
			if !insp.Halted {
				return fmt.Errorf("did not halt")
			}
			if want := lcdExpectedRows(); insp.LCD != want {
				return fmt.Errorf("lcd = %q, want %q", insp.LCD, want)
			}
			return nil
		},
	}
}
