package apps

import (
	"fmt"
	"strings"

	"eilid/internal/periph"
)

// ---- LightSensor -----------------------------------------------------------

const lightSensorSamples = 96 // sampling loop iterations

const lightSensorSrc = header + `
; Grove light sensor demo: sample the photoresistor on ADC channel 0 at
; a fixed rate and drive the night-light LED on P1.0 with hysteresis.
.equ NSAMP,      96
.equ THRESH_ON,  1200   ; darker than this: LED on
.equ THRESH_OFF, 1400   ; brighter than this: LED off

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov.b #1, &P1DIR
    clr r9              ; LED state
    mov #NSAMP, r10
mloop:
    call #sample
    call #update_led
    call #pace
    dec r10
    jnz mloop
    mov #0, &SIMCTL
halt:
    jmp halt

; one conversion on channel 0; result in r12
sample:
    mov #0x0001, &ADCCTL
swait:
    bit #1, &ADCST
    jz swait
    mov &ADCMEM, r12
    ret

; r12 = sample; hysteresis state in r9
update_led:
    tst r9
    jnz led_is_on
    cmp #THRESH_ON, r12
    jhs ul_ret          ; bright enough: stay off
    mov #1, r9
    mov.b #1, &P1OUT
ul_ret:
    ret
led_is_on:
    cmp #THRESH_OFF, r12
    jlo ul_ret          ; still dark: stay on
    clr r9
    mov.b #0, &P1OUT
    ret

; sampling-rate pacing (the original sketch sleeps between readings)
pace:
    mov #800, r13
pc_loop:
    dec r13
    jnz pc_loop
    ret

.org 0xFFFE
.word reset
`

// lightExpectedEvents mirrors the firmware's hysteresis over the sensor
// model to predict the exact P1OUT transition sequence.
func lightExpectedEvents() []uint8 {
	var events []uint8
	state := uint8(0)
	for n := 0; n < lightSensorSamples; n++ {
		v := periph.LightSensorModel(n)
		if state == 0 && v < 1200 {
			state = 1
			events = append(events, 1)
		} else if state == 1 && v >= 1400 {
			state = 0
			events = append(events, 0)
		}
	}
	return events
}

// LightSensor is the paper's LightSensor benchmark.
func LightSensor() App {
	return App{
		Name:      "LightSensor",
		Source:    lightSensorSrc,
		MaxCycles: 5_000_000,
		Check: func(insp *Inspection) error {
			if !insp.Halted {
				return fmt.Errorf("did not halt")
			}
			want := lightExpectedEvents()
			if err := eqEvents("p1", insp.P1Events, want); err != nil {
				return fmt.Errorf("LED trace: %w", err)
			}
			return nil
		},
	}
}

// ---- TempSensor -------------------------------------------------------------

const tempSensorReadings = 16

const tempSensorSrc = header + `
; LM35-style temperature logger: sample ADC channel 1, convert the raw
; reading to tenths of a degree with a shift-and-add approximation of
; *3300/4096, and print "T=<int>.<frac>" lines on the UART.
.equ NREAD, 16

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #NREAD, r10
tloop:
    call #sample
    call #convert
    call #report
    call #tpace
    dec r10
    jnz tloop
    mov #0, &SIMCTL
thalt:
    jmp thalt

; logging interval (the original sketch sleeps between lines)
tpace:
    mov #3000, r13
tp_loop:
    dec r13
    jnz tp_loop
    ret

; one conversion on channel 1; result in r12
sample:
    mov #0x0101, &ADCCTL
twait:
    bit #1, &ADCST
    jz twait
    mov &ADCMEM, r12
    ret

; raw (r12) -> tenths of Celsius (r12):
; t = raw/2 + raw/4 + raw/16 - raw/128  (~ *0.8047 ~ 3300/4096)
convert:
    mov r12, r13
    rra r13             ; raw>>1
    mov r13, r14
    rra r13             ; raw>>2
    add r13, r14
    rra r13
    rra r13             ; raw>>4
    add r13, r14
    rra r13
    rra r13
    rra r13             ; raw>>7
    sub r13, r14
    mov r14, r12
    ret

; print "T=<t/10>.<t%10>\n" for t in r12
report:
    mov #'T', &UTX
    mov #'=', &UTX
    mov #10, r13
    call #udiv16
    push r14
    call #uart_dec
    mov #'.', &UTX
    pop r14
    add #'0', r14
    mov r14, &UTX
    mov #10, &UTX
    ret
` + udiv16 + uartDec + `
.org 0xFFFE
.word reset
`

// tempConvert mirrors the firmware conversion.
func tempConvert(raw uint16) uint16 {
	return raw>>1 + raw>>2 + raw>>4 - raw>>7
}

func tempExpectedUART() string {
	var b strings.Builder
	for n := 0; n < tempSensorReadings; n++ {
		t := tempConvert(periph.TempSensorModel(n))
		fmt.Fprintf(&b, "T=%d.%d\n", t/10, t%10)
	}
	return b.String()
}

// TempSensor is the paper's Temp Sensor benchmark.
func TempSensor() App {
	return App{
		Name:      "TempSensor",
		Source:    tempSensorSrc,
		MaxCycles: 5_000_000,
		Check: func(insp *Inspection) error {
			if !insp.Halted {
				return fmt.Errorf("did not halt")
			}
			if want := tempExpectedUART(); insp.UART != want {
				return fmt.Errorf("uart = %q, want %q", insp.UART, want)
			}
			return nil
		},
	}
}

// ---- FireSensor -------------------------------------------------------------

const fireSensorSamples = 128

const fireSensorSrc = header + `
; Flame detector: the main loop samples the flame channel continuously,
; drives the alarm LED on P1.1 with edge detection and announces fires
; on the UART; a timer interrupt maintains an uptime counter in the
; background (the watchdog-kick pattern of the original firmware).
.equ NSAMP, 128
.equ TICK,  0x0300

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov.b #2, &P1DIR
    clr r9              ; alarm state
    clr &TICK
    mov #NSAMP, r10
    mov #2500, &TACCR0
    mov #5, &TACTL      ; up mode, interrupt enabled
    eint
floop:
    mov #0x0201, &ADCCTL
fdone:
    bit #1, &ADCST
    jz fdone
    mov &ADCMEM, r12
    call #classify
    call #fpace
    dec r10
    jnz floop
    dint
    mov #0, &SIMCTL
fhalt:
    jmp fhalt

; detector sampling interval
fpace:
    mov #700, r13
fp_loop:
    dec r13
    jnz fp_loop
    ret

; r12 = flame sample; alarm threshold 0x0800, edge-triggered reporting
classify:
    cmp #0x0800, r12
    jhs cl_fire
    tst r9
    jz cl_ret
    clr r9
    mov.b #0, &P1OUT
cl_ret:
    ret
cl_fire:
    tst r9
    jnz cl_ret
    mov #1, r9
    mov.b #2, &P1OUT
    call #send_fire
    ret

send_fire:
    mov #'F', &UTX
    mov #'I', &UTX
    mov #'R', &UTX
    mov #'E', &UTX
    mov #'!', &UTX
    mov #10, &UTX
    ret

FIRE_ISR:
    inc &TICK
    reti

.org 0xFFF0
.word FIRE_ISR
.org 0xFFFE
.word reset
`

func fireExpected() (uart string, p1 []uint8) {
	state := 0
	var b strings.Builder
	for n := 0; n < fireSensorSamples; n++ {
		v := periph.FlameSensorModel(n)
		if v >= 0x0800 && state == 0 {
			state = 1
			p1 = append(p1, 2)
			b.WriteString("FIRE!\n")
		} else if v < 0x0800 && state == 1 {
			state = 0
			p1 = append(p1, 0)
		}
	}
	return b.String(), p1
}

// FireSensor is the paper's Fire Sensor benchmark.
func FireSensor() App {
	return App{
		Name:      "FireSensor",
		Source:    fireSensorSrc,
		MaxCycles: 5_000_000,
		Check: func(insp *Inspection) error {
			if !insp.Halted {
				return fmt.Errorf("did not halt")
			}
			uart, p1 := fireExpected()
			if insp.UART != uart {
				return fmt.Errorf("uart = %q, want %q", insp.UART, uart)
			}
			if err := eqEvents("p1", insp.P1Events, p1); err != nil {
				return fmt.Errorf("alarm trace: %w", err)
			}
			return nil
		},
	}
}
