// Package asm implements a two-pass MSP430 assembler that plays the role
// msp430-gcc's assembler plays in the paper's toolchain: it turns `.s`
// sources into loadable images and — crucially for EILID — into listing
// files (`.lst`) that record the final address of every source line. The
// EILID instrumenter (internal/core) consumes those listings to resolve
// the numeric return addresses it embeds before each call site, exactly
// as the paper's Figure 2 pipeline does.
//
// Supported syntax: the full core + emulated mnemonic set, all seven
// addressing modes, labels, constant expressions (with `$` as the
// location counter), and the directives .org .equ .word .byte .ascii
// .asciz .space .align (.text/.data/.global/.section are accepted and
// ignored, easing ports of GNU-style sources).
package asm

import (
	"fmt"
	"sort"
	"strings"

	"eilid/internal/isa"
)

// Error is an assembly diagnostic tied to a source line.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Program is the result of assembling one source file.
type Program struct {
	Name    string
	Image   *Image
	Listing *Listing
	// Symbols maps every label and .equ constant to its value.
	Symbols map[string]uint16
}

// Assemble runs both passes over src. name is used in diagnostics and the
// listing header.
func Assemble(name, src string) (*Program, error) {
	a := &assembler{name: name, syms: map[string]int64{}}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.pass1(); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	symbols := make(map[string]uint16, len(a.syms))
	for k, v := range a.syms {
		symbols[k] = uint16(v)
	}
	return &Program{
		Name:    name,
		Image:   a.image,
		Listing: a.listing,
		Symbols: symbols,
	}, nil
}

type assembler struct {
	name  string
	stmts []*statement
	syms  map[string]int64
	// addrs[i] is the location counter at statement i (set by pass 1).
	addrs   []uint16
	image   *Image
	listing *Listing
}

func (a *assembler) errf(line int, format string, args ...interface{}) error {
	return &Error{File: a.name, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) parse(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		st, err := parseLine(i+1, raw)
		if err != nil {
			return a.errf(i+1, "%v", err)
		}
		a.stmts = append(a.stmts, st)
	}
	return nil
}

// pass1 assigns addresses to every statement and collects symbols. The
// subtle part is instruction sizing: an immediate whose expression is
// already resolvable is sized with constant generators applied; anything
// else (a forward reference) reserves an extension word and is flagged
// forceExt so pass 2 encodes it identically.
func (a *assembler) pass1() error {
	dot := uint16(0)
	a.addrs = make([]uint16, len(a.stmts))
	for i, st := range a.stmts {
		a.addrs[i] = dot
		if st.label != "" {
			if _, dup := a.syms[st.label]; dup {
				return a.errf(st.line, "duplicate symbol %q", st.label)
			}
			a.syms[st.label] = int64(dot)
		}
		switch st.kind {
		case stmtEmpty:
			continue
		case stmtJump:
			dot += 2
		case stmtInstr:
			size, err := a.sizeInstr(st, dot)
			if err != nil {
				return err
			}
			dot += size
		case stmtDirective:
			nd, err := a.directiveSize(st, dot)
			if err != nil {
				return err
			}
			dot = nd
		}
	}
	return nil
}

// sizeInstr computes the encoded size of an instruction statement and
// pins down immediate encoding decisions.
func (a *assembler) sizeInstr(st *statement, dot uint16) (uint16, error) {
	size := uint16(2)
	if st.src != nil {
		n, err := a.operandExtWords(st, st.src, dot, false)
		if err != nil {
			return 0, err
		}
		size += 2 * n
	}
	if st.dst != nil {
		n, err := a.operandExtWords(st, st.dst, dot, true)
		if err != nil {
			return 0, err
		}
		size += 2 * n
	}
	return size, nil
}

// operandExtWords decides whether the operand needs an extension word.
func (a *assembler) operandExtWords(st *statement, o *parsedOperand, dot uint16, isDst bool) (uint16, error) {
	switch o.kind {
	case opndReg, opndIndirect, opndIndirectInc:
		return 0, nil
	case opndAbs, opndIndexed, opndSymbolic, opndPCRel:
		return 1, nil
	case opndImm:
		if isDst {
			return 0, a.errf(st.line, "immediate destination")
		}
		if v, ok := constEval(o.e, a.syms, dot); ok {
			probe := isa.Imm(v)
			if in := (isa.Instruction{Op: st.op, Byte: st.byteOp, Src: probe, Dst: isa.RegOp(4)}); in.Words() == 1 {
				// A constant generator covers it: no extension word. The
				// value is guaranteed stable because it only depended on
				// already-defined symbols.
				return 0, nil
			}
			o.forceExt = true
			return 1, nil
		}
		// Forward reference: reserve the extension word.
		o.forceExt = true
		return 1, nil
	}
	return 0, a.errf(st.line, "unsupported operand")
}

// directiveSize advances the location counter for a directive in pass 1
// (and validates arguments that affect layout).
func (a *assembler) directiveSize(st *statement, dot uint16) (uint16, error) {
	switch st.directive {
	case ".org":
		if len(st.args) != 1 {
			return 0, a.errf(st.line, ".org needs one argument")
		}
		e, err := parseExpr(st.args[0])
		if err != nil {
			return 0, a.errf(st.line, ".org: %v", err)
		}
		v, err := evalUint16(e, a.syms, dot)
		if err != nil {
			return 0, a.errf(st.line, ".org: %v", err)
		}
		return v, nil
	case ".equ", ".set":
		if len(st.args) != 2 {
			return 0, a.errf(st.line, "%s needs name, value", st.directive)
		}
		name := strings.TrimSpace(st.args[0])
		if !isIdent(name) {
			return 0, a.errf(st.line, "bad symbol name %q", name)
		}
		e, err := parseExpr(st.args[1])
		if err != nil {
			return 0, a.errf(st.line, "%s: %v", st.directive, err)
		}
		v, err := e.eval(a.syms, dot)
		if err != nil {
			return 0, a.errf(st.line, "%s %s: %v", st.directive, name, err)
		}
		if _, dup := a.syms[name]; dup {
			return 0, a.errf(st.line, "duplicate symbol %q", name)
		}
		a.syms[name] = v
		return dot, nil
	case ".word":
		return dot + uint16(2*len(st.args)), nil
	case ".byte":
		return dot + uint16(len(st.args)), nil
	case ".space", ".skip":
		if len(st.args) < 1 {
			return 0, a.errf(st.line, "%s needs a size", st.directive)
		}
		e, err := parseExpr(st.args[0])
		if err != nil {
			return 0, a.errf(st.line, "%s: %v", st.directive, err)
		}
		n, err := evalUint16(e, a.syms, dot)
		if err != nil {
			return 0, a.errf(st.line, "%s: %v", st.directive, err)
		}
		return dot + n, nil
	case ".align":
		n := uint16(2)
		if len(st.args) == 1 {
			e, err := parseExpr(st.args[0])
			if err != nil {
				return 0, a.errf(st.line, ".align: %v", err)
			}
			v, err := evalUint16(e, a.syms, dot)
			if err != nil {
				return 0, a.errf(st.line, ".align: %v", err)
			}
			n = v
		}
		if n == 0 || n&(n-1) != 0 {
			return 0, a.errf(st.line, ".align argument must be a power of two")
		}
		return (dot + n - 1) &^ (n - 1), nil
	case ".ascii", ".asciz":
		total := 0
		for _, arg := range st.args {
			s, err := parseStringLit(arg)
			if err != nil {
				return 0, a.errf(st.line, "%s: %v", st.directive, err)
			}
			total += len(s)
			if st.directive == ".asciz" {
				total++
			}
		}
		return dot + uint16(total), nil
	case ".text", ".data", ".section", ".global", ".globl", ".type", ".size", ".file":
		return dot, nil // accepted, no layout effect
	}
	return 0, a.errf(st.line, "unknown directive %q", st.directive)
}

// pass2 encodes everything at the addresses fixed by pass 1.
func (a *assembler) pass2() error {
	a.image = NewImage()
	a.listing = &Listing{Name: a.name, Symbols: map[string]uint16{}}
	for k, v := range a.syms {
		a.listing.Symbols[k] = uint16(v)
	}

	for i, st := range a.stmts {
		dot := a.addrs[i]
		switch st.kind {
		case stmtEmpty:
			if st.label != "" {
				a.listing.Entries = append(a.listing.Entries, ListEntry{
					Addr: dot, Line: st.line, Source: st.text, Label: st.label,
				})
			}
		case stmtJump:
			target, err := evalUint16(st.jumpTarget, a.syms, dot)
			if err != nil {
				return a.errf(st.line, "jump target: %v", err)
			}
			delta := int32(target) - int32(dot) - 2
			if delta%2 != 0 {
				return a.errf(st.line, "jump target 0x%04x is odd", target)
			}
			off := delta / 2
			if off < -512 || off > 511 {
				return a.errf(st.line, "jump target 0x%04x out of range (offset %d words)", target, off)
			}
			in := isa.Instruction{Op: st.op, JumpOffset: int16(off)}
			if err := a.emit(st, dot, in); err != nil {
				return err
			}
		case stmtInstr:
			in, err := a.buildInstr(st, dot)
			if err != nil {
				return err
			}
			if err := a.emit(st, dot, in); err != nil {
				return err
			}
		case stmtDirective:
			if err := a.emitDirective(st, dot); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildInstr resolves operands into an isa.Instruction at address dot.
func (a *assembler) buildInstr(st *statement, dot uint16) (isa.Instruction, error) {
	in := isa.Instruction{Op: st.op, Byte: st.byteOp}

	// First resolve non-symbolic parts so ExtOffsets is meaningful.
	build := func(o *parsedOperand, isDst bool) (isa.Operand, error) {
		switch o.kind {
		case opndReg:
			return isa.RegOp(o.reg), nil
		case opndIndirect:
			return isa.Indirect(o.reg), nil
		case opndIndirectInc:
			return isa.IndirectInc(o.reg), nil
		case opndImm:
			v, err := evalUint16(o.e, a.syms, dot)
			if err != nil {
				return isa.Operand{}, a.errf(st.line, "immediate: %v", err)
			}
			if st.byteOp {
				v &= 0x00FF
			}
			op := isa.Imm(v)
			if o.forceExt {
				// Pass 1 reserved an extension word; mark NoCG only when a
				// constant generator could otherwise absorb the value, so
				// the operand stays canonical (and listing-decodable) for
				// values that need the extension word anyway.
				probe := isa.Instruction{Op: isa.MOV, Byte: st.byteOp, Src: op, Dst: isa.RegOp(4)}
				if probe.Words() == 1 {
					op.NoCG = true
				}
			}
			return op, nil
		case opndAbs:
			v, err := evalUint16(o.e, a.syms, dot)
			if err != nil {
				return isa.Operand{}, a.errf(st.line, "absolute: %v", err)
			}
			return isa.Abs(v), nil
		case opndIndexed:
			v, err := evalUint16(o.e, a.syms, dot)
			if err != nil {
				return isa.Operand{}, a.errf(st.line, "index: %v", err)
			}
			return isa.Indexed(v, o.reg), nil
		case opndSymbolic:
			// X is patched below once extension word addresses are known.
			return isa.Operand{Mode: isa.ModeSymbolic, Reg: isa.PC}, nil
		case opndPCRel:
			v, err := evalUint16(o.e, a.syms, dot)
			if err != nil {
				return isa.Operand{}, a.errf(st.line, "pc-relative: %v", err)
			}
			return isa.Operand{Mode: isa.ModeSymbolic, Reg: isa.PC, X: v}, nil
		}
		return isa.Operand{}, a.errf(st.line, "unsupported operand")
	}

	var err error
	if st.src != nil {
		if in.Src, err = build(st.src, false); err != nil {
			return in, err
		}
	}
	if st.dst != nil {
		if in.Dst, err = build(st.dst, true); err != nil {
			return in, err
		}
	}

	// Patch symbolic displacements: X = target - extWordAddr.
	srcOff, srcHas, dstOff, dstHas := in.ExtOffsets()
	if st.src != nil && st.src.kind == opndSymbolic {
		if !srcHas {
			return in, a.errf(st.line, "internal: symbolic source without extension word")
		}
		target, err := evalUint16(st.src.e, a.syms, dot)
		if err != nil {
			return in, a.errf(st.line, "symbolic operand: %v", err)
		}
		in.Src.X = target - (dot + uint16(srcOff))
	}
	if st.dst != nil && st.dst.kind == opndSymbolic {
		if !dstHas {
			return in, a.errf(st.line, "internal: symbolic destination without extension word")
		}
		target, err := evalUint16(st.dst.e, a.syms, dot)
		if err != nil {
			return in, a.errf(st.line, "symbolic operand: %v", err)
		}
		in.Dst.X = target - (dot + uint16(dstOff))
	}
	return in, nil
}

// emit encodes in and appends image bytes and a listing entry.
func (a *assembler) emit(st *statement, dot uint16, in isa.Instruction) error {
	if dot&1 != 0 {
		return a.errf(st.line, "instruction at odd address 0x%04x (missing .align?)", dot)
	}
	words, err := isa.Encode(in)
	if err != nil {
		return a.errf(st.line, "encode: %v", err)
	}
	var buf []byte
	for _, w := range words {
		buf = append(buf, byte(w), byte(w>>8))
	}
	if err := a.image.Put(dot, buf); err != nil {
		return a.errf(st.line, "%v", err)
	}
	a.listing.Entries = append(a.listing.Entries, ListEntry{
		Addr: dot, Words: words, Line: st.line, Source: st.text,
		Label: st.label, IsInstr: true, Instr: in,
	})
	return nil
}

// emitDirective writes data directives into the image.
func (a *assembler) emitDirective(st *statement, dot uint16) error {
	entry := ListEntry{Addr: dot, Line: st.line, Source: st.text, Label: st.label}
	switch st.directive {
	case ".word":
		if dot&1 != 0 {
			return a.errf(st.line, ".word at odd address 0x%04x", dot)
		}
		var buf []byte
		var words []uint16
		for _, arg := range st.args {
			e, err := parseExpr(arg)
			if err != nil {
				return a.errf(st.line, ".word: %v", err)
			}
			v, err := evalUint16(e, a.syms, dot)
			if err != nil {
				return a.errf(st.line, ".word: %v", err)
			}
			words = append(words, v)
			buf = append(buf, byte(v), byte(v>>8))
		}
		if err := a.image.Put(dot, buf); err != nil {
			return a.errf(st.line, "%v", err)
		}
		entry.Words = words
	case ".byte":
		var buf []byte
		for _, arg := range st.args {
			e, err := parseExpr(arg)
			if err != nil {
				return a.errf(st.line, ".byte: %v", err)
			}
			v, err := e.eval(a.syms, dot)
			if err != nil {
				return a.errf(st.line, ".byte: %v", err)
			}
			if v < -128 || v > 255 {
				return a.errf(st.line, ".byte value %d out of range", v)
			}
			buf = append(buf, byte(v))
		}
		if err := a.image.Put(dot, buf); err != nil {
			return a.errf(st.line, "%v", err)
		}
		entry.Bytes = len(buf)
	case ".ascii", ".asciz":
		var buf []byte
		for _, arg := range st.args {
			s, err := parseStringLit(arg)
			if err != nil {
				return a.errf(st.line, "%s: %v", st.directive, err)
			}
			buf = append(buf, s...)
			if st.directive == ".asciz" {
				buf = append(buf, 0)
			}
		}
		if err := a.image.Put(dot, buf); err != nil {
			return a.errf(st.line, "%v", err)
		}
		entry.Bytes = len(buf)
	case ".space", ".skip":
		// Reserve without emitting (image stays sparse).
	}
	a.listing.Entries = append(a.listing.Entries, entry)
	return nil
}

// parseStringLit parses a double-quoted string with C-style escapes.
func parseStringLit(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("trailing backslash in string")
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 'r':
			out = append(out, '\r')
		case 't':
			out = append(out, '\t')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}

// SortedSymbols returns the program's symbols in name order (stable
// output for listings and tests).
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
