package asm

import (
	"math/rand"
	"strings"
	"testing"

	"eilid/internal/cpu"
	"eilid/internal/isa"
	"eilid/internal/mem"
)

// run assembles src, loads it into a machine, and executes n steps.
func run(t *testing.T, src string, steps int) (*cpu.CPU, *mem.Space, *Program) {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	s := mem.MustNewSpace(mem.DefaultLayout())
	if err := p.Image.WriteTo(s); err != nil {
		t.Fatal(err)
	}
	c := cpu.New(s)
	c.Reset(0xFFFE)
	for i := 0; i < steps; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("step %d (pc=0x%04x): %v", i, c.PC(), err)
		}
	}
	return c, s, p
}

const header = `
.org 0xE000
start:
`

const vector = `
.org 0xFFFE
.word start
`

func TestAssembleBasicProgram(t *testing.T) {
	src := header + `
    mov #0x0A00, sp
    mov #0x1234, r10
    add #1, r10
` + vector
	c, _, p := run(t, src, 3)
	if c.R[10] != 0x1235 {
		t.Errorf("r10 = 0x%04x, want 0x1235", c.R[10])
	}
	if got := p.Symbols["start"]; got != 0xE000 {
		t.Errorf("start = 0x%04x", got)
	}
}

func TestLabelsAndJumps(t *testing.T) {
	src := header + `
    mov #0, r10
    mov #5, r11
loop:
    add #1, r10
    dec r11
    jnz loop
done:
    jmp done
` + vector
	c, _, _ := run(t, src, 2+5*3+1)
	if c.R[10] != 5 {
		t.Errorf("loop executed %d times, want 5", c.R[10])
	}
}

func TestForwardReferenceCall(t *testing.T) {
	src := header + `
    mov #0x0A00, sp
    call #func
    jmp start
func:
    mov #99, r12
    ret
` + vector
	c, _, _ := run(t, src, 4)
	if c.R[12] != 99 {
		t.Errorf("r12 = %d, want 99", c.R[12])
	}
	if c.PC() != 0xE008 {
		t.Errorf("pc after ret = 0x%04x", c.PC())
	}
}

func TestEquAndExpressions(t *testing.T) {
	src := `
.equ BASE, 0x0200
.equ OFFSET, 4
.equ ADDR, BASE + OFFSET*2
` + header + `
    mov #ADDR, r5
    mov #(1 << 3) | 1, r6
    mov #~0 & 0xFF, r7
    mov #'A', r8
    mov #-2, r9
` + vector
	c, _, p := run(t, src, 5)
	if c.R[5] != 0x0208 {
		t.Errorf("ADDR = 0x%04x, want 0x0208", c.R[5])
	}
	if c.R[6] != 9 {
		t.Errorf("r6 = %d, want 9", c.R[6])
	}
	if c.R[7] != 0xFF {
		t.Errorf("r7 = 0x%04x, want 0xff", c.R[7])
	}
	if c.R[8] != 'A' {
		t.Errorf("r8 = %d, want 'A'", c.R[8])
	}
	if c.R[9] != 0xFFFE {
		t.Errorf("r9 = 0x%04x, want 0xfffe", c.R[9])
	}
	if p.Symbols["ADDR"] != 0x0208 {
		t.Errorf("symbol ADDR = 0x%04x", p.Symbols["ADDR"])
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
.org 0xE100
table:
.word 0x1111, 0x2222, table
bytes:
.byte 1, 2, 0xFF
msg:
.asciz "Hi\n"
.align 2
aligned:
.space 4
after:
` + header + `
    mov &0xE100, r5
    mov &0xE104, r6
` + vector
	c, s, p := run(t, src, 2)
	if c.R[5] != 0x1111 {
		t.Errorf("word 0 = 0x%04x", c.R[5])
	}
	if c.R[6] != 0xE100 {
		t.Errorf("self-referential word = 0x%04x", c.R[6])
	}
	if got := s.LoadByte(0xE106); got != 1 {
		t.Errorf("byte 0 = %d", got)
	}
	if got := s.LoadByte(0xE108); got != 0xFF {
		t.Errorf("byte 2 = %d", got)
	}
	if got := s.LoadByte(0xE109); got != 'H' {
		t.Errorf("ascii H = %c", got)
	}
	if got := s.LoadByte(0xE10B); got != '\n' {
		t.Errorf("escape = %d", got)
	}
	if got := s.LoadByte(0xE10C); got != 0 {
		t.Errorf("asciz NUL = %d", got)
	}
	if p.Symbols["aligned"]%2 != 0 {
		t.Error(".align produced odd address")
	}
	if p.Symbols["after"] != p.Symbols["aligned"]+4 {
		t.Errorf(".space did not reserve 4 bytes")
	}
}

func TestEmulatedMnemonics(t *testing.T) {
	src := header + `
    mov #0x0A00, sp
    mov #7, r10
    push r10
    clr r10
    pop r11
    inc r11
    incd r11
    dec r11
    tst r11
    jz never
    inv r11
    nop
    eint
    dint
    setc
    clrc
    ret
never:
    jmp never
` + vector
	// Execute through clrc (15 instructions after start).
	c, _, _ := run(t, src, 16)
	if c.R[11] != (7+1+2-1)^0xFFFF {
		t.Errorf("r11 = 0x%04x", c.R[11])
	}
	if c.Flag(isa.FlagC) {
		t.Error("clrc failed")
	}
	if c.Flag(isa.FlagGIE) {
		t.Error("dint failed")
	}
}

func TestByteOperations(t *testing.T) {
	src := header + `
    mov #0x0300, r5
    mov.b #0xAB, 0(r5)
    mov.b @r5, r6
    add.b #1, r6
    cmp.b #0xAC, r6
    jz good
    mov #0xBAD, r15
good:
    jmp good
` + vector
	c, s, _ := run(t, src, 7)
	if got := s.LoadByte(0x0300); got != 0xAB {
		t.Errorf("byte store = 0x%02x", got)
	}
	if c.R[15] == 0xBAD {
		t.Error("byte compare failed")
	}
	if c.R[6] != 0xAC {
		t.Errorf("r6 = 0x%04x", c.R[6])
	}
}

func TestSymbolicAddressing(t *testing.T) {
	src := `
.org 0xE100
value:
.word 0xCAFE
` + header + `
    mov value, r5      ; symbolic (pc-relative) load
    mov #0xBEEF, value ; symbolic store
    mov value, r6
` + vector
	c, s, _ := run(t, src, 3)
	if c.R[5] != 0xCAFE {
		t.Errorf("symbolic load = 0x%04x", c.R[5])
	}
	_ = s
	if c.R[6] != 0xBEEF {
		t.Errorf("symbolic store/load = 0x%04x", c.R[6])
	}
}

func TestIndexedAddressing(t *testing.T) {
	src := header + `
    mov #0x0300, r4
    mov #0x1111, 0(r4)
    mov #0x2222, 2(r4)
    mov 2(r4), r5
    mov -2+4(r4), r6
` + vector
	c, _, _ := run(t, src, 5)
	if c.R[5] != 0x2222 || c.R[6] != 0x2222 {
		t.Errorf("indexed loads r5=0x%04x r6=0x%04x", c.R[5], c.R[6])
	}
}

func TestDollarLocationCounter(t *testing.T) {
	src := header + `
    jmp $+4
    mov #0xBAD, r15
    mov #1, r14
here:
    jmp here
` + vector
	// jmp $+4 skips... $+4 from jmp at 0xE000 lands at 0xE004 which is
	// the mov #0xBAD (4 bytes) start+4? jmp is 2 bytes, mov is 4 bytes:
	// $+4 skips the first word of mov -> lands mid-instruction. Use $+6.
	_ = src
	src2 := header + `
    jmp $+6
    mov #0xBAD, r15
    mov #1, r14
here:
    jmp here
` + vector
	c, _, _ := run(t, src2, 2)
	if c.R[15] == 0xBAD {
		t.Error("$-relative jump did not skip")
	}
	if c.R[14] != 1 {
		t.Error("$-relative jump landed wrong")
	}
}

func TestPCRelativeOperand(t *testing.T) {
	// "N(pc)" uses the raw displacement form the disassembler emits.
	src := header + `
    mov 4(pc), r5   ; ext word at 0xE002; EA = 0xE002+4 = the .word below
    jmp over
.word 0x4455
over:
    jmp over
` + vector
	c, _, _ := run(t, src, 1)
	if c.R[5] != 0x4455 {
		t.Errorf("pc-relative load = 0x%04x, want 0x4455", c.R[5])
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  ".org 0xE000\n frob r1, r2\n",
		"bad operand count": ".org 0xE000\n mov r1\n",
		"duplicate label":   ".org 0xE000\na:\na:\n",
		"undefined symbol":  ".org 0xE000\n mov #nosuch, r5\n",
		"jump out of range": ".org 0xE000\n jmp far\n.org 0xF000\nfar: nop\n",
		"odd jump target":   ".org 0xE000\nx: .byte 1\n jmp x+1\n",
		"bad directive":     ".orgg 0xE000\n",
		"immediate dest":    ".org 0xE000\n mov r5, #4\n",
		"byte jump":         ".org 0xE000\n jmp.b somewhere\n",
		"overlap":           ".org 0xE000\n.word 1\n.org 0xE000\n.word 2\n",
		"bad string":        ".org 0xE000\n.ascii nope\n",
		"bad align":         ".org 0xE000\n.align 3\n",
	}
	for name, src := range cases {
		if _, err := Assemble("bad.s", src); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestConstGeneratorSizing(t *testing.T) {
	// Immediates resolvable in pass 1 use constant generators; forward
	// references reserve an extension word.
	src := `
.equ SMALL, 2
` + header + `
    mov #SMALL, r5   ; CG: 2 bytes
    mov #LATER, r6   ; forward ref: 4 bytes
    jmp start
.equ UNUSED, 0
` + vector
	// LATER defined... it must be a label to be a forward ref:
	src = strings.Replace(src, ".equ UNUSED, 0", "LATER:\n.word 0", 1)
	p, err := Assemble("cg.s", src)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []uint16
	for _, e := range p.Listing.Entries {
		if e.IsInstr {
			sizes = append(sizes, e.Size())
		}
	}
	if len(sizes) < 3 {
		t.Fatalf("expected 3 instructions, got %d", len(sizes))
	}
	if sizes[0] != 2 {
		t.Errorf("CG immediate size = %d, want 2", sizes[0])
	}
	if sizes[1] != 4 {
		t.Errorf("forward-ref immediate size = %d, want 4", sizes[1])
	}
	// The forward reference to LATER (= a small address? no, 0xE00x) must
	// encode the correct value.
	c, _, _ := run(t, src, 2)
	if c.R[6] != p.Symbols["LATER"] {
		t.Errorf("forward ref value = 0x%04x, want 0x%04x", c.R[6], p.Symbols["LATER"])
	}
}

func TestForwardRefToCGValueKeepsSize(t *testing.T) {
	// A forward reference that RESOLVES to a CG-eligible value must keep
	// its extension word (pass-1 sizing fixed the layout).
	src := header + `
    mov #ZERO, r5
    jmp start
.equ ZERO, 0
` + vector
	p, err := Assemble("fwd.s", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.Listing.Entries {
		if e.IsInstr && e.Instr.Op == isa.MOV && e.Instr.Dst == isa.RegOp(5) {
			if e.Size() != 4 {
				t.Errorf("forward-ref CG-value size = %d, want 4 (reserved ext word)", e.Size())
			}
			if !e.Instr.Src.NoCG {
				t.Error("operand should be marked NoCG")
			}
		}
	}
	c, _, _ := run(t, src, 1)
	if c.R[5] != 0 {
		t.Errorf("r5 = %d, want 0", c.R[5])
	}
}

func TestListingRoundTrip(t *testing.T) {
	src := header + `
    mov #0x0A00, sp
    call #fn
stop:
    jmp stop
fn:
    mov #1, r10
    ret
.word 0xABCD
.byte 1,2,3
` + vector
	p, err := Assemble("lst.s", src)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Listing.String()
	back, err := ParseListing(text)
	if err != nil {
		t.Fatalf("ParseListing: %v\n%s", err, text)
	}
	if back.Name != "lst.s" {
		t.Errorf("name = %q", back.Name)
	}
	if len(back.Entries) != len(p.Listing.Entries) {
		t.Fatalf("entries %d != %d", len(back.Entries), len(p.Listing.Entries))
	}
	for i, e := range p.Listing.Entries {
		b := back.Entries[i]
		if b.Addr != e.Addr || b.Line != e.Line || b.Size() != e.Size() {
			t.Errorf("entry %d mismatch: %+v vs %+v", i, b, e)
		}
		if e.IsInstr != b.IsInstr {
			t.Errorf("entry %d IsInstr mismatch", i)
		}
		if e.IsInstr && b.Instr != e.Instr {
			t.Errorf("entry %d instruction mismatch: %v vs %v", i, b.Instr, e.Instr)
		}
	}
	for name, v := range p.Listing.Symbols {
		if back.Symbols[name] != v {
			t.Errorf("symbol %s = 0x%04x, want 0x%04x", name, back.Symbols[name], v)
		}
	}
}

func TestEntryForLine(t *testing.T) {
	src := header + `
    mov #1, r5
    mov #2, r6
` + vector
	p, err := Assemble("x.s", src)
	if err != nil {
		t.Fatal(err)
	}
	// "mov #1, r5" is on line 5 (header contributes 4 lines).
	e, ok := p.Listing.EntryForLine(5)
	if !ok || !e.IsInstr {
		t.Fatalf("no entry for line 5")
	}
	if e.Instr.Op != isa.MOV || e.Instr.Src.X != 1 {
		t.Errorf("wrong entry: %+v", e.Instr)
	}
}

func TestFunctionSymbols(t *testing.T) {
	src := header + `
    call #alpha
halt:
    jmp halt
alpha:
    ret
beta:
    ret
.equ notcode, 0x1234
data:
.word 5
` + vector
	p, err := Assemble("f.s", src)
	if err != nil {
		t.Fatal(err)
	}
	fns := p.Listing.FunctionSymbols()
	want := map[string]bool{"start": true, "halt": true, "alpha": true, "beta": true}
	for _, f := range fns {
		if !want[f] {
			t.Errorf("unexpected function symbol %q", f)
		}
		delete(want, f)
	}
	if len(want) != 0 {
		t.Errorf("missing function symbols: %v", want)
	}
}

func TestImageChunksAndSize(t *testing.T) {
	src := `
.org 0xE000
    nop
    nop
.org 0xE100
    nop
.org 0xFFFE
.word 0xE000
`
	p, err := Assemble("img.s", src)
	if err != nil {
		t.Fatal(err)
	}
	chunks := p.Image.Chunks()
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3 (%v)", len(chunks), chunks)
	}
	if chunks[0].Addr != 0xE000 || len(chunks[0].Data) != 4 {
		t.Errorf("chunk 0 = %+v", chunks[0])
	}
	if p.Image.Size() != 8 {
		t.Errorf("size = %d, want 8", p.Image.Size())
	}
	if p.Image.SizeInRange(0xE000, 0xF7FF) != 6 {
		t.Errorf("SizeInRange = %d, want 6", p.Image.SizeInRange(0xE000, 0xF7FF))
	}
}

// Property: disassembling a random instruction and reassembling it yields
// the same machine words (assembler ∘ disassembler = identity on the
// instruction set, modulo the NoCG distinction the text cannot express).
func TestDisasmAssembleRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		in := randomInstructionForAsm(r)
		wantWords, err := isa.Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		text := isa.Disassemble(in)
		if in.Op.IsJump() {
			// Jump text is $-relative; anchor it at a fixed origin.
			src := ".org 0xE000\n " + text + "\n"
			p, err := Assemble("rt.s", src)
			if err != nil {
				t.Fatalf("assemble %q: %v", text, err)
			}
			var gotW []uint16
			for _, e := range p.Listing.Entries {
				if e.IsInstr {
					gotW = e.Words
					break
				}
			}
			if len(gotW) != len(wantWords) || gotW[0] != wantWords[0] {
				t.Fatalf("round trip %q: got %v want %v", text, gotW, wantWords)
			}
			continue
		}
		src := ".org 0xE000\n " + text + "\n"
		p, err := Assemble("rt.s", src)
		if err != nil {
			t.Fatalf("assemble %q (%+v): %v", text, in, err)
		}
		var entry *ListEntry
		for j := range p.Listing.Entries {
			if p.Listing.Entries[j].IsInstr {
				entry = &p.Listing.Entries[j]
				break
			}
		}
		if entry == nil {
			t.Fatalf("no instruction assembled for %q", text)
		}
		if len(entry.Words) != len(wantWords) {
			t.Fatalf("round trip %q: got %v want %v (in=%+v)", text, entry.Words, wantWords, in)
		}
		for k := range wantWords {
			if entry.Words[k] != wantWords[k] {
				t.Fatalf("round trip %q: got %v want %v", text, entry.Words, wantWords)
			}
		}
	}
}

// randomInstructionForAsm generates instructions whose disassembly is
// reassemblable: no NoCG immediates and no symbolic operands with
// displacements that collide with label syntax (symbolic prints as
// "N(pc)" which the assembler accepts as raw displacement).
func randomInstructionForAsm(r *rand.Rand) isa.Instruction {
	genReg := func() isa.Reg {
		for {
			reg := isa.Reg(r.Intn(isa.NumRegs))
			if reg == isa.CG || reg == isa.SR || reg == isa.PC {
				continue
			}
			return reg
		}
	}
	genOperand := func(dst bool) isa.Operand {
		switch r.Intn(6) {
		case 0:
			return isa.RegOp(genReg())
		case 1:
			return isa.Indexed(uint16(r.Uint32()), genReg())
		case 2:
			return isa.Abs(uint16(r.Uint32()))
		case 3:
			if dst {
				return isa.RegOp(genReg())
			}
			return isa.Indirect(genReg())
		case 4:
			if dst {
				return isa.RegOp(genReg())
			}
			return isa.IndirectInc(genReg())
		default:
			if dst {
				return isa.Abs(uint16(r.Uint32()))
			}
			return isa.Imm(uint16(r.Uint32()))
		}
	}
	ops := []isa.Opcode{
		isa.MOV, isa.ADD, isa.ADDC, isa.SUBC, isa.SUB, isa.CMP, isa.DADD,
		isa.BIT, isa.BIC, isa.BIS, isa.XOR, isa.AND,
		isa.RRC, isa.SWPB, isa.RRA, isa.SXT, isa.PUSH, isa.CALL, isa.RETI,
		isa.JNE, isa.JEQ, isa.JNC, isa.JC, isa.JN, isa.JGE, isa.JL, isa.JMP,
	}
	op := ops[r.Intn(len(ops))]
	in := isa.Instruction{Op: op}
	switch {
	case op.IsJump():
		in.JumpOffset = int16(r.Intn(1024) - 512)
	case op == isa.RETI:
	case op.IsOneOperand():
		in.Byte = r.Intn(2) == 0 && op != isa.SWPB && op != isa.SXT && op != isa.CALL
		for {
			in.Src = genOperand(false)
			if op == isa.PUSH || op == isa.CALL || in.Src.Mode != isa.ModeImmediate {
				break
			}
		}
	default:
		in.Byte = r.Intn(2) == 0
		in.Src = genOperand(false)
		in.Dst = genOperand(true)
	}
	if in.Byte {
		// Canonicalize immediates the way the assembler does for byte ops.
		if in.Src.Mode == isa.ModeImmediate {
			in.Src.X &= 0x00FF
		}
	}
	return in
}

func TestAssembleIdempotentProperty(t *testing.T) {
	// Assembling the same source twice yields identical images and
	// listings (determinism matters: the EILID pipeline relies on it).
	src := header + `
    mov #0x0A00, sp
    call #f
h:  jmp h
f:  push r10
    mov #0xFF, r10
    pop r10
    ret
` + vector
	p1, err := Assemble("a.s", src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble("a.s", src)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Listing.String() != p2.Listing.String() {
		t.Error("listings differ across runs")
	}
	b1, base1 := p1.Image.Bytes()
	b2, base2 := p2.Image.Bytes()
	if base1 != base2 || len(b1) != len(b2) {
		t.Fatal("image shape differs")
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("image bytes differ")
		}
	}
}
