package asm

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// expr is an assembly-time constant expression. Evaluation receives the
// symbol table and the current location counter (the value of '$').
type expr interface {
	eval(syms map[string]int64, dot uint16) (int64, error)
	String() string
}

type numExpr int64

func (n numExpr) eval(map[string]int64, uint16) (int64, error) { return int64(n), nil }
func (n numExpr) String() string                               { return strconv.FormatInt(int64(n), 10) }

type symExpr string

func (s symExpr) eval(syms map[string]int64, _ uint16) (int64, error) {
	v, ok := syms[string(s)]
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", string(s))
	}
	return v, nil
}
func (s symExpr) String() string { return string(s) }

type dotExpr struct{}

func (dotExpr) eval(_ map[string]int64, dot uint16) (int64, error) { return int64(dot), nil }
func (dotExpr) String() string                                     { return "$" }

type unaryExpr struct {
	op rune
	e  expr
}

func (u unaryExpr) eval(syms map[string]int64, dot uint16) (int64, error) {
	v, err := u.e.eval(syms, dot)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case '-':
		return -v, nil
	case '~':
		return ^v, nil
	}
	return 0, fmt.Errorf("bad unary operator %q", u.op)
}
func (u unaryExpr) String() string { return string(u.op) + u.e.String() }

type binExpr struct {
	op   string
	l, r expr
}

func (b binExpr) eval(syms map[string]int64, dot uint16) (int64, error) {
	l, err := b.l.eval(syms, dot)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(syms, dot)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return l % r, nil
	case "<<":
		return l << uint(r&63), nil
	case ">>":
		return l >> uint(r&63), nil
	case "&":
		return l & r, nil
	case "|":
		return l | r, nil
	case "^":
		return l ^ r, nil
	}
	return 0, fmt.Errorf("bad operator %q", b.op)
}
func (b binExpr) String() string { return "(" + b.l.String() + b.op + b.r.String() + ")" }

// exprLexer tokenizes an expression string.
type exprLexer struct {
	s   string
	pos int
}

type exprTok struct {
	kind string // "num", "sym", "op", "dot", "eof"
	num  int64
	text string
}

func (l *exprLexer) next() (exprTok, error) {
	for l.pos < len(l.s) && (l.s[l.pos] == ' ' || l.s[l.pos] == '\t') {
		l.pos++
	}
	if l.pos >= len(l.s) {
		return exprTok{kind: "eof"}, nil
	}
	c := l.s[l.pos]
	switch {
	case c == '$':
		l.pos++
		return exprTok{kind: "dot"}, nil
	case c == '\'':
		// character literal
		rest := l.s[l.pos+1:]
		if len(rest) >= 2 && rest[0] == '\\' {
			m := map[byte]byte{'n': '\n', 'r': '\r', 't': '\t', '0': 0, '\\': '\\', '\'': '\''}
			v, ok := m[rest[1]]
			if !ok || len(rest) < 3 || rest[2] != '\'' {
				return exprTok{}, fmt.Errorf("bad character literal")
			}
			l.pos += 4
			return exprTok{kind: "num", num: int64(v)}, nil
		}
		if len(rest) >= 2 && rest[1] == '\'' {
			l.pos += 3
			return exprTok{kind: "num", num: int64(rest[0])}, nil
		}
		return exprTok{}, fmt.Errorf("bad character literal")
	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.s) && (isAlnum(l.s[l.pos]) || l.s[l.pos] == 'x' || l.s[l.pos] == 'X') {
			l.pos++
		}
		text := l.s[start:l.pos]
		v, err := parseNumber(text)
		if err != nil {
			return exprTok{}, err
		}
		return exprTok{kind: "num", num: v}, nil
	case isSymStart(c):
		start := l.pos
		for l.pos < len(l.s) && isSymChar(l.s[l.pos]) {
			l.pos++
		}
		return exprTok{kind: "sym", text: l.s[start:l.pos]}, nil
	case strings.ContainsRune("+-*/%&|^~()", rune(c)):
		l.pos++
		return exprTok{kind: "op", text: string(c)}, nil
	case c == '<' || c == '>':
		if l.pos+1 < len(l.s) && l.s[l.pos+1] == c {
			l.pos += 2
			return exprTok{kind: "op", text: string(c) + string(c)}, nil
		}
		return exprTok{}, fmt.Errorf("bad operator %q", c)
	}
	return exprTok{}, fmt.Errorf("unexpected character %q in expression", c)
}

func isAlnum(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isSymStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isSymChar(c byte) bool { return isSymStart(c) || c >= '0' && c <= '9' }

// parseNumber handles decimal, 0x hex, 0b binary and 0o octal.
func parseNumber(s string) (int64, error) {
	ls := strings.ToLower(s)
	switch {
	case strings.HasPrefix(ls, "0x"):
		return strconv.ParseInt(ls[2:], 16, 64)
	case strings.HasPrefix(ls, "0b"):
		return strconv.ParseInt(ls[2:], 2, 64)
	case strings.HasPrefix(ls, "0o"):
		return strconv.ParseInt(ls[2:], 8, 64)
	default:
		return strconv.ParseInt(ls, 10, 64)
	}
}

// exprParser is a precedence-climbing parser.
type exprParser struct {
	lex *exprLexer
	cur exprTok
	err error
}

func parseExpr(s string) (expr, error) {
	p := &exprParser{lex: &exprLexer{s: s}}
	p.advance()
	if p.err != nil {
		return nil, p.err
	}
	e := p.parseBin(0)
	if p.err != nil {
		return nil, p.err
	}
	if p.cur.kind != "eof" {
		return nil, fmt.Errorf("trailing junk %q in expression %q", p.cur.text, s)
	}
	return e, nil
}

func (p *exprParser) advance() {
	if p.err != nil {
		return
	}
	p.cur, p.err = p.lex.next()
}

var binPrec = map[string]int{
	"|": 1, "^": 2, "&": 3, "<<": 4, ">>": 4,
	"+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
}

func (p *exprParser) parseBin(minPrec int) expr {
	left := p.parseUnary()
	for p.err == nil && p.cur.kind == "op" {
		prec, ok := binPrec[p.cur.text]
		if !ok || prec < minPrec {
			break
		}
		op := p.cur.text
		p.advance()
		right := p.parseBin(prec + 1)
		if p.err != nil {
			return nil
		}
		left = binExpr{op: op, l: left, r: right}
	}
	return left
}

func (p *exprParser) parseUnary() expr {
	if p.err != nil {
		return nil
	}
	switch {
	case p.cur.kind == "op" && (p.cur.text == "-" || p.cur.text == "~"):
		op := rune(p.cur.text[0])
		p.advance()
		return unaryExpr{op: op, e: p.parseUnary()}
	case p.cur.kind == "op" && p.cur.text == "+":
		p.advance()
		return p.parseUnary()
	case p.cur.kind == "op" && p.cur.text == "(":
		p.advance()
		e := p.parseBin(0)
		if p.err != nil {
			return nil
		}
		if p.cur.kind != "op" || p.cur.text != ")" {
			p.err = fmt.Errorf("missing closing parenthesis")
			return nil
		}
		p.advance()
		return e
	case p.cur.kind == "num":
		e := numExpr(p.cur.num)
		p.advance()
		return e
	case p.cur.kind == "sym":
		e := symExpr(p.cur.text)
		p.advance()
		return e
	case p.cur.kind == "dot":
		p.advance()
		return dotExpr{}
	}
	p.err = fmt.Errorf("unexpected token in expression")
	return nil
}

// evalUint16 evaluates e and range-checks the result into a uint16
// (accepting negative values down to -0x8000, which wrap as two's
// complement, matching assembler convention).
func evalUint16(e expr, syms map[string]int64, dot uint16) (uint16, error) {
	v, err := e.eval(syms, dot)
	if err != nil {
		return 0, err
	}
	if v < -0x8000 || v > 0xFFFF {
		return 0, fmt.Errorf("value %d out of 16-bit range", v)
	}
	return uint16(v), nil
}

// constEval tries to evaluate e with the currently known symbols; ok is
// false when the expression references a symbol that is not defined yet
// (a forward reference).
func constEval(e expr, syms map[string]int64, dot uint16) (uint16, bool) {
	v, err := evalUint16(e, syms, dot)
	if err != nil {
		return 0, false
	}
	return v, true
}
