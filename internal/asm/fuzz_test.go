package asm

import (
	"testing"
)

// FuzzAssemble is the assembler's robustness contract: arbitrary source
// text may be rejected with a diagnostic, but must never panic the
// two-pass assembler, and an accepted program must come back whole
// (image, listing and symbol table). The committed seed corpus
// (testdata/fuzz/FuzzAssemble) walks every statement kind, the
// directive set, the expression grammar and a few known-tricky shapes
// (forward references, `$` arithmetic, emulated mnemonics, string
// escapes).
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"\n\n; comment only\n",
		".org 0xE000\nreset:\n    mov #0x1234, r15\n    jmp reset\n.org 0xFFFE\n.word reset\n",
		".equ FOO, 0x0200\n.org 0xE000\nmain:\n    mov &FOO, r12\n    add #2, r12\n    ret\n",
		".org 0xE000\nstart:\n    call #fwd\nspin:\n    jmp spin\nfwd:\n    mov.b @r14+, 2(r13)\n    reti\n",
		".org 0xE000\n.word $+2, start\nstart:\n    push r11\n    pop r11\n    br #start\n",
		".org 0xE000\n.byte 1, 2, 0x41\n.ascii \"hi\\n\"\n.asciz \"z\"\n.align 2\n.space 4\n",
		"label-with-dash:\n    mov #1, r4\n",
		".org 0xFFFF\n.word 0xFFFF\n",
		"    tst r11\n    jz done\n    inc r11\ndone:\n    ret\n",
		".equ A, B\n.equ B, 1\n.word A\n",
		"    mov @r5, 0xFFFF(r6)\n    swpb r7\n    sxt r8\n    dadd r9, r10\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz.s", src)
		if err != nil {
			// Any rejection is acceptable, as long as the diagnostic
			// says something.
			if err.Error() == "" {
				t.Fatal("empty diagnostic")
			}
			return
		}
		if p == nil || p.Image == nil || p.Listing == nil || p.Symbols == nil {
			t.Fatalf("accepted program is incomplete: %+v", p)
		}
	})
}
