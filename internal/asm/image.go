package asm

import (
	"fmt"
	"sort"
)

// Image is a sparse memory image: a set of byte chunks at absolute
// addresses, the loadable output of the assembler (standing in for the
// ELF files of the paper's toolchain).
type Image struct {
	chunks map[uint16][]byte // start address -> bytes (normalized on read)
}

// NewImage creates an empty image.
func NewImage() *Image {
	return &Image{chunks: map[uint16][]byte{}}
}

// Put writes data at addr, failing on overlap with previously placed
// bytes (two statements assembling to the same address is always a bug).
func (img *Image) Put(addr uint16, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if int(addr)+len(data) > 0x10000 {
		return fmt.Errorf("image: %d bytes at 0x%04x exceed the address space", len(data), addr)
	}
	for start, chunk := range img.chunks {
		if int(addr) < int(start)+len(chunk) && int(start) < int(addr)+len(data) {
			return fmt.Errorf("image: bytes at 0x%04x overlap chunk at 0x%04x", addr, start)
		}
	}
	img.chunks[addr] = append([]byte(nil), data...)
	return nil
}

// Chunk is a contiguous run of image bytes.
type Chunk struct {
	Addr uint16
	Data []byte
}

// Chunks returns the image contents coalesced into maximal contiguous
// runs, sorted by address.
func (img *Image) Chunks() []Chunk {
	starts := make([]int, 0, len(img.chunks))
	for a := range img.chunks {
		starts = append(starts, int(a))
	}
	sort.Ints(starts)
	var out []Chunk
	for _, s := range starts {
		data := img.chunks[uint16(s)]
		if n := len(out); n > 0 && int(out[n-1].Addr)+len(out[n-1].Data) == s {
			out[n-1].Data = append(out[n-1].Data, data...)
			continue
		}
		out = append(out, Chunk{Addr: uint16(s), Data: append([]byte(nil), data...)})
	}
	return out
}

// Size returns the total number of emitted bytes — the "binary size"
// metric of the paper's Table IV.
func (img *Image) Size() int {
	n := 0
	for _, c := range img.chunks {
		n += len(c)
	}
	return n
}

// SizeInRange returns the number of emitted bytes with addresses in
// [lo, hi] (inclusive), used to measure application size excluding the
// interrupt vector table, matching how the paper reports binary size.
func (img *Image) SizeInRange(lo, hi uint16) int {
	n := 0
	for start, data := range img.chunks {
		for i := range data {
			a := uint32(start) + uint32(i)
			if a >= uint32(lo) && a <= uint32(hi) {
				n++
			}
		}
	}
	return n
}

// Loader is anything that accepts raw bytes at an absolute address
// (mem.Space implements it via LoadImage).
type Loader interface {
	LoadImage(addr uint16, data []byte) error
}

// WriteTo programs the image into the target.
func (img *Image) WriteTo(l Loader) error {
	for _, c := range img.Chunks() {
		if err := l.LoadImage(c.Addr, c.Data); err != nil {
			return err
		}
	}
	return nil
}

// BytesInRange flattens the image bytes whose addresses fall inside
// [lo, hi] into one contiguous buffer (zero-filled gaps); the second
// return is the base address (the first used address in range). Used by
// the secure-update flow, which may only touch user program memory.
func (img *Image) BytesInRange(lo, hi uint16) ([]byte, uint16) {
	var base, end uint32
	base = 0x10000
	for _, c := range img.Chunks() {
		for i := range c.Data {
			a := uint32(c.Addr) + uint32(i)
			if a < uint32(lo) || a > uint32(hi) {
				continue
			}
			if a < base {
				base = a
			}
			if a+1 > end {
				end = a + 1
			}
		}
	}
	if base >= end {
		return nil, 0
	}
	out := make([]byte, end-base)
	for _, c := range img.Chunks() {
		for i, b := range c.Data {
			a := uint32(c.Addr) + uint32(i)
			if a >= base && a < end {
				out[a-base] = b
			}
		}
	}
	return out, uint16(base)
}

// Bytes flattens the image into a single contiguous byte slice starting
// at the lowest used address. The second return is that base address.
func (img *Image) Bytes() ([]byte, uint16) {
	chunks := img.Chunks()
	if len(chunks) == 0 {
		return nil, 0
	}
	base := chunks[0].Addr
	last := chunks[len(chunks)-1]
	total := int(last.Addr) + len(last.Data) - int(base)
	out := make([]byte, total)
	for _, c := range chunks {
		copy(out[c.Addr-base:], c.Data)
	}
	return out, base
}
