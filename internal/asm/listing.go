package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"eilid/internal/isa"
)

// ListEntry is one line of a listing file: the address a source line
// assembled to, the machine words it produced, and the source text.
// EILIDinst resolves call-site return addresses from these entries
// (paper Figure 2: the `.lst` inputs of the instrumentation iterations).
type ListEntry struct {
	Addr    uint16
	Words   []uint16 // machine words (instructions, .word data)
	Bytes   int      // byte count for byte-granular data (.byte/.ascii)
	Line    int      // 1-based source line number
	Source  string   // trimmed source text
	Label   string   // label defined on this line, if any
	IsInstr bool
	Instr   isa.Instruction // valid when IsInstr
}

// Size returns the number of bytes this entry occupies.
func (e ListEntry) Size() uint16 {
	if len(e.Words) > 0 {
		return uint16(2 * len(e.Words))
	}
	return uint16(e.Bytes)
}

// Listing is the full listing of one assembly run.
type Listing struct {
	Name    string
	Symbols map[string]uint16
	Entries []ListEntry
}

// EntryForLine returns the listing entry produced by the given source
// line, if any. This is the instrumenter's primary lookup.
func (l *Listing) EntryForLine(line int) (ListEntry, bool) {
	for _, e := range l.Entries {
		if e.Line == line && (e.IsInstr || e.Size() > 0 || e.Label != "") {
			return e, true
		}
	}
	return ListEntry{}, false
}

// FunctionSymbols returns symbols that label instruction entries (i.e.
// code labels, the candidate function entry points for the EILID
// forward-edge table), sorted by address.
func (l *Listing) FunctionSymbols() []string {
	addrs := map[uint16]bool{}
	for _, e := range l.Entries {
		if e.IsInstr {
			addrs[e.Addr] = true
		}
	}
	var names []string
	for name, v := range l.Symbols {
		if addrs[v] {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if l.Symbols[names[i]] != l.Symbols[names[j]] {
			return l.Symbols[names[i]] < l.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// String renders the listing in the textual `.lst` format:
//
//	; listing: <name>
//	; symbols:
//	;   <name> = 0x....
//	e000  4031 0a00  |    3| mov #0x0A00, sp
//
// The format round-trips through ParseListing; the EILID pipeline passes
// listings between iterations as text, as the paper's tooling does.
func (l *Listing) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; listing: %s\n; symbols:\n", l.Name)
	names := make([]string, 0, len(l.Symbols))
	for n := range l.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, ";   %s = 0x%04x\n", n, l.Symbols[n])
	}
	for _, e := range l.Entries {
		var wordCol string
		switch {
		case e.IsInstr:
			wordCol = isa.FormatWords(e.Words)
		case len(e.Words) > 0:
			// Data words carry an '=' marker so ParseListing never
			// confuses them with instructions (a .word whose value
			// happens to decode would otherwise round-trip wrong).
			parts := make([]string, len(e.Words))
			for i, w := range e.Words {
				parts[i] = fmt.Sprintf("=%04x", w)
			}
			wordCol = strings.Join(parts, " ")
		case e.Bytes > 0:
			wordCol = fmt.Sprintf("<%d bytes>", e.Bytes)
		}
		fmt.Fprintf(&b, "%04x  %-24s |%5d| %s\n", e.Addr, wordCol, e.Line, e.Source)
	}
	return b.String()
}

// ParseListing parses the textual format produced by String. Instruction
// words are re-decoded so that IsInstr/Instr are populated; entries whose
// words do not decode (data .word lines) are kept as data.
func ParseListing(text string) (*Listing, error) {
	l := &Listing{Symbols: map[string]uint16{}}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, " \t\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			body := strings.TrimSpace(line[1:])
			switch {
			case strings.HasPrefix(body, "listing:"):
				l.Name = strings.TrimSpace(strings.TrimPrefix(body, "listing:"))
			case strings.Contains(body, " = 0x"):
				parts := strings.SplitN(body, " = ", 2)
				if len(parts) == 2 {
					v, err := strconv.ParseUint(strings.TrimPrefix(parts[1], "0x"), 16, 16)
					if err != nil {
						return nil, fmt.Errorf("listing line %d: bad symbol value %q", lineNo+1, parts[1])
					}
					l.Symbols[strings.TrimSpace(parts[0])] = uint16(v)
				}
			}
			continue
		}
		// Data line: "addr  words |line| source"
		bar1 := strings.Index(line, "|")
		bar2 := -1
		if bar1 >= 0 {
			if rel := strings.Index(line[bar1+1:], "|"); rel >= 0 {
				bar2 = bar1 + 1 + rel
			}
		}
		if bar1 < 0 || bar2 < 0 {
			return nil, fmt.Errorf("listing line %d: malformed entry %q", lineNo+1, line)
		}
		head := strings.Fields(line[:bar1])
		if len(head) == 0 {
			return nil, fmt.Errorf("listing line %d: missing address", lineNo+1)
		}
		addr64, err := strconv.ParseUint(head[0], 16, 16)
		if err != nil {
			return nil, fmt.Errorf("listing line %d: bad address %q", lineNo+1, head[0])
		}
		srcLine, err := strconv.Atoi(strings.TrimSpace(line[bar1+1 : bar2]))
		if err != nil {
			return nil, fmt.Errorf("listing line %d: bad line number", lineNo+1)
		}
		entry := ListEntry{
			Addr:   uint16(addr64),
			Line:   srcLine,
			Source: strings.TrimSpace(line[bar2+1:]),
		}
		if len(head) > 1 && strings.HasPrefix(head[1], "<") {
			// "<N bytes>" data annotation
			var n int
			if _, err := fmt.Sscanf(strings.Join(head[1:], " "), "<%d bytes>", &n); err != nil {
				return nil, fmt.Errorf("listing line %d: bad byte annotation", lineNo+1)
			}
			entry.Bytes = n
		} else {
			isData := false
			for _, h := range head[1:] {
				hh := h
				if strings.HasPrefix(hh, "=") {
					isData = true
					hh = hh[1:]
				}
				w, err := strconv.ParseUint(hh, 16, 16)
				if err != nil {
					return nil, fmt.Errorf("listing line %d: bad word %q", lineNo+1, h)
				}
				entry.Words = append(entry.Words, uint16(w))
			}
			if len(entry.Words) > 0 && !isData {
				in, n, err := isa.Decode(entry.Words)
				if err != nil || n != len(entry.Words) {
					return nil, fmt.Errorf("listing line %d: undecodable instruction words", lineNo+1)
				}
				entry.IsInstr = true
				entry.Instr = in
			}
		}
		// Recover label definitions from source text ("name:").
		src := entry.Source
		if i := strings.Index(src, ":"); i > 0 && isIdent(src[:i]) {
			entry.Label = src[:i]
		}
		l.Entries = append(l.Entries, entry)
	}
	return l, nil
}
