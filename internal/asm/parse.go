package asm

import (
	"fmt"
	"strings"

	"eilid/internal/isa"
)

// operandKind mirrors the syntactic operand classes.
type operandKind uint8

const (
	opndReg operandKind = iota
	opndImm
	opndAbs
	opndIndirect
	opndIndirectInc
	opndIndexed
	opndSymbolic
	// opndPCRel is an explicit "x(pc)" operand: a raw PC-relative
	// displacement measured from the extension word, as the disassembler
	// prints symbolic operands. Unlike opndSymbolic the expression is the
	// displacement itself, not the target address.
	opndPCRel
)

// parsedOperand is an operand before symbol resolution.
type parsedOperand struct {
	kind operandKind
	reg  isa.Reg
	e    expr // immediate value, absolute address, index, or symbolic target
	// forceExt records the pass-1 sizing decision for immediates: when
	// true the operand reserves an extension word even if the final value
	// is CG-eligible.
	forceExt bool
}

// stmtKind distinguishes parsed statement types.
type stmtKind uint8

const (
	stmtInstr stmtKind = iota
	stmtJump
	stmtDirective
	stmtEmpty
)

// statement is one parsed source line.
type statement struct {
	kind  stmtKind
	line  int    // 1-based source line
	text  string // source text (trimmed, comments stripped for listing)
	label string // label defined on this line, if any

	// Instruction statements.
	op     isa.Opcode
	byteOp bool
	src    *parsedOperand
	dst    *parsedOperand

	// Jump statements.
	jumpTarget expr

	// Directive statements.
	directive string
	args      []string
}

// registers by name.
var regNames = map[string]isa.Reg{
	"pc": isa.PC, "sp": isa.SP, "sr": isa.SR,
	"r0": isa.PC, "r1": isa.SP, "r2": isa.SR, "r3": isa.CG,
	"r4": 4, "r5": 5, "r6": 6, "r7": 7, "r8": 8, "r9": 9,
	"r10": 10, "r11": 11, "r12": 12, "r13": 13, "r14": 14, "r15": 15,
}

// format I mnemonics.
var fmt1Mnemonics = map[string]isa.Opcode{
	"mov": isa.MOV, "add": isa.ADD, "addc": isa.ADDC, "subc": isa.SUBC,
	"sub": isa.SUB, "cmp": isa.CMP, "dadd": isa.DADD, "bit": isa.BIT,
	"bic": isa.BIC, "bis": isa.BIS, "xor": isa.XOR, "and": isa.AND,
}

// format II mnemonics.
var fmt2Mnemonics = map[string]isa.Opcode{
	"rrc": isa.RRC, "swpb": isa.SWPB, "rra": isa.RRA, "sxt": isa.SXT,
	"push": isa.PUSH, "call": isa.CALL,
}

// jump mnemonics including TI aliases.
var jumpMnemonics = map[string]isa.Opcode{
	"jne": isa.JNE, "jnz": isa.JNE, "jeq": isa.JEQ, "jz": isa.JEQ,
	"jnc": isa.JNC, "jlo": isa.JNC, "jc": isa.JC, "jhs": isa.JC,
	"jn": isa.JN, "jge": isa.JGE, "jl": isa.JL, "jmp": isa.JMP,
}

// stripComment removes ';' and '//' comments, respecting string literals.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '"' && (i == 0 || line[i-1] != '\\') {
			inStr = !inStr
		}
		if inStr {
			continue
		}
		if c == ';' {
			return line[:i]
		}
		if c == '/' && i+1 < len(line) && line[i+1] == '/' {
			return line[:i]
		}
	}
	return line
}

// splitOperands splits on commas outside parentheses and strings.
func splitOperands(s string) []string {
	var out []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

// parseOperand parses one operand string.
func parseOperand(s string) (*parsedOperand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty operand")
	}
	low := strings.ToLower(s)
	if r, ok := regNames[low]; ok {
		return &parsedOperand{kind: opndReg, reg: r}, nil
	}
	switch s[0] {
	case '#':
		e, err := parseExpr(s[1:])
		if err != nil {
			return nil, fmt.Errorf("immediate %q: %v", s, err)
		}
		return &parsedOperand{kind: opndImm, e: e}, nil
	case '&':
		e, err := parseExpr(s[1:])
		if err != nil {
			return nil, fmt.Errorf("absolute %q: %v", s, err)
		}
		return &parsedOperand{kind: opndAbs, e: e}, nil
	case '@':
		rest := s[1:]
		inc := false
		if strings.HasSuffix(rest, "+") {
			inc = true
			rest = rest[:len(rest)-1]
		}
		r, ok := regNames[strings.ToLower(strings.TrimSpace(rest))]
		if !ok {
			return nil, fmt.Errorf("bad indirect operand %q", s)
		}
		if inc {
			return &parsedOperand{kind: opndIndirectInc, reg: r}, nil
		}
		return &parsedOperand{kind: opndIndirect, reg: r}, nil
	}
	// indexed: expr(reg)
	if strings.HasSuffix(s, ")") {
		if open := strings.LastIndex(s, "("); open > 0 {
			if r, ok := regNames[strings.ToLower(strings.TrimSpace(s[open+1:len(s)-1]))]; ok {
				e, err := parseExpr(s[:open])
				if err != nil {
					return nil, fmt.Errorf("index expression in %q: %v", s, err)
				}
				if r == isa.PC {
					return &parsedOperand{kind: opndPCRel, reg: r, e: e}, nil
				}
				return &parsedOperand{kind: opndIndexed, reg: r, e: e}, nil
			}
		}
	}
	// bare expression: symbolic (PC-relative) addressing
	e, err := parseExpr(s)
	if err != nil {
		return nil, fmt.Errorf("operand %q: %v", s, err)
	}
	return &parsedOperand{kind: opndSymbolic, e: e}, nil
}

// parseLine parses one source line into a statement (label and/or
// operation).
func parseLine(lineNo int, raw string) (*statement, error) {
	text := strings.TrimRight(stripComment(raw), " \t")
	// The listing carries the original text (including comments): the
	// EILID instrumenter and humans both read listings, and the inserted
	// lines are identified by their trailing comments.
	st := &statement{kind: stmtEmpty, line: lineNo, text: strings.TrimSpace(strings.TrimRight(raw, " \t\r"))}
	s := strings.TrimSpace(text)
	if s == "" {
		return st, nil
	}

	// Label?
	if i := strings.Index(s, ":"); i > 0 {
		cand := s[:i]
		if isIdent(cand) {
			st.label = cand
			s = strings.TrimSpace(s[i+1:])
			if s == "" {
				return st, nil
			}
		}
	}

	// Directive?
	if s[0] == '.' {
		fields := strings.SplitN(s, " ", 2)
		st.kind = stmtDirective
		st.directive = strings.ToLower(strings.TrimSpace(fields[0]))
		if len(fields) == 2 {
			st.args = splitOperands(strings.TrimSpace(fields[1]))
		}
		return st, nil
	}

	// Mnemonic.
	fields := strings.SplitN(s, " ", 2)
	mn := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}

	byteOp := false
	if strings.HasSuffix(mn, ".b") {
		byteOp = true
		mn = mn[:len(mn)-2]
	} else if strings.HasSuffix(mn, ".w") {
		mn = mn[:len(mn)-2]
	}

	if op, ok := jumpMnemonics[mn]; ok {
		if byteOp {
			return nil, fmt.Errorf("jump %q has no byte form", mn)
		}
		e, err := parseExpr(rest)
		if err != nil {
			return nil, fmt.Errorf("jump target %q: %v", rest, err)
		}
		st.kind = stmtJump
		st.op = op
		st.jumpTarget = e
		return st, nil
	}

	if op, ok := fmt1Mnemonics[mn]; ok {
		ops := splitOperands(rest)
		if len(ops) != 2 {
			return nil, fmt.Errorf("%s needs 2 operands, got %d", mn, len(ops))
		}
		src, err := parseOperand(ops[0])
		if err != nil {
			return nil, err
		}
		dst, err := parseOperand(ops[1])
		if err != nil {
			return nil, err
		}
		st.kind = stmtInstr
		st.op = op
		st.byteOp = byteOp
		st.src = src
		st.dst = dst
		return st, nil
	}

	if op, ok := fmt2Mnemonics[mn]; ok {
		ops := splitOperands(rest)
		if len(ops) != 1 {
			return nil, fmt.Errorf("%s needs 1 operand, got %d", mn, len(ops))
		}
		src, err := parseOperand(ops[0])
		if err != nil {
			return nil, err
		}
		st.kind = stmtInstr
		st.op = op
		st.byteOp = byteOp
		st.src = src
		return st, nil
	}

	if mn == "reti" {
		st.kind = stmtInstr
		st.op = isa.RETI
		return st, nil
	}

	// Emulated mnemonics expand to real instructions.
	if est, ok, err := expandEmulated(mn, byteOp, rest); ok {
		if err != nil {
			return nil, err
		}
		est.line = st.line
		est.text = st.text
		est.label = st.label
		return est, nil
	}

	return nil, fmt.Errorf("unknown mnemonic %q", mn)
}

func isIdent(s string) bool {
	if s == "" || !isSymStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isSymChar(s[i]) {
			return false
		}
	}
	return true
}

// expandEmulated maps TI emulated mnemonics onto core instructions.
func expandEmulated(mn string, byteOp bool, rest string) (*statement, bool, error) {
	mk := func(op isa.Opcode, src, dst *parsedOperand) (*statement, bool, error) {
		return &statement{kind: stmtInstr, op: op, byteOp: byteOp, src: src, dst: dst}, true, nil
	}
	immOp := func(v int64) *parsedOperand {
		return &parsedOperand{kind: opndImm, e: numExpr(v)}
	}
	spInc := &parsedOperand{kind: opndIndirectInc, reg: isa.SP}
	pcReg := &parsedOperand{kind: opndReg, reg: isa.PC}
	srReg := &parsedOperand{kind: opndReg, reg: isa.SR}

	oneOperand := func() (*parsedOperand, error) {
		ops := splitOperands(rest)
		if len(ops) != 1 {
			return nil, fmt.Errorf("%s needs 1 operand", mn)
		}
		return parseOperand(ops[0])
	}

	switch mn {
	case "ret":
		return mk(isa.MOV, spInc, pcReg)
	case "pop":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.MOV, spInc, dst)
	case "br":
		src, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.MOV, src, pcReg)
	case "nop":
		return mk(isa.MOV, immOp(0), &parsedOperand{kind: opndReg, reg: isa.CG})
	case "clr":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.MOV, immOp(0), dst)
	case "clrc":
		return mk(isa.BIC, immOp(int64(isa.FlagC)), srReg)
	case "setc":
		return mk(isa.BIS, immOp(int64(isa.FlagC)), srReg)
	case "clrz":
		return mk(isa.BIC, immOp(int64(isa.FlagZ)), srReg)
	case "setz":
		return mk(isa.BIS, immOp(int64(isa.FlagZ)), srReg)
	case "clrn":
		return mk(isa.BIC, immOp(int64(isa.FlagN)), srReg)
	case "setn":
		return mk(isa.BIS, immOp(int64(isa.FlagN)), srReg)
	case "dint":
		return mk(isa.BIC, immOp(int64(isa.FlagGIE)), srReg)
	case "eint":
		return mk(isa.BIS, immOp(int64(isa.FlagGIE)), srReg)
	case "inc":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.ADD, immOp(1), dst)
	case "incd":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.ADD, immOp(2), dst)
	case "dec":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.SUB, immOp(1), dst)
	case "decd":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.SUB, immOp(2), dst)
	case "tst":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.CMP, immOp(0), dst)
	case "inv":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		if byteOp {
			return mk(isa.XOR, immOp(0xFF), dst)
		}
		return mk(isa.XOR, immOp(-1), dst)
	case "adc":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.ADDC, immOp(0), dst)
	case "sbc":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.SUBC, immOp(0), dst)
	case "dadc":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		return mk(isa.DADD, immOp(0), dst)
	case "rla":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		src := *dst
		return mk(isa.ADD, &src, dst)
	case "rlc":
		dst, err := oneOperand()
		if err != nil {
			return nil, true, err
		}
		src := *dst
		return mk(isa.ADDC, &src, dst)
	}
	return nil, false, nil
}
