// Package attacks implements the run-time control-flow attack suite used
// to validate EILID's three security properties (P1 return-address
// integrity, P2 return-from-interrupt integrity, P3 indirect-call
// integrity) plus the CASU-layer protections (W⊕X, shadow-stack
// exclusivity). Each scenario is run twice: against the unprotected
// baseline device, where it must succeed (demonstrating the threat is
// real), and against the EILID-protected device, where the hardware must
// reset before any attacker code executes.
//
// The adversary model is the paper's: full knowledge of the binary (the
// payloads are computed from the symbol table of the build under attack)
// and the ability to corrupt arbitrary data memory at run time (either
// through an in-firmware memory-safety bug or, where the paper's generic
// "memory vulnerability" is abstracted, a harness-injected write).
package attacks

import (
	"fmt"
	"runtime"

	"eilid/internal/asm"
	"eilid/internal/core"
	"eilid/internal/fleet/pool"
	"eilid/internal/isa"
)

// CompromiseCode is the simulation-control exit code attacker payloads
// write: seeing it means the adversary executed code of their choosing.
const CompromiseCode = 0x66

// Scenario is one attack.
type Scenario struct {
	Name string
	// Property is the EILID security property under test (P1/P2/P3) or
	// the CASU-layer rule (W^X, SecureData).
	Property string
	// Description explains the attack in one paragraph.
	Description string
	// Source is the victim firmware.
	Source string
	// Payload builds the attacker's UART input from the symbol table of
	// the build under attack (nil when the scenario uses Poke).
	Payload func(syms map[string]uint16) []byte
	// PokeAt names the symbol at which the harness performs the
	// adversary's arbitrary memory write; empty when unused.
	PokeAt string
	// Poke performs that write.
	Poke func(m *core.Machine, syms map[string]uint16)
	// Resident marks scenarios whose adversary action is baked into the
	// firmware itself (modelling an attacker-reached code path) rather
	// than delivered via Payload or Poke.
	Resident bool
	// WantReason is the expected reset-cause substring on the protected
	// device (e.g. "cfi-check-failed", "exec-from-nonexec").
	WantReason string
	// Budget overrides the suite's per-run cycle budget when non-zero.
	// Generated scenarios (internal/scenario) use small budgets so a
	// fuzzed input that wedges the victim in a polling loop stays cheap
	// at fleet scale.
	Budget uint64
	// RunThroughResets keeps the protected device running through
	// monitor resets (Machine.Run instead of Machine.RunUntilReset)
	// until halt or budget exhaustion, making reset storms observable
	// as an Outcome.Resets count instead of stopping at the first one.
	RunThroughResets bool
}

// Outcome describes one machine's fate under a scenario.
type Outcome struct {
	Compromised bool   // attacker code ran (exit code CompromiseCode)
	Halted      bool   // firmware reached a halt
	ExitCode    uint16 // final simulation-control value
	Resets      int    // hardware resets observed
	Reason      string // first reset cause, if any
	// ReasonsRecorded is how many per-reset violation records the
	// machine retained; under a reset storm it saturates at
	// core.MaxResetReasons while Resets keeps the true total.
	ReasonsRecorded int
	Cycles          uint64 // total MCLK cycles since power-on
	Insns           uint64 // instructions executed since power-on
	UART            string // transmit transcript
}

// Result pairs the baseline and protected outcomes of one scenario.
type Result struct {
	Scenario  Scenario
	Baseline  Outcome
	Protected Outcome
}

// Defended reports whether the scenario demonstrates EILID's value: the
// baseline fell, the protected device reset for the expected reason, and
// the attacker never ran code on it.
func (r Result) Defended() bool {
	return r.Baseline.Compromised &&
		!r.Protected.Compromised &&
		r.Protected.Resets > 0
}

// budget bounds every attack run.
const budget = 5_000_000

// Target is one prebuilt device variant a scenario executes against:
// the build artifacts are produced once (assembly, instrumentation,
// decode cache) and then shared by every run, which is what lets the
// fleet runner replay the same scenario on many machines concurrently.
type Target struct {
	Config  core.Config
	ROM     *core.SecureROM // required for instrumented defenses
	Image   *asm.Image
	Symbols map[string]uint16
	// Defense selects the monitor variant; nil means
	// core.DefenseBaseline.
	Defense *core.DefenseSpec
	// Predecoded optionally shares a decode cache built (via
	// core.Machine.EnablePredecode) from a machine loaded with this
	// exact Image (and ROM, for instrumented defenses).
	Predecoded *isa.Predecoded
}

// Symbol resolves a name in the target's symbol table (the baseline and
// protected builds lay code out differently, so adversarial addresses
// must always come from the table of the build under attack).
func (t Target) Symbol(name string) (uint16, bool) {
	v, ok := t.Symbols[name]
	return v, ok
}

// TargetFor derives the target for one defense from a build: an
// instrumented defense attacks the EILIDinst build (with its shifted
// layout and trampolines), everything else the original build.
func TargetFor(p *core.Pipeline, build *core.BuildResult, spec *core.DefenseSpec) Target {
	if spec == nil {
		spec = core.DefenseBaseline
	}
	t := Target{
		Config:  p.Config(),
		Image:   build.Original.Image,
		Symbols: build.Original.Symbols,
		Defense: spec,
	}
	if spec.Instrumented {
		t.ROM = p.ROM()
		t.Image = build.Instrumented.Image
		t.Symbols = build.Instrumented.Symbols
	}
	return t
}

// TargetsFor derives the baseline and EILID-protected targets from a
// build (the two columns of the paper's own comparison).
func TargetsFor(p *core.Pipeline, build *core.BuildResult) (baseline, protected Target) {
	return TargetFor(p, build, core.DefenseBaseline), TargetFor(p, build, core.DefenseEILID)
}

// Run executes the scenario against both device variants.
func Run(p *core.Pipeline, sc Scenario) (Result, error) {
	build, err := p.Build(sc.Name+".s", sc.Source)
	if err != nil {
		return Result{}, fmt.Errorf("attacks: building %s: %w", sc.Name, err)
	}

	baseT, protT := TargetsFor(p, build)
	base, err := Execute(baseT, sc)
	if err != nil {
		return Result{}, fmt.Errorf("attacks: %s baseline: %w", sc.Name, err)
	}
	prot, err := Execute(protT, sc)
	if err != nil {
		return Result{}, fmt.Errorf("attacks: %s protected: %w", sc.Name, err)
	}
	return Result{Scenario: sc, Baseline: base, Protected: prot}, nil
}

// NewMachine constructs a fresh device for this target: variant
// options applied, image loaded, shared decode cache installed when the
// target carries one. The fleet's machine pool builds every pooled
// machine through this helper, seals it with core.Machine.Snapshot and
// recycles it between jobs.
func (t Target) NewMachine() (*core.Machine, error) {
	opts := core.MachineOptions{Config: t.Config, ROM: t.ROM, Defense: t.Defense}
	m, err := core.NewMachine(opts)
	if err != nil {
		return nil, err
	}
	if err := t.Image.WriteTo(m.Space); err != nil {
		return nil, err
	}
	if t.Predecoded != nil {
		m.UsePredecoded(t.Predecoded)
	}
	return m, nil
}

// Execute runs the scenario once against a prebuilt target on a fresh
// machine.
func Execute(t Target, sc Scenario) (Outcome, error) {
	m, err := t.NewMachine()
	if err != nil {
		return Outcome{}, err
	}
	return ExecuteOn(m, t, sc)
}

// ExecuteOn runs the scenario on a prepared machine — fresh from
// Target.NewMachine, or recycled by the fleet's machine pool — which
// must carry the target's image (and decode cache, when shared).
func ExecuteOn(m *core.Machine, t Target, sc Scenario) (Outcome, error) {
	syms := t.Symbols
	monitored := m.Monitor != nil
	if sc.Payload != nil {
		m.UART.Feed(sc.Payload(syms))
	}
	m.Boot()

	if sc.PokeAt != "" {
		addr, ok := syms[sc.PokeAt]
		if !ok {
			return Outcome{}, fmt.Errorf("symbol %q not found", sc.PokeAt)
		}
		for steps := 0; m.CPU.PC() != addr; steps++ {
			if steps > budget {
				return Outcome{}, fmt.Errorf("never reached %s (0x%04x)", sc.PokeAt, addr)
			}
			if _, err := m.Step(); err != nil {
				return Outcome{}, err
			}
			if m.ResetCount > 0 {
				// Device reset before the poke point (shouldn't happen on
				// a benign path); report as-is.
				return outcomeOf(m), nil
			}
		}
		sc.Poke(m, syms)
	}

	// Run errors (cycle-budget exhaustion, or a baseline device crashing
	// outright on wild control flow — e.g. executing data that does not
	// decode) are outcomes, not harness failures: a crash is not a
	// compromise, but not a defended result either. Record what we know.
	limit := sc.Budget
	if limit == 0 {
		limit = budget
	}
	if monitored && !sc.RunThroughResets {
		_, _ = m.RunUntilReset(limit)
	} else {
		_, _ = m.Run(limit)
	}
	return outcomeOf(m), nil
}

// outcomeOf reads the machine's fate off its power-on observables.
func outcomeOf(m *core.Machine) Outcome {
	o := Outcome{
		Halted:   m.Halted(),
		ExitCode: m.ExitCode(),
		Resets:   m.ResetCount,
		Cycles:   m.CPU.Cycles,
		Insns:    m.CPU.Insns,
		UART:     m.UART.Transcript(),
	}
	o.Compromised = o.Halted && o.ExitCode == CompromiseCode
	o.ReasonsRecorded = len(m.ResetReasons)
	if len(m.ResetReasons) > 0 {
		o.Reason = m.ResetReasons[0].Kind.String()
	}
	return o
}

// RunAll executes every scenario, sweeping them concurrently across the
// available CPUs. Results come back in Scenarios() order and are
// identical to a sequential sweep (each scenario builds and runs on
// machines of its own).
func RunAll(p *core.Pipeline) ([]Result, error) {
	return RunAllWorkers(p, runtime.GOMAXPROCS(0))
}

// RunAllWorkers is RunAll with an explicit worker count (1 = sequential).
func RunAllWorkers(p *core.Pipeline, workers int) ([]Result, error) {
	scs := Scenarios()
	results := pool.Do(len(scs), workers, func(i int) pool.Err[Result] {
		r, err := Run(p, scs[i])
		return pool.Err[Result]{V: r, Err: err}
	})
	if err := pool.First(results); err != nil {
		return nil, err
	}
	out := make([]Result, len(results))
	for i, r := range results {
		out[i] = r.V
	}
	return out, nil
}
