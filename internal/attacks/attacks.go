// Package attacks implements the run-time control-flow attack suite used
// to validate EILID's three security properties (P1 return-address
// integrity, P2 return-from-interrupt integrity, P3 indirect-call
// integrity) plus the CASU-layer protections (W⊕X, shadow-stack
// exclusivity). Each scenario is run twice: against the unprotected
// baseline device, where it must succeed (demonstrating the threat is
// real), and against the EILID-protected device, where the hardware must
// reset before any attacker code executes.
//
// The adversary model is the paper's: full knowledge of the binary (the
// payloads are computed from the symbol table of the build under attack)
// and the ability to corrupt arbitrary data memory at run time (either
// through an in-firmware memory-safety bug or, where the paper's generic
// "memory vulnerability" is abstracted, a harness-injected write).
package attacks

import (
	"errors"
	"fmt"

	"eilid/internal/asm"
	"eilid/internal/core"
)

// CompromiseCode is the simulation-control exit code attacker payloads
// write: seeing it means the adversary executed code of their choosing.
const CompromiseCode = 0x66

// Scenario is one attack.
type Scenario struct {
	Name string
	// Property is the EILID security property under test (P1/P2/P3) or
	// the CASU-layer rule (W^X, SecureData).
	Property string
	// Description explains the attack in one paragraph.
	Description string
	// Source is the victim firmware.
	Source string
	// Payload builds the attacker's UART input from the symbol table of
	// the build under attack (nil when the scenario uses Poke).
	Payload func(syms map[string]uint16) []byte
	// PokeAt names the symbol at which the harness performs the
	// adversary's arbitrary memory write; empty when unused.
	PokeAt string
	// Poke performs that write.
	Poke func(m *core.Machine, syms map[string]uint16)
	// Resident marks scenarios whose adversary action is baked into the
	// firmware itself (modelling an attacker-reached code path) rather
	// than delivered via Payload or Poke.
	Resident bool
	// WantReason is the expected reset-cause substring on the protected
	// device (e.g. "cfi-check-failed", "exec-from-nonexec").
	WantReason string
}

// Outcome describes one machine's fate under a scenario.
type Outcome struct {
	Compromised bool   // attacker code ran (exit code CompromiseCode)
	Halted      bool   // firmware reached a halt
	ExitCode    uint16 // final simulation-control value
	Resets      int    // hardware resets observed
	Reason      string // first reset cause, if any
}

// Result pairs the baseline and protected outcomes of one scenario.
type Result struct {
	Scenario  Scenario
	Baseline  Outcome
	Protected Outcome
}

// Defended reports whether the scenario demonstrates EILID's value: the
// baseline fell, the protected device reset for the expected reason, and
// the attacker never ran code on it.
func (r Result) Defended() bool {
	return r.Baseline.Compromised &&
		!r.Protected.Compromised &&
		r.Protected.Resets > 0
}

// budget bounds every attack run.
const budget = 5_000_000

// Run executes the scenario against both device variants.
func Run(p *core.Pipeline, sc Scenario) (Result, error) {
	build, err := p.Build(sc.Name+".s", sc.Source)
	if err != nil {
		return Result{}, fmt.Errorf("attacks: building %s: %w", sc.Name, err)
	}

	base, err := runOne(p, sc, build.Original.Image, build.Original.Symbols, false)
	if err != nil {
		return Result{}, fmt.Errorf("attacks: %s baseline: %w", sc.Name, err)
	}
	prot, err := runOne(p, sc, build.Instrumented.Image, build.Instrumented.Symbols, true)
	if err != nil {
		return Result{}, fmt.Errorf("attacks: %s protected: %w", sc.Name, err)
	}
	return Result{Scenario: sc, Baseline: base, Protected: prot}, nil
}

func runOne(p *core.Pipeline, sc Scenario, img *asm.Image, syms map[string]uint16, protected bool) (Outcome, error) {
	opts := core.MachineOptions{Config: p.Config()}
	if protected {
		opts.ROM = p.ROM()
		opts.Protected = true
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		return Outcome{}, err
	}
	if err := img.WriteTo(m.Space); err != nil {
		return Outcome{}, err
	}
	if sc.Payload != nil {
		m.UART.Feed(sc.Payload(syms))
	}
	m.Boot()

	if sc.PokeAt != "" {
		addr, ok := syms[sc.PokeAt]
		if !ok {
			return Outcome{}, fmt.Errorf("symbol %q not found", sc.PokeAt)
		}
		for steps := 0; m.CPU.PC() != addr; steps++ {
			if steps > budget {
				return Outcome{}, fmt.Errorf("never reached %s (0x%04x)", sc.PokeAt, addr)
			}
			if _, err := m.Step(); err != nil {
				return Outcome{}, err
			}
			if m.ResetCount > 0 {
				// Device reset before the poke point (shouldn't happen on
				// a benign path); report as-is.
				return outcomeOf(m, core.RunResult{Resets: m.ResetCount}), nil
			}
		}
		sc.Poke(m, syms)
	}

	var res core.RunResult
	if protected {
		res, err = m.RunUntilReset(budget)
	} else {
		res, err = m.Run(budget)
	}
	if err != nil && !errors.Is(err, core.ErrCycleBudget) {
		// Baseline devices may crash outright on wild control flow (for
		// example, executing data that does not decode). A crash is not
		// a compromise, but it is not a defended outcome either; record
		// it with what we know.
		return outcomeOf(m, res), nil
	}
	return outcomeOf(m, res), nil
}

func outcomeOf(m *core.Machine, res core.RunResult) Outcome {
	o := Outcome{
		Halted:   m.Halted(),
		ExitCode: m.ExitCode(),
		Resets:   m.ResetCount,
	}
	o.Compromised = o.Halted && o.ExitCode == CompromiseCode
	if len(m.ResetReasons) > 0 {
		o.Reason = m.ResetReasons[0].Kind.String()
	}
	return o
}

// RunAll executes every scenario.
func RunAll(p *core.Pipeline) ([]Result, error) {
	var out []Result
	for _, sc := range Scenarios() {
		r, err := Run(p, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
