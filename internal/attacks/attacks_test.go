package attacks

import (
	"strings"
	"testing"

	"eilid/internal/core"
)

func pipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllScenariosDefended(t *testing.T) {
	p := pipeline(t)
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r, err := Run(p, sc)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Baseline.Compromised {
				t.Errorf("baseline NOT compromised (halted=%v exit=0x%02x): the threat must be demonstrable",
					r.Baseline.Halted, r.Baseline.ExitCode)
			}
			if r.Protected.Compromised {
				t.Error("attacker code executed on the EILID device")
			}
			if r.Protected.Resets == 0 {
				t.Error("EILID device did not reset")
			}
			if !strings.Contains(r.Protected.Reason, sc.WantReason) {
				t.Errorf("reset reason %q, want %q", r.Protected.Reason, sc.WantReason)
			}
			if !r.Defended() {
				t.Errorf("scenario not fully defended: %+v", r)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	p := pipeline(t)
	results, err := RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Scenarios()) {
		t.Fatalf("RunAll returned %d results", len(results))
	}
	props := map[string]bool{}
	for _, r := range results {
		props[r.Scenario.Property] = true
	}
	// The suite must exercise all three paper properties plus the
	// CASU-layer rules.
	for _, want := range []string{"P1", "P2", "P3", "W^X", "SecureData"} {
		if !props[want] {
			t.Errorf("no scenario covers property %s", want)
		}
	}
}

func TestScenariosHaveMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Name == "" || sc.Description == "" || sc.Property == "" || sc.WantReason == "" {
			t.Errorf("scenario %+v missing metadata", sc.Name)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Payload == nil && sc.PokeAt == "" && !sc.Resident {
			t.Errorf("%s: no adversary action defined", sc.Name)
		}
	}
}

func TestShellcodeIsValid(t *testing.T) {
	sc := Shellcode()
	if len(sc) < 4 || len(sc)%2 != 0 {
		t.Fatalf("shellcode = % x", sc)
	}
}

func TestBenignPayloadIsHarmless(t *testing.T) {
	// The overflow victim with an in-bounds message behaves normally on
	// BOTH devices: EILID adds no false positives.
	p := pipeline(t)
	sc := stackSmash()
	sc.Payload = func(map[string]uint16) []byte { return []byte{3, 'o', 'k', '!'} }
	r, err := Run(p, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Baseline.Halted || r.Baseline.ExitCode != 0 {
		t.Errorf("baseline benign run: %+v", r.Baseline)
	}
	if !r.Protected.Halted || r.Protected.ExitCode != 0 || r.Protected.Resets != 0 {
		t.Errorf("protected benign run: %+v", r.Protected)
	}
}
