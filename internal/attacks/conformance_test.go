package attacks

import (
	"strings"
	"testing"
)

// TestScenarioConformance is the handcrafted suite's declarative
// contract, stated table-driven over Scenarios(): every scenario's
// protected run must reset for (a reason containing) its declared
// WantReason without ever being compromised, and the suite as a whole
// must keep at least one scenario on each of the paper's properties
// (P1/P2/P3) and each CASU-layer rule (W^X, SecureData). The generated
// families in internal/scenario mutate these exemplars, so a scenario
// drifting from its declared reason would silently skew thousands of
// generated oracles — this test pins the anchor points.
func TestScenarioConformance(t *testing.T) {
	p := pipeline(t)
	covered := map[string][]string{}
	for _, sc := range Scenarios() {
		sc := sc
		covered[sc.Property] = append(covered[sc.Property], sc.Name)
		t.Run(sc.Name, func(t *testing.T) {
			r, err := Run(p, sc)
			if err != nil {
				t.Fatal(err)
			}
			if r.Protected.Compromised {
				t.Errorf("protected device compromised")
			}
			if r.Protected.Resets == 0 {
				t.Fatalf("protected device never reset; outcome %+v", r.Protected)
			}
			if !strings.Contains(r.Protected.Reason, sc.WantReason) {
				t.Errorf("protected reset reason %q does not contain declared WantReason %q",
					r.Protected.Reason, sc.WantReason)
			}
		})
	}
	for _, prop := range []string{"P1", "P2", "P3", "W^X", "SecureData"} {
		if len(covered[prop]) == 0 {
			t.Errorf("no scenario covers property %s", prop)
		}
	}
	for prop, names := range covered {
		t.Logf("%s: %v", prop, names)
	}
}
