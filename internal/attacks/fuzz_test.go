package attacks

import (
	"sync"
	"testing"

	"eilid/internal/core"
)

// fuzzTarget lazily builds the protected overflow-victim target once
// per process: the build (assemble, instrument, predecode) is the
// expensive part; each fuzz execution then pays only a machine
// construction.
var fuzzTarget = struct {
	once sync.Once
	t    Target
	err  error
}{}

func protectedOverflowTarget() (Target, error) {
	fuzzTarget.once.Do(func() {
		p, err := core.NewPipeline(core.DefaultConfig())
		if err != nil {
			fuzzTarget.err = err
			return
		}
		build, err := p.Build("fuzz-overflow.s", OverflowVictimSource(4))
		if err != nil {
			fuzzTarget.err = err
			return
		}
		_, prot := TargetsFor(p, build)
		m, err := prot.NewMachine()
		if err != nil {
			fuzzTarget.err = err
			return
		}
		prot.Predecoded = m.EnablePredecode()
		fuzzTarget.t = prot
	})
	return fuzzTarget.t, fuzzTarget.err
}

// FuzzUARTPayload is EILID's guarantee stated as a fuzz property: no
// UART input whatsoever — not just the handcrafted exemplars — may
// execute attacker code on the protected device running the classic
// unchecked-length overflow victim. Any reset the input does provoke is
// fine (that is the defence working); the one losing outcome is the
// compromise exit code. The committed seed corpus
// (testdata/fuzz/FuzzUARTPayload) starts the search at the canonical
// stack-smash/ROP shapes, a deep overflow and a truncated input.
func FuzzUARTPayload(f *testing.F) {
	seeds := [][]byte{
		nil,
		{2, 'h', 'i'},
		{6, 'A', 'B', 'C', 'D', 0x40, 0xE0},
		{8, 'A', 'B', 'C', 'D', 0x3A, 0xE0, 0x40, 0xE0},
		append([]byte{250}, make([]byte, 250)...),
		{200, 1, 2, 3},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		target, err := protectedOverflowTarget()
		if err != nil {
			t.Fatal(err)
		}
		sc := Scenario{
			Name:    "fuzz-uart",
			Payload: func(map[string]uint16) []byte { return data },
			// Small budget: an input that wedges the victim polling an
			// empty UART is a boring outcome, not a finding.
			Budget: 150_000,
		}
		o, err := Execute(target, sc)
		if err != nil {
			t.Fatalf("harness failure: %v", err)
		}
		if o.Compromised {
			t.Fatalf("protected device compromised by % x (resets=%d reason=%q)", data, o.Resets, o.Reason)
		}
	})
}
