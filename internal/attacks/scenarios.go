package attacks

import (
	"fmt"

	"eilid/internal/core"
	"eilid/internal/isa"
)

// overflowVictimTmpl is the P1 victim parameterized by stack-buffer
// size; see OverflowVictimSource.
const overflowVictimTmpl = `
.equ USTAT,  0x0074
.equ URX,    0x0072
.equ SIMCTL, 0x00FC

.org 0xE000
reset:
    mov #0x09F0, sp     ; leave headroom above the stack for the caller frame
main:
    call #recv_msg
    mov #0, &SIMCTL     ; normal completion
stop:
    jmp stop

; reads a length byte, then that many bytes into a %d byte stack
; buffer: the attacker-controlled length walks over the saved return
; address.
recv_msg:
    sub #%d, sp
    mov sp, r14
    call #read_char
    mov r12, r11
rm_copy:
    tst r11
    jz rm_done
    call #read_char
    mov.b r12, 0(r14)
    inc r14
    dec r11
    jmp rm_copy
rm_done:
    add #%d, sp
    ret

read_char:
rc_wait:
    bit #1, &USTAT
    jz rc_wait
    mov &URX, r12
    ret

; a useful gadget for chaining (sets a flag, returns into the next word)
gadget1:
    mov #0x1111, r14
    ret

; the attacker's destination: signal compromise and stop
evil:
    mov #0x0BAD, r15
    mov #0x66, &SIMCTL
evspin:
    jmp evspin

.org 0xFFFE
.word reset
`

// OverflowVictimSource returns the P1 overflow victim with a stack
// buffer of bufBytes bytes (even, so the frame stays word-aligned). The
// handcrafted scenarios use the 4-byte variant; the generated
// buffer-offset sweeps (internal/scenario) build the others. The
// victim's symbols of interest are "evil" (the attacker's destination)
// and "gadget1" (a ret gadget for chains).
func OverflowVictimSource(bufBytes int) string {
	return fmt.Sprintf(overflowVictimTmpl, bufBytes, bufBytes, bufBytes)
}

// victim firmware shared by the handcrafted P1 scenarios.
var overflowVictim = OverflowVictimSource(4)

// OverflowPayload builds the canonical overflow input against the
// overflow victim: a length byte covering fill plus the 2-byte
// little-endian return-address overwrite.
func OverflowPayload(fill []byte, ret uint16) []byte {
	return ChainPayload(fill, ret)
}

// ChainPayload generalizes OverflowPayload to a return-oriented chain:
// after fill, each word in rets is consumed by one ret in turn (the
// first replaces the victim's saved return address, the rest feed the
// gadgets' own rets).
func ChainPayload(fill []byte, rets ...uint16) []byte {
	out := make([]byte, 0, 1+len(fill)+2*len(rets))
	out = append(out, byte(len(fill)+2*len(rets)))
	out = append(out, fill...)
	for _, r := range rets {
		out = append(out, byte(r), byte(r>>8))
	}
	return out
}

// stackSmash is the canonical P1 attack: overwrite the saved return
// address through the overflow and divert the return to `evil`.
func stackSmash() Scenario {
	return Scenario{
		Name:     "stack-smash",
		Property: "P1",
		Description: "A length-unchecked receive loop overflows a 4-byte stack buffer; " +
			"bytes 4..5 of the payload replace the saved return address with the " +
			"address of attacker-chosen code.",
		Source: overflowVictim,
		Payload: func(syms map[string]uint16) []byte {
			return OverflowPayload([]byte("ABCD"), syms["evil"])
		},
		WantReason: "cfi-check-failed",
	}
}

// ropChain extends stackSmash with a two-gadget chain: the corrupted
// return address enters gadget1, whose own ret consumes the next word of
// the payload and lands in evil.
func ropChain() Scenario {
	return Scenario{
		Name:     "rop-chain",
		Property: "P1",
		Description: "The overflow plants a return-oriented chain: saved RA -> gadget1, " +
			"whose terminating ret pops the next attacker word -> evil.",
		Source: overflowVictim,
		Payload: func(syms map[string]uint16) []byte {
			return ChainPayload([]byte("ABCD"), syms["gadget1"], syms["evil"])
		},
		WantReason: "cfi-check-failed",
	}
}

// isrVictimTmpl runs a periodic timer interrupt; the adversary corrupts
// the interrupt context saved on the main stack while the ISR body runs
// (the paper's P2 threat: "a memory vulnerability in an ISR allows
// modifications of the main stack where the context is kept"). The
// timer period is the template parameter; see ISRVictimSource.
const isrVictimTmpl = `
.equ SIMCTL, 0x00FC
.equ TACTL,  0x0160
.equ TACCR0, 0x0172

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    clr r10
    mov #%d, &TACCR0
    mov #5, &TACTL
    eint
wait:
    cmp #6, r10
    jlo wait
    dint
    mov #0, &SIMCTL
stop:
    jmp stop

TICK_ISR:
isr_body:
    inc r10
    reti

evil:
    mov #0x0BAD, r15
    mov #0x66, &SIMCTL
evspin:
    jmp evspin

.org 0xFFF0
.word TICK_ISR
.org 0xFFFE
.word reset
`

// ISRVictimSource returns the P2 victim with the given timer period in
// TACCR0 counts. The handcrafted scenario uses 500; the generated
// timer-period sweeps build the others.
func ISRVictimSource(period uint16) string {
	return fmt.Sprintf(isrVictimTmpl, period)
}

var isrVictim = ISRVictimSource(500)

// ISRSavedRASlot locates the interrupted return address the hardware
// pushed on the main stack, as seen from the first instruction of an
// ISR body: the saved context sits above the EILID prologue's three
// register saves on the instrumented build, and directly at the stack
// top on the original build (whatever defense watches it). P2 tamper
// pokes (handcrafted and generated) write through this slot.
func ISRSavedRASlot(m *core.Machine) uint16 {
	if m.Instrumented() {
		return m.CPU.SP() + 8
	}
	return m.CPU.SP() + 2
}

// isrTamper is the P2 attack.
func isrTamper() Scenario {
	return Scenario{
		Name:     "isr-context-tamper",
		Property: "P2",
		Description: "While the timer ISR runs, the adversary overwrites the interrupted " +
			"return address that the hardware pushed on the main stack, so reti " +
			"resumes at attacker code instead of the interrupted instruction.",
		Source: isrVictim,
		PokeAt: "isr_body",
		Poke: func(m *core.Machine, syms map[string]uint16) {
			m.Space.StoreWord(ISRSavedRASlot(m), syms["evil"])
		},
		WantReason: "cfi-check-failed",
	}
}

// HandlerAddr is the RAM slot the fnptr and jump victims keep their
// dispatch pointer in — the address the poke-value sweeps overwrite.
const HandlerAddr = 0x0400

// FnptrVictim dispatches work through a function pointer kept in RAM
// (the P3 victim; its legitimate handler is "blink", the attacker's
// destination "evil").
const FnptrVictim = `
.equ SIMCTL,  0x00FC
.equ P1OUT,   0x0021
.equ HANDLER, 0x0400

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #blink, &HANDLER
    mov #4, r10
work_iter:
    mov &HANDLER, r13
    call r13
    dec r10
    jnz work_iter
    mov #0, &SIMCTL
stop:
    jmp stop

blink:
    xor.b #1, &P1OUT
    ret

evil:
    mov #0x0BAD, r15
    mov #0x66, &SIMCTL
evspin:
    jmp evspin

.org 0xFFFE
.word reset
`

// fnptrHijack is the P3 attack.
func fnptrHijack() Scenario {
	return Scenario{
		Name:     "fnptr-hijack",
		Property: "P3",
		Description: "A heap/static function pointer is overwritten with the address of " +
			"attacker-chosen code; the next indirect call dispatches there.",
		Source: FnptrVictim,
		PokeAt: "work_iter",
		Poke: func(m *core.Machine, syms map[string]uint16) {
			m.Space.StoreWord(HandlerAddr, syms["evil"])
		},
		WantReason: "cfi-check-failed",
	}
}

// JumpVictim dispatches through a RAM pointer with an indirect *jump* —
// the construct EILID deliberately leaves to the CASU W⊕X layer.
const JumpVictim = `
.equ SIMCTL,  0x00FC
.equ HANDLER, 0x0400

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #normal, &HANDLER
dispatch:
    mov &HANDLER, r13
    br r13
normal:
    mov #0, &SIMCTL
stop:
    jmp stop

.org 0xFFFE
.word reset
`

// Shellcode assembles the attacker's injected payload: signal compromise
// and spin.
func Shellcode() []byte {
	words := isa.MustEncode(isa.Instruction{
		Op: isa.MOV, Src: isa.Imm(CompromiseCode), Dst: isa.Abs(core.SimCtlAddr),
	})
	words = append(words, isa.MustEncode(isa.Instruction{Op: isa.JMP, JumpOffset: -1})...)
	out := make([]byte, 0, 2*len(words))
	for _, w := range words {
		out = append(out, byte(w), byte(w>>8))
	}
	return out
}

// codeInjection is the classic code-injection attack that CASU's W⊕X
// rule exists for.
func codeInjection() Scenario {
	return Scenario{
		Name:     "code-injection",
		Property: "W^X",
		Description: "The adversary writes shellcode into data memory and redirects an " +
			"indirect jump to it; execution from RAM must be impossible on a " +
			"CASU/EILID device.",
		Source: JumpVictim,
		PokeAt: "dispatch",
		Poke: func(m *core.Machine, syms map[string]uint16) {
			sc := Shellcode()
			for i, b := range sc {
				m.Space.StoreByte(0x0500+uint16(i), b)
			}
			m.Space.StoreWord(HandlerAddr, 0x0500)
		},
		WantReason: "exec-from-nonexec",
	}
}

// ShadowVictim models an attacker who has found an arbitrary-write
// primitive and aims it at the shadow stack itself.
const ShadowVictim = `
.equ SIMCTL, 0x00FC

.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #0xDEAD, &0x0A00  ; arbitrary write aimed at the shadow stack
    mov #0x66, &SIMCTL    ; attacker proceeds unhindered
stop:
    jmp stop

.org 0xFFFE
.word reset
`

// shadowTamper checks the EILID-hardware exclusivity of the secure data
// region.
func shadowTamper() Scenario {
	return Scenario{
		Name:     "shadow-stack-tamper",
		Property: "SecureData",
		Description: "An arbitrary-write primitive targets the shadow stack to forge a " +
			"stored return address; the secure-DMEM exclusivity rule must reset " +
			"the device on the first touch.",
		Source:     ShadowVictim,
		Resident:   true,
		WantReason: "secure-data-access",
	}
}

// Scenarios returns the full attack suite.
func Scenarios() []Scenario {
	return []Scenario{
		stackSmash(),
		ropChain(),
		isrTamper(),
		fnptrHijack(),
		codeInjection(),
		shadowTamper(),
	}
}
