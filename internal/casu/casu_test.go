package casu

import (
	"errors"
	"testing"
	"testing/quick"

	"eilid/internal/mem"
)

func testConfig() Config {
	l := mem.DefaultLayout()
	return Config{
		Layout:              l,
		EntryPoint:          l.SecureROMStart,
		ExitPoint:           l.SecureROMStart + 0x40,
		ViolationAddr:       0x00F0,
		EnforceSecureRegion: true,
	}
}

func TestImmutabilityRules(t *testing.T) {
	m := NewMonitor(testConfig())
	m.OnWrite(0xE000, 0xE100, false, 1) // PMEM write
	v := m.Violation()
	if v == nil || v.Kind != ViolationPMEMWrite {
		t.Fatalf("violation = %+v, want pmem-write", v)
	}
	if v.PC != 0xE000 || v.Addr != 0xE100 {
		t.Errorf("violation context %+v", v)
	}

	m = NewMonitor(testConfig())
	m.OnWrite(0xE000, 0xF900, false, 1) // secure ROM write
	if v := m.Violation(); v == nil || v.Kind != ViolationSecureROMWrite {
		t.Fatalf("violation = %+v, want secure-rom-write", v)
	}

	m = NewMonitor(testConfig())
	m.OnWrite(0xE000, 0xFFFE, false, 1) // IVT write
	if v := m.Violation(); v == nil || v.Kind != ViolationIVTWrite {
		t.Fatalf("violation = %+v, want ivt-write", v)
	}

	// DMEM writes are fine.
	m = NewMonitor(testConfig())
	m.OnWrite(0xE000, 0x0300, false, 1)
	if m.Violation() != nil {
		t.Error("DMEM write flagged")
	}
}

func TestWXOnFetch(t *testing.T) {
	m := NewMonitor(testConfig())
	m.OnFetch(0xE000, 0x0300) // executing from DMEM
	if v := m.Violation(); v == nil || v.Kind != ViolationExecNonExec {
		t.Fatalf("violation = %+v, want exec-from-nonexec", v)
	}
	m = NewMonitor(testConfig())
	m.OnFetch(0xE000, 0xE002) // normal PMEM execution
	if m.Violation() != nil {
		t.Error("PMEM fetch flagged")
	}
}

func TestSecureRegionEntryExit(t *testing.T) {
	cfg := testConfig()

	// Legal entry at the entry point, sequential execution, exit from
	// the exit point.
	m := NewMonitor(cfg)
	m.OnFetch(0xE010, cfg.EntryPoint)
	m.OnFetch(cfg.EntryPoint, cfg.EntryPoint+4)
	m.OnFetch(cfg.EntryPoint+4, cfg.ExitPoint)
	m.OnFetch(cfg.ExitPoint, 0xE014)
	if v := m.Violation(); v != nil {
		t.Fatalf("legal secure round trip flagged: %v", v)
	}
	if !m.InSecure() {
		// after returning to 0xE014 we are not in secure
	}

	// Entry bypassing the entry point.
	m = NewMonitor(cfg)
	m.OnFetch(0xE010, cfg.EntryPoint+10)
	if v := m.Violation(); v == nil || v.Kind != ViolationSecureEntry {
		t.Fatalf("violation = %+v, want secure-entry-bypass", v)
	}

	// Exit from the middle of the body.
	m = NewMonitor(cfg)
	m.OnFetch(0xE010, cfg.EntryPoint)
	m.OnFetch(cfg.EntryPoint, cfg.EntryPoint+8)
	m.OnFetch(cfg.EntryPoint+8, 0xE014)
	if v := m.Violation(); v == nil || v.Kind != ViolationSecureExit {
		t.Fatalf("violation = %+v, want secure-exit-bypass", v)
	}
}

func TestSecureDataExclusivity(t *testing.T) {
	cfg := testConfig()
	ss := cfg.Layout.SecureDataStart

	// Non-secure read and write both trip.
	m := NewMonitor(cfg)
	m.OnRead(0xE000, ss, false)
	if v := m.Violation(); v == nil || v.Kind != ViolationSecureData {
		t.Fatalf("read violation = %+v", v)
	}
	m = NewMonitor(cfg)
	m.OnWrite(0xE000, ss+2, false, 0xAAAA)
	if v := m.Violation(); v == nil || v.Kind != ViolationSecureData {
		t.Fatalf("write violation = %+v", v)
	}

	// Same accesses from inside EILIDsw are legal.
	m = NewMonitor(cfg)
	m.OnRead(cfg.EntryPoint+6, ss, false)
	m.OnWrite(cfg.EntryPoint+8, ss, false, 1)
	if m.Violation() != nil {
		t.Error("secure-code shadow stack access flagged")
	}
}

func TestViolationLatchSemantics(t *testing.T) {
	cfg := testConfig()

	// EILIDsw signalling: CFI failure.
	m := NewMonitor(cfg)
	m.OnWrite(cfg.EntryPoint+0x20, cfg.ViolationAddr, false, 1)
	if v := m.Violation(); v == nil || v.Kind != ViolationCFIFail {
		t.Fatalf("violation = %+v, want cfi-check-failed", v)
	}

	// Application code poking the latch: its own violation.
	m = NewMonitor(cfg)
	m.OnWrite(0xE000, cfg.ViolationAddr, false, 1)
	if v := m.Violation(); v == nil || v.Kind != ViolationLatchWrite {
		t.Fatalf("violation = %+v, want violation-latch-write", v)
	}
}

func TestIRQInSecure(t *testing.T) {
	cfg := testConfig()
	m := NewMonitor(cfg)
	m.OnInterrupt(cfg.EntryPoint+2, 8)
	if v := m.Violation(); v == nil || v.Kind != ViolationIRQInSecure {
		t.Fatalf("violation = %+v, want irq-in-secure", v)
	}
	m = NewMonitor(cfg)
	m.OnInterrupt(0xE000, 8)
	if m.Violation() != nil {
		t.Error("normal interrupt flagged")
	}
}

func TestFirstViolationWinsAndClear(t *testing.T) {
	cfg := testConfig()
	m := NewMonitor(cfg)
	m.OnWrite(0xE000, 0xE100, false, 1)
	m.OnWrite(0xE002, 0xFFFE, false, 1)
	if v := m.Violation(); v.Kind != ViolationPMEMWrite {
		t.Errorf("first violation not preserved: %v", v)
	}
	if m.Trips[ViolationPMEMWrite] != 1 || m.Trips[ViolationIVTWrite] != 1 {
		t.Errorf("trip counters %v", m.Trips)
	}
	m.Clear()
	if m.Violation() != nil {
		t.Error("Clear did not rearm")
	}
	if m.Trips[ViolationPMEMWrite] != 1 {
		t.Error("Clear should preserve statistics")
	}
}

func TestPlainCASUWithoutSecureRegion(t *testing.T) {
	cfg := testConfig()
	cfg.EnforceSecureRegion = false
	m := NewMonitor(cfg)
	// Immutability still enforced.
	m.OnWrite(0xE000, 0xE100, false, 1)
	if m.Violation() == nil {
		t.Error("immutability dropped without secure region")
	}
	// Shadow-stack exclusivity not enforced.
	m = NewMonitor(cfg)
	m.OnRead(0xE000, cfg.Layout.SecureDataStart, false)
	m.OnWrite(0xE000, cfg.Layout.SecureDataStart, false, 1)
	m.OnFetch(0xE000, cfg.EntryPoint+8)
	if m.Violation() != nil {
		t.Error("secure-region rules enforced despite being disabled")
	}
}

type stubIRQ struct{ line int }

func (s *stubIRQ) HighestPending() int { return s.line }
func (s *stubIRQ) Acknowledge(int)     { s.line = -1 }

func TestGateIRQMasksInSecure(t *testing.T) {
	l := mem.DefaultLayout()
	pc := uint16(0xE000)
	g := &GateIRQ{Inner: &stubIRQ{line: 8}, Layout: l, PCNow: func() uint16 { return pc }}
	if g.HighestPending() != 8 {
		t.Error("gate blocked interrupt outside secure region")
	}
	pc = l.SecureROMStart + 0x10
	if g.HighestPending() != -1 {
		t.Error("gate passed interrupt inside secure region")
	}
	pc = 0xE000
	g.Acknowledge(8)
	if g.HighestPending() != -1 {
		t.Error("acknowledge did not propagate")
	}
}

func TestMonitorNoFalsePositivesProperty(t *testing.T) {
	// Ordinary program behaviour (PMEM fetches, DMEM data traffic) never
	// trips the monitor.
	cfg := testConfig()
	f := func(pcOff, addrOff uint16, write bool, v uint16) bool {
		m := NewMonitor(cfg)
		pc := 0xE000 + pcOff%0x1800&^1
		addr := 0x0200 + addrOff%0x0800
		m.OnFetch(pc, pc)
		if write {
			m.OnWrite(pc, addr, false, v)
		} else {
			m.OnRead(pc, addr, false)
		}
		return m.Violation() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMonitorCatchesAllProtectedWritesProperty(t *testing.T) {
	// Any write outside DMEM/peripheral space from non-secure code trips.
	cfg := testConfig()
	f := func(addr uint16, v uint16) bool {
		m := NewMonitor(cfg)
		region := cfg.Layout.RegionOf(addr)
		m.OnWrite(0xE000, addr, false, v)
		switch region {
		case mem.RegionPMEM, mem.RegionSecureROM, mem.RegionIVT, mem.RegionSecureData:
			return m.Violation() != nil
		case mem.RegionPeriph:
			return (m.Violation() != nil) == (addr == cfg.ViolationAddr)
		default:
			return m.Violation() == nil
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestSecureUpdateLifecycle(t *testing.T) {
	key := []byte("device-shared-key-0123456789abcd")
	l := mem.DefaultLayout()
	space := mem.MustNewSpace(l)
	auth := NewAuthority(key)
	upd := NewUpdater(key, l)

	img := []byte{0x31, 0x40, 0x00, 0x0A} // mov #0x0A00, sp
	pkg := auth.Sign(0xE000, 1, img)
	if err := upd.Apply(space, pkg); err != nil {
		t.Fatalf("genuine update rejected: %v", err)
	}
	if got := space.LoadWord(0xE000); got != 0x4031 {
		t.Errorf("flash contents 0x%04x", got)
	}
	if upd.Version() != 1 || upd.Applied != 1 {
		t.Errorf("updater state %+v", upd)
	}

	// Tampered data fails.
	bad := auth.Sign(0xE000, 2, img)
	bad.Data[0] ^= 0xFF
	if err := upd.Apply(space, bad); !errors.Is(err, ErrBadMAC) {
		t.Errorf("tampered update error = %v, want ErrBadMAC", err)
	}

	// Wrong key fails.
	rogue := NewAuthority([]byte("not-the-device-key-...........!"))
	if err := upd.Apply(space, rogue.Sign(0xE000, 2, img)); !errors.Is(err, ErrBadMAC) {
		t.Errorf("rogue update error = %v, want ErrBadMAC", err)
	}

	// Rollback fails.
	if err := upd.Apply(space, auth.Sign(0xE000, 1, img)); !errors.Is(err, ErrRollback) {
		t.Errorf("rollback error = %v, want ErrRollback", err)
	}

	// Out-of-PMEM target fails even when authentic.
	if err := upd.Apply(space, auth.Sign(0xFFFE, 3, img)); err == nil {
		t.Error("IVT-targeting update accepted")
	}
	if err := upd.Apply(space, auth.Sign(0x0200, 3, img)); err == nil {
		t.Error("DMEM-targeting update accepted")
	}
	// Empty update rejected.
	if err := upd.Apply(space, auth.Sign(0xE000, 3, nil)); err == nil {
		t.Error("empty update accepted")
	}
	if upd.Rejected != 6 {
		t.Errorf("Rejected = %d, want 6", upd.Rejected)
	}

	// Valid follow-up still works.
	if err := upd.Apply(space, auth.Sign(0xE004, 2, []byte{1, 2})); err != nil {
		t.Errorf("version-2 update rejected: %v", err)
	}
}

func TestUpdateMACBindsAllFields(t *testing.T) {
	key := []byte("k")
	f := func(base uint16, version uint32, data []byte, flip uint8) bool {
		if len(data) == 0 {
			return true
		}
		mac := computeMAC(key, base, version, data)
		// Flipping any input bit changes the MAC.
		d2 := append([]byte(nil), data...)
		d2[int(flip)%len(d2)] ^= 1 << (flip % 8)
		if computeMAC(key, base, version, d2) == mac {
			return false
		}
		if computeMAC(key, base^1, version, data) == mac {
			return false
		}
		if computeMAC(key, base, version+1, data) == mac {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
