package casu

// CritVar is an OAT-style critical-variable monitor (Sun et al.,
// arXiv:1802.03462): EILID and shadow stacks attest *control flow*, but
// an adversary with a data write primitive can corrupt the decision
// variables a mission depends on without bending a single edge. OAT's
// answer is operation/data integrity: critical variables are registered
// with the attestor, and every value consumed at a use site must trace
// back to an attested store. This monitor is the hardware rendition of
// that idea: comparator watchpoints on the registered words.
//
// Mechanics: each watched word keeps an attested copy. CPU stores are
// on-bus — the hardware observes them — so they update the copy; at
// every instruction boundary the comparators check the live memory
// value against it. A divergence means the variable was changed behind
// the monitored bus (DMA, a glitched write, the harness's
// arbitrary-write primitive standing in for the paper's memory
// vulnerability) and trips ViolationCritVar. The monitor watches no
// control flow at all: return-address smashes and code injection sail
// past it — the gap the defense × attack matrix is built to chart.
type CritVar struct {
	cfg CritVarConfig

	violation *Violation

	// attested mirrors cfg.Watch; known marks whether the copies have
	// been (re)snapshotted since the last Clear.
	attested []uint16
	known    bool

	// Trips counts violations since power-on.
	Trips map[ViolationKind]int
}

// CritVarConfig parameterizes the monitor.
type CritVarConfig struct {
	// Watch lists the registered decision variables (word-aligned DMEM
	// addresses).
	Watch []uint16
	// Peek reads a word of memory without bus side effects (the
	// comparators' private tap).
	Peek func(addr uint16) uint16
}

// NewCritVar creates an armed critical-variable monitor.
func NewCritVar(cfg CritVarConfig) *CritVar {
	return &CritVar{
		cfg:      cfg,
		attested: make([]uint16, len(cfg.Watch)),
		Trips:    map[ViolationKind]int{},
	}
}

// Violation implements Defense.
func (c *CritVar) Violation() *Violation { return c.violation }

// Clear implements Defense: re-arm after a device reset. The attested
// copies are resnapshotted at the next instruction boundary — the reset
// swept volatile memory, so the pre-reset values are gone by design.
func (c *CritVar) Clear() {
	c.violation = nil
	c.known = false
}

// PowerOn implements Defense (allocation-free: the recycle path runs
// per job).
func (c *CritVar) PowerOn() {
	c.Clear()
	clear(c.Trips)
}

// TripCounts implements Defense.
func (c *CritVar) TripCounts() map[ViolationKind]int { return c.Trips }

func (c *CritVar) trip(kind ViolationKind, pc, addr uint16) {
	c.Trips[kind]++
	if c.violation == nil {
		c.violation = &Violation{Kind: kind, PC: pc, Addr: addr}
	}
}

// OnFetch implements Defense: the comparator sweep. The first boundary
// after a reset snapshots; every later one verifies.
func (c *CritVar) OnFetch(prev, pc uint16) {
	if !c.known {
		for i, w := range c.cfg.Watch {
			c.attested[i] = c.cfg.Peek(w)
		}
		c.known = true
		return
	}
	for i, w := range c.cfg.Watch {
		if c.cfg.Peek(w) != c.attested[i] {
			c.trip(ViolationCritVar, pc, w)
			// Re-attest so a single tamper is reported once per reset
			// cycle rather than on every subsequent boundary.
			c.attested[i] = c.cfg.Peek(w)
		}
	}
}

// OnRead implements Defense (reads carry no new information here).
func (c *CritVar) OnRead(pc, addr uint16, byteWide bool) {}

// OnWrite implements Defense: an on-bus CPU store to a watched word is
// an attested update — the hardware saw it issued — so the copy tracks
// it. (Provenance checking of the issuing PC is where full OAT goes
// next; the matrix only needs the bus/off-bus distinction.)
func (c *CritVar) OnWrite(pc, addr uint16, byteWide bool, value uint16) {
	if !c.known {
		return
	}
	w := addr &^ 1
	for i, watch := range c.cfg.Watch {
		if watch != w {
			continue
		}
		if !byteWide {
			c.attested[i] = value
		} else if addr&1 == 0 {
			c.attested[i] = c.attested[i]&0xFF00 | value&0x00FF
		} else {
			c.attested[i] = c.attested[i]&0x00FF | value<<8
		}
	}
}

// OnInterrupt implements Defense (context pushes are ordinary on-bus
// writes, already handled by OnWrite).
func (c *CritVar) OnInterrupt(pc uint16, line int) {}
