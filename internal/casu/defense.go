package casu

// Defense is the pluggable hardware-monitor contract every defense
// variant implements. A Defense is constructed per machine, wired to the
// CPU's architectural taps (it satisfies cpu.Watcher structurally), and
// drives the machine's reset-on-violation rule through Violation. The
// CASU/EILID Monitor is the reference implementation; ShadowStack (CFI
// CaRE-style interrupt-aware call/return matching) and CritVar
// (OAT-style critical-variable attestation) are peers, so the fleet can
// run the same attack matrix against any column of defenses.
//
// Contract notes for implementers:
//
//   - All observation methods are called synchronously from the CPU's
//     per-instruction (and per-fused-op) dispatch, so a violation raised
//     in OnFetch/OnRead/OnWrite/OnInterrupt is visible to the machine's
//     stop callback cycle-exactly — block execution and per-instruction
//     execution must observe identical violation points.
//   - Violation returns the first breach since the last Clear; further
//     breaches only increment the trip counters.
//   - Clear re-arms after a device reset (violation state and any
//     per-boot history are dropped; trip counters survive).
//   - PowerOn models a power cycle (fleet machine recycling): the
//     monitor returns to its freshly constructed state. Implementations
//     must not allocate on this path — it runs per job at ~3 µs.
type Defense interface {
	// OnFetch fires before the instruction at pc executes; prev is the
	// previously executed instruction.
	OnFetch(prev, pc uint16)
	// OnRead fires for each data-bus read issued by the instruction at pc.
	OnRead(pc, addr uint16, byteWide bool)
	// OnWrite fires for each data-bus write issued by the instruction at pc.
	OnWrite(pc, addr uint16, byteWide bool, value uint16)
	// OnInterrupt fires when an interrupt is accepted, before the context
	// push; pc is the interrupted instruction address.
	OnInterrupt(pc uint16, line int)

	// Violation returns the first breach observed since the last Clear,
	// or nil.
	Violation() *Violation
	// Clear re-arms the monitor after a device reset.
	Clear()
	// PowerOn returns the monitor to its freshly constructed state.
	PowerOn()
	// TripCounts exposes the per-kind violation counters since power-on.
	TripCounts() map[ViolationKind]int
}
