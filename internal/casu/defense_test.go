package casu

import (
	"testing"

	"eilid/internal/isa"
)

// wordMem is a tiny word-addressed memory for driving the monitors'
// Peek taps without a full machine.
type wordMem map[uint16]uint16

func (m wordMem) peek(addr uint16) uint16 { return m[addr&^1] }

// plant encodes in at addr and returns the address just past it.
func (m wordMem) plant(t *testing.T, addr uint16, in isa.Instruction) uint16 {
	t.Helper()
	words, err := isa.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		m[addr+uint16(2*i)] = w
	}
	return addr + uint16(2*len(words))
}

func call(target uint16) isa.Instruction {
	return isa.Instruction{Op: isa.CALL, Src: isa.ImmExt(target)}
}

// ret is the MSP430 emulated return, mov @sp+, pc.
func ret() isa.Instruction {
	return isa.Instruction{Op: isa.MOV, Src: isa.IndirectInc(isa.SP), Dst: isa.RegOp(isa.PC)}
}

func newShadow(m wordMem) *ShadowStack {
	return NewShadowStack(ShadowConfig{Peek: m.peek})
}

// TestShadowCallRetMatch: a call followed by a return to the recorded
// address pops cleanly; a return anywhere else trips ShadowRA.
func TestShadowCallRetMatch(t *testing.T) {
	m := wordMem{}
	ra := m.plant(t, 0xE000, call(0xE100)) // ra = 0xE004
	m.plant(t, 0xE100, ret())

	s := newShadow(m)
	s.OnFetch(0, 0xE000)      // fetch the call
	s.OnFetch(0xE000, 0xE100) // call completed: frame pushed; fetch the ret
	if s.Depth() != 1 {
		t.Fatalf("depth after call = %d, want 1", s.Depth())
	}
	s.OnFetch(0xE100, ra) // ret completed, target matches
	if v := s.Violation(); v != nil {
		t.Fatalf("matched return flagged: %+v", v)
	}
	if s.Depth() != 0 {
		t.Fatalf("depth after matched ret = %d, want 0", s.Depth())
	}

	// Same shape, corrupted return target.
	s = newShadow(m)
	s.OnFetch(0, 0xE000)
	s.OnFetch(0xE000, 0xE100)
	s.OnFetch(0xE100, 0xD000) // smashed RA
	v := s.Violation()
	if v == nil || v.Kind != ViolationShadowRA {
		t.Fatalf("violation = %+v, want shadow-ra-mismatch", v)
	}
	if v.PC != 0xE100 || v.Addr != 0xD000 {
		t.Errorf("violation context %+v", v)
	}
}

// TestShadowTailCall: a return may pop through nested call frames to
// the nearest matching one (benign tail-call idiom), but never across
// an interrupt frame.
func TestShadowTailCall(t *testing.T) {
	m := wordMem{}
	ra1 := m.plant(t, 0xE000, call(0xE100)) // outer call
	m.plant(t, 0xE100, call(0xE200))        // inner call
	m.plant(t, 0xE200, ret())

	s := newShadow(m)
	s.OnFetch(0, 0xE000)
	s.OnFetch(0xE000, 0xE100)
	s.OnFetch(0xE100, 0xE200)
	if s.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", s.Depth())
	}
	s.OnFetch(0xE200, ra1) // returns straight to the outer caller
	if v := s.Violation(); v != nil {
		t.Fatalf("tail-call return flagged: %+v", v)
	}
	if s.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", s.Depth())
	}

	// An interrupt frame between the ret and the matching call frame is
	// a hard floor: popping across it must trip.
	s = newShadow(m)
	s.OnFetch(0, 0xE000)     // fetch the outer call
	s.OnInterrupt(0xE100, 3) // IRQ accepted as it completes: call frame, then IRQ frame
	if s.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", s.Depth())
	}
	s.OnFetch(0, 0xE200)   // handler body reaches a plain ret
	s.OnFetch(0xE200, ra1) // tries to unwind across the IRQ frame
	if v := s.Violation(); v == nil || v.Kind != ViolationShadowRA {
		t.Fatalf("violation = %+v, want shadow-ra-mismatch", v)
	}
}

// TestShadowInterruptRoundTrip: an accepted interrupt records the
// interrupted pc; RETI must return exactly there, and the push must
// happen even when the interrupt lands right after a call (pending-op
// ordering).
func TestShadowInterruptRoundTrip(t *testing.T) {
	m := wordMem{}
	m.plant(t, 0xE000, call(0xE100))
	m.plant(t, 0xF000, isa.Instruction{Op: isa.RETI})

	s := newShadow(m)
	s.OnFetch(0, 0xE000)     // fetch the call
	s.OnInterrupt(0xE100, 2) // IRQ fires as the call completes
	if s.Depth() != 2 {
		t.Fatalf("depth = %d, want 2 (call frame + IRQ frame)", s.Depth())
	}
	s.OnFetch(0, 0xF000)      // handler fetches the reti
	s.OnFetch(0xF000, 0xE100) // reti completes back to the interrupted pc
	if v := s.Violation(); v != nil {
		t.Fatalf("legal reti flagged: %+v", v)
	}
	if s.Depth() != 1 {
		t.Fatalf("depth = %d, want 1 (call frame survives)", s.Depth())
	}

	// A reti whose target does not match the recorded context trips RFI.
	s = newShadow(m)
	s.OnInterrupt(0xE100, 2)
	s.OnFetch(0, 0xF000)
	s.OnFetch(0xF000, 0xD000) // tampered saved context
	if v := s.Violation(); v == nil || v.Kind != ViolationShadowRFI {
		t.Fatalf("violation = %+v, want shadow-rfi-mismatch", v)
	}

	// A reti with no interrupt frame at all trips too.
	s = newShadow(m)
	s.OnFetch(0, 0xF000)
	s.OnFetch(0xF000, 0xE000)
	if v := s.Violation(); v == nil || v.Kind != ViolationShadowRFI {
		t.Fatalf("violation = %+v, want shadow-rfi-mismatch", v)
	}
}

// TestShadowOverflowDiscardsOldest: the bounded hardware stack drops
// the eldest frame on overflow instead of tripping on deep recursion.
func TestShadowOverflowDiscardsOldest(t *testing.T) {
	m := wordMem{}
	m.plant(t, 0xE000, call(0xE000)) // self-call, ra = 0xE004

	s := NewShadowStack(ShadowConfig{Peek: m.peek, MaxDepth: 2})
	for i := 0; i < 5; i++ {
		s.OnFetch(0, 0xE000)
	}
	if s.Depth() != 2 {
		t.Fatalf("depth = %d, want MaxDepth 2", s.Depth())
	}
	if v := s.Violation(); v != nil {
		t.Fatalf("overflow flagged: %+v", v)
	}
}

// TestShadowInvalidation: a write over a cached fetch window drops the
// stale classification, and PowerOn drops the whole cache (the recycle
// path restores memory behind the monitor's back).
func TestShadowInvalidation(t *testing.T) {
	m := wordMem{}
	ra := m.plant(t, 0xE000, call(0xE100))
	m.plant(t, 0xE100, ret())

	s := newShadow(m)
	s.OnFetch(0, 0xE000)
	s.OnFetch(0xE000, 0xE100) // call cached and resolved; ret cached
	s.OnFetch(0xE100, ra)
	if s.Violation() != nil || s.Depth() != 0 {
		t.Fatal("warm-up round trip failed")
	}

	// Overwrite the call site with something else on-bus; the next pass
	// must not push a frame from the stale cache entry.
	m[0xE000] = 0
	m[0xE002] = 0
	s.OnWrite(0xE100, 0xE000, false, 0)
	s.OnWrite(0xE100, 0xE002, false, 0)
	s.OnFetch(0, 0xE000)
	s.OnFetch(0xE000, 0xE100)
	if s.Depth() != 0 {
		t.Fatalf("stale call classification survived OnWrite: depth = %d", s.Depth())
	}

	// Restore the call off-bus (as a recycle does) — only PowerOn may
	// resynchronize the cache.
	words := isa.MustEncode(call(0xE100))
	m[0xE000], m[0xE002] = words[0], words[1]
	s.PowerOn()
	s.OnFetch(0, 0xE000)
	s.OnFetch(0xE000, 0xE100)
	if s.Depth() != 1 {
		t.Fatalf("PowerOn did not drop the decode cache: depth = %d", s.Depth())
	}
}

// TestCritVarTamperAndTrack: off-bus divergence trips once per tamper;
// on-bus stores (word and both byte halves) track without tripping.
func TestCritVarTamperAndTrack(t *testing.T) {
	m := wordMem{0x0400: 0x1234, 0x0402: 0xAAAA}
	c := NewCritVar(CritVarConfig{Watch: []uint16{0x0400, 0x0402}, Peek: m.peek})

	c.OnFetch(0, 0xE000) // first boundary: snapshot
	c.OnFetch(0xE000, 0xE002)
	if c.Violation() != nil {
		t.Fatal("quiescent variable flagged")
	}

	// On-bus updates are attested.
	m[0x0400] = 0x5678
	c.OnWrite(0xE002, 0x0400, false, 0x5678)
	c.OnFetch(0xE002, 0xE004)
	if c.Violation() != nil {
		t.Fatal("on-bus word store flagged")
	}
	m[0x0402] = 0xAA55
	c.OnWrite(0xE004, 0x0402, true, 0x55) // low byte
	m[0x0402] = 0xBB55
	c.OnWrite(0xE006, 0x0403, true, 0xBB) // high byte
	c.OnFetch(0xE006, 0xE008)
	if v := c.Violation(); v != nil {
		t.Fatalf("on-bus byte stores flagged: %+v", v)
	}

	// Off-bus tamper: the comparator sweep catches it at the next
	// boundary, attributes the watched address, and reports once.
	m[0x0400] = 0xDEAD
	c.OnFetch(0xE008, 0xE00A)
	v := c.Violation()
	if v == nil || v.Kind != ViolationCritVar {
		t.Fatalf("violation = %+v, want critical-variable-tamper", v)
	}
	if v.PC != 0xE00A || v.Addr != 0x0400 {
		t.Errorf("violation context %+v", v)
	}
	c.OnFetch(0xE00A, 0xE00C)
	c.OnFetch(0xE00C, 0xE00E)
	if got := c.Trips[ViolationCritVar]; got != 1 {
		t.Fatalf("tamper reported %d times, want once (re-attested)", got)
	}

	// Clear re-arms and resnapshots: the tampered value is the new
	// baseline, not a fresh violation.
	c.Clear()
	if c.Violation() != nil {
		t.Fatal("Clear left the violation latched")
	}
	c.OnFetch(0, 0xE000)
	c.OnFetch(0xE000, 0xE002)
	if c.Violation() != nil {
		t.Fatal("post-reset snapshot flagged the old tamper")
	}
	if c.Trips[ViolationCritVar] != 1 {
		t.Fatal("Clear erased the trip history")
	}
}

// TestDefensePowerOnAllocFree: PowerOn runs on the machine-recycle hot
// path (~µs budget per job) for every monitor, so none of them may
// allocate.
func TestDefensePowerOnAllocFree(t *testing.T) {
	m := wordMem{0x0400: 1}
	defenses := map[string]Defense{
		"monitor": NewMonitor(testConfig()),
		"shadow":  newShadow(m),
		"critvar": NewCritVar(CritVarConfig{Watch: []uint16{0x0400}, Peek: m.peek}),
	}
	for name, d := range defenses {
		// Dirty some state first so the clears do real work.
		d.OnFetch(0, 0x0300)
		d.OnWrite(0xE000, 0xE100, false, 1)
		if allocs := testing.AllocsPerRun(100, d.PowerOn); allocs != 0 {
			t.Errorf("%s: PowerOn allocates %.1f objects/run", name, allocs)
		}
		if d.Violation() != nil {
			t.Errorf("%s: PowerOn left a violation latched", name)
		}
		if len(d.TripCounts()) != 0 {
			t.Errorf("%s: PowerOn kept trip counts %v", name, d.TripCounts())
		}
	}
}
