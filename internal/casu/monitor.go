// Package casu models the CASU active Root-of-Trust hardware that EILID
// builds on (De Oliveira Nunes et al., ICCAD 2022) plus the EILID
// extensions. CASU is a set of small hardware monitors wired to the CPU's
// program counter and data buses; whenever a monitored invariant is
// violated the hardware resets the device. The invariants:
//
//	(1) Software immutability: program memory, the secure ROM and the
//	    interrupt vector table are never written at run time; the only
//	    way to change PMEM is an authenticated secure update.
//	(2) W⊕X: instructions are fetched only from executable regions
//	    (PMEM + secure ROM); data memory never executes.
//	(3) Secure-region atomicity: the EILIDsw ROM is entered only at its
//	    architectural entry point and left only from its exit point, and
//	    interrupts never fire while it runs.
//	(4) Secure-data exclusivity (EILID extension): the shadow-stack
//	    region of DMEM is readable/writable only while the PC is inside
//	    the secure ROM.
//	(5) Violation signalling (EILID extension): a write to the violation
//	    latch from inside EILIDsw means a CFI check failed and triggers
//	    the reset; a write from anywhere else is itself a violation.
//
// The Monitor implements cpu.Watcher, observing exactly the architectural
// signals (fetch address, data address/value, interrupt acceptance) that
// the paper's Verilog taps on the openMSP430 buses.
package casu

import (
	"fmt"

	"eilid/internal/mem"
)

// ViolationKind classifies a detected violation.
type ViolationKind uint8

const (
	// ViolationNone is the zero value (no violation).
	ViolationNone ViolationKind = iota
	// ViolationPMEMWrite is a runtime write to program memory.
	ViolationPMEMWrite
	// ViolationSecureROMWrite is a write to the EILIDsw ROM.
	ViolationSecureROMWrite
	// ViolationIVTWrite is a write to the interrupt vector table.
	ViolationIVTWrite
	// ViolationExecNonExec is an instruction fetch from a non-executable
	// region (W⊕X: DMEM/peripheral/unmapped execution).
	ViolationExecNonExec
	// ViolationSecureEntry is a jump into the secure ROM that bypasses
	// the entry point.
	ViolationSecureEntry
	// ViolationSecureExit is a control transfer out of the secure ROM
	// from anywhere but the exit point.
	ViolationSecureExit
	// ViolationSecureData is an access to the shadow-stack region while
	// the PC is outside the secure ROM.
	ViolationSecureData
	// ViolationLatchWrite is a write to the violation latch from
	// non-secure code.
	ViolationLatchWrite
	// ViolationCFIFail is EILIDsw signalling a failed CFI check (the
	// "legitimate" reset cause: an attack was stopped).
	ViolationCFIFail
	// ViolationIRQInSecure is an interrupt accepted while executing
	// inside the secure ROM (atomicity breach; normally prevented by the
	// hardware IRQ gate, kept as defence in depth).
	ViolationIRQInSecure
	// ViolationShadowRA is a return whose target does not match any
	// genuine frame on the hardware shadow stack (ShadowStack defense).
	ViolationShadowRA
	// ViolationShadowRFI is a return-from-interrupt whose target does
	// not match the interrupted context the hardware recorded
	// (ShadowStack defense).
	ViolationShadowRFI
	// ViolationCritVar is a watched decision variable whose value
	// diverged from the last attested write (CritVar defense).
	ViolationCritVar

	// violationKindEnd is one past the last kind; keep it last.
	violationKindEnd
)

// ViolationKinds returns every reportable kind (excluding
// ViolationNone) in numeric order.
func ViolationKinds() []ViolationKind {
	out := make([]ViolationKind, 0, int(violationKindEnd)-1)
	for k := ViolationPMEMWrite; k < violationKindEnd; k++ {
		out = append(out, k)
	}
	return out
}

func (k ViolationKind) String() string {
	switch k {
	case ViolationNone:
		return "none"
	case ViolationPMEMWrite:
		return "pmem-write"
	case ViolationSecureROMWrite:
		return "secure-rom-write"
	case ViolationIVTWrite:
		return "ivt-write"
	case ViolationExecNonExec:
		return "exec-from-nonexec"
	case ViolationSecureEntry:
		return "secure-entry-bypass"
	case ViolationSecureExit:
		return "secure-exit-bypass"
	case ViolationSecureData:
		return "secure-data-access"
	case ViolationLatchWrite:
		return "violation-latch-write"
	case ViolationCFIFail:
		return "cfi-check-failed"
	case ViolationIRQInSecure:
		return "irq-in-secure"
	case ViolationShadowRA:
		return "shadow-ra-mismatch"
	case ViolationShadowRFI:
		return "shadow-rfi-mismatch"
	case ViolationCritVar:
		return "critical-variable-tamper"
	}
	return fmt.Sprintf("violation(%d)", uint8(k))
}

// Violation describes the first invariant breach observed since arming.
type Violation struct {
	Kind ViolationKind
	PC   uint16 // instruction that caused it
	Addr uint16 // offending data address (when applicable)
}

func (v Violation) Error() string {
	return fmt.Sprintf("casu: %s at pc=0x%04x addr=0x%04x", v.Kind, v.PC, v.Addr)
}

// Config parameterizes the monitor.
type Config struct {
	Layout mem.Layout
	// EntryPoint is the only address at which the secure ROM may be
	// entered (S_EILID entry section).
	EntryPoint uint16
	// ExitPoint is the only address from which control may leave the
	// secure ROM (the ret in the leave section).
	ExitPoint uint16
	// ViolationAddr is the secure MMIO latch EILIDsw writes on CFI
	// failure.
	ViolationAddr uint16
	// EnforceSecureRegion enables rules (3)-(5); CASU without the EILID
	// extension (plain immutability + W⊕X) runs with it false.
	EnforceSecureRegion bool
}

// Monitor is the hardware monitor. It implements cpu.Watcher.
type Monitor struct {
	cfg Config

	curPC     uint16
	violation *Violation

	// Trips counts violations since construction (across resets).
	Trips map[ViolationKind]int
}

// NewMonitor creates an armed monitor.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg, Trips: map[ViolationKind]int{}}
}

// Config returns the monitor configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Violation returns the first violation observed since the last Clear,
// or nil.
func (m *Monitor) Violation() *Violation { return m.violation }

// Clear re-arms the monitor after a device reset.
func (m *Monitor) Clear() { m.violation = nil; m.curPC = 0 }

// PowerOn returns the monitor to its freshly constructed state: armed,
// no secure-state history, trip counters zeroed. Clear survives device
// resets (Trips is "since construction"); PowerOn models the machine
// being power-cycled, which is what fleet recycling simulates. The map
// is cleared in place: the recycle path runs per job at ~3 µs and must
// not allocate.
func (m *Monitor) PowerOn() {
	m.Clear()
	clear(m.Trips)
}

// TripCounts implements Defense.
func (m *Monitor) TripCounts() map[ViolationKind]int { return m.Trips }

// InSecure reports whether the monitor last saw the PC inside the secure
// ROM (the hardware "secure state" flag).
func (m *Monitor) InSecure() bool { return m.cfg.Layout.InSecureROM(m.curPC) }

func (m *Monitor) trip(kind ViolationKind, pc, addr uint16) {
	m.Trips[kind]++
	if m.violation == nil {
		m.violation = &Violation{Kind: kind, PC: pc, Addr: addr}
	}
}

// OnFetch implements cpu.Watcher: W⊕X on the fetch side plus secure-region
// entry/exit discipline.
func (m *Monitor) OnFetch(prev, pc uint16) {
	m.curPC = pc
	l := m.cfg.Layout
	if !l.Executable(pc) {
		m.trip(ViolationExecNonExec, prev, pc)
		return
	}
	if !m.cfg.EnforceSecureRegion {
		return
	}
	fromSec, toSec := l.InSecureROM(prev), l.InSecureROM(pc)
	switch {
	case toSec && !fromSec && pc != m.cfg.EntryPoint:
		m.trip(ViolationSecureEntry, prev, pc)
	case fromSec && !toSec && prev != m.cfg.ExitPoint:
		m.trip(ViolationSecureExit, prev, pc)
	}
}

// OnRead implements cpu.Watcher: shadow-stack exclusivity on the read side.
func (m *Monitor) OnRead(pc, addr uint16, byteWide bool) {
	if !m.cfg.EnforceSecureRegion {
		return
	}
	l := m.cfg.Layout
	if l.RegionOf(addr) == mem.RegionSecureData && !l.InSecureROM(pc) {
		m.trip(ViolationSecureData, pc, addr)
	}
}

// OnWrite implements cpu.Watcher: immutability, shadow-stack exclusivity
// and violation-latch semantics.
func (m *Monitor) OnWrite(pc, addr uint16, byteWide bool, value uint16) {
	l := m.cfg.Layout
	switch l.RegionOf(addr) {
	case mem.RegionPMEM:
		m.trip(ViolationPMEMWrite, pc, addr)
		return
	case mem.RegionSecureROM:
		m.trip(ViolationSecureROMWrite, pc, addr)
		return
	case mem.RegionIVT:
		m.trip(ViolationIVTWrite, pc, addr)
		return
	}
	if !m.cfg.EnforceSecureRegion {
		return
	}
	if l.RegionOf(addr) == mem.RegionSecureData && !l.InSecureROM(pc) {
		m.trip(ViolationSecureData, pc, addr)
		return
	}
	if addr == m.cfg.ViolationAddr {
		if l.InSecureROM(pc) {
			m.trip(ViolationCFIFail, pc, addr)
		} else {
			m.trip(ViolationLatchWrite, pc, addr)
		}
	}
}

// OnInterrupt implements cpu.Watcher: no interrupts inside EILIDsw.
func (m *Monitor) OnInterrupt(pc uint16, line int) {
	if m.cfg.EnforceSecureRegion && m.cfg.Layout.InSecureROM(pc) {
		m.trip(ViolationIRQInSecure, pc, 0)
	}
}

// GateIRQ wraps an interrupt source so that requests are invisible while
// the CPU executes inside the secure ROM — the hardware interrupt gate
// that gives EILIDsw its atomicity. pcNow reads the live PC.
type GateIRQ struct {
	Inner interface {
		HighestPending() int
		Acknowledge(line int)
	}
	Layout mem.Layout
	PCNow  func() uint16
}

// HighestPending implements cpu.IRQSource.
func (g *GateIRQ) HighestPending() int {
	if g.Layout.InSecureROM(g.PCNow()) {
		return -1
	}
	return g.Inner.HighestPending()
}

// Acknowledge implements cpu.IRQSource.
func (g *GateIRQ) Acknowledge(line int) { g.Inner.Acknowledge(line) }
