package casu

import "eilid/internal/isa"

// ShadowStack is a CFI CaRE-style hardware shadow stack (Nyman et al.,
// arXiv:1706.05715): dedicated hardware snoops the fetch stream,
// mirrors every call and interrupt entry onto a protected internal
// stack, and resets the device when a return (or return-from-interrupt)
// transfers control anywhere but a genuinely recorded return site. It
// needs no firmware instrumentation and no secure ROM — it runs the
// original build — so it is the natural comparative baseline for
// EILID's backward-edge properties (P1/P2). It deliberately does not
// watch forward edges (indirect calls and jumps land wherever they
// point) or data: those are exactly the gaps the defense × attack
// matrix is meant to expose.
//
// Mechanics: the monitor classifies each fetched instruction (call,
// ret — the MSP430 `mov @sp+, pc` idiom — or reti) by decoding it from
// a side-effect-free memory tap, then resolves the classification at
// the *next* control event, when the instruction has architecturally
// completed: a call pushes its return address, a return is checked
// against the recorded frames, an accepted interrupt pushes the
// interrupted pc. Returns match by popping to the nearest agreeing call
// frame (never across an interrupt frame), which tolerates benign
// tail-call idioms while still catching every corrupted return: a
// forged address equals no live frame.
type ShadowStack struct {
	cfg ShadowConfig

	violation *Violation

	stack []frame
	// pending is the classification of the most recently fetched (now
	// executing) instruction, resolved at the next OnFetch/OnInterrupt.
	pending stackOp

	// decode caches instruction classifications by pc for the current
	// power cycle. Entries whose fetch window a write may have touched
	// are dropped eagerly; PowerOn drops the whole cache, because wild
	// control flow can classify job-dependent data bytes that the next
	// job's restored image no longer matches — and the harness's
	// arbitrary-write primitive is off-bus, so eager invalidation alone
	// cannot see every divergence.
	decode    map[uint16]stackOp
	minCached uint16

	// Trips counts violations since power-on.
	Trips map[ViolationKind]int
}

// ShadowConfig parameterizes the shadow-stack monitor.
type ShadowConfig struct {
	// Peek reads a word of memory without bus side effects (the
	// hardware's private fetch-stream tap).
	Peek func(addr uint16) uint16
	// MaxDepth bounds the hardware stack (default 256 frames). On
	// overflow the oldest frame is discarded: the monitor degrades to
	// not vouching for the eldest callers rather than false-positives
	// on deep recursion.
	MaxDepth int
}

type opClass uint8

const (
	opNone opClass = iota
	opOther
	opCall
	opRet
	opReti
)

// stackOp is a classified instruction: its class plus, for calls, the
// return address the call records (pc + size).
type stackOp struct {
	class opClass
	ra    uint16
	pc    uint16
}

type frameClass uint8

const (
	frameCall frameClass = iota
	frameIRQ
)

// frame is one shadow-stack entry.
type frame struct {
	class frameClass
	ra    uint16
}

// NewShadowStack creates an armed shadow-stack monitor.
func NewShadowStack(cfg ShadowConfig) *ShadowStack {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 256
	}
	return &ShadowStack{
		cfg:       cfg,
		stack:     make([]frame, 0, cfg.MaxDepth),
		decode:    make(map[uint16]stackOp),
		minCached: 0xFFFF,
		Trips:     map[ViolationKind]int{},
	}
}

// Violation implements Defense.
func (s *ShadowStack) Violation() *Violation { return s.violation }

// Clear implements Defense: re-arm after a device reset. The decode
// cache survives (code survives a reset; staleness is tracked by
// OnWrite), but the call history does not.
func (s *ShadowStack) Clear() {
	s.violation = nil
	s.stack = s.stack[:0]
	s.pending = stackOp{}
}

// PowerOn implements Defense. The decode cache is dropped (cleared in
// place — this path must not allocate): a recycle restores the sealed
// memory image, and cached classifications of bytes the finished job
// scribbled (or executed out of) would silently diverge from a freshly
// constructed machine's.
func (s *ShadowStack) PowerOn() {
	s.Clear()
	clear(s.Trips)
	clear(s.decode)
	s.minCached = 0xFFFF
}

// TripCounts implements Defense.
func (s *ShadowStack) TripCounts() map[ViolationKind]int { return s.Trips }

// Depth returns the current shadow-stack depth (tests/debugging).
func (s *ShadowStack) Depth() int { return len(s.stack) }

func (s *ShadowStack) trip(kind ViolationKind, pc, addr uint16) {
	s.Trips[kind]++
	if s.violation == nil {
		s.violation = &Violation{Kind: kind, PC: pc, Addr: addr}
	}
}

// classify decodes (with caching) the instruction at pc.
func (s *ShadowStack) classify(pc uint16) stackOp {
	if op, ok := s.decode[pc]; ok {
		return op
	}
	words := [3]uint16{s.cfg.Peek(pc), s.cfg.Peek(pc + 2), s.cfg.Peek(pc + 4)}
	op := stackOp{class: opOther, pc: pc}
	if in, _, err := isa.Decode(words[:]); err == nil {
		switch {
		case in.Op == isa.CALL:
			op = stackOp{class: opCall, ra: pc + in.Size(), pc: pc}
		case in.Op == isa.RETI:
			op = stackOp{class: opReti, pc: pc}
		case in.Op == isa.MOV && !in.Byte &&
			in.Src.Mode == isa.ModeIndirectInc && in.Src.Reg == isa.SP &&
			in.Dst.Mode == isa.ModeRegister && in.Dst.Reg == isa.PC:
			// ret — the MSP430 emulated `mov @sp+, pc`.
			op = stackOp{class: opRet, pc: pc}
		}
	}
	s.decode[pc] = op
	if pc < s.minCached {
		s.minCached = pc
	}
	return op
}

// push records a frame, discarding the eldest on overflow.
func (s *ShadowStack) push(f frame) {
	if len(s.stack) == cap(s.stack) {
		copy(s.stack, s.stack[1:])
		s.stack = s.stack[:len(s.stack)-1]
	}
	s.stack = append(s.stack, f)
}

// resolvePending applies the architectural effect of the instruction
// classified at the previous fetch, now that it has completed and
// control has arrived at target.
func (s *ShadowStack) resolvePending(target uint16) {
	p := s.pending
	s.pending = stackOp{}
	switch p.class {
	case opCall:
		s.push(frame{class: frameCall, ra: p.ra})
	case opRet:
		// Pop to the nearest matching call frame; an interrupt frame is
		// a hard floor (a plain ret must never unwind an interrupt).
		for i := len(s.stack) - 1; i >= 0; i-- {
			f := s.stack[i]
			if f.class != frameCall {
				break
			}
			if f.ra == target {
				s.stack = s.stack[:i]
				return
			}
		}
		s.trip(ViolationShadowRA, p.pc, target)
	case opReti:
		// A return-from-interrupt must match the top frame exactly: the
		// hardware pushed it last.
		if n := len(s.stack); n > 0 && s.stack[n-1].class == frameIRQ && s.stack[n-1].ra == target {
			s.stack = s.stack[:n-1]
			return
		}
		s.trip(ViolationShadowRFI, p.pc, target)
	}
}

// OnFetch implements Defense: resolve the previously fetched
// instruction against the arrival at pc, then classify the new one.
func (s *ShadowStack) OnFetch(prev, pc uint16) {
	s.resolvePending(pc)
	s.pending = s.classify(pc)
}

// OnRead implements Defense (the shadow stack does not watch reads).
func (s *ShadowStack) OnRead(pc, addr uint16, byteWide bool) {}

// OnWrite implements Defense: drop decode-cache entries whose fetch
// window the write may cover (an instruction starts at most four bytes
// before a word it consumes).
func (s *ShadowStack) OnWrite(pc, addr uint16, byteWide bool, value uint16) {
	if s.minCached == 0xFFFF || int(addr) < int(s.minCached)-4 {
		return
	}
	w := addr &^ 1
	delete(s.decode, w)
	delete(s.decode, w-2)
	delete(s.decode, w-4)
}

// OnInterrupt implements Defense: the instruction before the interrupt
// completed with control headed to pc; record the interrupted context.
func (s *ShadowStack) OnInterrupt(pc uint16, line int) {
	s.resolvePending(pc)
	s.push(frame{class: frameIRQ, ra: pc})
}
