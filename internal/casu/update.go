package casu

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"eilid/internal/mem"
)

// CASU's second pillar: the only sanctioned way to change program memory
// is an authenticated update. The authority (the vendor's backend) signs
// an image with a device-shared key; the device-side verifier checks the
// MAC and an anti-rollback version before programming flash. Updates are
// applied with the device halted (as on the real system, which reboots
// through its update routine), so the Monitor never needs a "writes
// allowed" run-time state.

// ErrBadMAC is returned when the package authenticator does not verify.
var ErrBadMAC = errors.New("casu: update authentication failed")

// ErrRollback is returned when the package version does not increase.
var ErrRollback = errors.New("casu: update version rollback rejected")

// UpdatePackage is a signed firmware image.
type UpdatePackage struct {
	Base    uint16 // load address (must be inside PMEM)
	Version uint32 // monotonically increasing
	Data    []byte
	MAC     [sha256.Size]byte
}

// computeMAC binds base, version and data.
func computeMAC(key []byte, base uint16, version uint32, data []byte) [sha256.Size]byte {
	h := hmac.New(sha256.New, key)
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:], base)
	binary.LittleEndian.PutUint32(hdr[2:], version)
	h.Write(hdr[:])
	h.Write(data)
	var mac [sha256.Size]byte
	copy(mac[:], h.Sum(nil))
	return mac
}

// Authority signs updates (the verifier/vendor side).
type Authority struct {
	key []byte
}

// NewAuthority creates an authority with the device-shared key.
func NewAuthority(key []byte) *Authority {
	return &Authority{key: append([]byte(nil), key...)}
}

// Sign produces an authenticated update package.
func (a *Authority) Sign(base uint16, version uint32, data []byte) UpdatePackage {
	return UpdatePackage{
		Base:    base,
		Version: version,
		Data:    append([]byte(nil), data...),
		MAC:     computeMAC(a.key, base, version, data),
	}
}

// Updater is the device-side verifier state (held in secure storage).
type Updater struct {
	key     []byte
	layout  mem.Layout
	version uint32

	// Applied counts successful updates; Rejected counts failures.
	Applied, Rejected int
}

// NewUpdater creates the device-side verifier.
func NewUpdater(key []byte, layout mem.Layout) *Updater {
	return &Updater{key: append([]byte(nil), key...), layout: layout}
}

// Version returns the currently installed firmware version.
func (u *Updater) Version() uint32 { return u.version }

// Apply verifies and programs the update into the target space. The whole
// image must fall inside user PMEM (the secure ROM and IVT are updated
// only at manufacture); the IVT reset vector may be included via a
// separate vector field to keep the paper's "authenticated updates only"
// property for the whole boot path.
func (u *Updater) Apply(space *mem.Space, pkg UpdatePackage) error {
	want := computeMAC(u.key, pkg.Base, pkg.Version, pkg.Data)
	if !hmac.Equal(want[:], pkg.MAC[:]) {
		u.Rejected++
		return ErrBadMAC
	}
	if pkg.Version <= u.version {
		u.Rejected++
		return fmt.Errorf("%w: have %d, offered %d", ErrRollback, u.version, pkg.Version)
	}
	end := uint32(pkg.Base) + uint32(len(pkg.Data)) - 1
	if len(pkg.Data) == 0 || pkg.Base < u.layout.PMEMStart || end > uint32(u.layout.PMEMEnd) {
		u.Rejected++
		return fmt.Errorf("casu: update range 0x%04x..0x%04x outside user PMEM", pkg.Base, end)
	}
	if err := space.LoadImage(pkg.Base, pkg.Data); err != nil {
		u.Rejected++
		return err
	}
	u.version = pkg.Version
	u.Applied++
	return nil
}
