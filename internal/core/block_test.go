package core_test

import (
	"fmt"
	"testing"

	"eilid/internal/apps"
	"eilid/internal/core"
	"eilid/internal/isa"
)

// TestBlockDifferential runs every Table IV application under every
// registered defense with basic-block execution on (the default) and
// with SetBlockExec(false) — per-instruction dispatch over the same
// predecoded entries, the PR 2 reference path — and requires
// cycle-exact equivalence in every observable: cycles, instruction
// counts, bus errors, watcher event streams, interrupt arrival cycles,
// reset reasons and the behavioural inspection.
func TestBlockDifferential(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			build, err := p.Build(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range core.Defenses() {
				blocks := runObserved(t, p, app, build, spec, nil)
				noBlocks := runObserved(t, p, app, build, spec, func(m *core.Machine) { m.SetBlockExec(false) })
				compareObserved(t, fmt.Sprintf("%s defense=%s", app.Name, spec.Name), blocks, noBlocks)
			}
		})
	}
}

// TestBlockSelfModifying pins the block layer's two self-modification
// hazards: a store that invalidates a block before it is re-entered,
// and — the harder case — a store from inside a block that patches a
// later instruction of the same block, which must end block execution
// so the patched instruction is re-decoded live, exactly as
// per-instruction dispatch would.
func TestBlockSelfModifying(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// site2 initially holds `inc r11`; the straight-line run
	// site..site2 writes `add #1, r10` over site2 before control
	// reaches it, so r10 must advance and r11 must stay 0 on every
	// pass. The whole patching sequence is one basic block when fused.
	patch := isa.MustEncode(isa.Instruction{
		Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(10),
	})
	src := fmt.Sprintf(`
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #3, r12
loop:
site:
    inc r9
    mov #0x%04X, &site2
site2:
    inc r11
    dec r12
    jnz loop
    mov #0, &0x00FC
spin:
    jmp spin
.org 0xFFFE
.word reset
`, patch[0])
	prog, err := p.BuildOriginal("selfmod-block.s", src)
	if err != nil {
		t.Fatal(err)
	}

	run := func(blocks bool) (core.RunResult, [16]uint16, int) {
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(prog.Image); err != nil {
			t.Fatal(err)
		}
		m.EnablePredecode()
		m.SetBlockExec(blocks)
		m.Boot()
		res, err := m.Run(100_000)
		if err != nil {
			t.Fatalf("blocks=%v: %v", blocks, err)
		}
		return res, m.CPU.R, m.Space.BusErrors
	}

	onRes, onR, onBE := run(true)
	offRes, offR, offBE := run(false)
	if onRes.Cycles != offRes.Cycles || onRes.Insns != offRes.Insns {
		t.Errorf("self-modifying run diverged: %d/%d vs %d/%d cycles/insns",
			onRes.Cycles, onRes.Insns, offRes.Cycles, offRes.Insns)
	}
	if onR != offR {
		t.Errorf("register files diverged: %v vs %v", onR, offR)
	}
	if onBE != offBE {
		t.Errorf("bus errors diverged: %d vs %d", onBE, offBE)
	}
	if onR[9] != 3 || onR[10] != 3 || onR[11] != 0 {
		t.Errorf("patched loop executed wrong: r9=%d r10=%d r11=%d, want 3/3/0",
			onR[9], onR[10], onR[11])
	}
}

// TestBlockDeadlineStraddle pins the admission rule: a basic block
// whose precomputed cycle total would straddle the fused
// deadline/budget limit must fall back to per-instruction dispatch so
// peripheral events and interrupt acceptance land on the exact cycle.
// TimerA runs with a period much shorter than the straight-line run in
// the loop body, so nearly every block straddles a deadline.
func TestBlockDeadlineStraddle(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Timer period 50 cycles; the loop body is a straight-line run of
	// ~30 instructions (~45+ cycles) ending in a backward jump, so
	// block admission keeps colliding with the timer deadline. The
	// handler counts interrupts in r15.
	src := `
.org 0xE000
reset:
    mov #0x0A00, sp
    mov #50, &0x0172
    mov #5, &0x0160
    mov #200, r10
    eint
loop:
    add #1, r4
    add #1, r5
    add #1, r6
    add #1, r7
    add #1, r8
    add #1, r9
    xor r4, r11
    xor r5, r11
    xor r6, r11
    xor r7, r11
    add r4, r12
    add r5, r12
    add r6, r12
    add r7, r12
    add #1, r4
    add #1, r5
    add #1, r6
    add #1, r7
    add #1, r8
    add #1, r9
    xor r4, r11
    xor r5, r11
    xor r6, r11
    xor r7, r11
    add r4, r12
    add r5, r12
    dec r10
    jnz loop
    mov #0, &0x00FC
spin:
    jmp spin
handler:
    add #1, r15
    reti
.org 0xFFF0
.word handler
.org 0xFFFE
.word reset
`
	app := apps.App{Name: "deadline-straddle", Source: src, MaxCycles: 1_000_000}
	build, err := p.BuildOriginal("straddle.s", src)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &core.BuildResult{Original: build}

	blocks := runObserved(t, p, app, wrapped, core.DefenseBaseline, nil)
	noBlocks := runObserved(t, p, app, wrapped, core.DefenseBaseline, func(m *core.Machine) { m.SetBlockExec(false) })
	compareObserved(t, "deadline-straddle", blocks, noBlocks)
	if len(blocks.irqCycles) == 0 {
		t.Fatal("straddle workload accepted no interrupts; the test is vacuous")
	}
	if !blocks.res.Halted {
		t.Fatalf("straddle workload did not halt: %+v", blocks.res)
	}
}

// TestBlockDifferentialUnwatched re-runs the app matrix with NO watcher
// installed: that is the configuration in which the pure-block fast
// path (bulk accounting, dead-flag elision, in-place self-loops) is
// eligible, so this differential is the one that exercises it. The
// full register file — the SR in particular, where a wrong liveness
// marking would surface — must match per-instruction dispatch exactly.
func TestBlockDifferentialUnwatched(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(app apps.App, build *core.BuildResult, spec *core.DefenseSpec, blocks bool) (core.RunResult, [16]uint16, int, *apps.Inspection) {
		opts := core.MachineOptions{Config: p.Config(), Defense: spec}
		img := build.Original.Image
		if spec.Instrumented {
			opts.ROM = p.ROM()
			img = build.Instrumented.Image
		}
		m, err := core.NewMachine(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(img); err != nil {
			t.Fatal(err)
		}
		m.EnablePredecode()
		m.SetBlockExec(blocks)
		if app.UARTInput != "" {
			m.UART.Feed([]byte(app.UARTInput))
		}
		m.Boot()
		res, runErr := m.Run(app.MaxCycles)
		if runErr != nil {
			t.Fatalf("%s blocks=%v: %v", app.Name, blocks, runErr)
		}
		return res, m.CPU.R, m.Space.BusErrors, apps.Inspect(m, res)
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			build, err := p.Build(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range core.Defenses() {
				onRes, onR, onBE, onInsp := run(app, build, spec, true)
				offRes, offR, offBE, offInsp := run(app, build, spec, false)
				what := fmt.Sprintf("%s defense=%s", app.Name, spec.Name)
				if onRes.Cycles != offRes.Cycles || onRes.Insns != offRes.Insns {
					t.Errorf("%s: %d/%d vs %d/%d cycles/insns", what,
						onRes.Cycles, onRes.Insns, offRes.Cycles, offRes.Insns)
				}
				if onR != offR {
					t.Errorf("%s: register files diverged:\n%v\n%v", what, onR, offR)
				}
				if onBE != offBE {
					t.Errorf("%s: bus errors %d vs %d", what, onBE, offBE)
				}
				if err := apps.Equivalent(onInsp, offInsp); err != nil {
					t.Errorf("%s: %v", what, err)
				}
			}
		})
	}
}

// TestBlockPureKernelDifferential drives the pure fast path through the
// flag-sensitive shapes the app matrix may not hit with interrupts
// disabled: carry chains (addc/subc), BCD adds, compares and bit tests
// with partially dead intermediate flags, SR read as data, and a
// counted self-loop. The final register file (SR included) and the
// flag words stored to memory must match per-instruction dispatch.
func TestBlockPureKernelDifferential(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := `
.org 0xE000
reset:
    mov #0x0A00, sp
    mov #0x7FFF, r4
    mov #0x8001, r5
    mov #100, r10
kernel:
    add r4, r5
    addc r5, r6
    mov sr, r7
    subc r4, r8
    dadd r5, r9
    cmp r6, r9
    mov sr, r11
    bit #0x0101, r9
    xor r7, r12
    and r11, r13
    bic r4, r14
    bis r5, r14
    sub #3, r4
    dec r10
    jnz kernel
    mov sr, &0x0300
    mov r7, &0x0302
    mov r11, &0x0304
    mov #0, &0x00FC
spin:
    jmp spin
.org 0xFFFE
.word reset
`
	prog, err := p.BuildOriginal("pure-kernel.s", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(blocks bool) (core.RunResult, [16]uint16, []uint16) {
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(prog.Image); err != nil {
			t.Fatal(err)
		}
		m.EnablePredecode()
		m.SetBlockExec(blocks)
		m.Boot()
		res, err := m.Run(1_000_000)
		if err != nil {
			t.Fatalf("blocks=%v: %v", blocks, err)
		}
		stored := []uint16{
			m.Space.LoadWord(0x0300), m.Space.LoadWord(0x0302), m.Space.LoadWord(0x0304),
		}
		return res, m.CPU.R, stored
	}
	onRes, onR, onStored := run(true)
	offRes, offR, offStored := run(false)
	if onRes.Cycles != offRes.Cycles || onRes.Insns != offRes.Insns || !onRes.Halted {
		t.Errorf("run diverged: %+v vs %+v", onRes, offRes)
	}
	if onR != offR {
		t.Errorf("register files diverged:\n%v\n%v", onR, offR)
	}
	for i := range onStored {
		if onStored[i] != offStored[i] {
			t.Errorf("stored flag word %d: %04x vs %04x", i, onStored[i], offStored[i])
		}
	}
}

// TestBlockTablesShared asserts the fleet-facing sharing property: two
// machines installing the same predecode cache observe one block
// table, built once (Predecoded.Blocks is the per-ROM artifact).
func TestBlockTablesShared(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	app := apps.All()[0]
	build, err := p.Build(app.Name+".s", app.Source)
	if err != nil {
		t.Fatal(err)
	}
	newM := func() *core.Machine {
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(build.Original.Image); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := newM()
	pre := a.EnablePredecode()
	bTab := pre.Blocks()
	if bTab == nil || bTab.Len() == 0 {
		t.Fatal("no blocks fused for the application image")
	}
	if pre.Blocks() != bTab {
		t.Fatal("Predecoded.Blocks rebuilt instead of reusing the table")
	}
	b := newM()
	b.UsePredecoded(pre)
	if b.CPU.Predecoded().Blocks() != bTab {
		t.Fatal("second machine does not share the per-ROM block table")
	}
}
