// Package core implements EILID itself — the paper's contribution — on
// top of the substrates in this repository:
//
//   - EILIDinst (instrument.go, pipeline.go): the compile-time assembly
//     instrumenter and the three-iteration build of paper Figure 2.
//   - EILIDsw (eilidsw.go): the trusted shadow-stack software generated
//     as MSP430 assembly and assembled into the secure ROM, with the
//     entry/body/leave structure of paper Figure 9.
//   - EILIDhw: the composition (machine.go) of the CASU monitor
//     (internal/casu) with the CPU, memory and peripherals, including
//     the reset-on-violation behaviour.
//
// The package's public surface is what a user of the (hypothetical) open
// source release would touch: configure the device (Config), build the
// trusted ROM (BuildSecureROM), instrument firmware (Pipeline.Build),
// and run it on a protected machine (NewMachine).
package core

import (
	"fmt"

	"eilid/internal/mem"
	"eilid/internal/periph"
)

// EILIDsw selector values passed in r4 (paper Figure 9: "r4 determines
// which S_EILID function is invoked").
const (
	SelInit     = 0
	SelStoreRA  = 1
	SelCheckRA  = 2
	SelStoreRFI = 3
	SelCheckRFI = 4
	SelStoreInd = 5
	SelCheckInd = 6
)

// Reserved registers (paper Table III).
const (
	RegSelector = 4 // r4: S_EILID function selector
	RegIndex    = 5 // r5: shadow-stack index
	RegArg0     = 6 // r6: first argument
	RegArg1     = 7 // r7: second argument
)

// Config fixes the EILID memory plan and instrumentation conventions.
type Config struct {
	Layout mem.Layout

	// ShadowBase is the bottom of the shadow stack in secure DMEM.
	ShadowBase uint16
	// MaxShadowEntries bounds the shadow stack (in 16-bit words). The
	// paper's 256-byte secure DMEM stores up to 128 return addresses;
	// we split the same region between the stack and the forward-edge
	// function table.
	MaxShadowEntries int
	// TableCountAddr holds the function-entry-table length.
	TableCountAddr uint16
	// TableBase is the first function-entry slot.
	TableBase uint16
	// MaxFunctions bounds the forward-edge table.
	MaxFunctions int

	// ViolationAddr is the secure MMIO latch EILIDsw writes on a failed
	// check; the CASU hardware resets the device on that write.
	ViolationAddr uint16

	// TrampolineOrg is where the instrumenter places the NS_EILID_*
	// gateway stubs (top of user PMEM; applications must stay below it).
	TrampolineOrg uint16

	// MainLabel is the entry-function label at which the instrumenter
	// installs EILID initialization and the function-entry-table loads
	// (paper Figure 7).
	MainLabel string

	// ISRSuffix marks interrupt service routines: a code label ending in
	// this suffix is treated as an ISR prologue (the paper discovers ISRs
	// "by their reserved names").
	ISRSuffix string

	// CritVars lists the word-aligned DMEM addresses the critvar defense
	// registers as critical decision variables (OAT-style watchpoints).
	CritVars []uint16
}

// DefaultConfig returns the memory plan used throughout the repository
// (matching mem.DefaultLayout and the peripheral map).
func DefaultConfig() Config {
	l := mem.DefaultLayout()
	return Config{
		Layout:           l,
		ShadowBase:       l.SecureDataStart,          // 0x0A00
		MaxShadowEntries: 96,                         // 192 bytes
		TableCountAddr:   l.SecureDataStart + 0x00C0, // 0x0AC0
		TableBase:        l.SecureDataStart + 0x00C2, // 0x0AC2
		MaxFunctions:     30,                         // 60 bytes: region ends 0x0AFE
		ViolationAddr:    periph.ViolationAddr,
		TrampolineOrg:    0xF700,
		MainLabel:        "main",
		ISRSuffix:        "_ISR",
		// The benchmark applications keep their control decision state
		// at 0x0400 (attacks.HandlerAddr): the stored handler/threshold
		// word every data-only attack family targets.
		CritVars: []uint16{0x0400},
	}
}

// Validate checks internal consistency of the memory plan.
func (c Config) Validate() error {
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	ssEnd := uint32(c.ShadowBase) + 2*uint32(c.MaxShadowEntries) - 1
	if c.ShadowBase < c.Layout.SecureDataStart || ssEnd >= uint32(c.TableCountAddr) {
		return fmt.Errorf("core: shadow stack 0x%04x..0x%04x collides with table count 0x%04x",
			c.ShadowBase, ssEnd, c.TableCountAddr)
	}
	tblEnd := uint32(c.TableBase) + 2*uint32(c.MaxFunctions) - 1
	if tblEnd > uint32(c.Layout.SecureDataEnd) {
		return fmt.Errorf("core: function table ends at 0x%04x, beyond secure DMEM end 0x%04x",
			tblEnd, c.Layout.SecureDataEnd)
	}
	if c.Layout.RegionOf(c.TrampolineOrg) != mem.RegionPMEM {
		return fmt.Errorf("core: trampoline origin 0x%04x not in user PMEM", c.TrampolineOrg)
	}
	if c.Layout.RegionOf(c.ViolationAddr) != mem.RegionPeriph {
		return fmt.Errorf("core: violation latch 0x%04x not in peripheral space", c.ViolationAddr)
	}
	if c.MaxShadowEntries < 4 || c.MaxFunctions < 1 {
		return fmt.Errorf("core: degenerate sizes (shadow %d, functions %d)",
			c.MaxShadowEntries, c.MaxFunctions)
	}
	for _, w := range c.CritVars {
		if w&1 != 0 {
			return fmt.Errorf("core: critical variable 0x%04x not word-aligned", w)
		}
	}
	return nil
}

// Trampoline label names, in selector order. These are the NS_EILID_*
// functions of paper Figures 3-8.
var trampolineNames = [...]string{
	SelInit:     "NS_EILID_init",
	SelStoreRA:  "NS_EILID_store_ra",
	SelCheckRA:  "NS_EILID_check_ra",
	SelStoreRFI: "NS_EILID_store_rfi",
	SelCheckRFI: "NS_EILID_check_rfi",
	SelStoreInd: "NS_EILID_store_ind",
	SelCheckInd: "NS_EILID_check_ind",
}
