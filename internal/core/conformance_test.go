package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"eilid/internal/casu"
)

// The conformance suite drives the assembled EILIDsw through the gateway
// with randomly generated operation sequences and checks that it behaves
// exactly like the ShadowStack reference model: same accept/reject
// decision, and on accept, identical shadow-stack and table contents.

type swOp struct {
	sel  int
	arg0 uint16
	arg1 uint16
}

// applyModel runs one op on the model, returning an error when EILIDsw
// would trip the violation latch.
func applyModel(m *ShadowStack, op swOp) error {
	switch op.sel {
	case SelInit:
		m.Init()
		return nil
	case SelStoreRA:
		return m.StoreRA(op.arg0)
	case SelCheckRA:
		return m.CheckRA(op.arg0)
	case SelStoreRFI:
		return m.StoreRFI(op.arg0, op.arg1)
	case SelCheckRFI:
		return m.CheckRFI(op.arg0, op.arg1)
	case SelStoreInd:
		return m.StoreInd(op.arg0)
	case SelCheckInd:
		return m.CheckInd(op.arg0)
	}
	panic("bad selector")
}

var selToGateway = map[int]string{
	SelInit:     "NS_EILID_init",
	SelStoreRA:  "NS_EILID_store_ra",
	SelCheckRA:  "NS_EILID_check_ra",
	SelStoreRFI: "NS_EILID_store_rfi",
	SelCheckRFI: "NS_EILID_check_rfi",
	SelStoreInd: "NS_EILID_store_ind",
	SelCheckInd: "NS_EILID_check_ind",
}

// driverSource builds a program that performs the ops then halts.
func driverSource(ins *Instrumenter, ops []swOp) string {
	var b strings.Builder
	b.WriteString(".org 0xE000\nreset:\n    mov #0x0A00, sp\n")
	b.WriteString("    call #NS_EILID_init\n")
	for _, op := range ops {
		fmt.Fprintf(&b, "    mov #0x%04x, r6\n", op.arg0)
		if op.sel == SelStoreRFI || op.sel == SelCheckRFI {
			fmt.Fprintf(&b, "    mov #0x%04x, r7\n", op.arg1)
		}
		fmt.Fprintf(&b, "    call #%s\n", selToGateway[op.sel])
	}
	b.WriteString("    mov #0, &0x00FC\nspin:\n    jmp spin\n")
	b.WriteString(ins.GatewaySource())
	b.WriteString(".org 0xFFFE\n.word reset\n")
	return b.String()
}

// genOps builds a mostly-valid random sequence. Once the model reports an
// error the sequence stops: the device resets there, so later ops never
// execute.
func genOps(r *rand.Rand, cfg Config, n int) (ops []swOp, failing bool) {
	model := NewShadowStack(cfg)
	model.Init()
	// Mirror of stored values so checks can be made deliberately valid.
	var stack []swOp
	var table []uint16
	for len(ops) < n {
		var op swOp
		switch r.Intn(7) {
		case 0:
			op = swOp{sel: SelStoreRA, arg0: uint16(r.Uint32())}
		case 1:
			// check_ra: 80% matching, 20% random.
			if len(stack) > 0 && stack[len(stack)-1].sel == SelStoreRA && r.Intn(5) != 0 {
				op = swOp{sel: SelCheckRA, arg0: stack[len(stack)-1].arg0}
			} else {
				op = swOp{sel: SelCheckRA, arg0: uint16(r.Uint32())}
			}
		case 2:
			op = swOp{sel: SelStoreRFI, arg0: uint16(r.Uint32()), arg1: uint16(r.Uint32())}
		case 3:
			if len(stack) > 0 && stack[len(stack)-1].sel == SelStoreRFI && r.Intn(5) != 0 {
				prev := stack[len(stack)-1]
				op = swOp{sel: SelCheckRFI, arg0: prev.arg0, arg1: prev.arg1}
			} else {
				op = swOp{sel: SelCheckRFI, arg0: uint16(r.Uint32()), arg1: uint16(r.Uint32())}
			}
		case 4:
			op = swOp{sel: SelStoreInd, arg0: uint16(r.Uint32())}
		case 5:
			if len(table) > 0 && r.Intn(5) != 0 {
				op = swOp{sel: SelCheckInd, arg0: table[r.Intn(len(table))]}
			} else {
				op = swOp{sel: SelCheckInd, arg0: uint16(r.Uint32())}
			}
		case 6:
			if r.Intn(10) == 0 { // occasional re-init
				op = swOp{sel: SelInit}
			} else {
				op = swOp{sel: SelStoreRA, arg0: uint16(r.Uint32())}
			}
		}
		err := applyModel(model, op)
		ops = append(ops, op)
		if err != nil {
			return ops, true
		}
		// Maintain mirrors for valid-op generation.
		switch op.sel {
		case SelInit:
			stack, table = nil, nil
		case SelStoreRA, SelStoreRFI:
			stack = append(stack, op)
		case SelCheckRA, SelCheckRFI:
			stack = stack[:len(stack)-1]
		case SelStoreInd:
			table = append(table, op.arg0)
		}
	}
	return ops, false
}

func TestEILIDswConformanceProperty(t *testing.T) {
	cfg := DefaultConfig()
	p := mustPipeline(t)
	r := rand.New(rand.NewSource(99))

	for trial := 0; trial < 60; trial++ {
		ops, shouldFail := genOps(r, cfg, 2+r.Intn(25))

		// Model reference run.
		model := NewShadowStack(cfg)
		model.Init()
		var modelErr error
		for _, op := range ops {
			if modelErr = applyModel(model, op); modelErr != nil {
				break
			}
		}
		if (modelErr != nil) != shouldFail {
			t.Fatalf("trial %d: generator/model disagreement", trial)
		}

		// Hardware run.
		src := driverSource(p.ins, ops)
		prog, err := p.BuildOriginal("driver.s", src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		m, err := NewMachine(MachineOptions{Config: cfg, ROM: p.ROM(), Defense: DefenseEILID})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(prog.Image); err != nil {
			t.Fatal(err)
		}
		m.Boot()
		res, err := m.RunUntilReset(5_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		if shouldFail {
			if res.Resets == 0 {
				t.Fatalf("trial %d: model rejects (%v) but EILIDsw accepted\nops: %+v",
					trial, modelErr, ops)
			}
			if res.LastReason.Kind != casu.ViolationCFIFail {
				t.Fatalf("trial %d: reset reason %v", trial, res.LastReason.Kind)
			}
			continue
		}
		if res.Resets != 0 {
			t.Fatalf("trial %d: model accepts but EILIDsw reset (%v)\nops: %+v",
				trial, m.ResetReasons, ops)
		}
		if !res.Halted {
			t.Fatalf("trial %d: driver did not halt", trial)
		}
		// Compare final state.
		gotStack := m.ShadowEntries(cfg)
		wantStack := model.Entries()
		if len(gotStack) != len(wantStack) {
			t.Fatalf("trial %d: shadow depth %d, model %d", trial, len(gotStack), len(wantStack))
		}
		for i := range wantStack {
			if gotStack[i] != wantStack[i] {
				t.Fatalf("trial %d: shadow[%d] = 0x%04x, model 0x%04x",
					trial, i, gotStack[i], wantStack[i])
			}
		}
		gotTbl := m.FunctionTable(cfg)
		wantTbl := model.Table()
		if len(gotTbl) != len(wantTbl) {
			t.Fatalf("trial %d: table size %d, model %d", trial, len(gotTbl), len(wantTbl))
		}
		for i := range wantTbl {
			if gotTbl[i] != wantTbl[i] {
				t.Fatalf("trial %d: table[%d] = 0x%04x, model 0x%04x",
					trial, i, gotTbl[i], wantTbl[i])
			}
		}
	}
}

func TestEILIDswBoundaryConditions(t *testing.T) {
	cfg := DefaultConfig()
	p := mustPipeline(t)

	runOps := func(ops []swOp) (*Machine, RunResult) {
		t.Helper()
		src := driverSource(p.ins, ops)
		prog, err := p.BuildOriginal("driver.s", src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(MachineOptions{Config: cfg, ROM: p.ROM(), Defense: DefenseEILID})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(prog.Image); err != nil {
			t.Fatal(err)
		}
		m.Boot()
		res, err := m.RunUntilReset(20_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return m, res
	}

	// Fill the shadow stack to exactly its capacity: accepted.
	var ops []swOp
	for i := 0; i < cfg.MaxShadowEntries; i++ {
		ops = append(ops, swOp{sel: SelStoreRA, arg0: uint16(0xE000 + 2*i)})
	}
	m, res := runOps(ops)
	if res.Resets != 0 || !res.Halted {
		t.Fatalf("filling to capacity failed: %+v (%v)", res, m.ResetReasons)
	}
	if got := len(m.ShadowEntries(cfg)); got != cfg.MaxShadowEntries {
		t.Errorf("depth = %d, want %d", got, cfg.MaxShadowEntries)
	}

	// One more store overflows.
	ops = append(ops, swOp{sel: SelStoreRA, arg0: 0xBEEF})
	_, res = runOps(ops)
	if res.Resets == 0 {
		t.Error("store beyond capacity accepted")
	}

	// RFI store needs two slots: at capacity-1 it must reject.
	ops = ops[:cfg.MaxShadowEntries-1]
	ops = append(ops, swOp{sel: SelStoreRFI, arg0: 1, arg1: 2})
	_, res = runOps(ops)
	if res.Resets == 0 {
		t.Error("store_rfi with one free slot accepted")
	}

	// Table fills to capacity, then rejects.
	ops = nil
	for i := 0; i < cfg.MaxFunctions; i++ {
		ops = append(ops, swOp{sel: SelStoreInd, arg0: uint16(0xE100 + 2*i)})
	}
	m, res = runOps(ops)
	if res.Resets != 0 || !res.Halted {
		t.Fatalf("filling table failed: %+v", res)
	}
	if got := len(m.FunctionTable(cfg)); got != cfg.MaxFunctions {
		t.Errorf("table = %d, want %d", got, cfg.MaxFunctions)
	}
	ops = append(ops, swOp{sel: SelStoreInd, arg0: 0xBEEF})
	_, res = runOps(ops)
	if res.Resets == 0 {
		t.Error("table overflow accepted")
	}

	// check_ind scans the whole table (last entry reachable).
	ops = ops[:cfg.MaxFunctions]
	ops = append(ops, swOp{sel: SelCheckInd, arg0: uint16(0xE100 + 2*(cfg.MaxFunctions-1))})
	_, res = runOps(ops)
	if res.Resets != 0 || !res.Halted {
		t.Error("last table entry not found by check_ind")
	}

	// Unknown selector resets. Build a driver that passes r4=9 directly.
	src := `
.org 0xE000
reset:
    mov #0x0A00, sp
    mov #9, r4
    br #0x` + fmt.Sprintf("%04x", p.ROM().Entry) + `
spin:
    jmp spin
.org 0xFFFE
.word reset
`
	prog, err := p.BuildOriginal("badsel.s", src)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMachine(MachineOptions{Config: cfg, ROM: p.ROM(), Defense: DefenseEILID})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadFirmware(prog.Image); err != nil {
		t.Fatal(err)
	}
	m2.Boot()
	res2, err := m2.RunUntilReset(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resets == 0 || res2.LastReason.Kind != casu.ViolationCFIFail {
		t.Errorf("unknown selector: %+v", res2)
	}
}
