package core

import (
	"strings"
	"testing"

	"eilid/internal/casu"
)

// ---- fixtures ------------------------------------------------------------

const simpleApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    clr r11
    mov #3, r10
loop:
    call #work
    dec r10
    jnz loop
    mov #blink, r13
    call r13
    mov #0, &0x00FC
halt:
    jmp halt

work:
    add #5, r11
    ret

blink:
    xor.b #1, &0x0021
    ret

.org 0xFFFE
.word reset
`

const timerApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    clr r10
    mov #200, &0x0172
    mov #5, &0x0160
    eint
wait:
    cmp #3, r10
    jlo wait
    dint
    mov #0, &0x00FC
spin:
    jmp spin

TIMER_ISR:
    inc r10
    reti

.org 0xFFF0
.word TIMER_ISR
.org 0xFFFE
.word reset
`

func mustPipeline(t *testing.T) *Pipeline {
	t.Helper()
	p, err := NewPipeline(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustBuild(t *testing.T, p *Pipeline, name, src string) *BuildResult {
	t.Helper()
	r, err := p.Build(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// protectedMachine loads the instrumented image into an EILID device.
func protectedMachine(t *testing.T, p *Pipeline, r *BuildResult) *Machine {
	t.Helper()
	m, err := NewMachine(MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: DefenseEILID})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(r.Instrumented.Image); err != nil {
		t.Fatal(err)
	}
	m.Boot()
	return m
}

// baselineMachine loads the original image into an unprotected device.
func baselineMachine(t *testing.T, p *Pipeline, r *BuildResult) *Machine {
	t.Helper()
	m, err := NewMachine(MachineOptions{Config: p.Config()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(r.Original.Image); err != nil {
		t.Fatal(err)
	}
	m.Boot()
	return m
}

// ---- configuration & ROM -------------------------------------------------

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejections(t *testing.T) {
	c := DefaultConfig()
	c.MaxShadowEntries = 200 // collides with table
	if c.Validate() == nil {
		t.Error("oversized shadow stack accepted")
	}
	c = DefaultConfig()
	c.MaxFunctions = 100 // table beyond secure DMEM
	if c.Validate() == nil {
		t.Error("oversized table accepted")
	}
	c = DefaultConfig()
	c.TrampolineOrg = 0x0300 // in DMEM
	if c.Validate() == nil {
		t.Error("trampoline origin in DMEM accepted")
	}
	c = DefaultConfig()
	c.ViolationAddr = 0x0300
	if c.Validate() == nil {
		t.Error("violation latch outside peripherals accepted")
	}
	c = DefaultConfig()
	c.MaxShadowEntries = 2
	if c.Validate() == nil {
		t.Error("degenerate shadow size accepted")
	}
}

func TestBuildSecureROM(t *testing.T) {
	cfg := DefaultConfig()
	rom, err := BuildSecureROM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rom.Entry != cfg.Layout.SecureROMStart {
		t.Errorf("entry = 0x%04x, want 0x%04x (start of ROM)", rom.Entry, cfg.Layout.SecureROMStart)
	}
	if !cfg.Layout.InSecureROM(rom.Exit) {
		t.Errorf("exit 0x%04x outside secure ROM", rom.Exit)
	}
	if rom.Exit <= rom.Entry {
		t.Error("exit must come after entry")
	}
	// Deterministic build.
	rom2, err := BuildSecureROM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := rom.Program.Image.Bytes()
	b2, _ := rom2.Program.Image.Bytes()
	if string(b1) != string(b2) {
		t.Error("EILIDsw build is not deterministic")
	}
	// Size sanity: EILIDsw is "minimal trusted software".
	if n := rom.Program.Image.Size(); n > 400 {
		t.Errorf("EILIDsw is %d bytes; expected a small TCB (<400)", n)
	}
}

func TestEILIDswSourceStructure(t *testing.T) {
	src := GenerateEILIDswSource(DefaultConfig())
	// Exactly one ret: the single exit point of the leave section.
	rets := 0
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "ret ") || trimmed == "ret" {
			rets++
		}
	}
	if rets != 1 {
		t.Errorf("EILIDsw has %d ret instructions, want exactly 1 (single exit)", rets)
	}
	// Entry section comes first.
	entryIdx := strings.Index(src, "S_EILID_entry:")
	leaveIdx := strings.Index(src, "S_EILID_leave:")
	if entryIdx < 0 || leaveIdx < 0 || entryIdx > leaveIdx {
		t.Error("entry/leave sections out of order")
	}
	// Every selector has a dispatch arm.
	for _, fn := range []string{"S_EILID_init", "S_EILID_store_ra", "S_EILID_check_ra",
		"S_EILID_store_rfi", "S_EILID_check_rfi", "S_EILID_store_ind", "S_EILID_check_ind"} {
		if !strings.Contains(src, fn+":") {
			t.Errorf("missing body function %s", fn)
		}
	}
}

// ---- pipeline -------------------------------------------------------------

func TestPipelineBuildSimpleApp(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "simple.s", simpleApp)
	if r.Iterations != 3 {
		t.Errorf("iterations = %d, want 3 (paper Figure 2)", r.Iterations)
	}
	s := r.Stats
	if s.DirectCalls != 1 || s.IndirectCalls != 1 || s.Returns != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.TableEntries != 2 { // work (call target) + blink (address taken)
		t.Errorf("table entries = %d, want 2", s.TableEntries)
	}
	if s.ISRPrologues != 0 || s.ISREpilogues != 0 {
		t.Errorf("unexpected ISR instrumentation: %+v", s)
	}
	// All return-address placeholders must be resolved.
	if strings.Contains(r.InstrumentedSource, "0xaaaa") {
		t.Error("unresolved return-address placeholder in final source")
	}
	// The instrumented binary is strictly larger.
	if r.Instrumented.Image.Size() <= r.Original.Image.Size() {
		t.Error("instrumented binary not larger than original")
	}
}

func TestPipelineFixedPoint(t *testing.T) {
	// Re-instrumenting with the FINAL listing must reproduce the final
	// source exactly: the layout converged.
	p := mustPipeline(t)
	r := mustBuild(t, p, "simple.s", simpleApp)
	a, err := p.ins.analyze(r.Original)
	if err != nil {
		t.Fatal(err)
	}
	lst := r.Instrumented.Listing
	again, _ := p.ins.instrument(simpleApp, a, func(line int) (uint16, bool) {
		e, ok := lst.EntryForLine(line)
		if !ok {
			return 0, false
		}
		return e.Addr + e.Size(), true
	})
	if again != r.InstrumentedSource {
		t.Error("pipeline did not reach a fixed point after 3 iterations")
	}
}

func TestPipelineDeterminism(t *testing.T) {
	p := mustPipeline(t)
	r1 := mustBuild(t, p, "a.s", simpleApp)
	r2 := mustBuild(t, p, "a.s", simpleApp)
	if r1.InstrumentedSource != r2.InstrumentedSource {
		t.Error("pipeline output differs between runs")
	}
}

func TestReturnAddressResolution(t *testing.T) {
	// Every store_ra site's immediate must equal the address right after
	// its call instruction in the final listing.
	p := mustPipeline(t)
	r := mustBuild(t, p, "simple.s", simpleApp)
	lst := r.Instrumented.Listing
	for i, e := range lst.Entries {
		if !e.IsInstr || !strings.Contains(e.Source, "EILID: return address of next call") {
			continue
		}
		ra := e.Instr.Src.X
		// Find the next direct call after this entry (skipping the
		// gateway call and spills).
		found := false
		for j := i + 1; j < len(lst.Entries) && j <= i+8; j++ {
			n := lst.Entries[j]
			if n.IsInstr && strings.HasPrefix(strings.TrimSpace(n.Source), "call ") &&
				!strings.Contains(n.Source, "NS_EILID") {
				want := n.Addr + n.Size()
				if ra != want {
					t.Errorf("entry %d: stored RA 0x%04x, call site expects 0x%04x", i, ra, want)
				}
				found = true
				break
			}
		}
		if !found {
			t.Errorf("entry %d: no protected call found after store_ra", i)
		}
	}
}

// ---- functional equivalence ----------------------------------------------

func TestInstrumentedFunctionalEquivalence(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "simple.s", simpleApp)

	base := baselineMachine(t, p, r)
	resB, err := base.Run(1_000_000)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	prot := protectedMachine(t, p, r)
	resP, err := prot.Run(1_000_000)
	if err != nil {
		t.Fatalf("protected: %v", err)
	}

	if !resB.Halted || !resP.Halted {
		t.Fatal("both machines must halt")
	}
	if prot.ResetCount != 0 {
		t.Fatalf("benign run caused %d resets (%v)", prot.ResetCount, prot.ResetReasons)
	}
	if base.CPU.R[11] != 15 || prot.CPU.R[11] != 15 {
		t.Errorf("r11: base=%d prot=%d, want 15", base.CPU.R[11], prot.CPU.R[11])
	}
	if len(base.Port1.Events) != len(prot.Port1.Events) {
		t.Errorf("GPIO event streams differ: %d vs %d", len(base.Port1.Events), len(prot.Port1.Events))
	}
	// Shadow stack balanced at exit.
	if prot.CPU.R[RegIndex] != 0 {
		t.Errorf("shadow index = %d at halt, want 0", prot.CPU.R[RegIndex])
	}
	// The instrumented run costs more cycles, but bounded (<2x for this
	// call-dense toy; the paper's real apps see <14%).
	if resP.Cycles <= resB.Cycles {
		t.Error("instrumented run not slower than baseline")
	}
	// This toy is nothing but calls plus the one-time table setup, so the
	// relative overhead is huge compared to the paper's real applications
	// (2.6-13.2%); it must still be within the per-site cost envelope.
	if resP.Cycles > 15*resB.Cycles {
		t.Errorf("overhead implausible: %d vs %d cycles", resP.Cycles, resB.Cycles)
	}
	// Function table contains exactly work and blink.
	tbl := prot.FunctionTable(p.Config())
	if len(tbl) != 2 {
		t.Fatalf("function table = %v", tbl)
	}
	w := r.Instrumented.Symbols["work"]
	b := r.Instrumented.Symbols["blink"]
	if tbl[0] != w || tbl[1] != b {
		t.Errorf("table = %04x, want [%04x %04x]", tbl, w, b)
	}
}

func TestISRAppEquivalence(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "timer.s", timerApp)
	if r.Stats.ISRPrologues != 1 || r.Stats.ISREpilogues != 1 {
		t.Fatalf("ISR instrumentation stats %+v", r.Stats)
	}

	base := baselineMachine(t, p, r)
	if _, err := base.Run(1_000_000); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	prot := protectedMachine(t, p, r)
	if _, err := prot.Run(1_000_000); err != nil {
		t.Fatalf("protected: %v", err)
	}
	if prot.ResetCount != 0 {
		t.Fatalf("benign ISR run reset %d times (%v)", prot.ResetCount, prot.ResetReasons)
	}
	if base.CPU.R[10] != 3 || prot.CPU.R[10] != 3 {
		t.Errorf("interrupt counts: base=%d prot=%d, want 3", base.CPU.R[10], prot.CPU.R[10])
	}
	if prot.CPU.Interrupts != 3 {
		t.Errorf("protected machine serviced %d interrupts", prot.CPU.Interrupts)
	}
	if prot.CPU.R[RegIndex] != 0 {
		t.Errorf("shadow index = %d after balanced ISRs", prot.CPU.R[RegIndex])
	}
}

const spillApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #0x1111, r6   ; application state in reserved registers
    mov #0x2222, r7
    mov #0x0004, r4
    call #bump
    cmp #0x1111, r6
    jne bad
    cmp #0x2222, r7
    jne bad
    cmp #0x0004, r4
    jne bad
    mov #0, &0x00FC
ok: jmp ok
bad:
    mov #1, &0x00FC
spin:
    jmp spin

bump:
    inc r12
    ret

.org 0xFFFE
.word reset
`

func TestReservedRegisterSpills(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "spill.s", spillApp)
	if len(r.Stats.SpilledRegs) != 3 {
		t.Fatalf("spilled regs = %v, want r4,r6,r7", r.Stats.SpilledRegs)
	}
	prot := protectedMachine(t, p, r)
	res, err := prot.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if prot.ResetCount != 0 {
		t.Fatalf("spill app reset: %v", prot.ResetReasons)
	}
	if res.ExitCode != 0 {
		t.Errorf("exit code %d: reserved registers were clobbered", res.ExitCode)
	}
}

const r5App = `
.org 0xE000
reset:
main:
    mov #1, r5
    jmp main
.org 0xFFFE
.word reset
`

func TestR5UsageRejected(t *testing.T) {
	p := mustPipeline(t)
	if _, err := p.Build("r5.s", r5App); err == nil {
		t.Fatal("application using r5 must be rejected")
	}
}

// ---- attacks stopped ------------------------------------------------------

const victimApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    call #victim
    mov #0, &0x00FC
stop:
    jmp stop

victim:
    mov #1, r14
    ret

evil:
    mov #0xBAD, r15
    mov #1, &0x00FC
evilspin:
    jmp evilspin

.org 0xFFFE
.word reset
`

// runUntilPC steps the machine until the CPU reaches addr.
func runUntilPC(t *testing.T, m *Machine, addr uint16, budget int) {
	t.Helper()
	for i := 0; i < budget; i++ {
		if m.CPU.PC() == addr {
			return
		}
		if _, err := m.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	t.Fatalf("never reached 0x%04x", addr)
}

func TestReturnAddressOverwriteCompromisesBaseline(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "victim.s", victimApp)
	m := baselineMachine(t, p, r)
	runUntilPC(t, m, r.Original.Symbols["victim"], 10000)
	// The adversary's arbitrary write: redirect the pushed return address.
	m.Space.StoreWord(m.CPU.SP(), r.Original.Symbols["evil"])
	res, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 || m.CPU.R[15] != 0xBAD {
		t.Error("baseline was NOT compromised; attack harness broken")
	}
}

func TestReturnAddressOverwriteStoppedByEILID(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "victim.s", victimApp)
	m := protectedMachine(t, p, r)
	runUntilPC(t, m, r.Instrumented.Symbols["victim"], 10000)
	m.Space.StoreWord(m.CPU.SP(), r.Instrumented.Symbols["evil"])
	res, err := m.RunUntilReset(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resets == 0 {
		t.Fatal("EILID did not reset on return-address overwrite")
	}
	if res.LastReason.Kind != casu.ViolationCFIFail {
		t.Errorf("reset reason = %v, want cfi-check-failed", res.LastReason.Kind)
	}
	if m.CPU.R[15] == 0xBAD {
		t.Error("evil code executed despite EILID")
	}
}

const hijackApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #work, r13
    add #4, r13
    call r13
    mov #0, &0x00FC
stop:
    jmp stop

work:
    inc r11
    nop
    ret

.org 0xFFFE
.word reset
`

func TestIndirectHijackStoppedByEILID(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "hijack.s", hijackApp)

	// Baseline: the skewed call lands mid-function and "succeeds".
	base := baselineMachine(t, p, r)
	if _, err := base.Run(1_000_000); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if !base.Halted() {
		t.Fatal("baseline should complete (compromised but running)")
	}

	// EILID: check_ind rejects the non-registered target.
	prot := protectedMachine(t, p, r)
	res, err := prot.RunUntilReset(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resets == 0 {
		t.Fatal("EILID did not reset on indirect-call hijack")
	}
	if res.LastReason.Kind != casu.ViolationCFIFail {
		t.Errorf("reset reason = %v", res.LastReason.Kind)
	}
}

const recursionApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    call #recur
    mov #0, &0x00FC
stop:
    jmp stop

recur:
    call #recur
    ret

.org 0xFFFE
.word reset
`

func TestUnboundedRecursionTripsShadowOverflow(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "recur.s", recursionApp)
	m := protectedMachine(t, p, r)
	res, err := m.RunUntilReset(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resets == 0 {
		t.Fatal("shadow-stack overflow did not reset")
	}
	if res.LastReason.Kind != casu.ViolationCFIFail {
		t.Errorf("reset reason = %v", res.LastReason.Kind)
	}
}

const romBypassApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    br #0xF804
stop:
    jmp stop
.org 0xFFFE
.word reset
`

func TestSecureEntryBypassDetected(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "bypass.s", romBypassApp)
	m := protectedMachine(t, p, r)
	res, err := m.RunUntilReset(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resets == 0 {
		t.Fatal("mid-ROM entry did not reset")
	}
	if res.LastReason.Kind != casu.ViolationSecureEntry {
		t.Errorf("reset reason = %v, want secure-entry-bypass", res.LastReason.Kind)
	}
}

const shadowPeekApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov &0x0A00, r9
stop:
    jmp stop
.org 0xFFFE
.word reset
`

func TestShadowStackAccessBlocked(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "peek.s", shadowPeekApp)
	m := protectedMachine(t, p, r)
	res, err := m.RunUntilReset(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resets == 0 {
		t.Fatal("shadow-stack read from app did not reset")
	}
	if res.LastReason.Kind != casu.ViolationSecureData {
		t.Errorf("reset reason = %v, want secure-data-access", res.LastReason.Kind)
	}
}

const pmemWriteApp = `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #0x1234, &0xE100
stop:
    jmp stop
.org 0xFFFE
.word reset
`

func TestPMEMWriteBlocked(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "selfmod.s", pmemWriteApp)
	m := protectedMachine(t, p, r)
	res, err := m.RunUntilReset(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resets == 0 || res.LastReason.Kind != casu.ViolationPMEMWrite {
		t.Fatalf("result %+v, want pmem-write reset", res)
	}
}

// ---- machine plumbing ------------------------------------------------------

func TestMachineHaltExitCode(t *testing.T) {
	p := mustPipeline(t)
	src := `
.org 0xE000
reset:
main:
    mov #42, &0x00FC
spin:
    jmp spin
.org 0xFFFE
.word reset
`
	r := mustBuild(t, p, "halt.s", src)
	m := protectedMachine(t, p, r)
	res, err := m.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.ExitCode != 42 {
		t.Errorf("result %+v", res)
	}
}

func TestRunCycleBudget(t *testing.T) {
	p := mustPipeline(t)
	src := `
.org 0xE000
reset:
main:
spin:
    jmp spin
.org 0xFFFE
.word reset
`
	r := mustBuild(t, p, "spin.s", src)
	m := protectedMachine(t, p, r)
	if _, err := m.Run(1000); err != ErrCycleBudget {
		t.Errorf("err = %v, want ErrCycleBudget", err)
	}
}

func TestInstrumentedDefenseRequiresROM(t *testing.T) {
	if _, err := NewMachine(MachineOptions{Config: DefaultConfig(), Defense: DefenseEILID}); err == nil {
		t.Error("instrumented defense without ROM accepted")
	}
}

// ---- shadow stack model ----------------------------------------------------

func TestShadowStackModelBasics(t *testing.T) {
	s := NewShadowStack(DefaultConfig())
	if err := s.CheckRA(1); err != ErrShadowUnderflow {
		t.Errorf("underflow err = %v", err)
	}
	if err := s.StoreRA(0xE010); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckRA(0xBAD); err != ErrShadowMismatch {
		t.Errorf("mismatch err = %v", err)
	}
	s.Init()
	if err := s.StoreRFI(0xE020, 0x0008); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckRFI(0xE020, 0x0000); err != ErrContextMismatch {
		t.Errorf("context err = %v", err)
	}
	s.Init()
	if err := s.CheckRFI(1, 2); err != ErrShadowUnderflow {
		t.Errorf("rfi underflow err = %v", err)
	}
	if err := s.CheckInd(0xE000); err != ErrIllegalTarget {
		t.Errorf("empty table err = %v", err)
	}
	if err := s.StoreInd(0xE000); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInd(0xE000); err != nil {
		t.Errorf("registered target rejected: %v", err)
	}
	for i := 0; i < 29; i++ {
		if err := s.StoreInd(uint16(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.StoreInd(0xFFFF); err != ErrTableFull {
		t.Errorf("table-full err = %v", err)
	}
	s.Init()
	for i := 0; i < 96; i++ {
		if err := s.StoreRA(uint16(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.StoreRA(0xFFFF); err != ErrShadowOverflow {
		t.Errorf("overflow err = %v", err)
	}
	if err := s.StoreRFI(1, 2); err != ErrShadowOverflow {
		t.Errorf("rfi overflow err = %v", err)
	}
}

func TestRecursionWarning(t *testing.T) {
	p := mustPipeline(t)
	r := mustBuild(t, p, "recur.s", recursionApp)
	found := false
	for _, w := range r.Stats.Warnings {
		if strings.Contains(w, "direct recursion") && strings.Contains(w, `"recur"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("no recursion warning raised: %v", r.Stats.Warnings)
	}
}

func TestIndirectJumpWarning(t *testing.T) {
	src := `
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #done, r13
    br r13
done:
    mov #0, &0x00FC
spin:
    jmp spin
.org 0xFFFE
.word reset
`
	p := mustPipeline(t)
	r := mustBuild(t, p, "ijmp.s", src)
	found := false
	for _, w := range r.Stats.Warnings {
		if strings.Contains(w, "indirect jump") {
			found = true
		}
	}
	if !found {
		t.Errorf("no indirect-jump warning raised: %v", r.Stats.Warnings)
	}
}

func TestNoSpuriousWarnings(t *testing.T) {
	// Plain calls, rets and direct branches must not raise warnings.
	p := mustPipeline(t)
	r := mustBuild(t, p, "simple.s", simpleApp)
	if len(r.Stats.Warnings) != 0 {
		t.Errorf("unexpected warnings on simpleApp: %v", r.Stats.Warnings)
	}
	r = mustBuild(t, p, "timer.s", timerApp)
	if len(r.Stats.Warnings) != 0 {
		t.Errorf("unexpected warnings on timerApp: %v", r.Stats.Warnings)
	}
}
