package core

import (
	"fmt"
	"sort"
	"strings"

	"eilid/internal/casu"
)

// DefenseEnv is what a defense constructor gets to see of the machine
// being assembled: the memory plan, the secure ROM build (nil unless the
// defense requires instrumentation) and a side-effect-free memory tap.
type DefenseEnv struct {
	Config Config
	ROM    *SecureROM
	// Peek reads a word of memory without bus side effects — the
	// simulated counterpart of a hardware monitor's private tap on the
	// memory backbone.
	Peek func(addr uint16) uint16
}

// DefenseSpec describes one defense variant: how to build its monitor
// and what the machine must provide for it. Specs are the registry
// entries the fleet's defense × attack matrix iterates over; compare
// with the paper's Table of related work — EILID, shadow stacks and
// data-integrity attestation occupy different points of the same space,
// and a spec is exactly one such point made runnable.
type DefenseSpec struct {
	// Name is the registry key ("baseline", "eilid", "shadow",
	// "critvar"); it is what job records, oracles and the CLI's
	// -defenses flag key off.
	Name string
	// Summary is a one-line description for CLI/README listings.
	Summary string
	// Instrumented selects the EILIDinst three-iteration build and
	// loads the secure ROM; defenses that watch the raw buses run the
	// original firmware unchanged (that is their comparative value).
	Instrumented bool
	// GateIRQ installs the hardware interrupt gate that blanks requests
	// while the PC is inside the secure ROM.
	GateIRQ bool
	// Kinds lists every ViolationKind this defense can emit; oracles
	// use it to decide whether a reset reason is plausible for the
	// defense that produced it.
	Kinds []casu.ViolationKind
	// New constructs the armed monitor; nil means no monitor at all
	// (the unprotected baseline).
	New func(env DefenseEnv) casu.Defense
}

// Emits reports whether kind is in the spec's emittable set.
func (s *DefenseSpec) Emits(kind casu.ViolationKind) bool {
	for _, k := range s.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// EmitsReason reports whether reason names (by ViolationKind.String) a
// kind in the spec's emittable set — the check oracles apply to a reset
// reason recorded for this defense.
func (s *DefenseSpec) EmitsReason(reason string) bool {
	for _, k := range s.Kinds {
		if k.String() == reason {
			return true
		}
	}
	return false
}

// DefenseBaseline is the unprotected device of the paper's attack
// comparisons: same hardware, monitor absent, original build.
var DefenseBaseline = &DefenseSpec{
	Name:    "baseline",
	Summary: "unprotected device, no monitor (diagnostic control)",
}

// DefenseEILID is the paper's defense: the CASU hardware invariants
// plus the EILIDsw shadow stack in secure ROM, running the
// EILIDinst-instrumented build behind the IRQ gate.
var DefenseEILID = &DefenseSpec{
	Name:         "eilid",
	Summary:      "CASU invariants + EILIDsw shadow stack (instrumented build)",
	Instrumented: true,
	GateIRQ:      true,
	Kinds: []casu.ViolationKind{
		casu.ViolationPMEMWrite,
		casu.ViolationSecureROMWrite,
		casu.ViolationIVTWrite,
		casu.ViolationExecNonExec,
		casu.ViolationSecureEntry,
		casu.ViolationSecureExit,
		casu.ViolationSecureData,
		casu.ViolationLatchWrite,
		casu.ViolationCFIFail,
		casu.ViolationIRQInSecure,
	},
	New: func(env DefenseEnv) casu.Defense {
		return casu.NewMonitor(casu.Config{
			Layout:              env.Config.Layout,
			EntryPoint:          env.ROM.Entry,
			ExitPoint:           env.ROM.Exit,
			ViolationAddr:       env.Config.ViolationAddr,
			EnforceSecureRegion: true,
		})
	},
}

// DefenseShadow is the CFI CaRE-style hardware shadow stack: original
// build, no ROM, backward-edge enforcement only.
var DefenseShadow = &DefenseSpec{
	Name:    "shadow",
	Summary: "interrupt-aware hardware shadow stack (original build)",
	Kinds: []casu.ViolationKind{
		casu.ViolationShadowRA,
		casu.ViolationShadowRFI,
	},
	New: func(env DefenseEnv) casu.Defense {
		return casu.NewShadowStack(casu.ShadowConfig{Peek: env.Peek})
	},
}

// DefenseCritVar is the OAT-style critical-variable monitor: original
// build, comparator watchpoints on the configured decision variables.
var DefenseCritVar = &DefenseSpec{
	Name:    "critvar",
	Summary: "critical-variable watchpoints, OAT-style (original build)",
	Kinds: []casu.ViolationKind{
		casu.ViolationCritVar,
	},
	New: func(env DefenseEnv) casu.Defense {
		return casu.NewCritVar(casu.CritVarConfig{
			Watch: env.Config.CritVars,
			Peek:  env.Peek,
		})
	},
}

// defenseRegistry is the fixed column order of the matrix: the control
// first, then the paper's defense, then the comparative peers.
var defenseRegistry = []*DefenseSpec{
	DefenseBaseline,
	DefenseEILID,
	DefenseShadow,
	DefenseCritVar,
}

// Defenses returns every registered defense in matrix column order.
func Defenses() []*DefenseSpec {
	out := make([]*DefenseSpec, len(defenseRegistry))
	copy(out, defenseRegistry)
	return out
}

// DefenseNames returns the registered names in matrix column order.
func DefenseNames() []string {
	out := make([]string, len(defenseRegistry))
	for i, s := range defenseRegistry {
		out[i] = s.Name
	}
	return out
}

// DefenseByName resolves a registry name.
func DefenseByName(name string) (*DefenseSpec, error) {
	for _, s := range defenseRegistry {
		if s.Name == name {
			return s, nil
		}
	}
	known := DefenseNames()
	sort.Strings(known)
	return nil, fmt.Errorf("core: unknown defense %q (have %s)", name, strings.Join(known, ", "))
}
