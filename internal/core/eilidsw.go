package core

import (
	"fmt"
	"strings"

	"eilid/internal/asm"
)

// SecureROM is the assembled EILIDsw image plus the two addresses the
// hardware monitor is wired to: the sole legal entry point and the sole
// legal exit point.
type SecureROM struct {
	Program *asm.Program
	// Entry is S_EILID_entry: the only address at which non-secure code
	// may enter the ROM.
	Entry uint16
	// Exit is the address of the ret in the leave section: the only
	// address from which control may return to non-secure code.
	Exit uint16
}

// BuildSecureROM assembles EILIDsw for the given configuration. The
// layout follows paper Figure 9: an entry section that dispatches on r4,
// a body hosting the S_EILID_* functions, and a leave section holding the
// single exit ret. All state lives in secure DMEM (shadow stack, function
// table) and the reserved registers (r5 = stack index).
func BuildSecureROM(cfg Config) (*SecureROM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := GenerateEILIDswSource(cfg)
	p, err := asm.Assemble("eilidsw.s", src)
	if err != nil {
		return nil, fmt.Errorf("core: assembling EILIDsw: %w", err)
	}
	entry, ok := p.Symbols["S_EILID_entry"]
	if !ok {
		return nil, fmt.Errorf("core: EILIDsw missing entry symbol")
	}
	exit, ok := p.Symbols["S_EILID_leave"]
	if !ok {
		return nil, fmt.Errorf("core: EILIDsw missing leave symbol")
	}
	// The image must fit the secure ROM region.
	for _, ch := range p.Image.Chunks() {
		end := uint32(ch.Addr) + uint32(len(ch.Data)) - 1
		if ch.Addr < cfg.Layout.SecureROMStart || end > uint32(cfg.Layout.SecureROMEnd) {
			return nil, fmt.Errorf("core: EILIDsw chunk 0x%04x..0x%04x outside secure ROM", ch.Addr, end)
		}
	}
	return &SecureROM{Program: p, Entry: entry, Exit: exit}, nil
}

// GenerateEILIDswSource emits the EILIDsw assembly. It is exported so the
// eilid-bench tool can show the trusted code it measures and so tests can
// assert structural properties (instruction budget, single exit, ...).
func GenerateEILIDswSource(cfg Config) string {
	var b strings.Builder
	p := func(format string, args ...interface{}) { fmt.Fprintf(&b, format+"\n", args...) }

	p("; EILIDsw — trusted shadow-stack software (generated)")
	p("; entry/body/leave structure per EILID paper Figure 9.")
	p("; r4=selector r5=shadow index r6,r7=arguments (paper Table III)")
	p(".equ SS_BASE,   0x%04x", cfg.ShadowBase)
	p(".equ SS_MAX,    %d", cfg.MaxShadowEntries)
	p(".equ TBL_CNT,   0x%04x", cfg.TableCountAddr)
	p(".equ TBL_BASE,  0x%04x", cfg.TableBase)
	p(".equ TBL_MAX,   %d", cfg.MaxFunctions)
	p(".equ VIOLATION, 0x%04x", cfg.ViolationAddr)
	p(".org 0x%04x", cfg.Layout.SecureROMStart)
	p("")
	p("; ---- entry section: the only legal secure entry point ----")
	p("S_EILID_entry:")
	for sel, label := range []string{
		SelInit:     "S_EILID_init",
		SelStoreRA:  "S_EILID_store_ra",
		SelCheckRA:  "S_EILID_check_ra",
		SelStoreRFI: "S_EILID_store_rfi",
		SelCheckRFI: "S_EILID_check_rfi",
		SelStoreInd: "S_EILID_store_ind",
		SelCheckInd: "S_EILID_check_ind",
	} {
		p("    cmp #%d, r4", sel)
		p("    jeq %s", label)
	}
	p("    ; unknown selector: treat as an attack on the gateway")
	p("S_EILID_viol:")
	p("    mov #1, &VIOLATION   ; EILIDhw resets the device on this store")
	p("    jmp S_EILID_viol     ; unreachable (reset fires first)")
	p("")
	p("; ---- body section ----")
	p("S_EILID_init:")
	p("    clr r5               ; shadow stack index := 0")
	p("    clr &TBL_CNT         ; function table := empty")
	p("    jmp S_EILID_leave")
	p("")
	p("; store return address (P1): r6 = resolved return address")
	p("S_EILID_store_ra:")
	p("    cmp #SS_MAX, r5")
	p("    jhs S_EILID_viol     ; shadow stack overflow")
	p("    mov r5, r7")
	p("    add r7, r7           ; r7 = 2*index")
	p("    add #SS_BASE, r7")
	p("    mov r6, 0(r7)")
	p("    inc r5")
	p("    jmp S_EILID_leave")
	p("")
	p("; check return address (P1): r6 = return address about to be used")
	p("S_EILID_check_ra:")
	p("    tst r5")
	p("    jz S_EILID_viol      ; shadow stack underflow")
	p("    dec r5")
	p("    mov r5, r7")
	p("    add r7, r7")
	p("    add #SS_BASE, r7")
	p("    cmp r6, 0(r7)")
	p("    jne S_EILID_viol     ; backward-edge mismatch: reset")
	p("    jmp S_EILID_leave")
	p("")
	p("; store interrupt context (P2): r6 = return address, r7 = status reg")
	p("S_EILID_store_rfi:")
	p("    cmp #SS_MAX-1, r5")
	p("    jhs S_EILID_viol")
	p("    push r8")
	p("    mov r5, r8")
	p("    add r8, r8")
	p("    add #SS_BASE, r8")
	p("    mov r6, 0(r8)")
	p("    mov r7, 2(r8)")
	p("    incd r5")
	p("    pop r8")
	p("    jmp S_EILID_leave")
	p("")
	p("; check interrupt context (P2)")
	p("S_EILID_check_rfi:")
	p("    cmp #2, r5")
	p("    jlo S_EILID_viol     ; fewer than 2 entries: underflow")
	p("    push r8")
	p("    mov r5, r8")
	p("    add r8, r8")
	p("    add #SS_BASE-4, r8   ; entry pair at index r5-2")
	p("    cmp r6, 0(r8)")
	p("    jne S_EILID_viol     ; return-address tampered in ISR")
	p("    cmp r7, 2(r8)")
	p("    jne S_EILID_viol     ; status register tampered in ISR")
	p("    decd r5")
	p("    pop r8")
	p("    jmp S_EILID_leave")
	p("")
	p("; register a legal indirect-call target (P3): r6 = function address")
	p("S_EILID_store_ind:")
	p("    push r8")
	p("    mov &TBL_CNT, r8")
	p("    cmp #TBL_MAX, r8")
	p("    jhs S_EILID_viol     ; table full")
	p("    add r8, r8")
	p("    add #TBL_BASE, r8")
	p("    mov r6, 0(r8)")
	p("    pop r8")
	p("    inc &TBL_CNT")
	p("    jmp S_EILID_leave")
	p("")
	p("; validate an indirect-call target (P3): r6 = target address")
	p("S_EILID_check_ind:")
	p("    push r8")
	p("    push r9")
	p("    mov &TBL_CNT, r8")
	p("    mov #TBL_BASE, r9")
	p("S_EILID_ci_loop:")
	p("    tst r8")
	p("    jz S_EILID_viol      ; exhausted table: illegal forward edge")
	p("    cmp r6, 0(r9)")
	p("    jeq S_EILID_ci_hit")
	p("    incd r9")
	p("    dec r8")
	p("    jmp S_EILID_ci_loop")
	p("S_EILID_ci_hit:")
	p("    pop r9")
	p("    pop r8")
	p("    jmp S_EILID_leave")
	p("")
	p("; ---- leave section: the only legal secure exit point ----")
	p("S_EILID_leave:")
	p("    ret                  ; returns to the instrumented call site")
	return b.String()
}
