package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"eilid/internal/apps"
	"eilid/internal/core"
	"eilid/internal/cpu"
	"eilid/internal/isa"
)

// eventRecorder captures the full architectural signal stream the CASU
// monitor taps, optionally forwarding to an inner watcher (the monitor
// itself on protected machines), plus the absolute cycle of every
// accepted interrupt. The fast paths must reproduce this stream
// bit-identically.
type eventRecorder struct {
	inner  cpu.Watcher
	clock  func() uint64
	events []string
	// IRQCycles is the absolute CPU cycle at each interrupt acceptance.
	irqCycles []uint64
}

func (r *eventRecorder) OnFetch(prev, pc uint16) {
	r.events = append(r.events, fmt.Sprintf("F %04x->%04x", prev, pc))
	if r.inner != nil {
		r.inner.OnFetch(prev, pc)
	}
}

func (r *eventRecorder) OnRead(pc, addr uint16, byteWide bool) {
	r.events = append(r.events, fmt.Sprintf("R %04x %04x %v", pc, addr, byteWide))
	if r.inner != nil {
		r.inner.OnRead(pc, addr, byteWide)
	}
}

func (r *eventRecorder) OnWrite(pc, addr uint16, byteWide bool, value uint16) {
	r.events = append(r.events, fmt.Sprintf("W %04x %04x %v %04x", pc, addr, byteWide, value))
	if r.inner != nil {
		r.inner.OnWrite(pc, addr, byteWide, value)
	}
}

func (r *eventRecorder) OnInterrupt(pc uint16, line int) {
	r.events = append(r.events, fmt.Sprintf("I %04x %d", pc, line))
	r.irqCycles = append(r.irqCycles, r.clock())
	if r.inner != nil {
		r.inner.OnInterrupt(pc, line)
	}
}

// runObserved executes one app build variant with the given machine
// configuration function applied before boot and returns every
// observable: inspection, run result, reset reasons, bus errors, and
// the recorded watcher/interrupt streams.
type observed struct {
	insp      *apps.Inspection
	res       core.RunResult
	err       error
	reasons   []string
	busErrors int
	events    []string
	irqCycles []uint64
}

func runObserved(t *testing.T, p *core.Pipeline, app apps.App, build *core.BuildResult, spec *core.DefenseSpec, configure func(*core.Machine)) observed {
	t.Helper()
	opts := core.MachineOptions{Config: p.Config(), Defense: spec}
	img := build.Original.Image
	if spec.Instrumented {
		opts.ROM = p.ROM()
		img = build.Instrumented.Image
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(img); err != nil {
		t.Fatal(err)
	}
	m.EnablePredecode()
	rec := &eventRecorder{inner: m.CPU.Watch, clock: func() uint64 { return m.CPU.Cycles }}
	m.CPU.Watch = rec
	if configure != nil {
		configure(m)
	}
	if app.UARTInput != "" {
		m.UART.Feed([]byte(app.UARTInput))
	}
	m.Boot()
	res, runErr := m.Run(app.MaxCycles)
	o := observed{
		insp:      apps.Inspect(m, res),
		res:       res,
		err:       runErr,
		busErrors: m.Space.BusErrors,
		events:    rec.events,
		irqCycles: rec.irqCycles,
	}
	for _, v := range m.ResetReasons {
		o.reasons = append(o.reasons, v.Error())
	}
	return o
}

// compareObserved asserts two runs are cycle-exactly identical in every
// observable the acceptance criteria name: cycles, instruction counts,
// bus errors, watcher event streams, interrupt arrival cycles, reset
// reasons, and the behavioural inspection.
func compareObserved(t *testing.T, what string, a, b observed) {
	t.Helper()
	if a.res != b.res {
		// RunResult contains a pointer field; compare the flat parts.
		if a.res.Cycles != b.res.Cycles || a.res.Insns != b.res.Insns ||
			a.res.Halted != b.res.Halted || a.res.ExitCode != b.res.ExitCode ||
			a.res.Resets != b.res.Resets {
			t.Errorf("%s: RunResult diverged: %+v vs %+v", what, a.res, b.res)
		}
	}
	if (a.err == nil) != (b.err == nil) || (a.err != nil && a.err.Error() != b.err.Error()) {
		t.Errorf("%s: run errors diverged: %v vs %v", what, a.err, b.err)
	}
	if a.busErrors != b.busErrors {
		t.Errorf("%s: bus errors %d vs %d", what, a.busErrors, b.busErrors)
	}
	if !reflect.DeepEqual(a.reasons, b.reasons) {
		t.Errorf("%s: reset reasons diverged: %v vs %v", what, a.reasons, b.reasons)
	}
	if !reflect.DeepEqual(a.irqCycles, b.irqCycles) {
		t.Errorf("%s: interrupt arrival cycles diverged: %v vs %v", what, a.irqCycles, b.irqCycles)
	}
	if len(a.events) != len(b.events) {
		t.Errorf("%s: watcher stream lengths diverged: %d vs %d", what, len(a.events), len(b.events))
	} else {
		for i := range a.events {
			if a.events[i] != b.events[i] {
				t.Errorf("%s: watcher stream diverged at event %d: %q vs %q", what, i, a.events[i], b.events[i])
				break
			}
		}
	}
	if err := apps.Equivalent(a.insp, b.insp); err != nil {
		t.Errorf("%s: observable behaviour diverged: %v", what, err)
	}
	if a.insp.Cycles != b.insp.Cycles || a.insp.Insns != b.insp.Insns || a.insp.Resets != b.insp.Resets {
		t.Errorf("%s: cycles/insns/resets %d/%d/%d vs %d/%d/%d", what,
			a.insp.Cycles, a.insp.Insns, a.insp.Resets, b.insp.Cycles, b.insp.Insns, b.insp.Resets)
	}
}

// TestFastSlowDifferential runs every Table IV application under every
// registered defense with all fast paths on (page-table bus dispatch,
// threaded-code executors, direct RAM access, deadline-batched
// peripheral ticking) and with every fast path forced to its reference
// implementation, and requires cycle-exact equivalence.
func TestFastSlowDifferential(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			build, err := p.Build(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range core.Defenses() {
				fast := runObserved(t, p, app, build, spec, nil)
				slow := runObserved(t, p, app, build, spec, func(m *core.Machine) { m.ForceSlowPaths() })
				compareObserved(t, fmt.Sprintf("%s defense=%s", app.Name, spec.Name), fast, slow)
			}
		})
	}
}

// TestTickEquivalence isolates the event-driven peripheral layer: only
// the ticking strategy differs (deadline-batched vs per-instruction),
// everything else stays on the fast path. Interrupt arrival cycles,
// RunResult and reset reasons must be byte-identical for every app ×
// defense.
func TestTickEquivalence(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			build, err := p.Build(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range core.Defenses() {
				batched := runObserved(t, p, app, build, spec, nil)
				eager := runObserved(t, p, app, build, spec, func(m *core.Machine) { m.EagerTicks = true })
				compareObserved(t, fmt.Sprintf("%s defense=%s", app.Name, spec.Name), batched, eager)
			}
		})
	}
}

// TestFastSlowSelfModifying extends the differential to self-modifying
// code, where the threaded-code cache must fall back to live decode
// after the write invalidates its entry.
func TestFastSlowSelfModifying(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	patch := isa.MustEncode(isa.Instruction{
		Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(10),
	})
	src := fmt.Sprintf(`
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #2, r12
loop:
site:
    inc r9
    mov #0x%04X, &site
    dec r12
    jnz loop
    mov #0, &0x00FC
spin:
    jmp spin
.org 0xFFFE
.word reset
`, patch[0])
	prog, err := p.BuildOriginal("selfmod-fast.s", src)
	if err != nil {
		t.Fatal(err)
	}

	run := func(slow bool) (core.RunResult, [16]uint16, int) {
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(prog.Image); err != nil {
			t.Fatal(err)
		}
		m.EnablePredecode()
		if slow {
			m.ForceSlowPaths()
		}
		m.Boot()
		res, err := m.Run(100_000)
		if err != nil {
			t.Fatalf("slow=%v: %v", slow, err)
		}
		return res, m.CPU.R, m.Space.BusErrors
	}

	fastRes, fastR, fastBE := run(false)
	slowRes, slowR, slowBE := run(true)
	if fastRes.Cycles != slowRes.Cycles || fastRes.Insns != slowRes.Insns {
		t.Errorf("self-modifying run diverged: %d/%d vs %d/%d cycles/insns",
			fastRes.Cycles, fastRes.Insns, slowRes.Cycles, slowRes.Insns)
	}
	if fastR != slowR {
		t.Errorf("register files diverged: %v vs %v", fastR, slowR)
	}
	if fastBE != slowBE {
		t.Errorf("bus errors diverged: %d vs %d", fastBE, slowBE)
	}
	if fastR[9] != 1 || fastR[10] != 1 {
		t.Errorf("patched loop executed wrong: r9=%d r10=%d, want 1/1", fastR[9], fastR[10])
	}
}

// TestTickEquivalenceAcrossMonitorReset pins the case the app matrix
// misses: a peripheral (TimerA) is mid-batch when the CASU monitor
// resets the device. Batched ticking must deliver every completed
// instruction's cycles before the reset re-anchors, so post-reset timer
// state matches per-instruction ticking exactly.
func TestTickEquivalenceAcrossMonitorReset(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Start the timer, spin long enough to leave it mid-period, then
	// trip the immutability monitor with a PMEM write.
	src := `
.org 0xE000
reset:
    mov #0x0A00, sp
    mov #1000, &0x0172
    mov #1, &0x0160
    mov #60, r10
busy:
    dec r10
    jnz busy
    mov #1, &0xE000
spin:
    jmp spin
.org 0xFFFE
.word reset
`
	prog, err := p.BuildOriginal("timer-reset.s", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(eager bool) (uint16, uint64, core.RunResult, int) {
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(prog.Image); err != nil {
			t.Fatal(err)
		}
		m.EnablePredecode()
		m.EagerTicks = eager
		m.Boot()
		res, err := m.RunUntilReset(1_000_000)
		if err != nil {
			t.Fatalf("eager=%v: %v", eager, err)
		}
		return m.TimerA.TAR, m.TimerA.Wraps, res, m.ResetCount
	}
	bTAR, bWraps, bRes, bResets := run(false)
	eTAR, eWraps, eRes, eResets := run(true)
	if bResets != 1 || eResets != 1 {
		t.Fatalf("expected exactly one monitor reset, got %d (batched) / %d (eager)", bResets, eResets)
	}
	if bTAR != eTAR || bWraps != eWraps {
		t.Errorf("timer state diverged across reset: TAR/Wraps %d/%d (batched) vs %d/%d (eager)",
			bTAR, bWraps, eTAR, eWraps)
	}
	if bRes.Cycles != eRes.Cycles || bRes.Insns != eRes.Insns {
		t.Errorf("RunResult diverged: %d/%d vs %d/%d cycles/insns", bRes.Cycles, bRes.Insns, eRes.Cycles, eRes.Insns)
	}
}
