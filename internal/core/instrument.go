package core

import (
	"fmt"
	"sort"
	"strings"

	"eilid/internal/asm"
	"eilid/internal/isa"
)

// InstrumentStats summarizes what EILIDinst inserted.
type InstrumentStats struct {
	DirectCalls   int // call #f sites given store_ra instrumentation (P1)
	Returns       int // ret sites given check_ra instrumentation (P1)
	ISRPrologues  int // ISR entries given store_rfi instrumentation (P2)
	ISREpilogues  int // reti sites given check_rfi instrumentation (P2)
	IndirectCalls int // call rN sites given check_ind instrumentation (P3)
	TableEntries  int // function addresses registered at main (P3)
	SpilledRegs   []isa.Reg
	InsertedLines int
	// Warnings carries the §VII semi-automatic diagnostics: indirect
	// jumps (outside EILID's protection, covered only by W⊕X) and direct
	// recursion (unsupported: it exhausts the fixed-size shadow stack).
	Warnings []string
}

// raPlaceholder is the return-address immediate used on the first
// instrumentation iteration, before a listing of the instrumented build
// exists. It is deliberately NOT constant-generator eligible so that the
// instruction size (and therefore the final layout) is identical once the
// real addresses are patched in.
const raPlaceholder = 0xAAAA

// Instrumenter rewrites application assembly per EILID's three security
// properties. It works from the original source text plus the original
// build's listing (for classification) and, from the second iteration on,
// the previous instrumented build's listing (for numeric return-address
// resolution) — the paper's Figure 2 dataflow.
type Instrumenter struct {
	cfg Config
	rom *SecureROM
}

// NewInstrumenter creates an instrumenter bound to a secure ROM build
// (the trampolines branch to its entry point).
func NewInstrumenter(cfg Config, rom *SecureROM) *Instrumenter {
	return &Instrumenter{cfg: cfg, rom: rom}
}

// classification of one original source line.
type lineClass uint8

const (
	classPlain lineClass = iota
	classDirectCall
	classIndirectCall
	classReturn
	classReti
	classMainLabel
	classISRLabel
)

// analysis is the per-source information the instrumenter derives from
// the original build.
type analysis struct {
	classes map[int]lineClass // original line -> class
	instr   map[int]isa.Instruction
	// functions to register in the forward-edge table, by label name, in
	// address order.
	functions []string
	// spills is the subset of {r4,r6,r7} the application itself uses and
	// that instrumentation blocks must therefore preserve.
	spills []isa.Reg
	// warnings are the §VII diagnostics raised during analysis.
	warnings []string
}

// isRet matches the emulated return (mov @sp+, pc).
func isRet(in isa.Instruction) bool {
	return in.Op == isa.MOV && !in.Byte &&
		in.Src.Mode == isa.ModeIndirectInc && in.Src.Reg == isa.SP &&
		in.Dst == isa.RegOp(isa.PC)
}

// analyze classifies every line of the original program.
func (ins *Instrumenter) analyze(orig *asm.Program) (*analysis, error) {
	a := &analysis{classes: map[int]lineClass{}, instr: map[int]isa.Instruction{}}
	lst := orig.Listing

	// Code-label addresses for function discovery.
	labelByAddr := map[uint16]string{}
	for _, name := range lst.FunctionSymbols() {
		labelByAddr[lst.Symbols[name]] = name
	}

	callTargets := map[string]bool{}
	addressTaken := map[string]bool{}
	usedReserved := map[isa.Reg]bool{}

	noteReg := func(o isa.Operand) {
		switch o.Mode {
		case isa.ModeRegister, isa.ModeIndexed, isa.ModeIndirect, isa.ModeIndirectInc:
			if o.Reg >= 4 && o.Reg <= 7 {
				usedReserved[o.Reg] = true
			}
		}
	}

	for _, e := range lst.Entries {
		if e.Label != "" {
			switch {
			case e.Label == ins.cfg.MainLabel:
				if e.IsInstr {
					return nil, fmt.Errorf("core: label %q must be on its own line for instrumentation", e.Label)
				}
				a.classes[e.Line] = classMainLabel
			case strings.HasSuffix(e.Label, ins.cfg.ISRSuffix):
				if e.IsInstr {
					return nil, fmt.Errorf("core: ISR label %q must be on its own line", e.Label)
				}
				a.classes[e.Line] = classISRLabel
			}
		}
		if !e.IsInstr {
			// Data words that hold a code address are address-taken
			// functions (jump/dispatch tables). Interrupt vectors are
			// excluded: they are consumed by hardware, never by indirect
			// calls, so ISR/reset entries stay out of the table.
			if e.Addr < ins.cfg.Layout.IVTStart {
				for _, w := range e.Words {
					if name, ok := labelByAddr[w]; ok {
						addressTaken[name] = true
					}
				}
			}
			continue
		}
		in := e.Instr
		noteReg(in.Src)
		if in.Op.IsTwoOperand() {
			noteReg(in.Dst)
		}
		switch {
		case in.Op == isa.CALL && in.Src.Mode == isa.ModeImmediate:
			a.classes[e.Line] = classDirectCall
			a.instr[e.Line] = in
			if name, ok := labelByAddr[in.Src.X]; ok {
				callTargets[name] = true
			}
		case in.Op == isa.CALL:
			// Register/indirect call: a forward edge to validate.
			a.classes[e.Line] = classIndirectCall
			a.instr[e.Line] = in
		case isRet(in):
			a.classes[e.Line] = classReturn
			a.instr[e.Line] = in
		case in.Op == isa.RETI:
			a.classes[e.Line] = classReti
			a.instr[e.Line] = in
		}
		// Any non-call immediate matching a code label address takes that
		// function's address (mov #fn, r13 ...).
		if in.Op != isa.CALL && in.Src.Mode == isa.ModeImmediate {
			if name, ok := labelByAddr[in.Src.X]; ok {
				addressTaken[name] = true
			}
		}
	}

	// Reserved-register policy: r5 is the shadow index and cannot be
	// spilled around blocks (its value must persist across them).
	for _, e := range lst.Entries {
		if !e.IsInstr {
			continue
		}
		check := func(o isa.Operand) bool {
			switch o.Mode {
			case isa.ModeRegister, isa.ModeIndexed, isa.ModeIndirect, isa.ModeIndirectInc:
				return o.Reg == RegIndex
			}
			return false
		}
		if check(e.Instr.Src) || (e.Instr.Op.IsTwoOperand() && check(e.Instr.Dst)) {
			return nil, fmt.Errorf("core: line %d uses r5, which EILID reserves for the shadow-stack index", e.Line)
		}
	}

	// Function table = direct call targets ∪ address-taken labels,
	// excluding main (never a legal indirect target in our model).
	set := map[string]bool{}
	for n := range callTargets {
		set[n] = true
	}
	for n := range addressTaken {
		set[n] = true
	}
	delete(set, ins.cfg.MainLabel)
	for n := range set {
		a.functions = append(a.functions, n)
	}
	sort.Slice(a.functions, func(i, j int) bool {
		ai, aj := lst.Symbols[a.functions[i]], lst.Symbols[a.functions[j]]
		if ai != aj {
			return ai < aj
		}
		return a.functions[i] < a.functions[j]
	})
	if len(a.functions) > ins.cfg.MaxFunctions {
		return nil, fmt.Errorf("core: %d functions exceed the table capacity %d",
			len(a.functions), ins.cfg.MaxFunctions)
	}

	for _, r := range []isa.Reg{RegSelector, RegArg0, RegArg1} {
		if usedReserved[r] {
			a.spills = append(a.spills, r)
		}
	}

	// §VII diagnostics. Indirect jumps (mov rN/@rN, pc other than the
	// emulated ret) bypass the shadow stack; EILID deliberately leaves
	// them to the W⊕X layer but warns, as the paper's instrumenter does.
	for _, e := range lst.Entries {
		if !e.IsInstr {
			continue
		}
		in := e.Instr
		if in.Op == isa.MOV && in.Dst == isa.RegOp(isa.PC) && !isRet(in) &&
			in.Src.Mode != isa.ModeImmediate && in.Src.Mode != isa.ModeSymbolic {
			a.warnings = append(a.warnings, fmt.Sprintf(
				"line %d: indirect jump (%s) is outside EILID's CFI; only W^X applies", e.Line, isa.Disassemble(in)))
		}
	}
	// Direct recursion: a call #f whose site lies inside f's own extent.
	// Function extents are approximated by the discovered function labels
	// (sorted by address); recursion overflows the fixed shadow stack at
	// run time, so the paper advises converting it to iteration.
	type extent struct {
		name   string
		lo, hi uint16
	}
	var extents []extent
	fnNames := append([]string(nil), a.functions...)
	if _, ok := lst.Symbols[ins.cfg.MainLabel]; ok {
		fnNames = append(fnNames, ins.cfg.MainLabel)
	}
	sort.Slice(fnNames, func(i, j int) bool { return lst.Symbols[fnNames[i]] < lst.Symbols[fnNames[j]] })
	for i, name := range fnNames {
		hi := uint16(0xFFFF)
		if i+1 < len(fnNames) {
			hi = lst.Symbols[fnNames[i+1]] - 1
		}
		extents = append(extents, extent{name, lst.Symbols[name], hi})
	}
	for _, e := range lst.Entries {
		if !e.IsInstr || e.Instr.Op != isa.CALL || e.Instr.Src.Mode != isa.ModeImmediate {
			continue
		}
		target := e.Instr.Src.X
		for _, x := range extents {
			if target == x.lo && e.Addr >= x.lo && e.Addr <= x.hi {
				a.warnings = append(a.warnings, fmt.Sprintf(
					"line %d: direct recursion into %q; the shadow stack holds %d frames and will reset on overflow",
					e.Line, x.name, ins.cfg.MaxShadowEntries))
			}
		}
	}
	return a, nil
}

// raResolver supplies the numeric return address for the direct call that
// will sit at the given line of the INSTRUMENTED file; ok=false on the
// first iteration (placeholder is used instead).
type raResolver func(instrLine int) (uint16, bool)

// emitState accumulates the instrumented source.
type emitState struct {
	lines []string
	orig  int // original lines consumed so far
	stats InstrumentStats
}

func (s *emitState) emit(format string, args ...interface{}) {
	s.lines = append(s.lines, fmt.Sprintf(format, args...))
}

// nextLine is the 1-based line number the next emit will occupy.
func (s *emitState) nextLine() int { return len(s.lines) + 1 }

// instrument generates the instrumented source. The structure (line
// layout, instruction sizes) is identical regardless of the resolver, so
// iterating the build converges after one re-resolution.
func (ins *Instrumenter) instrument(origSrc string, a *analysis, resolve raResolver) (string, InstrumentStats) {
	st := &emitState{}
	spill := a.spills

	pushSpills := func() {
		for _, r := range spill {
			st.emit("    push %s ; EILID spill", r)
			st.stats.InsertedLines++
		}
	}
	popSpills := func() {
		for i := len(spill) - 1; i >= 0; i-- {
			st.emit("    pop %s ; EILID spill", spill[i])
			st.stats.InsertedLines++
		}
	}

	for _, raw := range strings.Split(origSrc, "\n") {
		// The original line number is implied by iteration order; the
		// classification map is keyed on it.
		st.orig++
		origLine := st.orig

		switch a.classes[origLine] {
		case classDirectCall:
			pushSpills()
			raLine := st.nextLine()
			// The original call will land after: mov(4) + call(4) +
			// len(spill) pops (2 each). Its instrumented line number:
			callLine := raLine + 2 + len(spill)
			ra, ok := resolve(callLine)
			if !ok {
				ra = raPlaceholder
			}
			st.emit("    mov #0x%04x, r6 ; EILID: return address of next call", ra)
			st.emit("    call #NS_EILID_store_ra")
			st.stats.InsertedLines += 2
			popSpills()
			st.lines = append(st.lines, raw)
			st.stats.DirectCalls++

		case classIndirectCall:
			// Indirect calls are still calls: P1 protects their return
			// (store_ra) and P3 validates the forward edge (check_ind).
			in := a.instr[origLine]
			pushSpills()
			raLine := st.nextLine()
			callLine := raLine + 4 + len(spill)
			ra, ok := resolve(callLine)
			if !ok {
				ra = raPlaceholder
			}
			st.emit("    mov #0x%04x, r6 ; EILID: return address of next call", ra)
			st.emit("    call #NS_EILID_store_ra")
			st.emit("    mov %s, r6 ; EILID: indirect target", in.Src)
			st.emit("    call #NS_EILID_check_ind")
			st.stats.InsertedLines += 4
			popSpills()
			st.lines = append(st.lines, raw)
			st.stats.IndirectCalls++

		case classReturn:
			pushSpills()
			off := 2 * len(spill)
			if off == 0 {
				st.emit("    mov @sp, r6 ; EILID: return address on stack")
			} else {
				st.emit("    mov %d(sp), r6 ; EILID: return address on stack", off)
			}
			st.emit("    call #NS_EILID_check_ra")
			st.stats.InsertedLines += 2
			popSpills()
			st.lines = append(st.lines, raw)
			st.stats.Returns++

		case classReti:
			// Epilogue: context sits above the three reserved-register
			// saves installed by the prologue.
			st.emit("    mov 8(sp), r6 ; EILID: saved return address")
			st.emit("    mov 6(sp), r7 ; EILID: saved status register")
			st.emit("    call #NS_EILID_check_rfi")
			st.emit("    pop r7 ; EILID ISR restore")
			st.emit("    pop r6 ; EILID ISR restore")
			st.emit("    pop r4 ; EILID ISR restore")
			st.stats.InsertedLines += 6
			st.lines = append(st.lines, raw)
			st.stats.ISREpilogues++

		case classMainLabel:
			st.lines = append(st.lines, raw)
			st.emit("    call #NS_EILID_init ; EILID: reset shadow state")
			st.stats.InsertedLines++
			for _, fn := range a.functions {
				st.emit("    mov #%s, r6 ; EILID: register function entry", fn)
				st.emit("    call #NS_EILID_store_ind")
				st.stats.InsertedLines += 2
				st.stats.TableEntries++
			}

		case classISRLabel:
			st.lines = append(st.lines, raw)
			// Save the reserved registers first: an interrupt may land in
			// the middle of an instrumentation block whose r4/r6/r7 are
			// live. Then capture the interrupt context (return address at
			// 8(sp), SR at 6(sp) above the three saves).
			st.emit("    push r4 ; EILID ISR save")
			st.emit("    push r6 ; EILID ISR save")
			st.emit("    push r7 ; EILID ISR save")
			st.emit("    mov 8(sp), r6 ; EILID: interrupt return address")
			st.emit("    mov 6(sp), r7 ; EILID: interrupt status register")
			st.emit("    call #NS_EILID_store_rfi")
			st.stats.InsertedLines += 6
			st.stats.ISRPrologues++

		default:
			st.lines = append(st.lines, raw)
		}
	}

	// Gateway trampolines (NS_EILID_*): the non-secure stubs that select
	// the S_EILID function in r4 and branch to the single secure entry
	// point. They live at a fixed org at the top of user PMEM.
	st.lines = append(st.lines, ins.gatewayLines()...)

	st.stats.SpilledRegs = spill
	st.stats.Warnings = append([]string(nil), a.warnings...)
	return strings.Join(st.lines, "\n") + "\n", st.stats
}

// gatewayLines emits the NS_EILID_* stub block.
func (ins *Instrumenter) gatewayLines() []string {
	lines := []string{
		"",
		"; ---- EILID non-secure gateway (generated) ----",
		fmt.Sprintf(".equ S_EILID_entry, 0x%04x", ins.rom.Entry),
		fmt.Sprintf(".org 0x%04x", ins.cfg.TrampolineOrg),
	}
	for sel, name := range trampolineNames {
		lines = append(lines,
			name+":",
			fmt.Sprintf("    mov #%d, r4", sel),
			"    br #S_EILID_entry",
		)
	}
	return lines
}

// GatewaySource returns the NS_EILID_* gateway block as assembly text.
// Hand-written firmware (tests, the EILIDsw conformance driver) appends
// it to call the trusted functions without going through the pipeline.
func (ins *Instrumenter) GatewaySource() string {
	return strings.Join(ins.gatewayLines(), "\n") + "\n"
}

// Sites returns the total number of instrumented locations.
func (s *InstrumentStats) Sites() int {
	return s.DirectCalls + s.Returns + s.ISRPrologues + s.ISREpilogues + s.IndirectCalls
}
