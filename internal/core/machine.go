package core

import (
	"errors"
	"fmt"

	"eilid/internal/asm"
	"eilid/internal/casu"
	"eilid/internal/cpu"
	"eilid/internal/isa"
	"eilid/internal/mem"
	"eilid/internal/periph"
)

// SimCtlAddr is the simulation-control register: firmware writes any
// value to signal completion (the simulated counterpart of the testbench
// "end of simulation" GPIO used by openMSP430 benchmarks). The low byte
// is the exit code.
const SimCtlAddr = 0x00FC

// simCtl latches the halt request.
type simCtl struct {
	halted bool
	code   uint16
}

func (s *simCtl) LoadWord(addr uint16) uint16 { return s.code }
func (s *simCtl) StoreWord(addr uint16, v uint16) {
	s.halted = true
	s.code = v
}

// Machine is a complete simulated EILID device: CPU, memory, peripherals,
// the CASU/EILID hardware monitor and the secure ROM. With Protected =
// false it models the unprotected baseline used in the paper's attack
// comparisons (same hardware, monitor absent).
type Machine struct {
	Space  *mem.Space
	CPU    *cpu.CPU
	IRQ    *periph.IRQController
	Port1  *periph.GPIO
	Port2  *periph.GPIO
	TimerA *periph.Timer
	ADC    *periph.ADC
	UART   *periph.UART
	LCD    *periph.LCD
	Ranger *periph.Ultrasonic
	Latch  *periph.ViolationLatch

	// Monitor is nil on unprotected machines.
	Monitor *casu.Monitor

	// ResetCount counts hardware-triggered resets (violations).
	ResetCount int
	// ResetReasons records the violation behind each reset.
	ResetReasons []casu.Violation

	ctl *simCtl
}

// MachineOptions configures NewMachine.
type MachineOptions struct {
	Config Config
	// ROM is the EILIDsw build; required when Protected.
	ROM *SecureROM
	// Protected enables the CASU/EILID hardware monitor and loads the
	// secure ROM.
	Protected bool
}

// NewMachine assembles a device.
func NewMachine(opts MachineOptions) (*Machine, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	space, err := mem.NewSpace(cfg.Layout)
	if err != nil {
		return nil, err
	}
	m := &Machine{Space: space, IRQ: &periph.IRQController{}, ctl: &simCtl{}}
	m.CPU = cpu.New(space)
	// Every backing-store write (CPU stores, image loads, reset clears)
	// stales the decode cache for the touched window; a no-op until a
	// cache is installed via EnablePredecode/UsePredecoded.
	space.WriteHook = m.CPU.InvalidateCode

	m.Port1 = periph.NewGPIO(periph.P1INAddr, m.IRQ, periph.IRQPort1)
	m.Port2 = periph.NewGPIO(periph.P2INAddr, m.IRQ, periph.IRQPort1)
	m.Port1.Clock = func() uint64 { return m.CPU.Cycles }
	m.Port2.Clock = func() uint64 { return m.CPU.Cycles }
	m.TimerA = periph.NewTimer(0x0160, m.IRQ, periph.IRQTimerA)
	m.ADC = periph.NewADC(m.IRQ, periph.IRQADC)
	m.UART = periph.NewUART(m.IRQ, periph.IRQUART)
	m.LCD = periph.NewLCD()
	m.Ranger = periph.NewUltrasonic(m.IRQ, periph.IRQUltrasonic)
	m.Latch = &periph.ViolationLatch{}

	// Default sensor wiring matching the benchmark applications:
	// channel 0 = ambient light, 1 = temperature, 2 = flame detector.
	m.ADC.Attach(0, periph.LightSensorModel)
	m.ADC.Attach(1, periph.TempSensorModel)
	m.ADC.Attach(2, periph.FlameSensorModel)
	m.Ranger.Distance = periph.RangerDistanceModel

	type span interface {
		Span() (uint16, uint16)
	}
	for _, dev := range []struct {
		s span
		h mem.Handler
	}{
		{m.Port1, m.Port1}, {m.Port2, m.Port2}, {m.TimerA, m.TimerA},
		{m.ADC, m.ADC}, {m.UART, m.UART}, {m.LCD, m.LCD},
		{m.Ranger, m.Ranger}, {m.Latch, m.Latch},
	} {
		lo, hi := dev.s.Span()
		if err := space.Map(lo, hi, dev.h); err != nil {
			return nil, err
		}
	}
	if err := space.Map(SimCtlAddr, SimCtlAddr+1, m.ctl); err != nil {
		return nil, err
	}

	if opts.Protected {
		if opts.ROM == nil {
			return nil, errors.New("core: protected machine requires the EILIDsw ROM")
		}
		if err := opts.ROM.Program.Image.WriteTo(space); err != nil {
			return nil, fmt.Errorf("core: loading EILIDsw: %w", err)
		}
		m.Monitor = casu.NewMonitor(casu.Config{
			Layout:              cfg.Layout,
			EntryPoint:          opts.ROM.Entry,
			ExitPoint:           opts.ROM.Exit,
			ViolationAddr:       cfg.ViolationAddr,
			EnforceSecureRegion: true,
		})
		m.CPU.Watch = m.Monitor
		m.CPU.IRQ = &casu.GateIRQ{
			Inner:  m.IRQ,
			Layout: cfg.Layout,
			PCNow:  m.CPU.PC,
		}
	} else {
		m.CPU.IRQ = m.IRQ
	}
	return m, nil
}

// LoadFirmware programs an application image into memory (the flashing
// step before boot; not subject to run-time immutability).
func (m *Machine) LoadFirmware(img *asm.Image) error {
	return img.WriteTo(m.Space)
}

// Boot resets the CPU through the reset vector.
func (m *Machine) Boot() {
	m.IRQ.Reset()
	m.Latch.Reset()
	m.ctl.halted = false
	if m.Monitor != nil {
		m.Monitor.Clear()
	}
	m.CPU.Reset(m.Space.Layout.ResetVector())
}

// EnablePredecode snapshots the fetchable upper memory (user PMEM
// through the IVT) into an immutable decode cache and installs it, so
// Step skips isa.Decode on warm paths. Call it after LoadFirmware (the
// snapshot must see the final code contents); writes that land in code
// after this point are tracked and force a live re-decode. The returned
// cache may be shared, via UsePredecoded, with any machine whose code
// contents are byte-identical — the fleet runner's per-ROM artifact.
func (m *Machine) EnablePredecode() *isa.Predecoded {
	// Only cache addresses whose whole fetch window stays in RAM-backed
	// regions: a window that strays into the unmapped hole between the
	// secure ROM and the IVT must keep the live path, whose speculative
	// bus reads there return 0xFFFF and count bus errors.
	l := m.Space.Layout
	ramBacked := func(addr uint16) bool {
		switch l.RegionOf(addr) {
		case mem.RegionPMEM, mem.RegionSecureROM, mem.RegionIVT:
			return true
		}
		return false
	}
	p := isa.Predecode(m.Space.PeekWord, l.PMEMStart, 0xFFFF, ramBacked)
	m.CPU.SetPredecoded(p)
	return p
}

// UsePredecoded installs a cache previously built by EnablePredecode on
// a machine loaded with byte-identical code. Installing asserts the
// cache matches this machine's memory right now.
func (m *Machine) UsePredecoded(p *isa.Predecoded) { m.CPU.SetPredecoded(p) }

// Halted reports whether firmware wrote the simulation-control register.
func (m *Machine) Halted() bool { return m.ctl.halted }

// ExitCode returns the value written to the simulation-control register.
func (m *Machine) ExitCode() uint16 { return m.ctl.code }

// deviceReset is the hardware response to a monitor violation: volatile
// memory cleared, CPU rebooted, peripherals' interrupt state dropped.
// Program memory and the secure ROM survive (they are immutable anyway).
func (m *Machine) deviceReset(v casu.Violation) {
	m.ResetCount++
	m.ResetReasons = append(m.ResetReasons, v)
	m.Space.Reset()
	m.Boot()
}

// Step executes one CPU step, ticks the peripherals and applies the
// reset-on-violation rule. It returns the cycles consumed.
func (m *Machine) Step() (int, error) {
	n, err := m.CPU.Step()
	// The monitor outranks the fault path: if the instruction tripped a
	// violation (even one that also confused the decoder, e.g. a jump
	// into data), the hardware resets before anything else happens.
	if m.Monitor != nil {
		if v := m.Monitor.Violation(); v != nil {
			m.deviceReset(*v)
			return n, nil
		}
	}
	if err != nil {
		// A decode fault on real hardware executes garbage; under EILID
		// the W⊕X/immutability monitors normally fire first. Surface it.
		return n, err
	}
	m.TimerA.Tick(n)
	m.ADC.Tick(n)
	m.Ranger.Tick(n)
	return n, nil
}

// RunResult summarizes a Run.
type RunResult struct {
	Cycles     uint64 // cycles consumed during this run
	Insns      uint64
	Halted     bool
	ExitCode   uint16
	Resets     int // resets that occurred during this run
	LastReason *casu.Violation
}

// ErrCycleBudget is returned when Run hits maxCycles before the firmware
// halts.
var ErrCycleBudget = errors.New("core: cycle budget exhausted before halt")

// Run executes until the firmware halts via the simulation-control
// register, a fault occurs, or maxCycles elapse.
func (m *Machine) Run(maxCycles uint64) (RunResult, error) {
	startCycles, startInsns, startResets := m.CPU.Cycles, m.CPU.Insns, m.ResetCount
	// A zero budget can execute nothing: report it as an exhausted
	// budget unconditionally, so callers can tell it apart from a clean
	// halt even when a previous run already halted the firmware.
	if maxCycles == 0 {
		return m.result(startCycles, startInsns, startResets), ErrCycleBudget
	}
	for !m.ctl.halted {
		if m.CPU.Cycles-startCycles >= maxCycles {
			return m.result(startCycles, startInsns, startResets), ErrCycleBudget
		}
		if _, err := m.Step(); err != nil {
			return m.result(startCycles, startInsns, startResets), err
		}
	}
	return m.result(startCycles, startInsns, startResets), nil
}

// RunUntilReset executes until a monitor reset happens (attack testing),
// the firmware halts, or maxCycles elapse.
func (m *Machine) RunUntilReset(maxCycles uint64) (RunResult, error) {
	startCycles, startInsns, startResets := m.CPU.Cycles, m.CPU.Insns, m.ResetCount
	if maxCycles == 0 {
		return m.result(startCycles, startInsns, startResets), ErrCycleBudget
	}
	for !m.ctl.halted && m.ResetCount == startResets {
		if m.CPU.Cycles-startCycles >= maxCycles {
			return m.result(startCycles, startInsns, startResets), ErrCycleBudget
		}
		if _, err := m.Step(); err != nil {
			return m.result(startCycles, startInsns, startResets), err
		}
	}
	return m.result(startCycles, startInsns, startResets), nil
}

func (m *Machine) result(c0, i0 uint64, r0 int) RunResult {
	res := RunResult{
		Cycles:   m.CPU.Cycles - c0,
		Insns:    m.CPU.Insns - i0,
		Halted:   m.ctl.halted,
		ExitCode: m.ctl.code,
		Resets:   m.ResetCount - r0,
	}
	if len(m.ResetReasons) > 0 && res.Resets > 0 {
		v := m.ResetReasons[len(m.ResetReasons)-1]
		res.LastReason = &v
	}
	return res
}

// ShadowEntries reads the live shadow stack (for tests and debugging; a
// real device cannot do this from non-secure code, but the simulator's
// test harness is "outside the universe").
func (m *Machine) ShadowEntries(cfg Config) []uint16 {
	idx := m.CPU.R[RegIndex]
	if int(idx) > cfg.MaxShadowEntries {
		idx = uint16(cfg.MaxShadowEntries)
	}
	out := make([]uint16, idx)
	for i := range out {
		out[i] = m.Space.LoadWord(cfg.ShadowBase + uint16(2*i))
	}
	return out
}

// FunctionTable reads the live forward-edge table.
func (m *Machine) FunctionTable(cfg Config) []uint16 {
	n := m.Space.LoadWord(cfg.TableCountAddr)
	if int(n) > cfg.MaxFunctions {
		n = uint16(cfg.MaxFunctions)
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = m.Space.LoadWord(cfg.TableBase + uint16(2*i))
	}
	return out
}
