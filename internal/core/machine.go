package core

import (
	"errors"
	"fmt"

	"eilid/internal/asm"
	"eilid/internal/casu"
	"eilid/internal/cpu"
	"eilid/internal/isa"
	"eilid/internal/mem"
	"eilid/internal/periph"
)

// SimCtlAddr is the simulation-control register: firmware writes any
// value to signal completion (the simulated counterpart of the testbench
// "end of simulation" GPIO used by openMSP430 benchmarks). The low byte
// is the exit code.
const SimCtlAddr = 0x00FC

// simCtl latches the halt request.
type simCtl struct {
	halted bool
	code   uint16
}

func (s *simCtl) LoadWord(addr uint16) uint16 { return s.code }
func (s *simCtl) StoreWord(addr uint16, v uint16) {
	s.halted = true
	s.code = v
}

// Machine is a complete simulated device: CPU, memory, peripherals, and
// whichever defense monitor the configured DefenseSpec wires to the
// buses (the CASU/EILID monitor with its secure ROM, a hardware shadow
// stack, critical-variable watchpoints, or — the baseline of the paper's
// attack comparisons — no monitor at all on identical hardware).
type Machine struct {
	Space  *mem.Space
	CPU    *cpu.CPU
	IRQ    *periph.IRQController
	Port1  *periph.GPIO
	Port2  *periph.GPIO
	TimerA *periph.Timer
	ADC    *periph.ADC
	UART   *periph.UART
	LCD    *periph.LCD
	Ranger *periph.Ultrasonic
	Latch  *periph.ViolationLatch

	// Monitor is the wired defense monitor; nil on baseline machines.
	Monitor casu.Defense
	// defense is the spec the machine was assembled from.
	defense *DefenseSpec

	// ResetCount counts hardware-triggered resets (violations).
	ResetCount int
	// ResetReasons records the violations behind the first
	// MaxResetReasons resets since power-on; ResetCount keeps the total,
	// so a reset-storm attack cannot grow the machine without bound.
	ResetReasons []casu.Violation
	// lastReason is the most recent violation, tracked separately so
	// RunResult.LastReason stays truthful once ResetReasons is full.
	lastReason casu.Violation

	// snap is the sealed memory image Recycle restores; nil until
	// Snapshot is called.
	snap *mem.Snapshot

	// EagerTicks forces per-instruction peripheral ticking (the
	// reference semantics) instead of deadline-batched ticking in
	// Run/RunUntilReset. The two are cycle-exactly equivalent; the
	// differential tests in this package assert that.
	EagerTicks bool

	ctl *simCtl

	// blockExec gates basic-block execution in the run loop; pre is the
	// installed decode cache the block table is fused from.
	blockExec bool
	pre       *isa.Predecoded

	// cycled are the clocked peripherals the run loop batches, in the
	// order per-instruction ticking historically advanced them.
	cycled []periph.Cycled
	// tickAt is the earliest absolute cycle any peripheral next acts on
	// its own; hGen snapshots Space.HandlerStores so a register write
	// that may move a deadline forces a resync.
	tickAt uint64
	hGen   uint64
}

// MachineOptions configures NewMachine.
type MachineOptions struct {
	Config Config
	// ROM is the EILIDsw build; required when the defense is
	// instrumented (DefenseSpec.Instrumented).
	ROM *SecureROM
	// Defense selects the monitor to wire in; nil means
	// DefenseBaseline (no monitor).
	Defense *DefenseSpec
}

// NewMachine assembles a device.
func NewMachine(opts MachineOptions) (*Machine, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	space, err := mem.NewSpace(cfg.Layout)
	if err != nil {
		return nil, err
	}
	m := &Machine{Space: space, IRQ: &periph.IRQController{}, ctl: &simCtl{}, blockExec: true}
	m.CPU = cpu.New(space)
	// Every backing-store write (CPU stores, image loads, reset clears)
	// stales the decode cache for the touched window; a no-op until a
	// cache is installed via EnablePredecode/UsePredecoded.
	space.WriteHook = m.CPU.InvalidateCode

	clock := func() uint64 { return m.CPU.Cycles }
	m.Port1 = periph.NewGPIO(periph.P1INAddr, m.IRQ, periph.IRQPort1)
	m.Port2 = periph.NewGPIO(periph.P2INAddr, m.IRQ, periph.IRQPort1)
	m.Port1.Clock = clock
	m.Port2.Clock = clock
	m.TimerA = periph.NewTimer(0x0160, m.IRQ, periph.IRQTimerA)
	m.ADC = periph.NewADC(m.IRQ, periph.IRQADC)
	m.UART = periph.NewUART(m.IRQ, periph.IRQUART)
	m.LCD = periph.NewLCD()
	m.Ranger = periph.NewUltrasonic(m.IRQ, periph.IRQUltrasonic)
	m.Latch = &periph.ViolationLatch{}
	m.TimerA.Clock = clock
	m.ADC.Clock = clock
	m.Ranger.Clock = clock
	m.cycled = []periph.Cycled{m.TimerA, m.ADC, m.Ranger}

	// Default sensor wiring matching the benchmark applications:
	// channel 0 = ambient light, 1 = temperature, 2 = flame detector.
	m.ADC.Attach(0, periph.LightSensorModel)
	m.ADC.Attach(1, periph.TempSensorModel)
	m.ADC.Attach(2, periph.FlameSensorModel)
	m.Ranger.Distance = periph.RangerDistanceModel

	type span interface {
		Span() (uint16, uint16)
	}
	for _, dev := range []struct {
		s span
		h mem.Handler
	}{
		{m.Port1, m.Port1}, {m.Port2, m.Port2}, {m.TimerA, m.TimerA},
		{m.ADC, m.ADC}, {m.UART, m.UART}, {m.LCD, m.LCD},
		{m.Ranger, m.Ranger}, {m.Latch, m.Latch},
	} {
		lo, hi := dev.s.Span()
		if err := space.Map(lo, hi, dev.h); err != nil {
			return nil, err
		}
	}
	if err := space.Map(SimCtlAddr, SimCtlAddr+1, m.ctl); err != nil {
		return nil, err
	}

	spec := opts.Defense
	if spec == nil {
		spec = DefenseBaseline
	}
	m.defense = spec
	if spec.Instrumented {
		if opts.ROM == nil {
			return nil, fmt.Errorf("core: defense %q requires the EILIDsw ROM", spec.Name)
		}
		if err := opts.ROM.Program.Image.WriteTo(space); err != nil {
			return nil, fmt.Errorf("core: loading EILIDsw: %w", err)
		}
	}
	if spec.New != nil {
		m.Monitor = spec.New(DefenseEnv{Config: cfg, ROM: opts.ROM, Peek: space.PeekWord})
		m.CPU.Watch = m.Monitor
	}
	if spec.GateIRQ {
		m.CPU.IRQ = &casu.GateIRQ{
			Inner:  m.IRQ,
			Layout: cfg.Layout,
			PCNow:  m.CPU.PC,
		}
	} else {
		m.CPU.IRQ = m.IRQ
	}
	return m, nil
}

// Defense returns the spec the machine was assembled from.
func (m *Machine) Defense() *DefenseSpec { return m.defense }

// DefenseName returns the registry name of the machine's defense.
func (m *Machine) DefenseName() string { return m.defense.Name }

// Instrumented reports whether the machine runs the EILID-instrumented
// build with the secure ROM loaded.
func (m *Machine) Instrumented() bool { return m.defense.Instrumented }

// LoadFirmware programs an application image into memory (the flashing
// step before boot; not subject to run-time immutability).
func (m *Machine) LoadFirmware(img *asm.Image) error {
	return img.WriteTo(m.Space)
}

// Boot resets the CPU through the reset vector.
func (m *Machine) Boot() {
	m.IRQ.Reset()
	m.Latch.Reset()
	m.ctl.halted = false
	if m.Monitor != nil {
		m.Monitor.Clear()
	}
	m.CPU.Reset(m.Space.Layout.ResetVector())
	// The 4-cycle reset latency is not delivered to peripherals (it
	// never was under per-instruction ticking, whose cycles come only
	// from executed instructions); re-anchor past it.
	m.resyncPeriph()
}

// syncPeriph ticks every clocked peripheral up to the CPU's cycle
// counter and refreshes the batch deadline.
func (m *Machine) syncPeriph() {
	now := m.CPU.Cycles
	for _, p := range m.cycled {
		p.SyncTo(now)
	}
	m.refreshDeadline()
}

// syncPeriphTo ticks every clocked peripheral up to the given cycle
// without refreshing the deadline — the run loop uses it to deliver the
// completed instructions of a batch before a device reset re-anchors.
func (m *Machine) syncPeriphTo(cycle uint64) {
	for _, p := range m.cycled {
		p.SyncTo(cycle)
	}
}

// resyncPeriph re-anchors every clocked peripheral at the CPU's cycle
// counter without ticking the elapsed time — used where per-instruction
// ticking historically dropped cycles (device resets, CPU faults).
func (m *Machine) resyncPeriph() {
	now := m.CPU.Cycles
	for _, p := range m.cycled {
		p.Resync(now)
	}
	m.refreshDeadline()
}

func (m *Machine) refreshDeadline() {
	m.hGen = m.Space.HandlerStores()
	d := uint64(periph.NoEvent)
	for _, p := range m.cycled {
		if e := p.NextEvent(); e < d {
			d = e
		}
	}
	m.tickAt = d
}

// EnablePredecode snapshots the fetchable upper memory (user PMEM
// through the IVT) into an immutable decode cache and installs it, so
// Step skips isa.Decode on warm paths. Call it after LoadFirmware (the
// snapshot must see the final code contents); writes that land in code
// after this point are tracked and force a live re-decode. The returned
// cache may be shared, via UsePredecoded, with any machine whose code
// contents are byte-identical — the fleet runner's per-ROM artifact.
func (m *Machine) EnablePredecode() *isa.Predecoded {
	// Only cache addresses whose whole fetch window stays in RAM-backed
	// regions: a window that strays into the unmapped hole between the
	// secure ROM and the IVT must keep the live path, whose speculative
	// bus reads there return 0xFFFF and count bus errors.
	l := m.Space.Layout
	ramBacked := func(addr uint16) bool {
		switch l.RegionOf(addr) {
		case mem.RegionPMEM, mem.RegionSecureROM, mem.RegionIVT:
			return true
		}
		return false
	}
	p := isa.Predecode(m.Space.PeekWord, l.PMEMStart, 0xFFFF, ramBacked)
	m.UsePredecoded(p)
	return p
}

// UsePredecoded installs a cache previously built by EnablePredecode on
// a machine loaded with byte-identical code. Installing asserts the
// cache matches this machine's memory right now. The cache's fused
// basic-block table (Predecoded.Blocks — built once, shared by every
// machine holding the same cache) is installed alongside it unless
// SetBlockExec(false) disabled block execution.
func (m *Machine) UsePredecoded(p *isa.Predecoded) {
	m.pre = p
	m.CPU.SetPredecoded(p)
	m.wireBlocks()
}

// wireBlocks pairs the CPU's block table with the installed decode
// cache according to the blockExec switch.
func (m *Machine) wireBlocks() {
	if m.blockExec && m.pre != nil {
		m.CPU.SetBlocks(m.pre.Blocks())
	} else {
		m.CPU.SetBlocks(nil)
	}
}

// SetBlockExec enables (the default) or disables basic-block execution
// in the run loop, reverting the hot loop to per-instruction dispatch
// over the same predecoded entries — the reference configuration the
// block differential tests compare against. Execution is bit-identical
// either way.
func (m *Machine) SetBlockExec(on bool) {
	m.blockExec = on
	m.wireBlocks()
}

// ForceSlowPaths reverts every hot-path optimization to its reference
// implementation: linear bus dispatch, the generic (non-threaded)
// interpreter with interface bus accesses, and per-instruction
// peripheral ticking. Execution must be cycle-exactly identical either
// way; the fast/slow differential tests run machines in this mode.
func (m *Machine) ForceSlowPaths() {
	m.Space.SetLinearDispatch(true)
	m.CPU.SetFastPaths(false)
	m.EagerTicks = true
	m.SetBlockExec(false)
}

// Snapshot seals the machine's current memory image as its recycle
// point. Call it on a fully constructed machine — firmware loaded,
// decode cache installed — so the image matches any installed cache:
// Recycle restores exactly this image and asserts the cache is valid
// against it without re-scanning anything.
func (m *Machine) Snapshot() {
	m.snap = m.Space.Snapshot()
}

// ErrNoSnapshot is returned by Recycle on a machine that was never
// sealed with Snapshot.
var ErrNoSnapshot = errors.New("core: machine has no sealed snapshot to recycle to")

// Recycle returns the machine to the sealed snapshot state as if it had
// been power-cycled and re-flashed with the snapshot image: memory is
// restored by copy (no re-zeroing, no re-mapping), the CPU, interrupt
// controller, violation latch and monitor return to power-on state, all
// peripherals power on (keeping their attached sensor models), and the
// predecode/block invalidation state is reset cheaply (generation bump
// plus dirty-bitmap drop) without discarding the shared per-ROM decode
// cache or block table. A recycled machine is observationally identical
// to a freshly constructed one carrying the same image — the recycle
// differential suites pin that, byte for byte, for every app × variant
// × scenario.
func (m *Machine) Recycle() error {
	if m.snap == nil {
		return ErrNoSnapshot
	}
	if err := m.Space.Restore(m.snap); err != nil {
		return err
	}
	// Restore bypasses the WriteHook by contract: the restored bytes are
	// the image the installed cache was built from, so staleness resets
	// wholesale instead of word by word.
	m.CPU.ResetCodeState()
	m.CPU.PowerOn()
	m.IRQ.Reset()
	m.Latch.Reset()
	if m.Monitor != nil {
		m.Monitor.PowerOn()
	}
	m.ResetCount = 0
	m.ResetReasons = nil
	m.lastReason = casu.Violation{}
	m.ctl.halted = false
	m.ctl.code = 0
	m.Port1.PowerOn()
	m.Port2.PowerOn()
	m.TimerA.PowerOn()
	m.ADC.PowerOn()
	m.UART.PowerOn()
	m.LCD.PowerOn()
	m.Ranger.PowerOn()
	m.resyncPeriph()
	return nil
}

// Halted reports whether firmware wrote the simulation-control register.
func (m *Machine) Halted() bool { return m.ctl.halted }

// ExitCode returns the value written to the simulation-control register.
func (m *Machine) ExitCode() uint16 { return m.ctl.code }

// MaxResetReasons bounds how many per-reset violation records a machine
// retains. ResetCount still counts every reset; only the first
// MaxResetReasons reasons (plus the most recent one, for
// RunResult.LastReason) are kept, so a reset storm runs in constant
// memory at fleet scale.
const MaxResetReasons = 8

// deviceReset is the hardware response to a monitor violation: volatile
// memory cleared, CPU rebooted, peripherals' interrupt state dropped.
// Program memory and the secure ROM survive (they are immutable anyway).
func (m *Machine) deviceReset(v casu.Violation) {
	m.ResetCount++
	m.lastReason = v
	if len(m.ResetReasons) < MaxResetReasons {
		m.ResetReasons = append(m.ResetReasons, v)
	}
	m.Space.Reset()
	m.Boot()
}

// Step executes one CPU step, syncs the peripherals and applies the
// reset-on-violation rule. It returns the cycles consumed.
func (m *Machine) Step() (int, error) {
	n, err := m.CPU.Step()
	// The monitor outranks the fault path: if the instruction tripped a
	// violation (even one that also confused the decoder, e.g. a jump
	// into data), the hardware resets before anything else happens.
	if m.Monitor != nil {
		if v := m.Monitor.Violation(); v != nil {
			m.deviceReset(*v)
			return n, nil
		}
	}
	if err != nil {
		// A decode fault on real hardware executes garbage; under EILID
		// the W⊕X/immutability monitors normally fire first. Surface it.
		// A faulting step consumes no cycles, so syncing here only
		// delivers the cycles of completed instructions.
		m.syncPeriph()
		return n, err
	}
	m.syncPeriph()
	return n, nil
}

// RunResult summarizes a Run.
type RunResult struct {
	Cycles     uint64 // cycles consumed during this run
	Insns      uint64
	Halted     bool
	ExitCode   uint16
	Resets     int // resets that occurred during this run
	LastReason *casu.Violation
}

// ErrCycleBudget is returned when Run hits maxCycles before the firmware
// halts.
var ErrCycleBudget = errors.New("core: cycle budget exhausted before halt")

// Run executes until the firmware halts via the simulation-control
// register, a fault occurs, or maxCycles elapse.
func (m *Machine) Run(maxCycles uint64) (RunResult, error) {
	return m.runLoop(maxCycles, false)
}

// RunUntilReset executes until a monitor reset happens (attack testing),
// the firmware halts, or maxCycles elapse.
func (m *Machine) RunUntilReset(maxCycles uint64) (RunResult, error) {
	return m.runLoop(maxCycles, true)
}

// runLoop is the hot simulation loop. Unlike Step, it ticks the clocked
// peripherals in batches: each reports the absolute cycle it next acts
// on its own (interrupt, conversion complete), and between that
// deadline and the next peripheral-register write the loop runs the CPU
// back to back. Register accesses in between observe exact state via
// the peripherals' lazy catch-up (periph.Cycled), so batching is
// cycle-exactly equivalent to per-instruction ticking — set EagerTicks
// to force the reference behaviour and the differential tests to prove
// it.
//
// Within a batch the loop consumes whole basic blocks (cpu.RunBlocks)
// while the fused deadline/budget limit exceeds the next block's
// precomputed cycle total, so peripherals, interrupts, the halt latch
// and the cycle budget are checked only at block boundaries; anything a
// block cannot retire bit-exactly (interrupt service, low-power idling,
// stale or unfused code, a block that would straddle the limit) falls
// back to per-instruction Step. SetBlockExec(false) reverts to Step
// dispatch throughout; the block differential tests assert equivalence.
func (m *Machine) runLoop(maxCycles uint64, untilReset bool) (RunResult, error) {
	startCycles, startInsns, startResets := m.CPU.Cycles, m.CPU.Insns, m.ResetCount
	// A zero budget can execute nothing: report it as an exhausted
	// budget unconditionally, so callers can tell it apart from a clean
	// halt even when a previous run already halted the firmware.
	if maxCycles == 0 {
		return m.result(startCycles, startInsns, startResets), ErrCycleBudget
	}
	stop := startCycles + maxCycles
	if stop < startCycles { // saturate on overflow
		stop = ^uint64(0)
	}
	cpu := m.CPU
	space := m.Space
	ctl := m.ctl
	mon := m.Monitor
	m.syncPeriph() // anchor the deadline and write generation
	// limit fuses the cycle budget and the earliest peripheral deadline
	// into the single comparison the hot loop makes per instruction; a
	// peripheral-register write (HandlerStores) also forces the slow
	// branch, where budget exhaustion and tick batching are told apart.
	// Under EagerTicks the limit stays 0 so every iteration syncs.
	newLimit := func() uint64 {
		if m.EagerTicks {
			return 0
		}
		if m.tickAt < stop {
			return m.tickAt
		}
		return stop
	}
	// Monitor violations must be observed after every instruction, so
	// the block executor polls this between fused ops on protected
	// machines; unprotected machines pass nil and pay nothing.
	var stopFn func() bool
	if mon != nil {
		stopFn = func() bool { return mon.Violation() != nil }
	}
	useBlocks := m.blockExec && !m.EagerTicks
	limit := newLimit()
	for !ctl.halted {
		if untilReset && m.ResetCount != startResets {
			break
		}
		if cpu.Cycles >= limit || space.HandlerStores() != m.hGen {
			if cpu.Cycles >= stop {
				m.syncPeriph()
				return m.result(startCycles, startInsns, startResets), ErrCycleBudget
			}
			m.syncPeriph()
			limit = newLimit()
		}
		if useBlocks {
			if ran, blkPre, err := cpu.RunBlocks(limit, stopFn); ran || err != nil {
				if mon != nil {
					if v := mon.Violation(); v != nil {
						m.syncPeriphTo(blkPre)
						m.deviceReset(*v)
						limit = newLimit()
						continue
					}
				}
				if err != nil {
					m.syncPeriph()
					return m.result(startCycles, startInsns, startResets), err
				}
				continue
			}
		}
		pre := cpu.Cycles
		_, err := cpu.Step()
		if mon != nil {
			if v := mon.Violation(); v != nil {
				// Per-instruction ticking delivered every completed
				// instruction's cycles and dropped only the violating
				// one's; match that before the reset re-anchors.
				m.syncPeriphTo(pre)
				m.deviceReset(*v)
				limit = newLimit()
				continue
			}
		}
		if err != nil {
			// A faulting step consumes no cycles (see Machine.Step).
			m.syncPeriph()
			return m.result(startCycles, startInsns, startResets), err
		}
	}
	m.syncPeriph()
	return m.result(startCycles, startInsns, startResets), nil
}

func (m *Machine) result(c0, i0 uint64, r0 int) RunResult {
	res := RunResult{
		Cycles:   m.CPU.Cycles - c0,
		Insns:    m.CPU.Insns - i0,
		Halted:   m.ctl.halted,
		ExitCode: m.ctl.code,
		Resets:   m.ResetCount - r0,
	}
	if m.ResetCount > 0 && res.Resets > 0 {
		v := m.lastReason
		res.LastReason = &v
	}
	return res
}

// ShadowEntries reads the live shadow stack (for tests and debugging; a
// real device cannot do this from non-secure code, but the simulator's
// test harness is "outside the universe").
func (m *Machine) ShadowEntries(cfg Config) []uint16 {
	idx := m.CPU.R[RegIndex]
	if int(idx) > cfg.MaxShadowEntries {
		idx = uint16(cfg.MaxShadowEntries)
	}
	out := make([]uint16, idx)
	for i := range out {
		out[i] = m.Space.LoadWord(cfg.ShadowBase + uint16(2*i))
	}
	return out
}

// FunctionTable reads the live forward-edge table.
func (m *Machine) FunctionTable(cfg Config) []uint16 {
	n := m.Space.LoadWord(cfg.TableCountAddr)
	if int(n) > cfg.MaxFunctions {
		n = uint16(cfg.MaxFunctions)
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = m.Space.LoadWord(cfg.TableBase + uint16(2*i))
	}
	return out
}
