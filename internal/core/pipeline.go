package core

import (
	"fmt"

	"eilid/internal/asm"
)

// BuildResult is the output of the three-iteration EILID build.
type BuildResult struct {
	// Original is the uninstrumented build (the paper's app_1 chain).
	Original *asm.Program
	// Instrumented is the final CFI-aware build (app.elf in Figure 2).
	Instrumented *asm.Program
	// InstrumentedSource is the final instrumented assembly text.
	InstrumentedSource string
	// Stats describes the inserted instrumentation.
	Stats InstrumentStats
	// Iterations is the number of assembler runs performed (3, per the
	// paper's compile flow).
	Iterations int
}

// Pipeline is the EILID build driver implementing paper Figure 2:
//
//	build #1: assemble the original source        -> app_1.lst
//	instrument (addresses unknown: placeholders)  -> app_2_instr.s
//	build #2: assemble the instrumented source    -> app_2.lst (shifted)
//	instrument again resolving return addresses
//	from app_2.lst                                -> app_instr.s
//	build #3: assemble                            -> app.elf / app.lst
//
// The second instrumentation pass produces a file with the same line
// structure and instruction sizes as the first (placeholders are sized
// like real addresses), so the addresses in app_2.lst are exactly the
// addresses of the final binary.
type Pipeline struct {
	cfg Config
	rom *SecureROM
	ins *Instrumenter
}

// NewPipeline builds the secure ROM and returns a ready build driver.
func NewPipeline(cfg Config) (*Pipeline, error) {
	rom, err := BuildSecureROM(cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{cfg: cfg, rom: rom, ins: NewInstrumenter(cfg, rom)}, nil
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// ROM returns the secure ROM shared by all builds from this pipeline.
func (p *Pipeline) ROM() *SecureROM { return p.rom }

// BuildOriginal assembles the uninstrumented program (one assembler run,
// the baseline of Table IV).
func (p *Pipeline) BuildOriginal(name, src string) (*asm.Program, error) {
	return asm.Assemble(name, src)
}

// Build runs the full three-iteration EILID compile.
func (p *Pipeline) Build(name, src string) (*BuildResult, error) {
	// Build #1: original program; its listing drives classification.
	orig, err := asm.Assemble(name, src)
	if err != nil {
		return nil, fmt.Errorf("core: build 1 (original): %w", err)
	}
	a, err := p.ins.analyze(orig)
	if err != nil {
		return nil, err
	}

	// Instrumentation pass 1: return addresses unknown (app_1.lst has
	// pre-shift addresses), so placeholders go in.
	src2, _ := p.ins.instrument(src, a, func(int) (uint16, bool) { return 0, false })

	// Build #2: the instrumented program with placeholder addresses. Its
	// listing has the final (shifted) layout.
	prog2, err := asm.Assemble(name+".instr", src2)
	if err != nil {
		return nil, fmt.Errorf("core: build 2 (instrumented, placeholders): %w", err)
	}
	lst2 := prog2.Listing

	// Instrumentation pass 2: resolve every return address from lst2.
	var resolveErr error
	src3, stats := p.ins.instrument(src, a, func(instrLine int) (uint16, bool) {
		e, ok := lst2.EntryForLine(instrLine)
		if !ok || !e.IsInstr {
			resolveErr = fmt.Errorf("core: no instruction at instrumented line %d in iteration-2 listing", instrLine)
			return 0, false
		}
		return e.Addr + e.Size(), true
	})
	if resolveErr != nil {
		return nil, resolveErr
	}

	// Build #3: the final binary.
	final, err := asm.Assemble(name+".instr", src3)
	if err != nil {
		return nil, fmt.Errorf("core: build 3 (final): %w", err)
	}

	// Layout-stability check (the property Figure 2 depends on): the
	// final build must place every line exactly where build #2 did.
	if len(final.Listing.Entries) != len(lst2.Entries) {
		return nil, fmt.Errorf("core: pipeline diverged: %d vs %d listing entries",
			len(final.Listing.Entries), len(lst2.Entries))
	}
	for i, e := range final.Listing.Entries {
		if e.Addr != lst2.Entries[i].Addr || e.Size() != lst2.Entries[i].Size() {
			return nil, fmt.Errorf("core: pipeline diverged at listing entry %d (line %d): 0x%04x/%d vs 0x%04x/%d",
				i, e.Line, e.Addr, e.Size(), lst2.Entries[i].Addr, lst2.Entries[i].Size())
		}
	}

	return &BuildResult{
		Original:           orig,
		Instrumented:       final,
		InstrumentedSource: src3,
		Stats:              stats,
		Iterations:         3,
	}, nil
}
