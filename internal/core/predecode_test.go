package core_test

import (
	"fmt"
	"testing"

	"eilid/internal/apps"
	"eilid/internal/core"
	"eilid/internal/isa"
)

// runInspected runs one build variant of an app with or without the
// predecode cache and returns the observable outcome.
func runInspected(t *testing.T, p *core.Pipeline, app apps.App, build *core.BuildResult, spec *core.DefenseSpec, predecode bool) *apps.Inspection {
	t.Helper()
	opts := core.MachineOptions{Config: p.Config(), Defense: spec}
	img := build.Original.Image
	if spec.Instrumented {
		opts.ROM = p.ROM()
		img = build.Instrumented.Image
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(img); err != nil {
		t.Fatal(err)
	}
	if predecode {
		if pre := m.EnablePredecode(); pre.Len() == 0 {
			t.Fatal("predecode cached nothing")
		}
	}
	if app.UARTInput != "" {
		m.UART.Feed([]byte(app.UARTInput))
	}
	m.Boot()
	res, err := m.Run(app.MaxCycles)
	if err != nil {
		t.Fatalf("predecode=%v defense=%s: %v", predecode, spec.Name, err)
	}
	return apps.Inspect(m, res)
}

// TestPredecodeDifferential runs every Table IV application, on both
// device variants, with the decode cache on and off, and requires the
// two executions to be observably identical: same cycle count, same
// instruction count, same UART transcript, same reset count, same
// GPIO/LCD activity. The cache must be semantically invisible.
func TestPredecodeDifferential(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			build, err := p.Build(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range core.Defenses() {
				off := runInspected(t, p, app, build, spec, false)
				on := runInspected(t, p, app, build, spec, true)
				if off.Cycles != on.Cycles {
					t.Errorf("defense=%s: cycles %d (cache off) vs %d (cache on)", spec.Name, off.Cycles, on.Cycles)
				}
				if off.Insns != on.Insns {
					t.Errorf("defense=%s: insns %d vs %d", spec.Name, off.Insns, on.Insns)
				}
				if off.Resets != on.Resets {
					t.Errorf("defense=%s: resets %d vs %d", spec.Name, off.Resets, on.Resets)
				}
				if err := apps.Equivalent(off, on); err != nil {
					t.Errorf("defense=%s: observable behaviour diverged: %v", spec.Name, err)
				}
			}
		})
	}
}

// TestPredecodeSelfModifyingCode covers cache invalidation: on the
// unprotected baseline (where PMEM writes are legal — no monitor), the
// firmware executes an instruction, overwrites it in place, and
// executes the patched word on the next loop iteration. With the cache
// enabled the write must stale the predecoded entry so the second pass
// decodes the new instruction, matching the cache-off run exactly.
func TestPredecodeSelfModifyingCode(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The patch turns "inc r9" into "inc r10" at run time.
	patch := isa.MustEncode(isa.Instruction{
		Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(10),
	})
	if len(patch) != 1 {
		t.Fatalf("patch encodes to %d words, want 1", len(patch))
	}
	src := fmt.Sprintf(`
.org 0xE000
reset:
    mov #0x0A00, sp
main:
    mov #2, r12
loop:
site:
    inc r9
    mov #0x%04X, &site
    dec r12
    jnz loop
    mov #0, &0x00FC
spin:
    jmp spin
.org 0xFFFE
.word reset
`, patch[0])
	prog, err := p.BuildOriginal("selfmod.s", src)
	if err != nil {
		t.Fatal(err)
	}

	run := func(predecode bool) (*core.Machine, core.RunResult) {
		m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadFirmware(prog.Image); err != nil {
			t.Fatal(err)
		}
		if predecode {
			m.EnablePredecode()
		}
		m.Boot()
		res, err := m.Run(100_000)
		if err != nil {
			t.Fatalf("predecode=%v: %v", predecode, err)
		}
		return m, res
	}

	mOff, resOff := run(false)
	mOn, resOn := run(true)

	for _, m := range []*core.Machine{mOff, mOn} {
		if got := m.CPU.R[9]; got != 1 {
			t.Errorf("r9 = %d, want 1 (first pass executes the original instruction)", got)
		}
		if got := m.CPU.R[10]; got != 1 {
			t.Errorf("r10 = %d, want 1 (second pass must execute the patched instruction)", got)
		}
	}
	if resOff.Cycles != resOn.Cycles || resOff.Insns != resOn.Insns {
		t.Errorf("self-modifying run diverged: %d/%d cycles/insns (off) vs %d/%d (on)",
			resOff.Cycles, resOff.Insns, resOn.Cycles, resOn.Insns)
	}
}

// TestPredecodeSkipsUnmappedWindows: the default layout has an
// unmapped hole between the secure ROM and the IVT; a live fetch whose
// speculative three-word window dips into it reads 0xFFFF off the bus
// and counts a bus error, side effects the cache would skip. Such
// addresses must therefore never be cached, even when the raw bytes
// there happen to decode.
func TestPredecodeSkipsUnmappedWindows(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
	if err != nil {
		t.Fatal(err)
	}
	layout := m.Space.Layout
	romEnd := layout.SecureROMEnd // 0xFDFF; hole starts at 0xFE00
	// Plant decodable nops across the ROM/hole boundary.
	nop := isa.MustEncode(isa.Instruction{Op: isa.MOV, Src: isa.RegOp(4), Dst: isa.RegOp(4)})
	var raw []byte
	for i := 0; i < 8; i++ {
		raw = append(raw, byte(nop[0]), byte(nop[0]>>8))
	}
	if err := m.Space.LoadImage(romEnd-7, raw); err != nil {
		t.Fatal(err)
	}
	pre := m.EnablePredecode()

	inRom := romEnd - 7 // window stays inside the ROM
	if _, _, _, ok := pre.Lookup(inRom); !ok {
		t.Errorf("0x%04x: window inside ROM should be cached", inRom)
	}
	for _, a := range []uint16{romEnd - 3, romEnd - 1, romEnd + 1, romEnd + 3} {
		a &^= 1
		if _, _, _, ok := pre.Lookup(a); ok {
			t.Errorf("0x%04x: cached although its fetch window leaves RAM-backed space", a)
		}
	}
}

// TestPredecodeSharedAcrossMachines checks the per-ROM sharing contract:
// one cache built from a reference machine drives a second machine with
// identical firmware to an identical outcome.
func TestPredecodeSharedAcrossMachines(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := apps.ByName("TempSensor")
	build, err := p.Build(app.Name+".s", app.Source)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.LoadFirmware(build.Instrumented.Image); err != nil {
		t.Fatal(err)
	}
	pre := ref.EnablePredecode()

	baseline := runInspected(t, p, app, build, core.DefenseEILID, false)
	m, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(build.Instrumented.Image); err != nil {
		t.Fatal(err)
	}
	m.UsePredecoded(pre)
	m.Boot()
	res, err := m.Run(app.MaxCycles)
	if err != nil {
		t.Fatal(err)
	}
	shared := apps.Inspect(m, res)
	if baseline.Cycles != shared.Cycles || baseline.Insns != shared.Insns {
		t.Errorf("shared cache diverged: %d/%d vs %d/%d cycles/insns",
			baseline.Cycles, baseline.Insns, shared.Cycles, shared.Insns)
	}
	if err := apps.Equivalent(baseline, shared); err != nil {
		t.Errorf("shared cache changed behaviour: %v", err)
	}
}
