package core_test

import (
	"errors"
	"fmt"
	"testing"

	"eilid/internal/apps"
	"eilid/internal/core"
	"eilid/internal/cpu"
	"eilid/internal/isa"
)

// newLoadedMachine constructs a machine for one app build variant with
// the firmware loaded and a decode cache installed — the state the
// fleet seals with Snapshot before the first job.
func newLoadedMachine(t *testing.T, p *core.Pipeline, build *core.BuildResult, spec *core.DefenseSpec) *core.Machine {
	t.Helper()
	opts := core.MachineOptions{Config: p.Config(), Defense: spec}
	img := build.Original.Image
	if spec.Instrumented {
		opts.ROM = p.ROM()
		img = build.Instrumented.Image
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(img); err != nil {
		t.Fatal(err)
	}
	m.EnablePredecode()
	return m
}

// observeOn runs the app on a prepared machine (fresh or recycled) with
// a fresh event recorder wired over the machine's base watcher, and
// returns the full observation plus the final register file.
func observeOn(t *testing.T, m *core.Machine, base cpu.Watcher, app apps.App) (observed, [16]uint16) {
	t.Helper()
	rec := &eventRecorder{inner: base, clock: func() uint64 { return m.CPU.Cycles }}
	m.CPU.Watch = rec
	if app.UARTInput != "" {
		m.UART.Feed([]byte(app.UARTInput))
	}
	m.Boot()
	res, runErr := m.Run(app.MaxCycles)
	o := observed{
		insp:      apps.Inspect(m, res),
		res:       res,
		err:       runErr,
		busErrors: m.Space.BusErrors,
		events:    rec.events,
		irqCycles: rec.irqCycles,
	}
	for _, v := range m.ResetReasons {
		o.reasons = append(o.reasons, v.Error())
	}
	return o, m.CPU.R
}

// TestRecycleDifferential is the machine-level recycling contract: for
// every Table IV application under every registered defense, a machine sealed
// with Snapshot and recycled with Recycle reproduces a fresh machine's
// run exactly — cycles, instruction counts, bus errors, the full
// watcher event stream, interrupt arrival cycles, reset reasons, the
// register file and every observable of the inspection — across
// back-to-back recycles.
func TestRecycleDifferential(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			build, err := p.Build(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range core.Defenses() {
				what := fmt.Sprintf("%s defense=%s", app.Name, spec.Name)
				m := newLoadedMachine(t, p, build, spec)
				base := m.CPU.Watch
				m.Snapshot()
				fresh, freshR := observeOn(t, m, base, app)
				// The sealed-and-run machine must itself match an
				// untouched fresh machine (Snapshot perturbs nothing).
				ref := runObserved(t, p, app, build, spec, nil)
				compareObserved(t, what+" sealed-vs-plain", fresh, ref)
				for round := 1; round <= 2; round++ {
					if err := m.Recycle(); err != nil {
						t.Fatalf("%s: recycle %d: %v", what, round, err)
					}
					got, gotR := observeOn(t, m, base, app)
					compareObserved(t, fmt.Sprintf("%s recycle=%d", what, round), fresh, got)
					if freshR != gotR {
						t.Errorf("%s recycle=%d: register files diverged:\n%v\n%v",
							what, round, freshR, gotR)
					}
				}
			}
		})
	}
}

// TestRecycleDifferentialUnwatched re-runs the matrix with no event
// recorder installed — the configuration in which the pure-block fast
// path runs on the baseline — so recycling is proven identical on the
// exact code paths the fleet executes.
func TestRecycleDifferentialUnwatched(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(m *core.Machine, app apps.App) (core.RunResult, [16]uint16, int, *apps.Inspection) {
		if app.UARTInput != "" {
			m.UART.Feed([]byte(app.UARTInput))
		}
		m.Boot()
		res, runErr := m.Run(app.MaxCycles)
		if runErr != nil {
			t.Fatalf("%s: %v", app.Name, runErr)
		}
		return res, m.CPU.R, m.Space.BusErrors, apps.Inspect(m, res)
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			build, err := p.Build(app.Name+".s", app.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range core.Defenses() {
				what := fmt.Sprintf("%s defense=%s", app.Name, spec.Name)
				m := newLoadedMachine(t, p, build, spec)
				m.Snapshot()
				fRes, fR, fBE, fInsp := run(m, app)
				if err := m.Recycle(); err != nil {
					t.Fatalf("%s: %v", what, err)
				}
				rRes, rR, rBE, rInsp := run(m, app)
				if fRes.Cycles != rRes.Cycles || fRes.Insns != rRes.Insns ||
					fRes.Halted != rRes.Halted || fRes.ExitCode != rRes.ExitCode ||
					fRes.Resets != rRes.Resets {
					t.Errorf("%s: RunResult diverged: %+v vs %+v", what, fRes, rRes)
				}
				if fR != rR {
					t.Errorf("%s: register files diverged:\n%v\n%v", what, fR, rR)
				}
				if fBE != rBE {
					t.Errorf("%s: bus errors %d vs %d", what, fBE, rBE)
				}
				if err := apps.Equivalent(fInsp, rInsp); err != nil {
					t.Errorf("%s: %v", what, err)
				}
			}
		})
	}
}

// TestRecycleResetStorm pins two properties at once on a firmware that
// violates immutability immediately after every boot (the worst-case
// reset storm a CASU-style monitor can face): the retained reason log
// stays bounded at MaxResetReasons while ResetCount keeps the true
// total, and a recycled machine replays the storm byte-identically.
func TestRecycleResetStorm(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := `
.org 0xE000
reset:
    mov #0x0A00, sp
    mov #0xBEEF, &0xF000
spin:
    jmp spin
.org 0xFFFE
.word reset
`
	prog, err := p.BuildOriginal("storm.s", src)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 100_000
	m, err := core.NewMachine(core.MachineOptions{Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(prog.Image); err != nil {
		t.Fatal(err)
	}
	m.EnablePredecode()
	m.Snapshot()

	storm := func() (core.RunResult, error, int, int) {
		m.Boot()
		res, runErr := m.Run(budget)
		return res, runErr, m.ResetCount, len(m.ResetReasons)
	}
	fRes, fErr, fCount, fKept := storm()
	if !errors.Is(fErr, core.ErrCycleBudget) {
		t.Fatalf("storm ended with %v, want cycle-budget exhaustion", fErr)
	}
	if fCount <= core.MaxResetReasons {
		t.Fatalf("storm only reset %d times; the test is vacuous", fCount)
	}
	if fKept != core.MaxResetReasons {
		t.Fatalf("retained %d reasons, want the MaxResetReasons bound %d", fKept, core.MaxResetReasons)
	}
	if fRes.LastReason == nil || fRes.LastReason.Kind.String() != "pmem-write" {
		t.Fatalf("LastReason = %v, want the live pmem-write violation", fRes.LastReason)
	}
	if err := m.Recycle(); err != nil {
		t.Fatal(err)
	}
	if m.ResetCount != 0 || len(m.ResetReasons) != 0 {
		t.Fatalf("recycle did not clear reset accounting: count=%d kept=%d",
			m.ResetCount, len(m.ResetReasons))
	}
	rRes, rErr, rCount, rKept := storm()
	if !errors.Is(rErr, core.ErrCycleBudget) {
		t.Fatalf("recycled storm ended with %v", rErr)
	}
	if fRes.Cycles != rRes.Cycles || fRes.Insns != rRes.Insns || fCount != rCount || fKept != rKept {
		t.Errorf("recycled storm diverged: %d/%d cycles, %d/%d insns, %d/%d resets, %d/%d kept",
			fRes.Cycles, rRes.Cycles, fRes.Insns, rRes.Insns, fCount, rCount, fKept, rKept)
	}
}

// TestRecycleSelfModifying recycles a self-modifying job back-to-back:
// the firmware patches an instruction it then executes (staling the
// decode cache) AND persists a counter inside program memory, so a
// recycle that failed to restore code bytes or reset staleness would
// change the exit code or the cycle count of the second run.
func TestRecycleSelfModifying(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	patch := isa.MustEncode(isa.Instruction{
		Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(10),
	})
	src := fmt.Sprintf(`
.org 0xE000
reset:
    mov #0x0A00, sp
    mov &slot, r9
    inc r9
    mov r9, &slot
    mov #3, r12
loop:
    inc r8
    mov #0x%04X, &site2
site2:
    inc r11
    dec r12
    jnz loop
    mov r9, &0x00FC
spin:
    jmp spin
slot:
    .word 5
.org 0xFFFE
.word reset
`, patch[0])
	prog, err := p.BuildOriginal("selfmod-recycle.s", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(prog.Image); err != nil {
		t.Fatal(err)
	}
	m.EnablePredecode()
	m.Snapshot()

	run := func() (core.RunResult, [16]uint16) {
		m.Boot()
		res, err := m.Run(100_000)
		if err != nil {
			t.Fatal(err)
		}
		return res, m.CPU.R
	}
	fRes, fR := run()
	if fRes.ExitCode != 6 {
		t.Fatalf("fresh run exit code = %d, want the slot counter 6", fRes.ExitCode)
	}
	if fR[8] != 3 || fR[10] != 3 || fR[11] != 0 {
		t.Fatalf("patched loop misbehaved: r8=%d r10=%d r11=%d, want 3/3/0", fR[8], fR[10], fR[11])
	}
	for round := 1; round <= 2; round++ {
		if err := m.Recycle(); err != nil {
			t.Fatal(err)
		}
		rRes, rR := run()
		if rRes.ExitCode != 6 {
			t.Errorf("recycle %d: exit code %d — program memory not restored", round, rRes.ExitCode)
		}
		if fRes.Cycles != rRes.Cycles || fRes.Insns != rRes.Insns {
			t.Errorf("recycle %d: %d/%d vs %d/%d cycles/insns", round,
				fRes.Cycles, fRes.Insns, rRes.Cycles, rRes.Insns)
		}
		if fR != rR {
			t.Errorf("recycle %d: register files diverged:\n%v\n%v", round, fR, rR)
		}
	}
}

// TestRecycleRequiresSnapshot pins the guard: a machine that was never
// sealed cannot be recycled.
func TestRecycleRequiresSnapshot(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Recycle(); !errors.Is(err, core.ErrNoSnapshot) {
		t.Fatalf("Recycle on an unsealed machine: %v, want ErrNoSnapshot", err)
	}
}
