package core_test

import (
	"errors"
	"testing"

	"eilid/internal/core"
)

const budgetProg = `
.org 0xE000
reset:
    mov #0x0A00, sp
    mov #0, &0x00FC
spin:
    jmp spin
.org 0xFFFE
.word reset
`

func budgetMachine(t *testing.T) (*core.Machine, *core.Pipeline) {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.BuildOriginal("budget.s", budgetProg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(core.MachineOptions{Config: p.Config()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware(prog.Image); err != nil {
		t.Fatal(err)
	}
	m.Boot()
	return m, p
}

// TestRunZeroBudget is the regression test for the zero-cycle budget: a
// budget of 0 can execute nothing, so Run and RunUntilReset must report
// ErrCycleBudget — distinguishable from a clean halt — in every state,
// including after a previous run already halted the firmware.
func TestRunZeroBudget(t *testing.T) {
	m, _ := budgetMachine(t)

	res, err := m.Run(0)
	if !errors.Is(err, core.ErrCycleBudget) {
		t.Fatalf("Run(0) error = %v, want ErrCycleBudget", err)
	}
	if res.Cycles != 0 || res.Insns != 0 {
		t.Fatalf("Run(0) executed %d cycles / %d insns, want none", res.Cycles, res.Insns)
	}

	if _, err := m.RunUntilReset(0); !errors.Is(err, core.ErrCycleBudget) {
		t.Fatalf("RunUntilReset(0) error = %v, want ErrCycleBudget", err)
	}

	// Let the firmware halt, then ask again with a zero budget: the
	// stale halt flag must not masquerade as a clean completion.
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("full run: %v", err)
	}
	if !m.Halted() {
		t.Fatal("firmware did not halt")
	}
	if _, err := m.Run(0); !errors.Is(err, core.ErrCycleBudget) {
		t.Fatalf("Run(0) after halt error = %v, want ErrCycleBudget", err)
	}
	if _, err := m.RunUntilReset(0); !errors.Is(err, core.ErrCycleBudget) {
		t.Fatalf("RunUntilReset(0) after halt error = %v, want ErrCycleBudget", err)
	}
}

// TestRunNonZeroBudgetStillHalts guards the fix against over-reach: a
// generous budget must still complete normally.
func TestRunNonZeroBudgetStillHalts(t *testing.T) {
	m, _ := budgetMachine(t)
	res, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.ExitCode != 0 {
		t.Fatalf("run did not halt cleanly: %+v", res)
	}
}
