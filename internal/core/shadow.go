package core

import "errors"

// ShadowStack is a Go reference model of the EILIDsw shadow stack plus
// function table. The assembly implementation in the secure ROM must
// behave exactly like this model; the property tests in machine_test.go
// drive both with the same operation sequences and compare outcomes.
type ShadowStack struct {
	maxEntries int
	maxFuncs   int

	entries []uint16
	table   []uint16
}

// Model errors mirror the violation conditions EILIDsw raises.
var (
	ErrShadowOverflow  = errors.New("core: shadow stack overflow")
	ErrShadowUnderflow = errors.New("core: shadow stack underflow")
	ErrShadowMismatch  = errors.New("core: return address mismatch")
	ErrContextMismatch = errors.New("core: interrupt context mismatch")
	ErrTableFull       = errors.New("core: function table full")
	ErrIllegalTarget   = errors.New("core: indirect target not in table")
)

// NewShadowStack creates a model with the configured capacities.
func NewShadowStack(cfg Config) *ShadowStack {
	return &ShadowStack{maxEntries: cfg.MaxShadowEntries, maxFuncs: cfg.MaxFunctions}
}

// Init implements S_EILID_init.
func (s *ShadowStack) Init() {
	s.entries = s.entries[:0]
	s.table = s.table[:0]
}

// Depth returns the current number of stored words.
func (s *ShadowStack) Depth() int { return len(s.entries) }

// Entries returns a copy of the stored words (bottom first).
func (s *ShadowStack) Entries() []uint16 {
	return append([]uint16(nil), s.entries...)
}

// StoreRA implements S_EILID_store_ra (P1).
func (s *ShadowStack) StoreRA(ra uint16) error {
	if len(s.entries) >= s.maxEntries {
		return ErrShadowOverflow
	}
	s.entries = append(s.entries, ra)
	return nil
}

// CheckRA implements S_EILID_check_ra (P1).
func (s *ShadowStack) CheckRA(ra uint16) error {
	if len(s.entries) == 0 {
		return ErrShadowUnderflow
	}
	top := s.entries[len(s.entries)-1]
	s.entries = s.entries[:len(s.entries)-1]
	if top != ra {
		return ErrShadowMismatch
	}
	return nil
}

// StoreRFI implements S_EILID_store_rfi (P2).
func (s *ShadowStack) StoreRFI(ra, sr uint16) error {
	if len(s.entries)+2 > s.maxEntries {
		return ErrShadowOverflow
	}
	s.entries = append(s.entries, ra, sr)
	return nil
}

// CheckRFI implements S_EILID_check_rfi (P2).
func (s *ShadowStack) CheckRFI(ra, sr uint16) error {
	if len(s.entries) < 2 {
		return ErrShadowUnderflow
	}
	gotRA := s.entries[len(s.entries)-2]
	gotSR := s.entries[len(s.entries)-1]
	s.entries = s.entries[:len(s.entries)-2]
	if gotRA != ra || gotSR != sr {
		return ErrContextMismatch
	}
	return nil
}

// StoreInd implements S_EILID_store_ind (P3).
func (s *ShadowStack) StoreInd(fn uint16) error {
	if len(s.table) >= s.maxFuncs {
		return ErrTableFull
	}
	s.table = append(s.table, fn)
	return nil
}

// CheckInd implements S_EILID_check_ind (P3).
func (s *ShadowStack) CheckInd(fn uint16) error {
	for _, v := range s.table {
		if v == fn {
			return nil
		}
	}
	return ErrIllegalTarget
}

// Table returns a copy of the registered targets.
func (s *ShadowStack) Table() []uint16 {
	return append([]uint16(nil), s.table...)
}
