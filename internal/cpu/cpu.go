// Package cpu implements a cycle-accurate MSP430 CPU core on top of the
// instruction model in internal/isa. It executes the full classic
// instruction set (all three formats, all addressing modes, byte/word
// widths), services maskable interrupts with the architectural
// push-PC/push-SR/vector sequence, and accounts cycles per the TI table so
// that simulated run times correspond to what the paper measures in
// Vivado behavioural simulation.
//
// The core exposes a Watcher interface carrying the architectural signals
// (instruction fetch address, data reads/writes with the issuing PC,
// interrupt acceptance) that the CASU/EILID hardware monitor in
// internal/casu observes — the same bus- and PC-level signals the paper's
// Verilog monitor taps.
package cpu

import (
	"fmt"

	"eilid/internal/isa"
)

// Bus is the memory system the CPU drives (implemented by mem.Space).
type Bus interface {
	LoadWord(addr uint16) uint16
	StoreWord(addr uint16, v uint16)
	LoadByte(addr uint16) uint8
	StoreByte(addr uint16, v uint8)
}

// DirectBus is an optional Bus refinement (implemented by mem.Space)
// exposing the backing slab and per-address plain-memory flags so the
// core can inline accesses to plain RAM without an interface call. The
// fast path reproduces the bus semantics for such addresses exactly:
// word alignment, little-endian layout, and the live write hook. All
// other addresses (peripheral handlers, unmapped space with its
// bus-error accounting) go through the Bus methods unchanged.
type DirectBus interface {
	Bus
	Direct() (slab *[1 << 16]byte, plain *[1 << 16]bool, hook *func(addr uint16, n int))
}

// Watcher observes architectural events. All methods are called
// synchronously during Step; a nil watcher disables observation.
type Watcher interface {
	// OnFetch fires before the instruction at pc executes; prev is the
	// address of the previously executed instruction (or the reset
	// vector target after reset).
	OnFetch(prev, pc uint16)
	// OnRead fires for each data-bus read issued by the instruction at pc.
	OnRead(pc, addr uint16, byteWide bool)
	// OnWrite fires for each data-bus write issued by the instruction at pc.
	OnWrite(pc, addr uint16, byteWide bool, value uint16)
	// OnInterrupt fires when an interrupt on the given line is accepted,
	// before the context push; pc is the interrupted instruction address.
	OnInterrupt(pc uint16, line int)
}

// IRQSource supplies pending interrupt lines (implemented by
// periph.IRQController). Lower line numbers are lower priority; the reset
// line (15) is handled by the machine, not the CPU.
type IRQSource interface {
	// HighestPending returns the highest-priority pending maskable line,
	// or -1 if none.
	HighestPending() int
	// Acknowledge clears the pending flag for the line.
	Acknowledge(line int)
}

// ExecError reports a fault the real hardware would stumble through but a
// simulator must surface: undecodable opcodes or fetches that wrapped the
// address space.
type ExecError struct {
	PC  uint16
	Err error
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("cpu: fault at pc=0x%04x: %v", e.PC, e.Err)
}

func (e *ExecError) Unwrap() error { return e.Err }

// CPU is the processor state.
type CPU struct {
	R   [isa.NumRegs]uint16
	bus Bus

	// Watch observes architectural events (may be nil).
	Watch Watcher
	// IRQ supplies maskable interrupt requests (may be nil).
	IRQ IRQSource

	// Cycles is total MCLK cycles since power-on (monotonic across
	// resets, like a bench clock).
	Cycles uint64
	// Insns counts executed instructions.
	Insns uint64
	// Interrupts counts accepted interrupts.
	Interrupts uint64

	prevPC uint16

	// pre is an optional shared read-only decode cache; preStart and
	// preEntries mirror its table so the warm-path lookup needs no
	// pointer chase through the cache object. dirty marks word addresses
	// whose predecoded entry may be stale because a bus write landed in
	// its fetch window (1 bit per word address, lazily built).
	pre        *isa.Predecoded
	preStart   uint16
	preEntries []isa.Entry
	dirty      []uint64

	// blkStart/blkTable mirror the installed basic-block table (see
	// isa.Blocks) so the block lookup needs no pointer chase. invGen
	// counts InvalidateCode calls: the block executor snapshots it and
	// re-checks its block's stale range when a write lands mid-block.
	// busTouched is set by every bus access that leaves the plain-RAM
	// fast path; the block executor clears it per block and ends the
	// block after any op that set it, handing control back to the
	// machine loop exactly where per-instruction dispatch would have
	// observed the side effect (peripheral state, halt, IRQ catch-up).
	blkStart   uint16
	blkTable   []isa.Block
	invGen     uint64
	busTouched bool

	// slab/plain/hook are the DirectBus fast path (nil on plain buses);
	// slowMode forces the generic interpreter and the interface bus path
	// for differential testing.
	slab     *[1 << 16]byte
	plain    *[1 << 16]bool
	hook     *func(addr uint16, n int)
	slowMode bool
}

// dirtyWords is the size of the stale bitmap: one bit per word address.
const dirtyWords = 1 << 15

// New creates a CPU attached to the bus. Call Reset before stepping.
func New(bus Bus) *CPU {
	c := &CPU{bus: bus}
	if d, ok := bus.(DirectBus); ok {
		c.slab, c.plain, c.hook = d.Direct()
	}
	return c
}

// SetFastPaths enables (the default) or disables the warm-path
// threaded-code executors and the direct RAM access, reverting every
// hot-path shortcut to the generic interpreter driving the Bus
// interface. Execution is bit-identical either way; the differential
// tests in internal/core assert that.
func (c *CPU) SetFastPaths(on bool) { c.slowMode = !on }

// PC returns the program counter.
func (c *CPU) PC() uint16 { return c.R[isa.PC] }

// SP returns the stack pointer.
func (c *CPU) SP() uint16 { return c.R[isa.SP] }

// SR returns the status register.
func (c *CPU) SR() uint16 { return c.R[isa.SR] }

// PrevPC returns the address of the most recently executed instruction.
func (c *CPU) PrevPC() uint16 { return c.prevPC }

// SetPredecoded installs (or, with nil, removes) a decode cache built
// from the memory contents the CPU currently fetches from. The cache is
// read-only and may be shared across CPUs running identical code. Any
// previously recorded staleness is discarded: the caller asserts the
// cache matches memory at this instant.
func (c *CPU) SetPredecoded(p *isa.Predecoded) {
	c.pre = p
	c.preStart, c.preEntries = p.Table()
	c.dirty = nil
	// A block table is only valid against the cache it was fused from;
	// drop it until the caller re-pairs them.
	c.SetBlocks(nil)
}

// Predecoded returns the installed decode cache, if any.
func (c *CPU) Predecoded() *isa.Predecoded { return c.pre }

// SetBlocks installs (or, with nil, removes) a basic-block table fused
// from the installed decode cache (isa.BuildBlocks / Predecoded.Blocks).
// The caller asserts the table matches the installed cache; install the
// cache first, then its blocks.
func (c *CPU) SetBlocks(b *isa.Blocks) {
	c.blkStart, c.blkTable = b.Table()
}

// InvalidateCode records that the n bytes at addr were overwritten, so
// cached decodes whose fetch window covers them must re-decode live. An
// instruction starts at most four bytes before a word it consumes, so
// the two preceding word slots are staled along with the written range.
// It is safe (and cheap) to call for every bus write; mem.Space's
// WriteHook is wired to it by core.Machine.
//
// Writes that land entirely below the cached window are a no-op: cached
// entries exist only at pc >= the cache start, and no entry's fetch
// window reaches further back than four bytes before it, so ordinary
// DMEM stores — and the volatile-memory sweep a device reset performs —
// never touch the dirty bitmap or the block invalidation generation.
func (c *CPU) InvalidateCode(addr uint16, n int) {
	if c.pre == nil || n <= 0 {
		return
	}
	if (int(addr)+n-1)>>1 < int(c.preStart)>>1 {
		return
	}
	c.invGen++
	if c.dirty == nil {
		c.dirty = make([]uint64, dirtyWords/64)
	}
	w0 := int(addr)>>1 - 2
	w1 := (int(addr) + n - 1) >> 1
	for w := w0; w <= w1; w++ {
		i := w & (dirtyWords - 1)
		c.dirty[i>>6] |= 1 << (uint(i) & 63)
	}
}

// ResetCodeState discards all recorded predecode staleness and block
// invalidation state while keeping the installed (shared) decode cache
// and block table. The caller asserts that memory once again matches
// the cache exactly — the situation after mem.Space.Restore puts back
// the very image the cache was built from. The generation bump makes
// any stale in-flight block bookkeeping re-check rather than trust a
// pre-reset snapshot.
func (c *CPU) ResetCodeState() {
	c.invGen++
	c.dirty = nil
	c.busTouched = false
}

// PowerOn returns the CPU to its freshly constructed state: registers
// and the cycle/instruction/interrupt counters zeroed. Unlike Reset it
// models a power cycle, not the architectural reset sequence — the
// machine's Boot still performs that (and its 4-cycle latency) on top.
func (c *CPU) PowerOn() {
	c.R = [isa.NumRegs]uint16{}
	c.Cycles, c.Insns, c.Interrupts = 0, 0, 0
	c.prevPC = 0
}

// staleAt reports whether the predecoded entry at pc has been
// invalidated by a write.
func (c *CPU) staleAt(pc uint16) bool {
	if c.dirty == nil {
		return false
	}
	i := int(pc) >> 1
	return c.dirty[i>>6]&(1<<(uint(i)&63)) != 0
}

// Flag reports whether the given status flag is set.
func (c *CPU) Flag(f uint16) bool { return c.R[isa.SR]&f != 0 }

// Off reports whether the CPU is in a low-power mode (CPUOFF set).
func (c *CPU) Off() bool { return c.Flag(isa.FlagCPUOff) }

// Reset performs the power-up/reset sequence: clear registers, load PC
// from the reset vector. The 4-cycle reset latency models the openMSP430
// reset-release to first-fetch delay.
func (c *CPU) Reset(resetVector uint16) {
	for i := range c.R {
		c.R[i] = 0
	}
	c.R[isa.PC] = c.bus.LoadWord(resetVector)
	c.prevPC = c.R[isa.PC]
	c.Cycles += 4
}

// --- bus helpers with watch notification -------------------------------

func (c *CPU) loadWord(pc, addr uint16) uint16 {
	if c.Watch != nil {
		c.Watch.OnRead(pc, addr, false)
	}
	if a := addr &^ 1; c.slab != nil && !c.slowMode && c.plain[a] {
		return uint16(c.slab[a]) | uint16(c.slab[a+1])<<8
	}
	c.busTouched = true
	return c.bus.LoadWord(addr)
}

func (c *CPU) storeWord(pc, addr, v uint16) {
	if c.Watch != nil {
		c.Watch.OnWrite(pc, addr, false, v)
	}
	if a := addr &^ 1; c.slab != nil && !c.slowMode && c.plain[a] {
		c.slab[a] = byte(v)
		c.slab[a+1] = byte(v >> 8)
		if h := *c.hook; h != nil {
			h(a, 2)
		}
		return
	}
	c.busTouched = true
	c.bus.StoreWord(addr, v)
}

func (c *CPU) loadByte(pc, addr uint16) uint8 {
	if c.Watch != nil {
		c.Watch.OnRead(pc, addr, true)
	}
	if c.slab != nil && !c.slowMode && c.plain[addr] {
		return c.slab[addr]
	}
	c.busTouched = true
	return c.bus.LoadByte(addr)
}

func (c *CPU) storeByte(pc, addr uint16, v uint8) {
	if c.Watch != nil {
		c.Watch.OnWrite(pc, addr, true, uint16(v))
	}
	if c.slab != nil && !c.slowMode && c.plain[addr] {
		c.slab[addr] = v
		if h := *c.hook; h != nil {
			h(addr, 1)
		}
		return
	}
	c.busTouched = true
	c.bus.StoreByte(addr, v)
}

// push stores v at --SP.
func (c *CPU) push(pc, v uint16) {
	c.R[isa.SP] -= 2
	c.storeWord(pc, c.R[isa.SP], v)
}

// --- interrupt service --------------------------------------------------

// serviceInterrupt performs the architectural interrupt sequence for the
// given line: push PC, push SR, clear SR (drops GIE and wakes CPUOFF),
// load PC from the vector.
func (c *CPU) serviceInterrupt(line int, vectorAddr uint16) {
	pc := c.R[isa.PC]
	if c.Watch != nil {
		c.Watch.OnInterrupt(pc, line)
	}
	c.push(pc, c.R[isa.PC])
	c.push(pc, c.R[isa.SR])
	c.R[isa.SR] = 0
	c.R[isa.PC] = c.loadWord(pc, vectorAddr)
	c.Cycles += isa.CyclesInterruptEntry
	c.Interrupts++
	if c.IRQ != nil {
		c.IRQ.Acknowledge(line)
	}
}

// VectorBase is the bottom of the interrupt vector table.
const VectorBase = 0xFFE0

// Step executes one instruction (or services one interrupt, or idles one
// cycle in a low-power mode) and returns the cycles consumed.
func (c *CPU) Step() (int, error) {
	start := c.Cycles

	// Interrupt acceptance happens between instructions when GIE is set.
	if c.IRQ != nil && c.Flag(isa.FlagGIE) {
		if line := c.IRQ.HighestPending(); line >= 0 {
			c.serviceInterrupt(line, VectorBase+uint16(line)*2)
			return int(c.Cycles - start), nil
		}
	}

	// Low-power mode: the core clock idles until an interrupt wakes it.
	if c.Off() {
		c.Cycles++
		return 1, nil
	}

	pc := c.R[isa.PC]
	if c.Watch != nil {
		c.Watch.OnFetch(c.prevPC, pc)
	}

	// Warm path: a predecoded entry that no write has touched skips the
	// speculative fetch and the decoder entirely; its threaded-code
	// lowering additionally skips the format switch and operand
	// resolution.
	if i := int(pc-c.preStart) >> 1; pc&1 == 0 && pc >= c.preStart && i < len(c.preEntries) {
		if e := &c.preEntries[i]; e.OK && !c.staleAt(pc) {
			c.R[isa.PC] = pc + e.Size
			c.prevPC = pc
			var err error
			if e.Fast && !c.slowMode {
				err = c.execUOp(pc, &e.U)
			} else {
				err = c.execute(pc, e.In)
			}
			if err != nil {
				return 0, &ExecError{PC: pc, Err: err}
			}
			c.Cycles += uint64(e.Cycles)
			c.Insns++
			return int(c.Cycles - start), nil
		}
	}

	// Fetch up to the maximum instruction length. Instruction fetches are
	// not reported through OnRead: the monitor sees them via OnFetch.
	words := [3]uint16{
		c.bus.LoadWord(pc),
		c.bus.LoadWord(pc + 2),
		c.bus.LoadWord(pc + 4),
	}
	in, _, err := isa.Decode(words[:])
	if err != nil {
		return 0, &ExecError{PC: pc, Err: err}
	}
	size := in.Size()
	c.R[isa.PC] = pc + size
	c.prevPC = pc

	if err := c.execute(pc, in); err != nil {
		return 0, &ExecError{PC: pc, Err: err}
	}
	c.Cycles += uint64(isa.Cycles(in))
	c.Insns++
	return int(c.Cycles - start), nil
}

// --- operand access -----------------------------------------------------

// operand location: either a register or a memory effective address.
type loc struct {
	isReg bool
	reg   isa.Reg
	ea    uint16
}

// resolve computes the location of an operand and performs any
// auto-increment side effect. pc is the instruction address; extAddr the
// address of the operand's extension word (for symbolic mode).
func (c *CPU) resolve(pc uint16, o isa.Operand, extAddr uint16, byteOp bool) loc {
	switch o.Mode {
	case isa.ModeRegister:
		return loc{isReg: true, reg: o.Reg}
	case isa.ModeIndexed:
		return loc{ea: c.R[o.Reg] + o.X}
	case isa.ModeSymbolic:
		return loc{ea: extAddr + o.X}
	case isa.ModeAbsolute:
		return loc{ea: o.X}
	case isa.ModeIndirect:
		return loc{ea: c.R[o.Reg]}
	case isa.ModeIndirectInc:
		ea := c.R[o.Reg]
		step := uint16(2)
		if byteOp {
			step = 1
		}
		c.R[o.Reg] = ea + step
		return loc{ea: ea}
	}
	// Immediate has no location; callers special-case it.
	return loc{}
}

// readLoc reads the operand value at l.
func (c *CPU) readLoc(pc uint16, l loc, byteOp bool) uint16 {
	if l.isReg {
		v := c.R[l.reg]
		if l.reg == isa.PC {
			// Register-mode PC reads observe the incremented PC
			// (address after the opcode word), as on real silicon.
			v = pc + 2
		}
		if byteOp {
			v &= 0x00FF
		}
		return v
	}
	if byteOp {
		return uint16(c.loadByte(pc, l.ea))
	}
	return c.loadWord(pc, l.ea)
}

// writeLoc writes v to the operand location. Byte writes to registers
// clear the upper byte (architectural rule).
func (c *CPU) writeLoc(pc uint16, l loc, byteOp bool, v uint16) {
	if l.isReg {
		if byteOp {
			v &= 0x00FF
		}
		if l.reg == isa.SP {
			v &^= 1 // SP is word-aligned in hardware
		}
		c.R[l.reg] = v
		return
	}
	if byteOp {
		c.storeByte(pc, l.ea, uint8(v))
		return
	}
	c.storeWord(pc, l.ea, v)
}

// srcValue evaluates the source operand (handling immediates) and returns
// its value.
func (c *CPU) srcValue(pc uint16, in isa.Instruction) uint16 {
	if in.Src.Mode == isa.ModeImmediate {
		v := in.Src.X
		if in.Byte {
			v &= 0x00FF
		}
		return v
	}
	srcOff, srcHas, _, _ := in.ExtOffsets()
	extAddr := pc
	if srcHas {
		extAddr = pc + uint16(srcOff)
	}
	l := c.resolve(pc, in.Src, extAddr, in.Byte)
	return c.readLoc(pc, l, in.Byte)
}

// dstLoc resolves the destination operand location.
func (c *CPU) dstLoc(pc uint16, in isa.Instruction) loc {
	_, _, dstOff, dstHas := in.ExtOffsets()
	extAddr := pc
	if dstHas {
		extAddr = pc + uint16(dstOff)
	}
	return c.resolve(pc, in.Dst, extAddr, in.Byte)
}

// --- flag computation ---------------------------------------------------

func (c *CPU) setFlags(set, clear uint16) {
	c.R[isa.SR] = c.R[isa.SR]&^clear | set
}

// nz computes N and Z for a result of the operation width.
func nz(r uint16, byteOp bool) uint16 {
	var f uint16
	mask, sign := width(byteOp)
	if r&mask == 0 {
		f |= isa.FlagZ
	}
	if r&sign != 0 {
		f |= isa.FlagN
	}
	return f
}

func width(byteOp bool) (mask, sign uint16) {
	if byteOp {
		return 0x00FF, 0x0080
	}
	return 0xFFFF, 0x8000
}

// addFlags computes C,Z,N,V for dst+src+carryIn at the given width, and
// the result.
func addFlags(src, dst uint16, carryIn uint16, byteOp bool) (r uint16, f uint16) {
	if !byteOp {
		return addFlagsW(src, dst, carryIn)
	}
	mask, sign := width(byteOp)
	src &= mask
	dst &= mask
	full := uint32(src) + uint32(dst) + uint32(carryIn)
	r = uint16(full) & mask
	f = nz(r, byteOp)
	if full > uint32(mask) {
		f |= isa.FlagC
	}
	if (src&sign) == (dst&sign) && (r&sign) != (src&sign) {
		f |= isa.FlagV
	}
	return r, f
}

// addFlagsW is addFlags specialized to word width with branchless flag
// assembly — the shape the register-destination hot path executes. Bit
// positions: C=1<<0 (carry out of bit 15), Z=1<<1, N=1<<2 (bit 15
// shifted down), V=1<<8 (equal operand signs, differing result sign).
func addFlagsW(src, dst, carryIn uint16) (r uint16, f uint16) {
	full := uint32(src) + uint32(dst) + uint32(carryIn)
	r = uint16(full)
	f = uint16(full>>16) |
		uint16((uint32(r)-1)>>31)<<1 |
		r>>13&isa.FlagN |
		(^(src^dst)&(src^r))>>7&isa.FlagV
	return r, f
}

// nzW is nz specialized to word width, branchless.
func nzW(r uint16) uint16 {
	return uint16((uint32(r)-1)>>31)<<1 | r>>13&isa.FlagN
}

// dadd performs one BCD addition at the given width.
func dadd(src, dst uint16, carryIn uint16, byteOp bool) (r uint16, f uint16) {
	digits := 4
	if byteOp {
		digits = 2
	}
	carry := carryIn
	var out uint16
	for i := 0; i < digits; i++ {
		d := (src>>(4*i))&0xF + (dst>>(4*i))&0xF + carry
		carry = 0
		if d > 9 {
			d -= 10
			carry = 1
		}
		out |= d << (4 * i)
	}
	f = nz(out, byteOp)
	if carry != 0 {
		f |= isa.FlagC
	}
	return out, f
}

// --- execution ----------------------------------------------------------

// allFlags is the set of arithmetic flags instructions may update.
const allFlags = isa.FlagC | isa.FlagZ | isa.FlagN | isa.FlagV

func (c *CPU) execute(pc uint16, in isa.Instruction) error {
	switch {
	case in.Op.IsJump():
		return c.execJump(pc, in)
	case in.Op == isa.RETI:
		sp := c.R[isa.SP]
		c.R[isa.SR] = c.loadWord(pc, sp)
		c.R[isa.PC] = c.loadWord(pc, sp+2)
		c.R[isa.SP] = sp + 4
		return nil
	case in.Op.IsOneOperand():
		return c.execFormat2(pc, in)
	default:
		return c.execFormat1(pc, in)
	}
}

// jumpTaken evaluates a format III condition against the status register.
func (c *CPU) jumpTaken(op isa.Opcode) bool {
	sr := c.R[isa.SR]
	cf, zf, nf, vf := sr&isa.FlagC != 0, sr&isa.FlagZ != 0, sr&isa.FlagN != 0, sr&isa.FlagV != 0
	switch op {
	case isa.JNE:
		return !zf
	case isa.JEQ:
		return zf
	case isa.JNC:
		return !cf
	case isa.JC:
		return cf
	case isa.JN:
		return nf
	case isa.JGE:
		return nf == vf
	case isa.JL:
		return nf != vf
	}
	return true // JMP
}

func (c *CPU) execJump(pc uint16, in isa.Instruction) error {
	if c.jumpTaken(in.Op) {
		c.R[isa.PC] = pc + 2 + 2*uint16(in.JumpOffset)
	}
	return nil
}

func (c *CPU) execFormat2(pc uint16, in isa.Instruction) error {
	// PUSH/CALL accept immediates; the others operate in place.
	if in.Src.Mode == isa.ModeImmediate {
		v := c.srcValue(pc, in)
		switch in.Op {
		case isa.PUSH:
			if in.Byte {
				c.R[isa.SP] -= 2
				c.storeByte(pc, c.R[isa.SP], uint8(v))
			} else {
				c.push(pc, v)
			}
			return nil
		case isa.CALL:
			c.push(pc, c.R[isa.PC]) // return address: next instruction
			c.R[isa.PC] = v
			return nil
		}
		return fmt.Errorf("immediate operand for %v", in.Op)
	}

	srcOff, srcHas, _, _ := in.ExtOffsets()
	extAddr := pc
	if srcHas {
		extAddr = pc + uint16(srcOff)
	}
	l := c.resolve(pc, in.Src, extAddr, in.Byte)
	return c.doFormat2(pc, in.Op, in.Byte, l)
}

// doFormat2 executes a single-operand instruction on a resolved
// location — the tail shared by the generic interpreter and the
// threaded-code path.
func (c *CPU) doFormat2(pc uint16, op isa.Opcode, byteOp bool, l loc) error {
	v := c.readLoc(pc, l, byteOp)
	_, sign := width(byteOp)

	switch op {
	case isa.RRC:
		carryIn := uint16(0)
		if c.Flag(isa.FlagC) {
			carryIn = sign
		}
		r := v>>1 | carryIn
		f := nz(r, byteOp)
		if v&1 != 0 {
			f |= isa.FlagC
		}
		c.writeLoc(pc, l, byteOp, r)
		c.setFlags(f, allFlags)
	case isa.RRA:
		r := v>>1 | v&sign
		f := nz(r, byteOp)
		if v&1 != 0 {
			f |= isa.FlagC
		}
		c.writeLoc(pc, l, byteOp, r)
		c.setFlags(f, allFlags)
	case isa.SWPB:
		c.writeLoc(pc, l, false, v>>8|v<<8)
	case isa.SXT:
		r := v & 0x00FF
		if r&0x0080 != 0 {
			r |= 0xFF00
		}
		f := nz(r, false)
		if r != 0 {
			f |= isa.FlagC
		}
		c.writeLoc(pc, l, false, r)
		c.setFlags(f, allFlags)
	case isa.PUSH:
		if byteOp {
			c.R[isa.SP] -= 2
			c.storeByte(pc, c.R[isa.SP], uint8(v))
		} else {
			c.push(pc, v)
		}
	case isa.CALL:
		c.push(pc, c.R[isa.PC])
		c.R[isa.PC] = v
	default:
		return fmt.Errorf("unhandled format II opcode %v", op)
	}
	return nil
}

func (c *CPU) execFormat1(pc uint16, in isa.Instruction) error {
	src := c.srcValue(pc, in)
	dl := c.dstLoc(pc, in)
	return c.doFormat1(pc, in.Op, in.Byte, src, dl)
}

// doFormat1 executes a double-operand instruction given the evaluated
// source and the resolved destination — the tail shared by the generic
// interpreter and the threaded-code path.
func (c *CPU) doFormat1(pc uint16, op isa.Opcode, byteOp bool, src uint16, dl loc) error {
	// MOV/BIC/BIS don't need the old destination value for flags, but
	// BIC/BIS need it for the operation itself.
	var dst uint16
	if op != isa.MOV {
		dst = c.readLoc(pc, dl, byteOp)
	}
	mask, sign := width(byteOp)
	carry := uint16(0)
	if c.Flag(isa.FlagC) {
		carry = 1
	}

	switch op {
	case isa.MOV:
		c.writeLoc(pc, dl, byteOp, src)
	case isa.ADD:
		r, f := addFlags(src, dst, 0, byteOp)
		c.writeLoc(pc, dl, byteOp, r)
		c.setFlags(f, allFlags)
	case isa.ADDC:
		r, f := addFlags(src, dst, carry, byteOp)
		c.writeLoc(pc, dl, byteOp, r)
		c.setFlags(f, allFlags)
	case isa.SUB:
		r, f := addFlags(^src&mask, dst, 1, byteOp)
		c.writeLoc(pc, dl, byteOp, r)
		c.setFlags(f, allFlags)
	case isa.SUBC:
		r, f := addFlags(^src&mask, dst, carry, byteOp)
		c.writeLoc(pc, dl, byteOp, r)
		c.setFlags(f, allFlags)
	case isa.CMP:
		_, f := addFlags(^src&mask, dst, 1, byteOp)
		c.setFlags(f, allFlags)
	case isa.DADD:
		// V is architecturally undefined after DADD; we clear it.
		r, f := dadd(src, dst, carry, byteOp)
		c.writeLoc(pc, dl, byteOp, r)
		c.setFlags(f, allFlags)
	case isa.BIT:
		r := src & dst & mask
		f := nz(r, byteOp)
		if r != 0 {
			f |= isa.FlagC
		}
		c.setFlags(f, allFlags)
	case isa.BIC:
		c.writeLoc(pc, dl, byteOp, dst&^src)
	case isa.BIS:
		c.writeLoc(pc, dl, byteOp, dst|src)
	case isa.XOR:
		r := (src ^ dst) & mask
		f := nz(r, byteOp)
		if r != 0 {
			f |= isa.FlagC
		}
		if src&sign != 0 && dst&sign != 0 {
			f |= isa.FlagV
		}
		c.writeLoc(pc, dl, byteOp, r)
		c.setFlags(f, allFlags)
	case isa.AND:
		r := src & dst & mask
		f := nz(r, byteOp)
		if r != 0 {
			f |= isa.FlagC
		}
		c.writeLoc(pc, dl, byteOp, r)
		c.setFlags(f, allFlags)
	default:
		return fmt.Errorf("unhandled format I opcode %v", op)
	}
	return nil
}

// --- threaded-code execution --------------------------------------------

// execUOp executes one predecoded micro-op. The operand shapes were
// lowered at predecode time (isa.LowerUOp), so no format switch,
// extension-word arithmetic or addressing-mode resolution happens here;
// the op bodies and every bus/watcher interaction are shared with the
// generic interpreter, keeping the two paths bit-identical.
func (c *CPU) execUOp(pc uint16, u *isa.UOp) error {
	switch u.Class {
	case isa.UFmt1Reg:
		return c.execFmt1Reg(u, c.uSrc(pc, u))
	case isa.UJump:
		if c.jumpTaken(u.Op) {
			c.R[isa.PC] = u.Target
		}
		return nil
	case isa.UReti:
		sp := c.R[isa.SP]
		c.R[isa.SR] = c.loadWord(pc, sp)
		c.R[isa.PC] = c.loadWord(pc, sp+2)
		c.R[isa.SP] = sp + 4
		return nil
	case isa.UFmt2:
		if u.SrcK == isa.SrcConst {
			// Lowering only emits constants for PUSH and CALL (the ops
			// whose immediate form is architecturally valid).
			v := u.SrcVal
			if u.Op == isa.PUSH {
				if u.Byte {
					c.R[isa.SP] -= 2
					c.storeByte(pc, c.R[isa.SP], uint8(v))
				} else {
					c.push(pc, v)
				}
				return nil
			}
			c.push(pc, c.R[isa.PC])
			c.R[isa.PC] = v
			return nil
		}
		return c.doFormat2(pc, u.Op, u.Byte, c.uLoc(u.SrcK, u.SrcReg, u.SrcVal, u.Inc))
	}
	src := c.uSrc(pc, u)
	var dl loc
	switch u.DstK {
	case isa.DstRegK:
		dl = loc{isReg: true, reg: u.DstReg}
	case isa.DstMemConst:
		dl = loc{ea: u.DstVal}
	default: // DstMemReg
		dl = loc{ea: c.R[u.DstReg] + u.DstVal}
	}
	return c.doFormat1(pc, u.Op, u.Byte, src, dl)
}

// uSrc evaluates a lowered source operand, performing any
// auto-increment side effect.
func (c *CPU) uSrc(pc uint16, u *isa.UOp) uint16 {
	switch u.SrcK {
	case isa.SrcConst:
		return u.SrcVal // pre-masked at lowering time
	case isa.SrcReg:
		v := c.R[u.SrcReg]
		if u.Byte {
			v &= 0x00FF
		}
		return v
	case isa.SrcMemConst:
		if u.Byte {
			return uint16(c.loadByte(pc, u.SrcVal))
		}
		return c.loadWord(pc, u.SrcVal)
	case isa.SrcMemReg:
		ea := c.R[u.SrcReg] + u.SrcVal
		if u.Byte {
			return uint16(c.loadByte(pc, ea))
		}
		return c.loadWord(pc, ea)
	default: // SrcMemRegInc
		ea := c.R[u.SrcReg]
		c.R[u.SrcReg] = ea + u.Inc
		if u.Byte {
			return uint16(c.loadByte(pc, ea))
		}
		return c.loadWord(pc, ea)
	}
}

// uLoc resolves a lowered source operand to a location (format II
// in-place ops), performing any auto-increment side effect.
func (c *CPU) uLoc(kind uint8, reg isa.Reg, val, inc uint16) loc {
	switch kind {
	case isa.SrcReg:
		return loc{isReg: true, reg: reg}
	case isa.SrcMemConst:
		return loc{ea: val}
	case isa.SrcMemReg:
		return loc{ea: c.R[reg] + val}
	default: // SrcMemRegInc
		ea := c.R[reg]
		c.R[reg] = ea + inc
		return loc{ea: ea}
	}
}

// --- basic-block execution ---------------------------------------------

// staleRange reports whether any dirty bit is set in the word-index
// range [w0, w1] — the block-granular form of staleAt.
func (c *CPU) staleRange(w0, w1 uint16) bool {
	d := c.dirty
	if d == nil {
		return false
	}
	i0, i1 := int(w0)>>6, int(w1)>>6
	lo := ^uint64(0) << (w0 & 63)
	hi := ^uint64(0) >> (63 - w1&63)
	if i0 == i1 {
		return d[i0]&lo&hi != 0
	}
	if d[i0]&lo != 0 {
		return true
	}
	for i := i0 + 1; i < i1; i++ {
		if d[i] != 0 {
			return true
		}
	}
	return d[i1]&hi != 0
}

// RunBlocks executes whole predecoded basic blocks back to back while
// the next block's precomputed cycle total fits under limit, servicing
// nothing in between: the machine loop guarantees no peripheral acts
// before limit, and every way the world can change mid-block hands
// control back here bit-exactly —
//
//   - an op whose bus access leaves plain RAM (peripheral register,
//     unmapped space) ends its block after that op, so halts, handler
//     catch-up and newly raised interrupts are observed exactly where
//     per-instruction dispatch would observe them;
//   - a write landing in the block's own fetch window (self-modifying
//     code) ends the block before the next op re-fetches, via the same
//     dirty map that guards individual predecoded entries;
//   - with GIE set the pending-interrupt poll runs between ops exactly
//     as Step's does (interrupt visibility can be PC-gated, so it is
//     not loop-invariant even though pure ops cannot raise requests);
//   - stop, when non-nil, is polled after every op (the machine's
//     monitor-violation check) and true ends execution there.
//
// Interrupt service, low-power idling and non-fused instructions are
// never handled here; the caller falls back to Step. Returns whether
// at least one instruction executed, the cycle count observed before
// the last executed instruction (the machine's violation re-sync
// anchor), and any execution fault.
func (c *CPU) RunBlocks(limit uint64, stop func() bool) (executed bool, lastPre uint64, err error) {
	if c.blkTable == nil || c.slowMode {
		return false, 0, nil
	}
	for {
		sr := c.R[isa.SR]
		if sr&isa.FlagCPUOff != 0 {
			return
		}
		gie := c.IRQ != nil && sr&isa.FlagGIE != 0
		if gie && c.IRQ.HighestPending() >= 0 {
			return
		}
		pc := c.R[isa.PC]
		if pc&1 != 0 || pc < c.blkStart {
			return
		}
		i := int(pc-c.blkStart) >> 1
		if i >= len(c.blkTable) {
			return
		}
		b := &c.blkTable[i]
		ops := b.Ops
		if ops == nil {
			return
		}
		// Admission: entry + total <= limit implies every op starts
		// strictly below limit, exactly the per-instruction rule.
		if c.Cycles+uint64(b.Cycles) > limit {
			return
		}
		if c.staleRange(b.W0, b.W1) {
			return
		}

		if b.Pure && !gie && stop == nil && c.Watch == nil {
			// Pure blocks touch no memory: nothing observes PC, cycles,
			// SR or prevPC mid-block, so account in bulk, elide dead
			// flag results, and execute the hot op shapes inline. No
			// pure op reads c.R[PC] (register-mode PC reads were folded
			// at predecode time), so the PC needs writing once, before
			// the final op executes. A block whose terminating jump
			// lands back on its own first op re-runs in place: pure ops
			// cannot change SR system bits, interrupt visibility or
			// code memory, so only the deadline admission needs
			// re-checking per trip.
			n := len(ops)
			for {
				c.R[isa.PC] = ops[n-1].Next
				for k := range ops {
					op := &ops[k]
					u := op.U
					switch u.Class {
					case isa.UFmt1Reg:
						src := u.SrcVal
						if u.SrcK == isa.SrcReg {
							src = c.R[u.SrcReg]
						}
						if op.Flags {
							if e := c.execFmt1Reg(u, src); e != nil {
								return c.blockFault(b, k, executed, lastPre, e)
							}
						} else {
							// The hottest dead-flag ops inline; the
							// rest share the out-of-line twin.
							switch u.Op {
							case isa.MOV:
								c.R[u.DstReg] = src
							case isa.ADD:
								c.R[u.DstReg] += src
							case isa.SUB:
								c.R[u.DstReg] -= src
							case isa.XOR:
								c.R[u.DstReg] ^= src
							case isa.AND:
								c.R[u.DstReg] &= src
							case isa.BIS:
								c.R[u.DstReg] |= src
							case isa.BIC:
								c.R[u.DstReg] &^= src
							default:
								c.fmt1RegDeadFlags(u, src)
							}
						}
					case isa.UJump:
						if c.jumpTaken(u.Op) {
							c.R[isa.PC] = u.Target
						}
					default:
						if e := c.execUOp(op.PC, u); e != nil {
							return c.blockFault(b, k, executed, lastPre, e)
						}
					}
				}
				c.Cycles += uint64(b.Cycles)
				c.Insns += uint64(n)
				executed = true
				if c.R[isa.PC] != pc || c.Cycles+uint64(b.Cycles) > limit {
					break
				}
			}
			c.prevPC = ops[n-1].PC
			continue
		}

		g0 := c.invGen
		c.busTouched = false
		for k := range ops {
			op := &ops[k]
			lastPre = c.Cycles
			if c.Watch != nil {
				c.Watch.OnFetch(c.prevPC, op.PC)
			}
			c.R[isa.PC] = op.Next
			c.prevPC = op.PC
			if e := c.execUOp(op.PC, op.U); e != nil {
				return executed, lastPre, &ExecError{PC: op.PC, Err: e}
			}
			c.Cycles += uint64(op.Cycles)
			c.Insns++
			executed = true
			if c.busTouched {
				return
			}
			if c.invGen != g0 {
				if c.staleRange(b.W0, b.W1) {
					return
				}
				g0 = c.invGen
			}
			if stop != nil && stop() {
				return
			}
			if gie && k+1 < len(ops) && c.IRQ.HighestPending() >= 0 {
				return
			}
		}
	}
}

// blockFault finalizes state when a fused op faults — unreachable for
// lowered ops in practice, kept for parity with Step: completed ops of
// the current trip stay accounted, the faulting op consumes nothing,
// and PC/prevPC are left exactly as Step would leave them. (Flag
// results elided as dead earlier in a pure block are not recomputed;
// they are only provably dead on the fault-free path.)
func (c *CPU) blockFault(b *isa.Block, k int, executed bool, lastPre uint64, e error) (bool, uint64, error) {
	for j := 0; j < k; j++ {
		c.Cycles += uint64(b.Ops[j].Cycles)
	}
	c.Insns += uint64(k)
	op := &b.Ops[k]
	c.R[isa.PC] = op.Next
	c.prevPC = op.PC
	return executed || k > 0, lastPre, &ExecError{PC: op.PC, Err: e}
}

// fmt1RegDeadFlags executes the register-destination micro-ops the
// pure block loop does not inline — the carry-consuming and flag-only
// shapes — when their flag results were proven dead within the block:
// the register effects of execFmt1Reg without the SR computation.
func (c *CPU) fmt1RegDeadFlags(u *isa.UOp, src uint16) {
	d := &c.R[u.DstReg]
	switch u.Op {
	case isa.ADDC:
		*d += src + c.R[isa.SR]&isa.FlagC
	case isa.SUBC:
		*d += ^src + c.R[isa.SR]&isa.FlagC
	case isa.DADD:
		r, _ := dadd(src, *d, c.R[isa.SR]&isa.FlagC, false)
		*d = r
	case isa.CMP, isa.BIT:
		// Flag-only ops whose flags are dead: no architectural effect.
	}
}

// execFmt1Reg executes a word-width double-operand micro-op whose
// destination is a plain general-purpose register (R4..R15) with the
// location indirection stripped and the source already evaluated. The
// op semantics mirror doFormat1 for word width exactly (mask 0xFFFF,
// sign 0x8000).
func (c *CPU) execFmt1Reg(u *isa.UOp, src uint16) error {
	d := &c.R[u.DstReg]
	dst := *d
	carry := c.R[isa.SR] & isa.FlagC // 0 or 1: FlagC is bit 0
	switch u.Op {
	case isa.MOV:
		*d = src
	case isa.ADD:
		r, f := addFlagsW(src, dst, 0)
		*d = r
		c.setFlags(f, allFlags)
	case isa.ADDC:
		r, f := addFlagsW(src, dst, carry)
		*d = r
		c.setFlags(f, allFlags)
	case isa.SUB:
		r, f := addFlagsW(^src, dst, 1)
		*d = r
		c.setFlags(f, allFlags)
	case isa.SUBC:
		r, f := addFlagsW(^src, dst, carry)
		*d = r
		c.setFlags(f, allFlags)
	case isa.CMP:
		_, f := addFlagsW(^src, dst, 1)
		c.setFlags(f, allFlags)
	case isa.DADD:
		r, f := dadd(src, dst, carry, false)
		*d = r
		c.setFlags(f, allFlags)
	case isa.BIT:
		r := src & dst
		f := nzW(r)
		if r != 0 {
			f |= isa.FlagC
		}
		c.setFlags(f, allFlags)
	case isa.BIC:
		*d = dst &^ src
	case isa.BIS:
		*d = dst | src
	case isa.XOR:
		r := src ^ dst
		f := nzW(r)
		if r != 0 {
			f |= isa.FlagC
		}
		if src&0x8000 != 0 && dst&0x8000 != 0 {
			f |= isa.FlagV
		}
		*d = r
		c.setFlags(f, allFlags)
	case isa.AND:
		r := src & dst
		f := nzW(r)
		if r != 0 {
			f |= isa.FlagC
		}
		*d = r
		c.setFlags(f, allFlags)
	default:
		return fmt.Errorf("unhandled format I opcode %v", u.Op)
	}
	return nil
}
