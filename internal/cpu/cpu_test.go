package cpu

import (
	"math/rand"
	"testing"

	"eilid/internal/isa"
	"eilid/internal/mem"
)

// program assembles instructions into PMEM at 0xE000, points the reset
// vector at them, and returns a reset CPU.
func program(t *testing.T, instrs ...isa.Instruction) (*CPU, *mem.Space) {
	t.Helper()
	s := mem.MustNewSpace(mem.DefaultLayout())
	var buf []byte
	for _, in := range instrs {
		for _, w := range isa.MustEncode(in) {
			buf = append(buf, byte(w), byte(w>>8))
		}
	}
	if err := s.LoadImage(0xE000, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadImage(0xFFFE, []byte{0x00, 0xE0}); err != nil {
		t.Fatal(err)
	}
	c := New(s)
	c.Reset(0xFFFE)
	return c, s
}

func step(t *testing.T, c *CPU, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestResetLoadsVector(t *testing.T) {
	c, _ := program(t, isa.Instruction{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.RegOp(4)})
	if c.PC() != 0xE000 {
		t.Fatalf("PC after reset = 0x%04x, want 0xe000", c.PC())
	}
	if c.Cycles != 4 {
		t.Errorf("reset cycles = %d, want 4", c.Cycles)
	}
}

func TestMovImmediate(t *testing.T) {
	c, _ := program(t, isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x1234), Dst: isa.RegOp(10)})
	step(t, c, 1)
	if c.R[10] != 0x1234 {
		t.Errorf("r10 = 0x%04x", c.R[10])
	}
	if c.PC() != 0xE004 {
		t.Errorf("PC = 0x%04x, want 0xe004", c.PC())
	}
	if c.Cycles != 4+2 {
		t.Errorf("cycles = %d, want 6", c.Cycles)
	}
}

func TestArithmeticFlags(t *testing.T) {
	// Each case: set r5, r6, run op r5->r6, check result and flags.
	cases := []struct {
		name       string
		op         isa.Opcode
		src, dst   uint16
		byteOp     bool
		want       uint16
		c, z, n, v bool
	}{
		{"add simple", isa.ADD, 1, 2, false, 3, false, false, false, false},
		{"add carry", isa.ADD, 0xFFFF, 2, false, 1, true, false, false, false},
		{"add zero+carry", isa.ADD, 0xFFFF, 1, false, 0, true, true, false, false},
		{"add overflow", isa.ADD, 0x7FFF, 1, false, 0x8000, false, false, true, true},
		{"add neg overflow", isa.ADD, 0x8000, 0x8000, false, 0, true, true, false, true},
		{"sub simple", isa.SUB, 1, 3, false, 2, true, false, false, false},
		{"sub zero", isa.SUB, 3, 3, false, 0, true, true, false, false},
		{"sub borrow", isa.SUB, 4, 3, false, 0xFFFF, false, false, true, false},
		{"sub overflow", isa.SUB, 1, 0x8000, false, 0x7FFF, true, false, false, true},
		{"cmp equal", isa.CMP, 7, 7, false, 7, true, true, false, false},
		{"and", isa.AND, 0x0F0F, 0x00FF, false, 0x000F, true, false, false, false},
		{"and zero", isa.AND, 0xF000, 0x0FFF, false, 0, false, true, false, false},
		{"xor", isa.XOR, 0xFF00, 0x0FF0, false, 0xF0F0, true, false, true, false},
		{"xor both neg", isa.XOR, 0x8001, 0x8010, false, 0x0011, true, false, false, true},
		{"bit set", isa.BIT, 0x0004, 0x0006, false, 0x0006, true, false, false, false},
		{"bit clear", isa.BIT, 0x0001, 0x0006, false, 0x0006, false, true, false, false},
		{"bis", isa.BIS, 0x00F0, 0x000F, false, 0x00FF, false, false, false, false},
		{"bic", isa.BIC, 0x00F0, 0x00FF, false, 0x000F, false, false, false, false},
		{"add.b carry", isa.ADD, 0xFF, 0x01, true, 0x00, true, true, false, false},
		{"add.b overflow", isa.ADD, 0x7F, 0x01, true, 0x80, false, false, true, true},
		{"sub.b", isa.SUB, 0x01, 0x00, true, 0xFF, false, false, true, false},
		{"dadd", isa.DADD, 0x0019, 0x0023, false, 0x0042, false, false, false, false},
		{"dadd carry", isa.DADD, 0x9999, 0x0001, false, 0x0000, true, true, false, false},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			c, _ := program(t,
				isa.Instruction{Op: isa.MOV, Src: isa.Imm(cse.src), Dst: isa.RegOp(5)},
				isa.Instruction{Op: isa.MOV, Src: isa.Imm(cse.dst), Dst: isa.RegOp(6)},
				isa.Instruction{Op: cse.op, Byte: cse.byteOp, Src: isa.RegOp(5), Dst: isa.RegOp(6)},
			)
			step(t, c, 3)
			if cse.op.WritesDst() {
				if c.R[6] != cse.want {
					t.Errorf("r6 = 0x%04x, want 0x%04x", c.R[6], cse.want)
				}
			}
			if cse.op.SetsFlags() {
				checkFlag := func(name string, f uint16, want bool) {
					if got := c.Flag(f); got != want {
						t.Errorf("flag %s = %v, want %v", name, got, want)
					}
				}
				checkFlag("C", isa.FlagC, cse.c)
				checkFlag("Z", isa.FlagZ, cse.z)
				checkFlag("N", isa.FlagN, cse.n)
				checkFlag("V", isa.FlagV, cse.v)
			}
		})
	}
}

func TestMovDoesNotTouchFlags(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(5)},
		isa.Instruction{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(5)}, // sets C,Z
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x1234), Dst: isa.RegOp(6)},
	)
	step(t, c, 3)
	if !c.Flag(isa.FlagC) || !c.Flag(isa.FlagZ) {
		t.Error("MOV clobbered flags")
	}
}

func TestAddcSubcUseCarry(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(5)},
		isa.Instruction{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(5)}, // C=1
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(10), Dst: isa.RegOp(6)},
		isa.Instruction{Op: isa.ADDC, Src: isa.Imm(0), Dst: isa.RegOp(6)}, // +carry
	)
	step(t, c, 4)
	if c.R[6] != 11 {
		t.Errorf("addc result = %d, want 11", c.R[6])
	}
}

func TestShiftsAndRotates(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x8003), Dst: isa.RegOp(5)},
		isa.Instruction{Op: isa.RRA, Src: isa.RegOp(5)}, // arithmetic: keeps sign
	)
	step(t, c, 2)
	if c.R[5] != 0xC001 {
		t.Errorf("rra = 0x%04x, want 0xc001", c.R[5])
	}
	if !c.Flag(isa.FlagC) {
		t.Error("rra should set C from LSB")
	}

	c, _ = program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xFFFF), Dst: isa.RegOp(5)},
		isa.Instruction{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(5)}, // C=1
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0002), Dst: isa.RegOp(6)},
		isa.Instruction{Op: isa.RRC, Src: isa.RegOp(6)},
	)
	step(t, c, 4)
	if c.R[6] != 0x8001 {
		t.Errorf("rrc = 0x%04x, want 0x8001 (carry shifted in)", c.R[6])
	}
	if c.Flag(isa.FlagC) {
		t.Error("rrc C should be old LSB = 0")
	}

	c, _ = program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x1234), Dst: isa.RegOp(5)},
		isa.Instruction{Op: isa.SWPB, Src: isa.RegOp(5)},
	)
	step(t, c, 2)
	if c.R[5] != 0x3412 {
		t.Errorf("swpb = 0x%04x", c.R[5])
	}

	c, _ = program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0080), Dst: isa.RegOp(5)},
		isa.Instruction{Op: isa.SXT, Src: isa.RegOp(5)},
	)
	step(t, c, 2)
	if c.R[5] != 0xFF80 {
		t.Errorf("sxt = 0x%04x, want 0xff80", c.R[5])
	}
	if !c.Flag(isa.FlagN) {
		t.Error("sxt should set N")
	}
}

func TestByteRegisterWriteClearsHighByte(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xABCD), Dst: isa.RegOp(5)},
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xFFEE), Dst: isa.RegOp(6)},
		isa.Instruction{Op: isa.MOV, Byte: true, Src: isa.RegOp(6), Dst: isa.RegOp(5)},
	)
	step(t, c, 3)
	if c.R[5] != 0x00EE {
		t.Errorf("byte mov to register = 0x%04x, want 0x00ee", c.R[5])
	}
}

func TestMemoryAddressingModes(t *testing.T) {
	c, s := program(t,
		// mov #0x0300, r4 ; mov #0xBEEF, 2(r4) ; mov 2(r4), r5
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0300), Dst: isa.RegOp(4)},
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xBEEF), Dst: isa.Indexed(2, 4)},
		isa.Instruction{Op: isa.MOV, Src: isa.Indexed(2, 4), Dst: isa.RegOp(5)},
		// absolute
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xCAFE), Dst: isa.Abs(0x0400)},
		isa.Instruction{Op: isa.MOV, Src: isa.Abs(0x0400), Dst: isa.RegOp(6)},
		// indirect and autoincrement
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0302), Dst: isa.RegOp(7)},
		isa.Instruction{Op: isa.MOV, Src: isa.Indirect(7), Dst: isa.RegOp(8)},
		isa.Instruction{Op: isa.MOV, Src: isa.IndirectInc(7), Dst: isa.RegOp(9)},
	)
	step(t, c, 8)
	if s.LoadWord(0x0302) != 0xBEEF {
		t.Errorf("indexed store failed: 0x%04x", s.LoadWord(0x0302))
	}
	if c.R[5] != 0xBEEF {
		t.Errorf("indexed load r5 = 0x%04x", c.R[5])
	}
	if c.R[6] != 0xCAFE {
		t.Errorf("absolute load r6 = 0x%04x", c.R[6])
	}
	if c.R[8] != 0xBEEF {
		t.Errorf("indirect load r8 = 0x%04x", c.R[8])
	}
	if c.R[9] != 0xBEEF {
		t.Errorf("autoincrement load r9 = 0x%04x", c.R[9])
	}
	if c.R[7] != 0x0304 {
		t.Errorf("autoincrement side effect r7 = 0x%04x, want 0x0304", c.R[7])
	}
}

func TestByteAutoIncrementStepsByOne(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0300), Dst: isa.RegOp(7)},
		isa.Instruction{Op: isa.MOV, Byte: true, Src: isa.IndirectInc(7), Dst: isa.RegOp(5)},
	)
	step(t, c, 2)
	if c.R[7] != 0x0301 {
		t.Errorf("byte @r7+ stepped to 0x%04x, want 0x0301", c.R[7])
	}
}

func TestSymbolicMode(t *testing.T) {
	// mov DATA, r5 where DATA is 0x0300: instruction at 0xE000, ext word
	// at 0xE002, so X = 0x0300 - 0xE002.
	var target, extWordAddr uint16 = 0x0300, 0xE002
	x := target - extWordAddr
	c, s := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Operand{Mode: isa.ModeSymbolic, Reg: isa.PC, X: x}, Dst: isa.RegOp(5)},
	)
	s.StoreWord(0x0300, 0x5AA5)
	step(t, c, 1)
	if c.R[5] != 0x5AA5 {
		t.Errorf("symbolic load r5 = 0x%04x, want 0x5aa5", c.R[5])
	}
}

func TestStackPushCallRet(t *testing.T) {
	// main: mov #0x0A00, sp ; call #func(0xE00A) ; jmp $ ;
	// func: mov #42, r10 ; ret
	c, s := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A00), Dst: isa.RegOp(isa.SP)},         // E000 (4 bytes)
		isa.Instruction{Op: isa.CALL, Src: isa.Imm(0xE00A)},                                // E004 (4 bytes)
		isa.Instruction{Op: isa.JMP, JumpOffset: -1},                                       // E008
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(42), Dst: isa.RegOp(10)},                 // E00A
		isa.Instruction{Op: isa.MOV, Src: isa.IndirectInc(isa.SP), Dst: isa.RegOp(isa.PC)}, // ret
	)
	step(t, c, 2) // mov sp, call
	if c.PC() != 0xE00A {
		t.Fatalf("call target PC = 0x%04x", c.PC())
	}
	if c.SP() != 0x09FE {
		t.Fatalf("SP after call = 0x%04x, want 0x09fe", c.SP())
	}
	if ra := s.LoadWord(0x09FE); ra != 0xE008 {
		t.Fatalf("pushed return address = 0x%04x, want 0xe008", ra)
	}
	step(t, c, 2) // mov #42, ret
	if c.R[10] != 42 {
		t.Errorf("r10 = %d", c.R[10])
	}
	if c.PC() != 0xE008 {
		t.Errorf("PC after ret = 0x%04x, want 0xe008", c.PC())
	}
	if c.SP() != 0x0A00 {
		t.Errorf("SP after ret = 0x%04x, want 0x0a00", c.SP())
	}
}

func TestCallRegisterIndirect(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A00), Dst: isa.RegOp(isa.SP)},
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xE100), Dst: isa.RegOp(13)},
		isa.Instruction{Op: isa.CALL, Src: isa.RegOp(13)},
	)
	step(t, c, 3)
	if c.PC() != 0xE100 {
		t.Errorf("indirect call PC = 0x%04x, want 0xe100", c.PC())
	}
}

func TestPushPop(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A00), Dst: isa.RegOp(isa.SP)},
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x1111), Dst: isa.RegOp(4)},
		isa.Instruction{Op: isa.PUSH, Src: isa.RegOp(4)},
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x2222), Dst: isa.RegOp(4)},
		isa.Instruction{Op: isa.MOV, Src: isa.IndirectInc(isa.SP), Dst: isa.RegOp(5)}, // pop r5
	)
	step(t, c, 5)
	if c.R[5] != 0x1111 {
		t.Errorf("pop r5 = 0x%04x, want 0x1111", c.R[5])
	}
	if c.SP() != 0x0A00 {
		t.Errorf("SP = 0x%04x, want 0x0a00", c.SP())
	}
}

func TestJumpConditions(t *testing.T) {
	// For each jump: set flags via a compare, then conditional jump over a
	// marker store.
	type jc struct {
		name  string
		a, b  uint16 // cmp #a, rb-with-b
		op    isa.Opcode
		taken bool
	}
	cases := []jc{
		{"jeq taken", 5, 5, isa.JEQ, true},
		{"jeq not", 5, 6, isa.JEQ, false},
		{"jne taken", 5, 6, isa.JNE, true},
		{"jne not", 5, 5, isa.JNE, false},
		{"jc taken", 5, 6, isa.JC, true}, // 6-5: no borrow -> C=1
		{"jc not", 6, 5, isa.JC, false},  // 5-6: borrow -> C=0
		{"jnc taken", 6, 5, isa.JNC, true},
		{"jn taken", 6, 5, isa.JN, true}, // 5-6 negative
		{"jn not", 5, 6, isa.JN, false},
		{"jge taken", 5, 6, isa.JGE, true}, // 6 >= 5 signed
		{"jge equal", 5, 5, isa.JGE, true},
		{"jge not", 6, 5, isa.JGE, false},
		{"jl taken", 6, 5, isa.JL, true},
		{"jl not", 5, 6, isa.JL, false},
		{"jmp", 0, 0, isa.JMP, true},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			c, _ := program(t,
				isa.Instruction{Op: isa.MOV, Src: isa.Imm(cse.b), Dst: isa.RegOp(6)},   // E000, 2-4 bytes... use imm always 4 bytes
				isa.Instruction{Op: isa.CMP, Src: isa.Imm(cse.a), Dst: isa.RegOp(6)},   //
				isa.Instruction{Op: cse.op, JumpOffset: 2},                             // skip next 2 words
				isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xDEAD), Dst: isa.RegOp(10)}, // 2 words
				isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xBEEF), Dst: isa.RegOp(11)},
			)
			step(t, c, 4)
			if cse.taken {
				if c.R[10] == 0xDEAD {
					t.Error("jump not taken but should be")
				}
				if c.R[11] != 0xBEEF {
					t.Error("landing instruction did not execute")
				}
			} else if c.R[10] != 0xDEAD {
				t.Error("jump taken but should not be")
			}
		})
	}
}

// testIRQ is a single-line IRQ source.
type testIRQ struct {
	pending map[int]bool
}

func (q *testIRQ) HighestPending() int {
	best := -1
	for l, p := range q.pending {
		if p && l > best {
			best = l
		}
	}
	return best
}
func (q *testIRQ) Acknowledge(line int) { q.pending[line] = false }

func TestInterruptServiceAndReti(t *testing.T) {
	// main: mov #0x0A00, sp ; eint ; loop: jmp loop
	// ISR at 0xE100: mov #77, r10 ; reti. Vector 8 (0xFFF0) -> 0xE100.
	c, s := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A00), Dst: isa.RegOp(isa.SP)},      // E000
		isa.Instruction{Op: isa.BIS, Src: isa.Imm(isa.FlagGIE), Dst: isa.RegOp(isa.SR)}, // E004: eint (CG 8)
		isa.Instruction{Op: isa.JMP, JumpOffset: -1},                                    // E006: loop
	)
	// Place ISR at 0xE100.
	var isr []byte
	for _, in := range []isa.Instruction{
		{Op: isa.MOV, Src: isa.Imm(77), Dst: isa.RegOp(10)},
		{Op: isa.RETI},
	} {
		for _, w := range isa.MustEncode(in) {
			isr = append(isr, byte(w), byte(w>>8))
		}
	}
	if err := s.LoadImage(0xE100, isr); err != nil {
		t.Fatal(err)
	}
	s.LoadImage(0xFFF0, []byte{0x00, 0xE1})

	irq := &testIRQ{pending: map[int]bool{}}
	c.IRQ = irq

	step(t, c, 3) // sp, eint, one loop iteration
	irq.pending[8] = true
	step(t, c, 1) // interrupt accepted
	if c.PC() != 0xE100 {
		t.Fatalf("PC after interrupt = 0x%04x, want 0xe100", c.PC())
	}
	if c.Flag(isa.FlagGIE) {
		t.Error("GIE must be cleared in ISR")
	}
	if c.SP() != 0x09FC {
		t.Fatalf("SP after interrupt = 0x%04x, want 0x09fc", c.SP())
	}
	// Context on stack: SR at 0(SP), return address at 2(SP).
	if sr := s.LoadWord(0x09FC); sr&isa.FlagGIE == 0 {
		t.Error("pushed SR should have GIE set")
	}
	if ra := s.LoadWord(0x09FE); ra != 0xE006 {
		t.Errorf("pushed return address = 0x%04x, want 0xe006", ra)
	}
	if irq.pending[8] {
		t.Error("interrupt not acknowledged")
	}
	step(t, c, 2) // mov #77, reti
	if c.R[10] != 77 {
		t.Errorf("ISR body did not run, r10 = %d", c.R[10])
	}
	if c.PC() != 0xE006 {
		t.Errorf("PC after reti = 0x%04x, want 0xe006", c.PC())
	}
	if !c.Flag(isa.FlagGIE) {
		t.Error("reti must restore GIE")
	}
	if c.SP() != 0x0A00 {
		t.Errorf("SP after reti = 0x%04x", c.SP())
	}
	if c.Interrupts != 1 {
		t.Errorf("Interrupts = %d", c.Interrupts)
	}
}

func TestInterruptMaskedWithoutGIE(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A00), Dst: isa.RegOp(isa.SP)},
		isa.Instruction{Op: isa.JMP, JumpOffset: -1},
	)
	irq := &testIRQ{pending: map[int]bool{8: true}}
	c.IRQ = irq
	step(t, c, 5)
	if c.Interrupts != 0 {
		t.Error("interrupt serviced despite GIE clear")
	}
	if !irq.pending[8] {
		t.Error("pending flag consumed while masked")
	}
}

func TestCPUOffIdlesAndWakes(t *testing.T) {
	// mov sp ; bis #(GIE|CPUOFF), sr ; (sleep) ISR clears nothing -> after
	// reti CPUOFF restored; we check the idle path ticks cycles.
	c, s := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A00), Dst: isa.RegOp(isa.SP)},
		isa.Instruction{Op: isa.BIS, Src: isa.Imm(isa.FlagGIE | isa.FlagCPUOff), Dst: isa.RegOp(isa.SR)},
	)
	var isr []byte
	for _, in := range []isa.Instruction{
		{Op: isa.MOV, Src: isa.Imm(9), Dst: isa.RegOp(10)},
		// Clear CPUOFF in the saved SR so the main program resumes:
		// bic #CPUOFF, 0(sp)
		{Op: isa.BIC, Src: isa.Imm(isa.FlagCPUOff), Dst: isa.Indexed(0, isa.SP)},
		{Op: isa.RETI},
	} {
		for _, w := range isa.MustEncode(in) {
			isr = append(isr, byte(w), byte(w>>8))
		}
	}
	s.LoadImage(0xE100, isr)
	s.LoadImage(0xFFF0, []byte{0x00, 0xE1})
	irq := &testIRQ{pending: map[int]bool{}}
	c.IRQ = irq

	step(t, c, 2)
	if !c.Off() {
		t.Fatal("CPUOFF not set")
	}
	before := c.Cycles
	step(t, c, 3) // idle ticks
	if c.Cycles != before+3 {
		t.Errorf("idle consumed %d cycles, want 3", c.Cycles-before)
	}
	irq.pending[8] = true
	step(t, c, 4) // accept, isr x2, reti
	if c.R[10] != 9 {
		t.Error("ISR did not run from low-power mode")
	}
	if c.Off() {
		t.Error("CPUOFF should be cleared by ISR stack manipulation")
	}
}

// recWatcher records watcher events.
type recWatcher struct {
	fetches    []uint16
	reads      []uint16
	writes     []uint16
	interrupts []int
}

func (w *recWatcher) OnFetch(prev, pc uint16)                   { w.fetches = append(w.fetches, pc) }
func (w *recWatcher) OnRead(pc, addr uint16, b bool)            { w.reads = append(w.reads, addr) }
func (w *recWatcher) OnWrite(pc, addr uint16, b bool, v uint16) { w.writes = append(w.writes, addr) }
func (w *recWatcher) OnInterrupt(pc uint16, line int)           { w.interrupts = append(w.interrupts, line) }

func TestWatcherSeesAccesses(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xBEEF), Dst: isa.Abs(0x0300)},
		isa.Instruction{Op: isa.MOV, Src: isa.Abs(0x0300), Dst: isa.RegOp(5)},
	)
	w := &recWatcher{}
	c.Watch = w
	step(t, c, 2)
	if len(w.fetches) != 2 || w.fetches[0] != 0xE000 {
		t.Errorf("fetches = %v", w.fetches)
	}
	if len(w.writes) != 1 || w.writes[0] != 0x0300 {
		t.Errorf("writes = %v", w.writes)
	}
	if len(w.reads) != 1 || w.reads[0] != 0x0300 {
		t.Errorf("reads = %v", w.reads)
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	s := mem.MustNewSpace(mem.DefaultLayout())
	s.LoadImage(0xE000, []byte{0x00, 0x00}) // reserved opcode
	s.LoadImage(0xFFFE, []byte{0x00, 0xE0})
	c := New(s)
	c.Reset(0xFFFE)
	if _, err := c.Step(); err == nil {
		t.Fatal("expected fault on illegal instruction")
	}
}

// Reference-model property test: ADD/SUB/CMP flags against plain integer
// arithmetic.
func TestALUReferenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		a, b := uint16(r.Uint32()), uint16(r.Uint32())
		c, _ := program(t,
			isa.Instruction{Op: isa.MOV, Src: isa.Imm(a), Dst: isa.RegOp(5)},
			isa.Instruction{Op: isa.MOV, Src: isa.Imm(b), Dst: isa.RegOp(6)},
			isa.Instruction{Op: isa.ADD, Src: isa.RegOp(5), Dst: isa.RegOp(6)},
		)
		step(t, c, 3)
		want := uint16(uint32(a) + uint32(b))
		if c.R[6] != want {
			t.Fatalf("add 0x%04x+0x%04x = 0x%04x, want 0x%04x", a, b, c.R[6], want)
		}
		if got, want := c.Flag(isa.FlagC), uint32(a)+uint32(b) > 0xFFFF; got != want {
			t.Fatalf("add C = %v, want %v (a=0x%04x b=0x%04x)", got, want, a, b)
		}
		if got, want := c.Flag(isa.FlagZ), want == 0; got != want {
			t.Fatalf("add Z mismatch")
		}
		if got, want := c.Flag(isa.FlagN), want&0x8000 != 0; got != want {
			t.Fatalf("add N mismatch")
		}
		sa, sb, sw := int16(a), int16(b), int16(want)
		wantV := (sa >= 0) == (sb >= 0) && (sw >= 0) != (sa >= 0)
		if got := c.Flag(isa.FlagV); got != wantV {
			t.Fatalf("add V = %v, want %v (a=%d b=%d)", got, wantV, sa, sb)
		}
	}
}

func TestSUBReferenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		a, b := uint16(r.Uint32()), uint16(r.Uint32())
		c, _ := program(t,
			isa.Instruction{Op: isa.MOV, Src: isa.Imm(a), Dst: isa.RegOp(5)},
			isa.Instruction{Op: isa.MOV, Src: isa.Imm(b), Dst: isa.RegOp(6)},
			isa.Instruction{Op: isa.SUB, Src: isa.RegOp(5), Dst: isa.RegOp(6)}, // r6 = b - a
		)
		step(t, c, 3)
		want := b - a
		if c.R[6] != want {
			t.Fatalf("sub result mismatch")
		}
		if got, wantC := c.Flag(isa.FlagC), b >= a; got != wantC {
			t.Fatalf("sub C = %v, want %v (b=0x%04x a=0x%04x)", got, wantC, b, a)
		}
	}
}

func TestCyclesAccumulateMonotonically(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A00), Dst: isa.RegOp(isa.SP)},
		isa.Instruction{Op: isa.PUSH, Src: isa.RegOp(4)},
		isa.Instruction{Op: isa.JMP, JumpOffset: -1},
	)
	last := c.Cycles
	for i := 0; i < 10; i++ {
		n, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if n <= 0 {
			t.Fatalf("step consumed %d cycles", n)
		}
		if c.Cycles != last+uint64(n) {
			t.Fatal("cycle accounting inconsistent")
		}
		last = c.Cycles
	}
}

// TestDADDReferenceProperty checks BCD addition against an independent
// decimal reference model.
func TestDADDReferenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	toBCD := func(v int) uint16 {
		var out uint16
		for i := 0; i < 4; i++ {
			out |= uint16(v%10) << (4 * i)
			v /= 10
		}
		return out
	}
	for i := 0; i < 2000; i++ {
		x, y := r.Intn(10000), r.Intn(10000)
		c, _ := program(t,
			isa.Instruction{Op: isa.MOV, Src: isa.Imm(toBCD(x)), Dst: isa.RegOp(5)},
			isa.Instruction{Op: isa.MOV, Src: isa.Imm(toBCD(y)), Dst: isa.RegOp(6)},
			isa.Instruction{Op: isa.BIC, Src: isa.Imm(isa.FlagC), Dst: isa.RegOp(isa.SR)},
			isa.Instruction{Op: isa.DADD, Src: isa.RegOp(5), Dst: isa.RegOp(6)},
		)
		step(t, c, 4)
		sum := x + y
		want := toBCD(sum % 10000)
		if c.R[6] != want {
			t.Fatalf("dadd %04d+%04d = 0x%04x, want 0x%04x", x, y, c.R[6], want)
		}
		if got, wantC := c.Flag(isa.FlagC), sum >= 10000; got != wantC {
			t.Fatalf("dadd %04d+%04d carry = %v, want %v", x, y, got, wantC)
		}
	}
}

// TestByteMemoryRMW exercises byte-wide read-modify-write operations on
// memory destinations.
func TestByteMemoryRMW(t *testing.T) {
	c, s := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0xA55A), Dst: isa.Abs(0x0300)},
		isa.Instruction{Op: isa.XOR, Byte: true, Src: isa.Imm(0x00FF), Dst: isa.Abs(0x0300)},
		isa.Instruction{Op: isa.ADD, Byte: true, Src: isa.Imm(1), Dst: isa.Abs(0x0301)},
	)
	step(t, c, 3)
	if got := s.LoadWord(0x0300); got != 0xA6A5 {
		t.Errorf("byte RMW result = 0x%04x, want 0xa6a5", got)
	}
}

// TestSymbolicDestination verifies PC-relative stores.
func TestSymbolicDestination(t *testing.T) {
	// mov #0xBEEF, X(pc) with the extension words at E002 (src) and
	// E004 (dst): dst EA = 0xE004 + X. Target DMEM 0x0300.
	var target, dstExt uint16 = 0x0300, 0xE004
	c, s := program(t,
		isa.Instruction{
			Op:  isa.MOV,
			Src: isa.Imm(0xBEEF),
			Dst: isa.Operand{Mode: isa.ModeSymbolic, Reg: isa.PC, X: target - dstExt},
		},
	)
	step(t, c, 1)
	if got := s.LoadWord(0x0300); got != 0xBEEF {
		t.Errorf("symbolic store = 0x%04x", got)
	}
	_ = c
}

// TestInterruptDuringMultiWordInstruction ensures interrupts are only
// accepted at instruction boundaries.
func TestInterruptBoundaries(t *testing.T) {
	c, s := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A00), Dst: isa.RegOp(isa.SP)},
		isa.Instruction{Op: isa.BIS, Src: isa.Imm(isa.FlagGIE), Dst: isa.RegOp(isa.SR)},
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x1111), Dst: isa.Abs(0x0300)}, // 3-word instr
		isa.Instruction{Op: isa.JMP, JumpOffset: -1},
	)
	var isr []byte
	for _, in := range []isa.Instruction{
		{Op: isa.MOV, Src: isa.Abs(0x0300), Dst: isa.RegOp(10)},
		{Op: isa.RETI},
	} {
		for _, w := range isa.MustEncode(in) {
			isr = append(isr, byte(w), byte(w>>8))
		}
	}
	s.LoadImage(0xE100, isr)
	s.LoadImage(0xFFF0, []byte{0x00, 0xE1})
	irq := &testIRQ{pending: map[int]bool{}}
	c.IRQ = irq

	step(t, c, 2)
	irq.pending[8] = true
	// The pending interrupt is taken BEFORE the mov executes; the ISR
	// must observe the memory still at its old value, then the mov runs
	// to completion after reti.
	step(t, c, 1) // interrupt entry
	if c.PC() != 0xE100 {
		t.Fatalf("interrupt not taken at boundary, pc=0x%04x", c.PC())
	}
	step(t, c, 2) // isr + reti
	if c.R[10] != 0 {
		t.Error("ISR observed a half-executed store")
	}
	step(t, c, 1) // the interrupted mov now runs
	if s.LoadWord(0x0300) != 0x1111 {
		t.Error("interrupted instruction did not complete after reti")
	}
}

// TestSPAlignment verifies the stack pointer ignores its LSB.
func TestSPAlignment(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x0A01), Dst: isa.RegOp(isa.SP)},
	)
	step(t, c, 1)
	if c.SP() != 0x0A00 {
		t.Errorf("SP = 0x%04x, want word-aligned 0x0a00", c.SP())
	}
}
