package cpu

import (
	"testing"

	"eilid/internal/isa"
	"eilid/internal/mem"
)

// predecoded installs a decode cache over the fetchable upper memory of
// the test space, mirroring how core.Machine.EnablePredecode wires it.
func predecoded(c *CPU, s *mem.Space) *isa.Predecoded {
	p := isa.Predecode(s.PeekWord, 0xE000, 0xFFFF, nil)
	c.SetPredecoded(p)
	return p
}

// TestInvalidateCodeBelowCacheIsFree pins the reset-path fix: writes
// that land entirely below the cached window (every ordinary DMEM
// store, and the DMEM + secure-data sweep a device reset performs) must
// not allocate or touch the dirty bitmap, while writes reaching the
// window still stale it.
func TestInvalidateCodeBelowCacheIsFree(t *testing.T) {
	c, s := program(t, isa.Instruction{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.RegOp(4)})
	predecoded(c, s)

	// The whole volatile sweep of a device reset: DMEM + secure data.
	c.InvalidateCode(0x0200, 0x0800)
	c.InvalidateCode(0x0A00, 0x0100)
	if c.dirty != nil {
		t.Fatal("below-cache invalidation allocated the dirty bitmap")
	}
	if c.invGen != 0 {
		t.Fatalf("below-cache invalidation bumped invGen to %d", c.invGen)
	}

	// A write whose affected fetch windows reach the cache start must
	// still stale the first cached entry.
	c.InvalidateCode(0xDFFE, 4)
	if !c.staleAt(0xE000) {
		t.Fatal("boundary write did not stale the first cached entry")
	}
	if c.invGen == 0 {
		t.Fatal("boundary write did not bump invGen")
	}
}

// TestResetCodeStateDiscardsStaleness pins the recycle primitive: after
// ResetCodeState the cache is trusted again (the caller restored the
// exact image it was built from), the generation advanced, and the
// installed cache and block table remain in place.
func TestResetCodeStateDiscardsStaleness(t *testing.T) {
	c, s := program(t, isa.Instruction{Op: isa.MOV, Src: isa.Imm(1), Dst: isa.RegOp(4)})
	p := predecoded(c, s)
	c.InvalidateCode(0xE000, 2)
	if !c.staleAt(0xE000) {
		t.Fatal("setup: entry not stale")
	}
	g := c.invGen
	c.ResetCodeState()
	if c.staleAt(0xE000) {
		t.Fatal("staleness survived ResetCodeState")
	}
	if c.invGen <= g {
		t.Fatal("ResetCodeState did not advance invGen")
	}
	if c.Predecoded() != p {
		t.Fatal("ResetCodeState dropped the installed decode cache")
	}
}

// TestPowerOnZeroesArchitecturalState pins the recycle primitive on the
// CPU side: registers and all counters return to construction state.
func TestPowerOnZeroesArchitecturalState(t *testing.T) {
	c, _ := program(t,
		isa.Instruction{Op: isa.MOV, Src: isa.Imm(0x1234), Dst: isa.RegOp(10)},
		isa.Instruction{Op: isa.ADD, Src: isa.Imm(1), Dst: isa.RegOp(10)},
	)
	step(t, c, 2)
	if c.Cycles == 0 || c.Insns == 0 {
		t.Fatal("setup: nothing executed")
	}
	c.PowerOn()
	if c.R != [isa.NumRegs]uint16{} {
		t.Errorf("registers after PowerOn: %v", c.R)
	}
	if c.Cycles != 0 || c.Insns != 0 || c.Interrupts != 0 || c.prevPC != 0 {
		t.Errorf("counters after PowerOn: cycles=%d insns=%d irqs=%d prevPC=%04x",
			c.Cycles, c.Insns, c.Interrupts, c.prevPC)
	}
}
