// Package eval regenerates the paper's evaluation artifacts: Table IV
// (compile-time / binary-size / run-time overhead for the seven
// applications), Figure 10 (hardware cost comparison), the §VI
// micro-overhead numbers (store/check path cost), and the static Tables
// I-III. The cmd/eilid-bench tool and the repository's benchmark suite
// are thin wrappers around this package.
package eval

import (
	"fmt"
	"io"
	"strings"
	"time"

	"eilid/internal/apps"
	"eilid/internal/core"
	"eilid/internal/fleet"
	"eilid/internal/fleet/pool"
)

// ClockMHz is the simulated core clock, matching the paper's 100 MHz
// Vivado behavioural simulation.
const ClockMHz = 100

// CyclesToMicros converts MCLK cycles to microseconds at ClockMHz.
func CyclesToMicros(cycles uint64) float64 {
	return float64(cycles) / ClockMHz
}

// TableIVRow is one application's measurements.
type TableIVRow struct {
	App string

	CompileOrig  time.Duration // one assembler run
	CompileEILID time.Duration // full three-iteration pipeline

	SizeOrig  int // application bytes in PMEM (original)
	SizeEILID int // instrumented bytes incl. the NS gateway

	CyclesOrig  uint64
	CyclesEILID uint64

	Sites int // instrumented locations
}

// Diff percentages, as the paper reports them.
func (r TableIVRow) CompileDiffPct() float64 {
	return pct(float64(r.CompileEILID), float64(r.CompileOrig))
}

func (r TableIVRow) SizeDiffPct() float64 {
	return pct(float64(r.SizeEILID), float64(r.SizeOrig))
}

func (r TableIVRow) TimeDiffPct() float64 {
	return pct(float64(r.CyclesEILID), float64(r.CyclesOrig))
}

func pct(after, before float64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (after - before) / before
}

// TableIV is the full software-overhead table.
type TableIV struct {
	Rows []TableIVRow
	// CompileIterations is how many times each build was repeated for
	// the wall-clock average (the paper uses 50).
	CompileIterations int
}

// Averages returns the mean diff percentages (the paper's bottom row:
// 34.30% / 10.78% / 7.35%).
func (t *TableIV) Averages() (compile, size, runtime float64) {
	if len(t.Rows) == 0 {
		return
	}
	for _, r := range t.Rows {
		compile += r.CompileDiffPct()
		size += r.SizeDiffPct()
		runtime += r.TimeDiffPct()
	}
	n := float64(len(t.Rows))
	return compile / n, size / n, runtime / n
}

// MeasureOptions tunes the harness.
type MeasureOptions struct {
	// CompileIterations per build for wall-clock averaging (paper: 50).
	CompileIterations int
	// Apps restricts the set (nil = all seven).
	Apps []apps.App
	// Workers measures that many applications concurrently through the
	// fleet worker pool (<=1 = sequential). The simulated dimensions
	// (cycles, sizes, sites) are identical at any worker count; the
	// compile wall-clock averages pick up scheduler noise under
	// contention, so keep Workers at 1 when those numbers matter.
	Workers int
}

// MeasureTableIV builds and runs every application twice (original on
// the unprotected device, instrumented on the EILID device) and measures
// the three overhead dimensions. Rows come back in application order
// regardless of Workers.
func MeasureTableIV(p *core.Pipeline, opts MeasureOptions) (*TableIV, error) {
	iters := opts.CompileIterations
	if iters <= 0 {
		iters = 50
	}
	list := opts.Apps
	if list == nil {
		list = apps.All()
	}
	table := &TableIV{CompileIterations: iters}
	rows := pool.Do(len(list), opts.Workers, func(i int) pool.Err[TableIVRow] {
		row, err := measureApp(p, list[i], iters)
		if err != nil {
			err = fmt.Errorf("eval: %s: %w", list[i].Name, err)
		}
		return pool.Err[TableIVRow]{V: row, Err: err}
	})
	if err := pool.First(rows); err != nil {
		return nil, err
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, r.V)
	}
	return table, nil
}

func measureApp(p *core.Pipeline, app apps.App, iters int) (TableIVRow, error) {
	row := TableIVRow{App: app.Name}

	// Warm both build paths once (untimed) so allocator and map-growth
	// effects do not land on whichever path is measured first.
	if _, err := p.BuildOriginal(app.Name+".s", app.Source); err != nil {
		return row, err
	}
	if _, err := p.Build(app.Name+".s", app.Source); err != nil {
		return row, err
	}

	// Compile-time: original = one assembler run.
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := p.BuildOriginal(app.Name+".s", app.Source); err != nil {
			return row, err
		}
	}
	row.CompileOrig = time.Since(start) / time.Duration(iters)

	// Compile-time: EILID = the full Figure 2 pipeline (three assembler
	// runs plus two instrumentation passes).
	start = time.Now()
	var build *core.BuildResult
	var err error
	for i := 0; i < iters; i++ {
		if build, err = p.Build(app.Name+".s", app.Source); err != nil {
			return row, err
		}
	}
	row.CompileEILID = time.Since(start) / time.Duration(iters)

	layout := p.Config().Layout
	row.SizeOrig = build.Original.Image.SizeInRange(layout.PMEMStart, layout.PMEMEnd)
	row.SizeEILID = build.Instrumented.Image.SizeInRange(layout.PMEMStart, layout.PMEMEnd)
	row.Sites = build.Stats.Sites()

	// Run time.
	orig, err := runApp(p, app, build, core.DefenseBaseline)
	if err != nil {
		return row, err
	}
	inst, err := runApp(p, app, build, core.DefenseEILID)
	if err != nil {
		return row, err
	}
	if inst.Resets != 0 {
		return row, fmt.Errorf("benign instrumented run reset %d times", inst.Resets)
	}
	if err := apps.Equivalent(orig, inst); err != nil {
		return row, fmt.Errorf("instrumented behaviour diverged: %w", err)
	}
	row.CyclesOrig = orig.Cycles
	row.CyclesEILID = inst.Cycles
	return row, nil
}

func runApp(p *core.Pipeline, app apps.App, build *core.BuildResult, spec *core.DefenseSpec) (*apps.Inspection, error) {
	// One shared run sequence with the fleet jobs (machine setup,
	// decode cache, UART feed, boot, run, inspect), so the Table IV and
	// fleet paths cannot drift apart.
	insp, _, err := fleet.ExecuteApp(p, app, build, spec, nil)
	if err != nil {
		return nil, err
	}
	if chk := app.Check(insp); chk != nil {
		return nil, fmt.Errorf("behaviour check failed: %w", chk)
	}
	return insp, nil
}

// PaperTableIV holds the published Table IV numbers for side-by-side
// reporting (compile ms, binary bytes, running µs; original then EILID).
type PaperRow struct {
	App                          string
	CompileOrigMS, CompileEMS    float64
	SizeOrig, SizeE              int
	TimeOrigUS, TimeEUS          float64
	CompilePct, SizePct, TimePct float64
}

// PaperTableIV is the published table.
func PaperTableIV() []PaperRow {
	return []PaperRow{
		{"LightSensor", 321, 419, 233, 246, 251, 277, 30.53, 5.58, 10.36},
		{"UltrasonicRanger", 334, 423, 296, 349, 2094, 2303, 26.65, 17.91, 9.98},
		{"FireSensor", 341, 484, 465, 565, 4105, 4648, 41.94, 21.51, 13.23},
		{"SyringePump", 318, 458, 274, 308, 2151, 2265, 44.03, 12.41, 5.30},
		{"TempSensor", 351, 465, 305, 325, 1257, 1327, 32.48, 6.56, 5.57},
		{"Charlieplexing", 360, 455, 325, 342, 4930, 5146, 26.39, 5.23, 4.38},
		{"LcdSensor", 370, 474, 604, 642, 4877, 5005, 38.11, 6.29, 2.62},
	}
}

// PaperAverages are the published bottom-row averages.
func PaperAverages() (compile, size, runtime float64) { return 34.30, 10.78, 7.35 }

// Render writes the measured table with the paper's run-time overhead
// column alongside.
func (t *TableIV) Render(w io.Writer) {
	paper := map[string]PaperRow{}
	for _, r := range PaperTableIV() {
		paper[r.App] = r
	}
	fmt.Fprintf(w, "Table IV: EILID software overhead (compile averaged over %d builds; run time at %d MHz)\n", t.CompileIterations, ClockMHz)
	fmt.Fprintf(w, "%-17s %12s %12s %8s | %7s %7s %7s | %10s %10s %7s %7s\n",
		"Application", "compile-orig", "compile-EILID", "diff", "B-orig", "B-EILID", "diff", "us-orig", "us-EILID", "diff", "paper")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-17s %12s %12s %7.2f%% | %7d %7d %6.2f%% | %10.1f %10.1f %6.2f%% %6.2f%%\n",
			r.App,
			r.CompileOrig.Round(time.Microsecond), r.CompileEILID.Round(time.Microsecond), r.CompileDiffPct(),
			r.SizeOrig, r.SizeEILID, r.SizeDiffPct(),
			CyclesToMicros(r.CyclesOrig), CyclesToMicros(r.CyclesEILID), r.TimeDiffPct(),
			paper[r.App].TimePct)
	}
	c, s, rt := t.Averages()
	pc, ps, prt := PaperAverages()
	fmt.Fprintf(w, "%-17s %12s %12s %7.2f%% | %7s %7s %6.2f%% | %10s %10s %6.2f%% %6.2f%%\n",
		"Average", "", "", c, "", "", s, "", "", rt, prt)
	fmt.Fprintf(w, "(paper averages: compile %.2f%%, size %.2f%%, run time %.2f%%)\n", pc, ps, prt)
	fmt.Fprintln(w, strings.TrimRight(`
Notes: compile-time ratios are not comparable in absolute terms (the
paper re-runs a C toolchain; this pipeline is a native assembler), and
size percentages run higher because the hand-written benchmark apps are
smaller than the paper's C builds while the fixed NS gateway is counted
with the application. The run-time column is the like-for-like result.`, "\n"))
}
