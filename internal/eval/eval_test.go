package eval

import (
	"strings"
	"testing"

	"eilid/internal/apps"
	"eilid/internal/core"
)

func pipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMeasureTableIVShape(t *testing.T) {
	p := pipeline(t)
	// Use few compile iterations to keep the test quick; all seven apps.
	table, err := MeasureTableIV(p, MeasureOptions{CompileIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(table.Rows))
	}

	for _, r := range table.Rows {
		if r.CompileEILID <= r.CompileOrig {
			t.Errorf("%s: EILID compile (%v) not slower than original (%v)", r.App, r.CompileEILID, r.CompileOrig)
		}
		if r.SizeEILID <= r.SizeOrig {
			t.Errorf("%s: instrumented binary not larger", r.App)
		}
		if r.CyclesEILID <= r.CyclesOrig {
			t.Errorf("%s: instrumented run not slower", r.App)
		}
		// Paper shape: run-time overhead small (2.62%..13.23%); allow a
		// modest halo around that band for the simulated substrate.
		if d := r.TimeDiffPct(); d < 0.1 || d > 20 {
			t.Errorf("%s: run-time overhead %.2f%% outside the plausible band", r.App, d)
		}
		if r.Sites == 0 {
			t.Errorf("%s: no instrumentation sites recorded", r.App)
		}
	}

	_, _, rt := table.Averages()
	// Paper average run-time overhead: 7.35%. Require the same
	// single-digit class.
	if rt < 2 || rt > 14 {
		t.Errorf("average run-time overhead %.2f%%, want the paper's single-digit class (7.35%%)", rt)
	}

	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, app := range apps.All() {
		if !strings.Contains(out, app.Name) {
			t.Errorf("render missing %s", app.Name)
		}
	}
	if !strings.Contains(out, "Average") {
		t.Error("render missing averages row")
	}
}

func TestMeasureSubset(t *testing.T) {
	p := pipeline(t)
	one, _ := apps.ByName("TempSensor")
	table, err := MeasureTableIV(p, MeasureOptions{CompileIterations: 1, Apps: []apps.App{one}})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 1 || table.Rows[0].App != "TempSensor" {
		t.Fatalf("rows = %+v", table.Rows)
	}
}

func TestMicroOverhead(t *testing.T) {
	p := pipeline(t)
	m, err := MeasureMicro(p)
	if err != nil {
		t.Fatal(err)
	}
	// Instruction counts should be in the paper's class (26 store / 29
	// check on their implementation; ours differs slightly in dispatch
	// depth but must be the same order).
	if m.StoreInsns < 10 || m.StoreInsns > 40 {
		t.Errorf("store path = %d instructions, want 10..40 (paper: 26)", m.StoreInsns)
	}
	if m.CheckInsns < 10 || m.CheckInsns > 40 {
		t.Errorf("check path = %d instructions, want 10..40 (paper: 29)", m.CheckInsns)
	}
	// The check path costs more than the store path (paper: 13.4 vs
	// 11.8 us) because of the deeper dispatch and the comparison.
	if m.CheckCycles <= m.StoreCycles {
		t.Errorf("check (%d cycles) should cost more than store (%d cycles)", m.CheckCycles, m.StoreCycles)
	}
	if m.PerCallMicros() <= 0 {
		t.Error("per-call cost must be positive")
	}
	var sb strings.Builder
	m.Render(&sb)
	if !strings.Contains(sb.String(), "per protected call") {
		t.Error("micro render incomplete")
	}
}

func TestStaticTables(t *testing.T) {
	rows := TableI()
	if len(rows) != 10 {
		t.Fatalf("Table I rows = %d, want 10", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Work != "EILID" || !last.RealTime || !last.FwdEdge || !last.BackEdge || !last.Interrupt {
		t.Errorf("EILID row %+v: must be the only row with all four properties", last)
	}
	full := 0
	for _, r := range rows {
		if r.RealTime && r.FwdEdge && r.BackEdge && r.Interrupt {
			full++
		}
	}
	if full != 2 { // Silhouette (higher-end) and EILID
		t.Errorf("%d rows have all four properties, want 2 (Silhouette, EILID)", full)
	}

	if len(TableII()) != 3 {
		t.Error("Table II should list the three low-end platforms")
	}

	var sb strings.Builder
	RenderTableI(&sb)
	RenderTableII(&sb)
	RenderTableIII(&sb, core.DefaultConfig())
	RenderFigure10(&sb)
	out := sb.String()
	for _, want := range []string{"EILID", "MSP430", "r5", "Figure 10a", "Figure 10b", "this-repo"} {
		if !strings.Contains(out, want) {
			t.Errorf("table rendering missing %q", want)
		}
	}
}

func TestPaperReferenceData(t *testing.T) {
	rows := PaperTableIV()
	if len(rows) != 7 {
		t.Fatalf("paper table rows = %d", len(rows))
	}
	c, s, r := PaperAverages()
	if c != 34.30 || s != 10.78 || r != 7.35 {
		t.Errorf("paper averages %v %v %v", c, s, r)
	}
	// Spot-check against the publication.
	if rows[0].App != "LightSensor" || rows[0].SizeOrig != 233 || rows[0].TimePct != 10.36 {
		t.Errorf("LightSensor paper row %+v", rows[0])
	}
	if rows[6].App != "LcdSensor" || rows[6].TimeEUS != 5005 {
		t.Errorf("LcdSensor paper row %+v", rows[6])
	}
	// Averages consistent with rows (within rounding).
	var tp float64
	for _, r := range rows {
		tp += r.TimePct
	}
	if avg := tp / 7; avg < 7.3 || avg > 7.4 {
		t.Errorf("paper run-time average from rows = %.3f, want ~7.35", avg)
	}
}

func TestCyclesToMicros(t *testing.T) {
	if got := CyclesToMicros(100); got != 1.0 {
		t.Errorf("100 cycles at 100MHz = %v us, want 1", got)
	}
}
