package eval

import (
	"fmt"
	"io"

	"eilid/internal/core"
)

// MicroOverhead reproduces the §VI micro measurements: the cost of one
// store operation (resolve + NS gateway + secure dispatch + shadow-stack
// write + return) and one check operation, in instructions, cycles and
// microseconds.
type MicroOverhead struct {
	StoreInsns, CheckInsns   uint64
	StoreCycles, CheckCycles uint64
}

// StoreMicros is the store-path time at ClockMHz.
func (m MicroOverhead) StoreMicros() float64 { return CyclesToMicros(m.StoreCycles) }

// CheckMicros is the check-path time at ClockMHz.
func (m MicroOverhead) CheckMicros() float64 { return CyclesToMicros(m.CheckCycles) }

// PerCallMicros is the combined per-protected-call cost (the paper's
// ≈25.2 µs figure at its clocking).
func (m MicroOverhead) PerCallMicros() float64 { return m.StoreMicros() + m.CheckMicros() }

// microDriver performs exactly one store_ra and one check_ra through the
// gateway, with marker labels bracketing each path.
const microDriverTemplate = `
.org 0xE000
reset:
    mov #0x0A00, sp
    call #NS_EILID_init
m_store_begin:
    mov #0x1234, r6
    call #NS_EILID_store_ra
m_store_end:
    mov #0x1234, r6
    call #NS_EILID_check_ra
m_check_end:
    mov #0, &0x00FC
spin:
    jmp spin
%s
.org 0xFFFE
.word reset
`

// MeasureMicro runs the driver on a protected machine and counts the
// instructions and cycles between the markers.
func MeasureMicro(p *core.Pipeline) (MicroOverhead, error) {
	ins := core.NewInstrumenter(p.Config(), p.ROM())
	src := fmt.Sprintf(microDriverTemplate, ins.GatewaySource())
	prog, err := p.BuildOriginal("micro.s", src)
	if err != nil {
		return MicroOverhead{}, err
	}
	m, err := core.NewMachine(core.MachineOptions{
		Config: p.Config(), ROM: p.ROM(), Defense: core.DefenseEILID,
	})
	if err != nil {
		return MicroOverhead{}, err
	}
	if err := m.LoadFirmware(prog.Image); err != nil {
		return MicroOverhead{}, err
	}
	m.Boot()

	var mo MicroOverhead
	runTo := func(target uint16) (insns, cycles uint64, err error) {
		i0, c0 := m.CPU.Insns, m.CPU.Cycles
		for m.CPU.PC() != target {
			if _, err := m.Step(); err != nil {
				return 0, 0, err
			}
			if m.ResetCount > 0 {
				return 0, 0, fmt.Errorf("eval: micro driver reset: %v", m.ResetReasons)
			}
			if m.CPU.Cycles-c0 > 100_000 {
				return 0, 0, fmt.Errorf("eval: micro driver never reached 0x%04x", target)
			}
		}
		return m.CPU.Insns - i0, m.CPU.Cycles - c0, nil
	}

	if _, _, err := runTo(prog.Symbols["m_store_begin"]); err != nil {
		return mo, err
	}
	if mo.StoreInsns, mo.StoreCycles, err = runTo(prog.Symbols["m_store_end"]); err != nil {
		return mo, err
	}
	if mo.CheckInsns, mo.CheckCycles, err = runTo(prog.Symbols["m_check_end"]); err != nil {
		return mo, err
	}
	return mo, nil
}

// Render writes the micro table with the paper's reference values.
func (m MicroOverhead) Render(w io.Writer) {
	fmt.Fprintln(w, "Section VI micro-overhead: one protected call/return pair")
	fmt.Fprintf(w, "%-28s %12s %12s %12s\n", "path", "instructions", "cycles", "us@100MHz")
	fmt.Fprintf(w, "%-28s %12d %12d %12.3f\n", "store (resolve+shadow push)", m.StoreInsns, m.StoreCycles, m.StoreMicros())
	fmt.Fprintf(w, "%-28s %12d %12d %12.3f\n", "check (verify+shadow pop)", m.CheckInsns, m.CheckCycles, m.CheckMicros())
	fmt.Fprintf(w, "%-28s %12d %12d %12.3f\n", "per protected call (sum)",
		m.StoreInsns+m.CheckInsns, m.StoreCycles+m.CheckCycles, m.PerCallMicros())
	fmt.Fprintln(w, "paper reference: 26 store / 29 check instructions; 11.8 / 13.4 us (25.2 us per call) at its clocking")
}
