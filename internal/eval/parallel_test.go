package eval

import (
	"testing"

	"eilid/internal/core"
)

// TestMeasureTableIVParallelDeterminism: the simulated dimensions of
// Table IV (cycle counts, binary sizes, instrumentation sites) must be
// identical whether the applications are measured sequentially or
// spread over the fleet worker pool; only the compile wall-clock
// averages are scheduling-sensitive.
func TestMeasureTableIVParallelDeterminism(t *testing.T) {
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := MeasureTableIV(p, MeasureOptions{CompileIterations: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := MeasureTableIV(p, MeasureOptions{CompileIterations: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(seq.Rows), len(par.Rows))
	}
	for i := range seq.Rows {
		s, q := seq.Rows[i], par.Rows[i]
		if s.App != q.App {
			t.Fatalf("row %d order differs: %s vs %s", i, s.App, q.App)
		}
		if s.CyclesOrig != q.CyclesOrig || s.CyclesEILID != q.CyclesEILID {
			t.Errorf("%s: cycles differ: %d/%d vs %d/%d", s.App, s.CyclesOrig, s.CyclesEILID, q.CyclesOrig, q.CyclesEILID)
		}
		if s.SizeOrig != q.SizeOrig || s.SizeEILID != q.SizeEILID {
			t.Errorf("%s: sizes differ: %d/%d vs %d/%d", s.App, s.SizeOrig, s.SizeEILID, q.SizeOrig, q.SizeEILID)
		}
		if s.Sites != q.Sites {
			t.Errorf("%s: sites differ: %d vs %d", s.App, s.Sites, q.Sites)
		}
	}
}
