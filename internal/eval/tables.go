package eval

import (
	"fmt"
	"io"
	"strings"

	"eilid/internal/core"
	"eilid/internal/hwcost"
)

// TechniqueRow is one line of the paper's Table I (CFA and CFI techniques
// from prior work).
type TechniqueRow struct {
	Method    string // CFI or CFA
	Work      string
	RealTime  bool
	FwdEdge   bool
	BackEdge  bool
	Interrupt bool
	Platform  string
	Summary   string
}

// TableI returns the comparison matrix of paper Table I.
func TableI() []TechniqueRow {
	return []TechniqueRow{
		{"CFI", "HAFIX", true, false, true, false, "Intel Siskiyou Peak", "Extends Intel ISA with shadow stack"},
		{"CFI", "HCFI", true, true, true, false, "Leon3", "Extends Sparc V8 ISA with shadow stack and labels"},
		{"CFI", "FIXER", true, true, true, false, "RocketChip", "Extends RISC-V ISA with shadow stack"},
		{"CFI", "Silhouette", true, true, true, true, "ARMv7-M", "Uses ARM MPU for hardened shadow-stacks and labels"},
		{"CFI", "CaRE", true, false, true, true, "ARMv8-M", "Uses ARM TrustZone for shadow stack & nested interrupts"},
		{"CFA", "Tiny-CFA", false, true, true, false, "openMSP430", "Hybrid CFA with shadow stack"},
		{"CFA", "ACFA", false, true, true, true, "openMSP430", "Active hybrid CFA with secure auditing of code"},
		{"CFA", "LO-FAT", false, true, true, false, "Pulpino", "Hardware-based CFA solution"},
		{"CFA", "CFA+", false, true, true, true, "ARMv8.5-A", "Leverages ARM's Branch Target Identification"},
		{"CFI", "EILID", true, true, true, true, "openMSP430", "Uses CASU for shadow stack"},
	}
}

// RenderTableI writes Table I.
func RenderTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I: CFA and CFI techniques from prior work (RT: real-time protection)")
	fmt.Fprintf(w, "%-6s %-11s %-3s %-3s %-3s %-4s %-20s %s\n", "Method", "Work", "RT", "F", "B", "Intr", "Platform", "Summary")
	mark := func(b bool) string {
		if b {
			return "+"
		}
		return "-"
	}
	for _, r := range TableI() {
		fmt.Fprintf(w, "%-6s %-11s %-3s %-3s %-3s %-4s %-20s %s\n",
			r.Method, r.Work, mark(r.RealTime), mark(r.FwdEdge), mark(r.BackEdge),
			mark(r.Interrupt), r.Platform, r.Summary)
	}
}

// PlatformISA is one line of Table II (relevant instructions per
// low-end platform).
type PlatformISA struct {
	Platform     string
	Call         string
	Return       string
	RetInterrupt string
	IndirectCall string
}

// TableII returns the instruction-set table.
func TableII() []PlatformISA {
	return []PlatformISA{
		{"TI MSP430", "CALL", "RET", "RETI", "CALL"},
		{"AVR ATMega32", "CALL", "RET", "RETI", "RCALL, ICALL"},
		{"Microchip PIC16", "CALL", "RETURN", "RETFIE", "CALL, RCALL"},
	}
}

// RenderTableII writes Table II.
func RenderTableII(w io.Writer) {
	fmt.Fprintln(w, "Table II: instruction set in low-end platforms")
	fmt.Fprintf(w, "%-17s %-8s %-8s %-10s %s\n", "Platform", "Call", "Return", "Ret-intr", "Indirect call")
	for _, r := range TableII() {
		fmt.Fprintf(w, "%-17s %-8s %-8s %-10s %s\n", r.Platform, r.Call, r.Return, r.RetInterrupt, r.IndirectCall)
	}
}

// RenderTableIII writes the reserved-register table from the live
// configuration.
func RenderTableIII(w io.Writer, cfg core.Config) {
	fmt.Fprintln(w, "Table III: reserved registers for EILID")
	rows := []struct {
		reg  int
		desc string
	}{
		{core.RegSelector, "selector argument of S_EILID dispatch (S_EILID_init and peers)"},
		{core.RegIndex, "pointer to the shadow stack's current index"},
		{core.RegArg0, "argument of the S_EILID functions"},
		{core.RegArg1, "second argument (interrupt context status register)"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "r%-3d %s\n", r.reg, r.desc)
	}
}

// RenderFigure10 writes the hardware-cost comparison with ASCII bars plus
// this repository's own monitor estimate.
func RenderFigure10(w io.Writer) {
	data := hwcost.Figure10Data()
	est := hwcost.Estimate()
	baseLUTs, baseRegs := hwcost.BaselineOpenMSP430()

	bar := func(v, max int) string {
		n := v * 40 / max
		if n < 1 {
			n = 1
		}
		return strings.Repeat("#", n)
	}
	maxL, maxR := 0, 0
	for _, s := range data {
		if s.LUTs > maxL {
			maxL = s.LUTs
		}
		if s.Registers > maxR {
			maxR = s.Registers
		}
	}

	fmt.Fprintln(w, "Figure 10a: additional LUTs over each scheme's baseline core")
	for _, s := range data {
		fmt.Fprintf(w, "%-9s %-5s %-20s %5d %-10s %s\n", s.Name, s.Class, s.Platform, s.LUTs, "("+s.Source+")", bar(s.LUTs, maxL))
	}
	fmt.Fprintf(w, "%-9s %-5s %-20s %5d %-10s %s\n", "this-repo", "CFI", "simulated monitor", est.LUTs, "(estimate)", bar(est.LUTs, maxL))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 10b: additional registers over each scheme's baseline core")
	for _, s := range data {
		fmt.Fprintf(w, "%-9s %-5s %-20s %5d %-10s %s\n", s.Name, s.Class, s.Platform, s.Registers, "("+s.Source+")", bar(s.Registers, maxR))
	}
	fmt.Fprintf(w, "%-9s %-5s %-20s %5d %-10s %s\n", "this-repo", "CFI", "simulated monitor", est.Registers, "(estimate)", bar(est.Registers, maxR))
	fmt.Fprintln(w)
	fmt.Fprintf(w, "openMSP430 baseline (implied by the paper's percentages): ~%d LUTs, ~%d registers\n", baseLUTs, baseRegs)
	fmt.Fprintf(w, "EILID overhead per the paper: +99 LUTs (5.3%%), +34 registers (4.9%%)\n")
	for _, n := range hwcost.MemoryFootnotes() {
		fmt.Fprintln(w, "note:", n)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "estimator accounting for the simulated monitor:")
	for _, n := range est.Notes() {
		fmt.Fprintln(w, " ", n)
	}
}
