package fleet

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic durably replaces path with the bytes produced by
// write: the content goes to a temp file in the same directory, the
// file is fsynced before the rename and the parent directory is fsynced
// after it, so a power loss at any point leaves either the old file or
// the complete new one — never an empty or half-written journal. The
// temp file is removed on any error.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	err = write(w)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		// Flush alone hands the bytes to the OS; only fsync pins them to
		// the disk before the rename makes the new file visible.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename itself lives in the directory; fsync it so the
	// replacement survives a crash too.
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
