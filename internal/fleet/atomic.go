package fleet

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteFileAtomic durably replaces path with the bytes produced by
// write: the content goes to a uniquely named temp file in the same
// directory, the file is fsynced before the rename and the parent
// directory is fsynced after it, so a power loss at any point leaves
// either the old file or the complete new one — never an empty or
// half-written journal. The temp file is removed on any error, and
// temp files orphaned by an earlier hard kill (a second SIGINT
// os.Exits mid-write, skipping deferred cleanup) are reaped before the
// new one is created.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	reapTemps(path)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// CreateTemp opens 0600; journals are ordinary outputs, so restore
	// the permissions os.Create would have given the final file.
	f.Chmod(0o644)
	w := bufio.NewWriter(f)
	err = write(w)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		// Flush alone hands the bytes to the OS; only fsync pins them to
		// the disk before the rename makes the new file visible.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename itself lives in the directory; fsync it so the
	// replacement survives a crash too.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// reapTemps removes `path.tmp*` leftovers — both this package's unique
// `path.tmp-XXXX` names and the fixed `path.tmp` older builds used. A
// force-quit between temp creation and rename abandons the temp; the
// next atomic write to the same path (a resume's compaction, a re-run)
// sweeps it so crashed batches don't accrete garbage next to their
// journals. Errors are deliberately ignored: reaping is best-effort
// hygiene, and the write itself neither reads nor depends on the
// orphans.
func reapTemps(path string) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), base+".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
