package fleet

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestAtomicReapsOrphans: temp files a hard kill left next to the
// target — the legacy fixed `.tmp` name and this package's unique
// `.tmp-XXXX` names alike — are swept by the next atomic write, while
// neighbours that merely share a prefix survive.
func TestAtomicReapsOrphans(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.ndjson")
	orphans := []string{
		path + ".tmp",
		path + ".tmp-12345",
	}
	keep := []string{
		filepath.Join(dir, "out.ndjson2.tmp"), // different base
		filepath.Join(dir, "other.ndjson.tmp"),
	}
	for _, p := range append(append([]string{}, orphans...), keep...) {
		if err := os.WriteFile(p, []byte("half-written garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "payload\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	if raw, err := os.ReadFile(path); err != nil || string(raw) != "payload\n" {
		t.Fatalf("target = %q, %v", raw, err)
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the atomic write", p)
		}
	}
	for _, p := range keep {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("unrelated file %s was reaped: %v", p, err)
		}
	}
}

// TestAtomicErrorLeavesNoTemp: a failing write callback must remove its
// own unique temp and leave the previous target intact.
func TestAtomicErrorLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.ndjson")
	if err := os.WriteFile(path, []byte("previous\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return fmt.Errorf("injected failure")
	})
	if err == nil || err.Error() != "injected failure" {
		t.Fatalf("WriteFileAtomic = %v, want the callback's error", err)
	}
	if raw, _ := os.ReadFile(path); string(raw) != "previous\n" {
		t.Fatalf("target corrupted by failed write: %q", raw)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.ndjson" {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("failed write left temp files behind: %v", names)
	}
}
