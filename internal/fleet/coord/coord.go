package coord

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"eilid/internal/fleet"
)

// Config describes one coordinated batch.
type Config struct {
	// Runner holds the resolved matrix. The coordinator uses it to
	// validate shard journals, compute reassignment sets, and execute
	// degraded shards in-process; workers rebuild the identical matrix
	// from Spec.
	Runner *fleet.Runner

	// Workers is how many worker processes run concurrently (slots).
	// Shards is how many shards the index space splits into; it
	// defaults to Workers and is clamped to the job count.
	Workers int
	Shards  int

	// Spec is the serialized fleet.BatchSpec each worker receives on
	// stdin and rebuilds its matrix from. Its fingerprint must match
	// Runner's — shard-journal validation enforces that — so the
	// coordinator and its workers cannot silently diverge on what the
	// batch is.
	Spec []byte

	// Heartbeat is the interval workers announce liveness at;
	// Liveness is how long a shard journal may go without growing
	// before the worker is declared wedged and SIGKILLed. Liveness
	// must comfortably exceed Heartbeat. StartupGrace replaces the
	// liveness deadline until a worker's first journal byte arrives:
	// process spawn and cold artifact builds scale with the matrix
	// and legitimately dwarf any mid-work heartbeat gap (defaults to
	// 10s, never below Liveness).
	Heartbeat    time.Duration
	Liveness     time.Duration
	StartupGrace time.Duration

	// MaxRestarts bounds restarts per shard; the attempt after the
	// budget is exhausted runs in-process instead (degraded mode).
	// Backoff is the delay before the first restart, doubling per
	// restart up to BackoffMax.
	MaxRestarts int
	Backoff     time.Duration
	BackoffMax  time.Duration

	// Dir receives the per-attempt shard journals and the degraded-
	// mode journal. It is created if missing.
	Dir string

	// Fault injects deterministic worker kills and wedges.
	Fault FaultSpec

	// Transport starts worker processes (ExecSelf or CommandTransport
	// in production; tests inject fakes).
	Transport Transport

	// Log receives human-readable supervision events (restarts,
	// discarded journals, degraded shards); nil discards them.
	Log io.Writer

	// Cancel, when closed, stops the batch: workers are killed, their
	// journalled prefixes harvested, and the merged journal written
	// with an interrupted marker so -resume can finish it.
	Cancel <-chan struct{}
}

// Summary counts the supervision events of one coordinated run —
// wall-clock-side observability, deliberately kept out of the merged
// journal so the journal stays byte-identical to a single-process run.
type Summary struct {
	Shards         int
	Spawns         int
	Restarts       int
	FaultKills     int
	LivenessKills  int
	ReassignedJobs int
	DegradedShards int
	DegradedJobs   int
}

// Render writes the supervision summary.
func (s *Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "coordinator: %d shards, %d spawns (%d restarts), %d fault kills, %d liveness kills, %d jobs reassigned\n",
		s.Shards, s.Spawns, s.Restarts, s.FaultKills, s.LivenessKills, s.ReassignedJobs)
	if s.DegradedShards > 0 {
		fmt.Fprintf(w, "degraded mode: %d shards (%d jobs) finished in-process after the restart budget ran out\n",
			s.DegradedShards, s.DegradedJobs)
	}
}

// shardState tracks one shard across worker attempts.
type shardState struct {
	shard Shard
	// attempts lists the validated attempt journals, oldest first; a
	// later attempt's record for an index supersedes an earlier one
	// (they are byte-identical when both exist — determinism — but
	// later-wins is the defensive rule).
	attempts []string
	// lo is the resume cursor: every index below it (within the
	// shard) is journalled. Attempts shrink the range [lo, hi) —
	// RunIndices emits a contiguous prefix of its index list, so the
	// un-journalled set is always a suffix of the shard.
	lo int
	// degraded marks a shard whose restart budget ran out; [lo, hi)
	// still needs to run in-process.
	degraded bool
}

// Coordinator supervises one coordinated batch. Create with New, run
// once with Run.
type Coordinator struct {
	cfg    Config
	states []*shardState
	mu     sync.Mutex
	sum    Summary
}

// New validates the config, plans the shards and creates Dir.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("coord: Config.Runner is required")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("coord: Config.Transport is required")
	}
	if len(cfg.Spec) == 0 {
		return nil, fmt.Errorf("coord: Config.Spec is required")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("coord: Workers must be >= 1, got %d", cfg.Workers)
	}
	n := len(cfg.Runner.Jobs())
	if n == 0 {
		return nil, fmt.Errorf("coord: the matrix resolves to zero jobs")
	}
	if cfg.Shards == 0 {
		cfg.Shards = cfg.Workers
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("coord: Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.Liveness <= 0 {
		cfg.Liveness = 5 * time.Second
	}
	if cfg.Liveness <= cfg.Heartbeat {
		return nil, fmt.Errorf("coord: Liveness (%v) must exceed Heartbeat (%v), or every healthy worker looks wedged", cfg.Liveness, cfg.Heartbeat)
	}
	if cfg.StartupGrace <= 0 {
		cfg.StartupGrace = 10 * time.Second
	}
	if cfg.StartupGrace < cfg.Liveness {
		cfg.StartupGrace = cfg.Liveness
	}
	if cfg.MaxRestarts < 0 {
		return nil, fmt.Errorf("coord: MaxRestarts must be >= 0, got %d", cfg.MaxRestarts)
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 200 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("coord: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
		return nil, err
	}
	shards := Plan(n, cfg.Shards)
	if err := cfg.Fault.validate(shards); err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg}
	for _, s := range shards {
		c.states = append(c.states, &shardState{shard: s, lo: s.Lo})
	}
	c.sum.Shards = len(shards)
	return c, nil
}

// Shards returns the planned shard layout.
func (c *Coordinator) Shards() []Shard {
	out := make([]Shard, len(c.states))
	for i, st := range c.states {
		out[i] = st.shard
	}
	return out
}

func (c *Coordinator) cancelled() bool {
	select {
	case <-c.cfg.Cancel:
		return true
	default:
		return false
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	c.mu.Lock()
	fmt.Fprintf(c.cfg.Log, "coord: "+format+"\n", args...)
	c.mu.Unlock()
}

// Run executes the batch: supervise every shard on Workers slots,
// finish exhausted shards in-process, merge, and write the canonical
// journal to outPath. A complete run's journal is byte-identical to an
// uninterrupted single-process run of the same matrix; a cancelled
// run's journal carries an interrupted marker and resumes with
// -resume. interrupted reports the latter case.
func (c *Coordinator) Run(outPath string) (rep *fleet.Report, sum *Summary, interrupted bool, err error) {
	start := time.Now()

	queue := make(chan *shardState)
	var wg sync.WaitGroup
	slots := min(c.cfg.Workers, len(c.states))
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := range queue {
				c.superviseShard(st)
			}
		}()
	}
	for _, st := range c.states {
		queue <- st
	}
	close(queue)
	wg.Wait()

	degraded, err := c.runDegraded()
	if err != nil {
		return nil, &c.sum, false, err
	}

	results, missing, err := c.merge(degraded)
	if err != nil {
		return nil, &c.sum, false, err
	}

	n := len(c.cfg.Runner.Jobs())
	rep = fleet.Aggregate(results, c.cfg.Workers, time.Since(start))
	h := c.cfg.Runner.JournalHeader()
	if missing == 0 {
		err = fleet.WriteJournalFile(outPath, h, results, rep)
	} else {
		interrupted = true
		err = fleet.WriteFileAtomic(outPath, func(w io.Writer) error {
			if werr := fleet.WriteJournalHeader(w, h); werr != nil {
				return werr
			}
			for _, jr := range results {
				if werr := fleet.WriteNDJSONLine(w, jr); werr != nil {
					return werr
				}
			}
			return fleet.WriteJournalInterrupted(w, len(results), n)
		})
	}
	if err != nil {
		return nil, &c.sum, interrupted, err
	}
	return rep, &c.sum, interrupted, nil
}

// superviseShard drives one shard to completion, degradation or
// cancellation through bounded worker attempts.
func (c *Coordinator) superviseShard(st *shardState) {
	hi := st.shard.Hi
	for attempt := 1; ; attempt++ {
		if attempt > 1+c.cfg.MaxRestarts {
			st.degraded = true
			c.mu.Lock()
			c.sum.DegradedShards++
			c.sum.DegradedJobs += hi - st.lo
			c.mu.Unlock()
			c.logf("shard %d: restart budget exhausted, deferring [%d, %d) to in-process degraded mode", st.shard.ID, st.lo, hi)
			return
		}
		if c.cancelled() {
			return
		}
		if attempt > 1 {
			d := c.cfg.Backoff << (attempt - 2)
			if d > c.cfg.BackoffMax || d <= 0 {
				d = c.cfg.BackoffMax
			}
			select {
			case <-time.After(d):
			case <-c.cfg.Cancel:
				return
			}
			c.mu.Lock()
			c.sum.Restarts++
			c.mu.Unlock()
		}
		done, cancelled := c.attemptOnce(st, attempt)
		if done || cancelled {
			return
		}
		c.mu.Lock()
		c.sum.ReassignedJobs += hi - st.lo
		c.mu.Unlock()
		c.logf("shard %d: attempt %d ended with [%d, %d) unfinished, re-queueing", st.shard.ID, attempt, st.lo, hi)
	}
}

// attemptOnce runs one worker attempt over [st.lo, st.shard.Hi):
// pre-creates the attempt journal, spawns the worker, supervises it,
// then harvests and validates whatever the attempt journalled —
// advancing st.lo past the recorded prefix, or discarding the file
// wholesale if it fails fingerprint, shard-marker or job-identity
// validation.
func (c *Coordinator) attemptOnce(st *shardState, attempt int) (done, cancelled bool) {
	lo, hi := st.lo, st.shard.Hi
	path := filepath.Join(c.cfg.Dir, fmt.Sprintf("shard-%d.a%d.ndjson", st.shard.ID, attempt))

	// Pre-create the journal and open the read side before the worker
	// starts, so the monitor never races the worker's own create.
	f, err := os.Create(path)
	if err != nil {
		c.logf("shard %d attempt %d: %v", st.shard.ID, attempt, err)
		return false, false
	}
	f.Close()
	rd, err := os.Open(path)
	if err != nil {
		c.logf("shard %d attempt %d: %v", st.shard.ID, attempt, err)
		return false, false
	}
	defer rd.Close()

	// The worker protocol: the batch itself arrives as the serialized
	// spec on stdin (-spec -); argv carries only the per-attempt
	// assignment and supervision parameters.
	args := []string{"-spec", "-", "-q",
		"-shard", fmt.Sprintf("%d:%d", lo, hi), "-journal", path,
		"-heartbeat", c.cfg.Heartbeat.String()}
	if attempt == 1 {
		// Injected faults fire on the first attempt only: restarted
		// workers run clean, so the faulted batch converges.
		if j, ok := c.cfg.Fault.KillAt[st.shard.ID]; ok {
			args = append(args, "-stall-after", strconv.Itoa(j), "-stall-mode", "kill")
		} else if j, ok := c.cfg.Fault.WedgeAt[st.shard.ID]; ok {
			args = append(args, "-stall-after", strconv.Itoa(j), "-stall-mode", "wedge")
		}
	}

	proc, err := c.cfg.Transport.Start(args, c.cfg.Spec)
	if err != nil {
		c.logf("shard %d attempt %d: spawn: %v", st.shard.ID, attempt, err)
		return false, false
	}
	c.mu.Lock()
	c.sum.Spawns++
	c.mu.Unlock()

	reason, _ := c.monitorAttempt(proc, rd)
	switch reason {
	case killFault:
		c.mu.Lock()
		c.sum.FaultKills++
		c.mu.Unlock()
		c.logf("shard %d attempt %d: worker announced an injected stall, SIGKILLed", st.shard.ID, attempt)
	case killLiveness:
		c.mu.Lock()
		c.sum.LivenessKills++
		c.mu.Unlock()
		c.logf("shard %d attempt %d: no journal activity for %v, SIGKILLed", st.shard.ID, attempt, c.cfg.Liveness)
	case killCancel:
		cancelled = true
	}

	// Harvest the attempt journal. A torn final line is fine
	// (ParseJournal tolerates it); anything structurally wrong —
	// garbage, wrong fingerprint, wrong shard range, wrong job
	// identities — discards the whole file: a worker that cannot be
	// trusted about its framing cannot be trusted about its results.
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		c.logf("shard %d attempt %d: journal unreadable, discarded: %v", st.shard.ID, attempt, rerr)
		return false, cancelled
	}
	if len(data) == 0 {
		return false, cancelled
	}
	j, perr := fleet.ParseJournal(data)
	if perr == nil {
		switch {
		case j.Shard == nil:
			perr = fmt.Errorf("no shard marker")
		case j.Shard.Lo != lo || j.Shard.Hi != hi:
			perr = fmt.Errorf("shard marker [%d, %d), assigned [%d, %d)", j.Shard.Lo, j.Shard.Hi, lo, hi)
		default:
			perr = j.Validate(c.cfg.Runner)
		}
	}
	if perr != nil {
		c.logf("shard %d attempt %d: journal discarded: %v", st.shard.ID, attempt, perr)
		return false, cancelled
	}
	st.attempts = append(st.attempts, path)
	rem := j.RemainingRange(lo, hi)
	if len(rem) == 0 {
		return true, cancelled
	}
	st.lo = rem[0]
	return false, cancelled
}

// runDegraded finishes every degraded shard's remaining range
// in-process on the coordinator's own runner — the graceful-degradation
// backstop that turns "all restarts exhausted" into a slower complete
// batch instead of a failed one. The results also land in
// Dir/degraded.ndjson (a valid headered journal) for forensics.
func (c *Coordinator) runDegraded() (map[int]fleet.JobResult, error) {
	if c.cancelled() {
		return nil, nil
	}
	var indices []int
	for _, st := range c.states {
		if st.degraded {
			for i := st.lo; i < st.shard.Hi; i++ {
				indices = append(indices, i)
			}
		}
	}
	if len(indices) == 0 {
		return nil, nil
	}
	c.logf("degraded mode: running %d jobs in-process", len(indices))
	path := filepath.Join(c.cfg.Dir, "degraded.ndjson")
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := fleet.WriteJournalHeader(w, c.cfg.Runner.JournalHeader()); err != nil {
		return nil, err
	}
	out := make(map[int]fleet.JobResult, len(indices))
	_, err = c.cfg.Runner.RunIndices(indices, c.cfg.Cancel, func(jr fleet.JobResult) {
		out[jr.Index] = jr
		fleet.WriteNDJSONLine(w, jr)
		w.Flush()
	})
	if err != nil {
		return nil, err
	}
	return out, w.Flush()
}

// merge folds the validated attempt journals of every shard — later
// attempts win — plus the degraded overlay into the canonical result
// order. Shards partition [0, n) contiguously in plan order, so
// walking them in order yields index order with one shard's journals
// in memory at a time. missing counts indices no source recorded
// (only a cancelled run has any).
func (c *Coordinator) merge(degraded map[int]fleet.JobResult) (results []fleet.JobResult, missing int, err error) {
	for _, st := range c.states {
		m := map[int]fleet.JobResult{}
		for _, path := range st.attempts {
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return nil, 0, rerr
			}
			j, perr := fleet.ParseJournal(data)
			if perr != nil {
				return nil, 0, fmt.Errorf("coord: shard %d journal %s failed re-validation: %w", st.shard.ID, filepath.Base(path), perr)
			}
			if verr := j.Validate(c.cfg.Runner); verr != nil {
				return nil, 0, fmt.Errorf("coord: shard %d journal %s failed re-validation: %w", st.shard.ID, filepath.Base(path), verr)
			}
			for i, jr := range j.Results {
				m[i] = jr
			}
		}
		for i := st.shard.Lo; i < st.shard.Hi; i++ {
			if jr, ok := m[i]; ok {
				results = append(results, jr)
			} else if jr, ok := degraded[i]; ok {
				results = append(results, jr)
			} else {
				missing++
			}
		}
	}
	return results, missing, nil
}
