package coord

// Supervisor unit suite: a fake transport impersonates worker processes
// by writing real shard journals from precomputed results, so every
// supervision path — completion, announced kills, silent wedges,
// garbage journals, restart exhaustion, cancellation — runs fast and
// deterministically with no real subprocesses. The CLI suite in
// cmd/eilid-fleet covers the same paths with genuine SIGKILLed
// processes.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet"
)

// transportFunc adapts a plain function to the Transport interface, the
// same way http.HandlerFunc adapts handlers.
type transportFunc func(args []string, spec []byte) (Proc, error)

func (f transportFunc) Start(args []string, spec []byte) (Proc, error) { return f(args, spec) }

func newCoordRunner(t *testing.T) *fleet.Runner {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := fleet.NewRunner(p, fleet.BatchSpec{
		Matrix: fleet.MatrixSpec{
			NoApps: true, NoScenarios: true,
			Defenses:  []string{"baseline", "eilid"},
			Generated: fleet.GeneratedSpec{Seed: 1, Count: 12},
		},
		Exec: fleet.ExecSpec{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// canonicalJournal is the byte-exact journal an uninterrupted
// single-process run writes — the merge acceptance bar.
func canonicalJournal(t *testing.T, r *fleet.Runner) []byte {
	t.Helper()
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fleet.WriteJournalHeader(&buf, r.JournalHeader()); err != nil {
		t.Fatal(err)
	}
	for _, jr := range rep.Results {
		if err := fleet.WriteNDJSONLine(&buf, jr); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.WriteJournalSummary(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type fakeProc struct {
	killed   chan struct{}
	done     chan struct{}
	killOnce sync.Once
}

func (p *fakeProc) Kill() error {
	p.killOnce.Do(func() { close(p.killed) })
	return nil
}

// Wait waits for the writer goroutine to stop — it exits promptly on
// Kill, so a killed fake can never write after being reaped (a real
// SIGKILLed process can't either).
func (p *fakeProc) Wait() error {
	<-p.done
	return nil
}

// fakeFleet spawns fake workers that replay precomputed results into
// shard journals, honouring the -shard/-journal/-stall-* protocol.
type fakeFleet struct {
	t       *testing.T
	runner  *fleet.Runner
	results []fleet.JobResult

	mu     sync.Mutex
	spawns int
	// garbageOn marks spawn ordinals (1-based) that write a corrupt
	// journal and exit, and vanishOn ordinals that exit without
	// writing anything.
	garbageOn map[int]bool
	vanishOn  map[int]bool
}

func newFakeFleet(t *testing.T, r *fleet.Runner) *fakeFleet {
	t.Helper()
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return &fakeFleet{t: t, runner: r, results: rep.Results}
}

func argVal(args []string, name string) (string, bool) {
	for i, a := range args {
		if a == name && i+1 < len(args) {
			return args[i+1], true
		}
	}
	return "", false
}

// transport ignores the serialized spec — the fake replays precomputed
// results instead of rebuilding a matrix — but honours the rest of the
// worker protocol verbatim.
func (ff *fakeFleet) transport() Transport {
	return transportFunc(func(args []string, _ []byte) (Proc, error) {
		ff.mu.Lock()
		ff.spawns++
		spawn := ff.spawns
		ff.mu.Unlock()

		shardArg, _ := argVal(args, "-shard")
		path, _ := argVal(args, "-journal")
		loS, hiS, _ := strings.Cut(shardArg, ":")
		lo, _ := strconv.Atoi(loS)
		hi, _ := strconv.Atoi(hiS)
		stall := -1
		if s, ok := argVal(args, "-stall-after"); ok {
			stall, _ = strconv.Atoi(s)
		}
		mode, _ := argVal(args, "-stall-mode")

		p := &fakeProc{killed: make(chan struct{}), done: make(chan struct{})}
		go func() {
			defer close(p.done)
			if ff.vanishOn[spawn] {
				return
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0)
			if err != nil {
				ff.t.Error(err)
				return
			}
			defer f.Close()
			if ff.garbageOn[spawn] {
				f.WriteString("{malformed journal bytes\nmore garbage\n")
				return
			}
			fleet.WriteJournalHeader(f, ff.runner.JournalHeader())
			fleet.WriteJournalShard(f, lo, hi)
			for i := lo; i < hi; i++ {
				select {
				case <-p.killed:
					return
				default:
				}
				fleet.WriteNDJSONLine(f, ff.results[i])
				if i == stall {
					if mode == "kill" {
						fleet.WriteJournalFault(f, "stall", i)
					}
					<-p.killed
					return
				}
			}
			fleet.WriteJournalShardDone(f, hi-lo)
		}()
		return p, nil
	})
}

// newCoord builds a test coordinator with fast supervision timings.
func newCoord(t *testing.T, r *fleet.Runner, ff *fakeFleet, mut func(*Config)) *Coordinator {
	t.Helper()
	spec, err := json.Marshal(r.Spec())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Runner:      r,
		Workers:     2,
		Shards:      4,
		Spec:        spec,
		Heartbeat:   20 * time.Millisecond,
		Liveness:    150 * time.Millisecond,
		MaxRestarts: 2,
		Backoff:     5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Dir:         t.TempDir(),
		Transport:   ff.transport(),
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runAndCompare(t *testing.T, c *Coordinator, r *fleet.Runner) *Summary {
	t.Helper()
	out := filepath.Join(t.TempDir(), "merged.ndjson")
	rep, sum, interrupted, err := c.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if interrupted {
		t.Fatal("complete run reported interrupted")
	}
	if rep.Jobs != len(r.Jobs()) {
		t.Fatalf("report covers %d jobs, want %d", rep.Jobs, len(r.Jobs()))
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalJournal(t, r)
	if !bytes.Equal(got, want) {
		t.Fatalf("merged journal differs from single-process journal\ngot %d bytes, want %d", len(got), len(want))
	}
	return sum
}

func TestPlan(t *testing.T) {
	shards := Plan(10, 4)
	want := []Shard{{0, 0, 2}, {1, 2, 5}, {2, 5, 7}, {3, 7, 10}}
	if len(shards) != len(want) {
		t.Fatalf("planned %d shards, want %d", len(shards), len(want))
	}
	for i := range want {
		if shards[i] != want[i] {
			t.Errorf("shard %d = %+v, want %+v", i, shards[i], want[i])
		}
	}
	// Clamping: more shards than jobs collapses to one job per shard;
	// nonpositive counts collapse to a single shard.
	if got := Plan(3, 8); len(got) != 3 {
		t.Errorf("Plan(3, 8) made %d shards, want 3", len(got))
	}
	if got := Plan(3, 0); len(got) != 1 || got[0].Hi != 3 {
		t.Errorf("Plan(3, 0) = %+v, want one full shard", got)
	}
	if got := Plan(0, 4); got != nil {
		t.Errorf("Plan(0, 4) = %+v, want nil", got)
	}
	// The planned shards always partition [0, n) contiguously.
	for _, n := range []int{1, 7, 100, 1000} {
		for _, k := range []int{1, 2, 3, 4, 7, 16} {
			shards := Plan(n, k)
			at := 0
			for _, s := range shards {
				if s.Lo != at || s.Hi <= s.Lo {
					t.Fatalf("Plan(%d, %d): shard %+v breaks the partition at %d", n, k, s, at)
				}
				at = s.Hi
			}
			if at != n {
				t.Fatalf("Plan(%d, %d) covers [0, %d), want [0, %d)", n, k, at, n)
			}
		}
	}
}

func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("0@3,2@11", "1@7")
	if err != nil {
		t.Fatal(err)
	}
	if f.KillAt[0] != 3 || f.KillAt[2] != 11 || f.WedgeAt[1] != 7 {
		t.Fatalf("parsed %+v", f)
	}
	for _, bad := range []string{"0", "a@1", "0@x", "-1@2", "0@-2", "0@1,0@2"} {
		if _, err := ParseFaults(bad, ""); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
	// Validation against the plan: out-of-shard index, unknown shard,
	// and kill+wedge on the same shard are all rejected.
	shards := Plan(20, 4)
	for _, f := range []FaultSpec{
		{KillAt: map[int]int{0: 7}},
		{KillAt: map[int]int{9: 0}},
		{KillAt: map[int]int{1: 6}, WedgeAt: map[int]int{1: 8}},
	} {
		if err := f.validate(shards); err == nil {
			t.Errorf("fault %+v validated against %+v", f, shards)
		}
	}
	if err := (FaultSpec{KillAt: map[int]int{0: 4}, WedgeAt: map[int]int{3: 19}}).validate(shards); err != nil {
		t.Errorf("valid fault rejected: %v", err)
	}
}

func TestCoordComplete(t *testing.T) {
	r := newCoordRunner(t)
	ff := newFakeFleet(t, r)
	c := newCoord(t, r, ff, nil)
	sum := runAndCompare(t, c, r)
	if sum.Spawns != 4 || sum.Restarts != 0 || sum.FaultKills != 0 || sum.LivenessKills != 0 {
		t.Errorf("clean run summary: %+v", sum)
	}
}

func TestCoordKillReassign(t *testing.T) {
	r := newCoordRunner(t)
	ff := newFakeFleet(t, r)
	// Shard 1 covers [6, 12); the worker announces a stall after job 8
	// and is SIGKILLed. The restart resumes from its torn journal: only
	// [9, 12) re-queues.
	c := newCoord(t, r, ff, func(cfg *Config) {
		cfg.Fault = FaultSpec{KillAt: map[int]int{1: 8}}
	})
	sum := runAndCompare(t, c, r)
	if sum.FaultKills != 1 || sum.Restarts != 1 {
		t.Errorf("summary after kill: %+v", sum)
	}
	if sum.ReassignedJobs != 3 {
		t.Errorf("reassigned %d jobs, want 3 (resume from the torn journal, not the shard start)", sum.ReassignedJobs)
	}
}

func TestCoordKillAtLastJobNoRestart(t *testing.T) {
	r := newCoordRunner(t)
	ff := newFakeFleet(t, r)
	// Shard 3 is [18, 24); the kill lands right after its final job, so
	// the journal is already complete and nothing restarts or re-queues.
	c := newCoord(t, r, ff, func(cfg *Config) {
		cfg.Fault = FaultSpec{KillAt: map[int]int{3: 23}}
	})
	sum := runAndCompare(t, c, r)
	if sum.FaultKills != 1 || sum.Restarts != 0 || sum.ReassignedJobs != 0 {
		t.Errorf("summary after kill at the shard's last job: %+v", sum)
	}
}

func TestCoordWedgeLiveness(t *testing.T) {
	r := newCoordRunner(t)
	ff := newFakeFleet(t, r)
	// Shard 2 wedges silently after job 13; only the liveness deadline
	// can catch it.
	c := newCoord(t, r, ff, func(cfg *Config) {
		cfg.Fault = FaultSpec{WedgeAt: map[int]int{2: 13}}
	})
	sum := runAndCompare(t, c, r)
	if sum.LivenessKills != 1 || sum.FaultKills != 0 || sum.Restarts != 1 {
		t.Errorf("summary after wedge: %+v", sum)
	}
}

func TestCoordGarbageJournalDiscarded(t *testing.T) {
	r := newCoordRunner(t)
	ff := newFakeFleet(t, r)
	// The first spawned worker writes a corrupt journal and exits; its
	// whole attempt is discarded and the shard restarts from scratch.
	ff.garbageOn = map[int]bool{1: true}
	c := newCoord(t, r, ff, nil)
	sum := runAndCompare(t, c, r)
	if sum.Restarts != 1 {
		t.Errorf("summary after garbage journal: %+v", sum)
	}
}

func TestCoordVanishingWorker(t *testing.T) {
	r := newCoordRunner(t)
	ff := newFakeFleet(t, r)
	// The first spawned worker exits instantly with an empty journal —
	// crash before the header. The shard restarts cleanly.
	ff.vanishOn = map[int]bool{1: true}
	c := newCoord(t, r, ff, nil)
	sum := runAndCompare(t, c, r)
	if sum.Restarts != 1 {
		t.Errorf("summary after vanishing worker: %+v", sum)
	}
}

func TestCoordDegraded(t *testing.T) {
	r := newCoordRunner(t)
	ff := newFakeFleet(t, r)
	// No restart budget: the killed shard's remainder must finish
	// in-process, and the merged journal must still match.
	c := newCoord(t, r, ff, func(cfg *Config) {
		cfg.MaxRestarts = 0
		cfg.Fault = FaultSpec{KillAt: map[int]int{0: 1}}
	})
	sum := runAndCompare(t, c, r)
	if sum.DegradedShards != 1 {
		t.Errorf("degraded shards = %d, want 1: %+v", sum.DegradedShards, sum)
	}
	if sum.DegradedJobs != 4 {
		t.Errorf("degraded jobs = %d, want 4 (shard 0 is [0, 6), jobs 0-1 journalled)", sum.DegradedJobs)
	}
}

func TestCoordCancelledWritesResumableJournal(t *testing.T) {
	r := newCoordRunner(t)
	ff := newFakeFleet(t, r)
	cancel := make(chan struct{})
	close(cancel)
	c := newCoord(t, r, ff, func(cfg *Config) { cfg.Cancel = cancel })
	out := filepath.Join(t.TempDir(), "merged.ndjson")
	_, _, interrupted, err := c.Run(out)
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("pre-cancelled run did not report interrupted")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	j, err := fleet.ParseJournal(data)
	if err != nil {
		t.Fatalf("interrupted merge journal does not parse: %v", err)
	}
	if j.Complete {
		t.Fatal("interrupted journal claims completion")
	}
	if err := j.Validate(r); err != nil {
		t.Fatal(err)
	}
	// The interrupted journal is the resume contract: running the
	// remainder and compacting yields the canonical bytes.
	if _, err := r.RunIndices(j.Remaining(), nil, func(jr fleet.JobResult) {
		j.Results[jr.Index] = jr
	}); err != nil {
		t.Fatal(err)
	}
	merged, err := j.Merged()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "compacted.ndjson")
	if err := fleet.WriteJournalFile(path, r.JournalHeader(), merged, fleet.Aggregate(merged, 1, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := canonicalJournal(t, r); !bytes.Equal(got, want) {
		t.Fatal("resumed journal differs from the single-process journal")
	}
}

func TestCoordConfigErrors(t *testing.T) {
	r := newCoordRunner(t)
	base := func() Config {
		return Config{
			Runner: r, Workers: 2, Dir: t.TempDir(), Spec: []byte("{}"),
			Transport: transportFunc(func([]string, []byte) (Proc, error) { return nil, nil }),
		}
	}
	cases := map[string]func(*Config){
		"no runner":           func(c *Config) { c.Runner = nil },
		"no transport":        func(c *Config) { c.Transport = nil },
		"no spec":             func(c *Config) { c.Spec = nil },
		"zero workers":        func(c *Config) { c.Workers = 0 },
		"negative shards":     func(c *Config) { c.Shards = -1 },
		"negative restarts":   func(c *Config) { c.MaxRestarts = -1 },
		"liveness<=heartbeat": func(c *Config) { c.Heartbeat = time.Second; c.Liveness = time.Second },
		"no dir":              func(c *Config) { c.Dir = "" },
		"fault out of shard":  func(c *Config) { c.Fault = FaultSpec{KillAt: map[int]int{99: 0}} },
	}
	for name, mut := range cases {
		cfg := base()
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted %+v", name, cfg)
		}
	}
	if _, err := New(base()); err != nil {
		t.Errorf("baseline config rejected: %v", err)
	}
}
