package coord

import (
	"fmt"
	"strconv"
	"strings"
)

// FaultSpec injects deterministic process-level faults, extending the
// job-level fault injection in internal/fleet/fault.go up one layer:
// instead of a job that panics, a whole worker that dies or wedges.
//
// KillAt[K] = J makes shard K's worker stall immediately after
// journalling job J and announce the stall with a fault marker; the
// coordinator SIGKILLs it the moment it reads the marker, so "worker
// killed -9 right after job J" is an exact, reproducible event.
// WedgeAt[K] = J is the silent variant — the worker stalls with no
// marker and no further heartbeats, and only the liveness deadline can
// catch it. Each fault fires on the shard's first attempt only;
// restarted workers run clean, which is what lets a faulted batch
// converge to the same bytes as a clean one.
type FaultSpec struct {
	KillAt  map[int]int
	WedgeAt map[int]int
}

// Enabled reports whether any fault is armed.
func (f FaultSpec) Enabled() bool { return len(f.KillAt) > 0 || len(f.WedgeAt) > 0 }

// ParseFaults parses the -fault-kill-worker / -fault-wedge-worker CLI
// syntax: comma-separated K@J pairs (shard K stalls after job J), e.g.
// "0@12,3@907".
func ParseFaults(kill, wedge string) (FaultSpec, error) {
	f := FaultSpec{}
	var err error
	if f.KillAt, err = parsePairs(kill); err != nil {
		return f, fmt.Errorf("coord: -fault-kill-worker: %w", err)
	}
	if f.WedgeAt, err = parsePairs(wedge); err != nil {
		return f, fmt.Errorf("coord: -fault-wedge-worker: %w", err)
	}
	return f, nil
}

func parsePairs(s string) (map[int]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[int]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		k, j, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("%q is not K@J", part)
		}
		shard, err := strconv.Atoi(k)
		if err != nil || shard < 0 {
			return nil, fmt.Errorf("%q: bad shard id", part)
		}
		job, err := strconv.Atoi(j)
		if err != nil || job < 0 {
			return nil, fmt.Errorf("%q: bad job index", part)
		}
		if _, dup := out[shard]; dup {
			return nil, fmt.Errorf("shard %d listed twice", shard)
		}
		out[shard] = job
	}
	return out, nil
}

// validate checks every armed fault against the shard plan: the shard
// must exist, the job index must be inside it, and a shard cannot both
// kill and wedge.
func (f FaultSpec) validate(shards []Shard) error {
	check := func(at map[int]int, flag string) error {
		for k, j := range at {
			if k >= len(shards) {
				return fmt.Errorf("coord: %s %d@%d: only %d shards planned", flag, k, j, len(shards))
			}
			s := shards[k]
			if j < s.Lo || j >= s.Hi {
				return fmt.Errorf("coord: %s %d@%d: shard %d covers [%d, %d)", flag, k, j, k, s.Lo, s.Hi)
			}
		}
		return nil
	}
	if err := check(f.KillAt, "-fault-kill-worker"); err != nil {
		return err
	}
	if err := check(f.WedgeAt, "-fault-wedge-worker"); err != nil {
		return err
	}
	for k := range f.KillAt {
		if _, both := f.WedgeAt[k]; both {
			return fmt.Errorf("coord: shard %d has both a kill and a wedge fault", k)
		}
	}
	return nil
}
