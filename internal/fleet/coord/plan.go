// Package coord supervises a fleet batch sharded across eilid-fleet
// worker processes. The coordinator splits the resolved job-index space
// into contiguous shards, spawns one worker per shard (`-shard lo:hi
// -journal shard-K.ndjson`), watches each worker's journal stream for
// progress and heartbeats, SIGKILLs and restarts workers that wedge or
// announce an injected fault, reassigns a dead worker's unfinished
// indices by resuming from its torn journal, and finally merges the
// validated shard journals into one canonical journal byte-identical
// to an uninterrupted single-process run. When a shard exhausts its
// restart budget the coordinator finishes its remaining indices
// in-process (degraded mode) rather than failing the batch.
package coord

import "fmt"

// Shard is one contiguous slice [Lo, Hi) of the job-index space.
type Shard struct {
	ID int
	Lo int
	Hi int
}

// Plan splits n jobs into count contiguous shards using the same
// integer split everywhere (k*n/count boundaries), so shard layout is a
// pure function of (n, count) and every test, fault spec and doc can
// predict it. count is clamped to [1, n] — no empty shards.
func Plan(n, count int) []Shard {
	if n <= 0 {
		return nil
	}
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	shards := make([]Shard, count)
	for k := 0; k < count; k++ {
		shards[k] = Shard{ID: k, Lo: k * n / count, Hi: (k + 1) * n / count}
	}
	return shards
}

// shardFor returns the shard containing job index i, for fault-spec
// validation.
func shardFor(shards []Shard, i int) (Shard, error) {
	for _, s := range shards {
		if i >= s.Lo && i < s.Hi {
			return s, nil
		}
	}
	return Shard{}, fmt.Errorf("coord: job index %d outside every shard", i)
}
