package coord

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// Proc is the slice of a running worker process the supervisor needs:
// hard-kill it, and wait for it to be reaped. exec.Cmd satisfies it via
// execProc; tests substitute fakes so supervisor logic runs without
// real processes.
type Proc interface {
	// Kill terminates the process immediately (SIGKILL — the worker
	// gets no chance to clean up; surviving that is the point).
	Kill() error
	// Wait blocks until the process has exited and is reaped. It is
	// called exactly once per Proc.
	Wait() error
}

// Transport starts worker processes — the seam a future remote (SSH /
// thin-RPC) fleet plugs into. args is the worker's protocol argument
// vector (-spec - -shard lo:hi -journal path …) and spec the serialized
// fleet.BatchSpec the worker reads from stdin; nothing about the batch
// crosses the boundary any other way, so a transport only has to carry
// argv, stdin and a kill signal. Production transports are ExecSelf
// and CommandTransport; tests inject fakes.
type Transport interface {
	Start(args []string, spec []byte) (Proc, error)
}

type execProc struct{ cmd *exec.Cmd }

func (p execProc) Kill() error { return p.cmd.Process.Kill() }
func (p execProc) Wait() error { return p.cmd.Wait() }

// WorkerEnv marks a spawned process as an eilid-fleet worker. The
// eilid-fleet binary ignores it (its main is already eilid-fleet), but
// the test binary's TestMain keys on it to re-enter run(), so CLI tests
// can exercise real multi-process coordination without a separate
// build step.
const WorkerEnv = "EILID_FLEET_WORKER"

// lockedWriter serializes writes from concurrent workers' stderr
// copiers onto one destination writer.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// execTransport starts workers by re-executing the current binary,
// optionally through a command prefix (CommandTransport). Worker
// stderr is forwarded to stderr (worker stdout is discarded — a shard
// worker's real output is its journal file), and the serialized spec
// is delivered on the worker's stdin.
type execTransport struct {
	prefix []string
	stderr io.Writer
}

func (t *execTransport) Start(args []string, spec []byte) (Proc, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("coord: cannot locate own binary: %w", err)
	}
	argv := append(append(append([]string(nil), t.prefix...), self), args...)
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), WorkerEnv+"=1")
	cmd.Stdin = bytes.NewReader(spec)
	cmd.Stdout = io.Discard
	cmd.Stderr = t.stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return execProc{cmd}, nil
}

// ExecSelf is the plain local transport: workers are the current
// binary re-executed with WorkerEnv=1.
func ExecSelf(stderr io.Writer) Transport {
	return &execTransport{stderr: &lockedWriter{w: stderr}}
}

// CommandTransport launches workers through a command prefix — the
// worker binary and its protocol arguments are appended to prefix and
// the whole vector executed, with the spec still delivered on stdin.
// A prefix like {"sh", "-c", `exec "$0" "$@"`} re-enters the worker
// through a shell exactly the way an {"ssh", "host"} prefix would
// cross a machine boundary, which is what makes "remote worker" a
// configuration rather than a new subsystem. The prefix command must
// propagate stdin, stderr and SIGKILL to the worker (exec'ing it, as
// the sh example does, is the simplest way).
func CommandTransport(prefix []string, stderr io.Writer) (Transport, error) {
	if len(prefix) == 0 {
		return nil, fmt.Errorf("coord: empty worker command prefix")
	}
	return &execTransport{prefix: prefix, stderr: &lockedWriter{w: stderr}}, nil
}

// faultMarker is the byte signature of an injected-stall announcement
// on the journal stream. The monitor SIGKILLs the worker as soon as it
// reads one, turning the worker's deliberate stall into a true kill -9
// at a deterministic job boundary.
var faultMarker = []byte(`"journal":"fault"`)

// killReason says why the monitor killed a worker attempt.
type killReason string

const (
	killNone     killReason = ""         // worker exited on its own
	killFault    killReason = "fault"    // announced injected stall
	killLiveness killReason = "liveness" // no journal activity past the deadline
	killCancel   killReason = "cancel"   // coordinator shutting down
)

// monitorAttempt supervises one worker attempt: it polls the shard
// journal file for new bytes (any growth counts as liveness — job
// lines and heartbeat lines alike), SIGKILLs the worker when it
// announces an injected fault or goes silent past the liveness
// deadline, and returns once the process is reaped.
//
// Liveness is judged on the journal file rather than a pipe because
// the file is the ground truth the reassignment step will read: a
// worker that is alive but not journalling is exactly as useless as a
// dead one.
func (c *Coordinator) monitorAttempt(proc Proc, journal *os.File) (killReason, error) {
	waitCh := make(chan error, 1)
	go func() { waitCh <- proc.Wait() }()

	poll := c.cfg.Heartbeat / 2
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	if poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()

	lastActivity := time.Now()
	// Until the first byte lands, the worker is starting up — process
	// spawn plus cold artifact builds, which scale with the matrix and
	// legitimately dwarf a mid-work heartbeat gap — so the startup
	// grace applies instead of the liveness deadline.
	seenActivity := false
	// carry holds the tail of the previous chunk so a fault marker
	// straddling two reads is still seen.
	var carry []byte
	buf := make([]byte, 64*1024)
	reason := killNone

	scan := func() (sawFault bool) {
		for {
			n, err := journal.Read(buf)
			if n > 0 {
				lastActivity = time.Now()
				seenActivity = true
				chunk := append(carry, buf[:n]...)
				if bytes.Contains(chunk, faultMarker) {
					sawFault = true
				}
				if len(chunk) > len(faultMarker) {
					chunk = chunk[len(chunk)-len(faultMarker):]
				}
				carry = append(carry[:0], chunk...)
			}
			if err != nil || n == 0 {
				return sawFault
			}
		}
	}

	cancelCh := c.cfg.Cancel
	for {
		select {
		case err := <-waitCh:
			return reason, err
		case <-cancelCh:
			cancelCh = nil // fires once; a closed channel would spin the loop
			if reason == killNone {
				reason = killCancel
				proc.Kill()
			}
		case <-ticker.C:
			if reason != killNone {
				continue // kill issued; just waiting for the reap
			}
			if scan() {
				reason = killFault
				proc.Kill()
				continue
			}
			deadline := c.cfg.Liveness
			if !seenActivity {
				deadline = c.cfg.StartupGrace
			}
			if time.Since(lastActivity) > deadline {
				reason = killLiveness
				proc.Kill()
			}
		}
	}
}
