package fleet

// Crash-safety differential suite: every test here pins the same
// acceptance bar — a batch that was panicked, transiently faulted, hung
// or killed at an arbitrary job index converges, after in-run retry or
// a journal resume, to a journal byte-identical to an uninterrupted
// clean run.

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"eilid/internal/core"
)

// smallSpec is the matrix the crash suite runs: one app and one attack
// across every registered defense column — 8 jobs, small enough to run
// many convergence variants, wide enough to cover every column.
func smallSpec() BatchSpec {
	return BatchSpec{Matrix: MatrixSpec{Apps: []string{"LightSensor"}, Scenarios: []string{"stack-smash"}}}
}

// journalRun executes the runner while writing a journal, cancelling
// after cancelAfter emitted results (0 = cancel before dispatch,
// negative = never). The returned bytes end with an interrupted marker
// or the summary line, exactly as the CLI writes them.
func journalRun(t *testing.T, r *Runner, cancelAfter int) (data []byte, interrupted bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJournalHeader(&buf, r.JournalHeader()); err != nil {
		t.Fatal(err)
	}
	var cancel chan struct{}
	var once sync.Once
	if cancelAfter >= 0 {
		cancel = make(chan struct{})
		if cancelAfter == 0 {
			once.Do(func() { close(cancel) })
		}
	}
	emitted := 0
	rep, interrupted, err := r.RunStreamCancel(cancel, func(jr JobResult) {
		if err := WriteNDJSONLine(&buf, jr); err != nil {
			t.Error(err)
		}
		emitted++
		if cancelAfter > 0 && emitted == cancelAfter {
			once.Do(func() { close(cancel) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if interrupted {
		if err := WriteJournalInterrupted(&buf, emitted, len(r.jobs)); err != nil {
			t.Fatal(err)
		}
	} else if err := WriteJournalSummary(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), interrupted
}

// resumeJournal parses a journal, re-runs its remaining jobs on a
// runner rebuilt from the header (no faults carried over — the resume
// contract), and returns the compacted canonical journal.
func resumeJournal(t *testing.T, p *core.Pipeline, data []byte, workers int, noRecycle bool) []byte {
	t.Helper()
	j, err := ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	spec := j.Header.Spec.Batch()
	spec.Exec.Workers = workers
	spec.Exec.NoRecycle = noRecycle
	r, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(r); err != nil {
		t.Fatal(err)
	}
	interrupted, err := r.RunIndices(j.Remaining(), nil, func(jr JobResult) {
		j.Results[jr.Index] = jr
	})
	if err != nil {
		t.Fatal(err)
	}
	if interrupted {
		t.Fatal("uncancelled RunIndices reported interrupted")
	}
	merged, err := j.Merged()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJournalHeader(&buf, r.JournalHeader()); err != nil {
		t.Fatal(err)
	}
	for _, jr := range merged {
		if err := WriteNDJSONLine(&buf, jr); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteJournalSummary(&buf, Aggregate(merged, r.workers, 0)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// diffJournals reports the first differing line — far more useful than
// a byte offset when a convergence test fails.
func diffJournals(t *testing.T, label string, want, got []byte) {
	t.Helper()
	if bytes.Equal(want, got) {
		return
	}
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var a, b []byte
		if i < len(wl) {
			a = wl[i]
		}
		if i < len(gl) {
			b = gl[i]
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: journal line %d diverges:\nwant: %s\ngot:  %s", label, i, a, b)
		}
	}
	t.Fatalf("%s: journals differ", label)
}

// TestCrashResumeByteIdentical is the tentpole differential: kill the
// batch after K results — including K=0 (nothing ran) and K=n-1 (one
// job short) — then resume with various worker counts and recycling
// modes; the compacted journal must be byte-identical to an
// uninterrupted run, every defense column included. A hard kill is
// simulated deterministically by chopping the journal to its first K
// job lines (a real SIGKILL leaves exactly that file, interrupted
// marker not included).
func TestCrashResumeByteIdentical(t *testing.T) {
	p := newPipeline(t)
	cleanRunner, err := NewRunner(p, func() BatchSpec { s := smallSpec(); s.Exec.Workers = 4; return s }())
	if err != nil {
		t.Fatal(err)
	}
	clean, interrupted := journalRun(t, cleanRunner, -1)
	if interrupted {
		t.Fatal("clean run reported interrupted")
	}
	n := len(cleanRunner.jobs)
	if n != 8 {
		t.Fatalf("small matrix has %d jobs, want 8 (2 cells x 4 defenses)", n)
	}
	// lines[0] is the header, lines[1..n] the job lines in job order.
	lines := bytes.SplitAfter(clean, []byte("\n"))
	killedAt := func(k int) []byte { return bytes.Join(lines[:1+k], nil) }
	cases := []struct {
		name          string
		killAt        int
		resumeWorkers int
		noRecycle     bool
	}{
		{"kill-at-0", 0, 1, false},
		{"kill-at-1", 1, 8, false},
		{"kill-mid", n / 2, 8, true},
		{"kill-at-n-1", n - 1, 1, false},
		{"kill-at-n-1-norecycle", n - 1, 8, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			final := resumeJournal(t, p, killedAt(tc.killAt), tc.resumeWorkers, tc.noRecycle)
			diffJournals(t, tc.name, clean, final)
		})
	}
}

// TestCrashResumeGracefulCancel exercises the cooperative path the
// SIGINT handler drives: a pre-closed cancel dispatches nothing, and a
// sequential run cancelled mid-batch drains, journals the interrupted
// marker, and resumes to convergence. (With wide worker windows a
// small batch may fully dispatch before the cancel lands — that run
// simply completes, which is also correct; the deterministic mid-batch
// kills are covered by TestCrashResumeByteIdentical's chopped
// journals.)
func TestCrashResumeGracefulCancel(t *testing.T) {
	p := newPipeline(t)
	spec := smallSpec()
	spec.Exec.Workers = 4
	r, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := journalRun(t, r, -1)

	data, interrupted := journalRun(t, r, 0)
	if !interrupted {
		t.Fatal("pre-closed cancel did not interrupt")
	}
	j, err := ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Results) != 0 {
		t.Fatalf("pre-closed cancel still journalled %d results", len(j.Results))
	}
	diffJournals(t, "cancel-at-0", clean, resumeJournal(t, p, data, 8, false))

	seqSpec := smallSpec()
	seqSpec.Exec.Workers = 1
	seq, err := NewRunner(p, seqSpec)
	if err != nil {
		t.Fatal(err)
	}
	data, interrupted = journalRun(t, seq, 1)
	if !interrupted {
		t.Fatal("sequential run cancelled after one result did not interrupt")
	}
	j, err = ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Results) >= len(seq.jobs) {
		t.Fatalf("cancelled sequential run journalled all %d results", len(j.Results))
	}
	diffJournals(t, "cancel-sequential", clean, resumeJournal(t, p, data, 4, false))
}

// TestCrashResumeInterruptedTwice: a resume that is itself killed
// appends its partial results (plus another interrupted marker) and a
// second resume still converges — the journal's append-safety.
func TestCrashResumeInterruptedTwice(t *testing.T) {
	p := newPipeline(t)
	spec := smallSpec()
	spec.Exec.Workers = 1 // sequential: cancellation between jobs is guaranteed
	r, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := journalRun(t, r, -1)

	data, interrupted := journalRun(t, r, 1)
	if !interrupted {
		t.Fatal("first run not interrupted")
	}
	// First resume: killed again after one more result; its lines are
	// appended to the journal the way the CLI appends them.
	j, err := ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	remaining := j.Remaining()
	if len(remaining) == 0 {
		t.Fatal("nothing left to resume")
	}
	buf := bytes.NewBuffer(data)
	cancel := make(chan struct{})
	var once sync.Once
	ran := 0
	interrupted, err = r.RunIndices(remaining, cancel, func(jr JobResult) {
		if err := WriteNDJSONLine(buf, jr); err != nil {
			t.Error(err)
		}
		ran++
		if ran == 1 {
			once.Do(func() { close(cancel) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("cancelled resume not interrupted")
	}
	if err := WriteJournalInterrupted(buf, len(j.Results)+ran, j.Header.Jobs); err != nil {
		t.Fatal(err)
	}
	// Second resume completes and must converge.
	final := resumeJournal(t, p, buf.Bytes(), 8, false)
	diffJournals(t, "twice-interrupted", clean, final)
}

// TestFaultPanicConvergesAfterResume: injected panics become
// deterministic failure records (the batch completes), and a resume —
// which never re-applies faults — re-runs exactly those jobs and
// converges to the clean journal.
func TestFaultPanicConvergesAfterResume(t *testing.T) {
	p := newPipeline(t)
	spec := smallSpec()
	spec.Exec.Workers = 4
	clean, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	cleanJournal, _ := journalRun(t, clean, -1)

	spec.Fault = FaultSpec{PanicAt: []int{0, 5}}
	faulted, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	data, interrupted := journalRun(t, faulted, -1)
	if interrupted {
		t.Fatal("faulted run should complete, not interrupt")
	}
	j, err := ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Complete {
		t.Fatal("faulted journal missing summary line")
	}
	if jr := j.Results[0]; jr.Err != "panic: fault: injected panic at job 0" {
		t.Fatalf("job 0 error = %q", jr.Err)
	}
	if rem := j.Remaining(); len(rem) != 2 || rem[0] != 0 || rem[1] != 5 {
		t.Fatalf("Remaining() = %v, want [0 5]", rem)
	}
	final := resumeJournal(t, p, data, 8, false)
	diffJournals(t, "panic-faulted", cleanJournal, final)
}

// TestFaultTransientRetryInvisible: a transiently failing job is
// retried in-run and the journal is byte-identical to a clean run — no
// retry counts, no failure records, nothing leaks. With retry disabled
// the same fault is recorded; with FailCount exceeding the budget the
// job exhausts its attempts.
func TestFaultTransientRetryInvisible(t *testing.T) {
	p := newPipeline(t)
	spec := smallSpec()
	spec.Exec.Workers = 4
	clean, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	cleanJournal, _ := journalRun(t, clean, -1)

	spec.Fault = FaultSpec{TransientAt: []int{2, 6}}
	retried, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := journalRun(t, retried, -1)
	diffJournals(t, "transient-retried", cleanJournal, data)

	spec.Exec.MaxRetries = -1
	noRetry, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := noRetry.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !IsTransientErr(rep.Results[2].Err) || !IsTransientErr(rep.Results[6].Err) {
		t.Fatalf("retry disabled but transient faults not recorded: %q / %q",
			rep.Results[2].Err, rep.Results[6].Err)
	}

	spec.Exec.MaxRetries = 0 // back to DefaultMaxRetries (2)
	spec.Fault.FailCount = DefaultMaxRetries + 1
	exhausted, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = exhausted.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !IsTransientErr(rep.Results[2].Err) {
		t.Fatalf("FailCount %d should exhaust %d retries, got %q",
			DefaultMaxRetries+1, DefaultMaxRetries, rep.Results[2].Err)
	}
	if rep.Failures != 2 {
		t.Fatalf("exhausted run has %d failures, want 2", rep.Failures)
	}
}

// TestFaultWatchdogConvergesAfterResume: a hung job is abandoned by the
// watchdog as a deterministic failure (the batch neither hangs nor
// loses other jobs), and a resume re-runs it clean to convergence.
func TestFaultWatchdogConvergesAfterResume(t *testing.T) {
	p := newPipeline(t)
	spec := smallSpec()
	spec.Exec.Workers = 2
	clean, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	cleanJournal, _ := journalRun(t, clean, -1)

	spec.Exec.JobTimeout = Duration(250 * time.Millisecond)
	spec.Fault = FaultSpec{HangAt: []int{3}, HangFor: Duration(2 * time.Second)}
	hung, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := journalRun(t, hung, -1)
	j, err := ParseJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if jr := j.Results[3]; jr.Err != "watchdog: job exceeded the 250ms wall-clock limit" {
		t.Fatalf("job 3 error = %q", jr.Err)
	}
	// A heavily loaded host (or the race detector's slowdown) may trip
	// the watchdog on other jobs too; the contract is that job 3 is
	// among them, every abandoned job is a watchdog record, and the
	// resume still converges.
	for _, idx := range j.Remaining() {
		if jr := j.Results[idx]; !strings.HasPrefix(jr.Err, "watchdog: ") {
			t.Fatalf("remaining job %d has non-watchdog error %q", idx, jr.Err)
		}
	}
	final := resumeJournal(t, p, data, 4, false)
	diffJournals(t, "watchdog", cleanJournal, final)
}

// TestFaultSpecValidation: hang injection without a watchdog and
// out-of-range indices are NewRunner errors, not silent no-ops.
func TestFaultSpecValidation(t *testing.T) {
	p := newPipeline(t)
	spec := smallSpec()
	spec.Fault = FaultSpec{HangAt: []int{0}}
	if _, err := NewRunner(p, spec); err == nil {
		t.Error("HangAt without JobTimeout accepted")
	}
	spec.Fault = FaultSpec{PanicAt: []int{999}}
	if _, err := NewRunner(p, spec); err == nil {
		t.Error("out-of-range fault index accepted")
	}
}

// TestFaultFromSeedDeterministic: the derived fault plan is a pure
// function of (seed, jobs, counts), with distinct in-range indices.
func TestFaultFromSeedDeterministic(t *testing.T) {
	a := FaultFromSeed(42, 100, 3, 4)
	b := FaultFromSeed(42, 100, 3, 4)
	if len(a.PanicAt) != 3 || len(a.TransientAt) != 4 {
		t.Fatalf("derived %d panics, %d transients; want 3, 4", len(a.PanicAt), len(a.TransientAt))
	}
	seen := map[int]bool{}
	for _, idx := range append(append([]int{}, a.PanicAt...), a.TransientAt...) {
		if idx < 0 || idx >= 100 {
			t.Fatalf("index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("index %d drawn twice", idx)
		}
		seen[idx] = true
	}
	for i := range a.PanicAt {
		if a.PanicAt[i] != b.PanicAt[i] {
			t.Fatal("FaultFromSeed not deterministic")
		}
	}
	for i := range a.TransientAt {
		if a.TransientAt[i] != b.TransientAt[i] {
			t.Fatal("FaultFromSeed not deterministic")
		}
	}
	if c := FaultFromSeed(43, 100, 3, 4); len(c.PanicAt) == 3 &&
		c.PanicAt[0] == a.PanicAt[0] && c.PanicAt[1] == a.PanicAt[1] && c.PanicAt[2] == a.PanicAt[2] {
		t.Fatal("different seeds drew identical panic indices")
	}
	// More faults than jobs: every job drawn once, no infinite loop.
	if f := FaultFromSeed(7, 3, 5, 5); len(f.PanicAt)+len(f.TransientAt) != 3 {
		t.Fatalf("overdrawn spec has %d+%d indices, want 3 total", len(f.PanicAt), len(f.TransientAt))
	}
}

// TestJournalParseAndValidate covers the journal reader's error
// surface: round-trip, torn tails, headerless streams, corruption,
// version and fingerprint mismatches.
func TestJournalParseAndValidate(t *testing.T) {
	p := newPipeline(t)
	spec := smallSpec()
	spec.Exec.Workers = 4
	r, err := NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := journalRun(t, r, -1)

	t.Run("round-trip", func(t *testing.T) {
		j, err := ParseJournal(clean)
		if err != nil {
			t.Fatal(err)
		}
		if !j.Complete || j.Truncated || len(j.Remaining()) != 0 {
			t.Fatalf("complete journal parsed as complete=%v truncated=%v remaining=%v",
				j.Complete, j.Truncated, j.Remaining())
		}
		if err := j.Validate(r); err != nil {
			t.Fatal(err)
		}
		merged, err := j.Merged()
		if err != nil {
			t.Fatal(err)
		}
		if len(merged) != len(r.jobs) {
			t.Fatalf("merged %d results, want %d", len(merged), len(r.jobs))
		}
	})

	t.Run("torn-tail", func(t *testing.T) {
		// Drop the summary and chop into the last job line: the torn
		// line is ignored, the rest parses, and the affected job is
		// back in Remaining. (SplitAfter on a \n-terminated file yields
		// a trailing "" element, so the last job line is at len-3.)
		lines := bytes.SplitAfter(clean, []byte("\n"))
		torn := bytes.Join(lines[:len(lines)-3], nil)
		torn = append(torn, lines[len(lines)-3][:10]...)
		j, err := ParseJournal(torn)
		if err != nil {
			t.Fatal(err)
		}
		if !j.Truncated || j.Complete {
			t.Fatalf("torn journal: truncated=%v complete=%v", j.Truncated, j.Complete)
		}
		if rem := j.Remaining(); len(rem) != 1 || rem[0] != len(r.jobs)-1 {
			t.Fatalf("Remaining() = %v, want [%d]", rem, len(r.jobs)-1)
		}
		final := resumeJournal(t, p, torn, 4, false)
		diffJournals(t, "torn-tail", clean, final)
	})

	t.Run("headerless", func(t *testing.T) {
		lines := bytes.SplitAfter(clean, []byte("\n"))
		if _, err := ParseJournal(bytes.Join(lines[1:], nil)); err == nil {
			t.Error("headerless stream accepted")
		}
	})

	t.Run("corrupt-middle", func(t *testing.T) {
		bad := bytes.Replace(clean, []byte(`"kind":"app"`), []byte(`"kind":app"`), 1)
		if _, err := ParseJournal(bad); err == nil {
			t.Error("corrupt middle line accepted")
		}
	})

	t.Run("version-mismatch", func(t *testing.T) {
		bad := bytes.Replace(clean, []byte(`"version":1`), []byte(`"version":99`), 1)
		if _, err := ParseJournal(bad); err == nil {
			t.Error("future journal version accepted")
		}
	})

	t.Run("fingerprint-tamper", func(t *testing.T) {
		bad := bytes.Replace(clean, []byte(`"repeat":1`), []byte(`"repeat":2`), 1)
		if _, err := ParseJournal(bad); err == nil {
			t.Error("tampered spec accepted (fingerprint should mismatch)")
		}
	})

	t.Run("validate-wrong-matrix", func(t *testing.T) {
		j, err := ParseJournal(clean)
		if err != nil {
			t.Fatal(err)
		}
		other, err := NewRunner(p, BatchSpec{Matrix: MatrixSpec{Apps: []string{"LightSensor"}, NoScenarios: true}})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Validate(other); err == nil {
			t.Error("journal validated against a different matrix")
		}
	})
}
