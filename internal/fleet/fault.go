package fleet

// Deterministic fault injection for the crash-safety differential
// suites: a FaultSpec makes selected jobs panic, fail transiently or
// hang on their first attempt, so the tests (and CI) can prove that a
// faulted batch — after in-run retry or -resume — converges to NDJSON
// byte-identical to an unfaulted run. Faults fire at the runner's fault
// boundary, before the job touches any machine, so an injected fault
// never dirties pooled simulator state.

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TransientErrPrefix marks a JobResult.Err as transient: the runner's
// fault boundary retries the job (up to ExecSpec.MaxRetries extra attempts)
// instead of recording the failure. Job implementations can opt into
// retry the same way — prefix the error string — for failure modes that
// are genuinely attempt-scoped; everything the simulator itself reports
// today is deterministic, so the only current source is injection.
const TransientErrPrefix = "transient: "

// IsTransientErr reports whether a JobResult.Err string asks for a
// retry.
func IsTransientErr(s string) bool { return strings.HasPrefix(s, TransientErrPrefix) }

// FaultSpec selects deterministic faults by job index. The zero value
// injects nothing. All faults are first-attempt-only (or first
// FailCount attempts, for transients): a retried or resumed job runs
// clean, which is exactly the convergence property the differential
// suites pin. As the Fault section of a BatchSpec it serializes with
// the spec, but it is never carried across a resume and never shipped
// to coordinator workers.
type FaultSpec struct {
	// PanicAt lists job indices whose first attempt panics. Panics are
	// not retried in-run: the job is recorded as a deterministic failure
	// and a later -resume re-runs it clean.
	PanicAt []int `json:"panic_at,omitempty"`
	// TransientAt lists job indices whose first FailCount attempts fail
	// with a transient error; the fault boundary's bounded retry then
	// lets the job succeed in-run (or exhaust its attempts when
	// FailCount > MaxRetries).
	TransientAt []int `json:"transient_at,omitempty"`
	// FailCount is how many attempts of a TransientAt job fail
	// (default 1).
	FailCount int `json:"fail_count,omitempty"`
	// HangAt lists job indices whose first attempt blocks for HangFor —
	// watchdog fodder. NewRunner rejects HangAt without a positive
	// ExecSpec.JobTimeout, because a hang with no watchdog stalls a
	// worker for the full HangFor.
	HangAt []int `json:"hang_at,omitempty"`
	// HangFor is how long a HangAt job blocks (default 30s; tests use
	// short hangs so abandoned attempt goroutines exit promptly).
	HangFor Duration `json:"hang_for,omitempty"`
}

// Enabled reports whether the spec injects anything.
func (f *FaultSpec) Enabled() bool {
	return len(f.PanicAt) > 0 || len(f.TransientAt) > 0 || len(f.HangAt) > 0
}

// FaultFromSeed derives a FaultSpec from a seed: panics distinct panic
// indices and transients distinct transient indices drawn from [0, jobs)
// via the same splitmix64 scramble the scenario generator uses, so a
// (seed, jobs) pair names the same faulted indices on every platform.
func FaultFromSeed(seed uint64, jobs, panics, transients int) FaultSpec {
	var f FaultSpec
	if jobs <= 0 {
		return f
	}
	taken := map[int]bool{}
	draw := func(stream uint64, n int) []int {
		var out []int
		s := mix64(seed ^ mix64(stream))
		for len(out) < n && len(taken) < jobs {
			s += 0x9E3779B97F4A7C15
			i := int(mix64(s) % uint64(jobs))
			if !taken[i] {
				taken[i] = true
				out = append(out, i)
			}
		}
		sort.Ints(out)
		return out
	}
	f.PanicAt = draw(1, panics)
	f.TransientAt = draw(2, transients)
	return f
}

// mix64 is the splitmix64 finalizer (same scramble as
// internal/scenario's generator stream, restated here so the pool/fleet
// layer stays import-free of the scenario package).
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// faultState is the runner's compiled fault plan: index-set membership
// plus defaults resolved.
type faultState struct {
	panicAt     map[int]bool
	transientAt map[int]bool
	hangAt      map[int]bool
	failCount   int
	hangFor     time.Duration
}

func compileFaults(f FaultSpec, jobs int, jobTimeout time.Duration) (*faultState, error) {
	if !f.Enabled() {
		return nil, nil
	}
	st := &faultState{
		panicAt:     map[int]bool{},
		transientAt: map[int]bool{},
		hangAt:      map[int]bool{},
		failCount:   f.FailCount,
		hangFor:     f.HangFor.Std(),
	}
	if st.failCount <= 0 {
		st.failCount = 1
	}
	if st.hangFor <= 0 {
		st.hangFor = 30 * time.Second
	}
	fill := func(dst map[int]bool, src []int, kind string) error {
		for _, i := range src {
			if i < 0 || i >= jobs {
				return fmt.Errorf("fleet: fault %s index %d out of range [0, %d)", kind, i, jobs)
			}
			dst[i] = true
		}
		return nil
	}
	if err := fill(st.panicAt, f.PanicAt, "panic"); err != nil {
		return nil, err
	}
	if err := fill(st.transientAt, f.TransientAt, "transient"); err != nil {
		return nil, err
	}
	if err := fill(st.hangAt, f.HangAt, "hang"); err != nil {
		return nil, err
	}
	if len(st.hangAt) > 0 && jobTimeout <= 0 {
		return nil, fmt.Errorf("fleet: fault hang injection requires a positive ExecSpec.JobTimeout watchdog")
	}
	return st, nil
}

// fire applies the faults planned for one job attempt. It may panic
// (contained by the fault boundary's recover), block (caught by the
// watchdog), or return a non-empty transient failure message.
func (st *faultState) fire(job, attempt int) string {
	if st == nil {
		return ""
	}
	if attempt == 0 && st.panicAt[job] {
		panic(fmt.Sprintf("fault: injected panic at job %d", job))
	}
	if attempt == 0 && st.hangAt[job] {
		time.Sleep(st.hangFor)
	}
	if attempt < st.failCount && st.transientAt[job] {
		return fmt.Sprintf("%sinjected fault at job %d (attempt %d)", TransientErrPrefix, job, attempt+1)
	}
	return ""
}
