// Package fleet is the fleet-scale simulation subsystem: it executes a
// matrix of (application × defense × attack-scenario) jobs concurrently
// on independent core.Machine instances while sharing the expensive
// read-only build artifacts — each firmware is assembled and
// instrumented exactly once via core.Pipeline, and its predecoded
// instruction cache (core.Machine.EnablePredecode) and fused
// basic-block table (isa.Predecoded.Blocks) are built once per ROM and
// handed to every machine that runs it. Job results are
// aggregated deterministically in job order, so a run with eight
// workers is byte-identical to a sequential run of the same matrix.
//
// The cmd/eilid-fleet CLI, the eval/attacks sweeps and the repository
// benchmarks all sit on top of this package; it is the substrate for
// scaling the simulator to large scenario matrices.
package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"eilid/internal/apps"
	"eilid/internal/asm"
	"eilid/internal/attacks"
	"eilid/internal/core"
	"eilid/internal/fleet/pool"
	"eilid/internal/isa"
	"eilid/internal/scenario"
)

// DefaultMaxRetries is how many extra attempts a transiently failing
// job gets when ExecSpec.MaxRetries is zero.
const DefaultMaxRetries = 2

// Job is one cell of the matrix.
type Job struct {
	Index int    `json:"index"`
	Kind  string `json:"kind"` // "app", "attack" or "gen"
	Name  string `json:"name"`
	// Defense is the registry name of the job's defense column.
	Defense string `json:"defense"`
	Repeat  int    `json:"repeat"`
	// Family and Victim describe generated jobs: the generator family
	// and the shared victim build the scenario runs on.
	Family string `json:"family,omitempty"`
	Victim string `json:"victim,omitempty"`
}

// JobResult is the deterministic outcome of one job. It carries only
// simulated observables (no wall-clock fields), so marshalled results
// are byte-identical across worker counts and runs.
type JobResult struct {
	Job
	Cycles   uint64 `json:"cycles"`
	Insns    uint64 `json:"insns"`
	Halted   bool   `json:"halted"`
	ExitCode uint16 `json:"exit_code"`
	Resets   int    `json:"resets"`
	Reason   string `json:"reason,omitempty"`
	// ReasonsRecorded is how many per-reset violation records the
	// machine retained; under a reset storm it saturates at
	// core.MaxResetReasons while Resets keeps the true total.
	ReasonsRecorded int    `json:"reasons_recorded,omitempty"`
	UART            string `json:"uart,omitempty"`
	Compromised     bool   `json:"compromised,omitempty"`
	CheckOK         bool   `json:"check_ok"`
	// Oracle carries the oracle's failure description when a generated
	// job's protected outcome violates it (CheckOK false).
	Oracle string `json:"oracle,omitempty"`
	Err    string `json:"error,omitempty"`
}

// artifact is the shared read-only build product for one firmware:
// assembled images plus one predecoded instruction cache per build
// flavour (instrumented defenses share preInst, all others preOrig —
// their memory contents are byte-identical).
type artifact struct {
	build   *core.BuildResult
	preOrig *isa.Predecoded
	preInst *isa.Predecoded
	// warmKey content-addresses the artifact (sha256 of its assembly
	// source) for the cross-batch Warm cache; empty outside warm runs.
	warmKey string
}

// pre returns the decode cache for a defense's build flavour.
func (a *artifact) pre(spec *core.DefenseSpec) *isa.Predecoded {
	if spec.Instrumented {
		return a.preInst
	}
	return a.preOrig
}

// Runner holds a prepared matrix: every firmware built, every decode
// cache snapshotted, every job enumerated. Run may be called multiple
// times; the artifacts — and, when recycling, the pooled machines —
// are reused.
type Runner struct {
	p         *core.Pipeline
	spec      BatchSpec // resolved (ResolveSpec) — the batch's canonical identity
	apps      []apps.App
	scenarios []attacks.Scenario
	defenses  []*core.DefenseSpec
	specOf    map[string]*core.DefenseSpec // defense name → spec
	artifacts map[string]*artifact         // keyed by kind/name (gen jobs: gen/victim)
	generated map[string]scenario.Generated
	jobs      []Job
	workers   int
	repeat    int

	// Fault boundary configuration (see runJobSafe).
	maxRetries int
	jobTimeout time.Duration
	fault      *faultState

	// warm is the optional cross-batch cache (NewRunnerWarm): prepare
	// consults it before building, machineFor before constructing, and
	// ReleaseMachines returns the pooled machines to it when the batch
	// is over. Nil for ordinary single-batch runners.
	warm *Warm

	// recycle keeps one fully constructed machine per worker per matrix
	// cell and recycles it between jobs instead of paying NewMachine +
	// firmware load per job. worker[w] is owned by worker w, and every
	// attempt borrows the worker's current machinePool handle; the mutex
	// guards only that handle, so the watchdog can swap it out and leave
	// an abandoned runaway attempt as the sole owner of its machines.
	// Machine state never leaks between jobs because Recycle restores
	// the sealed snapshot — the recycle differential suites pin
	// byte-identical JobResults.
	recycle bool
	worker  []workerState
}

// workerState is one worker's machine-pool handle plus its reusable
// watchdog timer (the timer is touched only on the worker goroutine).
type workerState struct {
	mu       sync.Mutex
	pool     *machinePool
	watchdog *time.Timer
}

// machinePool is owned by exactly one job attempt at a time: attempts
// of a worker borrow it sequentially, and when the watchdog abandons a
// runaway attempt the handle is replaced, so the runaway keeps (only)
// its own machines and later jobs never share one with it.
type machinePool struct {
	machines map[string]pooledMachine // kind/name/defense → machine
}

// pooledMachine pairs a pooled machine with the content-addressed key
// ReleaseMachines files it under in the warm cache (empty when the
// runner has none).
type pooledMachine struct {
	m       *core.Machine
	warmKey string
}

// attemptPool hands the next job attempt the worker's current pool,
// creating a fresh one after a watchdog abandonment.
func (r *Runner) attemptPool(worker int) *machinePool {
	st := &r.worker[worker]
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.pool == nil {
		st.pool = &machinePool{machines: map[string]pooledMachine{}}
	}
	return st.pool
}

// NewRunner resolves the spec (ResolveSpec), builds all artifacts for
// the selected matrix (sequentially, so preparation is deterministic)
// and enumerates the jobs.
func NewRunner(p *core.Pipeline, spec BatchSpec) (*Runner, error) {
	return NewRunnerWarm(p, spec, nil)
}

// NewRunnerWarm is NewRunner backed by a cross-batch warm cache:
// artifacts already in the cache are reused instead of rebuilt, fresh
// builds are published into it, and machineFor checks out idle warm
// machines before constructing new ones. Results are byte-identical to
// a cold runner's — every reused machine is recycled to its sealed
// snapshot before a job touches it — which the warm differential
// suites pin. Call ReleaseMachines when the batch is done to return
// the pooled machines for the next batch.
func NewRunnerWarm(p *core.Pipeline, spec BatchSpec, warm *Warm) (*Runner, error) {
	spec, err := ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	r := &Runner{p: p, spec: spec, warm: warm, artifacts: map[string]*artifact{}, workers: spec.Exec.Workers}
	if r.workers <= 0 {
		r.workers = runtime.GOMAXPROCS(0)
	}
	r.recycle = !spec.Exec.NoRecycle
	r.worker = make([]workerState, r.workers)
	r.maxRetries = spec.Exec.MaxRetries
	if r.maxRetries == 0 {
		r.maxRetries = DefaultMaxRetries
	} else if r.maxRetries < 0 {
		r.maxRetries = 0
	}
	r.jobTimeout = spec.Exec.JobTimeout.Std()
	// The resolved matrix carries explicit, registry-validated name
	// lists; map them back to their registry objects.
	for _, name := range spec.Matrix.Defenses {
		d, err := core.DefenseByName(name)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		r.defenses = append(r.defenses, d)
	}
	r.specOf = make(map[string]*core.DefenseSpec, len(r.defenses))
	for _, d := range r.defenses {
		r.specOf[d.Name] = d
	}
	r.repeat = spec.Matrix.Repeat
	for _, n := range spec.Matrix.Apps {
		a, ok := apps.ByName(n)
		if !ok {
			return nil, fmt.Errorf("fleet: unknown application %q", n)
		}
		r.apps = append(r.apps, a)
	}
	if len(spec.Matrix.Scenarios) > 0 {
		byName := map[string]attacks.Scenario{}
		for _, s := range attacks.Scenarios() {
			byName[s.Name] = s
		}
		for _, n := range spec.Matrix.Scenarios {
			s, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("fleet: unknown scenario %q", n)
			}
			r.scenarios = append(r.scenarios, s)
		}
	}

	for _, app := range r.apps {
		if _, err := r.prepare("app/"+app.Name, app.Name+".s", app.Source); err != nil {
			return nil, fmt.Errorf("fleet: building %s: %w", app.Name, err)
		}
	}
	for _, sc := range r.scenarios {
		if _, err := r.prepare("attack/"+sc.Name, sc.Name+".s", sc.Source); err != nil {
			return nil, fmt.Errorf("fleet: building %s: %w", sc.Name, err)
		}
	}
	var genItems []scenario.Generated
	if spec.Matrix.Generated.Count > 0 {
		batch := scenario.Generate(spec.Matrix.Generated.Seed, spec.Matrix.Generated.Count)
		for _, v := range batch.Victims {
			if _, err := r.prepare("gen/"+v.Name, v.Name+".s", v.Source); err != nil {
				return nil, fmt.Errorf("fleet: building generated victim %s: %w", v.Name, err)
			}
		}
		genItems = batch.Items
		r.generated = make(map[string]scenario.Generated, len(batch.Items))
		for _, g := range batch.Items {
			r.generated[g.Scenario.Name] = g
		}
	}

	for rep := 0; rep < r.repeat; rep++ {
		for _, app := range r.apps {
			for _, d := range r.defenses {
				r.jobs = append(r.jobs, Job{
					Index: len(r.jobs), Kind: "app", Name: app.Name, Defense: d.Name, Repeat: rep,
				})
			}
		}
		for _, sc := range r.scenarios {
			for _, d := range r.defenses {
				r.jobs = append(r.jobs, Job{
					Index: len(r.jobs), Kind: "attack", Name: sc.Name, Defense: d.Name, Repeat: rep,
				})
			}
		}
		for _, g := range genItems {
			for _, d := range r.defenses {
				r.jobs = append(r.jobs, Job{
					Index: len(r.jobs), Kind: "gen", Name: g.Scenario.Name,
					Family: g.Family, Victim: g.Victim, Defense: d.Name, Repeat: rep,
				})
			}
		}
	}
	fault, err := compileFaults(spec.Fault, len(r.jobs), r.jobTimeout)
	if err != nil {
		return nil, err
	}
	r.fault = fault
	return r, nil
}

// Defenses returns the selected defense columns in matrix order.
func (r *Runner) Defenses() []*core.DefenseSpec {
	return append([]*core.DefenseSpec(nil), r.defenses...)
}

// prepare builds one firmware and snapshots its per-flavour decode
// caches from reference machines carrying the exact images the jobs
// will run. Both flavours are snapshotted regardless of the selected
// defenses, so artifacts are identical whatever columns run.
func (r *Runner) prepare(key, file, source string) (*artifact, error) {
	if a, ok := r.artifacts[key]; ok {
		return a, nil
	}
	if r.warm != nil {
		if a := r.warm.artifact(file, source); a != nil {
			r.artifacts[key] = a
			return a, nil
		}
	}
	build, err := r.p.Build(file, source)
	if err != nil {
		return nil, err
	}
	a := &artifact{build: build}
	if a.preOrig, err = r.snapshot(build.Original.Image, false); err != nil {
		return nil, err
	}
	if a.preInst, err = r.snapshot(build.Instrumented.Image, true); err != nil {
		return nil, err
	}
	if r.warm != nil {
		a.warmKey = warmContentKey(file, source)
		r.warm.putArtifact(a)
	}
	r.artifacts[key] = a
	return a, nil
}

// snapshot loads img on a throwaway machine of the given build flavour
// and predecodes its fetchable memory.
func (r *Runner) snapshot(img *asm.Image, instrumented bool) (*isa.Predecoded, error) {
	opts := core.MachineOptions{Config: r.p.Config()}
	if instrumented {
		opts.ROM = r.p.ROM()
		opts.Defense = core.DefenseEILID
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		return nil, err
	}
	if err := img.WriteTo(m.Space); err != nil {
		return nil, err
	}
	pre := m.EnablePredecode()
	// Fuse the basic-block table now, during sequential preparation, so
	// the first job to run this ROM does not pay for it and every
	// machine shares the one per-ROM table.
	pre.Blocks()
	return pre, nil
}

// Jobs returns the enumerated matrix in execution order.
func (r *Runner) Jobs() []Job { return append([]Job(nil), r.jobs...) }

// BuildFor returns the prepared build artifact for a matrix cell
// (kind "app" or "attack"), or nil when the name is not in the matrix.
// The artifact is the shared read-only product every job of that cell
// runs; callers must not mutate it.
func (r *Runner) BuildFor(kind, name string) *core.BuildResult {
	if a, ok := r.artifacts[kind+"/"+name]; ok {
		return a.build
	}
	return nil
}

// Workers returns the configured pool size.
func (r *Runner) Workers() int { return r.workers }

// Spec returns the runner's resolved BatchSpec — the canonical,
// serializable identity of the batch. It round-trips: NewRunner on the
// returned spec enumerates the identical job matrix, which is how a
// coordinator ships its batch to worker processes.
func (r *Runner) Spec() BatchSpec { return r.spec }

// Run executes the matrix on the worker pool and aggregates the report.
// Per-job failures — including panics, which the fault boundary turns
// into deterministic failure records — are recorded in the job's Err
// field rather than aborting the fleet: one wild scenario must not sink
// the batch.
func (r *Runner) Run() (*Report, error) {
	start := time.Now()
	results := pool.DoIndexed(len(r.jobs), r.workers, r.runJobSafe)
	return Aggregate(results, r.workers, time.Since(start)), nil
}

// RunSequential executes the same matrix on one worker — the reference
// ordering for determinism checks.
func (r *Runner) RunSequential() (*Report, error) {
	start := time.Now()
	results := pool.DoIndexed(len(r.jobs), 1, r.runJobSafe)
	return Aggregate(results, 1, time.Since(start)), nil
}

// RunStream executes the matrix and delivers every JobResult to emit —
// in job order, on the calling goroutine, as soon as it and its
// predecessors complete — without retaining the per-job results in
// memory. The returned report carries only the aggregate counters
// (Results is nil); because emission is in job order, the stream is as
// deterministic as Run's results array.
func (r *Runner) RunStream(emit func(JobResult)) (*Report, error) {
	rep, _, err := r.RunStreamCancel(nil, emit)
	return rep, err
}

// RunStreamCancel is RunStream with graceful shutdown: when cancel is
// closed, dispatch stops, the in-flight jobs drain and emit, and the
// call returns interrupted=true with the partial aggregate. Every
// emitted result is final — exactly what a journal needs to make the
// batch resumable.
func (r *Runner) RunStreamCancel(cancel <-chan struct{}, emit func(JobResult)) (rep *Report, interrupted bool, err error) {
	start := time.Now()
	rep = &Report{Workers: r.workers}
	_, interrupted = pool.StreamIndexedCancel(len(r.jobs), r.workers, cancel, r.runJobSafe, func(_ int, jr JobResult) {
		rep.Add(jr)
		if emit != nil {
			emit(jr)
		}
	})
	return rep.Finish(time.Since(start)), interrupted, nil
}

// RunIndices executes only the named jobs (the remainder of an
// interrupted batch, in ascending order) and streams their results to
// emit as each completes. Results are identical to the same jobs' slice
// of a full run: job identity is (seed, index)-deterministic and
// machines recycle to sealed snapshots, so a resumed batch merges
// byte-identically into an uninterrupted one.
func (r *Runner) RunIndices(indices []int, cancel <-chan struct{}, emit func(JobResult)) (interrupted bool, err error) {
	for _, i := range indices {
		if i < 0 || i >= len(r.jobs) {
			return false, fmt.Errorf("fleet: resume index %d out of range [0, %d)", i, len(r.jobs))
		}
	}
	_, interrupted = pool.StreamIndexedCancel(len(indices), r.workers, cancel,
		func(worker, k int) JobResult { return r.runJobSafe(worker, indices[k]) },
		func(_ int, jr JobResult) {
			if emit != nil {
				emit(jr)
			}
		})
	return interrupted, nil
}

// runJobSafe is the fault boundary around one job: per-job watchdog,
// bounded transient retry, and panic containment. Everything the
// runner executes goes through it, so a panicking, transiently failing
// or runaway job becomes a deterministic JobResult instead of a lost
// batch.
func (r *Runner) runJobSafe(worker, i int) JobResult {
	mp := r.attemptPool(worker)
	if r.jobTimeout <= 0 {
		return r.runJobAttempts(mp, i)
	}
	// The attempt runs on its own goroutine so the watchdog can abandon
	// it; the buffered channel lets a late attempt finish and exit
	// without a receiver.
	done := make(chan JobResult, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				// Backstop only — runJobAttempts contains panics itself.
				jr := JobResult{Job: r.jobs[i]}
				jr.Err = fmt.Sprintf("panic: %v", v)
				done <- jr
			}
		}()
		done <- r.runJobAttempts(mp, i)
	}()
	st := &r.worker[worker]
	t := st.watchdog
	if t == nil {
		t = time.NewTimer(r.jobTimeout)
		st.watchdog = t
	} else {
		t.Reset(r.jobTimeout)
	}
	select {
	case res := <-done:
		if !t.Stop() {
			<-t.C
		}
		return res
	case <-t.C:
		// The attempt goroutine may still be mutating the machines in
		// mp; swap the worker's handle so no later job shares one with
		// it. The runaway goroutine keeps (only) its own pool and exits
		// whenever (if ever) the attempt returns.
		st.mu.Lock()
		st.pool = nil
		st.mu.Unlock()
		res := JobResult{Job: r.jobs[i]}
		res.Err = fmt.Sprintf("watchdog: job exceeded the %v wall-clock limit", r.jobTimeout)
		return res
	}
}

// runJobAttempts runs one job with bounded retry: attempts reporting a
// transient failure (TransientErrPrefix) are retried immediately on the
// same worker until one returns a final result or the retry budget is
// spent. Each attempt recycles its machine back to the sealed snapshot
// (machineFor does on every pool hit), so a retried success is
// byte-identical to a first-attempt one.
func (r *Runner) runJobAttempts(mp *machinePool, i int) JobResult {
	for attempt := 0; ; attempt++ {
		res := r.runJobOnce(mp, i, attempt)
		if attempt >= r.maxRetries || !IsTransientErr(res.Err) {
			return res
		}
	}
}

// runJobOnce runs a single attempt under recover: a panic — injected or
// real — becomes a deterministic failure record (stable message, no
// stack addresses) and the batch continues. Fault injection fires
// before the job touches any machine.
func (r *Runner) runJobOnce(mp *machinePool, i, attempt int) (res JobResult) {
	defer func() {
		if v := recover(); v != nil {
			res = JobResult{Job: r.jobs[i]}
			res.Err = fmt.Sprintf("panic: %v", v)
		}
	}()
	if msg := r.fault.fire(i, attempt); msg != "" {
		res = JobResult{Job: r.jobs[i]}
		res.Err = msg
		return res
	}
	return r.runJob(mp, i)
}

func (r *Runner) runJob(mp *machinePool, i int) JobResult {
	job := r.jobs[i]
	switch job.Kind {
	case "app":
		return r.runAppJob(mp, job)
	case "gen":
		return r.runGenJob(mp, job)
	default:
		return r.runAttackJob(mp, job)
	}
}

// newMachine constructs a fresh, fully loaded machine for one matrix
// cell — defense wiring, firmware image, shared per-ROM decode cache —
// through the same attacks.Target.NewMachine sequence the standalone
// scenario path uses, so pooled and one-shot machines cannot diverge.
func (r *Runner) newMachine(a *artifact, spec *core.DefenseSpec) (*core.Machine, error) {
	t := attacks.TargetFor(r.p, a.build, spec)
	t.Predecoded = a.pre(spec)
	return t.NewMachine()
}

// artifactKey locates a job's shared build: generated jobs share their
// victim's artifact (a thousand-item batch runs on a dozen builds),
// everything else builds per name.
func artifactKey(job Job) string {
	if job.Kind == "gen" {
		return "gen/" + job.Victim
	}
	return job.Kind + "/" + job.Name
}

// machineFor hands the attempt a machine for the cell: its borrowed
// pool's, recycled back to the sealed snapshot, or — on the cell's
// first job in this pool, or with recycling off — a fresh build.
// Machines are pooled per (artifact, defense): a defense monitor is
// stateful hardware, never shared across columns. mp is exclusively
// owned by the calling attempt, so no locking is needed here.
func (r *Runner) machineFor(mp *machinePool, job Job) (*core.Machine, error) {
	a := r.artifacts[artifactKey(job)]
	if a == nil {
		return nil, fmt.Errorf("fleet: no artifact for %s", artifactKey(job))
	}
	spec := r.specOf[job.Defense]
	if spec == nil {
		return nil, fmt.Errorf("fleet: job %d names unselected defense %q", job.Index, job.Defense)
	}
	if !r.recycle {
		return r.newMachine(a, spec)
	}
	key := artifactKey(job) + "/" + job.Defense
	if pm, ok := mp.machines[key]; ok {
		if err := pm.m.Recycle(); err != nil {
			return nil, err
		}
		return pm.m, nil
	}
	// Before constructing, try the cross-batch warm cache: an idle
	// machine from an earlier batch of the same (artifact, defense)
	// cell recycles to its sealed snapshot exactly like an in-batch
	// pool hit does.
	var warmKey string
	if r.warm != nil && a.warmKey != "" {
		warmKey = a.warmKey + "/" + job.Defense
		if m := r.warm.takeMachine(warmKey); m != nil {
			if err := m.Recycle(); err != nil {
				return nil, err
			}
			mp.machines[key] = pooledMachine{m: m, warmKey: warmKey}
			return m, nil
		}
	}
	m, err := r.newMachine(a, spec)
	if err != nil {
		return nil, err
	}
	m.Snapshot()
	mp.machines[key] = pooledMachine{m: m, warmKey: warmKey}
	return m, nil
}

// ReleaseMachines moves every machine still held by the runner's
// worker pools into the warm cache, leaving the runner's pools empty.
// Call it only after the batch has fully drained (no attempt running);
// machines the per-job watchdog abandoned were already detached from
// the worker pools, so they are never released — their runaway attempt
// keeps sole ownership. No-op without a warm cache or with recycling
// off.
func (r *Runner) ReleaseMachines() {
	if r.warm == nil || !r.recycle {
		return
	}
	for i := range r.worker {
		st := &r.worker[i]
		st.mu.Lock()
		mp := st.pool
		st.pool = nil
		st.mu.Unlock()
		if mp == nil {
			continue
		}
		for _, pm := range mp.machines {
			if pm.warmKey != "" {
				r.warm.putMachine(pm.warmKey, pm.m)
			}
		}
	}
}

// ExecuteApp runs one application build under the given defense on a
// fresh machine and returns the observable inspection plus the first
// reset reason (empty when none). pre optionally shares a decode cache
// built from the same image; nil snapshots a private one. A non-nil
// error with a non-nil inspection is a run error (e.g. cycle-budget
// exhaustion) after which the partial observables are still meaningful.
// This is the one app-run sequence both the fleet jobs and eval's
// Table IV measurement go through.
func ExecuteApp(p *core.Pipeline, app apps.App, build *core.BuildResult, spec *core.DefenseSpec, pre *isa.Predecoded) (*apps.Inspection, string, error) {
	if spec == nil {
		spec = core.DefenseBaseline
	}
	opts := core.MachineOptions{Config: p.Config(), Defense: spec}
	img := build.Original.Image
	if spec.Instrumented {
		opts.ROM = p.ROM()
		img = build.Instrumented.Image
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		return nil, "", err
	}
	if err := m.LoadFirmware(img); err != nil {
		return nil, "", err
	}
	if pre != nil {
		m.UsePredecoded(pre)
	} else {
		m.EnablePredecode()
	}
	return ExecuteAppOn(m, app)
}

// ExecuteAppOn runs one application on a prepared machine — fresh from
// construction + firmware load, or recycled by the fleet's machine pool
// — feeding UART input, booting and running to the app's cycle budget.
func ExecuteAppOn(m *core.Machine, app apps.App) (*apps.Inspection, string, error) {
	if app.UARTInput != "" {
		m.UART.Feed([]byte(app.UARTInput))
	}
	m.Boot()
	run, runErr := m.Run(app.MaxCycles)
	insp := apps.Inspect(m, run)
	reason := ""
	if len(m.ResetReasons) > 0 {
		reason = m.ResetReasons[0].Kind.String()
	}
	return insp, reason, runErr
}

func (r *Runner) runAppJob(mp *machinePool, job Job) JobResult {
	res := JobResult{Job: job}
	app, ok := apps.ByName(job.Name)
	if !ok {
		res.Err = fmt.Sprintf("unknown app %q", job.Name)
		return res
	}
	m, err := r.machineFor(mp, job)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	insp, reason, err := ExecuteAppOn(m, app)
	if err != nil {
		res.Err = err.Error()
	}
	if insp == nil {
		return res
	}
	res.Cycles = insp.Cycles
	res.Insns = insp.Insns
	res.Halted = insp.Halted
	res.ExitCode = insp.ExitCode
	res.Resets = insp.Resets
	res.ReasonsRecorded = insp.ReasonsRecorded
	res.UART = insp.UART
	res.Reason = reason
	if err == nil {
		if chk := app.Check(insp); chk != nil {
			res.Err = fmt.Sprintf("behaviour check failed: %v", chk)
		} else {
			res.CheckOK = true
		}
	}
	return res
}

func (r *Runner) runAttackJob(mp *machinePool, job Job) JobResult {
	res := JobResult{Job: job}
	var sc attacks.Scenario
	found := false
	for _, s := range r.scenarios {
		if s.Name == job.Name {
			sc, found = s, true
			break
		}
	}
	if !found {
		res.Err = fmt.Sprintf("unknown scenario %q", job.Name)
		return res
	}
	o, err := r.executeScenario(mp, job, sc)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.fillOutcome(o)
	// The check depends on the defense column. The baseline must fall
	// (demonstrating the threat is real) and EILID — the paper's defense,
	// whose claims cover every handcrafted attack — must reset
	// un-compromised. The comparative defenses are allowed to miss: their
	// detection or compromise is the matrix cell itself, so the check
	// only demands architectural sanity (any reset reason must be one the
	// defense can emit).
	spec := r.specOf[job.Defense]
	switch {
	case spec.New == nil:
		res.CheckOK = o.Compromised
	case spec.Name == core.DefenseEILID.Name:
		res.CheckOK = !o.Compromised && o.Resets > 0
	default:
		res.CheckOK = o.Resets == 0 || spec.EmitsReason(o.Reason)
	}
	return res
}

// fillOutcome copies a scenario outcome's observables into the result.
func (res *JobResult) fillOutcome(o attacks.Outcome) {
	res.Cycles = o.Cycles
	res.Insns = o.Insns
	res.Halted = o.Halted
	res.ExitCode = o.ExitCode
	res.Resets = o.Resets
	res.ReasonsRecorded = o.ReasonsRecorded
	res.Reason = o.Reason
	res.UART = o.UART
	res.Compromised = o.Compromised
}

// executeScenario runs a scenario for the job's matrix cell: shared
// build artifact, defense target with the per-ROM decode cache, pooled
// (or fresh) machine. Handcrafted attack jobs and generated jobs both
// go through it, so the two kinds cannot diverge in target preparation
// or machine lifecycle.
func (r *Runner) executeScenario(mp *machinePool, job Job, sc attacks.Scenario) (attacks.Outcome, error) {
	a := r.artifacts[artifactKey(job)]
	if a == nil {
		return attacks.Outcome{}, fmt.Errorf("no artifact for %s", artifactKey(job))
	}
	spec := r.specOf[job.Defense]
	if spec == nil {
		return attacks.Outcome{}, fmt.Errorf("job %d names unselected defense %q", job.Index, job.Defense)
	}
	t := attacks.TargetFor(r.p, a.build, spec)
	t.Predecoded = a.pre(spec)

	m, err := r.machineFor(mp, job)
	if err != nil {
		return attacks.Outcome{}, err
	}
	return attacks.ExecuteOn(m, t, sc)
}

// runGenJob executes one generated scenario variant. The check is the
// generator's per-defense oracle (scenario.Generated.Check): EILID must
// uphold the paper's guarantee, the comparative defenses must only
// reset for reasons they can emit, and the baseline is recorded purely
// as a diagnostic — many generated variants are deliberate near-misses
// that fizzle everywhere.
func (r *Runner) runGenJob(mp *machinePool, job Job) JobResult {
	res := JobResult{Job: job}
	g, ok := r.generated[job.Name]
	if !ok {
		res.Err = fmt.Sprintf("unknown generated scenario %q", job.Name)
		return res
	}
	o, err := r.executeScenario(mp, job, g.Scenario)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.fillOutcome(o)
	res.Oracle = g.Check(r.specOf[job.Defense], o)
	res.CheckOK = res.Oracle == ""
	return res
}
