package fleet

import (
	"bytes"
	"strings"
	"testing"

	"eilid/internal/core"
)

func newPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFleetDeterminism is the acceptance property of the runner: the
// full app × defense × scenario matrix on 8 workers produces per-job
// results byte-identical to a sequential run of the same matrix.
func TestFleetDeterminism(t *testing.T) {
	p := newPipeline(t)
	r, err := NewRunner(p, BatchSpec{Matrix: MatrixSpec{Repeat: 2}, Exec: ExecSpec{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := r.RunSequential()
	if err != nil {
		t.Fatal(err)
	}
	par, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	seqJSON, err := seq.ResultsJSON()
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := par.ResultsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		for i := range seq.Results {
			if seq.Results[i] != par.Results[i] {
				t.Errorf("job %d diverges:\nseq: %+v\npar: %+v", i, seq.Results[i], par.Results[i])
			}
		}
		t.Fatal("concurrent results differ from sequential run")
	}
	if seq.Workers != 1 || par.Workers != 8 {
		t.Fatalf("worker accounting: seq=%d par=%d", seq.Workers, par.Workers)
	}
}

// TestFleetRepeatsIdentical checks that repeats of the same job cell
// are bit-for-bit reproducible (machines share artifacts but no state).
func TestFleetRepeatsIdentical(t *testing.T) {
	p := newPipeline(t)
	r, err := NewRunner(p, BatchSpec{
		Matrix: MatrixSpec{Apps: []string{"TempSensor"}, NoScenarios: true, Repeat: 3},
		Exec:   ExecSpec{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	perCell := map[string]JobResult{}
	for _, jr := range rep.Results {
		key := jr.Kind + "/" + jr.Name + "/" + jr.Defense
		ref, ok := perCell[key]
		if !ok {
			perCell[key] = jr
			continue
		}
		// Repeats differ only in Index/Repeat bookkeeping.
		a, b := jr, ref
		a.Index, a.Repeat, b.Index, b.Repeat = 0, 0, 0, 0
		if a != b {
			t.Errorf("%s: repeat diverges:\n%+v\n%+v", key, jr, ref)
		}
	}
}

// TestFleetMatrixOutcomes sanity-checks the semantic content of the
// matrix: benign apps pass their behaviour checks under every defense,
// and every attack compromises the baseline while the EILID device
// resets without running attacker code.
func TestFleetMatrixOutcomes(t *testing.T) {
	p := newPipeline(t)
	r, err := NewRunner(p, BatchSpec{Exec: ExecSpec{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		for _, jr := range rep.Results {
			if jr.Err != "" {
				t.Errorf("job %d (%s/%s/%s): %s", jr.Index, jr.Kind, jr.Name, jr.Defense, jr.Err)
			}
		}
		t.Fatalf("%d job failures", rep.Failures)
	}
	for _, jr := range rep.Results {
		if !jr.CheckOK {
			t.Errorf("job %d (%s/%s/%s) failed its check (resets=%d reason=%q compromised=%v)",
				jr.Index, jr.Kind, jr.Name, jr.Defense, jr.Resets, jr.Reason, jr.Compromised)
		}
		if jr.Kind == "attack" && jr.Defense == core.DefenseEILID.Name && jr.Compromised {
			t.Errorf("attack %s compromised the EILID device", jr.Name)
		}
	}
	if rep.TotalCycles == 0 || rep.TotalInsns == 0 {
		t.Fatalf("empty aggregation: %+v", rep)
	}
}

// TestFleetSpecSelection exercises name selection and error paths.
func TestFleetSpecSelection(t *testing.T) {
	p := newPipeline(t)
	if _, err := NewRunner(p, BatchSpec{Matrix: MatrixSpec{Apps: []string{"NoSuchApp"}}}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := NewRunner(p, BatchSpec{Matrix: MatrixSpec{Scenarios: []string{"no-such-attack"}}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := NewRunner(p, BatchSpec{Matrix: MatrixSpec{Defenses: []string{"no-such-defense"}}}); err == nil {
		t.Fatal("unknown defense accepted")
	}
	r, err := NewRunner(p, BatchSpec{
		Matrix: MatrixSpec{
			Apps: []string{"LightSensor"}, Scenarios: []string{"stack-smash"},
			Defenses: []string{"baseline", "eilid"},
		},
		Exec: ExecSpec{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := r.Jobs()
	if len(jobs) != 4 { // 1 app × 2 defenses + 1 scenario × 2 defenses
		t.Fatalf("got %d jobs, want 4", len(jobs))
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	rep.Render(&buf)
	for _, want := range []string{"LightSensor", "stack-smash", "baseline", "eilid", "detection matrix"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunStreamMatchesRun: the streamed results arrive in job order and
// carry exactly the payloads Run aggregates, and the streamed report's
// counters match the aggregate one's.
func TestRunStreamMatchesRun(t *testing.T) {
	p := newPipeline(t)
	r, err := NewRunner(p, BatchSpec{
		Matrix: MatrixSpec{Apps: []string{"TempSensor"}, Scenarios: []string{"stack-smash"}},
		Exec:   ExecSpec{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var streamed []JobResult
	rep, err := r.RunStream(func(jr JobResult) { streamed = append(streamed, jr) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != nil {
		t.Error("streamed report retained the results slice")
	}
	if len(streamed) != len(full.Results) {
		t.Fatalf("streamed %d results, Run produced %d", len(streamed), len(full.Results))
	}
	for i := range streamed {
		if streamed[i] != full.Results[i] {
			t.Errorf("result %d differs:\n%+v\n%+v", i, streamed[i], full.Results[i])
		}
	}
	if rep.Jobs != full.Jobs || rep.Failures != full.Failures ||
		rep.ChecksFailed != full.ChecksFailed || rep.TotalCycles != full.TotalCycles ||
		rep.TotalInsns != full.TotalInsns {
		t.Errorf("aggregate counters diverged: %+v vs %+v", rep, full)
	}
}
