package fleet

import (
	"bytes"
	"testing"
)

// genNDJSON runs a generated-only matrix through the streaming path and
// returns the per-job NDJSON bytes — the artifact the determinism
// contract is stated over.
func genNDJSON(t *testing.T, spec BatchSpec) []byte {
	t.Helper()
	r, err := NewRunner(newPipeline(t), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep, err := r.RunStream(func(jr JobResult) {
		if err := WriteNDJSONLine(&buf, jr); err != nil {
			t.Fatal(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures > 0 {
		t.Fatalf("%d generated jobs errored:\n%s", rep.Failures, buf.String())
	}
	return buf.Bytes()
}

func genSpec(workers int, noRecycle bool) BatchSpec {
	return BatchSpec{
		Matrix: MatrixSpec{
			NoApps:      true,
			NoScenarios: true,
			Generated:   GeneratedSpec{Seed: 7, Count: 48},
		},
		Exec: ExecSpec{Workers: workers, NoRecycle: noRecycle},
	}
}

// TestGeneratedDeterminismWorkers extends the fleet's byte-identical
// contract to the generated dimension: a fixed-seed batch streams the
// same NDJSON on one worker and on eight.
func TestGeneratedDeterminismWorkers(t *testing.T) {
	seq := genNDJSON(t, genSpec(1, false))
	par := genNDJSON(t, genSpec(8, false))
	if !bytes.Equal(seq, par) {
		t.Fatal("generated NDJSON differs between 1 and 8 workers")
	}
}

// TestGeneratedDeterminismRecycle extends the PR 4 recycled-vs-fresh
// differential to generated scenarios: machine recycling must not be
// observable in any generated job's record.
func TestGeneratedDeterminismRecycle(t *testing.T) {
	recycled := genNDJSON(t, genSpec(4, false))
	fresh := genNDJSON(t, genSpec(4, true))
	if !bytes.Equal(recycled, fresh) {
		t.Fatal("generated NDJSON differs between recycled and construct-per-job machines")
	}
}

// TestGeneratedOracle runs a larger fixed-seed batch and asserts the
// dimension's security property end to end: every job passes its
// per-defense oracle (in particular, zero EILID compromises), while the
// baseline falls to at least some variants — proof the generated inputs
// carry real attacks, not noise.
func TestGeneratedOracle(t *testing.T) {
	r, err := NewRunner(newPipeline(t), BatchSpec{
		Matrix: MatrixSpec{
			NoApps:      true,
			NoScenarios: true,
			Generated:   GeneratedSpec{Seed: 1, Count: 160},
		},
		Exec: ExecSpec{Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures > 0 || rep.ChecksFailed > 0 {
		for _, jr := range rep.Results {
			if jr.Err != "" || !jr.CheckOK {
				t.Errorf("job %d %s/%s: err=%q oracle=%q", jr.Index, jr.Name, jr.Defense, jr.Err, jr.Oracle)
			}
		}
		t.Fatalf("%d failures, %d check failures", rep.Failures, rep.ChecksFailed)
	}
	// Tally the matrix per defense column across generated families.
	perDefense := map[string]MatrixCell{}
	for _, col := range rep.Matrix {
		for defense, cell := range col {
			agg := perDefense[defense]
			agg.Jobs += cell.Jobs
			agg.Detected += cell.Detected
			agg.Compromised += cell.Compromised
			perDefense[defense] = agg
		}
	}
	eilid, baseline := perDefense["eilid"], perDefense["baseline"]
	if eilid.Jobs == 0 || eilid.Jobs != baseline.Jobs {
		t.Fatalf("lopsided dimension: %d eilid vs %d baseline jobs", eilid.Jobs, baseline.Jobs)
	}
	if eilid.Compromised != 0 {
		t.Fatalf("%d EILID compromises — EILID's guarantee broken", eilid.Compromised)
	}
	if baseline.Compromised == 0 {
		t.Fatal("no generated variant compromised the baseline; the batch carries no real attacks")
	}
	// Every family must have reached the matrix.
	fams := map[string]bool{}
	for _, jr := range rep.Results {
		fams[jr.Family] = true
	}
	if len(fams) < 8 {
		t.Fatalf("only %d families ran: %v", len(fams), fams)
	}
}
