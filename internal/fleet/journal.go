package fleet

// The NDJSON stream eilid-fleet writes is a resumable journal:
//
//	{"journal":"eilid-fleet","version":1,"fingerprint":"…","jobs":N,"spec":{…}}
//	{"index":0,"kind":"app", …}            one line per completed job
//	…
//	{"journal":"interrupted","completed":K,"jobs":N}   (on shutdown)
//	{"journal":"summary","jobs":N, …}                  (on completion)
//
// The header fingerprints the resolved matrix spec (apps, scenarios,
// defenses, repeat, generated seed/count — everything that determines
// job identity; worker count, recycling and fault injection are
// deliberately excluded because they must not change results), so a
// resume can rebuild the exact matrix from the file alone and refuse
// files built by a different matrix or registry. Every line that is not
// a job result carries a "journal" marker field; job lines are plain
// JobResults, unchanged from the pre-journal stream.
//
// The summary line contains only deterministic aggregates — no worker
// count, no wall-clock — so a completed journal is byte-identical
// across worker counts, recycling modes, transient-fault retries, and
// interrupt/resume cycles. That byte-identity is the crash-safety
// acceptance bar the differential suites pin.
//
// A journal is append-safe: a resume appends newly computed job lines
// (and, if interrupted again, another interrupted marker) before
// compacting the file into canonical order, so a crash mid-resume
// loses nothing. ParseJournal tolerates a truncated final line — the
// signature of a crash mid-write — and treats the affected job as
// never run.
//
// Shard journals (internal/fleet/coord) reuse the same format: the
// header is the full matrix header, a {"journal":"shard","lo":L,"hi":H}
// marker names the contiguous index range the worker was assigned, and
// the stream carries extra liveness lines — {"journal":"heartbeat"}
// at a wall-clock interval, {"journal":"fault"} before an injected
// stall, {"journal":"shard-done"} on completion. None of those markers
// appear in a canonical (merged or single-process) journal; the merge
// keeps only the header, the job lines and the summary.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// JournalVersion is the format version stamped into (and required of)
// every journal header.
const JournalVersion = 1

// journalMagic identifies the header line; the other marker values are
// "interrupted" and "summary".
const journalMagic = "eilid-fleet"

// JournalSpec is the resolved, canonical matrix description stored in
// the header: explicit name lists (never "nil = all", which would drift
// with the registry) plus the generated dimension. It deliberately
// omits workers, recycling, retries, watchdog and fault injection —
// execution knobs that must not change results.
type JournalSpec struct {
	Apps      []string `json:"apps,omitempty"`
	Scenarios []string `json:"scenarios,omitempty"`
	Defenses  []string `json:"defenses"`
	Repeat    int      `json:"repeat"`
	GenSeed   uint64   `json:"gen_seed,omitempty"`
	GenCount  int      `json:"gen_count,omitempty"`
}

// Fingerprint is the sha256 of the spec's canonical JSON encoding.
func (s JournalSpec) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil {
		// JournalSpec contains only marshal-safe fields.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// journalSpec derives the journal-header matrix description from a
// resolved MatrixSpec. It is a pure projection — JournalHeader, resume
// and the coordinator/worker handshake all fingerprint through it, so
// there is exactly one place the canonical JSON shape lives (pinned
// bytes-and-sha256 by the golden-fingerprint test).
func (m MatrixSpec) journalSpec() JournalSpec {
	s := JournalSpec{
		Apps:      m.Apps,
		Scenarios: m.Scenarios,
		Defenses:  make([]string, 0, len(m.Defenses)),
		Repeat:    m.Repeat,
		GenSeed:   m.Generated.Seed,
		GenCount:  m.Generated.Count,
	}
	s.Defenses = append(s.Defenses, m.Defenses...)
	if s.GenCount == 0 {
		// A zero-count dimension ignores its seed; canonicalize so the
		// fingerprint does not depend on an unused value.
		s.GenSeed = 0
	}
	return s
}

// Batch reconstructs a BatchSpec selecting exactly the journalled
// matrix. Execution knobs (workers, recycling, watchdog, retries) are
// the caller's to fill in; faults are never carried across a resume —
// that is what lets a faulted batch converge to a clean one.
func (s JournalSpec) Batch() BatchSpec {
	return BatchSpec{Matrix: MatrixSpec{
		Apps:        s.Apps,
		NoApps:      len(s.Apps) == 0,
		Scenarios:   s.Scenarios,
		NoScenarios: len(s.Scenarios) == 0,
		Defenses:    s.Defenses,
		Repeat:      s.Repeat,
		Generated:   GeneratedSpec{Seed: s.GenSeed, Count: s.GenCount},
	}}
}

// JournalHeader is the first line of every journal.
type JournalHeader struct {
	Journal     string      `json:"journal"`
	Version     int         `json:"version"`
	Fingerprint string      `json:"fingerprint"`
	Jobs        int         `json:"jobs"`
	Spec        JournalSpec `json:"spec"`
}

// journalInterrupted marks a graceful shutdown: everything before it is
// final, everything else is the resume's to run.
type journalInterrupted struct {
	Journal   string `json:"journal"`
	Completed int    `json:"completed"`
	Jobs      int    `json:"jobs"`
}

// JournalShard is the assignment marker a shard worker writes right
// after the header: this journal covers job indices [Lo, Hi). The
// coordinator validates it against the range it assigned, so a garbled
// worker invocation cannot smuggle results into the wrong shard.
type JournalShard struct {
	Journal string `json:"journal"`
	Lo      int    `json:"lo"`
	Hi      int    `json:"hi"`
}

// journalHeartbeat is the worker liveness line: emitted at a wall-clock
// interval so the supervising coordinator can tell a slow shard from a
// wedged one. Done is how many jobs the shard has journalled so far.
type journalHeartbeat struct {
	Journal string `json:"journal"`
	Done    int    `json:"done"`
}

// journalShardDone marks a shard journal as complete: every assigned
// index has a result line above it.
type journalShardDone struct {
	Journal string `json:"journal"`
	Done    int    `json:"done"`
}

// journalFault is written by a worker immediately before an injected
// process-level stall (see the coordinator's -fault-kill-worker): the
// supervising coordinator SIGKILLs the worker the moment it reads the
// marker, making "worker dies after journalling job Index" a
// deterministic, testable event.
type journalFault struct {
	Journal string `json:"journal"`
	Mode    string `json:"mode"`
	Index   int    `json:"index"`
}

// JournalSummary is the deterministic final line of a completed
// journal: aggregate counters and the detection matrix, with the
// wall-clock and worker figures deliberately left out so completed
// journals compare byte-for-byte.
type JournalSummary struct {
	Journal      string                            `json:"journal"`
	Jobs         int                               `json:"jobs"`
	Failures     int                               `json:"failures"`
	ChecksFailed int                               `json:"checks_failed"`
	TotalCycles  uint64                            `json:"total_cycles"`
	TotalInsns   uint64                            `json:"total_insns"`
	Matrix       map[string]map[string]*MatrixCell `json:"matrix,omitempty"`
}

// JournalHeader builds the header describing this runner's matrix,
// derived from the runner's resolved BatchSpec.
func (r *Runner) JournalHeader() *JournalHeader {
	spec := r.spec.Matrix.journalSpec()
	return &JournalHeader{
		Journal:     journalMagic,
		Version:     JournalVersion,
		Fingerprint: spec.Fingerprint(),
		Jobs:        len(r.jobs),
		Spec:        spec,
	}
}

// JournalHeaderForSpec builds the journal header a batch with this
// spec will carry, without building any artifacts: the job count is
// arithmetic over the resolved matrix (the generator emits exactly
// Count items, each a distinct scenario). It is byte-identical to the
// header Runner.JournalHeader writes for the same spec — the service
// mode relies on that to journal batches that never started (drained
// while queued) without paying a runner's preparation cost.
func JournalHeaderForSpec(spec BatchSpec) (*JournalHeader, error) {
	rs, err := ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	m := rs.Matrix
	js := m.journalSpec()
	jobs := m.Repeat * len(m.Defenses) * (len(m.Apps) + len(m.Scenarios) + m.Generated.Count)
	return &JournalHeader{
		Journal:     journalMagic,
		Version:     JournalVersion,
		Fingerprint: js.Fingerprint(),
		Jobs:        jobs,
		Spec:        js,
	}, nil
}

// writeLine marshals v and writes it as one NDJSON line.
func writeLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJournalHeader emits the header line.
func WriteJournalHeader(w io.Writer, h *JournalHeader) error { return writeLine(w, h) }

// WriteJournalInterrupted emits the interrupted marker after a graceful
// shutdown has drained the in-flight jobs.
func WriteJournalInterrupted(w io.Writer, completed, jobs int) error {
	return writeLine(w, &journalInterrupted{Journal: "interrupted", Completed: completed, Jobs: jobs})
}

// WriteJournalShard emits a shard worker's assignment marker.
func WriteJournalShard(w io.Writer, lo, hi int) error {
	return writeLine(w, &JournalShard{Journal: "shard", Lo: lo, Hi: hi})
}

// WriteJournalHeartbeat emits a worker liveness line.
func WriteJournalHeartbeat(w io.Writer, done int) error {
	return writeLine(w, &journalHeartbeat{Journal: "heartbeat", Done: done})
}

// WriteJournalShardDone emits the shard completion marker.
func WriteJournalShardDone(w io.Writer, done int) error {
	return writeLine(w, &journalShardDone{Journal: "shard-done", Done: done})
}

// WriteJournalFault emits the injected-stall marker the coordinator's
// deterministic worker-kill fault keys on.
func WriteJournalFault(w io.Writer, mode string, index int) error {
	return writeLine(w, &journalFault{Journal: "fault", Mode: mode, Index: index})
}

// WriteJournalSummary emits the deterministic summary line for a
// completed batch.
func WriteJournalSummary(w io.Writer, rep *Report) error {
	return writeLine(w, &JournalSummary{
		Journal:      "summary",
		Jobs:         rep.Jobs,
		Failures:     rep.Failures,
		ChecksFailed: rep.ChecksFailed,
		TotalCycles:  rep.TotalCycles,
		TotalInsns:   rep.TotalInsns,
		Matrix:       rep.Matrix,
	})
}

// Journal is a parsed journal file.
type Journal struct {
	Header JournalHeader
	// Results holds the last recorded result per job index (a resume's
	// re-run line supersedes the failure it replaces).
	Results map[int]JobResult
	// Complete reports whether a summary line was seen.
	Complete bool
	// Truncated reports whether the final line was cut off mid-write —
	// the signature of a hard crash; the partial line is ignored.
	Truncated bool
	// Shard is the assignment marker of a shard-worker journal (nil for
	// a canonical journal), and ShardDone whether the worker finished
	// its range. Heartbeats counts liveness lines seen.
	Shard      *JournalShard
	ShardDone  bool
	Heartbeats int
}

// ParseJournal reads a journal stream. It fails on a missing or
// mismatched header and on corruption anywhere but the final line;
// a truncated final line (crash mid-write) is tolerated and reported
// via Truncated.
func ParseJournal(data []byte) (*Journal, error) {
	j := &Journal{Results: map[int]JobResult{}}
	lines := bytes.Split(data, []byte("\n"))
	// Locate the last non-empty line: only a torn write there — the
	// crash signature — is tolerated.
	last := -1
	for i := len(lines) - 1; i >= 0; i-- {
		if len(bytes.TrimSpace(lines[i])) > 0 {
			last = i
			break
		}
	}
	seenHeader := false
	for li, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Journal string `json:"journal"`
		}
		parseErr := json.Unmarshal(line, &probe)
		if parseErr == nil && probe.Journal == "" {
			var jr JobResult
			if err := json.Unmarshal(line, &jr); err != nil {
				parseErr = err
			} else if !seenHeader {
				return nil, fmt.Errorf("fleet: journal does not start with a header line (pre-journal NDJSON stream?)")
			} else if jr.Index < 0 || jr.Index >= j.Header.Jobs {
				parseErr = fmt.Errorf("job index %d out of range [0, %d)", jr.Index, j.Header.Jobs)
			} else {
				j.Results[jr.Index] = jr
				continue
			}
		}
		if parseErr != nil {
			if li == last {
				j.Truncated = true
				break
			}
			return nil, fmt.Errorf("fleet: journal line %d corrupt: %w", li+1, parseErr)
		}
		switch probe.Journal {
		case journalMagic:
			if seenHeader {
				return nil, fmt.Errorf("fleet: journal line %d: duplicate header", li+1)
			}
			if err := json.Unmarshal(line, &j.Header); err != nil {
				return nil, fmt.Errorf("fleet: journal header corrupt: %w", err)
			}
			if j.Header.Version != JournalVersion {
				return nil, fmt.Errorf("fleet: journal version %d, this build reads %d", j.Header.Version, JournalVersion)
			}
			if fp := j.Header.Spec.Fingerprint(); fp != j.Header.Fingerprint {
				return nil, fmt.Errorf("fleet: journal fingerprint mismatch: header says %.12s…, spec hashes to %.12s…", j.Header.Fingerprint, fp)
			}
			seenHeader = true
		case "interrupted":
			// Informational; the per-index results decide what remains.
		case "summary":
			j.Complete = true
		case "shard":
			var sm JournalShard
			if err := json.Unmarshal(line, &sm); err != nil {
				return nil, fmt.Errorf("fleet: journal shard marker corrupt: %w", err)
			}
			if sm.Lo < 0 || sm.Hi <= sm.Lo || sm.Hi > j.Header.Jobs {
				return nil, fmt.Errorf("fleet: journal shard marker [%d, %d) out of range [0, %d)", sm.Lo, sm.Hi, j.Header.Jobs)
			}
			if j.Shard != nil {
				return nil, fmt.Errorf("fleet: journal line %d: duplicate shard marker", li+1)
			}
			j.Shard = &sm
		case "shard-done":
			j.ShardDone = true
		case "heartbeat":
			j.Heartbeats++
		case "fault":
			// Injected-stall marker: the worker stopped on purpose right
			// after the preceding job line; nothing to record.
		default:
			return nil, fmt.Errorf("fleet: journal line %d: unknown marker %q", li+1, probe.Journal)
		}
		if !seenHeader {
			return nil, fmt.Errorf("fleet: journal does not start with a header line")
		}
	}
	if !seenHeader {
		return nil, fmt.Errorf("fleet: journal has no header line")
	}
	return j, nil
}

// Validate checks the journal against a runner rebuilt from its spec:
// fingerprint, job count, and the identity of every recorded job. It
// catches a journal produced by a different matrix, registry or
// generator — resuming one would silently splice unrelated results.
func (j *Journal) Validate(r *Runner) error {
	h := r.JournalHeader()
	if h.Fingerprint != j.Header.Fingerprint {
		return fmt.Errorf("fleet: journal fingerprint %.12s… does not match the rebuilt matrix %.12s…", j.Header.Fingerprint, h.Fingerprint)
	}
	if h.Jobs != j.Header.Jobs {
		return fmt.Errorf("fleet: journal enumerates %d jobs, the rebuilt matrix %d", j.Header.Jobs, h.Jobs)
	}
	for idx, jr := range j.Results {
		if jr.Job != r.jobs[idx] {
			return fmt.Errorf("fleet: journal job %d is %s/%s/%s, the rebuilt matrix has %s/%s/%s",
				idx, jr.Kind, jr.Name, jr.Defense, r.jobs[idx].Kind, r.jobs[idx].Name, r.jobs[idx].Defense)
		}
	}
	return nil
}

// Remaining lists the job indices a resume must run: never recorded, or
// recorded as failed — a failure re-runs clean after a fault injection
// or crash, and re-runs to the identical record when it was
// deterministic.
func (j *Journal) Remaining() []int {
	var out []int
	for i := 0; i < j.Header.Jobs; i++ {
		if jr, ok := j.Results[i]; !ok || jr.Err != "" {
			out = append(out, i)
		}
	}
	return out
}

// RemainingRange lists the indices in [lo, hi) with no record at all —
// the reassignment set for a dead worker's shard. Unlike Remaining,
// recorded failures count as done: a shard worker's failure record is a
// final deterministic result (worker-level faults kill the process, not
// the job), and re-running it would produce the identical line.
func (j *Journal) RemainingRange(lo, hi int) []int {
	var out []int
	for i := lo; i < hi; i++ {
		if _, ok := j.Results[i]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// Merged returns the full result set in canonical job order; every
// index must be present (len(Remaining()) == 0 after the resume ran).
func (j *Journal) Merged() ([]JobResult, error) {
	out := make([]JobResult, j.Header.Jobs)
	for i := range out {
		jr, ok := j.Results[i]
		if !ok {
			return nil, fmt.Errorf("fleet: journal still missing job %d", i)
		}
		out[i] = jr
	}
	return out, nil
}

// WriteJournalFile durably writes a complete canonical journal —
// header, every job line in index order, deterministic summary — via
// WriteFileAtomic, so neither a crash nor a power loss can leave a
// torn or empty file where a complete journal used to be. Both the
// resume compaction and the coordinator's shard merge go through it,
// which is what keeps their outputs byte-identical to an uninterrupted
// single-process run.
func WriteJournalFile(path string, h *JournalHeader, results []JobResult, rep *Report) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		if err := WriteJournalHeader(w, h); err != nil {
			return err
		}
		for _, jr := range results {
			if err := WriteNDJSONLine(w, jr); err != nil {
				return err
			}
		}
		return WriteJournalSummary(w, rep)
	})
}
