// Package pool is the deterministic worker pool underneath the fleet
// runner and the parallel evaluation sweeps: n independent jobs run on
// up to w workers, and the results come back indexed by job number, so
// the output is byte-identical regardless of scheduling. It is kept
// free of any simulator imports so every layer (attacks, eval, fleet)
// can use it without cycles.
package pool

import "sync"

// Do runs fn(0), …, fn(n-1) on up to workers goroutines and returns the
// results in job order. fn must be safe for concurrent calls; with
// workers <= 1 the jobs run sequentially on the calling goroutine,
// which is the reference ordering the concurrent path must match.
func Do[T any](n, workers int, fn func(i int) T) []T {
	return DoIndexed(n, workers, func(_, i int) T { return fn(i) })
}

// DoIndexed is Do with the worker's identity passed to fn: worker is in
// [0, workers) and each worker runs its jobs one at a time on a single
// goroutine, so per-worker state — the fleet runner's recycled-machine
// pools — needs no locking. Which worker runs which job is
// scheduling-dependent; fn must produce identical results regardless.
func DoIndexed[T any](n, workers int, fn func(worker, job int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	StreamIndexed(n, workers, fn, func(i int, v T) { out[i] = v })
	return out
}

// Stream runs fn(0), …, fn(n-1) on up to workers goroutines like Do,
// but delivers each result to emit — on the calling goroutine, in job
// order — as soon as it and all its predecessors have completed,
// instead of materializing the full result slice. Dispatch is held to a
// window of 2×workers jobs beyond the last emitted one, so at most that
// many results are ever buffered — even when an early job is
// pathologically slow, an n-job matrix streams in O(workers) memory.
// emit must not call back into the pool.
func Stream[T any](n, workers int, fn func(i int) T, emit func(i int, v T)) {
	StreamIndexed(n, workers, func(_, i int) T { return fn(i) }, emit)
}

// StreamIndexed is Stream with the worker's identity passed to fn (see
// DoIndexed). With workers <= 1 every job runs as worker 0.
func StreamIndexed[T any](n, workers int, fn func(worker, job int) T, emit func(i int, v T)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			emit(i, fn(0, i))
		}
		return
	}
	type res struct {
		i int
		v T
	}
	// tokens caps jobs dispatched but not yet emitted. The feeder
	// acquires before handing out an index; the emitter releases one
	// per emission, so the feeder can run at most window jobs ahead of
	// the in-order emission frontier.
	window := 2 * workers
	tokens := make(chan struct{}, window)
	idx := make(chan int)
	done := make(chan res, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := range idx {
				done <- res{i, fn(w, i)}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			tokens <- struct{}{}
			idx <- i
		}
		close(idx)
		wg.Wait()
		close(done)
	}()
	pending := make(map[int]T)
	next := 0
	for r := range done {
		pending[r.i] = r.v
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			emit(next, v)
			next++
			<-tokens
		}
	}
}

// Err is a convenience pair for jobs that can fail: collect with Do,
// then use First to surface the earliest failure deterministically.
type Err[T any] struct {
	V   T
	Err error
}

// First returns the first error in job order, or nil.
func First[T any](results []Err[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
