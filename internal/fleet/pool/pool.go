// Package pool is the deterministic worker pool underneath the fleet
// runner and the parallel evaluation sweeps: n independent jobs run on
// up to w workers, and the results come back indexed by job number, so
// the output is byte-identical regardless of scheduling. It is kept
// free of any simulator imports so every layer (attacks, eval, fleet)
// can use it without cycles.
//
// # Fault containment
//
// A panicking job must never hang or leak the pool. Every fn call runs
// under recover; when one panics, the pool stops dispatching new jobs,
// lets the in-flight ones finish, emits the deterministic prefix of
// results strictly before the lowest panicked job index, shuts all
// worker goroutines down, and then re-panics on the calling goroutine
// with a *PanicError identifying the job. Callers that want a panic to
// become an ordinary per-job failure record (the fleet runner does)
// must recover inside fn itself.
//
// emit callbacks must not panic: an emit panic unwinds the calling
// goroutine past the pool's drain loop and orphans the workers.
package pool

import (
	"fmt"
	"sync"
)

// PanicError is the value the pool re-panics with after containing a
// job panic: the lowest job index that panicked in the batch plus the
// original panic value. The message is deterministic as long as the
// panic value's formatting is.
type PanicError struct {
	Job   int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: job %d panicked: %v", e.Job, e.Value)
}

// Do runs fn(0), …, fn(n-1) on up to workers goroutines and returns the
// results in job order. fn must be safe for concurrent calls; with
// workers <= 1 the jobs run sequentially on the calling goroutine,
// which is the reference ordering the concurrent path must match.
func Do[T any](n, workers int, fn func(i int) T) []T {
	return DoIndexed(n, workers, func(_, i int) T { return fn(i) })
}

// DoIndexed is Do with the worker's identity passed to fn: worker is in
// [0, workers) and each worker runs its jobs one at a time on a single
// goroutine, so per-worker state — the fleet runner's recycled-machine
// pools — needs no locking. Which worker runs which job is
// scheduling-dependent; fn must produce identical results regardless.
func DoIndexed[T any](n, workers int, fn func(worker, job int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	StreamIndexed(n, workers, fn, func(i int, v T) { out[i] = v })
	return out
}

// Stream runs fn(0), …, fn(n-1) on up to workers goroutines like Do,
// but delivers each result to emit — on the calling goroutine, in job
// order — as soon as it and all its predecessors have completed,
// instead of materializing the full result slice. Dispatch is held to a
// window of 2×workers jobs beyond the last emitted one, so at most that
// many results are ever buffered — even when an early job is
// pathologically slow, an n-job matrix streams in O(workers) memory.
// emit must not call back into the pool, and must not panic.
func Stream[T any](n, workers int, fn func(i int) T, emit func(i int, v T)) {
	StreamIndexed(n, workers, func(_, i int) T { return fn(i) }, emit)
}

// StreamIndexed is Stream with the worker's identity passed to fn (see
// DoIndexed). With workers <= 1 every job runs as worker 0.
func StreamIndexed[T any](n, workers int, fn func(worker, job int) T, emit func(i int, v T)) {
	StreamIndexedCancel(n, workers, nil, fn, emit)
}

// StreamIndexedCancel is StreamIndexed with cooperative cancellation:
// when cancel is closed, the pool stops handing out new jobs, waits for
// every in-flight job to finish, and emits their results — so the
// emitted prefix is always contiguous from job 0 and every emitted
// result is final. It returns how many jobs were emitted and whether
// the run was cut short. A nil cancel never fires; cancellation checks
// sit between jobs, so a job that never returns still needs an
// external watchdog (the fleet runner provides one).
func StreamIndexedCancel[T any](n, workers int, cancel <-chan struct{}, fn func(worker, job int) T, emit func(i int, v T)) (emitted int, interrupted bool) {
	if n <= 0 {
		return 0, false
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-cancel:
				return i, true
			default:
			}
			v, pe := protect(0, i, fn)
			if pe != nil {
				panic(pe)
			}
			emit(i, v)
		}
		return n, false
	}
	type res struct {
		i  int
		v  T
		pe *PanicError
	}
	// tokens caps jobs dispatched but not yet emitted. The feeder
	// acquires before handing out an index; the emitter releases one
	// per emission, so the feeder can run at most window jobs ahead of
	// the in-order emission frontier.
	window := 2 * workers
	tokens := make(chan struct{}, window)
	idx := make(chan int)
	done := make(chan res, workers)
	// quit aborts dispatch the moment any job panics; the workers still
	// drain their in-flight jobs so nothing blocks on done.
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := range idx {
				v, pe := protect(w, i, fn)
				done <- res{i, v, pe}
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			// Give cancellation/abort priority over dispatch: a select
			// with multiple ready cases picks randomly, and a closed
			// cancel must stop the feeder even while tokens are free.
			select {
			case <-quit:
				return
			case <-cancel:
				return
			default:
			}
			select {
			case tokens <- struct{}{}:
			case <-quit:
				return
			case <-cancel:
				return
			}
			select {
			case idx <- i:
			case <-quit:
				return
			case <-cancel:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(done)
	}()

	pending := make(map[int]T)
	panicked := make(map[int]bool)
	var first *PanicError
	next := 0
	halted := false
	for r := range done {
		if r.pe != nil {
			panicked[r.i] = true
			if first == nil {
				close(quit)
			}
			if first == nil || r.pe.Job < first.Job {
				first = r.pe
			}
		} else {
			pending[r.i] = r.v
		}
		if halted {
			continue
		}
		for {
			if panicked[next] {
				// Everything before the lowest panicked job has been
				// emitted; nothing at or after it ever will be, which
				// keeps the emitted prefix deterministic.
				halted = true
				break
			}
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			emit(next, v)
			next++
			// Each emitted job deposited a token at dispatch, so this
			// receive can never block even after the feeder has quit.
			<-tokens
		}
	}
	if first != nil {
		panic(first)
	}
	return next, next < n
}

// protect runs one job under recover so a panicking fn can neither kill
// a worker goroutine nor abandon the done channel.
func protect[T any](worker, job int, fn func(worker, job int) T) (v T, pe *PanicError) {
	defer func() {
		if x := recover(); x != nil {
			pe = &PanicError{Job: job, Value: x}
		}
	}()
	v = fn(worker, job)
	return v, nil
}

// Err is a convenience pair for jobs that can fail: collect with Do,
// then use First to surface the earliest failure deterministically.
type Err[T any] struct {
	V   T
	Err error
}

// First returns the first error in job order, or nil.
func First[T any](results []Err[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
