// Package pool is the deterministic worker pool underneath the fleet
// runner and the parallel evaluation sweeps: n independent jobs run on
// up to w workers, and the results come back indexed by job number, so
// the output is byte-identical regardless of scheduling. It is kept
// free of any simulator imports so every layer (attacks, eval, fleet)
// can use it without cycles.
package pool

import "sync"

// Do runs fn(0), …, fn(n-1) on up to workers goroutines and returns the
// results in job order. fn must be safe for concurrent calls; with
// workers <= 1 the jobs run sequentially on the calling goroutine,
// which is the reference ordering the concurrent path must match.
func Do[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Err is a convenience pair for jobs that can fail: collect with Do,
// then use First to surface the earliest failure deterministically.
type Err[T any] struct {
	V   T
	Err error
}

// First returns the first error in job order, or nil.
func First[T any](results []Err[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
