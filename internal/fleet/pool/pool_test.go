package pool

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoOrderIndependent(t *testing.T) {
	n := 1000
	seq := Do(n, 1, func(i int) int { return i * i })
	for _, w := range []int{2, 4, 8, 33} {
		par := Do(n, w, func(i int) int { return i * i })
		if len(par) != n {
			t.Fatalf("workers=%d: got %d results", w, len(par))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", w, i, par[i], seq[i])
			}
		}
	}
}

func TestDoEdgeCases(t *testing.T) {
	if got := Do(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	if got := Do(3, 100, func(i int) int { return i }); len(got) != 3 {
		t.Fatalf("workers>n: got %d results", len(got))
	}
	if got := Do(3, 0, func(i int) int { return i + 1 }); got[2] != 3 {
		t.Fatalf("workers=0 should run sequentially, got %v", got)
	}
}

func TestFirst(t *testing.T) {
	boom := errors.New("boom")
	rs := []Err[int]{{V: 1}, {V: 2, Err: boom}, {V: 3, Err: errors.New("later")}}
	if err := First(rs); err != boom {
		t.Fatalf("First = %v, want %v", err, boom)
	}
	if err := First([]Err[int]{{V: 1}}); err != nil {
		t.Fatalf("First on clean set = %v", err)
	}
}

func TestStreamInOrderDelivery(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var got []int
		last := -1
		Stream(50, workers, func(i int) int { return i * i }, func(i, v int) {
			if i != last+1 {
				t.Fatalf("workers=%d: emitted job %d after %d", workers, i, last)
			}
			last = i
			got = append(got, v)
		})
		if len(got) != 50 {
			t.Fatalf("workers=%d: emitted %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	Stream(0, 4, func(i int) int { return i }, func(int, int) {
		t.Fatal("emit called for empty job set")
	})
}

// TestStreamWindowBound: while the in-order frontier is stuck on a slow
// job 0, the feeder may dispatch at most 2×workers jobs in total, so
// the reorder buffer stays O(workers) no matter how large n is.
func TestStreamWindowBound(t *testing.T) {
	const workers = 4
	release := make(chan struct{})
	var maxStarted atomic.Int64
	maxStarted.Store(-1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	Stream(1000, workers, func(i int) int {
		for {
			cur := maxStarted.Load()
			if int64(i) <= cur || maxStarted.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
		if i == 0 {
			<-release
			// Everything dispatched so far started while job 0 blocked
			// the frontier: it must fit the 2×workers window.
			if got := maxStarted.Load(); got >= 2*workers {
				t.Errorf("dispatched up to job %d while the frontier was stuck at 0 (window %d)", got, 2*workers)
			}
		}
		return i
	}, func(int, int) {})
}
