package pool

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoOrderIndependent(t *testing.T) {
	n := 1000
	seq := Do(n, 1, func(i int) int { return i * i })
	for _, w := range []int{2, 4, 8, 33} {
		par := Do(n, w, func(i int) int { return i * i })
		if len(par) != n {
			t.Fatalf("workers=%d: got %d results", w, len(par))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", w, i, par[i], seq[i])
			}
		}
	}
}

func TestDoEdgeCases(t *testing.T) {
	if got := Do(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	if got := Do(3, 100, func(i int) int { return i }); len(got) != 3 {
		t.Fatalf("workers>n: got %d results", len(got))
	}
	if got := Do(3, 0, func(i int) int { return i + 1 }); got[2] != 3 {
		t.Fatalf("workers=0 should run sequentially, got %v", got)
	}
}

func TestFirst(t *testing.T) {
	boom := errors.New("boom")
	rs := []Err[int]{{V: 1}, {V: 2, Err: boom}, {V: 3, Err: errors.New("later")}}
	if err := First(rs); err != boom {
		t.Fatalf("First = %v, want %v", err, boom)
	}
	if err := First([]Err[int]{{V: 1}}); err != nil {
		t.Fatalf("First on clean set = %v", err)
	}
}

func TestStreamInOrderDelivery(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var got []int
		last := -1
		Stream(50, workers, func(i int) int { return i * i }, func(i, v int) {
			if i != last+1 {
				t.Fatalf("workers=%d: emitted job %d after %d", workers, i, last)
			}
			last = i
			got = append(got, v)
		})
		if len(got) != 50 {
			t.Fatalf("workers=%d: emitted %d results, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	Stream(0, 4, func(i int) int { return i }, func(int, int) {
		t.Fatal("emit called for empty job set")
	})
}

// TestStreamWindowBound: while the in-order frontier is stuck on a slow
// job 0, the feeder may dispatch at most 2×workers jobs in total, so
// the reorder buffer stays O(workers) no matter how large n is.
func TestStreamWindowBound(t *testing.T) {
	const workers = 4
	release := make(chan struct{})
	var maxStarted atomic.Int64
	maxStarted.Store(-1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	Stream(1000, workers, func(i int) int {
		for {
			cur := maxStarted.Load()
			if int64(i) <= cur || maxStarted.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
		if i == 0 {
			<-release
			// Everything dispatched so far started while job 0 blocked
			// the frontier: it must fit the 2×workers window.
			if got := maxStarted.Load(); got >= 2*workers {
				t.Errorf("dispatched up to job %d while the frontier was stuck at 0 (window %d)", got, 2*workers)
			}
		}
		return i
	}, func(int, int) {})
}

// TestStreamPanicContained: a panicking job must not deadlock the
// emitter or leak worker goroutines (the pre-fix failure mode: the
// worker died without sending on done and the in-order emitter blocked
// forever). The pool emits the deterministic prefix before the lowest
// panicked index, drains, and re-panics with a *PanicError.
func TestStreamPanicContained(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		before := runtime.NumGoroutine()
		var emitted []int
		func() {
			defer func() {
				pe, ok := recover().(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: expected *PanicError, got %v", workers, pe)
				}
				if pe.Job != 7 {
					t.Errorf("workers=%d: PanicError.Job = %d, want 7", workers, pe.Job)
				}
				if !strings.Contains(pe.Error(), "job 7 panicked: boom 7") {
					t.Errorf("workers=%d: message %q", workers, pe.Error())
				}
			}()
			Stream(50, workers, func(i int) int {
				if i == 7 {
					panic("boom 7")
				}
				return i
			}, func(i, v int) { emitted = append(emitted, i) })
		}()
		// Exactly jobs 0..6 were emitted, in order.
		if len(emitted) != 7 {
			t.Fatalf("workers=%d: emitted %v, want 0..6", workers, emitted)
		}
		for i, v := range emitted {
			if v != i {
				t.Fatalf("workers=%d: emitted %v, want 0..6", workers, emitted)
			}
		}
		// All pool goroutines exited: no worker leaked on the abandoned
		// done channel.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before {
			t.Errorf("workers=%d: %d goroutines before, %d after panic drain", workers, before, got)
		}
	}
}

// TestStreamPanicLowestIndexWins: with several panicking jobs, the pool
// reports the lowest panicked index regardless of scheduling, and the
// emitted prefix stops strictly before it.
func TestStreamPanicLowestIndexWins(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		last := -1
		func() {
			defer func() {
				pe, ok := recover().(*PanicError)
				if !ok || pe.Job != 3 {
					t.Fatalf("workers=%d: recover = %v, want PanicError at job 3", workers, pe)
				}
			}()
			Stream(40, workers, func(i int) int {
				if i == 3 || i == 7 {
					panic(i)
				}
				return i
			}, func(i, v int) { last = i })
		}()
		if last > 2 {
			t.Errorf("workers=%d: emitted past the panicked job: last=%d", workers, last)
		}
	}
}

// TestStreamCancel: closing cancel stops dispatch, drains in-flight
// jobs, and returns an interrupted contiguous prefix.
func TestStreamCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cancel := make(chan struct{})
		var once atomic.Bool
		var got []int
		emitted, interrupted := StreamIndexedCancel(500, workers, cancel,
			func(_, i int) int { return i * 3 },
			func(i, v int) {
				got = append(got, v)
				if i == 20 && once.CompareAndSwap(false, true) {
					close(cancel)
				}
			})
		if !interrupted {
			t.Fatalf("workers=%d: 500-job run not interrupted after cancel at 20", workers)
		}
		if emitted != len(got) || emitted < 21 || emitted == 500 {
			t.Fatalf("workers=%d: emitted=%d len(got)=%d", workers, emitted, len(got))
		}
		for i, v := range got {
			if v != i*3 {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*3)
			}
		}
	}
}

// TestStreamCancelPreClosed: a cancel that is already closed when the
// run starts must dispatch nothing (kill-at-job-0).
func TestStreamCancelPreClosed(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	for _, workers := range []int{1, 4} {
		ran := atomic.Int64{}
		emitted, interrupted := StreamIndexedCancel(100, workers, cancel,
			func(_, i int) int { ran.Add(1); return i },
			func(int, int) { t.Fatalf("workers=%d: emit on pre-cancelled run", workers) })
		if emitted != 0 || !interrupted {
			t.Fatalf("workers=%d: emitted=%d interrupted=%v, want 0/true", workers, emitted, interrupted)
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("workers=%d: %d jobs ran after pre-closed cancel", workers, n)
		}
	}
}

// TestStreamCancelComplete: cancelling after the last emission is a
// clean completion, not an interruption.
func TestStreamCancelComplete(t *testing.T) {
	cancel := make(chan struct{})
	emitted, interrupted := StreamIndexedCancel(10, 4, cancel,
		func(_, i int) int { return i },
		func(i, v int) {
			if i == 9 {
				close(cancel)
			}
		})
	if emitted != 10 || interrupted {
		t.Fatalf("emitted=%d interrupted=%v, want 10/false", emitted, interrupted)
	}
}
