package pool

import (
	"errors"
	"testing"
)

func TestDoOrderIndependent(t *testing.T) {
	n := 1000
	seq := Do(n, 1, func(i int) int { return i * i })
	for _, w := range []int{2, 4, 8, 33} {
		par := Do(n, w, func(i int) int { return i * i })
		if len(par) != n {
			t.Fatalf("workers=%d: got %d results", w, len(par))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", w, i, par[i], seq[i])
			}
		}
	}
}

func TestDoEdgeCases(t *testing.T) {
	if got := Do(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	if got := Do(3, 100, func(i int) int { return i }); len(got) != 3 {
		t.Fatalf("workers>n: got %d results", len(got))
	}
	if got := Do(3, 0, func(i int) int { return i + 1 }); got[2] != 3 {
		t.Fatalf("workers=0 should run sequentially, got %v", got)
	}
}

func TestFirst(t *testing.T) {
	boom := errors.New("boom")
	rs := []Err[int]{{V: 1}, {V: 2, Err: boom}, {V: 3, Err: errors.New("later")}}
	if err := First(rs); err != boom {
		t.Fatalf("First = %v, want %v", err, boom)
	}
	if err := First([]Err[int]{{V: 1}}); err != nil {
		t.Fatalf("First on clean set = %v", err)
	}
}
