package fleet

import (
	"bytes"
	"testing"
)

// TestRecycleFleetByteIdentical is the fleet-level recycling contract:
// the full app × variant × scenario matrix run on recycled machines
// (including jobs that reset mid-run — every protected attack job does)
// produces byte-identical JobResults to a construct-per-job run, on the
// first pass (pool warm-up mixes fresh and recycled machines) and on a
// second pass where every machine is recycled.
func TestRecycleFleetByteIdentical(t *testing.T) {
	p := newPipeline(t)
	fresh, err := NewRunner(p, BatchSpec{Matrix: MatrixSpec{Repeat: 2}, Exec: ExecSpec{Workers: 4, NoRecycle: true}})
	if err != nil {
		t.Fatal(err)
	}
	recycled, err := NewRunner(p, BatchSpec{Matrix: MatrixSpec{Repeat: 2}, Exec: ExecSpec{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ResultsJSON()
	if err != nil {
		t.Fatal(err)
	}
	for pass := 1; pass <= 2; pass++ {
		rep, err := recycled.Run()
		if err != nil {
			t.Fatal(err)
		}
		got, err := rep.ResultsJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			for i := range ref.Results {
				if ref.Results[i] != rep.Results[i] {
					t.Errorf("pass %d job %d diverges:\nfresh:    %+v\nrecycled: %+v",
						pass, i, ref.Results[i], rep.Results[i])
				}
			}
			t.Fatalf("pass %d: recycled results differ from construct-per-job run", pass)
		}
	}
	pooled := 0
	for w := range recycled.worker {
		if mp := recycled.worker[w].pool; mp != nil {
			pooled += len(mp.machines)
		}
	}
	if pooled == 0 {
		t.Fatal("recycling runner pooled no machines; the differential is vacuous")
	}
	if mp := fresh.worker[0].pool; mp != nil && len(mp.machines) != 0 {
		t.Fatalf("NoRecycle runner pooled %d machines", len(mp.machines))
	}
}
