package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"eilid/internal/core"
)

// Report aggregates one fleet run. Results is ordered by job index and
// is fully deterministic; the wall-clock fields describe the run that
// produced it and are excluded from determinism comparisons (see
// ResultsJSON).
type Report struct {
	Workers       int     `json:"workers"`
	Jobs          int     `json:"jobs"`
	Failures      int     `json:"failures"`
	ChecksFailed  int     `json:"checks_failed"`
	TotalCycles   uint64  `json:"total_cycles"`
	TotalInsns    uint64  `json:"total_insns"`
	WallMS        float64 `json:"wall_ms"`
	MCyclesPerSec float64 `json:"sim_mcycles_per_sec"`

	// Matrix is the defense × attack detection matrix: for every attack
	// row (a handcrafted scenario's name, or a generated job's family)
	// and defense column, how many jobs ran, how many the defense
	// detected (reset on) and how many ended with the attacker executing
	// code. App jobs and errored jobs are excluded. Go's JSON encoder
	// sorts map keys, so the marshalled matrix is deterministic.
	Matrix map[string]map[string]*MatrixCell `json:"matrix,omitempty"`

	// Results is ordered by job index; nil on streamed runs, whose
	// per-job results were delivered incrementally instead of retained.
	Results []JobResult `json:"results,omitempty"`
}

// MatrixCell aggregates one (attack row, defense column) cell.
type MatrixCell struct {
	// Jobs is how many jobs landed in the cell.
	Jobs int `json:"jobs"`
	// Detected counts jobs on which the defense reset the device at
	// least once.
	Detected int `json:"detected"`
	// Compromised counts jobs on which attacker code executed.
	Compromised int `json:"compromised"`
}

// Add folds one job result into the aggregate counters (not Results).
func (r *Report) Add(jr JobResult) {
	r.Jobs++
	r.TotalCycles += jr.Cycles
	r.TotalInsns += jr.Insns
	if jr.Err == "" && (jr.Kind == "attack" || jr.Kind == "gen") {
		row := jr.Name
		if jr.Kind == "gen" {
			row = jr.Family
		}
		if r.Matrix == nil {
			r.Matrix = map[string]map[string]*MatrixCell{}
		}
		col := r.Matrix[row]
		if col == nil {
			col = map[string]*MatrixCell{}
			r.Matrix[row] = col
		}
		cell := col[jr.Defense]
		if cell == nil {
			cell = &MatrixCell{}
			col[jr.Defense] = cell
		}
		cell.Jobs++
		if jr.Resets > 0 {
			cell.Detected++
		}
		if jr.Compromised {
			cell.Compromised++
		}
	}
	switch {
	case jr.Err != "":
		// An errored job never ran its check; count it once as a
		// failure, not again as a failed check.
		r.Failures++
	case !jr.CheckOK:
		r.ChecksFailed++
	}
}

// Finish stamps the wall-clock figures.
func (r *Report) Finish(wall time.Duration) *Report {
	r.WallMS = float64(wall.Microseconds()) / 1000
	if s := wall.Seconds(); s > 0 {
		r.MCyclesPerSec = float64(r.TotalCycles) / s / 1e6
	}
	return r
}

// Aggregate folds job results into a report — the same folding the
// runner applies incrementally, exported so a resumed batch can rebuild
// the aggregate from merged journal results.
func Aggregate(results []JobResult, workers int, wall time.Duration) *Report {
	rep := &Report{Workers: workers, Results: results}
	for _, jr := range results {
		rep.Add(jr)
	}
	return rep.Finish(wall)
}

// ResultsJSON marshals only the deterministic per-job results — the
// byte stream that must be identical between a sequential and a
// concurrent run of the same matrix.
func (r *Report) ResultsJSON() ([]byte, error) {
	return json.MarshalIndent(r.Results, "", "  ")
}

// WriteJSON emits the full report (including timing) as JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderTableHeader writes the column header of the per-job table (the
// streaming CLI emits rows as jobs finish, so the header comes first).
func RenderTableHeader(w io.Writer) {
	fmt.Fprintf(w, "%-5s %-7s %-22s %-10s %12s %10s %7s %-6s %s\n",
		"idx", "kind", "name", "defense", "cycles", "insns", "resets", "check", "note")
}

// RenderRow writes one job's table row.
func (jr JobResult) RenderRow(w io.Writer) {
	note := jr.Reason
	if jr.Err != "" {
		note = "ERR: " + jr.Err
	} else if jr.Compromised {
		note = "compromised " + note
	}
	if jr.Oracle != "" {
		note += " [oracle: " + jr.Oracle + "]"
	}
	check := "ok"
	if !jr.CheckOK {
		check = "FAIL"
	}
	fmt.Fprintf(w, "%-5d %-7s %-22s %-10s %12d %10d %7d %-6s %s\n",
		jr.Index, jr.Kind, jr.Name, jr.Defense, jr.Cycles, jr.Insns, jr.Resets, check, note)
}

// matrixColumns returns the defense columns present in the matrix:
// registry order first, then any unregistered names sorted.
func (r *Report) matrixColumns() []string {
	present := map[string]bool{}
	for _, col := range r.Matrix {
		for name := range col {
			present[name] = true
		}
	}
	var out []string
	for _, name := range core.DefenseNames() {
		if present[name] {
			out = append(out, name)
			delete(present, name)
		}
	}
	var rest []string
	for name := range present {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// RenderMatrix writes the defense × attack detection matrix: one row
// per attack (scenario name or generated family), one column per
// defense, each cell detected/jobs with a trailing * when attacker code
// executed on that defense at least once.
func (r *Report) RenderMatrix(w io.Writer) {
	if len(r.Matrix) == 0 {
		return
	}
	cols := r.matrixColumns()
	rows := make([]string, 0, len(r.Matrix))
	for row := range r.Matrix {
		rows = append(rows, row)
	}
	sort.Strings(rows)
	fmt.Fprintf(w, "detection matrix (detected/jobs, * = compromised):\n")
	fmt.Fprintf(w, "%-22s", "attack")
	for _, c := range cols {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-22s", row)
		for _, c := range cols {
			cell := r.Matrix[row][c]
			if cell == nil {
				fmt.Fprintf(w, " %10s", "-")
				continue
			}
			s := fmt.Sprintf("%d/%d", cell.Detected, cell.Jobs)
			if cell.Compromised > 0 {
				s += "*"
			}
			fmt.Fprintf(w, " %10s", s)
		}
		fmt.Fprintln(w)
	}
}

// RenderSummary writes the aggregate lines of the report.
func (r *Report) RenderSummary(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d jobs on %d workers in %.1f ms (%.2f simMcycles/s)\n",
		r.Jobs, r.Workers, r.WallMS, r.MCyclesPerSec)
	r.RenderMatrix(w)
	fmt.Fprintf(w, "totals: %d cycles, %d insns, %d failures, %d check failures\n",
		r.TotalCycles, r.TotalInsns, r.Failures, r.ChecksFailed)
}

// Render writes a human-readable summary table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d jobs on %d workers in %.1f ms (%.2f simMcycles/s)\n",
		r.Jobs, r.Workers, r.WallMS, r.MCyclesPerSec)
	RenderTableHeader(w)
	for _, jr := range r.Results {
		jr.RenderRow(w)
	}
	r.RenderMatrix(w)
	fmt.Fprintf(w, "totals: %d cycles, %d insns, %d failures, %d check failures\n",
		r.TotalCycles, r.TotalInsns, r.Failures, r.ChecksFailed)
}

// WriteNDJSONLine emits one job result as a single JSON line — the
// streaming counterpart of WriteJSON's results array.
func WriteNDJSONLine(w io.Writer, jr JobResult) error {
	b, err := json.Marshal(jr)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

