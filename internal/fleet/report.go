package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report aggregates one fleet run. Results is ordered by job index and
// is fully deterministic; the wall-clock fields describe the run that
// produced it and are excluded from determinism comparisons (see
// ResultsJSON).
type Report struct {
	Workers       int     `json:"workers"`
	Jobs          int     `json:"jobs"`
	Failures      int     `json:"failures"`
	ChecksFailed  int     `json:"checks_failed"`
	TotalCycles   uint64  `json:"total_cycles"`
	TotalInsns    uint64  `json:"total_insns"`
	WallMS        float64 `json:"wall_ms"`
	MCyclesPerSec float64 `json:"sim_mcycles_per_sec"`

	Results []JobResult `json:"results"`
}

// aggregate folds job results into a report.
func aggregate(results []JobResult, workers int, wall time.Duration) *Report {
	rep := &Report{Workers: workers, Jobs: len(results), Results: results}
	for _, r := range results {
		rep.TotalCycles += r.Cycles
		rep.TotalInsns += r.Insns
		switch {
		case r.Err != "":
			// An errored job never ran its check; count it once as a
			// failure, not again as a failed check.
			rep.Failures++
		case !r.CheckOK:
			rep.ChecksFailed++
		}
	}
	rep.WallMS = float64(wall.Microseconds()) / 1000
	if s := wall.Seconds(); s > 0 {
		rep.MCyclesPerSec = float64(rep.TotalCycles) / s / 1e6
	}
	return rep
}

// ResultsJSON marshals only the deterministic per-job results — the
// byte stream that must be identical between a sequential and a
// concurrent run of the same matrix.
func (r *Report) ResultsJSON() ([]byte, error) {
	return json.MarshalIndent(r.Results, "", "  ")
}

// WriteJSON emits the full report (including timing) as JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes a human-readable summary table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d jobs on %d workers in %.1f ms (%.2f simMcycles/s)\n",
		r.Jobs, r.Workers, r.WallMS, r.MCyclesPerSec)
	fmt.Fprintf(w, "%-5s %-7s %-22s %-10s %12s %10s %7s %-6s %s\n",
		"idx", "kind", "name", "variant", "cycles", "insns", "resets", "check", "note")
	for _, jr := range r.Results {
		note := jr.Reason
		if jr.Err != "" {
			note = "ERR: " + jr.Err
		} else if jr.Compromised {
			note = "compromised " + note
		}
		check := "ok"
		if !jr.CheckOK {
			check = "FAIL"
		}
		fmt.Fprintf(w, "%-5d %-7s %-22s %-10s %12d %10d %7d %-6s %s\n",
			jr.Index, jr.Kind, jr.Name, jr.Variant, jr.Cycles, jr.Insns, jr.Resets, check, note)
	}
	fmt.Fprintf(w, "totals: %d cycles, %d insns, %d failures, %d check failures\n",
		r.TotalCycles, r.TotalInsns, r.Failures, r.ChecksFailed)
}
