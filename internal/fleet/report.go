package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report aggregates one fleet run. Results is ordered by job index and
// is fully deterministic; the wall-clock fields describe the run that
// produced it and are excluded from determinism comparisons (see
// ResultsJSON).
type Report struct {
	Workers       int     `json:"workers"`
	Jobs          int     `json:"jobs"`
	Failures      int     `json:"failures"`
	ChecksFailed  int     `json:"checks_failed"`
	TotalCycles   uint64  `json:"total_cycles"`
	TotalInsns    uint64  `json:"total_insns"`
	WallMS        float64 `json:"wall_ms"`
	MCyclesPerSec float64 `json:"sim_mcycles_per_sec"`

	// The generated-dimension diagnostics: how many generated jobs ran
	// per variant and how many ended compromised. The protected count
	// must be zero (each compromise is also a failed check); the
	// baseline rate measures how sharp the generated inputs are.
	GenProtected            int `json:"gen_protected,omitempty"`
	GenProtectedCompromised int `json:"gen_protected_compromised,omitempty"`
	GenBaseline             int `json:"gen_baseline,omitempty"`
	GenBaselineCompromised  int `json:"gen_baseline_compromised,omitempty"`

	// Results is ordered by job index; nil on streamed runs, whose
	// per-job results were delivered incrementally instead of retained.
	Results []JobResult `json:"results,omitempty"`
}

// add folds one job result into the aggregate counters (not Results).
func (r *Report) add(jr JobResult) {
	r.Jobs++
	r.TotalCycles += jr.Cycles
	r.TotalInsns += jr.Insns
	if jr.Kind == "gen" && jr.Err == "" {
		if jr.Variant == VariantProtected {
			r.GenProtected++
			if jr.Compromised {
				r.GenProtectedCompromised++
			}
		} else {
			r.GenBaseline++
			if jr.Compromised {
				r.GenBaselineCompromised++
			}
		}
	}
	switch {
	case jr.Err != "":
		// An errored job never ran its check; count it once as a
		// failure, not again as a failed check.
		r.Failures++
	case !jr.CheckOK:
		r.ChecksFailed++
	}
}

// finish stamps the wall-clock figures.
func (r *Report) finish(wall time.Duration) *Report {
	r.WallMS = float64(wall.Microseconds()) / 1000
	if s := wall.Seconds(); s > 0 {
		r.MCyclesPerSec = float64(r.TotalCycles) / s / 1e6
	}
	return r
}

// aggregate folds job results into a report.
func aggregate(results []JobResult, workers int, wall time.Duration) *Report {
	rep := &Report{Workers: workers, Results: results}
	for _, jr := range results {
		rep.add(jr)
	}
	return rep.finish(wall)
}

// ResultsJSON marshals only the deterministic per-job results — the
// byte stream that must be identical between a sequential and a
// concurrent run of the same matrix.
func (r *Report) ResultsJSON() ([]byte, error) {
	return json.MarshalIndent(r.Results, "", "  ")
}

// WriteJSON emits the full report (including timing) as JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderTableHeader writes the column header of the per-job table (the
// streaming CLI emits rows as jobs finish, so the header comes first).
func RenderTableHeader(w io.Writer) {
	fmt.Fprintf(w, "%-5s %-7s %-22s %-10s %12s %10s %7s %-6s %s\n",
		"idx", "kind", "name", "variant", "cycles", "insns", "resets", "check", "note")
}

// RenderRow writes one job's table row.
func (jr JobResult) RenderRow(w io.Writer) {
	note := jr.Reason
	if jr.Err != "" {
		note = "ERR: " + jr.Err
	} else if jr.Compromised {
		note = "compromised " + note
	}
	if jr.Oracle != "" {
		note += " [oracle: " + jr.Oracle + "]"
	}
	check := "ok"
	if !jr.CheckOK {
		check = "FAIL"
	}
	fmt.Fprintf(w, "%-5d %-7s %-22s %-10s %12d %10d %7d %-6s %s\n",
		jr.Index, jr.Kind, jr.Name, jr.Variant, jr.Cycles, jr.Insns, jr.Resets, check, note)
}

// RenderSummary writes the aggregate lines of the report.
func (r *Report) RenderSummary(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d jobs on %d workers in %.1f ms (%.2f simMcycles/s)\n",
		r.Jobs, r.Workers, r.WallMS, r.MCyclesPerSec)
	if r.GenProtected+r.GenBaseline > 0 {
		fmt.Fprintf(w, "generated: %d protected jobs (%d compromised), baseline compromised %d/%d\n",
			r.GenProtected, r.GenProtectedCompromised, r.GenBaselineCompromised, r.GenBaseline)
	}
	fmt.Fprintf(w, "totals: %d cycles, %d insns, %d failures, %d check failures\n",
		r.TotalCycles, r.TotalInsns, r.Failures, r.ChecksFailed)
}

// Render writes a human-readable summary table.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d jobs on %d workers in %.1f ms (%.2f simMcycles/s)\n",
		r.Jobs, r.Workers, r.WallMS, r.MCyclesPerSec)
	RenderTableHeader(w)
	for _, jr := range r.Results {
		jr.RenderRow(w)
	}
	fmt.Fprintf(w, "totals: %d cycles, %d insns, %d failures, %d check failures\n",
		r.TotalCycles, r.TotalInsns, r.Failures, r.ChecksFailed)
}

// WriteNDJSONLine emits one job result as a single JSON line — the
// streaming counterpart of WriteJSON's results array.
func WriteNDJSONLine(w io.Writer, jr JobResult) error {
	b, err := json.Marshal(jr)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteSummaryNDJSONLine emits the aggregate report (without per-job
// results) as the final line of an NDJSON stream.
func (r *Report) WriteSummaryNDJSONLine(w io.Writer) error {
	summary := *r
	summary.Results = nil
	b, err := json.Marshal(&summary)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
