// Package serve is the fleet's service mode: a persistent HTTP server
// (cmd/eilid-fleetd) that accepts fleet.BatchSpec submissions and runs
// them through the ordinary Runner/journal machinery while keeping the
// expensive state — built artifacts, decode caches, block tables and
// recycled machines — warm in a fleet.Warm cache that outlives any
// single batch. A cold submission pays the same preparation cost as a
// CLI invocation; a warm resubmission of an overlapping matrix skips
// straight to recycled machines.
//
// Endpoints:
//
//	POST /batches              submit a BatchSpec (JSON, unknown fields
//	                           rejected — the same validation surface as
//	                           `eilid-fleet -spec`); returns 202 + status
//	GET  /batches              list batch statuses in submission order
//	GET  /batches/{id}         one batch's status
//	GET  /batches/{id}/journal the batch journal as chunked NDJSON —
//	                           header line, job lines in order, summary —
//	                           streamed live while the batch runs
//	GET  /healthz              liveness + warm-cache statistics
//
// Batches execute one at a time in submission order (jobs within a
// batch still fan out across the runner's worker pool), so the warm
// machine pools are handed from batch to batch without contention.
//
// Determinism contract: the journal streamed for a spec is
// byte-identical to the journal `eilid-fleet -spec file -json out`
// writes for the same spec — header, job lines and summary, warm or
// cold — excluding HTTP transport framing. The serve differential
// suites and the CI fleetd step pin that equality.
//
// Drain (first SIGTERM in the daemon) stops intake — POST returns 503
// — finishes the in-flight batch, journals every still-queued batch as
// interrupted (header + interrupted marker, the same shape the CLI
// writes when stopped before dispatch), and returns. Stop (second
// signal) additionally cancels the in-flight batch's dispatch, which
// drains its running jobs and journals it interrupted.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet"
)

// Batch states reported in BatchStatus.State.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// Options configures a Server.
type Options struct {
	// MaxQueue bounds how many batches may wait behind the running one
	// before POST /batches returns 503 (0 = DefaultMaxQueue).
	MaxQueue int
	// Log receives one line per batch lifecycle event (nil = discard).
	Log io.Writer
}

// DefaultMaxQueue is the queue bound when Options.MaxQueue is zero.
const DefaultMaxQueue = 64

// Server owns the warm cache, the batch registry and the single
// executor goroutine. Create with New, serve via Handler, shut down
// with Drain (graceful) or Stop (cancel in-flight).
type Server struct {
	p        *core.Pipeline
	warm     *fleet.Warm
	log      io.Writer
	maxQueue int

	mu       sync.Mutex
	cond     *sync.Cond // guards queue/draining; wakes the executor
	batches  map[string]*Batch
	order    []string
	queue    []*Batch
	nextID   int
	draining bool

	stop     chan struct{} // closed by Stop: cancels in-flight dispatch
	stopOnce sync.Once
	done     chan struct{} // closed when the executor exits
}

// Batch is one submitted spec and its journal. All fields behind mu;
// the journal grows append-only and cond broadcasts every append, which
// is what lets the journal endpoint stream it live.
type Batch struct {
	id     string
	spec   fleet.BatchSpec // resolved
	header *fleet.JournalHeader

	mu           sync.Mutex
	cond         *sync.Cond
	state        string
	journal      []byte
	completed    int
	failures     int
	checksFailed int
	errMsg       string
	submitted    time.Time
	firstJob     time.Duration // submission → first job line journalled
	wall         time.Duration
}

// BatchStatus is the JSON shape GET /batches and GET /batches/{id}
// return. Wall-clock fields describe the run site and are not part of
// any determinism contract (the journal deliberately excludes them).
type BatchStatus struct {
	ID           string  `json:"id"`
	State        string  `json:"state"`
	Fingerprint  string  `json:"fingerprint"`
	Jobs         int     `json:"jobs"`
	Completed    int     `json:"completed"`
	Failures     int     `json:"failures"`
	ChecksFailed int     `json:"checks_failed"`
	Error        string  `json:"error,omitempty"`
	// FirstJobMS is the submission-to-first-job-line latency — the
	// warmth observable: a warm resubmission skips artifact builds and
	// machine construction, which is exactly the gap between a cold and
	// a warm value of this field.
	FirstJobMS float64 `json:"first_job_ms,omitempty"`
	WallMS     float64 `json:"wall_ms,omitempty"`
}

// New creates a Server with an empty warm cache and starts its
// executor. The pipeline is shared by every batch the server runs.
func New(p *core.Pipeline, opts Options) *Server {
	s := &Server{
		p:        p,
		warm:     fleet.NewWarm(),
		log:      opts.Log,
		maxQueue: opts.MaxQueue,
		batches:  map[string]*Batch{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if s.log == nil {
		s.log = io.Discard
	}
	if s.maxQueue <= 0 {
		s.maxQueue = DefaultMaxQueue
	}
	s.cond = sync.NewCond(&s.mu)
	go s.executor()
	return s
}

// WarmStats snapshots the warm-cache counters (also served on
// /healthz) — the observable the warm-reuse tests assert on.
func (s *Server) WarmStats() fleet.WarmStats { return s.warm.Stats() }

// Handler returns the HTTP routing for the endpoints above.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /batches", s.handleSubmit)
	mux.HandleFunc("GET /batches", s.handleList)
	mux.HandleFunc("GET /batches/{id}", s.handleStatus)
	mux.HandleFunc("GET /batches/{id}/journal", s.handleJournal)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Submit validates a spec and enqueues it as a new batch — the
// programmatic core of POST /batches. The spec goes through the exact
// validation surface `eilid-fleet -spec` applies: ResolveSpec for
// registry names and ranges, and the journal header derived from the
// resolved matrix.
func (s *Server) Submit(spec fleet.BatchSpec) (*Batch, error) {
	resolved, err := fleet.ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	header, err := fleet.JournalHeaderForSpec(resolved)
	if err != nil {
		return nil, err
	}
	b := &Batch{spec: resolved, header: header, state: StateQueued, submitted: time.Now()}
	b.cond = sync.NewCond(&b.mu)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	if len(s.queue) >= s.maxQueue {
		s.mu.Unlock()
		return nil, errQueueFull
	}
	s.nextID++
	b.id = fmt.Sprintf("b-%d", s.nextID)
	s.batches[b.id] = b
	s.order = append(s.order, b.id)
	s.queue = append(s.queue, b)
	s.cond.Broadcast()
	s.mu.Unlock()
	fmt.Fprintf(s.log, "eilid-fleetd: %s queued: %d jobs, fingerprint %.12s…\n", b.id, header.Jobs, header.Fingerprint)
	return b, nil
}

var (
	errDraining  = fmt.Errorf("serve: draining, not accepting batches")
	errQueueFull = fmt.Errorf("serve: batch queue is full")
)

// Batch looks a batch up by id.
func (s *Server) Batch(id string) *Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches[id]
}

// Drain gracefully shuts the executor down: no new submissions, the
// in-flight batch runs to completion, every still-queued batch is
// journalled interrupted. Blocks until the executor has exited.
// Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	var q []*Batch
	if !s.draining {
		s.draining = true
		q = s.queue
		s.queue = nil
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	for _, b := range q {
		b.interruptQueued()
		fmt.Fprintf(s.log, "eilid-fleetd: %s interrupted while queued\n", b.id)
	}
	<-s.done
}

// Cancel asks the in-flight batch (and any batch the executor might
// still pick up) to stop dispatching; its running jobs drain and it is
// journalled interrupted. Non-blocking and idempotent — pair with
// Drain to wait for the executor.
func (s *Server) Cancel() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Stop is Cancel plus Drain: cancel the in-flight batch's dispatch,
// interrupt the queue, and block until the executor exits. Idempotent.
func (s *Server) Stop() {
	s.Cancel()
	s.Drain()
}

// executor runs queued batches one at a time in submission order.
func (s *Server) executor() {
	defer close(s.done)
	for {
		b := s.nextBatch()
		if b == nil {
			return
		}
		s.execute(b)
	}
}

// nextBatch blocks until a batch is queued or the server is draining
// with an empty queue (nil).
func (s *Server) nextBatch() *Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.queue) > 0 {
			b := s.queue[0]
			s.queue = s.queue[1:]
			return b
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// execute runs one batch through the warm runner, appending journal
// lines as they are produced. The journal bytes are exactly what the
// CLI's -json file would contain for the same spec.
func (s *Server) execute(b *Batch) {
	start := time.Now()
	b.setState(StateRunning)
	runner, err := fleet.NewRunnerWarm(s.p, b.spec, s.warm)
	if err != nil {
		// The spec resolved at submission, so this is a build/prepare
		// failure; the batch dies with an empty journal and the error in
		// its status.
		b.fail(err, time.Since(start))
		fmt.Fprintf(s.log, "eilid-fleetd: %s failed: %v\n", b.id, err)
		return
	}
	if err := b.appendLine(func(w io.Writer) error {
		return fleet.WriteJournalHeader(w, runner.JournalHeader())
	}); err != nil {
		b.fail(err, time.Since(start))
		return
	}
	rep, interrupted, _ := runner.RunStreamCancel(s.stop, func(jr fleet.JobResult) {
		b.appendResult(jr)
	})
	// Hand the batch's machines to the warm cache before journalling
	// the tail, so a resubmission racing the summary line still warms.
	runner.ReleaseMachines()
	if interrupted {
		err = b.appendLine(func(w io.Writer) error {
			return fleet.WriteJournalInterrupted(w, b.Completed(), len(runner.Jobs()))
		})
		if err == nil {
			b.finish(StateInterrupted, time.Since(start))
		}
	} else {
		err = b.appendLine(func(w io.Writer) error {
			return fleet.WriteJournalSummary(w, rep)
		})
		if err == nil {
			b.finish(StateDone, time.Since(start))
		}
	}
	if err != nil {
		b.fail(err, time.Since(start))
		return
	}
	st := b.Status()
	fmt.Fprintf(s.log, "eilid-fleetd: %s %s: %d/%d jobs, %d failures, %d check failures in %.1f ms\n",
		b.id, st.State, st.Completed, st.Jobs, st.Failures, st.ChecksFailed, st.WallMS)
}

// appendLine appends one journal line produced by write (a journal
// marshal helper — these only fail on a marshalling bug).
func (b *Batch) appendLine(write func(io.Writer) error) error {
	var buf lineBuf
	if err := write(&buf); err != nil {
		return err
	}
	b.mu.Lock()
	b.journal = append(b.journal, buf...)
	b.cond.Broadcast()
	b.mu.Unlock()
	return nil
}

// lineBuf is a minimal io.Writer the journal helpers marshal into.
type lineBuf []byte

func (l *lineBuf) Write(p []byte) (int, error) {
	*l = append(*l, p...)
	return len(p), nil
}

// appendResult journals one job line and folds it into the live
// status counters.
func (b *Batch) appendResult(jr fleet.JobResult) {
	var buf lineBuf
	if err := fleet.WriteNDJSONLine(&buf, jr); err != nil {
		// JobResult marshalling cannot fail; recorded for completeness.
		b.mu.Lock()
		if b.errMsg == "" {
			b.errMsg = err.Error()
		}
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	b.journal = append(b.journal, buf...)
	if b.completed == 0 {
		b.firstJob = time.Since(b.submitted)
	}
	b.completed++
	switch {
	case jr.Err != "":
		b.failures++
	case !jr.CheckOK:
		b.checksFailed++
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *Batch) setState(state string) {
	b.mu.Lock()
	b.state = state
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *Batch) finish(state string, wall time.Duration) {
	b.mu.Lock()
	b.state = state
	b.wall = wall
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *Batch) fail(err error, wall time.Duration) {
	b.mu.Lock()
	b.state = StateFailed
	if b.errMsg == "" {
		b.errMsg = err.Error()
	}
	b.wall = wall
	b.cond.Broadcast()
	b.mu.Unlock()
}

// interruptQueued journals a batch that never started: header plus an
// interrupted marker with zero completed jobs — the same journal shape
// the CLI writes when stopped before dispatch.
func (b *Batch) interruptQueued() {
	var buf lineBuf
	if err := fleet.WriteJournalHeader(&buf, b.header); err == nil {
		err = fleet.WriteJournalInterrupted(&buf, 0, b.header.Jobs)
		if err == nil {
			b.mu.Lock()
			b.journal = append(b.journal, buf...)
			b.state = StateInterrupted
			b.cond.Broadcast()
			b.mu.Unlock()
			return
		}
	}
	b.setState(StateInterrupted)
}

// ID returns the batch's server-assigned identifier.
func (b *Batch) ID() string { return b.id }

// Completed returns how many job lines the batch has journalled.
func (b *Batch) Completed() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.completed
}

// terminalLocked reports whether the batch will append no more journal
// bytes. Callers hold b.mu.
func (b *Batch) terminalLocked() bool {
	switch b.state {
	case StateDone, StateFailed, StateInterrupted:
		return true
	}
	return false
}

// Status snapshots the batch for the status endpoints.
func (b *Batch) Status() BatchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BatchStatus{
		ID:           b.id,
		State:        b.state,
		Fingerprint:  b.header.Fingerprint,
		Jobs:         b.header.Jobs,
		Completed:    b.completed,
		Failures:     b.failures,
		ChecksFailed: b.checksFailed,
		Error:        b.errMsg,
	}
	if b.firstJob > 0 {
		st.FirstJobMS = float64(b.firstJob.Microseconds()) / 1000
	}
	if b.wall > 0 {
		st.WallMS = float64(b.wall.Microseconds()) / 1000
	}
	return st
}

// Journal returns a copy of the journal bytes appended so far and
// whether the batch is terminal (no more bytes will follow).
func (b *Batch) Journal() ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.journal...), b.terminalLocked()
}

// waitJournal blocks until the journal has grown past off, the batch
// is terminal, or ctx is done; it returns the new bytes and whether
// the batch is terminal.
func (b *Batch) waitJournal(ctx context.Context, off int) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for off >= len(b.journal) && !b.terminalLocked() && ctx.Err() == nil {
		b.cond.Wait()
	}
	var chunk []byte
	if off < len(b.journal) {
		chunk = append(chunk, b.journal[off:]...)
	}
	return chunk, b.terminalLocked()
}

// maxSpecBytes bounds a POST /batches body; a BatchSpec is small, and
// an unbounded read is a trivial way to wedge the daemon.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec fleet.BatchSpec
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding spec: %v", err))
		return
	}
	b, err := s.Submit(spec)
	switch err {
	case nil:
	case errDraining:
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errQueueFull:
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, b.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]BatchStatus, 0, len(s.order))
	batches := make([]*Batch, 0, len(s.order))
	for _, id := range s.order {
		batches = append(batches, s.batches[id])
	}
	s.mu.Unlock()
	for _, b := range batches {
		out = append(out, b.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	b := s.Batch(r.PathValue("id"))
	if b == nil {
		httpError(w, http.StatusNotFound, "no such batch")
		return
	}
	writeJSON(w, http.StatusOK, b.Status())
}

// handleJournal streams the batch journal as chunked NDJSON, following
// a running batch live: every appended line is flushed to the client
// the moment the batch journals it, and the response ends after the
// terminal line (summary or interrupted marker). The bytes are exactly
// the CLI's -json journal for the same spec.
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	b := s.Batch(r.PathValue("id"))
	if b == nil {
		httpError(w, http.StatusNotFound, "no such batch")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	// A closed client connection must wake the cond wait, or an
	// abandoned stream of a long batch would leak its handler.
	stopWake := context.AfterFunc(r.Context(), func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer stopWake()
	off := 0
	for {
		chunk, terminal := b.waitJournal(r.Context(), off)
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			off += len(chunk)
		}
		if r.Context().Err() != nil {
			return
		}
		if terminal && len(chunk) == 0 {
			return
		}
	}
}

// healthz reports liveness plus the warm-cache counters, so "is the
// daemon warm for this workload" is one curl away.
type healthz struct {
	Status  string          `json:"status"`
	Batches int             `json:"batches"`
	Warm    fleet.WarmStats `json:"warm"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := healthz{Status: "ok", Batches: len(s.batches)}
	if s.draining {
		h.Status = "draining"
	}
	s.mu.Unlock()
	h.Warm = s.warm.Stats()
	writeJSON(w, http.StatusOK, h)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
