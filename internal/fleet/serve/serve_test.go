package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eilid/internal/core"
	"eilid/internal/fleet"
)

func newPipeline(t *testing.T) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func serveSpec() fleet.BatchSpec {
	return fleet.BatchSpec{
		Matrix: fleet.MatrixSpec{
			Apps:      []string{"LightSensor"},
			Scenarios: []string{"stack-smash"},
			Generated: fleet.GeneratedSpec{Seed: 21, Count: 6},
		},
		Exec: fleet.ExecSpec{Workers: 4},
	}
}

// referenceJournal is what `eilid-fleet -spec … -json out` writes for
// the spec: header line, job lines in index order, summary line.
func referenceJournal(t *testing.T, p *core.Pipeline, spec fleet.BatchSpec) []byte {
	t.Helper()
	r, err := fleet.NewRunner(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fleet.WriteJournalHeader(&buf, r.JournalHeader()); err != nil {
		t.Fatal(err)
	}
	rep, err := r.RunStream(func(jr fleet.JobResult) {
		if err := fleet.WriteNDJSONLine(&buf, jr); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.WriteJournalSummary(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postSpec submits a spec over HTTP and returns the decoded status.
func postSpec(t *testing.T, ts *httptest.Server, spec fleet.BatchSpec) BatchStatus {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /batches: %s: %s", resp.Status, raw)
	}
	var st BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// streamJournal fetches a batch journal over HTTP, blocking until the
// stream ends (i.e. the batch is terminal).
func streamJournal(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/batches/" + id + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET journal: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("journal Content-Type = %q, want application/x-ndjson", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// waitState polls a batch status until it reaches want (or the test
// deadline kills the test).
func waitState(t *testing.T, b *Batch, want string) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if b.Status().State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("batch %s never reached state %q (stuck at %q)", b.ID(), want, b.Status().State)
}

// TestServeDifferentialJournal is the service-mode determinism
// contract: the NDJSON streamed from GET /batches/{id}/journal is
// byte-identical to the journal the CLI writes for the same spec.
func TestServeDifferentialJournal(t *testing.T) {
	p := newPipeline(t)
	want := referenceJournal(t, p, serveSpec())

	s := New(p, Options{})
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := postSpec(t, ts, serveSpec())
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("freshly submitted batch in state %q", st.State)
	}
	got := streamJournal(t, ts, st.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("served journal differs from CLI journal:\ncli:    %d bytes\nserved: %d bytes\nserved head: %.200s", len(want), len(got), got)
	}
	// The stream is replayable: a second GET after completion returns
	// the same bytes.
	if again := streamJournal(t, ts, st.ID); !bytes.Equal(want, again) {
		t.Fatal("re-fetching a finished journal returned different bytes")
	}
	j, err := fleet.ParseJournal(got)
	if err != nil {
		t.Fatalf("served journal does not parse: %v", err)
	}
	if !j.Complete {
		t.Fatal("served journal parses as incomplete")
	}
}

// TestServeWarmReuse: resubmitting a spec to a warm server must hit the
// artifact and machine caches and still stream a journal byte-identical
// to the cold one.
func TestServeWarmReuse(t *testing.T) {
	p := newPipeline(t)
	s := New(p, Options{})
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := streamJournal(t, ts, postSpec(t, ts, serveSpec()).ID)
	cold := s.WarmStats()
	if cold.ArtifactMisses == 0 || cold.Machines == 0 {
		t.Fatalf("cold batch did not populate the warm cache: %+v", cold)
	}

	second := streamJournal(t, ts, postSpec(t, ts, serveSpec()).ID)
	if !bytes.Equal(first, second) {
		t.Fatal("warm resubmission journal differs from the cold journal")
	}
	warm := s.WarmStats()
	if warm.ArtifactHits <= cold.ArtifactHits {
		t.Errorf("resubmission had no artifact hits: cold %+v warm %+v", cold, warm)
	}
	if warm.MachineHits <= cold.MachineHits {
		t.Errorf("resubmission had no machine hits: cold %+v warm %+v", cold, warm)
	}
	if warm.ArtifactMisses != cold.ArtifactMisses {
		t.Errorf("resubmission rebuilt artifacts: cold %+v warm %+v", cold, warm)
	}
}

// TestServeDrain: draining with one batch in flight and one queued
// finishes the in-flight batch (complete journal) and journals the
// queued one interrupted with zero completed jobs — the same shape the
// CLI writes when stopped before dispatch.
func TestServeDrain(t *testing.T) {
	p := newPipeline(t)
	s := New(p, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A repeat-heavy batch so batch 1 is still in flight when we drain.
	big := serveSpec()
	big.Matrix.Repeat = 8
	b1, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Submit(serveSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, b1, StateRunning)

	s.Drain()

	if st := b1.Status(); st.State != StateDone || st.Completed != st.Jobs {
		t.Fatalf("in-flight batch after drain: %+v, want done with all jobs", st)
	}
	j1, terminal := b1.Journal()
	if !terminal {
		t.Fatal("in-flight batch journal not terminal after drain")
	}
	if parsed, err := fleet.ParseJournal(j1); err != nil || !parsed.Complete {
		t.Fatalf("in-flight batch journal incomplete after drain: %v", err)
	}

	if st := b2.Status(); st.State != StateInterrupted || st.Completed != 0 {
		t.Fatalf("queued batch after drain: %+v, want interrupted with 0 completed", st)
	}
	j2, terminal := b2.Journal()
	if !terminal {
		t.Fatal("queued batch journal not terminal after drain")
	}
	want, err := fleet.JournalHeaderForSpec(serveSpec())
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	if err := fleet.WriteJournalHeader(&ref, want); err != nil {
		t.Fatal(err)
	}
	if err := fleet.WriteJournalInterrupted(&ref, 0, want.Jobs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Bytes(), j2) {
		t.Fatalf("queued batch journal:\n%s\nwant:\n%s", j2, ref.Bytes())
	}

	// Drained server refuses new work over HTTP with 503.
	body, _ := json.Marshal(serveSpec())
	resp, err := http.Post(ts.URL+"/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %s, want 503", resp.Status)
	}
}

// TestServeStopCancelsInFlight: Stop (drain + cancel) interrupts the
// in-flight batch; its journal ends with an interrupted marker whose
// completed count matches the job lines already journalled, and a
// resumed CLI run could pick it up (it parses as incomplete).
func TestServeStopCancelsInFlight(t *testing.T) {
	p := newPipeline(t)
	s := New(p, Options{})

	big := serveSpec()
	big.Matrix.Repeat = 50
	big.Exec.Workers = 1
	b, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, b, StateRunning)
	s.Stop()

	st := b.Status()
	if st.State != StateInterrupted && st.State != StateDone {
		t.Fatalf("in-flight batch after stop: %+v", st)
	}
	raw, terminal := b.Journal()
	if !terminal {
		t.Fatal("journal not terminal after stop")
	}
	j, err := fleet.ParseJournal(raw)
	if err != nil {
		t.Fatalf("interrupted journal does not parse: %v", err)
	}
	if st.State == StateInterrupted {
		if j.Complete {
			t.Fatal("interrupted journal parses as complete")
		}
		if len(j.Results) != st.Completed {
			t.Fatalf("journal has %d job lines, status says %d completed", len(j.Results), st.Completed)
		}
	}
}

// TestServeRejectsUnknownFields pins the validation surface: POST
// /batches applies DisallowUnknownFields, exactly like `eilid-fleet
// -spec` on a file.
func TestServeRejectsUnknownFields(t *testing.T) {
	s := New(newPipeline(t), Options{})
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"matrix": {"apps": ["LightSensor"], "no_scenarios": true}, "typo_field": 1}`,
		`{"matrix": {"apps": ["NoSuchApp"], "no_scenarios": true}}`,
		`{"matrix": `, // truncated JSON
	} {
		resp, err := http.Post(ts.URL+"/batches", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: got %s (%s), want 400", body, resp.Status, raw)
		}
	}
	if resp, err := http.Get(ts.URL + "/batches/b-999/journal"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET journal of unknown batch: %s, want 404", resp.Status)
		}
	}
}

// TestServeStatusEndpoints covers the list/status/healthz surfaces.
func TestServeStatusEndpoints(t *testing.T) {
	s := New(newPipeline(t), Options{})
	defer s.Stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := fleet.BatchSpec{Matrix: fleet.MatrixSpec{Apps: []string{"LightSensor"}, NoScenarios: true}}
	st := postSpec(t, ts, spec)
	streamJournal(t, ts, st.ID) // wait for completion

	resp, err := http.Get(ts.URL + "/batches")
	if err != nil {
		t.Fatal(err)
	}
	var list []BatchStatus
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID || list[0].State != StateDone {
		t.Fatalf("GET /batches = %+v", list)
	}
	if list[0].Completed != list[0].Jobs || list[0].Jobs == 0 {
		t.Fatalf("finished batch status = %+v", list[0])
	}

	resp, err = http.Get(ts.URL + "/batches/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var one BatchStatus
	err = json.NewDecoder(resp.Body).Decode(&one)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if one.State != StateDone || one.Fingerprint == "" {
		t.Fatalf("GET /batches/%s = %+v", st.ID, one)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status  string          `json:"status"`
		Batches int             `json:"batches"`
		Warm    fleet.WarmStats `json:"warm"`
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Batches != 1 {
		t.Fatalf("GET /healthz = %+v", h)
	}
}

// TestServeQueueFull: submissions beyond MaxQueue are rejected with
// errQueueFull (503 over HTTP) instead of growing without bound.
func TestServeQueueFull(t *testing.T) {
	p := newPipeline(t)
	s := New(p, Options{MaxQueue: 1})
	defer s.Stop()

	big := serveSpec()
	big.Matrix.Repeat = 8
	if _, err := s.Submit(big); err != nil {
		t.Fatal(err)
	}
	// Fill the queue behind the (possibly already running) first batch;
	// at most two submissions can be pending at once, so the third in a
	// row must fail.
	var sawFull bool
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(serveSpec()); err == errQueueFull {
			sawFull = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("queue never reported full with MaxQueue=1")
	}
}
