package fleet

// BatchSpec is the canonical, serializable description of one fleet
// batch — the single source of truth every other shape is derived
// from. The CLI flags parse into a BatchSpec (and a spec file loads
// one via `-spec`), the journal header fingerprint is computed from
// its resolved matrix, and the coordinator ships the spec to worker
// processes as JSON over stdin instead of replaying a flag vector, so
// a knob added here is automatically a knob everywhere.
//
// The three sections split along the determinism contract:
//
//   - Matrix selects the jobs and is the only part the journal
//     fingerprint covers — it alone determines job identity.
//   - Exec holds execution knobs (pool size, recycling, watchdog,
//     retry budget) that must never change results, only how fast or
//     how safely they are computed.
//   - Fault injects deterministic faults for the crash-safety suites;
//     it is never carried across a resume and never shipped to
//     coordinator workers.
//
// ResolveSpec canonicalizes the matrix against the registries; a
// resolved spec is idempotent under re-resolution, which is what lets
// a coordinator serialize its resolved spec, a worker re-resolve it,
// and both arrive at the identical fingerprint.

import (
	"encoding/json"
	"fmt"
	"time"

	"eilid/internal/apps"
	"eilid/internal/attacks"
	"eilid/internal/core"
)

// BatchSpec selects the job matrix, the execution knobs and any
// injected faults for one fleet batch.
type BatchSpec struct {
	Matrix MatrixSpec `json:"matrix"`
	Exec   ExecSpec   `json:"exec"`
	Fault  FaultSpec  `json:"fault"`
}

// MatrixSpec selects the job matrix — everything that determines job
// identity, and nothing else. This is the only section the journal
// fingerprint covers.
type MatrixSpec struct {
	// Apps restricts the Table IV applications by name (nil = all).
	Apps []string `json:"apps,omitempty"`
	// Scenarios restricts the attack scenarios by name (nil = all).
	// Use NoScenarios to run an app-only matrix.
	Scenarios []string `json:"scenarios,omitempty"`
	// NoApps / NoScenarios drop a whole dimension.
	NoApps      bool `json:"no_apps,omitempty"`
	NoScenarios bool `json:"no_scenarios,omitempty"`
	// Defenses restricts the defense columns by registry name (nil =
	// every registered defense, in core.Defenses order).
	Defenses []string `json:"defenses,omitempty"`
	// Repeat runs every job this many times (default 1); repeats are
	// distinct jobs, so determinism is checked across them too.
	Repeat int `json:"repeat,omitempty"`
	// Generated sizes the generated scenario dimension (zero Count
	// disables it).
	Generated GeneratedSpec `json:"generated"`
}

// GeneratedSpec adds a third matrix dimension of seed-derived attack
// variants (internal/scenario): Count scenarios generated from Seed,
// each run on every selected defense. Generation is deterministic, so
// the dimension inherits the fleet's byte-identical-results contract.
type GeneratedSpec struct {
	Seed  uint64 `json:"seed,omitempty"`
	Count int    `json:"count,omitempty"`
}

// ExecSpec holds the execution knobs. None of them may change job
// results — only how fast, how concurrently or how safely the batch
// computes them — so none of them enter the journal fingerprint, and
// sentinel values (0 = default) pass through serialization unresolved:
// a spec written on one machine must not pin another machine's
// GOMAXPROCS.
type ExecSpec struct {
	// Workers sizes the pool (0 = GOMAXPROCS at run time; 1 =
	// sequential).
	Workers int `json:"workers,omitempty"`
	// NoRecycle makes every job construct a fresh machine instead of
	// recycling a pooled one — the reference lifecycle the recycling
	// differential tests compare against.
	NoRecycle bool `json:"no_recycle,omitempty"`
	// JobTimeout arms the per-job wall-clock watchdog: a job still
	// running after this long is abandoned and recorded as a
	// deterministic watchdog failure instead of hanging the batch.
	// Zero disables the watchdog.
	JobTimeout Duration `json:"job_timeout,omitempty"`
	// MaxRetries bounds the extra attempts a job reporting a transient
	// failure (see TransientErrPrefix) gets before the failure is
	// recorded. Zero means DefaultMaxRetries; negative disables retry.
	MaxRetries int `json:"max_retries,omitempty"`
}

// Duration is a time.Duration that serializes as its human-readable
// string form ("2m30s") so spec files stay hand-editable, and accepts
// either that form or integer nanoseconds on the way in.
type Duration time.Duration

// Std returns the plain time.Duration value.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("fleet: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// ResolveSpec canonicalizes the matrix half of a spec against the
// registries: nil "all" selections become explicit name lists (so a
// registry drift between two processes shows up as a fingerprint
// mismatch instead of silently different matrices), names are
// validated, Repeat defaults to 1, and an unused generated seed is
// zeroed. Exec and Fault pass through untouched — their sentinel
// semantics (0 = default) are resolved at run time, never baked into
// a serialized spec.
//
// Resolution is idempotent and needs no build artifacts, so `-dump-
// spec` can emit the canonical spec without assembling any firmware.
func ResolveSpec(spec BatchSpec) (BatchSpec, error) {
	m := &spec.Matrix
	switch {
	case m.NoApps:
		m.Apps = nil
	case m.Apps == nil:
		for _, a := range apps.All() {
			m.Apps = append(m.Apps, a.Name)
		}
	default:
		for _, n := range m.Apps {
			if _, ok := apps.ByName(n); !ok {
				return spec, fmt.Errorf("fleet: unknown application %q", n)
			}
		}
	}
	switch {
	case m.NoScenarios:
		m.Scenarios = nil
	case m.Scenarios == nil:
		for _, sc := range attacks.Scenarios() {
			m.Scenarios = append(m.Scenarios, sc.Name)
		}
	default:
		known := map[string]bool{}
		for _, sc := range attacks.Scenarios() {
			known[sc.Name] = true
		}
		for _, n := range m.Scenarios {
			if !known[n] {
				return spec, fmt.Errorf("fleet: unknown scenario %q", n)
			}
		}
	}
	if len(m.Defenses) == 0 {
		m.Defenses = nil
		for _, d := range core.Defenses() {
			m.Defenses = append(m.Defenses, d.Name)
		}
	} else {
		for _, n := range m.Defenses {
			if _, err := core.DefenseByName(n); err != nil {
				return spec, fmt.Errorf("fleet: %w", err)
			}
		}
	}
	if m.Repeat < 1 {
		m.Repeat = 1
	}
	if m.Generated.Count < 0 {
		return spec, fmt.Errorf("fleet: generated count must be >= 0 (got %d)", m.Generated.Count)
	}
	if m.Generated.Count == 0 {
		// A zero-count dimension ignores its seed; canonicalize so the
		// fingerprint does not depend on an unused value.
		m.Generated.Seed = 0
	}
	// Canonicalize the dimension-drop booleans against the resolved
	// lists so resolve(resolve(x)) == resolve(x).
	if len(m.Apps) == 0 {
		m.Apps, m.NoApps = nil, true
	} else {
		m.NoApps = false
	}
	if len(m.Scenarios) == 0 {
		m.Scenarios, m.NoScenarios = nil, true
	} else {
		m.NoScenarios = false
	}
	return spec, nil
}

// Fingerprint resolves the spec and returns the sha256 journal
// fingerprint its matrix would carry — the identity every journal
// header, resume and coordinator/worker handshake agrees on.
func (s BatchSpec) Fingerprint() (string, error) {
	rs, err := ResolveSpec(s)
	if err != nil {
		return "", err
	}
	return rs.Matrix.journalSpec().Fingerprint(), nil
}
