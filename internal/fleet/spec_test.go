package fleet

// BatchSpec serialization suite. The golden test pins the journal
// header's canonical JSON bytes AND their sha256: every journal ever
// written embeds this fingerprint, so any change to JournalSpec's
// field set, tag names, tag options or field order silently orphans
// every existing journal (resume would refuse them). If this test
// fails you have changed the wire format — that needs a version bump,
// not a golden update.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func TestJournalSpecGoldenFingerprint(t *testing.T) {
	cases := []struct {
		name string
		spec JournalSpec
		json string
		sha  string
	}{
		{
			// Every field populated: pins the tag names and field order.
			name: "full",
			spec: JournalSpec{
				Apps:      []string{"LightSensor"},
				Scenarios: []string{"stack-smash"},
				Defenses:  []string{"baseline", "eilid"},
				Repeat:    2,
				GenSeed:   7,
				GenCount:  5,
			},
			json: `{"apps":["LightSensor"],"scenarios":["stack-smash"],"defenses":["baseline","eilid"],"repeat":2,"gen_seed":7,"gen_count":5}`,
			sha:  "cf357043a1592eab8847f46a17b2369f3b53772cef165aeb5fa97fdf71883a4e",
		},
		{
			// Generated-only matrix: pins the omitempty behaviour (apps,
			// scenarios and the zero seed drop out; defenses and repeat
			// never do).
			name: "generated-only",
			spec: JournalSpec{Defenses: []string{"baseline"}, Repeat: 1, GenCount: 12},
			json: `{"defenses":["baseline"],"repeat":1,"gen_count":12}`,
			sha:  "9c1a19bf509eef18c40e1cb4c9df8af55013f552320c991849de77d15e4e9764",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != tc.json {
				t.Errorf("canonical JSON changed — this orphans every existing journal:\nwant: %s\ngot:  %s", tc.json, b)
			}
			if fp := tc.spec.Fingerprint(); fp != tc.sha {
				t.Errorf("fingerprint changed:\nwant: %s\ngot:  %s", tc.sha, fp)
			}
			// The fingerprint is definitionally the sha256 of the canonical
			// bytes; pin that relation too so the hash can't drift.
			sum := sha256.Sum256([]byte(tc.json))
			if hex.EncodeToString(sum[:]) != tc.sha {
				t.Fatalf("golden sha %s is not the sha256 of the golden bytes", tc.sha)
			}
		})
	}

	// The BatchSpec path — resolve, project, fingerprint — must land on
	// the same golden hash as the hand-built JournalSpec.
	batch := BatchSpec{Matrix: MatrixSpec{
		Apps:      []string{"LightSensor"},
		Scenarios: []string{"stack-smash"},
		Defenses:  []string{"baseline", "eilid"},
		Repeat:    2,
		Generated: GeneratedSpec{Seed: 7, Count: 5},
	}}
	fp, err := batch.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != cases[0].sha {
		t.Errorf("BatchSpec.Fingerprint() = %s, want the golden %s", fp, cases[0].sha)
	}
}

// TestResolveSpecIdempotent: resolving a resolved spec is a no-op —
// the property that lets a coordinator serialize its resolved spec and
// a worker re-resolve it to the identical matrix and fingerprint.
func TestResolveSpecIdempotent(t *testing.T) {
	specs := []BatchSpec{
		{}, // default everything
		{Matrix: MatrixSpec{Apps: []string{"LightSensor"}, NoScenarios: true}},
		{Matrix: MatrixSpec{NoApps: true, NoScenarios: true, Generated: GeneratedSpec{Seed: 3, Count: 9}}},
		{Matrix: MatrixSpec{Repeat: 4}, Exec: ExecSpec{Workers: 7, JobTimeout: Duration(time.Minute)}},
	}
	for i, spec := range specs {
		once, err := ResolveSpec(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		twice, err := ResolveSpec(once)
		if err != nil {
			t.Fatalf("spec %d re-resolve: %v", i, err)
		}
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("spec %d not idempotent:\nonce:  %+v\ntwice: %+v", i, once, twice)
		}
	}

	full, err := ResolveSpec(BatchSpec{})
	if err != nil {
		t.Fatal(err)
	}
	m := full.Matrix
	if len(m.Apps) == 0 || len(m.Scenarios) == 0 || len(m.Defenses) == 0 {
		t.Fatalf("default spec resolved to empty lists: %+v", m)
	}
	if m.NoApps || m.NoScenarios || m.Repeat != 1 {
		t.Fatalf("default spec canonicalization: %+v", m)
	}
	// An unused generated seed is zeroed so the fingerprint cannot
	// depend on a value that selects no jobs.
	seeded, err := ResolveSpec(BatchSpec{Matrix: MatrixSpec{Generated: GeneratedSpec{Seed: 99}}})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Matrix.Generated.Seed != 0 {
		t.Errorf("zero-count generated seed survived resolution: %+v", seeded.Matrix.Generated)
	}
	// Exec passes through unresolved: 0-sentinels stay 0 so a spec
	// serialized on one machine does not pin its GOMAXPROCS elsewhere.
	if full.Exec != (ExecSpec{}) {
		t.Errorf("ResolveSpec touched the exec section: %+v", full.Exec)
	}
}

// TestBatchSpecJSONRoundTrip: a resolved spec survives JSON unchanged —
// struct-equal and fingerprint-equal — which is the worker handshake's
// entire correctness argument.
func TestBatchSpecJSONRoundTrip(t *testing.T) {
	spec, err := ResolveSpec(BatchSpec{
		Matrix: MatrixSpec{Repeat: 2, Generated: GeneratedSpec{Seed: 5, Count: 3}},
		Exec:   ExecSpec{Workers: 4, NoRecycle: true, JobTimeout: Duration(90 * time.Second), MaxRetries: -1},
		Fault:  FaultSpec{PanicAt: []int{1}, HangAt: []int{2}, HangFor: Duration(time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back BatchSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("round-trip changed the spec:\nbefore: %+v\nafter:  %+v", spec, back)
	}
	fpA, errA := spec.Fingerprint()
	fpB, errB := back.Fingerprint()
	if errA != nil || errB != nil || fpA != fpB {
		t.Fatalf("round-trip changed the fingerprint: %s / %s (%v, %v)", fpA, fpB, errA, errB)
	}
}

// TestJournalSpecBatchRoundTrip: header → BatchSpec → header is the
// resume path's matrix reconstruction; it must be lossless.
func TestJournalSpecBatchRoundTrip(t *testing.T) {
	for _, js := range []JournalSpec{
		{Apps: []string{"LightSensor"}, Scenarios: []string{"stack-smash"}, Defenses: []string{"baseline"}, Repeat: 1},
		{Defenses: []string{"baseline", "eilid"}, Repeat: 3, GenSeed: 1, GenCount: 8},
	} {
		got := js.Batch().Matrix.journalSpec()
		if !reflect.DeepEqual(js, got) {
			t.Errorf("Batch() lost information:\nheader: %+v\nback:   %+v", js, got)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(90 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1m30s"` {
		t.Errorf("marshalled to %s, want \"1m30s\"", b)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"2m30s"`), &d); err != nil || d.Std() != 150*time.Second {
		t.Errorf("string form: %v, %v", d, err)
	}
	// Integer nanoseconds also decode — the form a plain time.Duration
	// field would have produced.
	if err := json.Unmarshal([]byte(`1500000000`), &d); err != nil || d.Std() != 1500*time.Millisecond {
		t.Errorf("integer form: %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"not a duration"`), &d); err == nil {
		t.Error("garbage duration accepted")
	}
}

// TestResolveSpecErrors: unknown names and a negative generated count
// are resolution errors, so they surface identically from the CLI, the
// runner, -dump-spec and the worker handshake.
func TestResolveSpecErrors(t *testing.T) {
	for name, spec := range map[string]BatchSpec{
		"unknown app":      {Matrix: MatrixSpec{Apps: []string{"NoSuchApp"}}},
		"unknown scenario": {Matrix: MatrixSpec{Scenarios: []string{"no-such-attack"}}},
		"unknown defense":  {Matrix: MatrixSpec{Defenses: []string{"no-such-defense"}}},
		"negative gen":     {Matrix: MatrixSpec{Generated: GeneratedSpec{Count: -1}}},
	} {
		if _, err := ResolveSpec(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
