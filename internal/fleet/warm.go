package fleet

// Warm is the server-lifetime cache behind eilid-fleetd's service mode:
// build artifacts and recycled machines that outlive any single batch.
// A cold batch pays the full preparation cost — assembling and
// instrumenting every firmware, snapshotting decode caches, fusing
// block tables, constructing machines — while a warm resubmission of
// the same (or an overlapping) matrix finds all of that already built
// and runs straight on recycled machines.
//
// Entries are content-addressed: artifacts key on the sha256 of their
// assembly source (never on the matrix-cell name, which for generated
// victims could collide across seeds if a family ever renamed its
// parameters), and machines key on their artifact's content key plus
// the defense column. A machine is only ever handed to a job whose
// artifact and defense match the ones it was built for, and every
// checkout recycles it back to its sealed post-load snapshot — the same
// Machine.Recycle contract the in-batch pools rely on — so warm reuse
// is observationally identical to a cold construction. The cross-batch
// differential suites pin that byte-identity.
//
// A Warm is safe for concurrent use; batches borrow machines during a
// run and Runner.ReleaseMachines returns them when the batch ends.
// Machines abandoned by the per-job watchdog are never released back
// (their runaway attempt keeps sole ownership), so a warm pool never
// contains a machine another goroutine may still be mutating.

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"eilid/internal/core"
)

// Warm caches build artifacts and idle recycled machines across
// batches. The zero value is not usable; call NewWarm.
type Warm struct {
	mu        sync.Mutex
	artifacts map[string]*artifact       // content key → shared artifact
	machines  map[string][]*core.Machine // content key + "/" + defense → idle machines
	stats     WarmStats
}

// WarmStats counts cache traffic — the observable the warm-reuse tests
// and the /healthz endpoint report.
type WarmStats struct {
	// Artifacts and Machines are the current cache sizes.
	Artifacts int `json:"artifacts"`
	Machines  int `json:"machines"`
	// Hits and misses accumulate over the cache's lifetime. An artifact
	// miss is a firmware actually built; a machine miss is only counted
	// indirectly (constructions happen in the runner), so MachineHits
	// alone measures cross-batch recycling.
	ArtifactHits   int `json:"artifact_hits"`
	ArtifactMisses int `json:"artifact_misses"`
	MachineHits    int `json:"machine_hits"`
}

// NewWarm creates an empty warm cache.
func NewWarm() *Warm {
	return &Warm{
		artifacts: map[string]*artifact{},
		machines:  map[string][]*core.Machine{},
	}
}

// warmContentKey addresses an artifact by what it is built from, not
// what the matrix calls it.
func warmContentKey(file, source string) string {
	h := sha256.New()
	h.Write([]byte(file))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// artifact returns the cached artifact for this source, or nil on a
// miss. The returned artifact is shared and read-only.
func (w *Warm) artifact(file, source string) *artifact {
	key := warmContentKey(file, source)
	w.mu.Lock()
	defer w.mu.Unlock()
	a := w.artifacts[key]
	if a != nil {
		w.stats.ArtifactHits++
	} else {
		w.stats.ArtifactMisses++
	}
	return a
}

// putArtifact caches a freshly built artifact under its content key.
func (w *Warm) putArtifact(a *artifact) {
	if a.warmKey == "" {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.artifacts[a.warmKey]; !ok {
		w.artifacts[a.warmKey] = a
		w.stats.Artifacts = len(w.artifacts)
	}
}

// takeMachine checks an idle machine out of the pool for this
// (artifact content, defense) key, or returns nil. The caller owns the
// machine until it is released back and must Recycle it before use.
func (w *Warm) takeMachine(key string) *core.Machine {
	w.mu.Lock()
	defer w.mu.Unlock()
	pool := w.machines[key]
	if len(pool) == 0 {
		return nil
	}
	m := pool[len(pool)-1]
	w.machines[key] = pool[:len(pool)-1]
	w.stats.Machines--
	w.stats.MachineHits++
	return m
}

// putMachine returns an idle machine to the pool.
func (w *Warm) putMachine(key string, m *core.Machine) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.machines[key] = append(w.machines[key], m)
	w.stats.Machines++
}

// Stats snapshots the cache counters.
func (w *Warm) Stats() WarmStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
