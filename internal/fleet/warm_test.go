package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
)

// warmSpec is the cross-batch matrix: an app, an attack and a small
// generated dimension across every registered defense column, so the
// warm pools carry app, attack and generated-victim machines alike.
func warmSpec(workers int) BatchSpec {
	return BatchSpec{
		Matrix: MatrixSpec{
			Apps:      []string{"LightSensor"},
			Scenarios: []string{"stack-smash"},
			Generated: GeneratedSpec{Seed: 9, Count: 8},
		},
		Exec: ExecSpec{Workers: workers},
	}
}

// TestRecycleWarmCrossBatch is the cross-batch pool-reuse contract the
// service mode rests on: batch N+1 on a warm cache — recycled machines
// and cached artifacts from batch N — produces JobResults
// byte-identical to a cold single-shot run, for every defense column,
// and the second batch actually hits the cache (otherwise the
// differential is vacuous).
func TestRecycleWarmCrossBatch(t *testing.T) {
	p := newPipeline(t)

	// Cold reference: a plain runner with no warm cache.
	cold, err := NewRunner(p, warmSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ResultsJSON()
	if err != nil {
		t.Fatal(err)
	}

	warm := NewWarm()
	for batch := 1; batch <= 3; batch++ {
		r, err := NewRunnerWarm(p, warmSpec(4), warm)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		got, err := rep.ResultsJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			for i := range ref.Results {
				if ref.Results[i] != rep.Results[i] {
					t.Errorf("batch %d job %d diverges:\ncold: %+v\nwarm: %+v",
						batch, i, ref.Results[i], rep.Results[i])
				}
			}
			t.Fatalf("batch %d on the warm cache differs from the cold run", batch)
		}
		r.ReleaseMachines()
	}

	st := warm.Stats()
	if st.ArtifactHits == 0 {
		t.Errorf("no artifact cache hits across 3 batches: %+v", st)
	}
	if st.MachineHits == 0 {
		t.Errorf("no machine cache hits across 3 batches: %+v", st)
	}
	if st.Machines == 0 {
		t.Errorf("warm cache holds no idle machines after release: %+v", st)
	}
	// Batches 2 and 3 must not have rebuilt anything: every prepare is
	// a hit once batch 1 populated the cache.
	if st.ArtifactMisses != st.Artifacts {
		t.Errorf("artifacts were rebuilt despite the warm cache: %+v", st)
	}
}

// TestRecycleWarmDistinctSpecsShareArtifacts: a different matrix over
// the same firmwares reuses the warm artifacts (content-addressed, not
// name-addressed) and still matches its own cold reference.
func TestRecycleWarmDistinctSpecsShareArtifacts(t *testing.T) {
	p := newPipeline(t)
	warm := NewWarm()

	first, err := NewRunnerWarm(p, warmSpec(2), warm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Run(); err != nil {
		t.Fatal(err)
	}
	first.ReleaseMachines()
	misses := warm.Stats().ArtifactMisses

	// A narrower second spec: same app, one defense column.
	spec2 := BatchSpec{
		Matrix: MatrixSpec{Apps: []string{"LightSensor"}, NoScenarios: true, Defenses: []string{"eilid"}},
		Exec:   ExecSpec{Workers: 2},
	}
	cold, err := NewRunner(p, spec2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cold.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ResultsJSON()
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewRunnerWarm(p, spec2, warm)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := second.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.ResultsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("warm run of the second spec differs from its cold reference")
	}
	if st := warm.Stats(); st.ArtifactMisses != misses {
		t.Errorf("second spec rebuilt %d artifacts the cache already held", st.ArtifactMisses-misses)
	}
}

// TestJournalHeaderForSpec pins the arithmetic header against the one
// the runner derives after actually building the matrix — the service
// mode journals never-started batches with the former and running
// batches with the latter, so they must agree byte-for-byte.
func TestJournalHeaderForSpec(t *testing.T) {
	p := newPipeline(t)
	for _, spec := range []BatchSpec{
		warmSpec(1),
		{Matrix: MatrixSpec{Apps: []string{"LightSensor"}, NoScenarios: true, Repeat: 2}},
		{Matrix: MatrixSpec{NoApps: true, NoScenarios: true, Generated: GeneratedSpec{Seed: 3, Count: 5}, Defenses: []string{"baseline", "eilid"}}},
	} {
		want, err := JournalHeaderForSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(p, spec)
		if err != nil {
			t.Fatal(err)
		}
		got := r.JournalHeader()
		wb, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("headers diverge for %+v:\narithmetic: %s\nrunner:     %s", spec.Matrix, wb, gb)
		}
		if want.Jobs != len(r.Jobs()) {
			t.Errorf("arithmetic job count %d != %d actual jobs for %+v", want.Jobs, len(r.Jobs()), spec.Matrix)
		}
	}
}
