// Package hwcost estimates the FPGA resource footprint of the CASU/EILID
// hardware monitor and carries the published prior-work numbers needed to
// regenerate the paper's Figure 10 comparison.
//
// The paper obtains its numbers by synthesizing Verilog with Vivado for a
// Basys3 Artix-7; that step cannot run here, so the estimator models the
// monitor as a netlist of RTL primitives (equality/magnitude comparators,
// state bits, AND/OR reduction trees) and converts them to 6-input-LUT
// and flip-flop counts with standard sizing rules. The point is not to
// reproduce Vivado's exact packing but to show that the monitor lands in
// the same "about a hundred LUTs, a few dozen registers" class the paper
// reports (+99 LUTs / +34 registers over the openMSP430 baseline).
package hwcost

import "fmt"

// Primitive sizing rules for 6-input LUT architectures (Artix-7 class).

// lutsEq is the LUT cost of comparing an n-bit bus against a constant:
// each LUT6 absorbs 6 bits, then the partial results AND-reduce.
func lutsEq(bits int) int {
	luts := ceilDiv(bits, 6)
	for luts > 1 {
		next := ceilDiv(luts, 6)
		if next == luts {
			break
		}
		luts += next
		if next == 1 {
			break
		}
	}
	return luts
}

// lutsMag is the LUT cost of an n-bit magnitude comparison against a
// constant (carry-chain based: roughly one LUT per two bits).
func lutsMag(bits int) int { return ceilDiv(bits, 2) }

// lutsReduce is the cost of AND/OR-reducing n signals.
func lutsReduce(n int) int {
	if n <= 1 {
		return 0
	}
	luts := 0
	for n > 1 {
		n = ceilDiv(n, 6)
		luts += n
	}
	return luts
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Netlist accumulates primitive counts.
type Netlist struct {
	LUTs      int
	Registers int
	notes     []string
}

func (n *Netlist) add(luts, regs int, format string, args ...interface{}) {
	n.LUTs += luts
	n.Registers += regs
	n.notes = append(n.notes, fmt.Sprintf("%-46s %4d LUT %3d FF", fmt.Sprintf(format, args...), luts, regs))
}

// Notes returns the per-block accounting for reports.
func (n *Netlist) Notes() []string { return append([]string(nil), n.notes...) }

// RangeCheck adds an address-in-[lo,hi] comparator on a bus of the given
// width (two magnitude comparisons plus the combining AND).
func (n *Netlist) RangeCheck(name string, width int) {
	n.add(2*lutsMag(width)+1, 0, "range check: %s", name)
}

// EqCheck adds an equality comparator against a constant.
func (n *Netlist) EqCheck(name string, width int) {
	n.add(lutsEq(width), 0, "equality check: %s", name)
}

// StateBit adds a registered flag with next-state logic.
func (n *Netlist) StateBit(name string, inputs int) {
	n.add(lutsReduce(inputs)+1, 1, "state bit: %s", name)
}

// FSM adds a small controller with the given states and transition
// inputs.
func (n *Netlist) FSM(name string, states, inputs int) {
	bits := 1
	for 1<<bits < states {
		bits++
	}
	n.add(states+lutsReduce(inputs), bits, "fsm: %s (%d states)", name, states)
}

// Reduce adds an OR/AND reduction of n violation signals.
func (n *Netlist) Reduce(name string, inputs int) {
	n.add(lutsReduce(inputs), 0, "reduction: %s", name)
}

// HoldRegister adds a plain n-bit register.
func (n *Netlist) HoldRegister(name string, bits int) {
	n.add(0, bits, "register: %s", name)
}

// MonitorEstimate sizes the CASU+EILID monitor: every rule from
// internal/casu expressed as bus comparators plus the reset controller.
// addrBits is the address-bus width (16 on MSP430).
func MonitorEstimate(addrBits int) *Netlist {
	n := &Netlist{}
	// (1) software immutability: write-strobe qualified range checks on
	// PMEM, secure ROM and IVT.
	n.RangeCheck("pmem write-protect", addrBits)
	n.RangeCheck("secure-rom write-protect", addrBits)
	n.RangeCheck("ivt write-protect", addrBits)
	// (2) W^X: the fetch address must stay inside the executable ranges.
	n.RangeCheck("exec-from-pmem", addrBits)
	n.RangeCheck("exec-from-secure-rom", addrBits)
	// (3) secure-region atomicity.
	n.RangeCheck("pc-in-secure-rom", addrBits)
	n.EqCheck("entry-point match", addrBits)
	n.EqCheck("exit-point match", addrBits)
	n.StateBit("prev-cycle-in-secure-rom", 2)
	n.StateBit("irq-gate", 2)
	// (4) shadow-stack exclusivity (the EILID secure-DMEM extension).
	n.RangeCheck("secure-dmem data access", addrBits)
	// (5) violation latch decode.
	n.EqCheck("violation-latch address", addrBits)
	n.StateBit("violation latch", 8)
	// fold the per-rule violation signals into the reset request.
	n.Reduce("violation OR-tree", 10)
	// reset sequencing (assert PUC, hold, release).
	n.FSM("reset controller", 4, 3)
	// configuration of the protected ranges is hardwired (constants), so
	// no registers there; the monitor keeps the last-fetch address slice
	// needed for the transition checks.
	n.HoldRegister("latched fetch-region flags", 4)
	return n
}

// Estimate is the repo's own monitor sizing for the 16-bit bus.
func Estimate() *Netlist { return MonitorEstimate(16) }

// SchemeCost is one bar pair of Figure 10.
type SchemeCost struct {
	Name     string
	Class    string // "CFI" or "CFA"
	Platform string
	// LUTs and Registers are the ADDITIONAL resources over the scheme's
	// own baseline core.
	LUTs      int
	Registers int
	// PctLUTs/PctRegs are relative to that baseline where published.
	PctLUTs, PctRegs float64
	// Source marks provenance: "paper" for values stated in the EILID
	// paper's text, "digitized" for bar heights read off Figure 10,
	// "estimated" for this repo's model.
	Source string
}

// Figure10Data returns the comparison set of the paper's Figure 10.
// EILID, Tiny-CFA and ACFA values (and the percentages) are stated
// numerically in the paper's evaluation text; the remaining schemes'
// absolute bars are digitized from the figure and marked as such.
func Figure10Data() []SchemeCost {
	return []SchemeCost{
		{Name: "EILID", Class: "CFI", Platform: "openMSP430", LUTs: 99, Registers: 34, PctLUTs: 5.3, PctRegs: 4.9, Source: "paper"},
		{Name: "HAFIX", Class: "CFI", Platform: "Intel Siskiyou Peak", LUTs: 1100, Registers: 2200, Source: "digitized"},
		{Name: "HCFI", Class: "CFI", Platform: "Leon3 SPARC V8", LUTs: 1400, Registers: 2600, Source: "digitized"},
		{Name: "Tiny-CFA", Class: "CFA", Platform: "openMSP430", LUTs: 302, Registers: 44, PctLUTs: 16.2, PctRegs: 6.4, Source: "paper"},
		{Name: "ACFA", Class: "CFA", Platform: "openMSP430", LUTs: 501, Registers: 946, PctLUTs: 26.9, PctRegs: 136.7, Source: "paper"},
		{Name: "LO-FAT", Class: "CFA", Platform: "Pulpino", LUTs: 4400, Registers: 2700, Source: "digitized"},
		{Name: "LiteHAX", Class: "CFA", Platform: "Pulpino", LUTs: 3900, Registers: 8900, Source: "digitized"},
	}
}

// BaselineOpenMSP430 is the unmodified core's approximate size implied by
// the paper's percentages (99 LUTs = 5.3%, 34 registers = 4.9%).
func BaselineOpenMSP430() (luts, regs int) { return 1868, 694 }

// MemoryFootnotes returns the §VI observation about the RAM demands of
// the hardware-heavy schemes versus the MSP430's whole address space.
func MemoryFootnotes() []string {
	return []string{
		"LO-FAT requires 216KB of dedicated RAM (APEX measurement)",
		"LiteHAX requires 158KB of dedicated RAM (APEX measurement)",
		"the entire MSP430 address space is 64KB: such schemes cannot fit low-end devices",
	}
}
