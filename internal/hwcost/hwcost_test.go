package hwcost

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPrimitiveSizing(t *testing.T) {
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"eq 6-bit", lutsEq(6), 1},
		{"eq 16-bit", lutsEq(16), 4}, // 3 compare LUTs + 1 AND
		{"mag 16-bit", lutsMag(16), 8},
		{"reduce 1", lutsReduce(1), 0},
		{"reduce 6", lutsReduce(6), 1},
		{"reduce 10", lutsReduce(10), 3}, // 2 + 1
		{"ceil", ceilDiv(7, 2), 4},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestEstimateInEILIDClass(t *testing.T) {
	n := Estimate()
	// The estimate must land in the paper's class: tens-to-low-hundreds
	// of LUTs and tens of registers — and far below the same-platform
	// CFA alternatives (Tiny-CFA +302 LUTs, ACFA +501 LUTs / +946 FF).
	if n.LUTs < 40 || n.LUTs > 302 {
		t.Errorf("monitor estimate %d LUTs: outside the EILID class (paper: 99, must beat Tiny-CFA's 302)", n.LUTs)
	}
	if n.Registers < 4 || n.Registers > 44 {
		t.Errorf("monitor estimate %d registers: outside the EILID class (paper: 34, must beat Tiny-CFA's 44)", n.Registers)
	}
	if len(n.Notes()) < 10 {
		t.Errorf("expected a per-rule accounting, got %d entries", len(n.Notes()))
	}
	for _, note := range n.Notes() {
		if !strings.Contains(note, "LUT") {
			t.Errorf("malformed note %q", note)
		}
	}
}

func TestEstimateMonotoneInBusWidth(t *testing.T) {
	f := func(extra uint8) bool {
		w := 16 + int(extra%17)
		a, b := MonitorEstimate(w), MonitorEstimate(w+1)
		return b.LUTs >= a.LUTs && b.Registers >= a.Registers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFigure10Data(t *testing.T) {
	data := Figure10Data()
	if len(data) != 7 {
		t.Fatalf("Figure 10 has %d schemes, want 7", len(data))
	}
	byName := map[string]SchemeCost{}
	for _, s := range data {
		if s.Name == "" || s.Platform == "" || s.LUTs <= 0 || s.Registers <= 0 {
			t.Errorf("incomplete entry %+v", s)
		}
		if s.Class != "CFI" && s.Class != "CFA" {
			t.Errorf("%s: bad class %q", s.Name, s.Class)
		}
		byName[s.Name] = s
	}
	// The paper-stated values.
	e := byName["EILID"]
	if e.LUTs != 99 || e.Registers != 34 || e.PctLUTs != 5.3 || e.PctRegs != 4.9 {
		t.Errorf("EILID row %+v does not match the paper", e)
	}
	if tc := byName["Tiny-CFA"]; tc.LUTs != 302 || tc.Registers != 44 {
		t.Errorf("Tiny-CFA row %+v", tc)
	}
	if a := byName["ACFA"]; a.LUTs != 501 || a.Registers != 946 {
		t.Errorf("ACFA row %+v", a)
	}
	// The figure's headline relations: EILID is the cheapest overall and
	// cheapest on its own platform.
	for _, s := range data {
		if s.Name == "EILID" {
			continue
		}
		if s.LUTs <= e.LUTs {
			t.Errorf("%s has %d LUTs <= EILID's %d: breaks the figure's claim", s.Name, s.LUTs, e.LUTs)
		}
		if s.Registers <= e.Registers {
			t.Errorf("%s has %d registers <= EILID's %d", s.Name, s.Registers, e.Registers)
		}
	}
}

func TestBaselineImpliedByPercentages(t *testing.T) {
	luts, regs := BaselineOpenMSP430()
	// 99/5.3% and 34/4.9% imply the baseline sizes within rounding.
	if pct := 100 * 99.0 / float64(luts); pct < 5.0 || pct > 5.6 {
		t.Errorf("baseline %d LUTs gives %.2f%%, want ~5.3%%", luts, pct)
	}
	if pct := 100 * 34.0 / float64(regs); pct < 4.6 || pct > 5.2 {
		t.Errorf("baseline %d regs gives %.2f%%, want ~4.9%%", regs, pct)
	}
}

func TestMemoryFootnotes(t *testing.T) {
	notes := MemoryFootnotes()
	if len(notes) != 3 {
		t.Fatalf("footnotes = %d", len(notes))
	}
	if !strings.Contains(notes[0], "216KB") || !strings.Contains(notes[1], "158KB") {
		t.Error("LO-FAT/LiteHAX RAM figures missing")
	}
}
