package isa

// This file fuses predecoded micro-ops into basic blocks — maximal
// straight-line UOp runs the CPU core can execute without returning to
// the per-instruction dispatch loop. A block ends at anything that can
// redirect control flow or change the SR system bits (jumps, CALL,
// RETI, explicit PC/SR destinations): interior ops therefore never
// read or write the program counter and never toggle GIE/CPUOFF, which
// is what lets the executor hoist the interrupt poll, the low-power
// check and the deadline comparison out of the instruction loop and to
// the block boundary.
//
// Like Predecoded, a Blocks table is immutable after construction and
// shared between every machine running byte-identical code; the fleet
// runner's per-ROM predecode artifact carries its block table (see
// Predecoded.Blocks). Staleness stays the CPU core's problem: a block
// is entered only when no bus write has landed in its fetch window
// (the same dirty map that guards individual predecoded entries).

// MaxBlockOps caps the instructions fused into one block. Long
// straight-line runs are split into chainable segments so a block's
// precomputed cycle total stays small against tight peripheral
// deadlines — an unsplit 1000-instruction run would never fit under a
// 1000-cycle timer period and would silently fall back to
// per-instruction dispatch.
const MaxBlockOps = 32

// BlockOp is one fused instruction of a Block.
type BlockOp struct {
	// U points at the shared predecoded lowering.
	U *UOp
	// PC is the instruction's fetch address.
	PC uint16
	// Next is the architectural PC during execution (PC + size).
	Next uint16
	// Cycles is this instruction's cycle cost.
	Cycles uint16
	// Flags reports whether the op's C/Z/N/V results are live: the op
	// writes flag bits some later op (or the world after the block,
	// treated as reading everything) can observe before they are
	// overwritten. Ops that write no flags (MOV, BIC, BIS, jumps) are
	// never marked, so they share the elided path. Dead flags may skip
	// the flag computation — but only where mid-block state is
	// unobservable (the pure executor); any path that can hand control
	// back between ops must keep SR exact.
	Flags bool
}

// Block is a basic block: one or more fused ops plus the precomputed
// totals the run loop compares against its deadline/budget limit before
// committing to the whole block.
type Block struct {
	// Ops is the fused run; nil marks "no block starts here". The
	// slice may alias a longer run's array (suffix sharing).
	Ops []BlockOp
	// Cycles is the precomputed total cycle cost of Ops.
	Cycles uint32
	// Pure marks a block whose every op touches only registers and
	// folded constants — no memory reads or writes at all. Pure blocks
	// cannot reach peripherals, cannot modify code, and cannot be
	// observed mid-block, so the executor runs them with no per-op
	// guards. Blocks with memory operands stay executable but keep the
	// guarded loop (any access that leaves plain RAM ends the block).
	Pure bool
	// W0, W1 bound the dirty-map word indices of every op's fetch
	// address, the range the CPU core scans before entering the block.
	W0, W1 uint16
}

// Blocks is the basic-block table for a predecode window: index i holds
// the block starting at fetch address start + 2*i (Ops == nil when no
// block starts there). Read-only after construction; safe to share.
type Blocks struct {
	start  uint16
	blocks []Block
}

// Table exposes the window base and the block slice for callers that
// inline the lookup (the CPU core). Blocks are shared and read-only.
func (b *Blocks) Table() (start uint16, blocks []Block) {
	if b == nil {
		return 0, nil
	}
	return b.start, b.blocks
}

// At returns the block starting at the fetch address pc, or nil.
func (b *Blocks) At(pc uint16) *Block {
	if b == nil || pc&1 != 0 || pc < b.start {
		return nil
	}
	i := int(pc-b.start) >> 1
	if i >= len(b.blocks) || b.blocks[i].Ops == nil {
		return nil
	}
	return &b.blocks[i]
}

// Len reports how many addresses start a block (for tests and
// diagnostics).
func (b *Blocks) Len() int {
	if b == nil {
		return 0
	}
	n := 0
	for i := range b.blocks {
		if b.blocks[i].Ops != nil {
			n++
		}
	}
	return n
}

// endsBlock reports whether no block may continue past u: the op can
// redirect the PC or rewrite SR system bits (GIE/CPUOFF), so the next
// instruction's address or interrupt context is not known statically.
func endsBlock(u *UOp) bool {
	switch u.Class {
	case UJump, UReti:
		return true
	case UFmt2:
		// CALL writes PC; an in-place op on PC or SR (rra pc, sxt sr)
		// rewrites them through its register location.
		return u.Op == CALL || u.SrcK == SrcReg && (u.SrcReg == PC || u.SrcReg == SR)
	default: // UFmt1, UFmt1Reg
		return u.DstK == DstRegK && (u.DstReg == PC || u.DstReg == SR)
	}
}

// opPure reports whether u cannot touch memory at all: every operand is
// a register or a constant folded at predecode time. RETI (stack reads)
// and PUSH/CALL (stack writes) are impure by construction.
func opPure(u *UOp) bool {
	switch u.Class {
	case UJump:
		return true
	case UReti:
		return false
	case UFmt2:
		return u.Op != PUSH && u.Op != CALL && u.SrcK == SrcReg
	default: // UFmt1, UFmt1Reg
		return (u.SrcK == SrcConst || u.SrcK == SrcReg) && u.DstK == DstRegK
	}
}

// arithFlags is the C|Z|N|V mask as a liveness set.
const arithFlags = FlagC | FlagZ | FlagN | FlagV

// flagSets returns the SR arithmetic-flag bits u writes and reads.
// Reads include SR used as a plain data register (mov sr, r15 observes
// the flags as value bits); over-stating reads only costs dead-flag
// opportunities, while over-stating writes would wrongly kill live
// flags, so writes stay exact.
func flagSets(u *UOp) (writes, reads uint16) {
	switch u.Class {
	case UJump:
		switch u.Op {
		case JNE, JEQ:
			return 0, FlagZ
		case JNC, JC:
			return 0, FlagC
		case JN:
			return 0, FlagN
		case JGE, JL:
			return 0, FlagN | FlagV
		}
		return 0, 0 // JMP
	case UReti:
		// Replaces the whole SR from the stack.
		return arithFlags, 0
	case UFmt2:
		switch u.Op {
		case RRC:
			writes, reads = arithFlags, FlagC
		case RRA, SXT:
			writes = arithFlags
		}
		if u.SrcK == SrcReg && u.SrcReg == SR {
			// The op's operand is the SR itself: the flag bits flow in
			// as data (push sr), and in-place ops rewrite them all.
			reads |= arithFlags
			if u.Op != PUSH && u.Op != CALL {
				writes = arithFlags
			}
		}
		return writes, reads
	}
	switch u.Op {
	case ADDC, SUBC, DADD:
		writes, reads = arithFlags, FlagC
	case ADD, SUB, CMP, BIT, XOR, AND:
		writes = arithFlags
	}
	if u.SrcK == SrcReg && u.SrcReg == SR {
		reads |= arithFlags // flags read as source data
	}
	if u.Class != UFmt1Reg && u.DstK == DstRegK && u.DstReg == SR {
		// The destination is the SR itself: every op replaces the flag
		// bits, and all but MOV read the old value first.
		writes = arithFlags
		if u.Op != MOV {
			reads |= arithFlags
		}
	}
	return writes, reads
}

// markLiveFlags runs a backward flag-liveness pass over one block's
// ops. Everything is live at block exit (the world after the block may
// read SR), so only results overwritten strictly inside the block are
// marked dead.
func markLiveFlags(ops []BlockOp) {
	live := uint16(arithFlags)
	for k := len(ops) - 1; k >= 0; k-- {
		w, r := flagSets(ops[k].U)
		ops[k].Flags = w&live != 0
		live = live&^w | r
	}
}

// BuildBlocks fuses the cache's threaded-code entries into basic
// blocks. Runs are walked once: every address inside a materialized run
// receives the run's suffix (sharing the backing array), and a walk
// that reaches an already-materialized address simply ends its block
// there — the executor chains into the existing block at run time.
func BuildBlocks(p *Predecoded) *Blocks {
	start, entries := p.Table()
	bl := &Blocks{start: start}
	if len(entries) == 0 {
		return bl
	}
	bl.blocks = make([]Block, len(entries))
	var idxs []int
	for i := range entries {
		if bl.blocks[i].Ops != nil || !entries[i].OK || !entries[i].Fast {
			continue
		}
		var ops []BlockOp
		idxs = idxs[:0]
		for j := i; ; {
			e := &entries[j]
			pc := start + uint16(2*j)
			ops = append(ops, BlockOp{U: &e.U, PC: pc, Next: pc + e.Size, Cycles: e.Cycles})
			idxs = append(idxs, j)
			if endsBlock(&e.U) || len(ops) >= MaxBlockOps {
				break
			}
			nj := j + int(e.Size)>>1
			if nj >= len(entries) || !entries[nj].OK || !entries[nj].Fast ||
				bl.blocks[nj].Ops != nil {
				break
			}
			j = nj
		}
		markLiveFlags(ops)
		// Every op address starts its own block: the suffix of this run.
		for d, idx := range idxs {
			sub := ops[d:]
			var cyc uint32
			pure := true
			for k := range sub {
				cyc += uint32(sub[k].Cycles)
				pure = pure && opPure(sub[k].U)
			}
			bl.blocks[idx] = Block{
				Ops:    sub,
				Cycles: cyc,
				Pure:   pure,
				W0:     sub[0].PC >> 1,
				W1:     sub[len(sub)-1].PC >> 1,
			}
		}
	}
	return bl
}
