package isa

import "testing"

// buildMem assembles a sequence of instructions at base and returns a
// read function plus the end address.
func buildMem(base uint16, ins []Instruction) (func(uint16) uint16, uint16) {
	mem := map[uint16]uint16{}
	addr := base
	for _, in := range ins {
		for _, w := range MustEncode(in) {
			mem[addr] = w
			addr += 2
		}
	}
	return func(a uint16) uint16 { return mem[a] }, addr
}

// TestBuildBlocksEndersAndTotals: a straight-line run ends exactly at
// the jump, the block's cycle total is the sum of its entries, and the
// per-op PC/Next/Cycles fields match the predecode table.
func TestBuildBlocksEndersAndTotals(t *testing.T) {
	ins := []Instruction{
		{Op: MOV, Src: ImmExt(0x1234), Dst: RegOp(10)},
		{Op: ADD, Src: RegOp(10), Dst: RegOp(11)},
		{Op: XOR, Src: RegOp(11), Dst: RegOp(12)},
		{Op: JNE, JumpOffset: -4},
		{Op: MOV, Src: Imm(1), Dst: RegOp(4)}, // next block
	}
	read, end := buildMem(0x1000, ins)
	p := Predecode(read, 0x1000, end, nil)
	b := BuildBlocks(p)

	blk := b.At(0x1000)
	if blk == nil {
		t.Fatal("no block at the run head")
	}
	if len(blk.Ops) != 4 {
		t.Fatalf("block has %d ops, want 4 (ends at the jump)", len(blk.Ops))
	}
	var cyc uint32
	pc := uint16(0x1000)
	for k, op := range blk.Ops {
		e := p.EntryAt(pc)
		if op.PC != pc || op.Next != pc+e.Size || op.Cycles != e.Cycles {
			t.Errorf("op %d: pc/next/cycles %04x/%04x/%d, want %04x/%04x/%d",
				k, op.PC, op.Next, op.Cycles, pc, pc+e.Size, e.Cycles)
		}
		cyc += uint32(op.Cycles)
		pc = op.Next
	}
	if blk.Cycles != cyc {
		t.Errorf("block cycle total %d, want %d", blk.Cycles, cyc)
	}
	if !blk.Pure {
		t.Error("register-only block not marked pure")
	}
	if b.At(pc) == nil {
		t.Errorf("no block after the jump at 0x%04x", pc)
	}
}

// TestBuildBlocksSuffixSharing: every interior address of a run starts
// its own block, and the suffix aliases the head block's array.
func TestBuildBlocksSuffixSharing(t *testing.T) {
	ins := []Instruction{
		{Op: ADD, Src: RegOp(10), Dst: RegOp(11)}, // 0x1000
		{Op: XOR, Src: RegOp(11), Dst: RegOp(12)}, // 0x1002
		{Op: AND, Src: RegOp(12), Dst: RegOp(13)}, // 0x1004
		{Op: JMP, JumpOffset: -1},                 // 0x1006
	}
	read, end := buildMem(0x1000, ins)
	b := BuildBlocks(Predecode(read, 0x1000, end, nil))

	head := b.At(0x1000)
	mid := b.At(0x1002)
	if head == nil || mid == nil {
		t.Fatal("head or interior block missing")
	}
	if len(mid.Ops) != len(head.Ops)-1 {
		t.Fatalf("interior block has %d ops, want %d", len(mid.Ops), len(head.Ops)-1)
	}
	if &mid.Ops[0] != &head.Ops[1] {
		t.Error("interior block does not alias the head block's op array")
	}
	if mid.Cycles != head.Cycles-uint32(head.Ops[0].Cycles) {
		t.Errorf("suffix cycles %d, want %d", mid.Cycles, head.Cycles-uint32(head.Ops[0].Cycles))
	}
}

// TestBuildBlocksPurity: memory operands make a block impure; CALL,
// PUSH and RETI are impure (stack traffic).
func TestBuildBlocksPurity(t *testing.T) {
	ins := []Instruction{
		{Op: ADD, Src: RegOp(10), Dst: RegOp(11)},
		{Op: MOV, Src: Operand{Mode: ModeAbsolute, X: 0x0200}, Dst: RegOp(12)},
		{Op: JMP, JumpOffset: -1},
	}
	read, end := buildMem(0x1000, ins)
	b := BuildBlocks(Predecode(read, 0x1000, end, nil))
	if blk := b.At(0x1000); blk == nil || blk.Pure {
		t.Errorf("block with a memory load marked pure: %+v", blk)
	}
	if blk := b.At(0x1006); blk == nil || !blk.Pure {
		t.Errorf("jump-only block not pure: %+v", blk)
	}

	ins = []Instruction{
		{Op: PUSH, Src: RegOp(10)},
		{Op: JMP, JumpOffset: -1},
	}
	read, end = buildMem(0x2000, ins)
	b = BuildBlocks(Predecode(read, 0x2000, end, nil))
	if blk := b.At(0x2000); blk == nil || blk.Pure {
		t.Errorf("PUSH block marked pure: %+v", blk)
	}
}

// TestBuildBlocksCap: straight-line runs split at MaxBlockOps so the
// precomputed totals stay admissible under tight deadlines.
func TestBuildBlocksCap(t *testing.T) {
	var ins []Instruction
	for i := 0; i < MaxBlockOps+5; i++ {
		ins = append(ins, Instruction{Op: ADD, Src: Imm(1), Dst: RegOp(10)})
	}
	ins = append(ins, Instruction{Op: JMP, JumpOffset: -1})
	read, end := buildMem(0x1000, ins)
	b := BuildBlocks(Predecode(read, 0x1000, end, nil))
	blk := b.At(0x1000)
	if blk == nil || len(blk.Ops) != MaxBlockOps {
		t.Fatalf("head block has %d ops, want the cap %d", len(blk.Ops), MaxBlockOps)
	}
	next := b.At(blk.Ops[len(blk.Ops)-1].Next)
	if next == nil || len(next.Ops) != 6 {
		t.Fatalf("tail block missing or wrong size after the cap")
	}
}

// TestBuildBlocksSRWriteEnds: explicit SR destinations end a block
// (they can toggle GIE/CPUOFF).
func TestBuildBlocksSRWriteEnds(t *testing.T) {
	ins := []Instruction{
		{Op: ADD, Src: RegOp(10), Dst: RegOp(11)},
		{Op: BIS, Src: Imm(8), Dst: RegOp(SR)}, // eint
		{Op: ADD, Src: RegOp(11), Dst: RegOp(12)},
		{Op: JMP, JumpOffset: -1},
	}
	read, end := buildMem(0x1000, ins)
	b := BuildBlocks(Predecode(read, 0x1000, end, nil))
	blk := b.At(0x1000)
	if blk == nil || len(blk.Ops) != 2 {
		t.Fatalf("block has %d ops, want 2 (ends at the SR write)", len(blk.Ops))
	}
}

// TestMarkLiveFlags: flag results overwritten before any reader are
// dead; the last writer before a conditional jump (and before block
// exit) stays live, and SR read as a data register revives liveness.
func TestMarkLiveFlags(t *testing.T) {
	ins := []Instruction{
		{Op: ADD, Src: Imm(1), Dst: RegOp(10)},    // flags dead (xor overwrites)
		{Op: XOR, Src: RegOp(10), Dst: RegOp(11)}, // flags dead (sub overwrites)
		{Op: SUB, Src: Imm(1), Dst: RegOp(12)},    // live: jne reads Z
		{Op: JNE, JumpOffset: -4},
	}
	read, end := buildMem(0x1000, ins)
	b := BuildBlocks(Predecode(read, 0x1000, end, nil))
	blk := b.At(0x1000)
	if blk == nil || len(blk.Ops) != 4 {
		t.Fatalf("unexpected block shape: %+v", blk)
	}
	// The jump writes no flags, so it is never marked live.
	for k, want := range []bool{false, false, true, false} {
		if blk.Ops[k].Flags != want {
			t.Errorf("op %d liveness = %v, want %v", k, blk.Ops[k].Flags, want)
		}
	}

	// mov sr, r15 reads the flags as data: the preceding writer is live.
	ins = []Instruction{
		{Op: ADD, Src: Imm(1), Dst: RegOp(10)},    // live: mov sr reads flags
		{Op: MOV, Src: RegOp(SR), Dst: RegOp(15)}, // data read of SR
		{Op: SUB, Src: Imm(1), Dst: RegOp(12)},
		{Op: JNE, JumpOffset: -4},
	}
	read, end = buildMem(0x2000, ins)
	b = BuildBlocks(Predecode(read, 0x2000, end, nil))
	blk = b.At(0x2000)
	if blk == nil || len(blk.Ops) != 4 {
		t.Fatalf("unexpected block shape: %+v", blk)
	}
	if !blk.Ops[0].Flags {
		t.Error("flags before a data read of SR must stay live")
	}

	// The final writer is always live: the world after the block reads SR.
	if !blk.Ops[2].Flags {
		t.Error("last flag writer of a block must stay live")
	}
}
