package isa

// Cycle accounting follows the classic MSP430 CPU table (TI SLAU144,
// tables 3-14/3-15), which is what the openMSP430 core implements. The
// constant-generator immediates cost register-mode time because they need
// no extension-word fetch.

// Interrupt latency constants.
const (
	CyclesInterruptEntry = 6 // accept IRQ: push PC, push SR, fetch vector
	CyclesReti           = 5
	CyclesJump           = 2 // all format III jumps, taken or not
)

// srcCat classifies a source operand for the cycle matrix.
func srcCat(o Operand, byteOp bool) int {
	switch o.Mode {
	case ModeRegister:
		return 0
	case ModeIndirect:
		return 1
	case ModeIndirectInc:
		return 2
	case ModeImmediate:
		if _, ok := constGen(o.X, byteOp); ok && !o.NoCG {
			return 0 // constant generator: register timing
		}
		return 3
	default: // indexed, symbolic, absolute
		return 4
	}
}

// fmt1Cycles[srcCat][dstCat] with dstCat 0=Rn, 1=PC, 2=memory.
var fmt1Cycles = [5][3]int{
	{1, 2, 4}, // src Rn / constant generator
	{2, 2, 5}, // src @Rn
	{2, 3, 5}, // src @Rn+
	{2, 3, 5}, // src #N (extension word)
	{3, 3, 6}, // src x(Rn) / EDE / &EDE
}

// Cycles returns the execution time of the instruction in CPU clock
// cycles (MCLK), assuming zero-wait-state memory as on openMSP430.
func Cycles(in Instruction) int {
	switch {
	case in.Op.IsJump():
		return CyclesJump
	case in.Op == RETI:
		return CyclesReti
	case in.Op.IsOneOperand():
		return fmt2CycleCount(in)
	default:
		s := srcCat(in.Src, in.Byte)
		var d int
		switch {
		case in.Dst.Mode == ModeRegister && in.Dst.Reg == PC:
			d = 1
		case in.Dst.Mode == ModeRegister:
			d = 0
		default:
			d = 2
		}
		return fmt1Cycles[s][d]
	}
}

func fmt2CycleCount(in Instruction) int {
	cat := srcCat(in.Src, in.Byte)
	switch in.Op {
	case RRA, RRC, SWPB, SXT:
		// Rn:1 @Rn:3 @Rn+:3 x/EDE/&:4 (no immediate form)
		return [5]int{1, 3, 3, 3, 4}[cat]
	case PUSH:
		// Rn:3 @Rn:4 @Rn+:5 #N:4 x/EDE/&:5
		return [5]int{3, 4, 5, 4, 5}[cat]
	case CALL:
		// Rn:4 @Rn:4 @Rn+:5 #N:5 x/EDE:5 &EDE:6
		if in.Src.Mode == ModeAbsolute {
			return 6
		}
		return [5]int{4, 4, 5, 5, 5}[cat]
	}
	return 1
}
