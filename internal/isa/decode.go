package isa

import "fmt"

// fmt1Ops is the inverse of fmt1Nibble, indexed by nibble-4.
var fmt1Ops = [12]Opcode{MOV, ADD, ADDC, SUBC, SUB, CMP, DADD, BIT, BIC, BIS, XOR, AND}

// fmt2Ops is the inverse of fmt2Field.
var fmt2Ops = [7]Opcode{RRC, SWPB, RRA, SXT, PUSH, CALL, RETI}

// jumpOps is the inverse of jumpCond.
var jumpOps = [8]Opcode{JNE, JEQ, JNC, JC, JN, JGE, JL, JMP}

// DecodeError describes a word sequence that is not a valid instruction.
type DecodeError struct {
	Word uint16
	Why  string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: cannot decode word 0x%04x: %s", e.Word, e.Why)
}

// raiseSrc reconstructs a source Operand from register/As bits, consuming
// an extension word via next() when required. It inverts the constant
// generators exactly as the CPU front-end does.
func raiseSrc(reg Reg, as uint16, byteOp bool, next func() (uint16, bool)) (Operand, error) {
	// Constant generators first.
	if reg == CG {
		switch as {
		case 0:
			return Imm(0), nil
		case 1:
			return Imm(1), nil
		case 2:
			return Imm(2), nil
		case 3:
			if byteOp {
				return Imm(0x00FF), nil
			}
			return Imm(0xFFFF), nil
		}
	}
	if reg == SR {
		switch as {
		case 2:
			return Imm(4), nil
		case 3:
			return Imm(8), nil
		}
	}
	switch as {
	case 0:
		return RegOp(reg), nil
	case 1:
		ext, ok := next()
		if !ok {
			return Operand{}, fmt.Errorf("missing source extension word")
		}
		switch reg {
		case PC:
			return Operand{Mode: ModeSymbolic, Reg: PC, X: ext}, nil
		case SR:
			return Abs(ext), nil
		default:
			return Indexed(ext, reg), nil
		}
	case 2:
		return Indirect(reg), nil
	case 3:
		if reg == PC {
			ext, ok := next()
			if !ok {
				return Operand{}, fmt.Errorf("missing immediate extension word")
			}
			op := Imm(ext)
			if _, cgOK := constGen(ext, byteOp); cgOK {
				// The encoder would have used a constant generator for
				// this value; mark the operand so it re-encodes with the
				// extension word it came from.
				op.NoCG = true
			}
			return op, nil
		}
		return IndirectInc(reg), nil
	}
	return Operand{}, fmt.Errorf("bad addressing mode bits")
}

// raiseDst reconstructs a destination Operand.
func raiseDst(reg Reg, ad uint16, next func() (uint16, bool)) (Operand, error) {
	if ad == 0 {
		return RegOp(reg), nil
	}
	ext, ok := next()
	if !ok {
		return Operand{}, fmt.Errorf("missing destination extension word")
	}
	switch reg {
	case PC:
		return Operand{Mode: ModeSymbolic, Reg: PC, X: ext}, nil
	case SR:
		return Abs(ext), nil
	default:
		return Indexed(ext, reg), nil
	}
}

// Decode decodes one instruction from the start of words, returning the
// instruction and the number of 16-bit words consumed.
func Decode(words []uint16) (Instruction, int, error) {
	if len(words) == 0 {
		return Instruction{}, 0, &DecodeError{0, "empty input"}
	}
	w := words[0]
	used := 1
	next := func() (uint16, bool) {
		if used >= len(words) {
			return 0, false
		}
		v := words[used]
		used++
		return v, true
	}

	switch {
	case w&0xE000 == 0x2000: // format III: jump
		op := jumpOps[(w>>10)&0x7]
		off := int16(w & 0x03FF)
		if off&0x0200 != 0 { // sign-extend 10-bit field
			off |= ^int16(0x03FF)
		}
		return Instruction{Op: op, JumpOffset: off}, used, nil

	case w&0xFC00 == 0x1000: // format II: single operand
		field := (w >> 7) & 0x7
		if field > 6 {
			return Instruction{}, 0, &DecodeError{w, "reserved single-operand opcode"}
		}
		op := fmt2Ops[field]
		byteOp := w&0x0040 != 0
		if op == RETI {
			// Only the canonical encoding is accepted; the operand bits
			// are unused by hardware but we keep decode∘encode = id.
			if w != 0x1300 {
				return Instruction{}, 0, &DecodeError{w, "non-canonical reti encoding"}
			}
			return Instruction{Op: RETI}, used, nil
		}
		if byteOp && (op == SWPB || op == SXT || op == CALL) {
			return Instruction{}, 0, &DecodeError{w, op.String() + " has no byte form"}
		}
		as := (w >> 4) & 0x3
		reg := Reg(w & 0xF)
		src, err := raiseSrc(reg, as, byteOp, next)
		if err != nil {
			return Instruction{}, 0, &DecodeError{w, err.Error()}
		}
		return Instruction{Op: op, Byte: byteOp, Src: src}, used, nil

	case w>>12 >= 0x4: // format I: double operand
		op := fmt1Ops[w>>12-4]
		byteOp := w&0x0040 != 0
		srcReg := Reg((w >> 8) & 0xF)
		as := (w >> 4) & 0x3
		ad := (w >> 7) & 0x1
		dstReg := Reg(w & 0xF)
		src, err := raiseSrc(srcReg, as, byteOp, next)
		if err != nil {
			return Instruction{}, 0, &DecodeError{w, err.Error()}
		}
		dst, err := raiseDst(dstReg, ad, next)
		if err != nil {
			return Instruction{}, 0, &DecodeError{w, err.Error()}
		}
		return Instruction{Op: op, Byte: byteOp, Src: src, Dst: dst}, used, nil
	}
	return Instruction{}, 0, &DecodeError{w, "unrecognized format"}
}
