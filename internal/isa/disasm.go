package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders the instruction in assembler syntax. When the
// instruction matches a well-known emulated form (ret, pop, br, nop, clr,
// tst, inc, dec, eint, dint, ...), the alias is shown because that is how
// the code was almost certainly written; the raw form is always accepted
// back by the assembler, so the rendering stays round-trippable.
func Disassemble(in Instruction) string {
	if s, ok := emulatedAlias(in); ok {
		return s
	}
	suffix := ""
	if in.Byte {
		suffix = ".b"
	}
	switch {
	case in.Op.IsJump():
		// Offsets render as $+n (assembler-relative) so the text is
		// position independent.
		delta := 2 + 2*int(in.JumpOffset)
		return fmt.Sprintf("%s $%+d", in.Op, delta)
	case in.Op == RETI:
		return "reti"
	case in.Op.IsOneOperand():
		return fmt.Sprintf("%s%s %s", in.Op, suffix, in.Src)
	default:
		return fmt.Sprintf("%s%s %s, %s", in.Op, suffix, in.Src, in.Dst)
	}
}

// emulatedAlias recognizes the TI emulated-instruction idioms.
func emulatedAlias(in Instruction) (string, bool) {
	b := ""
	if in.Byte {
		b = ".b"
	}
	isImm := func(o Operand, v uint16) bool { return o.Mode == ModeImmediate && o.X == v }
	switch in.Op {
	case MOV:
		switch {
		case in.Src.Mode == ModeIndirectInc && in.Src.Reg == SP && in.Dst == RegOp(PC) && !in.Byte:
			return "ret", true
		case in.Src.Mode == ModeIndirectInc && in.Src.Reg == SP && !in.Byte:
			return "pop " + in.Dst.String(), true
		case in.Dst == RegOp(PC) && !in.Byte && in.Src.Mode == ModeImmediate:
			return fmt.Sprintf("br #0x%04x", in.Src.X), true
		case in.Dst == RegOp(PC) && !in.Byte && in.Src.Mode == ModeRegister:
			return "br " + in.Src.String(), true
		case isImm(in.Src, 0) && in.Dst.Mode == ModeRegister && in.Dst.Reg == CG:
			return "nop", true
		case isImm(in.Src, 0):
			return "clr" + b + " " + in.Dst.String(), true
		}
	case ADD:
		if isImm(in.Src, 1) {
			return "inc" + b + " " + in.Dst.String(), true
		}
		if isImm(in.Src, 2) && !in.Byte {
			return "incd " + in.Dst.String(), true
		}
		if in.Src == in.Dst && in.Src.Mode == ModeRegister {
			return "rla" + b + " " + in.Dst.String(), true
		}
	case SUB:
		if isImm(in.Src, 1) {
			return "dec" + b + " " + in.Dst.String(), true
		}
		if isImm(in.Src, 2) && !in.Byte {
			return "decd " + in.Dst.String(), true
		}
	case CMP:
		if isImm(in.Src, 0) {
			return "tst" + b + " " + in.Dst.String(), true
		}
	case XOR:
		if (isImm(in.Src, 0xFFFF) && !in.Byte) || (isImm(in.Src, 0x00FF) && in.Byte) {
			return "inv" + b + " " + in.Dst.String(), true
		}
	case BIC:
		if in.Dst == RegOp(SR) && !in.Byte {
			switch {
			case isImm(in.Src, FlagC):
				return "clrc", true
			case isImm(in.Src, FlagZ):
				return "clrz", true
			case isImm(in.Src, FlagN):
				return "clrn", true
			case isImm(in.Src, FlagGIE):
				return "dint", true
			}
		}
	case BIS:
		if in.Dst == RegOp(SR) && !in.Byte {
			switch {
			case isImm(in.Src, FlagC):
				return "setc", true
			case isImm(in.Src, FlagZ):
				return "setz", true
			case isImm(in.Src, FlagN):
				return "setn", true
			case isImm(in.Src, FlagGIE):
				return "eint", true
			}
		}
	case ADDC:
		if isImm(in.Src, 0) {
			return "adc" + b + " " + in.Dst.String(), true
		}
		if in.Src == in.Dst && in.Src.Mode == ModeRegister {
			return "rlc" + b + " " + in.Dst.String(), true
		}
	case SUBC:
		if isImm(in.Src, 0) {
			return "sbc" + b + " " + in.Dst.String(), true
		}
	case DADD:
		if isImm(in.Src, 0) {
			return "dadc" + b + " " + in.Dst.String(), true
		}
	}
	return "", false
}

// DisassembleWords decodes and renders every instruction in words,
// returning one line per instruction; it is used by listing generation
// and debug traces. Undecodable words render as .word directives.
func DisassembleWords(words []uint16) []string {
	var out []string
	for i := 0; i < len(words); {
		in, n, err := Decode(words[i:])
		if err != nil {
			out = append(out, fmt.Sprintf(".word 0x%04x", words[i]))
			i++
			continue
		}
		out = append(out, Disassemble(in))
		i += n
	}
	return out
}

// FormatWords renders machine words as space-separated hex, as used in
// listing files.
func FormatWords(words []uint16) string {
	parts := make([]string, len(words))
	for i, w := range words {
		parts[i] = fmt.Sprintf("%04x", w)
	}
	return strings.Join(parts, " ")
}
