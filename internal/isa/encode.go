package isa

import "fmt"

// Format I opcode nibbles (bits 15..12).
var fmt1Nibble = map[Opcode]uint16{
	MOV: 0x4, ADD: 0x5, ADDC: 0x6, SUBC: 0x7, SUB: 0x8, CMP: 0x9,
	DADD: 0xA, BIT: 0xB, BIC: 0xC, BIS: 0xD, XOR: 0xE, AND: 0xF,
}

// Format II opcode field (bits 9..7) under the 000100 prefix.
var fmt2Field = map[Opcode]uint16{
	RRC: 0, SWPB: 1, RRA: 2, SXT: 3, PUSH: 4, CALL: 5, RETI: 6,
}

// Format III condition field (bits 12..10).
var jumpCond = map[Opcode]uint16{
	JNE: 0, JEQ: 1, JNC: 2, JC: 3, JN: 4, JGE: 5, JL: 6, JMP: 7,
}

// srcEnc is the lowered bit-level form of a source operand.
type srcEnc struct {
	reg    Reg
	as     uint16
	ext    uint16
	hasExt bool
}

// lowerSrc maps an Operand to register/As bits plus an optional extension
// word, applying the constant generators for eligible immediates.
func lowerSrc(o Operand, byteOp bool) (srcEnc, error) {
	switch o.Mode {
	case ModeRegister:
		return srcEnc{reg: o.Reg, as: 0}, nil
	case ModeIndexed:
		return srcEnc{reg: o.Reg, as: 1, ext: o.X, hasExt: true}, nil
	case ModeSymbolic:
		return srcEnc{reg: PC, as: 1, ext: o.X, hasExt: true}, nil
	case ModeAbsolute:
		return srcEnc{reg: SR, as: 1, ext: o.X, hasExt: true}, nil
	case ModeIndirect:
		return srcEnc{reg: o.Reg, as: 2}, nil
	case ModeIndirectInc:
		return srcEnc{reg: o.Reg, as: 3}, nil
	case ModeImmediate:
		if cg, ok := constGen(o.X, byteOp); ok && !o.NoCG {
			return srcEnc{reg: cg.Reg, as: cg.As}, nil
		}
		return srcEnc{reg: PC, as: 3, ext: o.X, hasExt: true}, nil
	}
	return srcEnc{}, fmt.Errorf("isa: cannot encode source operand %v", o)
}

// lowerDst maps an Operand to register/Ad bits plus an optional extension
// word.
func lowerDst(o Operand) (reg Reg, ad uint16, ext uint16, hasExt bool, err error) {
	switch o.Mode {
	case ModeRegister:
		return o.Reg, 0, 0, false, nil
	case ModeIndexed:
		return o.Reg, 1, o.X, true, nil
	case ModeSymbolic:
		return PC, 1, o.X, true, nil
	case ModeAbsolute:
		return SR, 1, o.X, true, nil
	}
	return 0, 0, 0, false, fmt.Errorf("isa: cannot encode destination operand %v", o)
}

// Encode lowers the instruction to its 16-bit word sequence (1 to 3 words:
// opcode word, then source extension, then destination extension).
func Encode(in Instruction) ([]uint16, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	bw := uint16(0)
	if in.Byte {
		bw = 1
	}
	switch {
	case in.Op.IsJump():
		off := uint16(in.JumpOffset) & 0x03FF
		return []uint16{0x2000 | jumpCond[in.Op]<<10 | off}, nil

	case in.Op == RETI:
		return []uint16{0x1300}, nil

	case in.Op.IsOneOperand():
		s, err := lowerSrc(in.Src, in.Byte)
		if err != nil {
			return nil, err
		}
		w := 0x1000 | fmt2Field[in.Op]<<7 | bw<<6 | s.as<<4 | uint16(s.reg)
		if s.hasExt {
			return []uint16{w, s.ext}, nil
		}
		return []uint16{w}, nil

	default: // format I
		s, err := lowerSrc(in.Src, in.Byte)
		if err != nil {
			return nil, err
		}
		dreg, ad, dext, dHasExt, err := lowerDst(in.Dst)
		if err != nil {
			return nil, err
		}
		w := fmt1Nibble[in.Op]<<12 | uint16(s.reg)<<8 | ad<<7 | bw<<6 | s.as<<4 | uint16(dreg)
		words := []uint16{w}
		if s.hasExt {
			words = append(words, s.ext)
		}
		if dHasExt {
			words = append(words, dext)
		}
		return words, nil
	}
}

// MustEncode is Encode for statically known-good instructions; it panics
// on error and is intended for generated code paths (trampolines, EILIDsw).
func MustEncode(in Instruction) []uint16 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}
