// Package isa models the MSP430 instruction-set architecture used by the
// openMSP430 core that EILID targets: the three instruction formats
// (double-operand, single-operand, jump), all seven addressing modes, the
// constant generators, byte/word operation widths, and the TI cycle table.
//
// The package is deliberately free of any machine state: it defines the
// instruction representation plus pure encode/decode/disassemble/cycle
// functions. The CPU core (internal/cpu) and the assembler (internal/asm)
// are both built on top of it, which keeps the two sides of the toolchain
// (what we emit and what we execute) provably consistent — the round-trip
// property tests in this package are the anchor for that.
package isa

import "fmt"

// Reg is one of the sixteen MSP430 registers. R0..R3 have architectural
// roles; R4..R15 are general purpose. EILID additionally reserves R4..R7
// by software convention (paper Table III).
type Reg uint8

// Architectural register roles.
const (
	PC Reg = 0 // program counter (r0)
	SP Reg = 1 // stack pointer (r1)
	SR Reg = 2 // status register / constant generator 1 (r2)
	CG Reg = 3 // constant generator 2 (r3)
)

// NumRegs is the size of the register file.
const NumRegs = 16

// String returns the conventional assembly name of the register.
func (r Reg) String() string {
	switch r {
	case PC:
		return "pc"
	case SP:
		return "sp"
	case SR:
		return "sr"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Status-register flag bits.
const (
	FlagC      uint16 = 1 << 0 // carry
	FlagZ      uint16 = 1 << 1 // zero
	FlagN      uint16 = 1 << 2 // negative
	FlagGIE    uint16 = 1 << 3 // general interrupt enable
	FlagCPUOff uint16 = 1 << 4 // CPU off (low-power mode)
	FlagOscOff uint16 = 1 << 5
	FlagSCG0   uint16 = 1 << 6
	FlagSCG1   uint16 = 1 << 7
	FlagV      uint16 = 1 << 8 // signed overflow
)

// AddrMode is a source/destination addressing mode. The seven MSP430 modes
// are represented explicitly rather than as raw As/Ad bit patterns; the
// encoder lowers them (including constant-generator immediates) and the
// decoder raises them back.
type AddrMode uint8

const (
	// ModeRegister operates on Rn directly.
	ModeRegister AddrMode = iota
	// ModeIndexed is x(Rn): memory at Rn+x. With Rn=PC this is the
	// encoding of symbolic mode; with Rn=SR it encodes absolute mode,
	// which we distinguish as ModeAbsolute.
	ModeIndexed
	// ModeAbsolute is &addr: memory at the absolute address.
	ModeAbsolute
	// ModeIndirect is @Rn: memory at Rn (source only).
	ModeIndirect
	// ModeIndirectInc is @Rn+: memory at Rn, then Rn advances by the
	// operand width (source only).
	ModeIndirectInc
	// ModeImmediate is #n (source only), encoded as @PC+ or via the
	// constant generators for n ∈ {-1,0,1,2,4,8}.
	ModeImmediate
	// ModeSymbolic is addr(PC)-relative ("EDE" in TI syntax). The
	// assembler resolves labels to this mode when asked; X holds the
	// already-computed displacement from the extension-word address.
	ModeSymbolic
)

func (m AddrMode) String() string {
	switch m {
	case ModeRegister:
		return "register"
	case ModeIndexed:
		return "indexed"
	case ModeAbsolute:
		return "absolute"
	case ModeIndirect:
		return "indirect"
	case ModeIndirectInc:
		return "indirect++"
	case ModeImmediate:
		return "immediate"
	case ModeSymbolic:
		return "symbolic"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Operand is one instruction operand.
type Operand struct {
	Mode AddrMode
	Reg  Reg    // register for register/indexed/indirect modes
	X    uint16 // index displacement, absolute address, or immediate value
	// NoCG forces an immediate to be encoded with an extension word even
	// when a constant generator could produce the value. The assembler
	// needs this for forward references (the value is unknown when the
	// instruction is sized), and the decoder sets it when it encounters
	// such an encoding so that decode∘encode is the identity.
	NoCG bool
}

// Reg operand constructor.
func RegOp(r Reg) Operand { return Operand{Mode: ModeRegister, Reg: r} }

// Imm returns an immediate operand #v (constant generators allowed).
func Imm(v uint16) Operand { return Operand{Mode: ModeImmediate, X: v} }

// ImmExt returns an immediate operand #v that must use an extension word.
func ImmExt(v uint16) Operand { return Operand{Mode: ModeImmediate, X: v, NoCG: true} }

// Indexed returns an x(Rn) operand.
func Indexed(x uint16, r Reg) Operand { return Operand{Mode: ModeIndexed, Reg: r, X: x} }

// Abs returns an &addr operand.
func Abs(addr uint16) Operand { return Operand{Mode: ModeAbsolute, X: addr} }

// Indirect returns an @Rn operand.
func Indirect(r Reg) Operand { return Operand{Mode: ModeIndirect, Reg: r} }

// IndirectInc returns an @Rn+ operand.
func IndirectInc(r Reg) Operand { return Operand{Mode: ModeIndirectInc, Reg: r} }

func (o Operand) String() string {
	switch o.Mode {
	case ModeRegister:
		return o.Reg.String()
	case ModeIndexed:
		return fmt.Sprintf("%d(%s)", int16(o.X), o.Reg)
	case ModeAbsolute:
		return fmt.Sprintf("&0x%04x", o.X)
	case ModeIndirect:
		return "@" + o.Reg.String()
	case ModeIndirectInc:
		return "@" + o.Reg.String() + "+"
	case ModeImmediate:
		return fmt.Sprintf("#0x%04x", o.X)
	case ModeSymbolic:
		return fmt.Sprintf("%d(pc)", int16(o.X))
	}
	return "?"
}

// Opcode identifies an MSP430 operation. The numeric values are internal;
// format-specific encodings live in encode.go/decode.go.
type Opcode uint8

// Double-operand (format I) opcodes.
const (
	MOV Opcode = iota
	ADD
	ADDC
	SUBC
	SUB
	CMP
	DADD
	BIT
	BIC
	BIS
	XOR
	AND
	// Single-operand (format II) opcodes.
	RRC
	SWPB
	RRA
	SXT
	PUSH
	CALL
	RETI
	// Jump (format III) opcodes.
	JNE // JNZ
	JEQ // JZ
	JNC
	JC
	JN
	JGE
	JL
	JMP
	numOpcodes
)

var opNames = [numOpcodes]string{
	MOV: "mov", ADD: "add", ADDC: "addc", SUBC: "subc", SUB: "sub",
	CMP: "cmp", DADD: "dadd", BIT: "bit", BIC: "bic", BIS: "bis",
	XOR: "xor", AND: "and",
	RRC: "rrc", SWPB: "swpb", RRA: "rra", SXT: "sxt",
	PUSH: "push", CALL: "call", RETI: "reti",
	JNE: "jne", JEQ: "jeq", JNC: "jnc", JC: "jc",
	JN: "jn", JGE: "jge", JL: "jl", JMP: "jmp",
}

func (op Opcode) String() string {
	if op < numOpcodes {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTwoOperand reports whether op is a format I (double-operand) opcode.
func (op Opcode) IsTwoOperand() bool { return op <= AND }

// IsOneOperand reports whether op is a format II (single-operand) opcode.
func (op Opcode) IsOneOperand() bool { return op >= RRC && op <= RETI }

// IsJump reports whether op is a format III (relative jump) opcode.
func (op Opcode) IsJump() bool { return op >= JNE && op <= JMP }

// WritesDst reports whether a format I opcode writes its destination.
// CMP and BIT only set flags.
func (op Opcode) WritesDst() bool { return op != CMP && op != BIT }

// SetsFlags reports whether the opcode updates the status flags.
func (op Opcode) SetsFlags() bool {
	switch op {
	case MOV, BIC, BIS, PUSH, CALL, SWPB:
		return false
	}
	return true
}

// Instruction is a fully decoded MSP430 instruction.
type Instruction struct {
	Op   Opcode
	Byte bool    // .b suffix: 8-bit operation width (formats I and II)
	Src  Operand // format I source; format II operand
	Dst  Operand // format I destination
	// JumpOffset is the signed word offset of a format III jump:
	// target = addr + 2 + 2*JumpOffset, with JumpOffset in [-1024, 1022]/2
	// i.e. the 10-bit signed field.
	JumpOffset int16
}

// Words returns the encoded length of the instruction in 16-bit words
// (1 to 3). It mirrors Encode without allocating.
func (in Instruction) Words() int {
	switch {
	case in.Op.IsJump():
		return 1
	case in.Op == RETI:
		return 1
	case in.Op.IsOneOperand():
		return 1 + extWords(in.Src, in.Byte)
	default:
		return 1 + extWords(in.Src, in.Byte) + dstExtWords(in.Dst)
	}
}

// Size returns the encoded length in bytes.
func (in Instruction) Size() uint16 { return uint16(in.Words()) * 2 }

// ExtOffsets returns the byte offsets, relative to the instruction start,
// of the source and destination extension words together with presence
// flags. The CPU core needs them to compute symbolic (PC-relative)
// effective addresses, which are anchored at the extension word itself.
func (in Instruction) ExtOffsets() (srcOff int, srcHas bool, dstOff int, dstHas bool) {
	if in.Op.IsJump() || in.Op == RETI {
		return 0, false, 0, false
	}
	off := 2
	if extWords(in.Src, in.Byte) == 1 {
		srcOff, srcHas = off, true
		off += 2
	}
	if in.Op.IsTwoOperand() && dstExtWords(in.Dst) == 1 {
		dstOff, dstHas = off, true
	}
	return
}

// extWords reports how many extension words the source operand needs,
// accounting for the constant generators (which need none).
func extWords(o Operand, byteOp bool) int {
	switch o.Mode {
	case ModeRegister, ModeIndirect, ModeIndirectInc:
		return 0
	case ModeImmediate:
		if _, ok := constGen(o.X, byteOp); ok && !o.NoCG {
			return 0
		}
		return 1
	default: // indexed, absolute, symbolic
		return 1
	}
}

// dstExtWords reports extension words needed by a destination operand.
// Destinations only support register, indexed, absolute and symbolic modes.
func dstExtWords(o Operand) int {
	if o.Mode == ModeRegister {
		return 0
	}
	return 1
}

// constGen maps an immediate value to a constant-generator (reg, As)
// encoding if one exists. Byte operations compare against the low byte
// for -1 (0xFF) since the generated constant is width-truncated by the CPU.
func constGen(v uint16, byteOp bool) (cg struct {
	Reg Reg
	As  uint16
}, ok bool) {
	if byteOp {
		// For byte ops the effective constant is the low byte; 0x00FF
		// behaves as -1. Only canonicalize exact matches.
		if v == 0x00FF {
			return cgEnc(CG, 3), true
		}
	}
	switch v {
	case 0:
		return cgEnc(CG, 0), true
	case 1:
		return cgEnc(CG, 1), true
	case 2:
		return cgEnc(CG, 2), true
	case 0xFFFF:
		if byteOp {
			// In byte mode -1 canonicalizes to 0x00FF (handled above);
			// 0xFFFF keeps its extension word so encode/decode stays
			// bijective.
			break
		}
		return cgEnc(CG, 3), true
	case 4:
		return cgEnc(SR, 2), true
	case 8:
		return cgEnc(SR, 3), true
	}
	return cg, false
}

func cgEnc(r Reg, as uint16) struct {
	Reg Reg
	As  uint16
} {
	return struct {
		Reg Reg
		As  uint16
	}{r, as}
}

// ValidSrc reports whether the operand is legal as a source. Register
// combinations that collide with constant-generator or absolute/symbolic
// encodings (indexed on PC/SR/CG, indirect on PC/SR/CG, register CG) are
// rejected: the dedicated modes must be used instead, which keeps the
// encoding bijective.
func (o Operand) ValidSrc() bool {
	switch o.Mode {
	case ModeRegister:
		return o.Reg.Valid() && o.Reg != CG
	case ModeIndexed:
		return o.Reg.Valid() && o.Reg != PC && o.Reg != SR && o.Reg != CG
	case ModeIndirect, ModeIndirectInc:
		return o.Reg.Valid() && o.Reg != PC && o.Reg != SR && o.Reg != CG
	case ModeAbsolute, ModeSymbolic, ModeImmediate:
		return true
	}
	return false
}

// ValidDst reports whether the operand is legal as a destination.
// MSP430 destinations support register, indexed, symbolic and absolute.
func (o Operand) ValidDst() bool {
	switch o.Mode {
	case ModeRegister:
		return o.Reg.Valid()
	case ModeIndexed:
		return o.Reg.Valid() && o.Reg != PC && o.Reg != SR && o.Reg != CG
	case ModeAbsolute, ModeSymbolic:
		return true
	}
	return false
}

// Validate checks structural well-formedness of the instruction.
func (in Instruction) Validate() error {
	switch {
	case in.Op.IsJump():
		if in.JumpOffset < -512 || in.JumpOffset > 511 {
			return fmt.Errorf("isa: jump offset %d out of 10-bit range", in.JumpOffset)
		}
		return nil
	case in.Op == RETI:
		return nil
	case in.Op.IsOneOperand():
		if !in.Src.ValidSrc() {
			return fmt.Errorf("isa: invalid operand %v for %v", in.Src, in.Op)
		}
		if in.Op != PUSH && in.Op != CALL && in.Src.Mode == ModeImmediate {
			return fmt.Errorf("isa: immediate operand invalid for %v", in.Op)
		}
		if in.Op == SXT && in.Byte {
			return fmt.Errorf("isa: sxt has no byte form")
		}
		if in.Op == SWPB && in.Byte {
			return fmt.Errorf("isa: swpb has no byte form")
		}
		if in.Op == CALL && in.Byte {
			return fmt.Errorf("isa: call has no byte form")
		}
		return nil
	case in.Op.IsTwoOperand():
		if !in.Src.ValidSrc() {
			return fmt.Errorf("isa: invalid source %v for %v", in.Src, in.Op)
		}
		if !in.Dst.ValidDst() {
			return fmt.Errorf("isa: invalid destination %v for %v", in.Dst, in.Op)
		}
		return nil
	}
	return fmt.Errorf("isa: unknown opcode %d", uint8(in.Op))
}
