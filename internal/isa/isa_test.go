package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{PC: "pc", SP: "sp", SR: "sr", CG: "r3", 4: "r4", 15: "r15"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpcodeClasses(t *testing.T) {
	for op := MOV; op < numOpcodes; op++ {
		n := 0
		if op.IsTwoOperand() {
			n++
		}
		if op.IsOneOperand() {
			n++
		}
		if op.IsJump() {
			n++
		}
		if n != 1 {
			t.Errorf("%v belongs to %d format classes, want exactly 1", op, n)
		}
	}
}

func TestEncodeKnownInstructions(t *testing.T) {
	cases := []struct {
		name string
		in   Instruction
		want []uint16
	}{
		{"mov r5, r6", Instruction{Op: MOV, Src: RegOp(5), Dst: RegOp(6)}, []uint16{0x4506}},
		{"mov #0x1234, r10", Instruction{Op: MOV, Src: Imm(0x1234), Dst: RegOp(10)}, []uint16{0x403A, 0x1234}},
		{"mov #0, r10 (CG)", Instruction{Op: MOV, Src: Imm(0), Dst: RegOp(10)}, []uint16{0x430A}},
		{"mov #1, r10 (CG)", Instruction{Op: MOV, Src: Imm(1), Dst: RegOp(10)}, []uint16{0x431A}},
		{"mov #2, r10 (CG)", Instruction{Op: MOV, Src: Imm(2), Dst: RegOp(10)}, []uint16{0x432A}},
		{"mov #-1, r10 (CG)", Instruction{Op: MOV, Src: Imm(0xFFFF), Dst: RegOp(10)}, []uint16{0x433A}},
		{"mov #4, r10 (CG)", Instruction{Op: MOV, Src: Imm(4), Dst: RegOp(10)}, []uint16{0x422A}},
		{"mov #8, r10 (CG)", Instruction{Op: MOV, Src: Imm(8), Dst: RegOp(10)}, []uint16{0x423A}},
		{"mov &0x0200, r15", Instruction{Op: MOV, Src: Abs(0x0200), Dst: RegOp(15)}, []uint16{0x421F, 0x0200}},
		{"mov r15, &0x0200", Instruction{Op: MOV, Src: RegOp(15), Dst: Abs(0x0200)}, []uint16{0x4F82, 0x0200}},
		{"mov 4(r4), r5", Instruction{Op: MOV, Src: Indexed(4, 4), Dst: RegOp(5)}, []uint16{0x4415, 0x0004}},
		{"mov r5, 6(r4)", Instruction{Op: MOV, Src: RegOp(5), Dst: Indexed(6, 4)}, []uint16{0x4584, 0x0006}},
		{"mov @r4, r5", Instruction{Op: MOV, Src: Indirect(4), Dst: RegOp(5)}, []uint16{0x4425}},
		{"mov @r4+, r5", Instruction{Op: MOV, Src: IndirectInc(4), Dst: RegOp(5)}, []uint16{0x4435}},
		{"ret (mov @sp+, pc)", Instruction{Op: MOV, Src: IndirectInc(SP), Dst: RegOp(PC)}, []uint16{0x4130}},
		{"add r5, r6", Instruction{Op: ADD, Src: RegOp(5), Dst: RegOp(6)}, []uint16{0x5506}},
		{"add.b r5, r6", Instruction{Op: ADD, Byte: true, Src: RegOp(5), Dst: RegOp(6)}, []uint16{0x5546}},
		{"cmp #5, r9", Instruction{Op: CMP, Src: Imm(5), Dst: RegOp(9)}, []uint16{0x9039, 0x0005}},
		{"and #0x0f, r5", Instruction{Op: AND, Src: Imm(0xF), Dst: RegOp(5)}, []uint16{0xF035, 0x000F}},
		{"xor r8, r8", Instruction{Op: XOR, Src: RegOp(8), Dst: RegOp(8)}, []uint16{0xE808}},
		{"push r11", Instruction{Op: PUSH, Src: RegOp(11)}, []uint16{0x120B}},
		{"push #0x1234", Instruction{Op: PUSH, Src: Imm(0x1234)}, []uint16{0x1230, 0x1234}},
		{"call #0xe000", Instruction{Op: CALL, Src: Imm(0xE000)}, []uint16{0x12B0, 0xE000}},
		{"call r13", Instruction{Op: CALL, Src: RegOp(13)}, []uint16{0x128D}},
		{"swpb r5", Instruction{Op: SWPB, Src: RegOp(5)}, []uint16{0x1085}},
		{"sxt r5", Instruction{Op: SXT, Src: RegOp(5)}, []uint16{0x1185}},
		{"rra r5", Instruction{Op: RRA, Src: RegOp(5)}, []uint16{0x1105}},
		{"rrc r5", Instruction{Op: RRC, Src: RegOp(5)}, []uint16{0x1005}},
		{"reti", Instruction{Op: RETI}, []uint16{0x1300}},
		{"jmp +4", Instruction{Op: JMP, JumpOffset: 1}, []uint16{0x3C01}},
		{"jz -2 (self)", Instruction{Op: JEQ, JumpOffset: -1}, []uint16{0x27FF}},
		{"jne +0", Instruction{Op: JNE, JumpOffset: 0}, []uint16{0x2000}},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("%s: encode error: %v", c.name, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("%s: got %d words %v, want %v", c.name, len(got), got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: word %d = 0x%04x, want 0x%04x", c.name, i, got[i], c.want[i])
			}
		}
		if got := c.in.Words(); got != len(c.want) {
			t.Errorf("%s: Words() = %d, want %d", c.name, got, len(c.want))
		}
	}
}

func TestDecodeKnownWords(t *testing.T) {
	// Spot-check decoding against independent encodings.
	in, n, err := Decode([]uint16{0x4130})
	if err != nil || n != 1 {
		t.Fatalf("decode ret: %v n=%d", err, n)
	}
	if in.Op != MOV || in.Src.Mode != ModeIndirectInc || in.Src.Reg != SP || in.Dst != RegOp(PC) {
		t.Errorf("decode 0x4130 = %+v, want mov @sp+, pc", in)
	}

	in, n, err = Decode([]uint16{0x12B0, 0xF800})
	if err != nil || n != 2 {
		t.Fatalf("decode call: %v n=%d", err, n)
	}
	if in.Op != CALL || in.Src.Mode != ModeImmediate || in.Src.X != 0xF800 {
		t.Errorf("decode call #0xf800 = %+v", in)
	}

	if _, _, err := Decode([]uint16{0x0000}); err == nil {
		t.Error("decode of 0x0000 should fail (reserved)")
	}
	if _, _, err := Decode([]uint16{0x403A}); err == nil {
		t.Error("decode of truncated immediate should fail")
	}
	if _, _, err := Decode(nil); err == nil {
		t.Error("decode of empty slice should fail")
	}
	if _, _, err := Decode([]uint16{0x1380}); err == nil {
		t.Error("decode of reserved format II field should fail")
	}
}

func TestConstGeneratorByteForms(t *testing.T) {
	// cmp.b #-1 should use the constant generator via 0x00FF.
	in := Instruction{Op: CMP, Byte: true, Src: Imm(0x00FF), Dst: RegOp(5)}
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 {
		t.Fatalf("cmp.b #0xff should use CG, got %d words", len(w))
	}
	back, _, err := Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if back.Src.X != 0x00FF {
		t.Errorf("byte CG -1 decodes to 0x%04x, want 0x00ff", back.Src.X)
	}
	// Word-mode 0x00FF must NOT use the constant generator.
	in = Instruction{Op: CMP, Src: Imm(0x00FF), Dst: RegOp(5)}
	w, err = Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("cmp #0x00ff should need an extension word, got %d words", len(w))
	}
	// Byte-mode 0xFFFF must not canonicalize to the CG (round-trip safety).
	in = Instruction{Op: CMP, Byte: true, Src: Imm(0xFFFF), Dst: RegOp(5)}
	w, err = Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("cmp.b #0xffff should keep extension word, got %d words", len(w))
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Instruction{
		{Op: JMP, JumpOffset: 512},
		{Op: JMP, JumpOffset: -513},
		{Op: SXT, Byte: true, Src: RegOp(5)},
		{Op: SWPB, Byte: true, Src: RegOp(5)},
		{Op: CALL, Byte: true, Src: RegOp(5)},
		{Op: RRA, Src: Imm(4)},
		{Op: MOV, Src: RegOp(CG), Dst: RegOp(5)},
		{Op: MOV, Src: Indexed(2, SR), Dst: RegOp(5)},
		{Op: MOV, Src: Indirect(PC), Dst: RegOp(5)},
		{Op: MOV, Src: RegOp(5), Dst: Indirect(6).asDst()},
		{Op: MOV, Src: RegOp(5), Dst: Indexed(2, PC)},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate() accepted invalid instruction", i, in)
		}
	}
}

// asDst reinterprets an operand for the destination-validity test above.
func (o Operand) asDst() Operand { return o }

func TestCycleCounts(t *testing.T) {
	cases := []struct {
		name string
		in   Instruction
		want int
	}{
		{"mov r5, r6", Instruction{Op: MOV, Src: RegOp(5), Dst: RegOp(6)}, 1},
		{"mov r5, pc", Instruction{Op: MOV, Src: RegOp(5), Dst: RegOp(PC)}, 2},
		{"mov #0, r6 (CG)", Instruction{Op: MOV, Src: Imm(0), Dst: RegOp(6)}, 1},
		{"mov #0x1234, r6", Instruction{Op: MOV, Src: Imm(0x1234), Dst: RegOp(6)}, 2},
		{"mov #0x1234, pc (br)", Instruction{Op: MOV, Src: Imm(0x1234), Dst: RegOp(PC)}, 3},
		{"mov @r4, r5", Instruction{Op: MOV, Src: Indirect(4), Dst: RegOp(5)}, 2},
		{"ret", Instruction{Op: MOV, Src: IndirectInc(SP), Dst: RegOp(PC)}, 3},
		{"mov 2(r4), r5", Instruction{Op: MOV, Src: Indexed(2, 4), Dst: RegOp(5)}, 3},
		{"mov &x, r5", Instruction{Op: MOV, Src: Abs(0x200), Dst: RegOp(5)}, 3},
		{"mov r5, &x", Instruction{Op: MOV, Src: RegOp(5), Dst: Abs(0x200)}, 4},
		{"mov #5, &x", Instruction{Op: MOV, Src: Imm(5), Dst: Abs(0x200)}, 5},
		{"mov &x, &y", Instruction{Op: MOV, Src: Abs(0x200), Dst: Abs(0x202)}, 6},
		{"push r5", Instruction{Op: PUSH, Src: RegOp(5)}, 3},
		{"push #0x1234", Instruction{Op: PUSH, Src: Imm(0x1234)}, 4},
		{"call #f", Instruction{Op: CALL, Src: Imm(0xE000)}, 5},
		{"call r13", Instruction{Op: CALL, Src: RegOp(13)}, 4},
		{"call &v", Instruction{Op: CALL, Src: Abs(0xFFFE)}, 6},
		{"rra r5", Instruction{Op: RRA, Src: RegOp(5)}, 1},
		{"rra &x", Instruction{Op: RRA, Src: Abs(0x200)}, 4},
		{"reti", Instruction{Op: RETI}, 5},
		{"jmp", Instruction{Op: JMP, JumpOffset: 3}, 2},
		{"jne", Instruction{Op: JNE, JumpOffset: -3}, 2},
	}
	for _, c := range cases {
		if got := Cycles(c.in); got != c.want {
			t.Errorf("%s: Cycles = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDisassembleAliases(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: MOV, Src: IndirectInc(SP), Dst: RegOp(PC)}, "ret"},
		{Instruction{Op: MOV, Src: IndirectInc(SP), Dst: RegOp(11)}, "pop r11"},
		{Instruction{Op: MOV, Src: Imm(0), Dst: RegOp(CG)}, "nop"},
		{Instruction{Op: MOV, Src: Imm(0), Dst: RegOp(9)}, "clr r9"},
		{Instruction{Op: ADD, Src: Imm(1), Dst: RegOp(9)}, "inc r9"},
		{Instruction{Op: ADD, Src: Imm(2), Dst: RegOp(9)}, "incd r9"},
		{Instruction{Op: SUB, Src: Imm(1), Dst: RegOp(9)}, "dec r9"},
		{Instruction{Op: CMP, Src: Imm(0), Dst: RegOp(9)}, "tst r9"},
		{Instruction{Op: BIS, Src: Imm(FlagGIE), Dst: RegOp(SR)}, "eint"},
		{Instruction{Op: BIC, Src: Imm(FlagGIE), Dst: RegOp(SR)}, "dint"},
		{Instruction{Op: MOV, Src: Imm(0xE000), Dst: RegOp(PC)}, "br #0xe000"},
		{Instruction{Op: CALL, Src: Imm(0xE000)}, "call #0xe000"},
		{Instruction{Op: JMP, JumpOffset: 1}, "jmp $+4"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in); got != c.want {
			t.Errorf("Disassemble(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// randomInstruction generates a structurally valid random instruction for
// the round-trip property.
func randomInstruction(r *rand.Rand) Instruction {
	genReg := func(dst bool) Reg {
		for {
			reg := Reg(r.Intn(NumRegs))
			if reg == CG || reg == SR || (dst && reg == PC) {
				continue
			}
			return reg
		}
	}
	genOperand := func(dst bool) Operand {
		for {
			m := AddrMode(r.Intn(int(ModeSymbolic) + 1))
			switch m {
			case ModeRegister:
				return RegOp(genReg(false))
			case ModeIndexed:
				return Indexed(uint16(r.Uint32()), genReg(true))
			case ModeAbsolute:
				return Abs(uint16(r.Uint32()))
			case ModeSymbolic:
				return Operand{Mode: ModeSymbolic, Reg: PC, X: uint16(r.Uint32())}
			case ModeIndirect:
				if dst {
					continue
				}
				return Indirect(genReg(true))
			case ModeIndirectInc:
				if dst {
					continue
				}
				return IndirectInc(genReg(true))
			case ModeImmediate:
				if dst {
					continue
				}
				return Imm(uint16(r.Uint32()))
			}
		}
	}
	op := Opcode(r.Intn(int(numOpcodes)))
	in := Instruction{Op: op}
	switch {
	case op.IsJump():
		in.JumpOffset = int16(r.Intn(1024) - 512)
	case op == RETI:
	case op.IsOneOperand():
		in.Byte = r.Intn(2) == 0 && op != SWPB && op != SXT && op != CALL
		for {
			in.Src = genOperand(false)
			if (op == PUSH || op == CALL) || in.Src.Mode != ModeImmediate {
				break
			}
		}
	default:
		in.Byte = r.Intn(2) == 0
		in.Src = genOperand(false)
		in.Dst = genOperand(true)
	}
	// Canonicalize byte immediates that would hit the CG asymmetry: the
	// encoder treats word -1 as CG only in word mode, so a byte op with
	// X=0xFFFF keeps its extension word and round-trips as-is.
	return in
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		in := randomInstruction(r)
		if err := in.Validate(); err != nil {
			t.Fatalf("generator produced invalid instruction %+v: %v", in, err)
		}
		words, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		back, n, err := Decode(words)
		if err != nil {
			t.Fatalf("decode of %v (from %+v): %v", words, in, err)
		}
		if n != len(words) {
			t.Fatalf("decode consumed %d words, encoded %d (%+v)", n, len(words), in)
		}
		if back != in {
			t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v\nwords: %v", in, back, words)
		}
	}
}

func TestDecodeEncodeRoundTripProperty(t *testing.T) {
	// Any word sequence that decodes must re-encode to the same words
	// (decode is a partial inverse of encode over its image).
	f := func(w0, w1, w2 uint16) bool {
		words := []uint16{w0, w1, w2}
		in, n, err := Decode(words)
		if err != nil {
			return true // not decodable: fine
		}
		re, err := Encode(in)
		if err != nil {
			// Decoded forms must always be encodable unless they use
			// register quirks we reject (e.g. actual r2/r3 register
			// operands); those are legal hardware forms we canonicalize.
			return in.Validate() != nil
		}
		if len(re) != n {
			return false
		}
		for i := range re {
			if re[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestWordsMatchesEncodeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		in := randomInstruction(r)
		words, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		if in.Words() != len(words) {
			t.Fatalf("Words()=%d but Encode produced %d for %+v", in.Words(), len(words), in)
		}
		if in.Size() != uint16(2*len(words)) {
			t.Fatalf("Size()=%d but Encode produced %d bytes", in.Size(), 2*len(words))
		}
	}
}

func TestCyclesPositiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		in := randomInstruction(r)
		c := Cycles(in)
		if c < 1 || c > 6 {
			t.Fatalf("Cycles(%+v) = %d, outside [1,6]", in, c)
		}
	}
}

func TestNoCGImmediateRoundTrip(t *testing.T) {
	// A forced-extension immediate of a CG-eligible value must encode
	// with the extension word and decode back to the NoCG form.
	in := Instruction{Op: MOV, Src: ImmExt(0), Dst: RegOp(5)}
	w, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("forced-ext #0 encoded in %d words, want 2", len(w))
	}
	back, n, err := Decode(w)
	if err != nil || n != 2 {
		t.Fatalf("decode: %v n=%d", err, n)
	}
	if !back.Src.NoCG || back.Src.X != 0 {
		t.Errorf("decoded operand %+v, want NoCG immediate 0", back.Src)
	}
	if back != in {
		t.Errorf("round trip mismatch: %+v vs %+v", back, in)
	}
	// And the cycle model must charge extension-word timing.
	if got := Cycles(in); got != 2 {
		t.Errorf("Cycles(mov #0(ext), r5) = %d, want 2", got)
	}
	if got := Cycles(Instruction{Op: MOV, Src: Imm(0), Dst: RegOp(5)}); got != 1 {
		t.Errorf("Cycles(mov #0(cg), r5) = %d, want 1", got)
	}
}
