package isa

import "sync"

// Entry caches one successful decode at a fixed fetch address: the
// raised Instruction (the generic interpreter's input), its
// threaded-code lowering (the fast interpreter's input, valid when Fast
// is set), and the size/cycle figures both share. Entries are read-only
// after construction; callers must not mutate them.
type Entry struct {
	In     Instruction
	U      UOp
	Size   uint16
	Cycles uint16
	OK     bool
	Fast   bool
}

// Predecoded is an immutable decode cache for a fixed code image: every
// even address in its window is decoded once, up front, so the CPU core
// can skip both the speculative three-word fetch and Decode on warm
// paths. Each cached decode also carries its threaded-code lowering
// (see UOp), so the warm path skips the per-step format switch and
// operand resolution too. A Predecoded is read-only after construction
// and therefore safe to share between any number of machines running
// byte-identical code — the per-ROM artifact the fleet runner builds
// once per application.
//
// Staleness is the caller's problem: the CPU core pairs a shared
// Predecoded with a per-machine dirty map (see cpu.CPU.InvalidateCode)
// so that writes observed on the bus force a live re-decode.
type Predecoded struct {
	start   uint16
	entries []Entry

	// blkOnce/blk lazily build the basic-block table fused from the
	// entries (see BuildBlocks). Keeping the blocks on the cache means
	// every machine sharing this per-ROM artifact also shares one block
	// table, built at most once, concurrency-safe.
	blkOnce sync.Once
	blk     *Blocks
}

// Predecode decodes every even address in [start, end] using read to
// fetch words. Addresses that do not decode (data, padding) simply stay
// uncached and fall back to the live path at run time, as do the last
// two word slots of the address space (their fetch window would wrap).
//
// fetchable, when non-nil, restricts caching to addresses whose whole
// three-word fetch window it accepts. The live path speculatively reads
// all three words through the bus, so a window that strays into
// unmapped or peripheral space has observable side effects (bus-error
// accounting, handler reads) the cache would skip; such addresses must
// stay on the live path.
func Predecode(read func(addr uint16) uint16, start, end uint16, fetchable func(addr uint16) bool) *Predecoded {
	start &^= 1
	n := (int(end)-int(start))/2 + 1
	p := &Predecoded{start: start}
	if n <= 0 {
		return p
	}
	p.entries = make([]Entry, n)
	for i := range p.entries {
		addr := start + uint16(2*i)
		if addr >= 0xFFFC {
			continue
		}
		if fetchable != nil && !(fetchable(addr) && fetchable(addr+2) && fetchable(addr+4)) {
			continue
		}
		words := [3]uint16{read(addr), read(addr + 2), read(addr + 4)}
		in, _, err := Decode(words[:])
		if err != nil {
			continue
		}
		e := &p.entries[i]
		e.In = in
		e.Size = in.Size()
		e.Cycles = uint16(Cycles(in))
		e.OK = true
		e.U, e.Fast = LowerUOp(addr, in)
	}
	return p
}

// Table exposes the window base and the entry slice for callers that
// inline the lookup (the CPU core's warm path). Entries are shared and
// read-only; an entry is valid only when its OK flag is set. Index i
// corresponds to fetch address start + 2*i.
func (p *Predecoded) Table() (start uint16, entries []Entry) {
	if p == nil {
		return 0, nil
	}
	return p.start, p.entries
}

// EntryAt returns the cached entry for a fetch at addr, or nil when
// addr is outside the window, odd (a misaligned fetch takes the live
// path, which models the bus's A0-ignore), or did not decode at
// predecode time. The entry is shared and read-only.
func (p *Predecoded) EntryAt(addr uint16) *Entry {
	if p == nil || addr&1 != 0 || addr < p.start {
		return nil
	}
	i := int(addr-p.start) >> 1
	if i >= len(p.entries) || !p.entries[i].OK {
		return nil
	}
	return &p.entries[i]
}

// Blocks returns the basic-block table fused from this cache's entries,
// building it on first use. The table is immutable and shared by every
// caller — the per-ROM artifact the fleet runner hands to each machine
// alongside the decode cache itself.
func (p *Predecoded) Blocks() *Blocks {
	if p == nil {
		return nil
	}
	p.blkOnce.Do(func() { p.blk = BuildBlocks(p) })
	return p.blk
}

// Lookup returns the cached instruction, its size in bytes and its cycle
// cost for a fetch at addr. ok is false when EntryAt would return nil.
func (p *Predecoded) Lookup(addr uint16) (in Instruction, size, cycles uint16, ok bool) {
	e := p.EntryAt(addr)
	if e == nil {
		return Instruction{}, 0, 0, false
	}
	return e.In, e.Size, e.Cycles, true
}

// Len reports how many addresses hold a cached decode (for tests and
// diagnostics).
func (p *Predecoded) Len() int {
	if p == nil {
		return 0
	}
	n := 0
	for i := range p.entries {
		if p.entries[i].OK {
			n++
		}
	}
	return n
}
