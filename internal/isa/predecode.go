package isa

// predecEntry caches one successful decode at a fixed fetch address.
type predecEntry struct {
	in     Instruction
	size   uint16
	cycles uint16
	ok     bool
}

// Predecoded is an immutable decode cache for a fixed code image: every
// even address in its window is decoded once, up front, so the CPU core
// can skip both the speculative three-word fetch and Decode on warm
// paths. A Predecoded is read-only after construction and therefore safe
// to share between any number of machines running byte-identical code —
// the per-ROM artifact the fleet runner builds once per application.
//
// Staleness is the caller's problem: the CPU core pairs a shared
// Predecoded with a per-machine dirty map (see cpu.CPU.InvalidateCode)
// so that writes observed on the bus force a live re-decode.
type Predecoded struct {
	start   uint16
	entries []predecEntry
}

// Predecode decodes every even address in [start, end] using read to
// fetch words. Addresses that do not decode (data, padding) simply stay
// uncached and fall back to the live path at run time, as do the last
// two word slots of the address space (their fetch window would wrap).
//
// fetchable, when non-nil, restricts caching to addresses whose whole
// three-word fetch window it accepts. The live path speculatively reads
// all three words through the bus, so a window that strays into
// unmapped or peripheral space has observable side effects (bus-error
// accounting, handler reads) the cache would skip; such addresses must
// stay on the live path.
func Predecode(read func(addr uint16) uint16, start, end uint16, fetchable func(addr uint16) bool) *Predecoded {
	start &^= 1
	n := (int(end)-int(start))/2 + 1
	p := &Predecoded{start: start}
	if n <= 0 {
		return p
	}
	p.entries = make([]predecEntry, n)
	for i := range p.entries {
		addr := start + uint16(2*i)
		if addr >= 0xFFFC {
			continue
		}
		if fetchable != nil && !(fetchable(addr) && fetchable(addr+2) && fetchable(addr+4)) {
			continue
		}
		words := [3]uint16{read(addr), read(addr + 2), read(addr + 4)}
		in, _, err := Decode(words[:])
		if err != nil {
			continue
		}
		p.entries[i] = predecEntry{in: in, size: in.Size(), cycles: uint16(Cycles(in)), ok: true}
	}
	return p
}

// Lookup returns the cached instruction, its size in bytes and its cycle
// cost for a fetch at addr. ok is false when addr is outside the window,
// odd (a misaligned fetch takes the live path, which models the bus's
// A0-ignore), or did not decode at predecode time.
func (p *Predecoded) Lookup(addr uint16) (in Instruction, size, cycles uint16, ok bool) {
	if p == nil || addr&1 != 0 || addr < p.start {
		return Instruction{}, 0, 0, false
	}
	i := int(addr-p.start) >> 1
	if i >= len(p.entries) || !p.entries[i].ok {
		return Instruction{}, 0, 0, false
	}
	e := &p.entries[i]
	return e.in, e.size, e.cycles, true
}

// Len reports how many addresses hold a cached decode (for tests and
// diagnostics).
func (p *Predecoded) Len() int {
	if p == nil {
		return 0
	}
	n := 0
	for i := range p.entries {
		if p.entries[i].ok {
			n++
		}
	}
	return n
}
