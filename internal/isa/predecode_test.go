package isa

import "testing"

// TestPredecodeMatchesDecode: every cached entry must be exactly what
// Decode returns for the same words, and addresses that fail to decode
// must stay uncached.
func TestPredecodeMatchesDecode(t *testing.T) {
	// A small "memory": two valid instructions, a data word that does
	// not decode, then another instruction.
	mem := map[uint16]uint16{}
	addr := uint16(0x1000)
	put := func(ws []uint16) {
		for _, w := range ws {
			mem[addr] = w
			addr += 2
		}
	}
	put(MustEncode(Instruction{Op: MOV, Src: ImmExt(0x1234), Dst: RegOp(10)}))
	put(MustEncode(Instruction{Op: ADD, Src: RegOp(10), Dst: RegOp(11)}))
	put([]uint16{0x0000}) // invalid opcode word
	put(MustEncode(Instruction{Op: JMP, JumpOffset: -1}))
	end := addr

	read := func(a uint16) uint16 { return mem[a] }
	p := Predecode(read, 0x1000, end, nil)

	for a := uint16(0x1000); a < end; a += 2 {
		words := []uint16{read(a), read(a + 2), read(a + 4)}
		want, _, wantErr := Decode(words)
		in, size, cycles, ok := p.Lookup(a)
		if wantErr != nil {
			if ok {
				t.Errorf("0x%04x: cached but Decode fails", a)
			}
			continue
		}
		if !ok {
			t.Errorf("0x%04x: decodable but not cached", a)
			continue
		}
		if in != want {
			t.Errorf("0x%04x: cached %+v, Decode gives %+v", a, in, want)
		}
		if size != want.Size() || int(cycles) != Cycles(want) {
			t.Errorf("0x%04x: size/cycles %d/%d, want %d/%d", a, size, cycles, want.Size(), Cycles(want))
		}
	}
}

func TestPredecodeLookupBounds(t *testing.T) {
	read := func(a uint16) uint16 { return 0x4303 } // nop (mov r3, r3)
	p := Predecode(read, 0x2000, 0x2010, nil)

	if _, _, _, ok := p.Lookup(0x1FFE); ok {
		t.Error("below window cached")
	}
	if _, _, _, ok := p.Lookup(0x2012); ok {
		t.Error("above window cached")
	}
	if _, _, _, ok := p.Lookup(0x2001); ok {
		t.Error("odd address cached")
	}
	if _, _, _, ok := p.Lookup(0x2000); !ok {
		t.Error("window start not cached")
	}
	var nilP *Predecoded
	if _, _, _, ok := nilP.Lookup(0x2000); ok {
		t.Error("nil cache returned a hit")
	}
	if nilP.Len() != 0 {
		t.Error("nil cache has entries")
	}
}

// TestPredecodeWrapWindow: the top two word slots would need a wrapped
// fetch window and must never be cached.
func TestPredecodeWrapWindow(t *testing.T) {
	read := func(a uint16) uint16 { return 0x4303 }
	p := Predecode(read, 0xFFF0, 0xFFFF, nil)
	for _, a := range []uint16{0xFFFC, 0xFFFE} {
		if _, _, _, ok := p.Lookup(a); ok {
			t.Errorf("0x%04x cached despite wrapping fetch window", a)
		}
	}
	if _, _, _, ok := p.Lookup(0xFFFA); !ok {
		t.Error("0xFFFA should be cacheable")
	}
}

// TestPredecodeFetchablePredicate: an address whose three-word fetch
// window strays outside the accepted region must stay uncached, because
// the live path's speculative reads there have observable side effects.
func TestPredecodeFetchablePredicate(t *testing.T) {
	read := func(a uint16) uint16 { return 0x4303 } // nop (mov r3, r3)
	fetchable := func(a uint16) bool { return a < 0x3010 }
	p := Predecode(read, 0x3000, 0x3020, fetchable)
	if _, _, _, ok := p.Lookup(0x3008); !ok {
		t.Error("window fully inside the region should be cached")
	}
	// 0x300C reads 0x300C/0x300E/0x3010; the last word is outside.
	for _, a := range []uint16{0x300C, 0x300E, 0x3010, 0x3012} {
		if _, _, _, ok := p.Lookup(a); ok {
			t.Errorf("0x%04x cached despite fetch window leaving the region", a)
		}
	}
}
