package isa

// This file lowers decoded instructions into threaded-code micro-ops
// (UOps). A UOp is an Instruction specialized to the fixed address it
// was predecoded at: addressing modes collapse to a handful of operand
// kinds, PC-relative effective addresses (symbolic mode, jump targets,
// register-mode PC reads) fold to constants, immediates are
// width-masked, and the format dispatch becomes a single class token.
// The CPU core's warm path executes UOps without touching the per-step
// format switch, ExtOffsets or operand-resolution logic; anything the
// lowering cannot represent bit-exactly keeps the generic interpreter.

// UOp execution classes.
const (
	// UFmt1 is a double-operand instruction.
	UFmt1 uint8 = iota
	// UFmt1Reg is a word-width double-operand instruction whose
	// destination is a plain general-purpose register (R4..R15) — the
	// hottest shape, executed without any location indirection.
	UFmt1Reg
	// UFmt2 is a single-operand instruction (PUSH/CALL immediates included).
	UFmt2
	// UJump is a format III jump with a precomputed target.
	UJump
	// UReti is the interrupt return.
	UReti
)

// Source operand kinds after lowering.
const (
	// SrcConst is a constant value (immediate, or a register-mode PC
	// read folded at the fixed fetch address), pre-masked to the
	// operation width.
	SrcConst uint8 = iota
	// SrcReg reads register SrcReg (never PC; that folds to SrcConst).
	SrcReg
	// SrcMemConst reads memory at the constant address SrcVal
	// (absolute mode, or symbolic mode with the extension-word anchor
	// folded in).
	SrcMemConst
	// SrcMemReg reads memory at R[SrcReg] + SrcVal (indexed mode;
	// indirect mode lowers here with SrcVal = 0).
	SrcMemReg
	// SrcMemRegInc reads memory at R[SrcReg], then advances the
	// register by Inc (auto-increment mode).
	SrcMemRegInc
)

// Destination operand kinds after lowering.
const (
	// DstRegK writes register DstReg (PC/SP special cases handled by
	// the executor, as in the generic interpreter).
	DstRegK uint8 = iota
	// DstMemConst addresses memory at the constant DstVal.
	DstMemConst
	// DstMemReg addresses memory at R[DstReg] + DstVal.
	DstMemReg
)

// UOp is one threaded-code micro-op. All fields are resolved at
// predecode time; a UOp is immutable and safe to share.
type UOp struct {
	Class          uint8
	Op             Opcode
	Byte           bool
	SrcK           uint8
	DstK           uint8
	SrcReg, DstReg Reg
	Inc            uint16 // auto-increment step (1 or 2)
	SrcVal         uint16 // SrcConst value / constant EA / index displacement
	DstVal         uint16 // constant EA / index displacement
	Target         uint16 // jump target
}

// LowerUOp compiles in, decoded at the fixed fetch address pc, into its
// threaded-code form. ok is false when the instruction must keep the
// generic interpreter — operand shapes whose run-time error semantics
// (e.g. an immediate operand on an in-place format II op) the fast path
// does not reproduce.
func LowerUOp(pc uint16, in Instruction) (UOp, bool) {
	u := UOp{Op: in.Op, Byte: in.Byte}
	switch {
	case in.Op.IsJump():
		u.Class = UJump
		u.Target = pc + 2 + 2*uint16(in.JumpOffset)
		return u, true
	case in.Op == RETI:
		u.Class = UReti
		return u, true
	case in.Op.IsOneOperand():
		u.Class = UFmt2
		if in.Src.Mode == ModeImmediate && in.Op != PUSH && in.Op != CALL {
			// The interpreter reports "immediate operand for <op>" at
			// run time; keep that path live.
			return u, false
		}
		// In-place format II ops need a writable location, so a
		// register-mode PC operand must not fold to a constant.
		if !lowerUSrc(&u, pc, in, in.Op == PUSH || in.Op == CALL) {
			return u, false
		}
		return u, true
	}
	u.Class = UFmt1
	if !lowerUSrc(&u, pc, in, true) {
		return u, false
	}
	_, _, dstOff, dstHas := in.ExtOffsets()
	switch in.Dst.Mode {
	case ModeRegister:
		u.DstK = DstRegK
		u.DstReg = in.Dst.Reg
		// PC (control flow), SP (word alignment), SR (flag-write
		// ordering) and CG keep the generic destination handling.
		if !in.Byte && in.Dst.Reg >= 4 {
			u.Class = UFmt1Reg
		}
	case ModeAbsolute:
		u.DstK = DstMemConst
		u.DstVal = in.Dst.X
	case ModeSymbolic:
		if !dstHas {
			return u, false
		}
		u.DstK = DstMemConst
		u.DstVal = pc + uint16(dstOff) + in.Dst.X
	case ModeIndexed:
		u.DstK = DstMemReg
		u.DstReg = in.Dst.Reg
		u.DstVal = in.Dst.X
	default:
		return u, false
	}
	return u, true
}

// lowerUSrc fills the source fields of u. foldPC permits collapsing a
// register-mode PC read into the constant pc+2 the architecture defines
// for it.
func lowerUSrc(u *UOp, pc uint16, in Instruction, foldPC bool) bool {
	srcOff, srcHas, _, _ := in.ExtOffsets()
	switch in.Src.Mode {
	case ModeImmediate:
		v := in.Src.X
		if in.Byte {
			v &= 0x00FF
		}
		u.SrcK = SrcConst
		u.SrcVal = v
	case ModeRegister:
		if in.Src.Reg == PC && foldPC {
			v := pc + 2
			if in.Byte {
				v &= 0x00FF
			}
			u.SrcK = SrcConst
			u.SrcVal = v
			return true
		}
		u.SrcK = SrcReg
		u.SrcReg = in.Src.Reg
	case ModeAbsolute:
		u.SrcK = SrcMemConst
		u.SrcVal = in.Src.X
	case ModeSymbolic:
		if !srcHas {
			return false
		}
		u.SrcK = SrcMemConst
		u.SrcVal = pc + uint16(srcOff) + in.Src.X
	case ModeIndexed:
		u.SrcK = SrcMemReg
		u.SrcReg = in.Src.Reg
		u.SrcVal = in.Src.X
	case ModeIndirect:
		u.SrcK = SrcMemReg
		u.SrcReg = in.Src.Reg
		u.SrcVal = 0
	case ModeIndirectInc:
		u.SrcK = SrcMemRegInc
		u.SrcReg = in.Src.Reg
		u.Inc = 2
		if in.Byte {
			u.Inc = 1
		}
	default:
		return false
	}
	return true
}
