package isa

import "testing"

func TestLowerUOpJumpTarget(t *testing.T) {
	u, ok := LowerUOp(0xE010, Instruction{Op: JNE, JumpOffset: -3})
	if !ok || u.Class != UJump {
		t.Fatalf("jump did not lower: %+v ok=%v", u, ok)
	}
	if want := uint16(0xE010 + 2 - 6); u.Target != want {
		t.Fatalf("target = 0x%04x, want 0x%04x", u.Target, want)
	}
}

func TestLowerUOpSymbolicFoldsToConstEA(t *testing.T) {
	// mov EDE, r5 with the source extension word at pc+2: the effective
	// address anchors at the extension word itself.
	in := Instruction{Op: MOV, Src: Operand{Mode: ModeSymbolic, Reg: PC, X: 0x0100}, Dst: RegOp(5)}
	u, ok := LowerUOp(0xE000, in)
	if !ok || u.SrcK != SrcMemConst {
		t.Fatalf("symbolic source did not lower to a constant EA: %+v ok=%v", u, ok)
	}
	if want := uint16(0xE002 + 0x0100); u.SrcVal != want {
		t.Fatalf("folded EA = 0x%04x, want 0x%04x", u.SrcVal, want)
	}
	// Destination-side symbolic anchors after the source extension word.
	in = Instruction{Op: MOV, Src: ImmExt(0x1234), Dst: Operand{Mode: ModeSymbolic, Reg: PC, X: 0x0020}}
	u, ok = LowerUOp(0xE000, in)
	if !ok || u.DstK != DstMemConst {
		t.Fatalf("symbolic destination did not lower: %+v ok=%v", u, ok)
	}
	if want := uint16(0xE004 + 0x0020); u.DstVal != want {
		t.Fatalf("folded dst EA = 0x%04x, want 0x%04x", u.DstVal, want)
	}
}

func TestLowerUOpByteImmediateMasked(t *testing.T) {
	u, ok := LowerUOp(0xE000, Instruction{Op: MOV, Byte: true, Src: ImmExt(0x12FF), Dst: RegOp(5)})
	if !ok || u.SrcK != SrcConst || u.SrcVal != 0x00FF {
		t.Fatalf("byte immediate not pre-masked: %+v ok=%v", u, ok)
	}
}

func TestLowerUOpRegisterPCFolds(t *testing.T) {
	// Format I source: register-mode PC reads pc+2.
	u, ok := LowerUOp(0xE000, Instruction{Op: MOV, Src: RegOp(PC), Dst: RegOp(5)})
	if !ok || u.SrcK != SrcConst || u.SrcVal != 0xE002 {
		t.Fatalf("register-PC source did not fold: %+v ok=%v", u, ok)
	}
	// In-place format II keeps the register location (it must write back).
	u, ok = LowerUOp(0xE000, Instruction{Op: RRA, Src: RegOp(PC)})
	if !ok || u.SrcK != SrcReg || u.SrcReg != PC {
		t.Fatalf("in-place PC operand must stay a register loc: %+v ok=%v", u, ok)
	}
}

func TestLowerUOpRejectsBadFmt2Immediate(t *testing.T) {
	// RRA #4 decodes (via @PC+ raising) but errors at execution; the
	// lowering must leave it to the generic interpreter.
	if _, ok := LowerUOp(0xE000, Instruction{Op: RRA, Src: Imm(4)}); ok {
		t.Fatal("immediate RRA lowered; its run-time error path would be lost")
	}
	if u, ok := LowerUOp(0xE000, Instruction{Op: PUSH, Src: Imm(4)}); !ok || u.SrcK != SrcConst {
		t.Fatalf("immediate PUSH should lower: %+v ok=%v", u, ok)
	}
}

func TestLowerUOpRegDestClass(t *testing.T) {
	// Word op on a plain register: the specialized class.
	if u, _ := LowerUOp(0, Instruction{Op: ADD, Src: Imm(1), Dst: RegOp(10)}); u.Class != UFmt1Reg {
		t.Fatalf("add #1, r10 class = %d, want UFmt1Reg", u.Class)
	}
	// PC/SP/SR destinations and byte width keep the generic class.
	for _, in := range []Instruction{
		{Op: ADD, Src: Imm(1), Dst: RegOp(PC)},
		{Op: ADD, Src: Imm(1), Dst: RegOp(SP)},
		{Op: ADD, Src: Imm(1), Dst: RegOp(SR)},
		{Op: ADD, Byte: true, Src: Imm(1), Dst: RegOp(10)},
	} {
		if u, _ := LowerUOp(0, in); u.Class != UFmt1 {
			t.Fatalf("%v class = %d, want UFmt1", in, u.Class)
		}
	}
}

// TestPredecodeEntriesCarryUOps: every cached decode either lowers or
// is explicitly marked for the generic interpreter, and the lowered
// size/cycles match the instruction's own figures.
func TestPredecodeEntriesCarryUOps(t *testing.T) {
	words := map[uint16]uint16{}
	emit := func(addr uint16, in Instruction) uint16 {
		enc := MustEncode(in)
		for i, w := range enc {
			words[addr+uint16(2*i)] = w
		}
		return addr + uint16(2*len(enc))
	}
	a := emit(0x3000, Instruction{Op: MOV, Src: ImmExt(0x1234), Dst: RegOp(7)})
	a = emit(a, Instruction{Op: ADD, Src: Indexed(4, 9), Dst: Abs(0x0200)})
	a = emit(a, Instruction{Op: JMP, JumpOffset: -2})
	_ = emit(a, Instruction{Op: RETI})

	read := func(addr uint16) uint16 { return words[addr] }
	p := Predecode(read, 0x3000, a+6, nil)
	n := 0
	for addr := uint16(0x3000); addr <= a; addr += 2 {
		e := p.EntryAt(addr)
		if e == nil {
			continue
		}
		n++
		if !e.Fast {
			continue
		}
		if e.Size != e.In.Size() || int(e.Cycles) != Cycles(e.In) {
			t.Errorf("0x%04x: entry size/cycles %d/%d disagree with instruction %d/%d",
				addr, e.Size, e.Cycles, e.In.Size(), Cycles(e.In))
		}
	}
	if n == 0 {
		t.Fatal("predecode cached nothing")
	}
}
