package mem

import (
	"fmt"
	"math/rand"
	"testing"
)

// wordDev is a word-only handler (no ByteHandler) that records every
// call, so byte accesses exercise the Space's read-modify-write
// synthesis on both dispatch paths.
type wordDev struct {
	regs map[uint16]uint16
	log  []string
}

func newWordDev() *wordDev { return &wordDev{regs: map[uint16]uint16{}} }

func (d *wordDev) LoadWord(addr uint16) uint16 {
	d.log = append(d.log, fmt.Sprintf("LW %04x", addr))
	return d.regs[addr] ^ 0xA5A5 // value depends on state, not just addr
}

func (d *wordDev) StoreWord(addr uint16, v uint16) {
	d.log = append(d.log, fmt.Sprintf("SW %04x %04x", addr, v))
	d.regs[addr] = v
}

// byteDev additionally implements ByteHandler.
type byteDev struct {
	wordDev
}

func (d *byteDev) LoadByte(addr uint16) uint8 {
	d.log = append(d.log, fmt.Sprintf("LB %04x", addr))
	return uint8(d.regs[addr&^1])
}

func (d *byteDev) StoreByte(addr uint16, v uint8) {
	d.log = append(d.log, fmt.Sprintf("SB %04x %02x", addr, v))
	d.regs[addr&^1] = uint16(v)
}

// diffPair is a table-dispatch Space and a linear-dispatch Space with
// identical mappings, plus the per-space observation logs.
type diffPair struct {
	spaces   [2]*Space
	words    [2]*wordDev
	bytes    [2]*byteDev
	hookLogs [2][]string
}

// wordSpan/byteSpan place one word-only and one byte-capable handler in
// the peripheral window, with ranges chosen so accesses can straddle
// both ends (plain RAM below, plain RAM above).
const (
	wordLo, wordHi = 0x0100, 0x0113
	byteLo, byteHi = 0x0120, 0x0125
)

func newDiffPair(t *testing.T) *diffPair {
	t.Helper()
	p := &diffPair{}
	for i := range p.spaces {
		i := i
		s := MustNewSpace(DefaultLayout())
		p.words[i] = newWordDev()
		p.bytes[i] = &byteDev{wordDev: *newWordDev()}
		if err := s.Map(wordLo, wordHi, p.words[i]); err != nil {
			t.Fatal(err)
		}
		if err := s.Map(byteLo, byteHi, p.bytes[i]); err != nil {
			t.Fatal(err)
		}
		s.WriteHook = func(addr uint16, n int) {
			p.hookLogs[i] = append(p.hookLogs[i], fmt.Sprintf("%04x+%d", addr, n))
		}
		p.spaces[i] = s
	}
	p.spaces[1].SetLinearDispatch(true)
	return p
}

// compare asserts every observable of the two spaces is identical.
func (p *diffPair) compare(t *testing.T, what string) {
	t.Helper()
	a, b := p.spaces[0], p.spaces[1]
	if a.BusErrors != b.BusErrors {
		t.Errorf("%s: BusErrors %d (table) vs %d (linear)", what, a.BusErrors, b.BusErrors)
	}
	if a.HandlerStores() != b.HandlerStores() {
		t.Errorf("%s: HandlerStores %d vs %d", what, a.HandlerStores(), b.HandlerStores())
	}
	if got, want := fmt.Sprint(p.hookLogs[0]), fmt.Sprint(p.hookLogs[1]); got != want {
		t.Errorf("%s: WriteHook log diverged:\n table: %s\nlinear: %s", what, got, want)
	}
	if got, want := fmt.Sprint(p.words[0].log), fmt.Sprint(p.words[1].log); got != want {
		t.Errorf("%s: word-handler log diverged:\n table: %s\nlinear: %s", what, got, want)
	}
	if got, want := fmt.Sprint(p.bytes[0].log), fmt.Sprint(p.bytes[1].log); got != want {
		t.Errorf("%s: byte-handler log diverged:\n table: %s\nlinear: %s", what, got, want)
	}
	for addr := 0; addr < Size; addr++ {
		if a.ram[addr] != b.ram[addr] {
			t.Errorf("%s: ram[0x%04x] = %02x vs %02x", what, addr, a.ram[addr], b.ram[addr])
			break
		}
	}
}

// both runs the same access on both spaces and asserts equal results.
func (p *diffPair) both(t *testing.T, what string, f func(s *Space) uint16) {
	t.Helper()
	va := f(p.spaces[0])
	vb := f(p.spaces[1])
	if va != vb {
		t.Errorf("%s: value %04x (table) vs %04x (linear)", what, va, vb)
	}
}

// TestDispatchDifferentialTargeted drives the access shapes the page
// table must get exactly right — handler-boundary straddles, byte
// access synthesized onto word-only handlers, unmapped holes with their
// bus-error accounting, and WriteHook-visible plain stores — through
// both dispatch paths and requires identical observables.
func TestDispatchDifferentialTargeted(t *testing.T) {
	p := newDiffPair(t)
	layout := DefaultLayout()
	hole := layout.SecureDataEnd + 0x100 // inside the big unmapped hole

	cases := []struct {
		name string
		f    func(s *Space) uint16
	}{
		// Word access at each edge of the word-only handler, including
		// odd addresses that align down into/out of the range.
		{"LW at handler start", func(s *Space) uint16 { return s.LoadWord(wordLo) }},
		{"LW at handler end-1", func(s *Space) uint16 { return s.LoadWord(wordHi - 1) }},
		{"LW odd inside", func(s *Space) uint16 { return s.LoadWord(wordLo + 3) }},
		{"LW odd at end straddles out", func(s *Space) uint16 { return s.LoadWord(wordHi) }},
		{"LW just below", func(s *Space) uint16 { return s.LoadWord(wordLo - 2) }},
		{"LW just above", func(s *Space) uint16 { return s.LoadWord(wordHi + 1) }},
		{"SW at start", func(s *Space) uint16 { s.StoreWord(wordLo, 0x1234); return 0 }},
		{"SW odd aligns down", func(s *Space) uint16 { s.StoreWord(wordLo+5, 0x5678); return 0 }},
		{"SW just below handler", func(s *Space) uint16 { s.StoreWord(wordLo-2, 0x9ABC); return 0 }},
		// Byte access synthesized onto the word-only handler (RMW on
		// stores, half-word extract on loads).
		{"LB low byte of word dev", func(s *Space) uint16 { return uint16(s.LoadByte(wordLo + 2)) }},
		{"LB high byte of word dev", func(s *Space) uint16 { return uint16(s.LoadByte(wordLo + 3)) }},
		{"SB low byte of word dev", func(s *Space) uint16 { s.StoreByte(wordLo+4, 0x42); return 0 }},
		{"SB high byte of word dev", func(s *Space) uint16 { s.StoreByte(wordLo+5, 0x99); return 0 }},
		// Byte-capable handler takes byte accesses directly.
		{"LB byte dev", func(s *Space) uint16 { return uint16(s.LoadByte(byteLo + 1)) }},
		{"SB byte dev", func(s *Space) uint16 { s.StoreByte(byteLo, 0x7F); return 0 }},
		// The last byte of a handler range: a word access there aligns
		// down and stays inside; one byte past it leaves the handler.
		{"LB last handler byte", func(s *Space) uint16 { return uint16(s.LoadByte(byteHi)) }},
		{"LB one past handler", func(s *Space) uint16 { return uint16(s.LoadByte(byteHi + 1)) }},
		// Unmapped space: reads return all-ones and count bus errors,
		// writes are dropped and count bus errors.
		{"LW unmapped", func(s *Space) uint16 { return s.LoadWord(hole) }},
		{"LB unmapped", func(s *Space) uint16 { return uint16(s.LoadByte(hole + 1)) }},
		{"SW unmapped", func(s *Space) uint16 { s.StoreWord(hole+2, 0xDEAD); return 0 }},
		{"SB unmapped", func(s *Space) uint16 { s.StoreByte(hole+3, 0xEE); return 0 }},
		// Plain RAM with WriteHook accounting.
		{"SW dmem", func(s *Space) uint16 { s.StoreWord(layout.DMEMStart+0x10, 0xBEEF); return 0 }},
		{"SB dmem", func(s *Space) uint16 { s.StoreByte(layout.DMEMStart+0x13, 0x5A); return 0 }},
		{"LW dmem", func(s *Space) uint16 { return s.LoadWord(layout.DMEMStart + 0x10) }},
		{"SW top of memory", func(s *Space) uint16 { s.StoreWord(0xFFFE, 0xF00D); return 0 }},
		{"LW top of memory", func(s *Space) uint16 { return s.LoadWord(0xFFFF) }},
		// Unmapped periph-window addresses fall through to backing RAM.
		{"SW unclaimed periph addr", func(s *Space) uint16 { s.StoreWord(0x01F0, 0xCAFE); return 0 }},
		{"LW unclaimed periph addr", func(s *Space) uint16 { return s.LoadWord(0x01F0) }},
	}
	for _, tc := range cases {
		p.both(t, tc.name, tc.f)
		p.compare(t, tc.name)
	}
	if p.spaces[0].BusErrors == 0 {
		t.Error("targeted cases never hit unmapped space; bus-error accounting untested")
	}
	if p.spaces[0].HandlerStores() == 0 {
		t.Error("targeted cases never stored to a handler")
	}
}

// TestDispatchDifferentialRandom hammers both dispatch paths with the
// same pseudorandom access stream across the whole address space.
func TestDispatchDifferentialRandom(t *testing.T) {
	p := newDiffPair(t)
	rng := rand.New(rand.NewSource(0xE111D))
	for i := 0; i < 20000; i++ {
		addr := uint16(rng.Intn(Size))
		v := uint16(rng.Uint32())
		switch rng.Intn(4) {
		case 0:
			p.both(t, fmt.Sprintf("op%d LW %04x", i, addr), func(s *Space) uint16 { return s.LoadWord(addr) })
		case 1:
			p.both(t, fmt.Sprintf("op%d LB %04x", i, addr), func(s *Space) uint16 { return uint16(s.LoadByte(addr)) })
		case 2:
			p.both(t, fmt.Sprintf("op%d SW %04x", i, addr), func(s *Space) uint16 { s.StoreWord(addr, v); return 0 })
		case 3:
			p.both(t, fmt.Sprintf("op%d SB %04x", i, addr), func(s *Space) uint16 { s.StoreByte(addr, uint8(v)); return 0 })
		}
		if t.Failed() {
			t.Fatalf("diverged at op %d", i)
		}
	}
	p.compare(t, "after random stream")
	if p.spaces[0].BusErrors == 0 {
		t.Error("random stream never hit unmapped space")
	}
}

// TestDispatchTableMatchesRegions cross-checks the table against the
// layout classifier for every address.
func TestDispatchTableMatchesRegions(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	for a := 0; a < Size; a++ {
		addr := uint16(a)
		wantPlain := s.Layout.RegionOf(addr) != RegionUnmapped
		if s.plain[addr] != wantPlain {
			t.Fatalf("plain[0x%04x] = %v, want %v (region %v)", addr, s.plain[addr], wantPlain, s.Layout.RegionOf(addr))
		}
		if s.hidx[addr] != 0 {
			t.Fatalf("hidx[0x%04x] = %d on a handler-free space", addr, s.hidx[addr])
		}
	}
	d := newWordDev()
	if err := s.Map(0x0040, 0x0047, d); err != nil {
		t.Fatal(err)
	}
	for a := 0x0040; a <= 0x0047; a++ {
		if s.plain[a] || s.hidx[a] == 0 {
			t.Fatalf("mapped address 0x%04x not routed to handler", a)
		}
	}
	if s.plain[0x003F] != true || s.plain[0x0048] != true {
		t.Fatal("mapping leaked outside its range")
	}
}
