// Package mem models the 64 KB unified (von Neumann) address space of an
// openMSP430-class device: data memory (SRAM), program memory (flash),
// the EILID secure ROM and secure data regions, the peripheral window and
// the interrupt vector table. It provides the byte/word bus semantics the
// CPU core uses (word accesses are even-aligned, little-endian) plus a
// region map that the CASU/EILID hardware monitor derives its access
// policies from.
package mem

import (
	"fmt"
	"sync"
)

// Size of the MSP430 address space in bytes.
const Size = 0x10000

// Region classifies an address for the hardware monitor.
type Region uint8

const (
	// RegionPeriph is the memory-mapped peripheral window.
	RegionPeriph Region = iota
	// RegionDMEM is ordinary data memory (SRAM): writable, never executable.
	RegionDMEM
	// RegionSecureData is the EILID-exclusive secure DMEM holding the
	// shadow stack and the function-entry table. Only EILIDsw (code in
	// RegionSecureROM) may touch it.
	RegionSecureData
	// RegionPMEM is user program memory (flash): executable, immutable
	// outside a CASU secure update.
	RegionPMEM
	// RegionSecureROM holds EILIDsw. Immutable always; enterable only at
	// the architecturally blessed entry point.
	RegionSecureROM
	// RegionIVT is the interrupt vector table (top 32 bytes of flash).
	RegionIVT
	// RegionUnmapped is everything else; any access is a bus error.
	RegionUnmapped
)

func (r Region) String() string {
	switch r {
	case RegionPeriph:
		return "peripheral"
	case RegionDMEM:
		return "dmem"
	case RegionSecureData:
		return "secure-dmem"
	case RegionPMEM:
		return "pmem"
	case RegionSecureROM:
		return "secure-rom"
	case RegionIVT:
		return "ivt"
	case RegionUnmapped:
		return "unmapped"
	}
	return fmt.Sprintf("region(%d)", uint8(r))
}

// Layout is the device memory map. Bounds are inclusive start, inclusive
// end (matching datasheet convention).
type Layout struct {
	PeriphStart, PeriphEnd         uint16
	DMEMStart, DMEMEnd             uint16
	SecureDataStart, SecureDataEnd uint16
	PMEMStart, PMEMEnd             uint16
	SecureROMStart, SecureROMEnd   uint16
	IVTStart                       uint16 // always runs to 0xFFFF
}

// DefaultLayout mirrors the prototype in the paper: 2 KB SRAM, 256 B of
// secure data (shadow stack + function table), 6 KB user flash, 1.5 KB
// secure ROM for EILIDsw, IVT at the top.
func DefaultLayout() Layout {
	return Layout{
		PeriphStart: 0x0000, PeriphEnd: 0x01FF,
		DMEMStart: 0x0200, DMEMEnd: 0x09FF,
		SecureDataStart: 0x0A00, SecureDataEnd: 0x0AFF,
		PMEMStart: 0xE000, PMEMEnd: 0xF7FF,
		SecureROMStart: 0xF800, SecureROMEnd: 0xFDFF,
		IVTStart: 0xFFE0,
	}
}

// Validate checks that the layout regions are sane and non-overlapping in
// the order the default map uses.
func (l Layout) Validate() error {
	type span struct {
		name       string
		start, end uint32
	}
	spans := []span{
		{"periph", uint32(l.PeriphStart), uint32(l.PeriphEnd)},
		{"dmem", uint32(l.DMEMStart), uint32(l.DMEMEnd)},
		{"secure-dmem", uint32(l.SecureDataStart), uint32(l.SecureDataEnd)},
		{"pmem", uint32(l.PMEMStart), uint32(l.PMEMEnd)},
		{"secure-rom", uint32(l.SecureROMStart), uint32(l.SecureROMEnd)},
		{"ivt", uint32(l.IVTStart), 0xFFFF},
	}
	for i, s := range spans {
		if s.start > s.end {
			return fmt.Errorf("mem: %s region start 0x%04x after end 0x%04x", s.name, s.start, s.end)
		}
		if i > 0 && spans[i-1].end >= s.start {
			return fmt.Errorf("mem: %s region overlaps %s", s.name, spans[i-1].name)
		}
	}
	return nil
}

// RegionOf classifies an address.
func (l Layout) RegionOf(addr uint16) Region {
	switch {
	case addr >= l.IVTStart:
		return RegionIVT
	case addr >= l.SecureROMStart && addr <= l.SecureROMEnd:
		return RegionSecureROM
	case addr >= l.PMEMStart && addr <= l.PMEMEnd:
		return RegionPMEM
	case addr >= l.SecureDataStart && addr <= l.SecureDataEnd:
		return RegionSecureData
	case addr >= l.DMEMStart && addr <= l.DMEMEnd:
		return RegionDMEM
	case addr >= l.PeriphStart && addr <= l.PeriphEnd:
		return RegionPeriph
	}
	return RegionUnmapped
}

// InSecureROM reports whether addr (typically a PC value) is inside the
// EILIDsw region.
func (l Layout) InSecureROM(addr uint16) bool {
	return addr >= l.SecureROMStart && addr <= l.SecureROMEnd
}

// Executable reports whether instructions may be fetched from addr under
// the W⊕X policy (program memory, secure ROM and the IVT-resident reset
// path only).
func (l Layout) Executable(addr uint16) bool {
	switch l.RegionOf(addr) {
	case RegionPMEM, RegionSecureROM:
		return true
	}
	return false
}

// Handler services memory-mapped peripheral accesses. Addresses passed in
// are absolute. Byte accesses are synthesized from word accesses by the
// Space when a handler does not implement ByteHandler.
type Handler interface {
	LoadWord(addr uint16) uint16
	StoreWord(addr uint16, v uint16)
}

// ByteHandler is an optional refinement for peripherals with byte-wide
// registers (GPIO ports).
type ByteHandler interface {
	Handler
	LoadByte(addr uint16) uint8
	StoreByte(addr uint16, v uint8)
}

type mapping struct {
	start, end uint16 // inclusive
	h          Handler
}

// Space is the device memory: a 64 KB backing array plus peripheral
// mappings. It implements the bus the CPU core drives. Space performs no
// protection checks itself — protection is the hardware monitor's job —
// but it records the last bus error (access to unmapped space) for tests.
//
// Dispatch is O(1): two per-address tables, built at NewSpace/Map time,
// classify every address as plain backing memory, a peripheral handler,
// or unmapped space. The original linear handler scan is kept behind
// SetLinearDispatch as the reference semantics the tables are
// differentially tested against.
type Space struct {
	Layout Layout
	ram    [Size]byte
	maps   []mapping

	// plain marks addresses that dispatch straight to the backing array:
	// inside a mapped region, with no peripheral handler attached.
	plain [Size]bool
	// hidx maps an address to 1+index of its handler in maps (0 = none).
	hidx [Size]uint8

	// linear forces the reference linear-scan dispatch path.
	linear bool

	// handlerStores counts stores that reached a peripheral handler; the
	// machine's run loop uses it to notice that a register write may have
	// moved a peripheral's next-event deadline.
	handlerStores uint64

	// BusErrors counts accesses to unmapped addresses (reads return
	// 0xFFFF / 0xFF, writes are dropped), mirroring openMSP430's
	// behaviour of not trapping them.
	BusErrors int

	// WriteHook, when non-nil, observes every mutation of the backing
	// array — CPU stores, image loads, the volatile clear on reset —
	// with the start address and byte length. Peripheral-handler writes
	// are not reported: they never alias fetchable memory. The decode
	// cache (cpu.CPU.InvalidateCode) is its consumer.
	WriteHook func(addr uint16, n int)
}

// plainTemplates caches the handler-free dispatch table per layout, so
// the fleet runner's bulk machine construction pays the 64 K region
// classification once per layout rather than once per Space.
var plainTemplates sync.Map // Layout -> *[Size]bool

func plainTemplate(l Layout) *[Size]bool {
	if v, ok := plainTemplates.Load(l); ok {
		return v.(*[Size]bool)
	}
	t := new([Size]bool)
	// Every mapped region is plain memory until a handler claims it.
	for _, span := range [][2]uint16{
		{l.PeriphStart, l.PeriphEnd},
		{l.DMEMStart, l.DMEMEnd},
		{l.SecureDataStart, l.SecureDataEnd},
		{l.PMEMStart, l.PMEMEnd},
		{l.SecureROMStart, l.SecureROMEnd},
		{l.IVTStart, 0xFFFF},
	} {
		for a := int(span[0]); a <= int(span[1]); a++ {
			t[a] = true
		}
	}
	v, _ := plainTemplates.LoadOrStore(l, t)
	return v.(*[Size]bool)
}

// NewSpace creates a Space with the given layout.
func NewSpace(l Layout) (*Space, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	s := &Space{Layout: l}
	s.plain = *plainTemplate(l)
	return s, nil
}

// MustNewSpace is NewSpace for known-good layouts.
func MustNewSpace(l Layout) *Space {
	s, err := NewSpace(l)
	if err != nil {
		panic(err)
	}
	return s
}

// Map attaches a peripheral handler to [start,end] (inclusive). Mappings
// must fall inside the peripheral window and must not overlap.
func (s *Space) Map(start, end uint16, h Handler) error {
	if start > end {
		return fmt.Errorf("mem: bad mapping 0x%04x..0x%04x", start, end)
	}
	if s.Layout.RegionOf(start) != RegionPeriph || s.Layout.RegionOf(end) != RegionPeriph {
		return fmt.Errorf("mem: mapping 0x%04x..0x%04x outside peripheral window", start, end)
	}
	for _, m := range s.maps {
		if start <= m.end && m.start <= end {
			return fmt.Errorf("mem: mapping 0x%04x..0x%04x overlaps 0x%04x..0x%04x", start, end, m.start, m.end)
		}
	}
	if len(s.maps) >= 255 {
		return fmt.Errorf("mem: too many peripheral mappings (max 255)")
	}
	s.maps = append(s.maps, mapping{start, end, h})
	idx := uint8(len(s.maps)) // 1-based in hidx
	for a := int(start); a <= int(end); a++ {
		s.hidx[a] = idx
		s.plain[a] = false
	}
	return nil
}

// SetLinearDispatch selects the reference linear handler scan (true)
// instead of the per-address dispatch tables. Semantics are identical;
// the differential tests in this package assert that.
func (s *Space) SetLinearDispatch(on bool) { s.linear = on }

// HandlerStores returns a generation counter incremented by every store
// that reached a peripheral handler. The machine's batched run loop
// compares it between instructions to catch register writes that move a
// peripheral's next-event deadline.
func (s *Space) HandlerStores() uint64 { return s.handlerStores }

// Direct exposes the backing slab, the plain-memory dispatch flags and
// the live write hook so the CPU core can inline plain-RAM accesses
// without an interface call. The returned pointers alias live Space
// state: plain flags update as handlers are mapped, and *hook always
// reads the current WriteHook. Callers must reproduce Space semantics
// exactly (fast stores must invoke the hook).
func (s *Space) Direct() (slab *[Size]byte, plain *[Size]bool, hook *func(addr uint16, n int)) {
	return &s.ram, &s.plain, &s.WriteHook
}

func (s *Space) handlerAt(addr uint16) (Handler, bool) {
	for _, m := range s.maps {
		if addr >= m.start && addr <= m.end {
			return m.h, true
		}
	}
	return nil, false
}

// align forces word alignment the way the MSP430 bus does (A0 ignored).
func align(addr uint16) uint16 { return addr &^ 1 }

// lookup classifies addr: the handler attached there (nil when none)
// and whether the address is plain backing memory. Exactly one of
// (h != nil), plain, or unmapped holds.
func (s *Space) lookup(addr uint16) (h Handler, plain bool) {
	if s.linear {
		if lh, ok := s.handlerAt(addr); ok {
			return lh, false
		}
		return nil, s.Layout.RegionOf(addr) != RegionUnmapped
	}
	if i := s.hidx[addr]; i != 0 {
		return s.maps[i-1].h, false
	}
	return nil, s.plain[addr]
}

// LoadWord reads a little-endian word. Odd addresses are aligned down.
func (s *Space) LoadWord(addr uint16) uint16 {
	addr = align(addr)
	if !s.linear && s.plain[addr] {
		return uint16(s.ram[addr]) | uint16(s.ram[addr+1])<<8
	}
	h, plain := s.lookup(addr)
	if h != nil {
		return h.LoadWord(addr)
	}
	if !plain {
		s.BusErrors++
		return 0xFFFF
	}
	return uint16(s.ram[addr]) | uint16(s.ram[addr+1])<<8
}

// StoreWord writes a little-endian word. Odd addresses are aligned down.
func (s *Space) StoreWord(addr uint16, v uint16) {
	addr = align(addr)
	h, plain := s.lookup(addr)
	if h != nil {
		s.handlerStores++
		h.StoreWord(addr, v)
		return
	}
	if !plain {
		s.BusErrors++
		return
	}
	s.ram[addr] = byte(v)
	s.ram[addr+1] = byte(v >> 8)
	if s.WriteHook != nil {
		s.WriteHook(addr, 2)
	}
}

// LoadByte reads a byte.
func (s *Space) LoadByte(addr uint16) uint8 {
	h, plain := s.lookup(addr)
	if h != nil {
		if bh, ok := h.(ByteHandler); ok {
			return bh.LoadByte(addr)
		}
		w := h.LoadWord(align(addr))
		if addr&1 != 0 {
			return uint8(w >> 8)
		}
		return uint8(w)
	}
	if !plain {
		s.BusErrors++
		return 0xFF
	}
	return s.ram[addr]
}

// StoreByte writes a byte.
func (s *Space) StoreByte(addr uint16, v uint8) {
	h, plain := s.lookup(addr)
	if h != nil {
		s.handlerStores++
		if bh, ok := h.(ByteHandler); ok {
			bh.StoreByte(addr, v)
			return
		}
		w := h.LoadWord(align(addr))
		if addr&1 != 0 {
			w = w&0x00FF | uint16(v)<<8
		} else {
			w = w&0xFF00 | uint16(v)
		}
		h.StoreWord(align(addr), w)
		return
	}
	if !plain {
		s.BusErrors++
		return
	}
	s.ram[addr] = v
	if s.WriteHook != nil {
		s.WriteHook(addr, 1)
	}
}

// PeekWord reads a little-endian word straight from the backing array,
// bypassing peripheral handlers and bus-error accounting — a debugger's
// (or predecoder's) view of memory with no side effects.
func (s *Space) PeekWord(addr uint16) uint16 {
	addr = align(addr)
	return uint16(s.ram[addr]) | uint16(s.ram[addr+1])<<8
}

// LoadImage copies raw bytes into the backing array starting at addr,
// bypassing peripheral mappings; it is the "flash programmer" used to
// install firmware before boot and by the secure-update path after
// authentication.
func (s *Space) LoadImage(addr uint16, data []byte) error {
	if int(addr)+len(data) > Size {
		return fmt.Errorf("mem: image of %d bytes at 0x%04x exceeds address space", len(data), addr)
	}
	copy(s.ram[addr:], data)
	if s.WriteHook != nil {
		s.WriteHook(addr, len(data))
	}
	return nil
}

// ReadRaw copies length bytes starting at addr out of the backing array,
// bypassing peripherals; used by tests and the attestation/update paths.
func (s *Space) ReadRaw(addr uint16, length int) []byte {
	if int(addr)+length > Size {
		length = Size - int(addr)
	}
	out := make([]byte, length)
	copy(out, s.ram[addr:int(addr)+length])
	return out
}

// Reset clears volatile memory (DMEM and secure DMEM) while preserving
// program memory, secure ROM and the IVT — the behaviour of a device
// reset as opposed to a reflash. This path runs on every monitor
// violation, so the volatile regions are cleared as whole slab ranges
// rather than byte-at-a-time; the WriteHook invalidation spans are
// unchanged.
func (s *Space) Reset() {
	clear(s.ram[s.Layout.DMEMStart : int(s.Layout.DMEMEnd)+1])
	clear(s.ram[s.Layout.SecureDataStart : int(s.Layout.SecureDataEnd)+1])
	if s.WriteHook != nil {
		s.WriteHook(s.Layout.DMEMStart, int(s.Layout.DMEMEnd)-int(s.Layout.DMEMStart)+1)
		s.WriteHook(s.Layout.SecureDataStart, int(s.Layout.SecureDataEnd)-int(s.Layout.SecureDataStart)+1)
	}
}

// Snapshot is an immutable copy of a Space's restorable state: the full
// backing slab plus the bus-error count at capture time. The dispatch
// state (layout, peripheral mappings, per-address tables) is not
// captured — it is construction-time state that Restore requires to be
// unchanged, which is what makes Restore a pair of copies instead of a
// re-zero and re-map.
type Snapshot struct {
	layout    Layout
	ram       [Size]byte
	busErrors int
}

// Snapshot captures the Space's current memory image and bus-error
// count. The fleet seals one per fully-constructed machine (post
// firmware load) so later jobs restore it instead of rebuilding.
func (s *Space) Snapshot() *Snapshot {
	return &Snapshot{layout: s.Layout, ram: s.ram, busErrors: s.BusErrors}
}

// Restore copies a snapshot back over the backing slab and bus-error
// count, leaving the peripheral mappings and dispatch tables (which the
// snapshot asserts are unchanged — it must come from a Space with the
// same layout) in place. Restore does NOT report the slab mutation
// through WriteHook: the restored bytes are, by construction, the exact
// image any installed decode cache was built from, so the caller resets
// cache staleness wholesale instead (core.Machine.Recycle pairs Restore
// with cpu.CPU.ResetCodeState).
func (s *Space) Restore(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("mem: restore from nil snapshot")
	}
	if snap.layout != s.Layout {
		return fmt.Errorf("mem: snapshot layout does not match this space")
	}
	s.ram = snap.ram
	s.BusErrors = snap.busErrors
	return nil
}

// VectorAddress returns the IVT slot address for interrupt line n
// (0..15); line 15 is the reset vector at 0xFFFE.
func (l Layout) VectorAddress(line int) uint16 {
	return l.IVTStart + uint16(line)*2
}

// ResetVector is the address of the reset vector slot.
func (l Layout) ResetVector() uint16 { return l.VectorAddress(15) }
