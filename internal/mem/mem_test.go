package mem

import (
	"testing"
	"testing/quick"
)

func TestDefaultLayoutValid(t *testing.T) {
	if err := DefaultLayout().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutValidateRejectsOverlap(t *testing.T) {
	l := DefaultLayout()
	l.DMEMStart = 0x0100 // overlaps peripheral window
	if err := l.Validate(); err == nil {
		t.Error("overlapping layout accepted")
	}
	l = DefaultLayout()
	l.PMEMEnd = 0x0100 // start after end
	if err := l.Validate(); err == nil {
		t.Error("inverted region accepted")
	}
}

func TestRegionOf(t *testing.T) {
	l := DefaultLayout()
	cases := []struct {
		addr uint16
		want Region
	}{
		{0x0000, RegionPeriph},
		{0x01FF, RegionPeriph},
		{0x0200, RegionDMEM},
		{0x09FF, RegionDMEM},
		{0x0A00, RegionSecureData},
		{0x0AFF, RegionSecureData},
		{0x0B00, RegionUnmapped},
		{0xDFFF, RegionUnmapped},
		{0xE000, RegionPMEM},
		{0xF7FF, RegionPMEM},
		{0xF800, RegionSecureROM},
		{0xFDFF, RegionSecureROM},
		{0xFE00, RegionUnmapped},
		{0xFFE0, RegionIVT},
		{0xFFFE, RegionIVT},
	}
	for _, c := range cases {
		if got := l.RegionOf(c.addr); got != c.want {
			t.Errorf("RegionOf(0x%04x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestExecutable(t *testing.T) {
	l := DefaultLayout()
	if l.Executable(0x0300) {
		t.Error("DMEM must not be executable (W^X)")
	}
	if l.Executable(0x0A10) {
		t.Error("secure DMEM must not be executable")
	}
	if !l.Executable(0xE000) {
		t.Error("PMEM must be executable")
	}
	if !l.Executable(0xF900) {
		t.Error("secure ROM must be executable")
	}
}

func TestWordByteAccess(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	s.StoreWord(0x0200, 0xBEEF)
	if got := s.LoadWord(0x0200); got != 0xBEEF {
		t.Errorf("LoadWord = 0x%04x", got)
	}
	if got := s.LoadByte(0x0200); got != 0xEF {
		t.Errorf("low byte = 0x%02x, want 0xef (little endian)", got)
	}
	if got := s.LoadByte(0x0201); got != 0xBE {
		t.Errorf("high byte = 0x%02x, want 0xbe", got)
	}
	s.StoreByte(0x0201, 0xAA)
	if got := s.LoadWord(0x0200); got != 0xAAEF {
		t.Errorf("after byte store LoadWord = 0x%04x, want 0xaaef", got)
	}
	// Odd word access aligns down, as on the real bus.
	if got := s.LoadWord(0x0201); got != 0xAAEF {
		t.Errorf("odd-address word load = 0x%04x, want aligned 0xaaef", got)
	}
	s.StoreWord(0x0203, 0x1234)
	if got := s.LoadWord(0x0202); got != 0x1234 {
		t.Errorf("odd-address word store not aligned: 0x%04x", got)
	}
}

func TestUnmappedAccess(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	if got := s.LoadWord(0x0C00); got != 0xFFFF {
		t.Errorf("unmapped read = 0x%04x, want 0xffff", got)
	}
	s.StoreWord(0x0C00, 0x1234)
	if got := s.LoadWord(0x0C00); got != 0xFFFF {
		t.Errorf("unmapped write took effect")
	}
	if got := s.LoadByte(0x0C01); got != 0xFF {
		t.Errorf("unmapped byte read = 0x%02x", got)
	}
	if s.BusErrors != 4 {
		t.Errorf("BusErrors = %d, want 4", s.BusErrors)
	}
}

type stubPeriph struct {
	words map[uint16]uint16
}

func (p *stubPeriph) LoadWord(a uint16) uint16     { return p.words[a] }
func (p *stubPeriph) StoreWord(a uint16, v uint16) { p.words[a] = v }

func TestPeripheralMapping(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	p := &stubPeriph{words: map[uint16]uint16{}}
	if err := s.Map(0x0020, 0x002F, p); err != nil {
		t.Fatal(err)
	}
	s.StoreWord(0x0020, 0x00FF)
	if p.words[0x0020] != 0x00FF {
		t.Error("peripheral store not dispatched")
	}
	if got := s.LoadWord(0x0020); got != 0x00FF {
		t.Errorf("peripheral load = 0x%04x", got)
	}
	// Byte access synthesized through word handler.
	s.StoreByte(0x0021, 0xAB)
	if p.words[0x0020] != 0xABFF {
		t.Errorf("byte store through word handler = 0x%04x, want 0xabff", p.words[0x0020])
	}
	if got := s.LoadByte(0x0021); got != 0xAB {
		t.Errorf("byte load through word handler = 0x%02x", got)
	}

	// Overlapping and out-of-window mappings are rejected.
	if err := s.Map(0x0028, 0x0030, &stubPeriph{}); err == nil {
		t.Error("overlapping mapping accepted")
	}
	if err := s.Map(0x0300, 0x0310, &stubPeriph{}); err == nil {
		t.Error("mapping outside peripheral window accepted")
	}
	if err := s.Map(0x0040, 0x0030, &stubPeriph{}); err == nil {
		t.Error("inverted mapping accepted")
	}
}

func TestLoadImageAndReadRaw(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	img := []byte{0x01, 0x02, 0x03, 0x04}
	if err := s.LoadImage(0xE000, img); err != nil {
		t.Fatal(err)
	}
	got := s.ReadRaw(0xE000, 4)
	for i := range img {
		if got[i] != img[i] {
			t.Fatalf("ReadRaw = %v, want %v", got, img)
		}
	}
	if err := s.LoadImage(0xFFFE, []byte{1, 2, 3}); err == nil {
		t.Error("image exceeding address space accepted")
	}
}

func TestResetClearsVolatileOnly(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	s.StoreWord(0x0300, 0x1111)          // DMEM
	s.StoreWord(0x0A10, 0x2222)          // secure DMEM
	s.LoadImage(0xE000, []byte{5, 6})    // PMEM
	s.LoadImage(0xF800, []byte{7, 8})    // secure ROM
	s.LoadImage(0xFFFE, []byte{0, 0xE0}) // reset vector
	s.Reset()
	if s.LoadWord(0x0300) != 0 {
		t.Error("DMEM survived reset")
	}
	if s.LoadWord(0x0A10) != 0 {
		t.Error("secure DMEM survived reset")
	}
	if s.LoadWord(0xE000) != 0x0605 {
		t.Error("PMEM wiped by reset")
	}
	if s.LoadWord(0xF800) != 0x0807 {
		t.Error("secure ROM wiped by reset")
	}
	if s.LoadWord(0xFFFE) != 0xE000 {
		t.Error("IVT wiped by reset")
	}
}

func TestVectorAddresses(t *testing.T) {
	l := DefaultLayout()
	if got := l.ResetVector(); got != 0xFFFE {
		t.Errorf("ResetVector = 0x%04x", got)
	}
	if got := l.VectorAddress(0); got != 0xFFE0 {
		t.Errorf("VectorAddress(0) = 0x%04x", got)
	}
	if got := l.VectorAddress(8); got != 0xFFF0 {
		t.Errorf("VectorAddress(8) = 0x%04x", got)
	}
}

func TestRegionPartitionProperty(t *testing.T) {
	// Every address belongs to exactly one region, and RegionOf agrees
	// with Executable.
	l := DefaultLayout()
	f := func(addr uint16) bool {
		r := l.RegionOf(addr)
		exec := l.Executable(addr)
		wantExec := r == RegionPMEM || r == RegionSecureROM
		return exec == wantExec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	f := func(off uint16, v uint16) bool {
		// Constrain to DMEM.
		addr := 0x0200 + off%0x07FE
		s.StoreWord(addr, v)
		return s.LoadWord(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestByteWordConsistencyProperty(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	f := func(off uint16, v uint16) bool {
		addr := (0x0200 + off%0x07FE) &^ 1
		s.StoreWord(addr, v)
		lo, hi := s.LoadByte(addr), s.LoadByte(addr+1)
		return uint16(lo)|uint16(hi)<<8 == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
