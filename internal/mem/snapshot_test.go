package mem

import "testing"

// TestSnapshotRestoreRoundTrip pins the recycling contract: Restore
// returns the slab and the bus-error count to exactly the sealed state,
// leaving peripheral mappings in place and firing no WriteHook (the
// restored bytes are the image any decode cache was built from; the
// machine resets cache staleness wholesale instead).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	h := &stubHandler{}
	if err := s.Map(0x0100, 0x010F, h); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadImage(0xE000, []byte{0x11, 0x22, 0x33, 0x44}); err != nil {
		t.Fatal(err)
	}
	s.StoreWord(0x0200, 0xBEEF)
	s.LoadWord(0x0C00) // unmapped: one bus error into the snapshot
	snap := s.Snapshot()

	var hooked int
	s.WriteHook = func(addr uint16, n int) { hooked++ }
	s.StoreWord(0x0200, 0x0000)
	s.StoreWord(0xE000, 0x5555)
	s.Reset()
	s.LoadWord(0x0C00)
	s.LoadWord(0x0C02)
	preHooks := hooked

	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if hooked != preHooks {
		t.Errorf("Restore fired the WriteHook %d times, want 0", hooked-preHooks)
	}
	if got := s.LoadWord(0x0200); got != 0xBEEF {
		t.Errorf("DMEM after restore = 0x%04x, want 0xBEEF", got)
	}
	if got := s.PeekWord(0xE000); got != 0x2211 {
		t.Errorf("PMEM after restore = 0x%04x, want 0x2211", got)
	}
	if s.BusErrors != 1 {
		t.Errorf("BusErrors after restore = %d, want the sealed 1", s.BusErrors)
	}
	// The mapping survives untouched: handler dispatch still works.
	s.StoreWord(0x0100, 7)
	if h.stores != 1 {
		t.Errorf("peripheral mapping lost across restore: %d stores", h.stores)
	}
}

// TestSnapshotRestoreRejectsMismatch pins the guard rails: nil
// snapshots and layout mismatches are errors, not silent corruption.
func TestSnapshotRestoreRejectsMismatch(t *testing.T) {
	s := MustNewSpace(DefaultLayout())
	if err := s.Restore(nil); err == nil {
		t.Error("Restore(nil) succeeded")
	}
	other := DefaultLayout()
	other.DMEMEnd = 0x08FF
	snap := MustNewSpace(other).Snapshot()
	if err := s.Restore(snap); err == nil {
		t.Error("Restore accepted a snapshot from a different layout")
	}
}

// stubHandler counts stores for the mapping-survival assertion.
type stubHandler struct{ stores int }

func (h *stubHandler) LoadWord(addr uint16) uint16     { return 0 }
func (h *stubHandler) StoreWord(addr uint16, v uint16) { h.stores++ }
