// Package periph provides the memory-mapped peripherals of the simulated
// openMSP430 device: GPIO ports, a Timer_A-style timer, an ADC with
// pluggable sensor models, a UART, an HD44780-style character LCD, an
// ultrasonic-ranger front-end and the interrupt controller. These are the
// devices the paper's seven benchmark applications talk to (Seeed Grove
// sensors, the OpenSyringePump stepper, the ticepd msp430-examples).
//
// All peripherals are deterministic: sensor models are fixed functions of
// the sample index, so two runs of the same firmware produce identical
// traces — a property the original-vs-instrumented equivalence tests in
// internal/core rely on.
package periph

import "fmt"

// Register addresses (inside the peripheral window 0x0000-0x01FF of
// mem.DefaultLayout).
const (
	// GPIO port 1 (byte registers).
	P1INAddr  = 0x0020
	P1OUTAddr = 0x0021
	P1DIRAddr = 0x0022
	P1IFGAddr = 0x0023
	P1IEAddr  = 0x0024
	// GPIO port 2.
	P2INAddr  = 0x0028
	P2OUTAddr = 0x0029
	P2DIRAddr = 0x002A
	P2IFGAddr = 0x002B
	P2IEAddr  = 0x002C

	// UART.
	UTXAddr   = 0x0070 // write: transmit byte
	URXAddr   = 0x0072 // read: next received byte
	USTATAddr = 0x0074 // bit0: rx available, bit1: tx ready (always)

	// ADC.
	ADCCTLAddr = 0x0080 // bit0: start; bits 8..11: channel; bit4: IE
	ADCMEMAddr = 0x0082 // conversion result
	ADCSTAGES  = 0x0084 // bit0: conversion done

	// LCD controller.
	LCDCMDAddr  = 0x0090
	LCDDATAAddr = 0x0092

	// Ultrasonic ranger front-end.
	USTRIGAddr  = 0x00A0 // write: start a ping
	USWIDTHAddr = 0x00A2 // echo width in microseconds (valid when done)
	USSTATAddr  = 0x00A4 // bit0: measurement done

	// EILID violation latch (secure peripheral: only EILIDsw may write;
	// the CASU monitor enforces that and resets on any write).
	ViolationAddr = 0x00F0
)

// Interrupt lines (vector = 0xFFE0 + 2*line). Line 15 is reset.
const (
	IRQPort1      = 4
	IRQADC        = 5
	IRQUltrasonic = 6
	IRQUART       = 7
	IRQTimerA     = 8
)

// Ticker is implemented by peripherals that advance with CPU cycles.
type Ticker interface {
	Tick(cycles int)
}

// NoEvent is the NextEvent sentinel meaning "no pending deadline".
const NoEvent = ^uint64(0)

// Cycled is a clocked peripheral the machine's run loop drives in
// batches instead of once per instruction. A Cycled peripheral keeps an
// internal sync anchor (the absolute cycle it has been ticked through)
// and lazily catches itself up — via its Clock — whenever firmware
// touches one of its registers, so register reads observe exactly the
// state per-instruction ticking would have produced.
type Cycled interface {
	Ticker
	// SyncTo ticks the peripheral forward to the absolute cycle.
	SyncTo(cycle uint64)
	// Resync moves the anchor to cycle without ticking the elapsed
	// time — the machine uses it after device resets and CPU faults,
	// whose cycles per-instruction ticking never delivered either.
	Resync(cycle uint64)
	// NextEvent returns the absolute cycle at which the peripheral will
	// next act on its own (raise an interrupt, complete a conversion),
	// or NoEvent. The run loop must sync it no later than that cycle;
	// syncing earlier is always safe.
	NextEvent() uint64
}

// IRQController collects interrupt requests from peripherals and feeds
// the CPU core (it implements cpu.IRQSource).
type IRQController struct {
	pending uint16
}

// Request asserts an interrupt line.
func (q *IRQController) Request(line int) {
	if line >= 0 && line < 16 {
		q.pending |= 1 << line
	}
}

// HighestPending returns the highest pending line number or -1.
func (q *IRQController) HighestPending() int {
	for line := 15; line >= 0; line-- {
		if q.pending&(1<<line) != 0 {
			return line
		}
	}
	return -1
}

// Acknowledge clears a pending line.
func (q *IRQController) Acknowledge(line int) {
	q.pending &^= 1 << line
}

// Pending reports whether the line is asserted.
func (q *IRQController) Pending(line int) bool { return q.pending&(1<<line) != 0 }

// Reset clears all pending requests.
func (q *IRQController) Reset() { q.pending = 0 }

// --- GPIO ----------------------------------------------------------------

// OutputEvent records a GPIO output transition for test assertions.
type OutputEvent struct {
	Cycle uint64
	Value uint8
}

// GPIO is an 8-bit port with direction, input, output and edge-interrupt
// flags (P1-style).
type GPIO struct {
	Base uint16 // address of the IN register
	IRQ  *IRQController
	Line int

	In, Out, Dir, IFG, IE uint8

	// Clock supplies the current cycle count for output-event timestamps
	// (wired to the CPU's cycle counter by the machine).
	Clock func() uint64
	// Events is the recorded output-transition history.
	Events []OutputEvent
}

// NewGPIO creates a port at base (IN register address).
func NewGPIO(base uint16, irq *IRQController, line int) *GPIO {
	return &GPIO{Base: base, IRQ: irq, Line: line, Clock: func() uint64 { return 0 }}
}

// PowerOn returns the port to its freshly constructed state: registers
// zeroed, output-event history dropped.
func (g *GPIO) PowerOn() {
	g.In, g.Out, g.Dir, g.IFG, g.IE = 0, 0, 0, 0, 0
	g.Events = nil
}

// SetInput drives the port's input pins from the outside world, latching
// edge interrupts for newly risen bits that are enabled.
func (g *GPIO) SetInput(v uint8) {
	rising := v &^ g.In
	g.In = v
	if fired := rising & g.IE; fired != 0 {
		g.IFG |= fired
		if g.IRQ != nil {
			g.IRQ.Request(g.Line)
		}
	}
}

// LoadByte implements mem.ByteHandler.
func (g *GPIO) LoadByte(addr uint16) uint8 {
	switch addr - g.Base {
	case 0:
		return g.In
	case 1:
		return g.Out
	case 2:
		return g.Dir
	case 3:
		return g.IFG
	case 4:
		return g.IE
	}
	return 0
}

// StoreByte implements mem.ByteHandler.
func (g *GPIO) StoreByte(addr uint16, v uint8) {
	switch addr - g.Base {
	case 0: // IN is read-only
	case 1:
		if g.Out != v {
			g.Out = v
			g.Events = append(g.Events, OutputEvent{Cycle: g.Clock(), Value: v})
		}
	case 2:
		g.Dir = v
	case 3:
		g.IFG = v
	case 4:
		g.IE = v
	}
}

// LoadWord implements mem.Handler by pairing byte registers.
func (g *GPIO) LoadWord(addr uint16) uint16 {
	return uint16(g.LoadByte(addr)) | uint16(g.LoadByte(addr+1))<<8
}

// StoreWord implements mem.Handler.
func (g *GPIO) StoreWord(addr uint16, v uint16) {
	g.StoreByte(addr, uint8(v))
	g.StoreByte(addr+1, uint8(v>>8))
}

// Span returns the register range for bus mapping.
func (g *GPIO) Span() (lo, hi uint16) { return g.Base, g.Base + 5 }

// --- Timer ---------------------------------------------------------------

// Timer control bits.
const (
	TimerModeUp = 1 << 0 // count 0..CCR0 repeatedly
	TimerClear  = 1 << 1 // write-1: reset counter
	TimerIE     = 1 << 2 // interrupt on wrap
	TimerIFG    = 1 << 3
)

// Timer is a Timer_A-style up counter clocked by MCLK.
type Timer struct {
	Base uint16 // TACTL address; TAR at +0x10, CCR0 at +0x12
	IRQ  *IRQController
	Line int

	CTL  uint16
	TAR  uint16
	CCR0 uint16
	// Wraps counts CCR0 rollovers (handy for tests and app timing).
	Wraps uint64

	// Clock supplies the current cycle count for lazy catch-up on
	// register access (wired to the CPU's cycle counter by the machine;
	// nil for standalone use, where Tick drives the timer directly).
	Clock  func() uint64
	synced uint64
}

// NewTimer creates a timer with registers at base.
func NewTimer(base uint16, irq *IRQController, line int) *Timer {
	return &Timer{Base: base, IRQ: irq, Line: line}
}

// PowerOn returns the timer to its freshly constructed state: registers
// and the wrap count zeroed, sync anchor back at cycle 0.
func (t *Timer) PowerOn() {
	t.CTL, t.TAR, t.CCR0 = 0, 0, 0
	t.Wraps = 0
	t.synced = 0
}

// Tick advances the timer by CPU cycles. The wrap count, IFG latching
// and interrupt requests are computed in closed form but are identical
// to stepping the counter one cycle at a time (the pending bit a wrap
// requests is idempotent).
func (t *Timer) Tick(cycles int) {
	if t.CTL&TimerModeUp == 0 || t.CCR0 == 0 || cycles <= 0 {
		return
	}
	n := uint64(cycles)
	first := t.ticksToWrap()
	if n < first {
		t.TAR += uint16(n) // may pass 0xFFFF and overflow to 0, as TAR++ does
		return
	}
	n -= first
	period := uint64(t.CCR0)
	t.Wraps += 1 + n/period
	t.TAR = uint16(n % period)
	t.CTL |= TimerIFG
	if t.CTL&TimerIE != 0 && t.IRQ != nil {
		t.IRQ.Request(t.Line)
	}
}

// ticksToWrap counts the increments until the counter next wraps,
// replicating the per-cycle sequence exactly: TAR increments (with
// uint16 overflow) before the >= CCR0 comparison, so a TAR of 0xFFFF
// rolls over to 0 without wrapping and counts a full period from there,
// while any other at/past-CCR0 value wraps on its next increment.
func (t *Timer) ticksToWrap() uint64 {
	switch {
	case t.TAR < t.CCR0:
		return uint64(t.CCR0 - t.TAR)
	case t.TAR == 0xFFFF:
		return 1 + uint64(t.CCR0)
	}
	return 1
}

// SyncTo implements Cycled.
func (t *Timer) SyncTo(cycle uint64) {
	if cycle > t.synced {
		t.Tick(int(cycle - t.synced))
		t.synced = cycle
	}
}

// Resync implements Cycled.
func (t *Timer) Resync(cycle uint64) { t.synced = cycle }

// NextEvent implements Cycled: the cycle of the next CCR0 wrap.
func (t *Timer) NextEvent() uint64 {
	if t.CTL&TimerModeUp == 0 || t.CCR0 == 0 {
		return NoEvent
	}
	return t.synced + t.ticksToWrap()
}

// lazySync catches the timer up to the live clock before a register
// access observes or mutates its state.
func (t *Timer) lazySync() {
	if t.Clock != nil {
		t.SyncTo(t.Clock())
	}
}

// LoadWord implements mem.Handler.
func (t *Timer) LoadWord(addr uint16) uint16 {
	t.lazySync()
	switch addr - t.Base {
	case 0x00:
		return t.CTL
	case 0x10:
		return t.TAR
	case 0x12:
		return t.CCR0
	}
	return 0
}

// StoreWord implements mem.Handler.
func (t *Timer) StoreWord(addr uint16, v uint16) {
	t.lazySync()
	switch addr - t.Base {
	case 0x00:
		t.CTL = v &^ TimerClear
		if v&TimerClear != 0 {
			t.TAR = 0
		}
	case 0x10:
		t.TAR = v
	case 0x12:
		t.CCR0 = v
	}
}

// Span returns the register range for bus mapping.
func (t *Timer) Span() (lo, hi uint16) { return t.Base, t.Base + 0x13 }

// --- ADC -----------------------------------------------------------------

// SensorModel produces the ADC reading for conversion n of a channel.
// Models must be pure functions so firmware runs are reproducible.
type SensorModel func(n int) uint16

// ADC control bits.
const (
	ADCStart = 1 << 0
	ADCIE    = 1 << 4
	ADCDone  = 1 << 0 // in the status register
)

// ADCConversionCycles models the sample-and-convert latency in MCLK
// cycles. A real ADC10 runs ~13 cycles of its own ~5 MHz oscillator
// while the 100 MHz core waits, so the CPU sees a few hundred cycles.
const ADCConversionCycles = 240

// ADC is a successive-approximation converter with per-channel sensor
// models.
type ADC struct {
	IRQ  *IRQController
	Line int

	channels map[uint8]SensorModel
	counts   map[uint8]int

	CTL     uint16
	MEM     uint16
	done    bool
	busyFor int // cycles remaining in the active conversion
	active  uint8

	// Clock supplies the current cycle count for lazy catch-up on
	// register access (nil for standalone use).
	Clock  func() uint64
	synced uint64
}

// NewADC creates an ADC with no channels attached.
func NewADC(irq *IRQController, line int) *ADC {
	return &ADC{IRQ: irq, Line: line, channels: map[uint8]SensorModel{}, counts: map[uint8]int{}}
}

// Attach connects a sensor model to a channel.
func (a *ADC) Attach(channel uint8, m SensorModel) {
	a.channels[channel] = m
}

// PowerOn returns the converter to its freshly constructed state —
// registers cleared, no conversion in flight, per-channel sample
// indices rewound — while keeping the attached sensor models (they are
// wiring, not run-time state).
func (a *ADC) PowerOn() {
	a.CTL, a.MEM = 0, 0
	a.done = false
	a.busyFor = 0
	a.active = 0
	clear(a.counts)
	a.synced = 0
}

// SyncTo implements Cycled.
func (a *ADC) SyncTo(cycle uint64) {
	if cycle > a.synced {
		a.Tick(int(cycle - a.synced))
		a.synced = cycle
	}
}

// Resync implements Cycled.
func (a *ADC) Resync(cycle uint64) { a.synced = cycle }

// NextEvent implements Cycled: the completion cycle of an in-flight
// conversion.
func (a *ADC) NextEvent() uint64 {
	if a.busyFor <= 0 {
		return NoEvent
	}
	return a.synced + uint64(a.busyFor)
}

func (a *ADC) lazySync() {
	if a.Clock != nil {
		a.SyncTo(a.Clock())
	}
}

// Tick advances an in-flight conversion.
func (a *ADC) Tick(cycles int) {
	if a.busyFor <= 0 {
		return
	}
	a.busyFor -= cycles
	if a.busyFor > 0 {
		return
	}
	a.busyFor = 0
	n := a.counts[a.active]
	a.counts[a.active] = n + 1
	if m, ok := a.channels[a.active]; ok {
		a.MEM = m(n) & 0x0FFF // 12-bit converter
	} else {
		a.MEM = 0
	}
	a.done = true
	if a.CTL&ADCIE != 0 && a.IRQ != nil {
		a.IRQ.Request(a.Line)
	}
}

// LoadWord implements mem.Handler.
func (a *ADC) LoadWord(addr uint16) uint16 {
	a.lazySync()
	switch addr {
	case ADCCTLAddr:
		return a.CTL
	case ADCMEMAddr:
		return a.MEM
	case ADCSTAGES:
		if a.done {
			return ADCDone
		}
		return 0
	}
	return 0
}

// StoreWord implements mem.Handler.
func (a *ADC) StoreWord(addr uint16, v uint16) {
	a.lazySync()
	switch addr {
	case ADCCTLAddr:
		a.CTL = v &^ ADCStart
		if v&ADCStart != 0 {
			a.active = uint8(v >> 8 & 0xF)
			a.busyFor = ADCConversionCycles
			a.done = false
		}
	case ADCMEMAddr: // read-only
	}
}

// Span returns the register range for bus mapping.
func (a *ADC) Span() (lo, hi uint16) { return ADCCTLAddr, ADCSTAGES + 1 }

// --- UART ----------------------------------------------------------------

// UART status bits.
const (
	UARTRxAvail = 1 << 0
	UARTTxReady = 1 << 1
)

// UART is a byte-oriented serial port. Transmit completes immediately
// (the paper's applications use polling output); received bytes are
// queued by the test harness via Feed.
type UART struct {
	IRQ  *IRQController
	Line int

	// TX is everything the firmware transmitted.
	TX []byte
	rx []byte
}

// NewUART creates a UART.
func NewUART(irq *IRQController, line int) *UART {
	return &UART{IRQ: irq, Line: line}
}

// PowerOn returns the port to its freshly constructed state: both the
// transmit transcript and any unconsumed receive bytes are dropped.
func (u *UART) PowerOn() {
	u.TX = nil
	u.rx = nil
}

// Feed queues bytes on the receive side and raises the RX interrupt.
func (u *UART) Feed(data []byte) {
	u.rx = append(u.rx, data...)
	if len(u.rx) > 0 && u.IRQ != nil {
		u.IRQ.Request(u.Line)
	}
}

// Transcript returns the transmitted bytes as a string.
func (u *UART) Transcript() string { return string(u.TX) }

// LoadWord implements mem.Handler.
func (u *UART) LoadWord(addr uint16) uint16 {
	switch addr {
	case URXAddr:
		if len(u.rx) == 0 {
			return 0
		}
		b := u.rx[0]
		u.rx = u.rx[1:]
		if len(u.rx) > 0 && u.IRQ != nil {
			u.IRQ.Request(u.Line)
		}
		return uint16(b)
	case USTATAddr:
		st := uint16(UARTTxReady)
		if len(u.rx) > 0 {
			st |= UARTRxAvail
		}
		return st
	}
	return 0
}

// StoreWord implements mem.Handler.
func (u *UART) StoreWord(addr uint16, v uint16) {
	if addr == UTXAddr {
		u.TX = append(u.TX, byte(v))
	}
}

// Span returns the register range for bus mapping.
func (u *UART) Span() (lo, hi uint16) { return UTXAddr, USTATAddr + 1 }

// --- LCD -----------------------------------------------------------------

// LCD command opcodes (HD44780 subset).
const (
	LCDCmdClear   = 0x01
	LCDCmdHome    = 0x02
	LCDCmdSetAddr = 0x80 // | ddram address
)

// LCDRows and LCDCols fix the panel geometry (16x2, the ubiquitous
// hobbyist module).
const (
	LCDRows = 2
	LCDCols = 16
)

// LCD is a character display. Writes land in a screen buffer the tests
// (and examples) can read back.
type LCD struct {
	screen [LCDRows][LCDCols]byte
	addr   int
	// Commands records the raw command stream for protocol tests.
	Commands []uint16
}

// NewLCD creates a cleared display.
func NewLCD() *LCD {
	l := &LCD{}
	l.clear()
	return l
}

func (l *LCD) clear() {
	for r := range l.screen {
		for c := range l.screen[r] {
			l.screen[r][c] = ' '
		}
	}
	l.addr = 0
}

// PowerOn returns the display to its freshly constructed state: screen
// cleared, cursor home, command history dropped.
func (l *LCD) PowerOn() {
	l.clear()
	l.Commands = nil
}

// Row returns the text of row r.
func (l *LCD) Row(r int) string {
	if r < 0 || r >= LCDRows {
		return ""
	}
	return string(l.screen[r][:])
}

// LoadWord implements mem.Handler (status: always ready).
func (l *LCD) LoadWord(addr uint16) uint16 { return 0 }

// StoreWord implements mem.Handler.
func (l *LCD) StoreWord(addr uint16, v uint16) {
	switch addr {
	case LCDCMDAddr:
		l.Commands = append(l.Commands, v)
		switch {
		case v == LCDCmdClear:
			l.clear()
		case v == LCDCmdHome:
			l.addr = 0
		case v&LCDCmdSetAddr != 0:
			l.addr = int(v & 0x7F)
		}
	case LCDDATAAddr:
		row, col := l.addr/0x40, l.addr%0x40
		if row < LCDRows && col < LCDCols {
			l.screen[row][col] = byte(v)
		}
		l.addr++
	}
}

// Span returns the register range for bus mapping.
func (l *LCD) Span() (lo, hi uint16) { return LCDCMDAddr, LCDDATAAddr + 1 }

// --- Ultrasonic ranger ---------------------------------------------------

// Ultrasonic models an HC-SR04-style ranger: firmware writes TRIG, the
// measurement completes after a flight time proportional to the modeled
// distance, and the echo width (µs) appears in the WIDTH register.
type Ultrasonic struct {
	IRQ  *IRQController
	Line int

	// Distance returns the distance in centimetres for ping n.
	Distance func(n int) uint16

	width   uint16
	done    bool
	busyFor int
	pings   int

	// Clock supplies the current cycle count for lazy catch-up on
	// register access (nil for standalone use).
	Clock  func() uint64
	synced uint64
}

// SyncTo implements Cycled.
func (u *Ultrasonic) SyncTo(cycle uint64) {
	if cycle > u.synced {
		u.Tick(int(cycle - u.synced))
		u.synced = cycle
	}
}

// Resync implements Cycled.
func (u *Ultrasonic) Resync(cycle uint64) { u.synced = cycle }

// NextEvent implements Cycled: the completion cycle of an in-flight
// measurement.
func (u *Ultrasonic) NextEvent() uint64 {
	if u.busyFor <= 0 {
		return NoEvent
	}
	return u.synced + uint64(u.busyFor)
}

func (u *Ultrasonic) lazySync() {
	if u.Clock != nil {
		u.SyncTo(u.Clock())
	}
}

// NewUltrasonic creates a ranger with a fixed 25 cm target.
func NewUltrasonic(irq *IRQController, line int) *Ultrasonic {
	return &Ultrasonic{IRQ: irq, Line: line, Distance: func(int) uint16 { return 25 }}
}

// PowerOn returns the ranger to its freshly constructed state — no
// measurement in flight, ping index rewound — while keeping the
// attached distance model.
func (u *Ultrasonic) PowerOn() {
	u.width = 0
	u.done = false
	u.busyFor = 0
	u.pings = 0
	u.synced = 0
}

// echo width: ~58 µs per cm (HC-SR04 datasheet figure).
const usPerCm = 58

// UltrasonicLatency is the MCLK-cycle delay between trigger and result
// (transducer settling plus a scaled-down echo flight time; the actual
// per-distance timing is folded into the width register).
const UltrasonicLatency = 2400

// Tick advances an in-flight measurement.
func (u *Ultrasonic) Tick(cycles int) {
	if u.busyFor <= 0 {
		return
	}
	u.busyFor -= cycles
	if u.busyFor > 0 {
		return
	}
	u.busyFor = 0
	d := u.Distance(u.pings)
	u.pings++
	u.width = d * usPerCm
	u.done = true
	if u.IRQ != nil {
		u.IRQ.Request(u.Line)
	}
}

// LoadWord implements mem.Handler.
func (u *Ultrasonic) LoadWord(addr uint16) uint16 {
	u.lazySync()
	switch addr {
	case USWIDTHAddr:
		return u.width
	case USSTATAddr:
		if u.done {
			return 1
		}
		return 0
	}
	return 0
}

// StoreWord implements mem.Handler.
func (u *Ultrasonic) StoreWord(addr uint16, v uint16) {
	u.lazySync()
	if addr == USTRIGAddr && v != 0 {
		u.done = false
		u.busyFor = UltrasonicLatency
	}
}

// Span returns the register range for bus mapping.
func (u *Ultrasonic) Span() (lo, hi uint16) { return USTRIGAddr, USSTATAddr + 1 }

// --- Violation latch -------------------------------------------------------

// ViolationLatch is the secure MMIO register EILIDsw writes when a CFI
// check fails. The CASU monitor treats ANY write to it as the reset
// trigger; writes from outside the secure ROM are themselves violations.
type ViolationLatch struct {
	// Writes counts stores to the register since the last reset.
	Writes int
	// Last is the last value written.
	Last uint16
}

// LoadWord implements mem.Handler (reads as zero).
func (v *ViolationLatch) LoadWord(addr uint16) uint16 { return 0 }

// StoreWord implements mem.Handler.
func (v *ViolationLatch) StoreWord(addr uint16, val uint16) {
	v.Writes++
	v.Last = val
}

// Reset clears the latch.
func (v *ViolationLatch) Reset() { v.Writes = 0; v.Last = 0 }

// Span returns the register range for bus mapping.
func (v *ViolationLatch) Span() (lo, hi uint16) { return ViolationAddr, ViolationAddr + 1 }

// --- Standard sensor models ----------------------------------------------

// LightSensorModel is a deterministic ambient-light curve: a slow
// day/night ramp with a dip in the middle (samples in 12-bit range).
func LightSensorModel(n int) uint16 {
	phase := n % 64
	var v int
	if phase < 32 {
		v = 200 + phase*100
	} else {
		v = 200 + (63-phase)*100
	}
	return uint16(v)
}

// TempSensorModel ramps from 20.0°C to 35.9°C in tenths, encoded as the
// raw ADC value of an LM35-style sensor (10 mV/°C, 3.3V ref, 12 bits).
func TempSensorModel(n int) uint16 {
	tenths := 200 + n%160
	return uint16(tenths * 4096 / 3300)
}

// FlameSensorModel is quiet noise with a fire event between samples 40
// and 48 (values above 0x0800 mean "flame detected").
func FlameSensorModel(n int) uint16 {
	if k := n % 64; k >= 40 && k < 48 {
		return 0x0900 + uint16(k)*7
	}
	return 0x0100 + uint16(n%16)*3
}

// RangerDistanceModel is a target approaching from 100 cm to 5 cm and
// retreating, 5 cm per ping.
func RangerDistanceModel(n int) uint16 {
	k := n % 38
	if k < 19 {
		return uint16(100 - 5*k)
	}
	return uint16(5 + 5*(k-19))
}

// String renders the LCD contents for debugging.
func (l *LCD) String() string {
	return fmt.Sprintf("[%s]\n[%s]", l.Row(0), l.Row(1))
}
