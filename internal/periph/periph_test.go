package periph

import (
	"testing"
	"testing/quick"
)

func TestIRQControllerPriority(t *testing.T) {
	q := &IRQController{}
	if q.HighestPending() != -1 {
		t.Error("empty controller should report -1")
	}
	q.Request(IRQPort1)
	q.Request(IRQTimerA)
	if got := q.HighestPending(); got != IRQTimerA {
		t.Errorf("HighestPending = %d, want timer (%d)", got, IRQTimerA)
	}
	q.Acknowledge(IRQTimerA)
	if got := q.HighestPending(); got != IRQPort1 {
		t.Errorf("after ack: %d, want port1 (%d)", got, IRQPort1)
	}
	q.Acknowledge(IRQPort1)
	if q.HighestPending() != -1 {
		t.Error("controller should drain")
	}
	q.Request(20) // out of range: ignored
	if q.HighestPending() != -1 {
		t.Error("out-of-range line accepted")
	}
}

func TestGPIOReadWrite(t *testing.T) {
	q := &IRQController{}
	g := NewGPIO(P1INAddr, q, IRQPort1)
	g.StoreByte(P1DIRAddr, 0xF0)
	if g.LoadByte(P1DIRAddr) != 0xF0 {
		t.Error("DIR readback failed")
	}
	g.StoreByte(P1OUTAddr, 0xAA)
	if g.LoadByte(P1OUTAddr) != 0xAA {
		t.Error("OUT readback failed")
	}
	if len(g.Events) != 1 || g.Events[0].Value != 0xAA {
		t.Errorf("output events = %+v", g.Events)
	}
	// Writing the same value records no event.
	g.StoreByte(P1OUTAddr, 0xAA)
	if len(g.Events) != 1 {
		t.Error("duplicate output value recorded")
	}
	// IN is read-only.
	g.StoreByte(P1INAddr, 0xFF)
	if g.LoadByte(P1INAddr) != 0 {
		t.Error("IN should be read-only")
	}
}

func TestGPIOEdgeInterrupt(t *testing.T) {
	q := &IRQController{}
	g := NewGPIO(P1INAddr, q, IRQPort1)
	g.StoreByte(P1IEAddr, 0x01)
	g.SetInput(0x02) // wrong pin: no interrupt
	if q.Pending(IRQPort1) {
		t.Error("interrupt on non-enabled pin")
	}
	g.SetInput(0x03) // pin0 rises
	if !q.Pending(IRQPort1) {
		t.Error("no interrupt on enabled rising edge")
	}
	if g.LoadByte(P1IFGAddr)&0x01 == 0 {
		t.Error("IFG not latched")
	}
	q.Acknowledge(IRQPort1)
	g.SetInput(0x03) // no edge
	if q.Pending(IRQPort1) {
		t.Error("interrupt without edge")
	}
}

func TestGPIOWordAccess(t *testing.T) {
	g := NewGPIO(P1INAddr, nil, IRQPort1)
	g.StoreWord(P1OUTAddr, 0x22AA) // OUT=0xAA, DIR=0x22 (byte pair)
	if g.Out != 0xAA || g.Dir != 0x22 {
		t.Errorf("word store: out=0x%02x dir=0x%02x", g.Out, g.Dir)
	}
	if got := g.LoadWord(P1OUTAddr); got != 0x22AA {
		t.Errorf("word load = 0x%04x", got)
	}
}

func TestTimerUpModeAndIRQ(t *testing.T) {
	q := &IRQController{}
	tm := NewTimer(0x0160, q, IRQTimerA)
	tm.StoreWord(0x0172, 100)                 // CCR0
	tm.StoreWord(0x0160, TimerModeUp|TimerIE) // start
	tm.Tick(99)
	if q.Pending(IRQTimerA) {
		t.Error("interrupt before CCR0 reached")
	}
	tm.Tick(1)
	if !q.Pending(IRQTimerA) {
		t.Error("no interrupt at CCR0")
	}
	if tm.TAR != 0 {
		t.Errorf("TAR = %d, want 0 after wrap", tm.TAR)
	}
	if tm.Wraps != 1 {
		t.Errorf("Wraps = %d", tm.Wraps)
	}
	// Stopped timer does not advance.
	tm.StoreWord(0x0160, 0)
	tm.Tick(1000)
	if tm.TAR != 0 {
		t.Error("stopped timer advanced")
	}
	// Clear bit resets TAR and is not sticky.
	tm.StoreWord(0x0170, 55)
	tm.StoreWord(0x0160, TimerModeUp|TimerClear)
	if tm.TAR != 0 {
		t.Error("TimerClear did not reset TAR")
	}
	if tm.CTL&TimerClear != 0 {
		t.Error("TimerClear stuck in CTL")
	}
}

func TestADCConversion(t *testing.T) {
	q := &IRQController{}
	a := NewADC(q, IRQADC)
	a.Attach(3, func(n int) uint16 { return uint16(0x100 + n) })
	a.StoreWord(ADCCTLAddr, ADCStart|3<<8|ADCIE)
	if a.LoadWord(ADCSTAGES) != 0 {
		t.Error("done before conversion time")
	}
	a.Tick(ADCConversionCycles)
	if a.LoadWord(ADCSTAGES) != ADCDone {
		t.Error("conversion did not complete")
	}
	if got := a.LoadWord(ADCMEMAddr); got != 0x100 {
		t.Errorf("first sample = 0x%04x", got)
	}
	if !q.Pending(IRQADC) {
		t.Error("ADC IE set but no interrupt")
	}
	// Second conversion advances the sample index.
	a.StoreWord(ADCCTLAddr, ADCStart|3<<8)
	a.Tick(ADCConversionCycles)
	if got := a.LoadWord(ADCMEMAddr); got != 0x101 {
		t.Errorf("second sample = 0x%04x", got)
	}
	// Unattached channel reads zero.
	a.StoreWord(ADCCTLAddr, ADCStart|9<<8)
	a.Tick(ADCConversionCycles)
	if a.LoadWord(ADCMEMAddr) != 0 {
		t.Error("unattached channel should read 0")
	}
}

func TestADC12BitClamp(t *testing.T) {
	a := NewADC(nil, IRQADC)
	a.Attach(0, func(int) uint16 { return 0xFFFF })
	a.StoreWord(ADCCTLAddr, ADCStart)
	a.Tick(ADCConversionCycles)
	if got := a.LoadWord(ADCMEMAddr); got != 0x0FFF {
		t.Errorf("12-bit clamp: 0x%04x", got)
	}
}

func TestUARTTransmitReceive(t *testing.T) {
	q := &IRQController{}
	u := NewUART(q, IRQUART)
	if u.LoadWord(USTATAddr)&UARTTxReady == 0 {
		t.Error("TX should always be ready")
	}
	u.StoreWord(UTXAddr, 'H')
	u.StoreWord(UTXAddr, 'i')
	if u.Transcript() != "Hi" {
		t.Errorf("transcript = %q", u.Transcript())
	}
	if u.LoadWord(USTATAddr)&UARTRxAvail != 0 {
		t.Error("RX available with empty queue")
	}
	u.Feed([]byte("ok"))
	if !q.Pending(IRQUART) {
		t.Error("no RX interrupt")
	}
	if u.LoadWord(USTATAddr)&UARTRxAvail == 0 {
		t.Error("RX not available after feed")
	}
	if got := u.LoadWord(URXAddr); got != 'o' {
		t.Errorf("rx byte = %c", got)
	}
	if got := u.LoadWord(URXAddr); got != 'k' {
		t.Errorf("rx byte = %c", got)
	}
	if u.LoadWord(URXAddr) != 0 {
		t.Error("empty rx should read 0")
	}
}

func TestLCD(t *testing.T) {
	l := NewLCD()
	for _, b := range []byte("Hello") {
		l.StoreWord(LCDDATAAddr, uint16(b))
	}
	l.StoreWord(LCDCMDAddr, LCDCmdSetAddr|0x40) // row 1
	for _, b := range []byte("World") {
		l.StoreWord(LCDDATAAddr, uint16(b))
	}
	if got := l.Row(0); got != "Hello           " {
		t.Errorf("row0 = %q", got)
	}
	if got := l.Row(1); got != "World           " {
		t.Errorf("row1 = %q", got)
	}
	l.StoreWord(LCDCMDAddr, LCDCmdClear)
	if got := l.Row(0); got != "                " {
		t.Errorf("after clear row0 = %q", got)
	}
	l.StoreWord(LCDCMDAddr, LCDCmdHome)
	l.StoreWord(LCDDATAAddr, 'X')
	if l.Row(0)[0] != 'X' {
		t.Error("home did not reset address")
	}
	if l.Row(-1) != "" || l.Row(2) != "" {
		t.Error("out-of-range rows should be empty")
	}
}

func TestUltrasonic(t *testing.T) {
	q := &IRQController{}
	u := NewUltrasonic(q, IRQUltrasonic)
	u.Distance = func(n int) uint16 { return uint16(10 + n) }
	u.StoreWord(USTRIGAddr, 1)
	if u.LoadWord(USSTATAddr) != 0 {
		t.Error("done immediately after trigger")
	}
	u.Tick(UltrasonicLatency)
	if u.LoadWord(USSTATAddr) != 1 {
		t.Error("measurement did not complete")
	}
	if got := u.LoadWord(USWIDTHAddr); got != 10*usPerCm {
		t.Errorf("width = %d, want %d", got, 10*usPerCm)
	}
	if !q.Pending(IRQUltrasonic) {
		t.Error("no completion interrupt")
	}
	u.StoreWord(USTRIGAddr, 1)
	u.Tick(UltrasonicLatency)
	if got := u.LoadWord(USWIDTHAddr); got != 11*usPerCm {
		t.Errorf("second width = %d", got)
	}
}

func TestViolationLatch(t *testing.T) {
	v := &ViolationLatch{}
	if v.LoadWord(ViolationAddr) != 0 {
		t.Error("latch should read 0")
	}
	v.StoreWord(ViolationAddr, 7)
	if v.Writes != 1 || v.Last != 7 {
		t.Errorf("latch state %+v", v)
	}
	v.Reset()
	if v.Writes != 0 {
		t.Error("reset failed")
	}
}

func TestSensorModelsDeterministic(t *testing.T) {
	models := map[string]SensorModel{
		"light": LightSensorModel,
		"temp":  TempSensorModel,
		"flame": FlameSensorModel,
	}
	for name, m := range models {
		for i := 0; i < 100; i++ {
			if m(i) != m(i) {
				t.Errorf("%s model not deterministic at %d", name, i)
			}
			if m(i) > 0x0FFF {
				t.Errorf("%s model exceeds 12 bits at %d: 0x%04x", name, i, m(i))
			}
		}
	}
	// Flame event window.
	if FlameSensorModel(42) < 0x0800 {
		t.Error("flame model should spike in the event window")
	}
	if FlameSensorModel(10) >= 0x0800 {
		t.Error("flame model should be quiet outside the window")
	}
}

func TestRangerModelBounds(t *testing.T) {
	f := func(n uint8) bool {
		d := RangerDistanceModel(int(n))
		return d >= 5 && d <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIRQControllerProperty(t *testing.T) {
	// Request then acknowledge always drains; highest pending is maximal.
	f := func(lines []uint8) bool {
		q := &IRQController{}
		max := -1
		for _, l := range lines {
			line := int(l % 15) // avoid reset line for this property
			q.Request(line)
			if line > max {
				max = line
			}
		}
		if len(lines) == 0 {
			return q.HighestPending() == -1
		}
		if q.HighestPending() != max {
			return false
		}
		for i := 0; i < 16; i++ {
			q.Acknowledge(i)
		}
		return q.HighestPending() == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
