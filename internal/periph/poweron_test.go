package periph

import "testing"

// TestPowerOnRestoresFreshState drives every peripheral into a dirty
// state and asserts PowerOn returns it to the freshly constructed one —
// the contract core.Machine.Recycle relies on for byte-identical
// recycled-vs-fresh runs. Attached models (sensor curves, the ranger's
// distance function) are wiring, not run-time state, and must survive.
func TestPowerOnRestoresFreshState(t *testing.T) {
	irq := &IRQController{}

	g := NewGPIO(P1INAddr, irq, IRQPort1)
	g.StoreByte(P1OUTAddr, 0xAA)
	g.StoreByte(P1DIRAddr, 0xFF)
	g.StoreByte(P1IEAddr, 0x0F)
	g.SetInput(0x05)
	g.PowerOn()
	if g.In != 0 || g.Out != 0 || g.Dir != 0 || g.IFG != 0 || g.IE != 0 || g.Events != nil {
		t.Errorf("GPIO not fresh after PowerOn: %+v", g)
	}

	tm := NewTimer(0x0160, irq, IRQTimerA)
	tm.StoreWord(0x0172, 100)
	tm.StoreWord(0x0160, TimerModeUp|TimerIE)
	tm.SyncTo(1000)
	if tm.Wraps == 0 {
		t.Fatal("setup: timer never wrapped")
	}
	tm.PowerOn()
	if tm.CTL != 0 || tm.TAR != 0 || tm.CCR0 != 0 || tm.Wraps != 0 || tm.synced != 0 {
		t.Errorf("Timer not fresh after PowerOn: %+v", tm)
	}

	a := NewADC(irq, IRQADC)
	a.Attach(0, LightSensorModel)
	a.StoreWord(ADCCTLAddr, ADCStart)
	a.SyncTo(uint64(ADCConversionCycles) + 1)
	first := a.MEM
	a.StoreWord(ADCCTLAddr, ADCStart)
	a.SyncTo(2 * uint64(ADCConversionCycles+1))
	if a.MEM == first {
		t.Fatal("setup: ADC sample index never advanced")
	}
	a.PowerOn()
	if a.CTL != 0 || a.MEM != 0 || a.done || a.busyFor != 0 || a.active != 0 || a.synced != 0 {
		t.Errorf("ADC not fresh after PowerOn: %+v", a)
	}
	// The sample index rewound: the next conversion replays sample 0.
	a.StoreWord(ADCCTLAddr, ADCStart)
	a.Tick(ADCConversionCycles)
	if a.MEM != first {
		t.Errorf("ADC after PowerOn replays sample %d-style value 0x%03x, want 0x%03x", 1, a.MEM, first)
	}

	u := NewUART(irq, IRQUART)
	u.Feed([]byte("in"))
	u.StoreWord(UTXAddr, 'x')
	u.PowerOn()
	if u.TX != nil || u.rx != nil {
		t.Errorf("UART not fresh after PowerOn: %+v", u)
	}

	l := NewLCD()
	l.StoreWord(LCDCMDAddr, LCDCmdSetAddr|0x02)
	l.StoreWord(LCDDATAAddr, 'A')
	l.PowerOn()
	if l.Row(0) != "                " || l.addr != 0 || l.Commands != nil {
		t.Errorf("LCD not fresh after PowerOn: %q cmds=%v", l.Row(0), l.Commands)
	}

	r := NewUltrasonic(irq, IRQUltrasonic)
	r.StoreWord(USTRIGAddr, 1)
	r.SyncTo(UltrasonicLatency + 1)
	if !r.done || r.pings != 1 {
		t.Fatal("setup: ranger never completed a ping")
	}
	r.PowerOn()
	if r.width != 0 || r.done || r.busyFor != 0 || r.pings != 0 || r.synced != 0 {
		t.Errorf("Ultrasonic not fresh after PowerOn: %+v", r)
	}
	if r.Distance == nil {
		t.Error("Ultrasonic PowerOn dropped the distance model")
	}
}
