package periph

import (
	"math/rand"
	"testing"
)

// refTimer is the original one-cycle-at-a-time timer advance, kept as
// the reference the closed-form Tick is property-tested against.
type refTimer struct {
	CTL, TAR, CCR0 uint16
	Wraps          uint64
	requests       int
}

func (t *refTimer) tick(cycles int) {
	if t.CTL&TimerModeUp == 0 || t.CCR0 == 0 {
		return
	}
	for i := 0; i < cycles; i++ {
		t.TAR++
		if t.TAR >= t.CCR0 {
			t.TAR = 0
			t.Wraps++
			t.CTL |= TimerIFG
			if t.CTL&TimerIE != 0 {
				t.requests++
			}
		}
	}
}

// TestTimerTickClosedForm drives random timer states through the
// closed-form Tick and the reference loop and requires identical TAR,
// wrap counts, IFG latching and pending-interrupt state (the pending
// bit is idempotent, so "requested at least once" is the observable).
func TestTimerTickClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		q := &IRQController{}
		tm := NewTimer(0x0160, q, IRQTimerA)
		ref := &refTimer{}
		tm.CCR0 = uint16(rng.Intn(300))
		// TAR can start at/past CCR0 (direct register store), including
		// the 0xFFFF corner where TAR++ overflows without wrapping.
		switch rng.Intn(3) {
		case 0:
			tm.TAR = uint16(rng.Intn(400))
		case 1:
			tm.TAR = 0xFFFF - uint16(rng.Intn(3))
		default:
			tm.TAR = uint16(rng.Uint32())
		}
		tm.CTL = 0
		if rng.Intn(4) > 0 {
			tm.CTL |= TimerModeUp
		}
		if rng.Intn(2) > 0 {
			tm.CTL |= TimerIE
		}
		ref.CCR0, ref.TAR, ref.CTL = tm.CCR0, tm.TAR, tm.CTL

		cycles := rng.Intn(2000)
		tm.Tick(cycles)
		ref.tick(cycles)

		if tm.TAR != ref.TAR || tm.Wraps != ref.Wraps || tm.CTL != ref.CTL {
			t.Fatalf("case %d (CCR0=%d cycles=%d): TAR/Wraps/CTL = %d/%d/%04x, want %d/%d/%04x",
				i, ref.CCR0, cycles, tm.TAR, tm.Wraps, tm.CTL, ref.TAR, ref.Wraps, ref.CTL)
		}
		if q.Pending(IRQTimerA) != (ref.requests > 0) {
			t.Fatalf("case %d: pending=%v, reference requested %d times", i, q.Pending(IRQTimerA), ref.requests)
		}
	}
}

// TestTimerSyncTo checks the lazy-sync anchor arithmetic: sync deltas
// accumulate like individual ticks, Resync skips cycles, and NextEvent
// names the exact wrap cycle.
func TestTimerSyncTo(t *testing.T) {
	q := &IRQController{}
	tm := NewTimer(0x0160, q, IRQTimerA)
	tm.CCR0 = 100
	tm.CTL = TimerModeUp | TimerIE

	if got := tm.NextEvent(); got != 100 {
		t.Fatalf("NextEvent = %d, want 100", got)
	}
	tm.SyncTo(40)
	if tm.TAR != 40 {
		t.Fatalf("TAR = %d after SyncTo(40)", tm.TAR)
	}
	tm.SyncTo(40) // idempotent
	tm.SyncTo(30) // never rewinds
	if tm.TAR != 40 {
		t.Fatalf("TAR = %d after redundant syncs", tm.TAR)
	}
	if got := tm.NextEvent(); got != 100 {
		t.Fatalf("NextEvent = %d after partial sync, want 100", got)
	}
	tm.SyncTo(100)
	if tm.TAR != 0 || tm.Wraps != 1 || !q.Pending(IRQTimerA) {
		t.Fatalf("wrap not delivered at its deadline: TAR=%d wraps=%d pending=%v", tm.TAR, tm.Wraps, q.Pending(IRQTimerA))
	}
	// Resync jumps the anchor without ticking (device-reset semantics).
	tm.Resync(500)
	if tm.TAR != 0 || tm.Wraps != 1 {
		t.Fatalf("Resync ticked: TAR=%d wraps=%d", tm.TAR, tm.Wraps)
	}
	if got := tm.NextEvent(); got != 600 {
		t.Fatalf("NextEvent = %d after Resync(500), want 600", got)
	}
}

// TestTimerLazyRegisterSync: with a Clock attached, register accesses
// observe state as of the clock without any explicit Tick calls.
func TestTimerLazyRegisterSync(t *testing.T) {
	var now uint64
	q := &IRQController{}
	tm := NewTimer(0x0160, q, IRQTimerA)
	tm.Clock = func() uint64 { return now }
	tm.StoreWord(0x0160, TimerModeUp)
	tm.StoreWord(0x0172, 50) // CCR0 = 50
	now = 30
	if got := tm.LoadWord(0x0170); got != 30 { // TAR
		t.Fatalf("TAR reads %d at clock 30", got)
	}
	now = 75
	if got := tm.LoadWord(0x0170); got != 25 {
		t.Fatalf("TAR reads %d at clock 75 (one wrap), want 25", got)
	}
	if tm.Wraps != 1 {
		t.Fatalf("Wraps = %d", tm.Wraps)
	}
}

// TestADCNextEvent pins the conversion deadline arithmetic.
func TestADCNextEvent(t *testing.T) {
	a := NewADC(nil, IRQADC)
	a.Attach(0, func(int) uint16 { return 7 })
	if a.NextEvent() != NoEvent {
		t.Fatal("idle ADC reports a deadline")
	}
	a.StoreWord(ADCCTLAddr, ADCStart)
	if got := a.NextEvent(); got != ADCConversionCycles {
		t.Fatalf("NextEvent = %d, want %d", got, ADCConversionCycles)
	}
	a.SyncTo(ADCConversionCycles - 1)
	if a.LoadWord(ADCSTAGES) != 0 {
		t.Fatal("conversion completed a cycle early")
	}
	a.SyncTo(ADCConversionCycles)
	if a.LoadWord(ADCSTAGES) != ADCDone {
		t.Fatal("conversion missed its deadline")
	}
	if a.NextEvent() != NoEvent {
		t.Fatal("completed ADC still reports a deadline")
	}
}

// TestUltrasonicNextEvent pins the ping deadline arithmetic.
func TestUltrasonicNextEvent(t *testing.T) {
	u := NewUltrasonic(nil, IRQUltrasonic)
	if u.NextEvent() != NoEvent {
		t.Fatal("idle ranger reports a deadline")
	}
	u.Resync(1000)
	u.StoreWord(USTRIGAddr, 1)
	if got := u.NextEvent(); got != 1000+UltrasonicLatency {
		t.Fatalf("NextEvent = %d, want %d", got, 1000+UltrasonicLatency)
	}
	u.SyncTo(1000 + UltrasonicLatency)
	if u.LoadWord(USSTATAddr) != 1 {
		t.Fatal("measurement missed its deadline")
	}
}
