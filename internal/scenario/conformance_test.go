package scenario

import (
	"strings"
	"testing"

	"eilid/internal/casu"
	"eilid/internal/core"
)

// TestViolationKindConformance pins the violation-kind enumeration to
// the rest of the system: every kind must render a real name (a new
// kind without a String case would stream as "violation(N)" in NDJSON
// and fail every reason oracle), names must be unique (reason matching
// is by string), every kind must be emittable by at least one
// registered defense, and every kind must be acceptable to at least
// one generated-scenario oracle.
func TestViolationKindConformance(t *testing.T) {
	kinds := casu.ViolationKinds()
	if len(kinds) < 13 {
		t.Fatalf("only %d violation kinds enumerated", len(kinds))
	}

	seen := map[string]casu.ViolationKind{}
	for _, k := range kinds {
		name := k.String()
		if name == "" || name == "none" || strings.HasPrefix(name, "violation(") {
			t.Errorf("kind %d has no real name: %q", uint8(k), name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", uint8(prev), uint8(k), name)
		}
		seen[name] = k
		if !PlausibleReason(name) {
			t.Errorf("kind %q not accepted as a plausible reset reason", name)
		}
	}

	// Every kind belongs to some registered defense's emittable set —
	// a kind no defense can produce is dead weight, and a defense
	// emitting a kind it does not declare would fail its fleet oracle.
	for _, k := range kinds {
		emitted := false
		for _, spec := range core.Defenses() {
			if spec.Emits(k) {
				emitted = true
				break
			}
		}
		if !emitted {
			t.Errorf("kind %q is emittable by no registered defense", k)
		}
	}

	// Every kind is reachable through at least one generated oracle: an
	// item either names it in AllowedReasons or leaves the list empty,
	// which admits any plausible kind.
	batch := Generate(99, 256)
	allowed := map[string]bool{}
	anyReason := false
	for _, g := range batch.Items {
		if len(g.AllowedReasons) == 0 {
			anyReason = true
			continue
		}
		for _, want := range g.AllowedReasons {
			allowed[want] = true
			// An AllowedReasons entry matches by substring; one that
			// matches no real kind can never be satisfied.
			hit := false
			for name := range seen {
				if strings.Contains(name, want) {
					hit = true
					break
				}
			}
			if !hit {
				t.Errorf("item %d (%s): AllowedReasons entry %q matches no violation kind", g.Index, g.Family, want)
			}
		}
	}
	if !anyReason {
		t.Fatal("no generated oracle admits arbitrary plausible reasons; kinds outside explicit AllowedReasons are unreachable")
	}
	for _, k := range kinds {
		name := k.String()
		reachable := anyReason // an empty-list oracle admits every kind
		for want := range allowed {
			if strings.Contains(name, want) {
				reachable = true
				break
			}
		}
		if !reachable {
			t.Errorf("kind %q is reachable by no generated oracle", name)
		}
	}
}
