package scenario

// The generator's randomness is a splitmix64 stream specified here in
// full, rather than math/rand, so a (seed, index) pair produces the
// same scenario on every platform and Go release — the fleet's
// byte-identical NDJSON contract extends to the generated dimension.

const golden = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 finalizer: a bijective scramble of its input.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// rng is one splitmix64 stream.
type rng struct{ s uint64 }

// itemRNG opens the stream for batch item i of a seed (i = -1 is the
// per-seed pool stream). Streams of different items never overlap:
// each starts from an independently scrambled state, not an offset
// into a shared sequence.
func itemRNG(seed uint64, i int) *rng {
	return &rng{s: mix64(seed ^ mix64(uint64(int64(i))+golden))}
}

func (r *rng) next() uint64 {
	r.s += golden
	return mix64(r.s)
}

// intn returns a value in [0, n). The modulo bias is irrelevant here:
// the draws parameterize fuzz coverage, not statistics.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) byteVal() byte { return byte(r.next()) }

func (r *rng) word() uint16 { return uint16(r.next()) }
